#include "src/util/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/util/hash.h"
#include "src/util/rng.h"

namespace fivm::util {
namespace {

struct IntHash {
  uint64_t operator()(int64_t x) const {
    return Mix64(static_cast<uint64_t>(x));
  }
};

// A deliberately terrible hash to stress clustering and backshift deletion.
struct CollidingHash {
  uint64_t operator()(int64_t x) const { return static_cast<uint64_t>(x) % 3; }
};

using Map = FlatHashMap<int64_t, int64_t, IntHash>;

TEST(FlatHashMapTest, InsertAndFind) {
  Map m;
  EXPECT_TRUE(m.Insert(1, 10));
  EXPECT_TRUE(m.Insert(2, 20));
  EXPECT_FALSE(m.Insert(1, 99));  // duplicate
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  EXPECT_EQ(*m.Find(2), 20);
  EXPECT_EQ(m.Find(3), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMapTest, SubscriptDefaultConstructs) {
  Map m;
  EXPECT_EQ(m[7], 0);
  m[7] += 5;
  EXPECT_EQ(*m.Find(7), 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, EraseBasic) {
  Map m;
  m.Insert(1, 10);
  m.Insert(2, 20);
  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(2), 20);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, GrowsThroughRehash) {
  Map m;
  for (int64_t i = 0; i < 10000; ++i) m.Insert(i, i * 2);
  EXPECT_EQ(m.size(), 10000u);
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * 2);
  }
}

TEST(FlatHashMapTest, ErasePreservesCollidingCluster) {
  // With a 3-valued hash every key collides into the same probe chain;
  // erase from the middle (exercising the tombstone-vs-re-empty decision
  // of the group core) and verify all others remain findable.
  FlatHashMap<int64_t, int64_t, CollidingHash> m;
  for (int64_t i = 0; i < 50; ++i) m.Insert(i, i);
  for (int64_t victim = 0; victim < 50; victim += 7) m.Erase(victim);
  for (int64_t i = 0; i < 50; ++i) {
    if (i % 7 == 0) {
      EXPECT_EQ(m.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(m.Find(i), nullptr) << i;
      EXPECT_EQ(*m.Find(i), i);
    }
  }
}

TEST(FlatHashMapTest, ForEachVisitsAll) {
  Map m;
  for (int64_t i = 0; i < 100; ++i) m.Insert(i, 1);
  int64_t count = 0, key_sum = 0;
  m.ForEach([&](const int64_t& k, const int64_t& v) {
    count += v;
    key_sum += k;
  });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(key_sum, 99 * 100 / 2);
}

TEST(FlatHashMapTest, ClearResets) {
  Map m;
  m.Insert(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(1), nullptr);
  m.Insert(1, 2);
  EXPECT_EQ(*m.Find(1), 2);
}

TEST(FlatHashMapTest, StringKeys) {
  struct SHash {
    uint64_t operator()(const std::string& s) const { return HashString(s); }
  };
  FlatHashMap<std::string, int, SHash> m;
  m.Insert("alpha", 1);
  m.Insert("beta", 2);
  EXPECT_EQ(*m.Find("alpha"), 1);
  EXPECT_EQ(m.Find("gamma"), nullptr);
}

TEST(FlatHashMapTest, RandomizedAgainstStdMap) {
  Rng rng(123);
  Map m;
  std::unordered_map<int64_t, int64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    int64_t key = rng.UniformInt(0, 500);
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      m[key] += 1;
      ref[key] += 1;
    } else if (op == 1) {
      bool a = m.Erase(key);
      bool b = ref.erase(key) > 0;
      ASSERT_EQ(a, b) << "erase mismatch at step " << step;
    } else {
      const int64_t* found = m.Find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(found, nullptr) << "find mismatch at step " << step;
      } else {
        ASSERT_NE(found, nullptr) << "find mismatch at step " << step;
        ASSERT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatHashMapTest, ReserveAvoidsGrowth) {
  Map m;
  m.Reserve(1000);
  size_t bytes = m.ApproxBytes();
  for (int64_t i = 0; i < 1000; ++i) m.Insert(i, i);
  EXPECT_EQ(m.ApproxBytes(), bytes);
}

}  // namespace
}  // namespace fivm::util
