// Round-trips for the durability byte layer: tuples, schemas, ring payload
// codecs and whole-store images across every ring the engine ships —
// scalar (I64/F64), dense regression (inline and heap-spilled cofactor
// ranges) and sparse regression — plus the malformed-bytes paths the
// WAL/checkpoint loaders rely on (a reader must return false, never throw
// or over-read, on a torn buffer).

#include "src/durability/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/regression_ring.h"
#include "src/rings/ring.h"
#include "src/rings/sparse_regression_ring.h"
#include "src/util/rng.h"

namespace fivm::durability {
namespace {

template <typename Ring>
Relation<Ring> RoundTrip(const Relation<Ring>& rel) {
  std::vector<uint8_t> bytes;
  SerializeRelation(&bytes, rel);
  ByteReader r{bytes.data(), bytes.data() + bytes.size()};
  Relation<Ring> out;
  EXPECT_TRUE(DeserializeRelation(&r, &out));
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

TEST(RelationSerializeTest, TupleRoundTripMixedKinds) {
  Tuple t{Value::Int(-7), Value::Double(3.25), Value::Int(1) , Value::Double(-0.0)};
  std::vector<uint8_t> bytes;
  SerializeTuple(&bytes, t);
  ByteReader r{bytes.data(), bytes.data() + bytes.size()};
  Tuple back;
  ASSERT_TRUE(DeserializeTuple(&r, &back));
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back[0].AsInt(), -7);
  EXPECT_DOUBLE_EQ(back[1].AsDouble(), 3.25);
  EXPECT_EQ(back[2].AsInt(), 1);
  EXPECT_DOUBLE_EQ(back[3].AsDouble(), 0.0);
  EXPECT_EQ(back[3].kind(), Value::Kind::kDouble);
  // The deserialized tuple must hash/compare like the original (Append
  // maintains the cached hash the stores key on).
  EXPECT_TRUE(back == t);
}

TEST(RelationSerializeTest, VarintBoundaryValuesRoundTrip) {
  // Ints are zigzag-varint encoded; exercise the magnitude extremes where
  // the encoding is widest (10 bytes) and the sign-fold boundaries.
  const int64_t cases[] = {0,  1,  -1, 63,  -64, 64,
                           -65, INT64_MAX, INT64_MIN, INT64_MIN + 1};
  for (int64_t x : cases) {
    Tuple t{Value::Int(x)};
    std::vector<uint8_t> bytes;
    SerializeTuple(&bytes, t);
    ByteReader r{bytes.data(), bytes.data() + bytes.size()};
    Tuple back;
    ASSERT_TRUE(DeserializeTuple(&r, &back)) << x;
    EXPECT_EQ(back[0].AsInt(), x);
    EXPECT_EQ(r.remaining(), 0u) << x;
  }
  // Payload codec: I64Ring multiplicities take the same path.
  for (int64_t x : cases) {
    std::vector<uint8_t> bytes;
    RingCodec<I64Ring>::Write(&bytes, x);
    EXPECT_LE(bytes.size(), 10u);
    ByteReader r{bytes.data(), bytes.data() + bytes.size()};
    int64_t back;
    ASSERT_TRUE(RingCodec<I64Ring>::Read(&r, &back)) << x;
    EXPECT_EQ(back, x);
  }
  // The common case — ±1 deltas — must be a single byte.
  std::vector<uint8_t> one;
  RingCodec<I64Ring>::Write(&one, int64_t{-1});
  EXPECT_EQ(one.size(), 1u);
}

TEST(RelationSerializeTest, I64RoundTripWithTombstones) {
  util::Rng rng(4242);
  Relation<I64Ring> rel(Schema{0, 1});
  for (int i = 0; i < 500; ++i) {
    rel.Add(Tuple::Ints({rng.UniformInt(0, 40), rng.UniformInt(0, 25)}),
            rng.UniformInt(-3, 3));
  }
  // Kill a slice of keys outright so the pool holds tombstones the
  // serializer must skip.
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 26; ++b) {
      const int64_t* p = rel.Find(Tuple::Ints({a, b}));
      if (p != nullptr) rel.Add(Tuple::Ints({a, b}), -*p);
    }
  }
  Relation<I64Ring> back = RoundTrip(rel);
  EXPECT_EQ(back.size(), rel.size());
  EXPECT_TRUE(ContentEquals(rel, back));
}

TEST(RelationSerializeTest, F64RoundTripExactBits) {
  Relation<F64Ring> rel(Schema{3});
  rel.Add(Tuple::Ints({1}), 0.1);          // not representable exactly
  rel.Add(Tuple::Ints({2}), -1e300);
  rel.Add(Tuple::Ints({3}), 4.9406564584124654e-324);  // denormal
  Relation<F64Ring> back = RoundTrip(rel);
  EXPECT_TRUE(ContentEquals(rel, back));
  // Bit-exactness, stronger than ring equality.
  EXPECT_EQ(*back.Find(Tuple::Ints({1})), 0.1);
  EXPECT_EQ(*back.Find(Tuple::Ints({3})), 4.9406564584124654e-324);
}

TEST(RelationSerializeTest, EmptyStoreRoundTrip) {
  Relation<I64Ring> rel(Schema{0, 1, 2});
  Relation<I64Ring> back = RoundTrip(rel);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_TRUE(back.schema() == rel.schema());
  EXPECT_TRUE(ContentEquals(rel, back));
}

TEST(RelationSerializeTest, DeleteToEmptyRoundTrip) {
  // A store whose every key was inserted then deleted: the pool is all
  // tombstones, the image must be a zero-entry body that loads back empty.
  Relation<I64Ring> rel(Schema{0});
  for (int64_t i = 0; i < 64; ++i) rel.Add(Tuple::Ints({i}), i + 1);
  for (int64_t i = 0; i < 64; ++i) rel.Add(Tuple::Ints({i}), -(i + 1));
  ASSERT_EQ(rel.size(), 0u);
  Relation<I64Ring> back = RoundTrip(rel);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_TRUE(ContentEquals(rel, back));
}

TEST(RelationSerializeTest, RegressionRingRoundTrip) {
  util::Rng rng(777);
  Relation<RegressionRing> rel(Schema{0});
  for (int64_t k = 0; k < 40; ++k) {
    // Mix payload shapes: count-only (empty range), small inline ranges,
    // and a wide range that spills past the payload's inline buffer.
    RegressionPayload p = RegressionPayload::Count(1.0);
    uint32_t lo = static_cast<uint32_t>(rng.UniformInt(0, 3));
    uint32_t width = static_cast<uint32_t>(rng.UniformInt(0, k % 7 == 0 ? 9 : 2));
    for (uint32_t j = 0; j < width; ++j) {
      p = Mul(p, RegressionPayload::Lift(lo + j,
                                         static_cast<double>(
                                             rng.UniformInt(-5, 5))));
    }
    rel.Add(Tuple::Ints({k}), p);
  }
  Relation<RegressionRing> back = RoundTrip(rel);
  EXPECT_TRUE(ContentEquals(rel, back));
  // Spot-check representation, not just ring equality: ranges and raw
  // statistics survive bit-for-bit.
  rel.ForEach([&](const Tuple& key, const RegressionPayload& p) {
    const RegressionPayload* q = back.Find(key);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(*q == p);
  });
}

TEST(RelationSerializeTest, SparseRegressionRingRoundTrip) {
  util::Rng rng(778);
  Relation<SparseRegressionRing> rel(Schema{0, 1});
  for (int64_t k = 0; k < 60; ++k) {
    SparseRegressionPayload p = SparseRegressionPayload::Count(1.0);
    int terms = static_cast<int>(rng.UniformInt(0, 4));
    for (int j = 0; j < terms; ++j) {
      p = Mul(p, SparseRegressionPayload::Lift(
                     static_cast<uint32_t>(rng.UniformInt(0, 30)),
                     static_cast<double>(rng.UniformInt(-4, 4))));
    }
    rel.Add(Tuple::Ints({k / 8, k % 8}), p);
  }
  Relation<SparseRegressionRing> back = RoundTrip(rel);
  EXPECT_TRUE(ContentEquals(rel, back));
  rel.ForEach([&](const Tuple& key, const SparseRegressionPayload& p) {
    const SparseRegressionPayload* q = back.Find(key);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(*q == p);
  });
}

TEST(RelationSerializeTest, TruncatedBytesFailCleanly) {
  Relation<RegressionRing> rel(Schema{0});
  RegressionPayload p = Mul(RegressionPayload::Lift(0, 2.0),
                            RegressionPayload::Lift(1, 3.0));
  rel.Add(Tuple::Ints({1}), p);
  rel.Add(Tuple::Ints({2}), Add(p, p));
  std::vector<uint8_t> bytes;
  SerializeRelation(&bytes, rel);
  // Every proper prefix must be rejected without throwing or over-reading
  // — this is exactly what a torn WAL tail / truncated checkpoint looks
  // like to the loaders.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r{bytes.data(), bytes.data() + cut};
    Relation<RegressionRing> out;
    EXPECT_FALSE(DeserializeRelation(&r, &out)) << "cut=" << cut;
  }
}

TEST(RelationSerializeTest, MalformedKindByteRejected) {
  Tuple t{Value::Int(1)};
  std::vector<uint8_t> bytes;
  SerializeTuple(&bytes, t);
  bytes[1] = 0x7F;  // kind byte (after the 1-byte count varint)
  ByteReader r{bytes.data(), bytes.data() + bytes.size()};
  Tuple back;
  EXPECT_FALSE(DeserializeTuple(&r, &back));
}

TEST(RelationSerializeTest, KeyArityMismatchRejected) {
  // An image whose tuple arity disagrees with its own schema must fail
  // DeserializeRelation (corrupt image, not a crash).
  Relation<I64Ring> rel(Schema{0, 1});
  rel.Add(Tuple::Ints({1, 2}), 5);
  std::vector<uint8_t> bytes;
  SerializeRelation(&bytes, rel);
  // Schema is serialized first: [count u32][vars u32...]. Shrink it to one
  // variable; the 2-ary key that follows must then be rejected.
  uint32_t one = 1;
  std::memcpy(bytes.data(), &one, 4);
  bytes.erase(bytes.begin() + 4, bytes.begin() + 8);  // drop second var
  ByteReader r{bytes.data(), bytes.data() + bytes.size()};
  Relation<I64Ring> out;
  EXPECT_FALSE(DeserializeRelation(&r, &out));
}

}  // namespace
}  // namespace fivm::durability
