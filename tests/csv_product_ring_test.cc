#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/csv.h"
#include "src/rings/product_ring.h"

namespace fivm {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = std::string(::testing::TempDir()) + "/fivm_csv_" +
            std::to_string(counter_++) + ".csv";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempFile::counter_ = 0;

TEST(CsvTest, ParseTypedLine) {
  Tuple t;
  std::string error;
  csv::LoadOptions opts;
  ASSERT_TRUE(csv::ParseLine(
      "42,3.5,7", {csv::ColumnType::kInt, csv::ColumnType::kDouble,
                   csv::ColumnType::kInt},
      opts, &t, &error))
      << error;
  EXPECT_EQ(t[0].AsInt(), 42);
  EXPECT_DOUBLE_EQ(t[1].AsDouble(), 3.5);
  EXPECT_EQ(t[2].AsInt(), 7);
}

TEST(CsvTest, ParseRejectsArityMismatch) {
  Tuple t;
  std::string error;
  csv::LoadOptions opts;
  EXPECT_FALSE(csv::ParseLine("1,2", {csv::ColumnType::kInt}, opts, &t,
                              &error));
  EXPECT_NE(error.find("fields"), std::string::npos);
}

TEST(CsvTest, ParseRejectsBadNumbers) {
  Tuple t;
  std::string error;
  csv::LoadOptions opts;
  EXPECT_FALSE(
      csv::ParseLine("abc", {csv::ColumnType::kInt}, opts, &t, &error));
  EXPECT_FALSE(
      csv::ParseLine("1.2.3", {csv::ColumnType::kDouble}, opts, &t, &error));
}

TEST(CsvTest, StringColumnsDictionaryEncode) {
  util::StringDictionary dict;
  csv::LoadOptions opts;
  opts.dictionary = &dict;
  Tuple a, b;
  std::string error;
  ASSERT_TRUE(csv::ParseLine("apple,1", {csv::ColumnType::kString,
                                         csv::ColumnType::kInt},
                             opts, &a, &error));
  ASSERT_TRUE(csv::ParseLine("apple,2", {csv::ColumnType::kString,
                                         csv::ColumnType::kInt},
                             opts, &b, &error));
  EXPECT_EQ(a[0], b[0]);  // same code
  EXPECT_EQ(dict.Decode(a[0].AsInt()), "apple");
}

TEST(CsvTest, LoadRelationFromFile) {
  TempFile file("locn,units\n1,10\n2,20\n1,10\n");
  Relation<I64Ring> rel;
  std::string error;
  csv::LoadOptions opts;
  opts.has_header = true;
  ASSERT_TRUE(csv::LoadRelation(file.path(), Schema{0, 1},
                                {csv::ColumnType::kInt,
                                 csv::ColumnType::kInt},
                                opts, &rel, &error))
      << error;
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(*rel.Find(Tuple::Ints({1, 10})), 2);  // duplicate accumulated
  EXPECT_EQ(*rel.Find(Tuple::Ints({2, 20})), 1);
}

TEST(CsvTest, LoadReportsLineNumberOnError) {
  TempFile file("1\n2\noops\n");
  std::vector<Tuple> tuples;
  std::string error;
  csv::LoadOptions opts;
  EXPECT_FALSE(csv::LoadTuples(file.path(), {csv::ColumnType::kInt}, opts,
                               &tuples, &error));
  EXPECT_NE(error.find(":3:"), std::string::npos);
}

TEST(CsvTest, MissingFileFails) {
  std::vector<Tuple> tuples;
  std::string error;
  csv::LoadOptions opts;
  EXPECT_FALSE(csv::LoadTuples("/nonexistent/nope.csv",
                               {csv::ColumnType::kInt}, opts, &tuples,
                               &error));
}

TEST(CsvTest, SaveAndReloadRoundTrip) {
  Relation<I64Ring> rel(Schema{0, 1});
  rel.Add(Tuple::Ints({1, 2}), 3);
  rel.Add(Tuple::Ints({4, 5}), 1);
  TempFile sink("");
  std::string error;
  ASSERT_TRUE(csv::SaveRelation(sink.path(), rel, &error)) << error;

  Relation<I64Ring> back;
  csv::LoadOptions opts;
  ASSERT_TRUE(csv::LoadRelation(
      sink.path(), Schema{0, 1, 2},
      {csv::ColumnType::kInt, csv::ColumnType::kInt, csv::ColumnType::kInt},
      opts, &back, &error))
      << error;
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(*back.Find(Tuple::Ints({1, 2, 3})), 1);
}

TEST(CsvTest, FormatTupleDecodesStrings) {
  util::StringDictionary dict;
  int64_t code = dict.Intern("west");
  Tuple t{Value::Int(code)};
  EXPECT_EQ(csv::FormatTuple(t, &dict), "west");
  EXPECT_EQ(csv::FormatTuple(Tuple::Ints({5, 6})), "5,6");
}

// --- Product ring: maintain AVG = SUM / COUNT in one pass ----------------

TEST(ProductRingTest, RingOperationsAreComponentwise) {
  CountSumRing::Element a{2, 10.0};
  CountSumRing::Element b{3, 4.0};
  auto sum = CountSumRing::Add(a, b);
  EXPECT_EQ(sum.first, 5);
  EXPECT_DOUBLE_EQ(sum.second, 14.0);
  auto prod = CountSumRing::Mul(a, b);
  EXPECT_EQ(prod.first, 6);
  EXPECT_DOUBLE_EQ(prod.second, 40.0);
  EXPECT_TRUE(CountSumRing::IsZero(
      CountSumRing::Add(a, CountSumRing::Neg(a))));
}

TEST(ProductRingTest, MaintainsAvgOverJoin) {
  Catalog catalog;
  Query query(&catalog);
  VarId K = catalog.Intern("K"), X = catalog.Intern("X");
  int r = query.AddRelation("R", Schema{K, X});
  query.AddRelation("S", Schema{K});

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();

  // Lift X to (1, x): first component counts, second sums.
  LiftingMap<CountSumRing> lifts;
  lifts.Set(X, [](const Value& x) {
    return CountSumRing::Element{1, x.AsDouble()};
  });
  IvmEngine<CountSumRing> engine(&tree, lifts);
  Database<CountSumRing> db = MakeDatabase<CountSumRing>(query);
  engine.Initialize(db);

  auto insert = [&](int rel, Tuple t) {
    Relation<CountSumRing> delta(query.relation(rel).schema);
    delta.Add(std::move(t), CountSumRing::One());
    engine.ApplyDelta(rel, delta);
  };
  insert(1, Tuple::Ints({7}));
  insert(r, Tuple::Ints({7, 10}));
  insert(r, Tuple::Ints({7, 20}));
  insert(r, Tuple::Ints({7, 60}));

  const CountSumRing::Element* agg = engine.result().Find(Tuple());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->first, 3);
  EXPECT_DOUBLE_EQ(agg->second, 90.0);
  EXPECT_DOUBLE_EQ(agg->second / agg->first, 30.0);  // AVG
}

// --- Explain facilities ---------------------------------------------------

TEST(ExplainTest, ExplainViewsShowsDefinitions) {
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
        C = catalog.Intern("C"), D = catalog.Intern("D"),
        E = catalog.Intern("E");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{A, C, E});
  query.AddRelation("T", Schema{C, D});
  VariableOrder vo;
  int a = vo.AddNode(A, -1);
  vo.AddNode(B, a);
  int c = vo.AddNode(C, a);
  vo.AddNode(D, c);
  vo.AddNode(E, c);
  std::string error;
  ASSERT_TRUE(vo.Finalize(query, &error));
  ViewTree tree(&query, &vo);

  std::string views = tree.ExplainViews();
  EXPECT_NE(views.find("⊕D"), std::string::npos);
  EXPECT_NE(views.find("T[C,D]"), std::string::npos);
  EXPECT_NE(views.find("⊗"), std::string::npos);

  // Delta rules for updates to T (Example 4.1): bottom rule marginalizes D
  // over δT, then joins with the S-side view.
  std::string delta = tree.ExplainDelta(2);
  EXPECT_NE(delta.find("δT[C,D]"), std::string::npos);
  EXPECT_NE(delta.find("⊕D"), std::string::npos);
  size_t first_rule = delta.find("⊕D");
  size_t join_rule = delta.find("⊗");
  EXPECT_NE(join_rule, std::string::npos);
  EXPECT_LT(first_rule, join_rule);  // leaf rule precedes join rules
}

}  // namespace
}  // namespace fivm
