#include "src/data/schema.h"

#include <gtest/gtest.h>

#include "src/data/catalog.h"

namespace fivm {
namespace {

TEST(SchemaTest, AddKeepsOrderAndDedups) {
  Schema s;
  EXPECT_TRUE(s.Add(3));
  EXPECT_TRUE(s.Add(1));
  EXPECT_FALSE(s.Add(3));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[1], 1u);
}

TEST(SchemaTest, PositionOf) {
  Schema s{5, 7, 9};
  EXPECT_EQ(s.PositionOf(7), 1);
  EXPECT_EQ(s.PositionOf(4), -1);
}

TEST(SchemaTest, SetOperations) {
  Schema a{1, 2, 3};
  Schema b{3, 4, 2};
  EXPECT_EQ(a.Intersect(b), (Schema{2, 3}));
  EXPECT_EQ(a.Minus(b), (Schema{1}));
  EXPECT_EQ(a.Union(b), (Schema{1, 2, 3, 4}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Schema{9}));
}

TEST(SchemaTest, ContainsAll) {
  Schema a{1, 2, 3};
  EXPECT_TRUE(a.ContainsAll(Schema{3, 1}));
  EXPECT_FALSE(a.ContainsAll(Schema{1, 4}));
  EXPECT_TRUE(a.ContainsAll(Schema{}));
}

TEST(SchemaTest, SameSetIgnoresOrder) {
  EXPECT_TRUE((Schema{1, 2}).SameSet(Schema{2, 1}));
  EXPECT_FALSE((Schema{1, 2}).SameSet(Schema{1, 3}));
  EXPECT_FALSE((Schema{1, 2}).SameSet(Schema{1}));
}

TEST(SchemaTest, PositionsOf) {
  Schema a{10, 20, 30};
  auto pos = a.PositionsOf(Schema{30, 10});
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(pos[1], 0u);
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Intersect(Schema{1}), Schema{});
  EXPECT_EQ((Schema{1}).Minus(Schema{}), Schema{1});
}

TEST(CatalogTest, InternIsIdempotent) {
  Catalog c;
  VarId a = c.Intern("A");
  VarId b = c.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.Intern("A"), a);
  EXPECT_EQ(c.size(), 2u);
}

TEST(CatalogTest, LookupMissing) {
  Catalog c;
  EXPECT_EQ(c.Lookup("nope"), kInvalidVar);
  c.Intern("yes");
  EXPECT_NE(c.Lookup("yes"), kInvalidVar);
}

TEST(CatalogTest, NameOfRoundTrips) {
  Catalog c;
  VarId a = c.Intern("postcode");
  EXPECT_EQ(c.NameOf(a), "postcode");
}

TEST(CatalogTest, MakeSchema) {
  Catalog c;
  Schema s = c.MakeSchema({"A", "B", "C"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], c.Lookup("A"));
  EXPECT_EQ(s[2], c.Lookup("C"));
}

}  // namespace
}  // namespace fivm
