// Example 1.1 / Section 6.2: "one model f for each pair of values (A,C)" —
// a group-by cofactor query maintains per-group sufficient statistics, and
// models are trained per group without touching the data.

#include <gtest/gtest.h>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/ml/cofactor.h"
#include "src/rings/regression_ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

TEST(PerGroupModelTest, GroupedCofactorTrainsOneModelPerGroup) {
  // R(G, X, Y): per group G, Y = slope_G * X exactly.
  Catalog catalog;
  Query query(&catalog);
  VarId G = catalog.Intern("G"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("R", Schema{G, X, Y});
  query.SetFreeVars(Schema{G});

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();

  LiftingMap<RegressionRing> lifts;
  lifts.Set(X, RegressionLifting(slots[X]));
  lifts.Set(Y, RegressionLifting(slots[Y]));
  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
  engine.Initialize(db);

  util::Rng rng(13);
  double slopes[] = {2.0, -1.0, 0.5};
  for (int64_t g = 0; g < 3; ++g) {
    for (int i = 0; i < 30; ++i) {
      double x = rng.UniformDouble(-4.0, 4.0);
      Relation<RegressionRing> delta(query.relation(0).schema);
      Tuple t;
      t.Append(Value::Int(g));
      t.Append(Value::Double(x));
      t.Append(Value::Double(slopes[g] * x));
      delta.Add(t, RegressionRing::One());
      engine.ApplyDelta(0, delta);
    }
  }

  // One model per group value.
  ASSERT_EQ(engine.result().size(), 3u);
  auto models =
      ml::TrainPerGroup(engine.result(), {slots[X]}, slots[Y]);
  ASSERT_EQ(models.size(), 3u);
  for (const auto& [key, model] : models) {
    int64_t g = key[0].AsInt();
    ASSERT_EQ(model.theta.size(), 2u);
    EXPECT_NEAR(model.theta[0], 0.0, 1e-6) << "group " << g;      // bias
    EXPECT_NEAR(model.theta[1], slopes[g], 1e-6) << "group " << g;
    EXPECT_LT(model.mse, 1e-9);
  }
}

TEST(PerGroupModelTest, GroupModelsUpdateWithDeltas) {
  Catalog catalog;
  Query query(&catalog);
  VarId G = catalog.Intern("G"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("R", Schema{G, X, Y});
  query.SetFreeVars(Schema{G});
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  LiftingMap<RegressionRing> lifts;
  lifts.Set(X, RegressionLifting(slots[X]));
  lifts.Set(Y, RegressionLifting(slots[Y]));
  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
  engine.Initialize(db);

  auto add = [&](int64_t g, double x, double y, bool insert) {
    Relation<RegressionRing> delta(query.relation(0).schema);
    Tuple t;
    t.Append(Value::Int(g));
    t.Append(Value::Double(x));
    t.Append(Value::Double(y));
    delta.Add(t, insert ? RegressionRing::One()
                        : RegressionRing::Neg(RegressionRing::One()));
    engine.ApplyDelta(0, delta);
  };

  // Group 0: y = x plus one outlier; delete the outlier and the fit is
  // exact again.
  add(0, 1.0, 1.0, true);
  add(0, 2.0, 2.0, true);
  add(0, 3.0, 100.0, true);  // outlier

  auto models = ml::TrainPerGroup(engine.result(), {slots[X]}, slots[Y]);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_GT(models[0].second.mse, 1.0);

  add(0, 3.0, 100.0, false);  // retract the outlier
  models = ml::TrainPerGroup(engine.result(), {slots[X]}, slots[Y]);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_NEAR(models[0].second.theta[1], 1.0, 1e-9);
  EXPECT_LT(models[0].second.mse, 1e-12);
}

TEST(PerGroupModelTest, GroupsOverJoinKeys) {
  // Two relations joined on G; per-group models over join-produced rows.
  Catalog catalog;
  Query query(&catalog);
  VarId G = catalog.Intern("G"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("RX", Schema{G, X});
  query.AddRelation("RY", Schema{G, Y});
  query.SetFreeVars(Schema{G});
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  LiftingMap<RegressionRing> lifts;
  lifts.Set(X, RegressionLifting(slots[X]));
  lifts.Set(Y, RegressionLifting(slots[Y]));
  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
  db[0].Add(Tuple{Value::Int(1), Value::Double(2.0)}, RegressionRing::One());
  db[0].Add(Tuple{Value::Int(1), Value::Double(4.0)}, RegressionRing::One());
  db[1].Add(Tuple{Value::Int(1), Value::Double(3.0)}, RegressionRing::One());
  engine.Initialize(db);

  // Group 1 join = {(x=2,y=3), (x=4,y=3)}: count 2, SUM(X)=6, SUM(XY)=18.
  const RegressionPayload* p = engine.result().Find(Tuple::Ints({1}));
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->count(), 2.0);
  EXPECT_DOUBLE_EQ(p->Sum(slots[X]), 6.0);
  EXPECT_DOUBLE_EQ(p->Cofactor(slots[X], slots[Y]), 18.0);
}

}  // namespace
}  // namespace fivm
