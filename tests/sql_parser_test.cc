#include "src/sql/parser.h"

#include <gtest/gtest.h>

#include "src/core/ivm_engine.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"

namespace fivm::sql {
namespace {

SchemaRegistry PaperRegistry() {
  SchemaRegistry reg;
  reg.Register("R", {"A", "B"});
  reg.Register("S", {"A", "C", "E"});
  reg.Register("T", {"C", "D"});
  return reg;
}

TEST(SqlParserTest, ParsesExample11Query) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse(
      "SELECT A, C, SUM(B * D * E) "
      "FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A, C;",
      &catalog, PaperRegistry(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->query->relation_count(), 3);
  EXPECT_EQ(parsed->query->free_vars().size(), 2u);
  EXPECT_TRUE(parsed->query->free_vars().Contains(catalog.Lookup("A")));
  EXPECT_TRUE(parsed->query->free_vars().Contains(catalog.Lookup("C")));
  ASSERT_EQ(parsed->sum_terms.size(), 3u);
}

TEST(SqlParserTest, CountQuery) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T;",
                      &catalog, PaperRegistry(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->sum_terms.empty());
  EXPECT_TRUE(parsed->query->free_vars().empty());
}

TEST(SqlParserTest, RepeatedAttributeRaisesDegree) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT SUM(B * B) FROM R;", &catalog, PaperRegistry(),
                      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->sum_terms.size(), 1u);
  EXPECT_EQ(parsed->sum_terms[0].second, 2);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("select sum(1) from R natural join S group by A",
                      &catalog, PaperRegistry(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
}

TEST(SqlParserTest, UnknownRelationFails) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT SUM(1) FROM Nope;", &catalog, PaperRegistry(),
                      &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("Nope"), std::string::npos);
}

TEST(SqlParserTest, UnknownSumAttributeFails) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT SUM(Z) FROM R;", &catalog, PaperRegistry(),
                      &error);
  EXPECT_FALSE(parsed.has_value());
}

TEST(SqlParserTest, SelectColumnMustBeGrouped) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT A, SUM(B) FROM R;", &catalog, PaperRegistry(),
                      &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("GROUP BY"), std::string::npos);
}

TEST(SqlParserTest, SumOverGroupByVariableFails) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT A, SUM(A) FROM R GROUP BY A;", &catalog,
                      PaperRegistry(), &error);
  EXPECT_FALSE(parsed.has_value());
}

TEST(SqlParserTest, MissingSumFails) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse("SELECT A FROM R GROUP BY A;", &catalog,
                      PaperRegistry(), &error);
  EXPECT_FALSE(parsed.has_value());
}

TEST(SqlParserTest, SyntaxErrorsAreReported) {
  Catalog catalog;
  std::string error;
  EXPECT_FALSE(Parse("FROM R", &catalog, PaperRegistry(), &error));
  EXPECT_FALSE(Parse("SELECT SUM(B FROM R", &catalog, PaperRegistry(),
                     &error));
  EXPECT_FALSE(Parse("SELECT SUM(2) FROM R", &catalog, PaperRegistry(),
                     &error));
}

// The parsed query drives the engine end to end.
TEST(SqlParserTest, ParsedQueryRunsOnEngine) {
  Catalog catalog;
  std::string error;
  auto parsed = Parse(
      "SELECT A, C, SUM(B * D * E) "
      "FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A, C;",
      &catalog, PaperRegistry(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  VariableOrder vo = VariableOrder::Auto(*parsed->query);
  ViewTree tree(parsed->query.get(), &vo);
  tree.MaterializeAll();
  IvmEngine<F64Ring> engine(&tree, SumLiftings(*parsed));
  Database<F64Ring> db = MakeDatabase<F64Ring>(*parsed->query);
  engine.Initialize(db);

  auto insert = [&](const char* rel, Tuple t) {
    int idx = parsed->query->RelationIndexByName(rel);
    Relation<F64Ring> delta(parsed->query->relation(idx).schema);
    delta.Add(std::move(t), 1.0);
    engine.ApplyDelta(idx, delta);
  };
  insert("R", Tuple::Ints({1, 10}));
  insert("S", Tuple::Ints({1, 2, 5}));
  insert("T", Tuple::Ints({2, 3}));

  // SUM(B*D*E) for (A=1, C=2) = 10 * 3 * 5 = 150.
  auto pos = engine.result().schema().PositionsOf(
      Schema{catalog.Lookup("A"), catalog.Lookup("C")});
  (void)pos;
  ASSERT_EQ(engine.result().size(), 1u);
  engine.result().ForEach([&](const Tuple& k, const double& v) {
    (void)k;
    EXPECT_DOUBLE_EQ(v, 150.0);
  });
}

}  // namespace
}  // namespace fivm::sql
