// Equivalence of compiled propagation plans (src/plan/) with the seed
// interpreter semantics: randomized insert/delete streams over the fig7
// housing schema, the fig13 triangle, and an indicator-projection tree must
// leave every materialized store identical whether deltas flow through the
// engine's compiled plan path or through a reference interpreter that
// re-derives the schema algebra per update (the seed PropagateUp loop,
// reproduced here against the engine's public store API). Data is
// integer-valued, so regression-ring aggregates are exactly representable
// and equality is bitwise, not approximate.
//
// Scope of the oracle: the reference arm uses the schema-deriving
// relation_ops overloads, which since PR 3 compile a spec on the fly — so
// these tests pin down what the *plan layer* adds (once-compiled route,
// step sequencing, fused-marg placement, scratch ping-pong/reuse, store
// surrender points), not the operator executors themselves. Operator
// semantics are anchored independently by the pre-existing suites
// (ivm_engine_test's hand-computed Figure 2d/Example 4.1 values,
// property_sweep_test vs full re-evaluation, relation_ops_test,
// baselines_test cross-checks).
//
// Also the plan-derived prewarming contract: PrewarmPropagationIndexes
// builds exactly the secondary indexes the compiled joins probe — no more,
// and none left to be built lazily during (possibly concurrent)
// propagation. The concurrent section runs under the CI TSan job, where a
// lazy IndexOn on the propagation path would be reported as a data race.

#include <gtest/gtest.h>

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/exec/thread_pool.h"
#include "src/ml/cofactor.h"
#include "src/plan/propagation_plan.h"
#include "src/rings/regression_ring.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"
#include "src/workloads/housing.h"
#include "src/workloads/twitter.h"

namespace fivm {
namespace {

struct Update {
  int relation;
  Tuple key;
  int64_t multiplicity;  // +1 insert, -1 delete
};

std::vector<Update> RandomStream(const Query& query, size_t n,
                                 int64_t key_domain, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> stream;
  stream.reserve(n);
  std::vector<std::vector<Tuple>> inserted(query.relation_count());
  for (size_t i = 0; i < n; ++i) {
    int r = static_cast<int>(rng.UniformInt(0, query.relation_count() - 1));
    bool can_delete = !inserted[r].empty();
    if (can_delete && rng.Bernoulli(0.25)) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inserted[r].size()) - 1));
      stream.push_back(Update{r, inserted[r][pick], -1});
      inserted[r][pick] = inserted[r].back();
      inserted[r].pop_back();
      continue;
    }
    Tuple t;
    for (size_t c = 0; c < query.relation(r).schema.size(); ++c) {
      t.Append(Value::Int(rng.UniformInt(0, key_domain)));
    }
    inserted[r].push_back(t);
    stream.push_back(Update{r, std::move(t), 1});
  }
  return stream;
}

/// The seed engine's interpreted trigger, reproduced against an engine's
/// public API: per update it re-derives every schema intersection/union,
/// position map and join strategy from the view tree (via the
/// schema-deriving relation_ops overloads) and writes the stores through
/// AbsorbStoreDelta. The compiled plan path must match this bit for bit.
template <typename Ring>
class SeedInterpreter {
 public:
  using Element = typename Ring::Element;

  explicit SeedInterpreter(IvmEngine<Ring>* engine) : e_(engine) {
    const ViewTree& tree = e_->tree();
    counts_.resize(tree.nodes().size());
    for (size_t i = 0; i < tree.nodes().size(); ++i) {
      const ViewTree::Node& n = tree.node(static_cast<int>(i));
      if (n.indicator_for >= 0) {
        counts_[i] = Relation<I64Ring>(n.out_schema);
      }
    }
  }

  void ApplyDelta(int relation, Relation<Ring> delta) {
    const ViewTree& tree = e_->tree();
    std::vector<std::pair<int, Relation<Ring>>> indicator_deltas;
    for (int leaf : tree.IndicatorLeavesOfRelation(relation)) {
      indicator_deltas.emplace_back(leaf,
                                    ComputeIndicatorDelta(leaf, delta));
    }

    int leaf = tree.LeafOfRelation(relation);
    if (tree.node(leaf).materialized) e_->AbsorbStoreDelta(leaf, delta);
    PropagateUp(leaf,
                Reordered(std::move(delta), tree.node(leaf).out_schema));

    for (auto& [ind_leaf, ind_delta] : indicator_deltas) {
      if (ind_delta.empty()) continue;
      if (tree.node(ind_leaf).materialized) {
        e_->AbsorbStoreDelta(ind_leaf, ind_delta);
      }
      PropagateUp(ind_leaf, std::move(ind_delta));
    }
  }

 private:
  void PropagateUp(int from, Relation<Ring> cur) {
    const ViewTree& tree = e_->tree();
    const LiftingMap<Ring>& lifts = e_->lifts();
    Relation<Ring> owned = std::move(cur);
    Relation<Ring> held;
    const Relation<Ring>* left = &owned;
    int prev = from;
    int idx = tree.node(from).parent;
    while (idx >= 0) {
      if (left->empty()) return;
      const ViewTree::Node& n = tree.node(idx);
      Schema store_marg = n.marg_vars.Minus(n.retained_vars);
      int last_sibling = -1;
      for (int c : n.children) {
        if (c != prev) last_sibling = c;
      }
      for (int c : n.children) {
        if (c == prev) continue;
        ASSERT_TRUE(tree.node(c).materialized);
        Schema marg = tree.node(c).retained_vars;
        if (c == last_sibling && !store_marg.empty()) {
          marg = marg.Union(store_marg);
          store_marg = Schema{};
        }
        owned = JoinAndMarginalize(*left, e_->store(c), marg, lifts);
        left = &owned;
      }
      if (!store_marg.empty()) {
        owned = Marginalize(*left, store_marg, lifts);
        left = &owned;
      }
      if (n.materialized) {
        if (left != &owned) owned = *left;
        held = std::move(owned);
        e_->AbsorbStoreDelta(idx, held);
        left = &held;
      }
      Schema out_marg = n.marg_vars.Intersect(n.retained_vars);
      if (!out_marg.empty()) {
        owned = Marginalize(*left, out_marg, lifts);
        left = &owned;
      }
      prev = idx;
      idx = n.parent;
    }
  }

  Relation<Ring> ComputeIndicatorDelta(int ind_leaf,
                                       const Relation<Ring>& delta) {
    const ViewTree& tree = e_->tree();
    const ViewTree::Node& ln = tree.node(ind_leaf);
    int relation = ln.indicator_for;
    int rleaf = tree.LeafOfRelation(relation);
    const Relation<Ring>& rstore = e_->store(rleaf);
    Relation<I64Ring>& counts = counts_[ind_leaf];

    auto store_pos = delta.schema().PositionsOf(rstore.schema());
    auto pk_pos = delta.schema().PositionsOf(ln.out_schema);

    Relation<Ring> dind(ln.out_schema);
    delta.ForEach([&](const Tuple& t, const Element& p) {
      const Element* old = rstore.Find(TupleView(t, store_pos));
      bool old_nz = old != nullptr;
      Element updated = old ? Ring::Add(*old, p) : p;
      bool new_nz = !Ring::IsZero(updated);
      if (old_nz == new_nz) return;
      Tuple pk = t.Project(pk_pos);
      const int64_t* before_ptr = counts.Find(pk);
      int64_t before = before_ptr ? *before_ptr : 0;
      if (new_nz) {
        counts.Add(pk, 1);
        if (before == 0) dind.Add(pk, Ring::One());
      } else {
        counts.Add(pk, -1);
        if (before == 1) dind.Add(pk, Ring::Neg(Ring::One()));
      }
    });
    return dind;
  }

  IvmEngine<Ring>* e_;
  std::vector<Relation<I64Ring>> counts_;
};

/// Runs `stream` through the compiled engine (ApplyDelta) and through the
/// reference interpreter over a twin engine, asserting store equality at
/// every checkpoint.
template <typename Ring>
void CheckCompiledMatchesInterpreter(IvmEngine<Ring>& compiled,
                                     IvmEngine<Ring>& reference,
                                     const Query& query,
                                     const std::vector<Update>& stream,
                                     size_t checkpoint_every) {
  SeedInterpreter<Ring> interp(&reference);
  size_t step = 0;
  for (const Update& u : stream) {
    Relation<Ring> d1(query.relation(u.relation).schema);
    d1.Add(u.key,
           u.multiplicity > 0 ? Ring::One() : Ring::Neg(Ring::One()));
    Relation<Ring> d2 = d1;
    compiled.ApplyDelta(u.relation, std::move(d1));
    interp.ApplyDelta(u.relation, std::move(d2));
    ++step;
    if (step % checkpoint_every != 0 && step != stream.size()) continue;
    const ViewTree& tree = compiled.tree();
    for (size_t i = 0; i < tree.nodes().size(); ++i) {
      int node = static_cast<int>(i);
      if (!tree.node(node).materialized) continue;
      ASSERT_TRUE(ContentEquals(compiled.store(node), reference.store(node)))
          << "store " << node << " (" << tree.node(node).name
          << ") diverged at step " << step;
    }
  }
}

TEST(PlanEquivalenceTest, Fig13TriangleMatchesSeedInterpreter) {
  workloads::TwitterConfig cfg;
  cfg.nodes = 80;
  cfg.edges = 700;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  ViewTree tree(&query, &ds->vorder);
  tree.ComputeMaterialization({0, 1, 2});
  auto slots = tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> compiled(&tree,
                                     ml::RegressionLiftings(query, slots));
  IvmEngine<RegressionRing> reference(&tree,
                                      ml::RegressionLiftings(query, slots));
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
  compiled.Initialize(empty);
  reference.Initialize(empty);

  auto stream = RandomStream(query, 3000, 35, /*seed=*/101);
  CheckCompiledMatchesInterpreter(compiled, reference, query, stream, 500);
}

TEST(PlanEquivalenceTest, Fig7HousingMatchesSeedInterpreter) {
  workloads::HousingConfig cfg;
  cfg.postcodes = 40;
  cfg.scale = 1;
  auto ds = workloads::HousingDataset::Generate(cfg);
  Query& query = *ds->query;
  ViewTree tree(&query, &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> compiled(&tree,
                                     ml::RegressionLiftings(query, slots));
  IvmEngine<RegressionRing> reference(&tree,
                                      ml::RegressionLiftings(query, slots));
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
  compiled.Initialize(empty);
  reference.Initialize(empty);

  // Integer key domain keeps the 27-attribute regression aggregates exactly
  // representable, so the comparison is bitwise.
  auto stream = RandomStream(query, 1200, 20, /*seed=*/55);
  CheckCompiledMatchesInterpreter(compiled, reference, query, stream, 300);
}

TEST(PlanEquivalenceTest, IndicatorTreeMatchesSeedInterpreter) {
  workloads::TwitterConfig cfg;
  cfg.nodes = 50;
  cfg.edges = 350;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  ViewTree tree(&query, &ds->vorder);
  ASSERT_GT(tree.AddIndicatorProjections(), 0);
  tree.ComputeMaterialization({0, 1, 2});
  auto slots = tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> compiled(&tree,
                                     ml::RegressionLiftings(query, slots));
  IvmEngine<RegressionRing> reference(&tree,
                                      ml::RegressionLiftings(query, slots));
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
  compiled.Initialize(empty);
  reference.Initialize(empty);

  auto stream = RandomStream(query, 2000, 25, /*seed=*/7);
  CheckCompiledMatchesInterpreter(compiled, reference, query, stream, 250);
}

TEST(PlanEquivalenceTest, I64CountQueryMatchesSeedInterpreter) {
  // The paper's A-(B, C-(D,E)) acyclic query under the exact counting ring:
  // equality here is bitwise by construction.
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
        C = catalog.Intern("C"), D = catalog.Intern("D"),
        E = catalog.Intern("E");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{A, C, E});
  query.AddRelation("T", Schema{C, D});
  VariableOrder vo;
  int a = vo.AddNode(A, -1);
  vo.AddNode(B, a);
  int c = vo.AddNode(C, a);
  vo.AddNode(D, c);
  vo.AddNode(E, c);
  std::string error;
  ASSERT_TRUE(vo.Finalize(query, &error)) << error;
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();

  IvmEngine<I64Ring> compiled(&tree, {});
  IvmEngine<I64Ring> reference(&tree, {});
  Database<I64Ring> empty = MakeDatabase<I64Ring>(query);
  compiled.Initialize(empty);
  reference.Initialize(empty);

  auto stream = RandomStream(query, 4000, 10, /*seed=*/13);
  CheckCompiledMatchesInterpreter(compiled, reference, query, stream, 400);
}

/// Counts secondary indexes across every store of the engine's tree.
template <typename Ring>
size_t TotalSecondaryIndexes(const IvmEngine<Ring>& engine) {
  size_t total = 0;
  for (size_t i = 0; i < engine.tree().nodes().size(); ++i) {
    total += engine.store(static_cast<int>(i)).SecondaryIndexCount();
  }
  return total;
}

TEST(PlanEquivalenceTest, PrewarmBuildsExactlyTheProbedIndexes) {
  workloads::TwitterConfig cfg;
  cfg.nodes = 60;
  cfg.edges = 500;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;

  for (int r = 0; r < query.relation_count(); ++r) {
    // Fresh engine per relation so the index census is attributable to one
    // plan's prewarm alone.
    ViewTree tree(&query, &ds->vorder);
    tree.ComputeMaterialization({0, 1, 2});
    auto slots = tree.AssignAggregateSlots();
    IvmEngine<RegressionRing> engine(&tree,
                                     ml::RegressionLiftings(query, slots));
    Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
    for (int rel = 0; rel < query.relation_count(); ++rel) {
      for (const Tuple& t : ds->tuples[rel]) {
        db[rel].Add(t, RegressionRing::One());
      }
    }
    engine.Initialize(db);
    ASSERT_EQ(TotalSecondaryIndexes(engine), 0u)
        << "Initialize must not leave secondary indexes on stores";

    const plan::PropagationPlan& plan = engine.plans().ForRelation(r);
    engine.PrewarmPropagationIndexes(r);

    // Exactly the plan's probe list was built...
    for (const auto& probe : plan.secondary_probes()) {
      EXPECT_TRUE(engine.store(probe.node).HasIndexOn(probe.key));
    }
    size_t distinct = TotalSecondaryIndexes(engine);
    size_t planned = 0;
    for (size_t i = 0; i < plan.secondary_probes().size(); ++i) {
      const auto& p = plan.secondary_probes()[i];
      bool dup = false;
      for (size_t j = 0; j < i; ++j) {
        const auto& q = plan.secondary_probes()[j];
        if (q.node == p.node && q.key == p.key) dup = true;
      }
      if (!dup) ++planned;
    }
    EXPECT_EQ(distinct, planned) << "prewarm built an index no join probes";

    // ...and propagation builds nothing further: concurrent shards only
    // perform read-only probes (a lazy IndexOn here would be a TSan race).
    const Schema& leaf_schema = plan.leaf_schema();
    exec::ThreadPool pool(4);
    std::vector<Relation<RegressionRing>> shard_delta;
    util::Rng rng(99 + static_cast<uint64_t>(r));
    for (size_t s = 0; s < 4; ++s) {
      shard_delta.emplace_back(leaf_schema);
      for (int k = 0; k < 50; ++k) {
        Tuple t;
        for (size_t col = 0; col < leaf_schema.size(); ++col) {
          t.Append(Value::Int(rng.UniformInt(0, 60)));
        }
        shard_delta[s].Add(std::move(t), RegressionRing::One());
      }
    }
    std::vector<std::vector<std::pair<int, Relation<RegressionRing>>>>
        staged(4);
    std::vector<std::function<void()>> tasks;
    for (size_t s = 0; s < 4; ++s) {
      tasks.push_back([&engine, &plan, &shard_delta, &staged, s] {
        IvmEngine<RegressionRing>::PropagationScratch scratch;
        engine.PropagateDelta(
            plan.leaf(), std::move(shard_delta[s]),
            [&staged, s](int node, Relation<RegressionRing>&& d)
                -> const Relation<RegressionRing>& {
              staged[s].emplace_back(node, std::move(d));
              return staged[s].back().second;
            },
            &scratch);
      });
    }
    pool.RunTasks(std::move(tasks));
    EXPECT_EQ(TotalSecondaryIndexes(engine), distinct)
        << "propagation from relation " << r << " built a lazy index";
  }
}

TEST(PlanEquivalenceTest, DebugStringDumpsEveryRoute) {
  workloads::TwitterConfig cfg;
  cfg.nodes = 30;
  cfg.edges = 150;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  ViewTree tree(&query, &ds->vorder);
  tree.ComputeMaterialization({0, 1, 2});
  auto slots = tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> engine(&tree,
                                   ml::RegressionLiftings(query, slots));

  std::string dump = engine.plans().DebugString();
  EXPECT_NE(dump.find("plan for leaf"), std::string::npos);
  EXPECT_NE(dump.find("partition key"), std::string::npos);
  EXPECT_NE(dump.find("store δ"), std::string::npos);
  // One route per leaf, each naming its join kind.
  for (int r = 0; r < query.relation_count(); ++r) {
    const plan::PropagationPlan& p = engine.plans().ForRelation(r);
    std::string one = p.DebugString(tree);
    EXPECT_NE(one.find(tree.node(p.leaf()).name), std::string::npos);
    EXPECT_FALSE(p.steps().empty());
    EXPECT_TRUE(tree.node(p.leaf()).out_schema.ContainsAll(
        p.partition_key()));
  }
}

}  // namespace
}  // namespace fivm
