#include "src/rings/regression_ring.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/rings/sparse_regression_ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

TEST(RegressionRingTest, LiftShape) {
  auto p = RegressionPayload::Lift(2, 3.0);
  EXPECT_DOUBLE_EQ(p.count(), 1.0);
  EXPECT_DOUBLE_EQ(p.Sum(2), 3.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(2, 2), 9.0);
  EXPECT_DOUBLE_EQ(p.Sum(1), 0.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(1, 2), 0.0);
}

TEST(RegressionRingTest, ProductOfTwoLiftsGivesCrossTerm) {
  // One tuple with D=d, E=e: SUM(D*E) = d*e.
  auto p = Mul(RegressionPayload::Lift(0, 2.0), RegressionPayload::Lift(1, 5.0));
  EXPECT_DOUBLE_EQ(p.count(), 1.0);
  EXPECT_DOUBLE_EQ(p.Sum(0), 2.0);
  EXPECT_DOUBLE_EQ(p.Sum(1), 5.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(1, 1), 25.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(1, 0), 10.0);  // symmetric accessor
}

TEST(RegressionRingTest, PaperExample63) {
  // V@D_T[c2] = (2, s=d2+d3, Q=d2^2+d3^2) at slot 3 (variable D).
  double d2 = 2.0, d3 = 3.0, e4 = 7.0, c2 = 5.0;
  auto vt = Add(RegressionPayload::Lift(3, d2), RegressionPayload::Lift(3, d3));
  EXPECT_DOUBLE_EQ(vt.count(), 2.0);
  EXPECT_DOUBLE_EQ(vt.Sum(3), d2 + d3);
  EXPECT_DOUBLE_EQ(vt.Cofactor(3, 3), d2 * d2 + d3 * d3);

  // V@E_S[a2,c2] = (1, s=e4, Q=e4^2) at slot 4 (variable E).
  auto vs = RegressionPayload::Lift(4, e4);
  // g_C(c2) at slot 2 (variable C).
  auto gc = RegressionPayload::Lift(2, c2);

  // V@C_ST[a2] = vt * vs * gc — the paper's worked example.
  auto v = Mul(Mul(vt, vs), gc);
  EXPECT_DOUBLE_EQ(v.count(), 2.0);
  EXPECT_DOUBLE_EQ(v.Sum(2), 2 * c2);
  EXPECT_DOUBLE_EQ(v.Sum(3), d2 + d3);
  EXPECT_DOUBLE_EQ(v.Sum(4), 2 * e4);
  EXPECT_DOUBLE_EQ(v.Cofactor(2, 2), 2 * c2 * c2);
  EXPECT_DOUBLE_EQ(v.Cofactor(2, 3), c2 * (d2 + d3));
  EXPECT_DOUBLE_EQ(v.Cofactor(2, 4), 2 * c2 * e4);
  EXPECT_DOUBLE_EQ(v.Cofactor(3, 3), d2 * d2 + d3 * d3);
  EXPECT_DOUBLE_EQ(v.Cofactor(3, 4), (d2 + d3) * e4);
  EXPECT_DOUBLE_EQ(v.Cofactor(4, 4), 2 * e4 * e4);
}

// Reference check: the payload of a design matrix equals the directly
// computed sufficient statistics (c = row count, s_i = sum of column i,
// Q_ij = sum of products).
TEST(RegressionRingTest, MatchesDirectSufficientStatistics) {
  util::Rng rng(77);
  constexpr int kVars = 4;
  constexpr int kRows = 50;
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(kVars));
  for (auto& row : rows) {
    for (double& x : row) x = static_cast<double>(rng.UniformInt(-5, 5));
  }

  RegressionPayload total;  // zero
  for (const auto& row : rows) {
    RegressionPayload tuple_payload = RegressionPayload::Count(1.0);
    for (int j = 0; j < kVars; ++j) {
      tuple_payload =
          Mul(tuple_payload, RegressionPayload::Lift(j, row[j]));
    }
    total.AddInPlace(tuple_payload);
  }

  EXPECT_DOUBLE_EQ(total.count(), kRows);
  for (int i = 0; i < kVars; ++i) {
    double s = 0;
    for (const auto& row : rows) s += row[i];
    EXPECT_DOUBLE_EQ(total.Sum(i), s) << "slot " << i;
    for (int j = i; j < kVars; ++j) {
      double q = 0;
      for (const auto& row : rows) q += row[i] * row[j];
      EXPECT_DOUBLE_EQ(total.Cofactor(i, j), q) << i << "," << j;
    }
  }
}

TEST(RegressionRingTest, AddMergesDisjointRanges) {
  auto a = RegressionPayload::Lift(0, 1.0);
  auto b = RegressionPayload::Lift(5, 2.0);
  auto s = Add(a, b);
  EXPECT_EQ(s.lo(), 0u);
  EXPECT_EQ(s.hi(), 6u);
  EXPECT_DOUBLE_EQ(s.Sum(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Sum(5), 2.0);
  EXPECT_DOUBLE_EQ(s.Sum(3), 0.0);
  EXPECT_DOUBLE_EQ(s.Cofactor(0, 5), 0.0);
}

TEST(RegressionRingTest, CountOnlyPayloadScales) {
  auto two = RegressionPayload::Count(2.0);
  auto lift = RegressionPayload::Lift(1, 3.0);
  auto p = Mul(two, lift);
  EXPECT_DOUBLE_EQ(p.count(), 2.0);
  EXPECT_DOUBLE_EQ(p.Sum(1), 6.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(1, 1), 18.0);
}

TEST(RegressionRingTest, NegationCancels) {
  auto p = Mul(RegressionPayload::Lift(0, 2.0), RegressionPayload::Lift(1, 3.0));
  auto zero = Add(p, -p);
  EXPECT_TRUE(zero.IsZero());
}

TEST(RegressionRingTest, AddInPlaceFastPathContainedRange) {
  auto wide = Add(RegressionPayload::Lift(0, 1.0), RegressionPayload::Lift(4, 1.0));
  auto narrow = RegressionPayload::Lift(2, 5.0);
  auto expected = Add(wide, narrow);
  wide.AddInPlace(narrow);
  EXPECT_TRUE(wide == expected);
}

TEST(RegressionRingTest, DenseAndSparseEncodingsAgree) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    // Build the same random expression in both encodings.
    auto dense_a = RegressionPayload::Count(1.0);
    auto sparse_a = SparseRegressionPayload::Count(1.0);
    for (int i = 0; i < 3; ++i) {
      uint32_t slot = static_cast<uint32_t>(rng.Uniform(4));
      double x = static_cast<double>(rng.UniformInt(-4, 4));
      dense_a = Mul(dense_a, RegressionPayload::Lift(2 * i, x));
      sparse_a = Mul(sparse_a, SparseRegressionPayload::Lift(2 * i, x));
      dense_a = Add(dense_a, RegressionPayload::Lift(slot, x));
      sparse_a = Add(sparse_a, SparseRegressionPayload::Lift(slot, x));
    }
    EXPECT_DOUBLE_EQ(dense_a.count(), sparse_a.count());
    for (uint32_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(dense_a.Sum(i), sparse_a.Sum(i)) << "slot " << i;
      for (uint32_t j = i; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(dense_a.Cofactor(i, j), sparse_a.Cofactor(i, j))
            << i << "," << j;
      }
    }
  }
}

TEST(SparseRegressionRingTest, LiftAndAccessors) {
  auto p = SparseRegressionPayload::Lift(3, 4.0);
  EXPECT_DOUBLE_EQ(p.count(), 1.0);
  EXPECT_DOUBLE_EQ(p.Sum(3), 4.0);
  EXPECT_DOUBLE_EQ(p.Cofactor(3, 3), 16.0);
  EXPECT_EQ(p.LinearEntryCount(), 1u);
  EXPECT_EQ(p.QuadraticEntryCount(), 1u);
}

TEST(SparseRegressionRingTest, CrossTermDiagonalDoubled) {
  // M = sa sb^T + sb sa^T with sa = sb = e_0 x: M(0,0) = 2x^2 (on top of the
  // scaled Q terms).
  auto a = SparseRegressionPayload::Lift(0, 3.0);
  auto p = Mul(a, a);
  // c=1, Q = 1*9 + 1*9 (scaled Qa, Qb) + 2*3*3 (cross) = 36.
  EXPECT_DOUBLE_EQ(p.Cofactor(0, 0), 36.0);
  // Dense encoding agrees.
  auto d = RegressionPayload::Lift(0, 3.0);
  EXPECT_DOUBLE_EQ(Mul(d, d).Cofactor(0, 0), 36.0);
}

}  // namespace
}  // namespace fivm
