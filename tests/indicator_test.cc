// Appendix B: GYO reduction, indicator projections, and IVM for the cyclic
// triangle query.

#include <gtest/gtest.h>

#include "src/core/gyo.h"
#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

TEST(GyoTest, AcyclicPathJoin) {
  // R(A,B), S(B,C), T(C,D) — acyclic.
  EXPECT_TRUE(IsAcyclic({Schema{0, 1}, Schema{1, 2}, Schema{2, 3}}));
}

TEST(GyoTest, TriangleIsCyclic) {
  auto core = GyoCyclicCore({Schema{0, 1}, Schema{1, 2}, Schema{2, 0}});
  EXPECT_EQ(core.size(), 3u);
}

TEST(GyoTest, StarJoinIsAcyclic) {
  EXPECT_TRUE(IsAcyclic({Schema{0, 1}, Schema{0, 2}, Schema{0, 3}}));
}

TEST(GyoTest, ContainedEdgeIsAbsorbed) {
  // {A,B} ⊆ {A,B,C}: ear removal absorbs it; the rest is acyclic.
  EXPECT_TRUE(IsAcyclic({Schema{0, 1}, Schema{0, 1, 2}, Schema{2, 3}}));
}

TEST(GyoTest, Loop4IsCyclic) {
  auto core = GyoCyclicCore(
      {Schema{0, 1}, Schema{1, 2}, Schema{2, 3}, Schema{3, 0}});
  EXPECT_EQ(core.size(), 4u);
}

TEST(GyoTest, Loop4WithChordReduces) {
  // Adding the chord {0, 2} splits the 4-loop into two triangles; the
  // hypergraph stays cyclic.
  auto core = GyoCyclicCore({Schema{0, 1}, Schema{1, 2}, Schema{2, 3},
                             Schema{3, 0}, Schema{0, 2}});
  EXPECT_FALSE(core.empty());
}

TEST(GyoTest, EmptyInputIsAcyclic) {
  EXPECT_TRUE(IsAcyclic({}));
}

// --------------------------------------------------------------------------
// Triangle query fixture: R(A,B), S(B,C), T(C,A) over the order A-B-C.
// --------------------------------------------------------------------------

struct TriangleFixture {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;

  TriangleFixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.AddRelation("T", Schema{C, A});
    int a = vo.AddNode(A, -1);
    int b = vo.AddNode(B, a);
    vo.AddNode(C, b);
    std::string error;
    bool ok = vo.Finalize(query, &error);
    assert(ok);
    (void)ok;
  }
};

// Figure 9 (right): the view tree for A-B-C gets the indicator ∃_{A,B} R
// below the view at C.
TEST(IndicatorTest, TriangleGetsIndicatorProjection) {
  TriangleFixture f;
  ViewTree tree(&f.query, &f.vo);
  int added = tree.AddIndicatorProjections();
  EXPECT_EQ(added, 1);

  auto leaves = tree.IndicatorLeavesOfRelation(0);  // R
  ASSERT_EQ(leaves.size(), 1u);
  const auto& ind = tree.node(leaves[0]);
  EXPECT_TRUE(ind.out_schema.SameSet(Schema{f.A, f.B}));
  // It hangs below the C view (parent joins S and T).
  const auto& parent = tree.node(ind.parent);
  EXPECT_TRUE(parent.marg_vars.Contains(f.C));
}

TEST(IndicatorTest, AcyclicQueryGetsNoIndicators) {
  Catalog catalog;
  Query q(&catalog);
  q.AddRelation("R", catalog.MakeSchema({"A", "B"}));
  q.AddRelation("S", catalog.MakeSchema({"B", "C"}));
  VariableOrder vo = VariableOrder::Auto(q);
  ViewTree tree(&q, &vo);
  EXPECT_EQ(tree.AddIndicatorProjections(), 0);
}

// Example B.1 / B.3: the indicator bounds the size of the view at C to the
// size of R (instead of |S| x |T| pairings).
TEST(IndicatorTest, IndicatorBoundsViewSize) {
  TriangleFixture f;

  // S and T share C-values so that V@C_ST is quadratically large without
  // the indicator.
  Database<I64Ring> db = MakeDatabase<I64Ring>(f.query);
  const int64_t n = 30;
  for (int64_t i = 0; i < n; ++i) {
    db[1].Add(Tuple::Ints({i, 0}), 1);  // S(b_i, c0)
    db[2].Add(Tuple::Ints({0, i}), 1);  // T(c0, a_i)
  }
  db[0].Add(Tuple::Ints({1, 1}), 1);  // single R edge

  ViewTree plain(&f.query, &f.vo);
  plain.MaterializeAll();
  IvmEngine<I64Ring> plain_engine(&plain, LiftingMap<I64Ring>{});
  plain_engine.Initialize(db);

  ViewTree indexed(&f.query, &f.vo);
  indexed.AddIndicatorProjections();
  indexed.MaterializeAll();
  IvmEngine<I64Ring> ind_engine(&indexed, LiftingMap<I64Ring>{});
  ind_engine.Initialize(db);

  // Same result.
  const int64_t* a = plain_engine.result().Find(Tuple());
  const int64_t* b = ind_engine.result().Find(Tuple());
  EXPECT_EQ(a ? *a : 0, b ? *b : 0);

  // V@C_ST (parent of the S leaf) has n*n keys without the indicator but
  // only 1 with it.
  int vc_plain = plain.node(plain.LeafOfRelation(1)).parent;
  int vc_ind = indexed.node(indexed.LeafOfRelation(1)).parent;
  EXPECT_EQ(plain_engine.store(vc_plain).size(),
            static_cast<size_t>(n * n));
  EXPECT_EQ(ind_engine.store(vc_ind).size(), 1u);
}

// Randomized: triangle counts maintained with and without indicators agree
// under mixed insert/delete streams to all three relations.
class TriangleIvmTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleIvmTest, IndicatorMaintenanceMatchesPlain) {
  TriangleFixture f;
  util::Rng rng(900 + GetParam() * 31);

  ViewTree plain(&f.query, &f.vo);
  plain.MaterializeAll();
  IvmEngine<I64Ring> plain_engine(&plain, LiftingMap<I64Ring>{});

  ViewTree indexed(&f.query, &f.vo);
  ASSERT_EQ(indexed.AddIndicatorProjections(), 1);
  indexed.ComputeMaterialization({0, 1, 2});
  IvmEngine<I64Ring> ind_engine(&indexed, LiftingMap<I64Ring>{});

  Database<I64Ring> db = MakeDatabase<I64Ring>(f.query);
  plain_engine.Initialize(db);
  ind_engine.Initialize(db);

  for (int step = 0; step < 120; ++step) {
    int rel = static_cast<int>(rng.Uniform(3));
    Relation<I64Ring> delta(f.query.relation(rel).schema);
    Tuple t = Tuple::Ints(
        {rng.UniformInt(0, 3), rng.UniformInt(0, 3)});
    delta.Add(t, rng.Bernoulli(0.35) ? -1 : 1);

    plain_engine.ApplyDelta(rel, delta);
    ind_engine.ApplyDelta(rel, delta);
    db[rel].UnionWith(delta);

    const int64_t* a = plain_engine.result().Find(Tuple());
    const int64_t* b = ind_engine.result().Find(Tuple());
    ASSERT_EQ(a ? *a : 0, b ? *b : 0) << "step " << step;

    if (step % 30 == 29) {
      // Also agree with from-scratch evaluation.
      auto re = IvmEngine<I64Ring>::Evaluate(plain, LiftingMap<I64Ring>{}, db);
      const int64_t* c = re.Find(Tuple());
      ASSERT_EQ(a ? *a : 0, c ? *c : 0) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleIvmTest, ::testing::Range(0, 6));

// Example B.2: support counting — deleting one of two supporting tuples
// leaves the indicator unchanged; deleting the last one retracts it.
TEST(IndicatorTest, SupportCountingSemantics) {
  TriangleFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.AddIndicatorProjections();
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});

  Database<I64Ring> db = MakeDatabase<I64Ring>(f.query);
  // Triangle (a=1, b=2, c=3) present.
  db[1].Add(Tuple::Ints({2, 3}), 1);
  db[2].Add(Tuple::Ints({3, 1}), 1);
  engine.Initialize(db);

  // R(1,2) with multiplicity 2 via two inserts.
  Relation<I64Ring> ins(Schema{f.A, f.B});
  ins.Add(Tuple::Ints({1, 2}), 1);
  engine.ApplyDelta(0, ins);
  engine.ApplyDelta(0, ins);
  EXPECT_EQ(*engine.result().Find(Tuple()), 2);

  // Delete one copy: count 1 remains, indicator unchanged.
  Relation<I64Ring> del(Schema{f.A, f.B});
  del.Add(Tuple::Ints({1, 2}), -1);
  engine.ApplyDelta(0, del);
  EXPECT_EQ(*engine.result().Find(Tuple()), 1);

  // Delete the last copy: the triangle disappears.
  engine.ApplyDelta(0, del);
  EXPECT_EQ(engine.result().Find(Tuple()), nullptr);
}

}  // namespace
}  // namespace fivm
