// The cached-hash invariant: Tuple::Hash() must always equal the left-fold
// of value hashes, no matter how the tuple was built (constructor, Append,
// Project, Concat, Clear-and-reuse) — and TupleView must hash and compare
// exactly like the owning tuple it stands for. Relation compaction rebuilds
// its indexes from those cached hashes, so it is covered here too.

#include "src/data/tuple.h"

#include <gtest/gtest.h>

#include "src/data/relation.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"
#include "src/util/small_vector.h"

namespace fivm {
namespace {

Tuple RandomTuple(util::Rng& rng, size_t n) {
  Tuple t;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      t.Append(Value::Double(rng.UniformDouble(-100.0, 100.0)));
    } else {
      t.Append(Value::Int(rng.UniformInt(-1000, 1000)));
    }
  }
  return t;
}

// Reference: rebuild an identical tuple from scratch; equal values must give
// an equal (freshly computed) hash.
Tuple Rebuilt(const Tuple& t) {
  Tuple out;
  for (const Value& v : t) out.Append(v);
  return out;
}

TEST(TupleHashTest, ConstructorsAgreeWithAppend) {
  Tuple a{Value::Int(1), Value::Double(2.5), Value::Int(-3)};
  Tuple b;
  b.Append(Value::Int(1));
  b.Append(Value::Double(2.5));
  b.Append(Value::Int(-3));
  util::SmallVector<Value, 4> vals;
  vals.push_back(Value::Int(1));
  vals.push_back(Value::Double(2.5));
  vals.push_back(Value::Int(-3));
  Tuple c{std::move(vals)};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), Tuple::Ints({0}).Hash());
}

TEST(TupleHashTest, ProjectPreservesHashInvariant) {
  util::Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    Tuple t = RandomTuple(rng, n);
    util::SmallVector<uint32_t, 6> positions;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.6)) {
        positions.push_back(static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
      }
    }
    Tuple proj = t.Project(positions);
    EXPECT_EQ(proj.Hash(), Rebuilt(proj).Hash());
  }
}

TEST(TupleHashTest, ConcatPreservesHashInvariant) {
  util::Rng rng(43);
  for (int round = 0; round < 200; ++round) {
    Tuple a = RandomTuple(rng, static_cast<size_t>(rng.UniformInt(0, 5)));
    Tuple b = RandomTuple(rng, static_cast<size_t>(rng.UniformInt(0, 5)));
    Tuple cat = a.Concat(b);
    EXPECT_EQ(cat.Hash(), Rebuilt(cat).Hash());
    EXPECT_EQ(cat.size(), a.size() + b.size());
  }
}

TEST(TupleHashTest, ClearResetsToEmptyHash) {
  Tuple t = Tuple::Ints({1, 2, 3, 4, 5, 6});  // spills inline storage
  t.Clear();
  EXPECT_EQ(t.Hash(), Tuple().Hash());
  EXPECT_TRUE(t.empty());
  // Reuse after Clear rebuilds the same hash as a fresh tuple.
  t.Append(Value::Int(7));
  t.Append(Value::Int(8));
  EXPECT_EQ(t.Hash(), Tuple::Ints({7, 8}).Hash());
  EXPECT_EQ(t, Tuple::Ints({7, 8}));
}

TEST(TupleHashTest, EqualTuplesEqualHashes) {
  util::Rng rng(44);
  for (int round = 0; round < 100; ++round) {
    Tuple t = RandomTuple(rng, static_cast<size_t>(rng.UniformInt(0, 6)));
    EXPECT_EQ(t, Rebuilt(t));
    EXPECT_EQ(t.Hash(), Rebuilt(t).Hash());
  }
}

TEST(TupleHashTest, ViewMatchesOwningProjection) {
  util::Rng rng(45);
  for (int round = 0; round < 200; ++round) {
    size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    Tuple t = RandomTuple(rng, n);
    util::SmallVector<uint32_t, 6> positions;
    size_t k = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n)));
    for (size_t i = 0; i < k; ++i) {
      positions.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
    }
    TupleView view(t, positions);
    Tuple owned = t.Project(positions);
    EXPECT_EQ(view.Hash(), owned.Hash());
    EXPECT_TRUE(owned == view);
    EXPECT_TRUE(view == owned);
    EXPECT_EQ(view.ToTuple(), owned);
    EXPECT_EQ(view.ToTuple().Hash(), owned.Hash());
  }
}

TEST(TupleHashTest, ViewInequality) {
  Tuple t = Tuple::Ints({1, 2, 3});
  util::SmallVector<uint32_t, 6> pos{0, 1};
  TupleView view(t, pos);
  EXPECT_FALSE(Tuple::Ints({1}) == view);        // size mismatch
  EXPECT_FALSE(Tuple::Ints({1, 3}) == view);     // value mismatch
  EXPECT_TRUE(Tuple::Ints({1, 2}) == view);
}

TEST(TupleHashTest, IntAndDoubleValuesHashDistinctly) {
  // Group-by semantics: Int(1) and Double(1.0) are distinct keys, and their
  // cached hashes must be too (kind is mixed into the value hash).
  Tuple a{Value::Int(1)};
  Tuple b{Value::Double(1.0)};
  EXPECT_NE(a, b);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(TupleHashTest, CompactionKeepsProbesConsistent) {
  // Compaction re-homes entries using cached key hashes; lookups with both
  // fresh tuples and views must still land on the surviving entries.
  Relation<I64Ring> r(Schema{0, 1});
  r.IndexOn(Schema{1});
  for (int64_t i = 0; i < 1000; ++i) r.Add(Tuple::Ints({i, i % 7}), 1);
  for (int64_t i = 0; i < 900; ++i) r.Add(Tuple::Ints({i, i % 7}), -1);
  ASSERT_EQ(r.size(), 100u);
  util::SmallVector<uint32_t, 6> identity{0, 1};
  for (int64_t i = 900; i < 1000; ++i) {
    Tuple key = Tuple::Ints({i, i % 7});
    ASSERT_NE(r.Find(key), nullptr) << i;
    TupleView view(key, identity);
    ASSERT_NE(r.Find(view), nullptr) << i;
  }
  const auto& idx = r.IndexOn(Schema{1});
  size_t live = 0;
  for (int64_t g = 0; g < 7; ++g) {
    const auto* slots = idx.Probe(Tuple::Ints({g}));
    if (slots == nullptr) continue;
    for (uint32_t s : *slots) {
      if (!I64Ring::IsZero(r.PayloadAt(s))) ++live;
    }
  }
  EXPECT_EQ(live, 100u);
}

}  // namespace
}  // namespace fivm
