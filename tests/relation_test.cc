#include "src/data/relation.h"

#include <gtest/gtest.h>

#include "src/rings/ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

TEST(RelationTest, AddAndFind) {
  Relation<I64Ring> r(Schema{0, 1});
  r.Add(Tuple::Ints({1, 2}), 3);
  r.Add(Tuple::Ints({1, 2}), 4);
  r.Add(Tuple::Ints({5, 6}), 1);
  EXPECT_EQ(r.size(), 2u);
  ASSERT_NE(r.Find(Tuple::Ints({1, 2})), nullptr);
  EXPECT_EQ(*r.Find(Tuple::Ints({1, 2})), 7);
  EXPECT_EQ(r.Find(Tuple::Ints({9, 9})), nullptr);
}

TEST(RelationTest, ZeroDeltaIsIgnored) {
  Relation<I64Ring> r(Schema{0});
  r.Add(Tuple::Ints({1}), 0);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, CancellationTombstones) {
  Relation<I64Ring> r(Schema{0});
  r.Add(Tuple::Ints({1}), 5);
  r.Add(Tuple::Ints({1}), -5);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.Find(Tuple::Ints({1})), nullptr);
  // Revival after cancellation.
  r.Add(Tuple::Ints({1}), 2);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(*r.Find(Tuple::Ints({1})), 2);
}

TEST(RelationTest, ForEachSkipsDead) {
  Relation<I64Ring> r(Schema{0});
  for (int64_t i = 0; i < 10; ++i) r.Add(Tuple::Ints({i}), 1);
  for (int64_t i = 0; i < 10; i += 2) r.Add(Tuple::Ints({i}), -1);
  int64_t seen = 0;
  r.ForEach([&](const Tuple& t, const int64_t& p) {
    EXPECT_EQ(t[0].AsInt() % 2, 1);
    seen += p;
  });
  EXPECT_EQ(seen, 5);
}

TEST(RelationTest, UnionWith) {
  Relation<I64Ring> a(Schema{0});
  Relation<I64Ring> b(Schema{0});
  a.Add(Tuple::Ints({1}), 1);
  b.Add(Tuple::Ints({1}), 2);
  b.Add(Tuple::Ints({2}), 3);
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(*a.Find(Tuple::Ints({1})), 3);
  EXPECT_EQ(*a.Find(Tuple::Ints({2})), 3);
}

TEST(RelationTest, SecondaryIndexProbe) {
  Relation<I64Ring> r(Schema{0, 1, 2});
  r.Add(Tuple::Ints({1, 10, 100}), 1);
  r.Add(Tuple::Ints({1, 20, 200}), 1);
  r.Add(Tuple::Ints({2, 10, 300}), 1);
  const auto& idx = r.IndexOn(Schema{0});
  const auto* slots = idx.Probe(Tuple::Ints({1}));
  ASSERT_NE(slots, nullptr);
  EXPECT_EQ(slots->size(), 2u);
  EXPECT_EQ(idx.Probe(Tuple::Ints({3})), nullptr);
}

TEST(RelationTest, SecondaryIndexMaintainedOnInsert) {
  Relation<I64Ring> r(Schema{0, 1});
  r.Add(Tuple::Ints({1, 10}), 1);
  const auto& idx = r.IndexOn(Schema{0});
  EXPECT_EQ(idx.Probe(Tuple::Ints({1}))->size(), 1u);
  r.Add(Tuple::Ints({1, 20}), 1);
  // Re-fetch: compaction may rebuild indexes.
  const auto& idx2 = r.IndexOn(Schema{0});
  EXPECT_EQ(idx2.Probe(Tuple::Ints({1}))->size(), 2u);
}

TEST(RelationTest, SecondaryIndexOnMiddleColumn) {
  Relation<I64Ring> r(Schema{7, 8, 9});
  r.Add(Tuple::Ints({1, 2, 3}), 1);
  r.Add(Tuple::Ints({4, 2, 6}), 1);
  const auto& idx = r.IndexOn(Schema{8});
  const auto* slots = idx.Probe(Tuple::Ints({2}));
  ASSERT_NE(slots, nullptr);
  EXPECT_EQ(slots->size(), 2u);
}

TEST(RelationTest, CompactionPreservesContents) {
  Relation<I64Ring> r(Schema{0});
  // Insert then delete most entries to trigger compaction.
  for (int64_t i = 0; i < 1000; ++i) r.Add(Tuple::Ints({i}), 1);
  for (int64_t i = 0; i < 900; ++i) r.Add(Tuple::Ints({i}), -1);
  EXPECT_EQ(r.size(), 100u);
  for (int64_t i = 900; i < 1000; ++i) {
    ASSERT_NE(r.Find(Tuple::Ints({i})), nullptr) << i;
  }
  for (int64_t i = 0; i < 900; ++i) {
    ASSERT_EQ(r.Find(Tuple::Ints({i})), nullptr) << i;
  }
}

TEST(RelationTest, CompactionRebuildsSecondaryIndexes) {
  Relation<I64Ring> r(Schema{0, 1});
  r.IndexOn(Schema{1});
  for (int64_t i = 0; i < 1000; ++i) r.Add(Tuple::Ints({i, i % 5}), 1);
  for (int64_t i = 0; i < 990; ++i) r.Add(Tuple::Ints({i, i % 5}), -1);
  const auto& idx = r.IndexOn(Schema{1});
  size_t total = 0;
  for (int64_t g = 0; g < 5; ++g) {
    const auto* slots = idx.Probe(Tuple::Ints({g}));
    if (slots == nullptr) continue;
    for (uint32_t s : *slots) {
      if (!I64Ring::IsZero(r.PayloadAt(s))) ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(RelationTest, DoubleRingPayloads) {
  Relation<F64Ring> r(Schema{0});
  r.Add(Tuple::Ints({1}), 0.5);
  r.Add(Tuple::Ints({1}), 0.25);
  EXPECT_DOUBLE_EQ(*r.Find(Tuple::Ints({1})), 0.75);
}

TEST(RelationTest, EmptySchemaNullaryRelation) {
  Relation<I64Ring> r(Schema{});
  r.Add(Tuple(), 42);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(*r.Find(Tuple()), 42);
}

TEST(RelationTest, ApproxBytesGrows) {
  Relation<I64Ring> r(Schema{0});
  size_t before = r.ApproxBytes();
  for (int64_t i = 0; i < 100; ++i) r.Add(Tuple::Ints({i}), 1);
  EXPECT_GT(r.ApproxBytes(), before);
}

}  // namespace
}  // namespace fivm
