#include "src/data/relation_ops.h"

#include <gtest/gtest.h>

#include "src/data/relation.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"

namespace fivm {
namespace {

// Schema vars: A=0, B=1, C=2.
constexpr VarId kA = 0, kB = 1, kC = 2;

Relation<I64Ring> MakeR() {
  // R[A,B] from Example 2.1 (payloads 1,2).
  Relation<I64Ring> r(Schema{kA, kB});
  r.Add(Tuple::Ints({1, 1}), 1);  // (a1,b1) -> r1=1
  r.Add(Tuple::Ints({2, 1}), 2);  // (a2,b1) -> r2=2
  return r;
}

Relation<I64Ring> MakeS() {
  Relation<I64Ring> s(Schema{kA, kB});
  s.Add(Tuple::Ints({2, 1}), 3);  // (a2,b1) -> s1=3
  s.Add(Tuple::Ints({3, 2}), 4);  // (a3,b2) -> s2=4
  return s;
}

Relation<I64Ring> MakeT() {
  Relation<I64Ring> t(Schema{kB, kC});
  t.Add(Tuple::Ints({1, 1}), 5);  // (b1,c1) -> t1=5
  t.Add(Tuple::Ints({2, 2}), 6);  // (b2,c2) -> t2=6
  return t;
}

// Example 2.1: union, join, aggregation over an abstract ring (here Z with
// distinguishable payload values).
TEST(RelationOpsTest, UnionMatchesExample21) {
  auto u = Union(MakeR(), MakeS());
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(*u.Find(Tuple::Ints({1, 1})), 1);
  EXPECT_EQ(*u.Find(Tuple::Ints({2, 1})), 2 + 3);
  EXPECT_EQ(*u.Find(Tuple::Ints({3, 2})), 4);
}

TEST(RelationOpsTest, UnionHandlesReorderedSchemas) {
  Relation<I64Ring> x(Schema{kA, kB});
  x.Add(Tuple::Ints({1, 2}), 1);
  Relation<I64Ring> y(Schema{kB, kA});
  y.Add(Tuple::Ints({2, 1}), 10);  // same logical tuple A=1,B=2
  auto u = Union(x, y);
  EXPECT_EQ(u.size(), 1u);
  EXPECT_EQ(*u.Find(Tuple::Ints({1, 2})), 11);
}

TEST(RelationOpsTest, JoinMatchesExample21) {
  auto u = Union(MakeR(), MakeS());
  auto j = Join(u, MakeT());
  // ((R ⊎ S) ⊗ T)[A,B,C]
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(*j.Find(Tuple::Ints({1, 1, 1})), 1 * 5);
  EXPECT_EQ(*j.Find(Tuple::Ints({2, 1, 1})), (2 + 3) * 5);
  EXPECT_EQ(*j.Find(Tuple::Ints({3, 2, 2})), 4 * 6);
}

TEST(RelationOpsTest, MarginalizeWithTrivialLifting) {
  auto u = Union(MakeR(), MakeS());
  auto j = Join(u, MakeT());
  LiftingMap<I64Ring> lifts;
  auto agg = Marginalize(j, Schema{kA}, lifts);
  // (⊕_A (R ⊎ S) ⊗ T)[B,C] with g_A = 1.
  EXPECT_EQ(agg.size(), 2u);
  EXPECT_EQ(*agg.Find(Tuple::Ints({1, 1})), 1 * 5 + 5 * 5);
  EXPECT_EQ(*agg.Find(Tuple::Ints({2, 2})), 24);
}

TEST(RelationOpsTest, MarginalizeWithNumericLifting) {
  // ⊕_A with g_A(x) = x multiplies each payload by its A-value.
  auto r = MakeR();
  LiftingMap<I64Ring> lifts;
  lifts.Set(kA, [](const Value& x) { return x.AsInt(); });
  auto agg = Marginalize(r, Schema{kA}, lifts);
  // (a1=1,b1)->1*1 ; (a2=2,b1)->2*2 ; grouped by B.
  EXPECT_EQ(agg.size(), 1u);
  EXPECT_EQ(*agg.Find(Tuple::Ints({1})), 1 * 1 + 2 * 2);
}

TEST(RelationOpsTest, MarginalizeAllVariables) {
  auto r = MakeR();
  LiftingMap<I64Ring> lifts;
  auto agg = Marginalize(r, Schema{kA, kB}, lifts);
  EXPECT_EQ(agg.schema().size(), 0u);
  EXPECT_EQ(*agg.Find(Tuple()), 3);  // 1 + 2
}

TEST(RelationOpsTest, JoinOnNoCommonVarsIsCartesianScaled) {
  Relation<I64Ring> x(Schema{kA});
  x.Add(Tuple::Ints({1}), 2);
  x.Add(Tuple::Ints({2}), 3);
  Relation<I64Ring> y(Schema{kB});
  y.Add(Tuple::Ints({7}), 5);
  auto j = Join(x, y);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(*j.Find(Tuple::Ints({1, 7})), 10);
  EXPECT_EQ(*j.Find(Tuple::Ints({2, 7})), 15);
}

TEST(RelationOpsTest, JoinSkipsTombstonedEntries) {
  auto t = MakeT();
  t.Add(Tuple::Ints({1, 1}), -5);  // cancel (b1,c1)
  auto j = Join(MakeR(), t);
  EXPECT_EQ(j.size(), 0u);
}

TEST(RelationOpsTest, JoinAndMarginalizeMatchesUnfused) {
  auto u = Union(MakeR(), MakeS());
  auto t = MakeT();
  LiftingMap<I64Ring> lifts;
  lifts.Set(kB, [](const Value& x) { return x.AsInt() + 1; });

  auto fused = JoinAndMarginalize(u, t, Schema{kB}, lifts);
  auto unfused = Marginalize(Join(u, t), Schema{kB}, lifts);

  EXPECT_EQ(fused.size(), unfused.size());
  unfused.ForEach([&](const Tuple& k, const int64_t& p) {
    auto pos = unfused.schema().PositionsOf(fused.schema());
    ASSERT_NE(fused.Find(k.Project(pos)), nullptr) << k.ToString();
    EXPECT_EQ(*fused.Find(k.Project(pos)), p);
  });
}

TEST(RelationOpsTest, JoinAndMarginalizeCartesianBranch) {
  Relation<I64Ring> x(Schema{kA});
  x.Add(Tuple::Ints({1}), 2);
  Relation<I64Ring> y(Schema{kB});
  y.Add(Tuple::Ints({7}), 5);
  y.Add(Tuple::Ints({8}), 1);
  LiftingMap<I64Ring> lifts;
  auto out = JoinAndMarginalize(x, y, Schema{kB}, lifts);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.Find(Tuple::Ints({1})), 12);
}

TEST(RelationOpsTest, MapPayloadsConvertsRing) {
  auto r = MakeR();
  auto d = MapPayloads<F64Ring>(r, [](int64_t p) { return p * 0.5; });
  EXPECT_DOUBLE_EQ(*d.Find(Tuple::Ints({1, 1})), 0.5);
  EXPECT_DOUBLE_EQ(*d.Find(Tuple::Ints({2, 1})), 1.0);
}

// Delta rule sanity: δ(V1 ⊗ V2) = (δV1 ⊗ V2) ⊎ (V1 ⊗ δV2) ⊎ (δV1 ⊗ δV2).
TEST(RelationOpsTest, JoinDeltaRuleHolds) {
  auto r = MakeR();
  auto t = MakeT();
  Relation<I64Ring> dr(Schema{kA, kB});
  dr.Add(Tuple::Ints({9, 1}), 7);
  dr.Add(Tuple::Ints({1, 1}), -1);  // delete (a1,b1)
  Relation<I64Ring> dt(Schema{kB, kC});
  dt.Add(Tuple::Ints({1, 3}), 2);

  // New state join.
  auto r2 = Union(r, dr);
  auto t2 = Union(t, dt);
  auto full = Join(r2, t2);

  // Old join plus delta.
  auto old = Join(r, t);
  auto delta = Union(Union(Join(dr, t), Join(r, dt)), Join(dr, dt));
  auto incr = Union(old, delta);

  EXPECT_EQ(full.size(), incr.size());
  full.ForEach([&](const Tuple& k, const int64_t& p) {
    ASSERT_NE(incr.Find(k), nullptr) << k.ToString();
    EXPECT_EQ(*incr.Find(k), p);
  });
}

}  // namespace
}  // namespace fivm
