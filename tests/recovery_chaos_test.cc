// Crash-chaos harness: fork a child that resumes ingest from whatever is on
// disk, arm ONE kill-mode failpoint (a real ::_exit at the site — nothing
// unwinds, nothing flushes), let it die, then verify in the parent that
// recovery reproduces *exactly* the reference prefix the durable log
// prescribes. Rounds repeat — each child recovers from the previous child's
// corpse — until the stream completes, across several seeds, rotating the
// kill through every durability site:
//
//   wal.append   torn frame (kill between header and body writes)
//   wal.fsync    window written but never acknowledged
//   wal.rotate   kill at the segment boundary
//   ckpt.write   partial .tmp image
//   ckpt.rename  complete but uninstalled .tmp image
//
// The acceptance bar (ISSUE PR10): >= 200 injected kills across seeds
// spanning all five sites with zero recovered-state divergences. Knobs:
//   FIVM_RCHAOS_SEED       base seed            (default 90001)
//   FIVM_RCHAOS_UPDATES    stream length/seed   (default 1500)
//   FIVM_RCHAOS_MIN_KILLS  kill floor           (default 200)
//   FIVM_RCHAOS_MAX_SEEDS  safety cap           (default 64)

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/durability/checkpoint.h"
#include "src/durability/recovery.h"
#include "src/durability/wal.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/ingest/ingest_service.h"
#include "src/rings/ring.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"

#if !defined(FIVM_FAILPOINTS_OFF)

namespace fivm::durability {
namespace {

using ingest::AdmissionPolicy;
using ingest::DurabilityPolicy;
using ingest::IngestService;
using ingest::ServiceOptions;

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoll(v, nullptr, 10) : def;
}

class TempDir {
 public:
  TempDir() {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "/tmp/fivm_rchaos_%d_XXXXXX",
                  static_cast<int>(::getpid()));
    dir_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    if (dir_.empty()) return;
    std::string cmd = "rm -rf " + dir_;
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// Same two-relation pipeline as recovery_test.cc, but the WAL is opened
/// only AFTER recovery has run (AttachDurability) — a resumed writer must
/// be seeded with the recovered LSN/update-index, which recovery produces.
struct Rig {
  Rig() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
    pool.emplace(2);
    executor.emplace(&*engine, &*pool,
                     typename exec::ParallelExecutor<I64Ring>::Options{
                         .shards = 2});
    batcher.emplace(&engine->plans(), /*capacity=*/0);
    server.emplace(&*engine);
  }

  void AttachDurability(const std::string& dir, const RecoveryResult& rr,
                        size_t checkpoint_every) {
    WalWriter::Options wopt;
    wopt.max_segment_bytes = 1024;  // rotate often: "wal.rotate" must fire
    wopt.sync_dir = false;
    wal.emplace(dir, wopt, rr.last_lsn, rr.update_count);
    ckpt.emplace(dir, &*engine, &*wal);
    ServiceOptions opts;
    opts.flush_updates = 128;
    opts.retry_backoff = std::chrono::microseconds(1);
    opts.retry_backoff_cap = std::chrono::microseconds(64);
    opts.max_retries = 4;
    opts.durability = DurabilityPolicy::kWindow;
    opts.checkpoint_every_flushes = checkpoint_every;
    opts.default_queue = {AdmissionPolicy::kBlock, /*capacity=*/1 << 20};
    service.emplace(&*engine, &*executor, &*batcher, &*server, opts);
    service->AttachDurability(&*wal, &*ckpt);
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
  std::optional<exec::ThreadPool> pool;
  std::optional<exec::ParallelExecutor<I64Ring>> executor;
  std::optional<exec::DeltaBatcher<I64Ring>> batcher;
  std::optional<WalWriter> wal;
  std::optional<Checkpointer<I64Ring>> ckpt;
  std::optional<serve::SnapshotServer<I64Ring>> server;
  std::optional<IngestService<I64Ring>> service;
};

/// Deterministic seeded insert/delete stream (identical to
/// recovery_test.cc's — children regenerate it to resume mid-stream).
struct StreamGen {
  explicit StreamGen(uint64_t seed) : rng(seed) {}

  struct U {
    int relation;
    Tuple key;
    int64_t mult;
  };

  U Next() {
    int r = static_cast<int>(rng.UniformInt(0, 1));
    if (!inserted[r].empty() && rng.Bernoulli(0.2)) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inserted[r].size()) - 1));
      Tuple key = inserted[r][pick];
      inserted[r][pick] = inserted[r].back();
      inserted[r].pop_back();
      return U{r, key, -1};
    }
    Tuple key = Tuple::Ints({rng.UniformInt(0, 40), rng.UniformInt(0, 25)});
    inserted[r].push_back(key);
    return U{r, key, 1};
  }

  util::Rng rng;
  std::vector<std::vector<Tuple>> inserted{2};
};

// Child exit codes beyond util::kKillExitCode (86 = armed kill fired).
constexpr int kChildDone = 0;
constexpr int kChildGapDetected = 90;
constexpr int kChildOfferFailed = 91;
constexpr int kChildException = 92;

/// Forked child body: recover from `dir`, resume the seeded stream from
/// the durable position, run with ONE kill site armed, ::_exit. Never uses
/// gtest assertions and never returns normally (a forked gtest process
/// must not run test teardown).
[[noreturn]] void ChildRun(const std::string& dir, uint64_t seed,
                           uint64_t total_updates, const char* site,
                           uint64_t nth) {
  try {
    Rig rig;
    RecoveryResult rr =
        Recover(dir, &*rig.engine, &*rig.batcher, &*rig.executor);
    if (rr.gap_detected) ::_exit(kChildGapDetected);
    rig.AttachDurability(dir, rr, /*checkpoint_every=*/2);
    rig.server->Rebase();

    // Fast-forward the generator over the already-durable prefix.
    StreamGen gen(seed);
    for (uint64_t i = 0; i < rr.update_count; ++i) gen.Next();

    util::FailPointRegistry::Default().ArmNth(site, nth,
                                              util::FailAction::kKill);
    for (uint64_t i = rr.update_count; i < total_updates; ++i) {
      auto u = gen.Next();
      if (!rig.service->Offer(u.relation, u.key, u.mult)) {
        ::_exit(kChildOfferFailed);
      }
      if ((i + 1) % 16 == 0) rig.service->PumpOnce(/*force_flush=*/true);
    }
    rig.service->DrainNow();
  } catch (...) {
    ::_exit(kChildException);
  }
  ::_exit(kChildDone);
}

/// Parent-side oracle: recover `dir` into a fresh rig and demand exact
/// equality with a fault-free reference fed the same stream prefix — both
/// the materialized stores and a served (rebased) snapshot of the result.
/// Returns the durable update count.
uint64_t VerifyDurableState(const std::string& dir, uint64_t seed) {
  Rig rec;
  RecoveryResult rr =
      Recover(dir, &*rec.engine, &*rec.batcher, &*rec.executor);
  EXPECT_FALSE(rr.gap_detected);

  Rig ref;
  StreamGen gen(seed);
  for (uint64_t i = 0; i < rr.update_count; ++i) {
    auto u = gen.Next();
    Relation<I64Ring> delta(ref.query.relation(u.relation).schema);
    delta.Add(u.key, u.mult);
    ref.engine->ApplyDelta(u.relation, std::move(delta));
  }
  EXPECT_TRUE(exec::StoresContentEqual(*rec.engine, *ref.engine))
      << "divergence at durable update_count=" << rr.update_count;

  rec.server->Rebase();
  auto snap = rec.server->Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), ref.engine->result()));
  return rr.update_count;
}

struct KillSite {
  const char* name;
  uint64_t max_nth;  // nth drawn from [1, max_nth]: site eval frequency varies
};

constexpr KillSite kSites[] = {
    {"wal.append", 8},  {"wal.fsync", 5},   {"wal.rotate", 3},
    {"ckpt.write", 2},  {"ckpt.rename", 2},
};
constexpr size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

// Deterministic smoke round: one kill at the very first append, then
// recover — isolates the harness mechanics from the long sweep below.
TEST(RecoveryChaosTest, SingleKillAtFirstAppendRecovers) {
  TempDir td;
  constexpr uint64_t kSeed = 91001;
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ChildRun(td.path(), kSeed, 400, "wal.append", 1);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), util::kKillExitCode);
  // First append died mid-frame: durable prefix is empty but consistent.
  uint64_t durable = VerifyDurableState(td.path(), kSeed);
  EXPECT_EQ(durable, 0u);

  // A second, unkilled child finishes the stream on top of the corpse.
  pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ChildRun(td.path(), kSeed, 400, "wal.append", 1u << 30);
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildDone);
  EXPECT_EQ(VerifyDurableState(td.path(), kSeed), 400u);
}

// The sweep. Every round forks a child on the same log dir with the kill
// rotated round-robin through all five sites and a randomized fire index;
// the parent verifies the durable state after every death and checks that
// durability never regresses. Seeds advance until the kill floor is met.
TEST(RecoveryChaosTest, KillSweepAllSitesZeroDivergence) {
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("FIVM_RCHAOS_SEED", 90001));
  const uint64_t total_updates =
      static_cast<uint64_t>(EnvInt("FIVM_RCHAOS_UPDATES", 1500));
  const int64_t min_kills = EnvInt("FIVM_RCHAOS_MIN_KILLS", 200);
  const int64_t max_seeds = EnvInt("FIVM_RCHAOS_MAX_SEEDS", 64);
  constexpr int kMaxRoundsPerSeed = 600;
  constexpr int kMinSeeds = 3;

  std::map<std::string, int64_t> kills;
  int64_t total_kills = 0;
  int64_t seeds_done = 0;
  size_t site_rr = 0;
  util::Rng rng(base_seed ^ 0xC4A05u);

  for (int64_t s = 0; s < max_seeds; ++s) {
    bool all_sites = true;
    for (const KillSite& site : kSites) {
      all_sites = all_sites && kills[site.name] > 0;
    }
    if (total_kills >= min_kills && seeds_done >= kMinSeeds && all_sites) {
      break;
    }
    const uint64_t seed = base_seed + static_cast<uint64_t>(s);
    TempDir td;
    uint64_t durable = 0;
    bool done = false;
    for (int round = 0; round < kMaxRoundsPerSeed && !done; ++round) {
      const KillSite& site = kSites[site_rr % kNumSites];
      ++site_rr;
      const uint64_t nth =
          1 + static_cast<uint64_t>(
                  rng.UniformInt(0, static_cast<int64_t>(site.max_nth) - 1));

      pid_t pid = fork();  // parent is single-threaded here: rigs are scoped
      ASSERT_GE(pid, 0);
      if (pid == 0) ChildRun(td.path(), seed, total_updates, site.name, nth);
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status))
          << "seed=" << seed << " round=" << round << " site=" << site.name
          << " raw status=" << status;
      const int code = WEXITSTATUS(status);
      if (code == util::kKillExitCode) {
        ++kills[site.name];
        ++total_kills;
      } else {
        ASSERT_EQ(code, kChildDone)
            << "seed=" << seed << " round=" << round << " site=" << site.name
            << " nth=" << nth;
      }

      const uint64_t now_durable = VerifyDurableState(td.path(), seed);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "divergence: seed=" << seed << " round=" << round
               << " site=" << site.name << " nth=" << nth
               << " durable=" << now_durable;
      }
      ASSERT_GE(now_durable, durable) << "durability regressed: seed=" << seed
                                      << " round=" << round;
      durable = now_durable;
      if (code == kChildDone) {
        ASSERT_EQ(durable, total_updates);
        done = true;
      }
    }
    ASSERT_TRUE(done) << "seed " << seed << " never completed its stream";
    ++seeds_done;
  }

  EXPECT_GE(total_kills, min_kills);
  EXPECT_GE(seeds_done, kMinSeeds);
  for (const KillSite& site : kSites) {
    EXPECT_GE(kills[site.name], 1) << "site never killed: " << site.name;
  }
  std::printf("[rchaos] kills=%lld seeds=%lld |", (long long)total_kills,
              (long long)seeds_done);
  for (const KillSite& site : kSites) {
    std::printf(" %s=%lld", site.name, (long long)kills[site.name]);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fivm::durability

#endif  // !FIVM_FAILPOINTS_OFF
