#include "src/rings/relational_ring.h"

#include <gtest/gtest.h>

namespace fivm {
namespace {

constexpr VarId kA = 0, kB = 1;

TEST(RelationalRingTest, IdentityMapsEmptyTupleToOne) {
  auto one = PayloadRelation::Identity();
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.Multiplicity(Tuple()), 1);
  EXPECT_FALSE(one.IsZero());
}

TEST(RelationalRingTest, ZeroIsEmpty) {
  PayloadRelation zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.size(), 0u);
}

TEST(RelationalRingTest, SingletonLifting) {
  auto p = PayloadRelation::Singleton(kA, Value::Int(7));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.Multiplicity(Tuple::Ints({7})), 1);
  EXPECT_EQ(p.schema(), Schema{kA});
}

TEST(RelationalRingTest, UnionSumsMultiplicities) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(1));
  auto b = PayloadRelation::Singleton(kA, Value::Int(1));
  auto c = PayloadRelation::Singleton(kA, Value::Int(2));
  auto u = Add(Add(a, b), c);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.Multiplicity(Tuple::Ints({1})), 2);
  EXPECT_EQ(u.Multiplicity(Tuple::Ints({2})), 1);
}

TEST(RelationalRingTest, UnionPrunesCancelledRows) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(1));
  auto na = -a;
  auto u = Add(a, na);
  EXPECT_TRUE(u.IsZero());
}

TEST(RelationalRingTest, MulWithIdentityKeepsRelation) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(1));
  EXPECT_TRUE(Mul(a, PayloadRelation::Identity()) == a);
  EXPECT_TRUE(Mul(PayloadRelation::Identity(), a) == a);
}

TEST(RelationalRingTest, MulDisjointSchemasIsCartesian) {
  auto a = Add(PayloadRelation::Singleton(kA, Value::Int(1)),
               PayloadRelation::Singleton(kA, Value::Int(2)));
  auto b = Add(PayloadRelation::Singleton(kB, Value::Int(10)),
               PayloadRelation::Singleton(kB, Value::Int(20)));
  auto p = Mul(a, b);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.Multiplicity(Tuple::Ints({1, 10})), 1);
  EXPECT_EQ(p.Multiplicity(Tuple::Ints({2, 20})), 1);
  EXPECT_EQ(p.schema().size(), 2u);
}

TEST(RelationalRingTest, MulMultiplicitiesMultiply) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(1));
  auto a2 = Add(a, a);  // multiplicity 2
  auto b = PayloadRelation::Singleton(kB, Value::Int(5));
  auto b3 = Add(Add(b, b), b);  // multiplicity 3
  auto p = Mul(a2, b3);
  EXPECT_EQ(p.Multiplicity(Tuple::Ints({1, 5})), 6);
}

TEST(RelationalRingTest, MulOverlappingSchemasJoins) {
  // a over [A,B], b over [B]: natural join on B.
  auto a = Mul(PayloadRelation::Singleton(kA, Value::Int(1)),
               PayloadRelation::Singleton(kB, Value::Int(5)));
  auto a2 = Mul(PayloadRelation::Singleton(kA, Value::Int(2)),
                PayloadRelation::Singleton(kB, Value::Int(6)));
  auto both = Add(a, a2);
  auto b = PayloadRelation::Singleton(kB, Value::Int(5));
  auto j = Mul(both, b);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.Multiplicity(Tuple::Ints({1, 5})), 1);
}

TEST(RelationalRingTest, MulWithZeroIsZero) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(1));
  EXPECT_TRUE(Mul(a, PayloadRelation()).IsZero());
  EXPECT_TRUE(Mul(PayloadRelation(), a).IsZero());
}

TEST(RelationalRingTest, EqualityIsSchemaOrderInsensitive) {
  auto ab = Mul(PayloadRelation::Singleton(kA, Value::Int(1)),
                PayloadRelation::Singleton(kB, Value::Int(2)));
  auto ba = Mul(PayloadRelation::Singleton(kB, Value::Int(2)),
                PayloadRelation::Singleton(kA, Value::Int(1)));
  EXPECT_TRUE(ab == ba);
}

TEST(RelationalRingTest, NegativePayloadsEncodeDeletes) {
  auto ins = PayloadRelation::Singleton(kA, Value::Int(1));
  auto del = -PayloadRelation::Singleton(kA, Value::Int(1));
  EXPECT_EQ(del.Multiplicity(Tuple::Ints({1})), -1);
  EXPECT_TRUE(Add(ins, del).IsZero());
}

TEST(RelationalRingTest, AddInPlaceSelf) {
  auto a = PayloadRelation::Singleton(kA, Value::Int(3));
  a.AddInPlace(a);
  EXPECT_EQ(a.Multiplicity(Tuple::Ints({3})), 2);
}

TEST(RelationalRingTest, ForEachVisitsLiveRows) {
  auto a = Add(PayloadRelation::Singleton(kA, Value::Int(1)),
               PayloadRelation::Singleton(kA, Value::Int(2)));
  int64_t total = 0;
  a.ForEach([&](const Tuple&, int64_t m) { total += m; });
  EXPECT_EQ(total, 2);
}

}  // namespace
}  // namespace fivm
