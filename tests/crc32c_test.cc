// CRC-32C: known-answer vectors, chaining algebra, and a differential fuzz
// of the three implementations against each other — the bitwise reference
// below (straight out of the polynomial definition), the slice-by-8 table
// arm, and (when this host has it) the SSE4.2 hardware arm.

#include "src/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace fivm::util {
namespace {

// Reference implementation: one bit at a time from the reflected polynomial.
// Deliberately naive — its only job is to be obviously correct.
uint32_t ReferenceCrc32c(const void* data, size_t n, uint32_t crc = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    state ^= p[i];
    for (int b = 0; b < 8; ++b) {
      state = (state & 1) ? (state >> 1) ^ 0x82F63B78u : state >> 1;
    }
  }
  return state ^ 0xFFFFFFFFu;
}

class ScopedHwCrc {
 public:
  explicit ScopedHwCrc(bool on) : prev_(SetHardwareCrcActive(on)) {}
  ~ScopedHwCrc() { SetHardwareCrcActive(prev_); }

 private:
  bool prev_;
};

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / common CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(ReferenceCrc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ChainingEqualsWholeBuffer) {
  std::string s = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(s.data(), s.size());
  for (size_t split = 0; split <= s.size(); ++split) {
    uint32_t a = Crc32c(s.data(), split);
    uint32_t b = Crc32c(s.data() + split, s.size() - split, a);
    EXPECT_EQ(b, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, TableArmMatchesReferenceFuzz) {
  ScopedHwCrc hw(false);
  ASSERT_FALSE(HardwareCrcActive());
  Rng rng(20260808);
  for (int iter = 0; iter < 400; ++iter) {
    size_t n = static_cast<size_t>(rng.UniformInt(0, 257));
    std::vector<uint8_t> buf(n + 8);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    // Random misalignment exercises the head/tail byte loops.
    size_t off = static_cast<size_t>(rng.UniformInt(0, 7));
    uint32_t seed = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Crc32c(buf.data() + off, n, seed),
              ReferenceCrc32c(buf.data() + off, n, seed))
        << "iter=" << iter << " n=" << n << " off=" << off;
  }
}

TEST(Crc32cTest, HardwareArmMatchesTableArmFuzz) {
  if (!HardwareCrcSupported()) {
    GTEST_SKIP() << "no SSE4.2 CRC on this host/build";
  }
  Rng rng(424242);
  for (int iter = 0; iter < 400; ++iter) {
    size_t n = static_cast<size_t>(rng.UniformInt(0, 4097));
    std::vector<uint8_t> buf(n + 8);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    size_t off = static_cast<size_t>(rng.UniformInt(0, 7));
    uint32_t seed = static_cast<uint32_t>(rng.Next());
    uint32_t hw, sw;
    {
      ScopedHwCrc on(true);
      hw = Crc32c(buf.data() + off, n, seed);
    }
    {
      ScopedHwCrc off_arm(false);
      sw = Crc32c(buf.data() + off, n, seed);
    }
    ASSERT_EQ(hw, sw) << "iter=" << iter << " n=" << n << " off=" << off;
  }
}

TEST(Crc32cTest, DispatchPinClampsToSupport) {
  bool prev = SetHardwareCrcActive(true);
  EXPECT_EQ(HardwareCrcActive(), HardwareCrcSupported());
  SetHardwareCrcActive(false);
  EXPECT_FALSE(HardwareCrcActive());
  SetHardwareCrcActive(prev);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> buf(64);
  Rng rng(7);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  uint32_t clean = Crc32c(buf.data(), buf.size());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= uint8_t{1} << bit;
      EXPECT_NE(Crc32c(buf.data(), buf.size()), clean)
          << "byte=" << byte << " bit=" << bit;
      buf[byte] ^= uint8_t{1} << bit;
    }
  }
}

}  // namespace
}  // namespace fivm::util
