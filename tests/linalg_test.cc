#include <gtest/gtest.h>

#include "src/linalg/chain_order.h"
#include "src/linalg/dense_chain_ivm.h"
#include "src/linalg/low_rank.h"
#include "src/linalg/matrix.h"
#include "src/util/rng.h"

namespace fivm::linalg {
namespace {

Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += a.at(i, k) * b.at(k, j);
      c.at(i, j) = sum;
    }
  }
  return c;
}

TEST(MatrixTest, MultiplyMatchesNaive) {
  util::Rng rng(1);
  for (auto [n, k, m] : {std::tuple<int, int, int>{3, 4, 5},
                         {17, 33, 9},
                         {64, 64, 64},
                         {100, 1, 100}}) {
    Matrix a = Matrix::Random(n, k, rng);
    Matrix b = Matrix::Random(k, m, rng);
    EXPECT_TRUE(Multiply(a, b).ApproxEquals(NaiveMultiply(a, b), 1e-9));
  }
}

TEST(MatrixTest, IdentityIsNeutral) {
  util::Rng rng(2);
  Matrix a = Matrix::Random(8, 8, rng);
  EXPECT_TRUE(Multiply(a, Matrix::Identity(8)).ApproxEquals(a));
  EXPECT_TRUE(Multiply(Matrix::Identity(8), a).ApproxEquals(a));
}

TEST(MatrixTest, MultiplyVecMatchesMatrix) {
  util::Rng rng(3);
  Matrix a = Matrix::Random(6, 4, rng);
  Vector x{1.0, -2.0, 0.5, 3.0};
  Vector y = MultiplyVec(a, x);
  Matrix xm(4, 1);
  for (int i = 0; i < 4; ++i) xm.at(i, 0) = x[i];
  Matrix ym = Multiply(a, xm);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], ym.at(i, 0), 1e-12);
  }
}

TEST(MatrixTest, VecMultiplyMatchesTranspose) {
  util::Rng rng(4);
  Matrix a = Matrix::Random(5, 7, rng);
  Vector x{1.0, 2.0, 3.0, 4.0, 5.0};
  Vector y = VecMultiply(x, a);
  Vector y2 = MultiplyVec(a.Transposed(), x);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y2[i], 1e-12);
}

TEST(MatrixTest, AddOuter) {
  Matrix m(2, 3);
  m.AddOuter({1.0, 2.0}, {3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 10.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  util::Rng rng(5);
  Matrix a = Matrix::Random(4, 9, rng);
  EXPECT_TRUE(a.Transposed().Transposed().ApproxEquals(a));
}

TEST(LowRankTest, ExactForRank1) {
  util::Rng rng(6);
  Matrix a = Matrix::RandomOfRank(20, 30, 1, rng);
  auto f = FactorizeLowRank(a);
  EXPECT_EQ(f.rank(), 1u);
  EXPECT_TRUE(f.Expand(20, 30).ApproxEquals(a, 1e-8));
}

TEST(LowRankTest, RecoversTrueRank) {
  util::Rng rng(7);
  for (size_t r : {2u, 5u, 9u}) {
    Matrix a = Matrix::RandomOfRank(40, 40, r, rng);
    auto f = FactorizeLowRank(a, SIZE_MAX, 1e-8);
    EXPECT_EQ(f.rank(), r) << "rank " << r;
    EXPECT_TRUE(f.Expand(40, 40).ApproxEquals(a, 1e-6)) << "rank " << r;
  }
}

TEST(LowRankTest, MaxRankTruncates) {
  util::Rng rng(8);
  Matrix a = Matrix::RandomOfRank(20, 20, 6, rng);
  auto f = FactorizeLowRank(a, 3);
  EXPECT_EQ(f.rank(), 3u);
}

TEST(LowRankTest, ZeroMatrixHasRankZero) {
  Matrix a(10, 10);
  EXPECT_EQ(FactorizeLowRank(a).rank(), 0u);
}

TEST(ChainOrderTest, TextbookExample) {
  // CLRS example: dims 30,35,15,5,10,20,25 → optimal cost 15125.
  ChainOrder order({30, 35, 15, 5, 10, 20, 25});
  EXPECT_EQ(order.OptimalCost(), 15125u);
  EXPECT_EQ(order.Parenthesization(), "((A1 (A2 A3)) ((A4 A5) A6))");
}

TEST(ChainOrderTest, TwoMatrices) {
  ChainOrder order({10, 20, 30});
  EXPECT_EQ(order.OptimalCost(), 10u * 20u * 30u);
  EXPECT_EQ(order.Parenthesization(), "(A1 A2)");
}

TEST(ChainOrderTest, SquareChainIsLeftToRight) {
  ChainOrder order({8, 8, 8, 8});
  EXPECT_EQ(order.OptimalCost(), 2u * 8u * 8u * 8u);
}

TEST(ChainOrderTest, EvaluationOrderIsBottomUp) {
  ChainOrder order({30, 35, 15, 5, 10, 20, 25});
  auto prods = order.EvaluationOrder();
  EXPECT_EQ(prods.size(), 5u);  // n-1 products
  // The full chain product comes last.
  EXPECT_EQ(prods.back().i, 1);
  EXPECT_EQ(prods.back().j, 6);
}

TEST(DenseChainIvmTest, StrategiesAgreeOnRowUpdate) {
  util::Rng rng(9);
  const size_t n = 24;
  Matrix a1 = Matrix::Random(n, n, rng);
  Matrix a2 = Matrix::Random(n, n, rng);
  Matrix a3 = Matrix::Random(n, n, rng);

  DenseChainIvm reeval(a1, a2, a3);
  DenseChainIvm first(a1, a2, a3);
  DenseChainIvm fivm(a1, a2, a3);

  for (int step = 0; step < 5; ++step) {
    size_t row = rng.Uniform(n);
    Vector delta(n);
    for (double& v : delta) v = rng.UniformDouble(-1.0, 1.0);
    Matrix delta_mat(n, n);
    for (size_t j = 0; j < n; ++j) delta_mat.at(row, j) = delta[j];

    reeval.ReevaluateUpdate(delta_mat);
    first.FirstOrderUpdate(delta_mat);
    fivm.FactorizedRowUpdate(row, delta);

    EXPECT_TRUE(reeval.product().ApproxEquals(first.product(), 1e-7));
    EXPECT_TRUE(reeval.product().ApproxEquals(fivm.product(), 1e-7));
    EXPECT_TRUE(reeval.a2().ApproxEquals(fivm.a2(), 1e-9));
  }
}

TEST(DenseChainIvmTest, RankRUpdateMatchesReevaluation) {
  util::Rng rng(10);
  const size_t n = 20;
  Matrix a1 = Matrix::Random(n, n, rng);
  Matrix a2 = Matrix::Random(n, n, rng);
  Matrix a3 = Matrix::Random(n, n, rng);

  DenseChainIvm reeval(a1, a2, a3);
  DenseChainIvm fivm(a1, a2, a3);

  for (size_t r : {1u, 3u, 7u}) {
    Matrix delta = Matrix::RandomOfRank(n, n, r, rng);
    auto f = FactorizeLowRank(delta, SIZE_MAX, 1e-10);
    EXPECT_EQ(f.rank(), r);
    reeval.ReevaluateUpdate(delta);
    fivm.FactorizedUpdate(f);
    EXPECT_TRUE(reeval.product().ApproxEquals(fivm.product(), 1e-6));
  }
}

}  // namespace
}  // namespace fivm::linalg
