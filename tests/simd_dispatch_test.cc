// Differential fuzz of the SIMD dispatch arms (src/util/simd.h): the AVX2
// and scalar kernels must agree *bitwise* — same per-element IEEE rounding,
// same ±0 handling, no FMA contraction — because the engine's bitwise
// equivalence guarantees (plan_equivalence_test, exec_parallel_test) hold
// on either dispatch path only if the ring arithmetic underneath is
// dispatch-invariant. Mirrors the SWAR-vs-SSE2 group fuzz in
// group_table_test.cc one layer up.
//
// On hardware without AVX2 (or with -DFIVM_AVX2=OFF) both arms are the
// scalar loop and the comparisons are trivially true; the tests log a skip
// for the CI record instead of silently passing.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/rings/regression_ring.h"
#include "src/rings/sparse_regression_ring.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace fivm {
namespace {

// Toggles the dispatch arm for the duration of a scope.
class ArmGuard {
 public:
  explicit ArmGuard(bool avx2) : prev_(simd::SetAvx2Active(avx2)) {}
  ~ArmGuard() { simd::SetAvx2Active(prev_); }

 private:
  bool prev_;
};

bool BothArmsAvailable() {
  return simd::Avx2CompiledIn() && simd::Avx2Supported();
}

// Fuzz values: finite doubles with exact zeros, negative zeros, negatives,
// and subnormals mixed in — the corners where a skipped store, a fused
// multiply, or a re-associated sum would change bits.
double FuzzValue(util::Rng& rng) {
  switch (rng.Uniform(8)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 5e-324;  // smallest subnormal
    case 3:
      return -1.0 / 3.0;
    default:
      return rng.UniformDouble(-8, 8);
  }
}

std::vector<double> FuzzArray(util::Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = FuzzValue(rng);
  return v;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<uint64_t>(a[i]) != std::bit_cast<uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

TEST(SimdDispatchTest, KernelsBitwiseEqualAcrossArms) {
  if (!BothArmsAvailable()) {
    GTEST_SKIP() << "AVX2 arm not available; scalar-only build or CPU";
  }
  util::Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t n = rng.Uniform(67);  // crosses the kMinAvx2Len cutoff
    const auto dst0 = FuzzArray(rng, n);
    const auto x = FuzzArray(rng, n);
    const auto y = FuzzArray(rng, n);
    const double a = FuzzValue(rng);
    const double b = FuzzValue(rng);

    auto run = [&](bool avx2) {
      ArmGuard guard(avx2);
      struct Out {
        std::vector<double> add, axpy, sum, scale, scale_pair, neg;
        bool any_nonzero;
      } o;
      o.add = dst0;
      simd::AddTo(o.add.data(), x.data(), n);
      o.axpy = dst0;
      simd::AxpyTo(o.axpy.data(), x.data(), a, n);
      o.sum.assign(n, 0.0);
      simd::SumTo(o.sum.data(), x.data(), y.data(), n);
      o.scale.assign(n, 0.0);
      simd::ScaleTo(o.scale.data(), x.data(), a, n);
      o.scale_pair.assign(n, 0.0);
      simd::ScalePairTo(o.scale_pair.data(), x.data(), y.data(), a, b, n);
      o.neg = dst0;
      simd::Negate(o.neg.data(), n);
      o.any_nonzero = simd::AnyNonZero(dst0.data(), n);
      return o;
    };

    auto scalar = run(false);
    auto avx2 = run(true);
    ASSERT_TRUE(BitEqual(scalar.add, avx2.add)) << "AddTo trial " << trial;
    ASSERT_TRUE(BitEqual(scalar.axpy, avx2.axpy)) << "AxpyTo trial " << trial;
    ASSERT_TRUE(BitEqual(scalar.sum, avx2.sum)) << "SumTo trial " << trial;
    ASSERT_TRUE(BitEqual(scalar.scale, avx2.scale))
        << "ScaleTo trial " << trial;
    ASSERT_TRUE(BitEqual(scalar.scale_pair, avx2.scale_pair))
        << "ScalePairTo trial " << trial;
    ASSERT_TRUE(BitEqual(scalar.neg, avx2.neg)) << "Negate trial " << trial;
    ASSERT_EQ(scalar.any_nonzero, avx2.any_nonzero)
        << "AnyNonZero trial " << trial;
  }
}

TEST(SimdDispatchTest, AnyNonZeroZeroCorners) {
  // ±0 count as zero, NaN as non-zero, on both arms, at lengths straddling
  // the vector width.
  for (bool arm : {false, true}) {
    if (arm && !BothArmsAvailable()) continue;
    ArmGuard guard(arm);
    for (size_t n : {0u, 1u, 4u, 8u, 9u, 16u, 33u}) {
      std::vector<double> zeros(n, 0.0);
      for (size_t i = 0; i + 1 < n; i += 2) zeros[i] = -0.0;
      EXPECT_FALSE(simd::AnyNonZero(zeros.data(), n)) << n << " arm " << arm;
      if (n == 0) continue;
      auto v = zeros;
      v[n - 1] = std::numeric_limits<double>::quiet_NaN();
      EXPECT_TRUE(simd::AnyNonZero(v.data(), n)) << n << " arm " << arm;
      v[n - 1] = 5e-324;
      EXPECT_TRUE(simd::AnyNonZero(v.data(), n)) << n << " arm " << arm;
    }
  }
}

// Random dense regression payload over [lo, lo+width): a count plus lifted
// sums, then perturbed by products so s and Q decouple. Built under the
// scalar arm so both arms' operations below start from identical inputs.
RegressionPayload FuzzDense(util::Rng& rng, uint32_t lo, uint32_t width) {
  ArmGuard guard(false);
  RegressionPayload p =
      RegressionPayload::Count(static_cast<double>(rng.UniformInt(-3, 3)));
  for (uint32_t i = 0; i < width; ++i) {
    p = Mul(p, RegressionPayload::Lift(lo + i, FuzzValue(rng)));
  }
  int extra = static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < extra && width > 0; ++i) {
    uint32_t slot = lo + static_cast<uint32_t>(rng.Uniform(width));
    p = Add(p, RegressionPayload::Lift(slot, FuzzValue(rng)));
  }
  return p;
}

// Bit pattern of every aggregate a payload exposes (count, sums, cofactor
// triangle over a fixed slot window) — the dispatch-arm comparison key.
std::vector<uint64_t> Fingerprint(const RegressionPayload& p) {
  std::vector<uint64_t> bits;
  bits.push_back(std::bit_cast<uint64_t>(p.count()));
  for (uint32_t i = 0; i < 40; ++i) {
    bits.push_back(std::bit_cast<uint64_t>(p.Sum(i)));
    for (uint32_t j = i; j < 40; ++j) {
      bits.push_back(std::bit_cast<uint64_t>(p.Cofactor(i, j)));
    }
  }
  return bits;
}

TEST(SimdDispatchTest, RegressionPayloadOpsBitwiseEqualAcrossArms) {
  if (!BothArmsAvailable()) {
    GTEST_SKIP() << "AVX2 arm not available; scalar-only build or CPU";
  }
  util::Rng rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    // Random range relationship: disjoint, identical, contained, partial
    // overlap — each exercises a different kernel path in Add/Mul.
    uint32_t alo = rng.Uniform(6);
    uint32_t awidth = 1 + rng.Uniform(12);
    uint32_t blo = rng.Uniform(20);
    uint32_t bwidth = 1 + rng.Uniform(12);
    const auto a = FuzzDense(rng, alo, awidth);
    const auto b = FuzzDense(rng, blo, bwidth);

    auto run = [&](bool avx2) {
      ArmGuard guard(avx2);
      std::vector<std::vector<uint64_t>> prints;
      prints.push_back(Fingerprint(Add(a, b)));
      prints.push_back(Fingerprint(Mul(a, b)));
      prints.push_back(Fingerprint(Mul(b, a)));
      prints.push_back(Fingerprint(-a));
      RegressionPayload acc = Add(a, a);
      acc.AddInPlace(b);  // contained / general AddInPlace
      RegressionPayload acc2 = Add(a, b);
      acc2.AddInPlace(a);  // contained fast path (range ⊆ union)
      prints.push_back(Fingerprint(acc));
      prints.push_back(Fingerprint(acc2));
      prints.push_back({static_cast<uint64_t>(Add(a, -a).IsZero())});
      return prints;
    };

    ASSERT_EQ(run(false), run(true)) << "trial " << trial;
  }
}

SparseRegressionPayload FuzzSparse(util::Rng& rng, uint32_t lo,
                                   uint32_t width) {
  ArmGuard guard(false);
  SparseRegressionPayload p = SparseRegressionPayload::Count(
      static_cast<double>(rng.UniformInt(-3, 3)));
  for (uint32_t i = 0; i < width; ++i) {
    p = Mul(p, SparseRegressionPayload::Lift(lo + i, FuzzValue(rng)));
  }
  return p;
}

std::vector<uint64_t> Fingerprint(const SparseRegressionPayload& p) {
  std::vector<uint64_t> bits;
  bits.push_back(std::bit_cast<uint64_t>(p.count()));
  bits.push_back(p.LinearEntryCount());
  bits.push_back(p.QuadraticEntryCount());
  for (uint32_t i = 0; i < 40; ++i) {
    bits.push_back(std::bit_cast<uint64_t>(p.Sum(i)));
    for (uint32_t j = i; j < 40; ++j) {
      bits.push_back(std::bit_cast<uint64_t>(p.Cofactor(i, j)));
    }
  }
  return bits;
}

TEST(SimdDispatchTest, SparsePayloadOpsBitwiseEqualAcrossArms) {
  if (!BothArmsAvailable()) {
    GTEST_SKIP() << "AVX2 arm not available; scalar-only build or CPU";
  }
  util::Rng rng(7);
  for (int trial = 0; trial < 400; ++trial) {
    uint32_t alo = rng.Uniform(6);
    uint32_t awidth = 1 + rng.Uniform(10);
    // Same layout half the time: the identical-key merge fast path (the
    // lane-kernel one) triggers only then.
    uint32_t blo = rng.Bernoulli(0.5) ? alo : rng.Uniform(16);
    uint32_t bwidth = blo == alo ? awidth : 1 + rng.Uniform(10);
    const auto a = FuzzSparse(rng, alo, awidth);
    const auto b = FuzzSparse(rng, blo, bwidth);

    auto run = [&](bool avx2) {
      ArmGuard guard(avx2);
      std::vector<std::vector<uint64_t>> prints;
      prints.push_back(Fingerprint(Add(a, b)));
      prints.push_back(Fingerprint(Mul(a, b)));
      prints.push_back(Fingerprint(-b));
      SparseRegressionPayload acc = a;
      acc.AddInPlace(b);
      prints.push_back(Fingerprint(acc));
      // Exact cancellation: the in-place fast path must compact to the
      // same (empty) layout the merge produces.
      SparseRegressionPayload cancel = a;
      cancel.AddInPlace(-a);
      prints.push_back({static_cast<uint64_t>(cancel.IsZero())});
      prints.push_back(Fingerprint(cancel));
      return prints;
    };

    ASSERT_EQ(run(false), run(true)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fivm
