#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/baselines/first_order_ivm.h"
#include "src/core/ivm_engine.h"
#include "src/core/view_tree.h"
#include "src/ivme/triangle_engine.h"
#include "src/rings/lifting.h"
#include "src/util/rng.h"
#include "src/workloads/stream.h"
#include "src/workloads/twitter.h"

namespace fivm {
namespace {

using ivme::Config;
using ivme::TriangleEngine;
using workloads::TwitterDataset;
using workloads::TwitterConfig;
using workloads::UpdateStream;

// Query-only dataset: the triangle query R(A,B) ⋈ S(B,C) ⋈ T(C,A) with no
// pre-generated edges (the streams below supply all data).
std::unique_ptr<TwitterDataset> TriangleQuery() {
  TwitterConfig cfg;
  cfg.nodes = 50;
  cfg.edges = 0;
  return TwitterDataset::Generate(cfg);
}

int64_t ScalarOf(const Relation<I64Ring>& rel) {
  const int64_t* p = rel.Find(Tuple::Empty());
  return p == nullptr ? 0 : *p;
}

UpdateStream::SkewConfig SmallSkew(uint64_t seed) {
  UpdateStream::SkewConfig cfg;
  cfg.nodes = 40;
  cfg.updates = 3000;
  cfg.batch_size = 64;
  cfg.burst = 16;
  cfg.theta = 1.1;
  cfg.churn = 0.45;
  cfg.seed = seed;
  return cfg;
}

// Differential fuzz: the same randomized insert/delete stream through
// IVM^ε, the factorized F-IVM engine, and the first-order baseline must
// agree on the triangle count after every batch.
TEST(IvmeEquivalenceTest, AgreesWithFIvmAndFirstOrderPerBatch) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto ds = TriangleQuery();
    ViewTree tree(ds->query.get(), &ds->vorder);
    tree.MaterializeAll();
    IvmEngine<I64Ring> fivm(&tree, LiftingMap<I64Ring>{});
    FirstOrderIvm<I64Ring> first_order(ds->query.get(),
                                       {LiftingMap<I64Ring>{}});
    TriangleEngine<I64Ring> eps(*ds->query, ds->r, ds->s, ds->t);

    UpdateStream stream = UpdateStream::AdversarialSkew(SmallSkew(seed));
    size_t batch_no = 0;
    for (const auto& batch : stream.batches()) {
      Relation<I64Ring> delta =
          UpdateStream::ToDelta<I64Ring>(*ds->query, batch);
      fivm.ApplyDelta(batch.relation, delta);
      first_order.ApplyDelta(batch.relation, delta);
      for (size_t i = 0; i < batch.tuples.size(); ++i) {
        eps.ApplyUpdate(batch.relation, batch.tuples[i],
                        UpdateStream::UnitPayload<I64Ring>(batch, i));
      }
      const int64_t want = ScalarOf(fivm.result());
      ASSERT_EQ(want, ScalarOf(first_order.result()))
          << "baselines disagree, batch " << batch_no << " seed " << seed;
      ASSERT_EQ(want, eps.result())
          << "IVM^ε diverged at batch " << batch_no << " seed " << seed;
      if (batch_no % 7 == 0) {
        std::string err;
        ASSERT_TRUE(eps.CheckInvariants(&err))
            << err << " (batch " << batch_no << " seed " << seed << ")";
      }
      ++batch_no;
    }
    std::string err;
    ASSERT_TRUE(eps.CheckInvariants(&err)) << err;
    EXPECT_GT(eps.stats().major_rebalances, 0)
        << "stream never triggered a major rebalance";
  }
}

// The ε extremes partition degenerately (ε=0: θ stays at the floor, nearly
// everything heavy; ε=1: θ = live size, everything light) yet must maintain
// the same count through the same skewed stream.
TEST(IvmeEquivalenceTest, EpsilonExtremesAgree) {
  auto ds = TriangleQuery();
  Config lo;
  lo.epsilon = 0.0;
  lo.min_threshold = 2;
  Config mid;  // defaults: ε = 0.5
  Config hi;
  hi.epsilon = 1.0;
  TriangleEngine<I64Ring> e0(*ds->query, ds->r, ds->s, ds->t, lo);
  TriangleEngine<I64Ring> e5(*ds->query, ds->r, ds->s, ds->t, mid);
  TriangleEngine<I64Ring> e1(*ds->query, ds->r, ds->s, ds->t, hi);

  UpdateStream stream = UpdateStream::AdversarialSkew(SmallSkew(21));
  size_t batch_no = 0;
  for (const auto& batch : stream.batches()) {
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      const int64_t m = UpdateStream::UnitPayload<I64Ring>(batch, i);
      e0.ApplyUpdate(batch.relation, batch.tuples[i], m);
      e5.ApplyUpdate(batch.relation, batch.tuples[i], m);
      e1.ApplyUpdate(batch.relation, batch.tuples[i], m);
    }
    ASSERT_EQ(e0.result(), e5.result()) << "batch " << batch_no;
    ASSERT_EQ(e5.result(), e1.result()) << "batch " << batch_no;
    ++batch_no;
  }
  for (auto* e : {&e0, &e5, &e1}) {
    std::string err;
    ASSERT_TRUE(e->CheckInvariants(&err)) << err;
  }
  // ε = 0 keeps θ at the floor, so the hot vertices must actually cross it:
  // the heavy partitions and the move machinery were exercised.
  EXPECT_GT(e0.stats().minor_rebalances, 0);
  EXPECT_GT(e0.stats().minor_moved_tuples, 0);
  // ε = 1 keeps θ = live size: no value reaches 2θ, so everything stays
  // light and the heavy cases/views stay empty.
  for (int rel : {ds->r, ds->s, ds->t}) {
    EXPECT_EQ(e1.HeavySize(rel), 0u);
  }
}

// Deleting everything that was inserted must return the engine to the empty
// state: zero count, zero live tuples, invariants intact (the partitions
// shrink through demotions and major rebalances on the way down).
TEST(IvmeEquivalenceTest, InsertAllDeleteAllReturnsToZero) {
  auto ds = TriangleQuery();
  Config cfg;
  cfg.min_threshold = 2;
  TriangleEngine<I64Ring> eps(*ds->query, ds->r, ds->s, ds->t, cfg);

  util::Rng rng(99);
  std::vector<std::pair<int, Tuple>> inserted;
  const std::array<int, 3> rels{ds->r, ds->s, ds->t};
  for (int i = 0; i < 800; ++i) {
    int rel = rels[rng.Uniform(3)];
    // Tiny domain: plenty of triangles and high per-value degrees.
    Tuple t = Tuple::Ints({static_cast<int64_t>(rng.Uniform(8)),
                           static_cast<int64_t>(rng.Uniform(8))});
    eps.ApplyUpdate(rel, t, 1);
    inserted.emplace_back(rel, std::move(t));
  }
  EXPECT_GT(eps.live_tuples(), 0u);
  std::string err;
  ASSERT_TRUE(eps.CheckInvariants(&err)) << err;

  for (auto& [rel, t] : inserted) {
    eps.ApplyUpdate(rel, t, -1);
  }
  EXPECT_EQ(eps.result(), 0);
  EXPECT_EQ(eps.live_tuples(), 0u);
  ASSERT_TRUE(eps.CheckInvariants(&err)) << err;
  EXPECT_GT(eps.stats().major_rebalances, 0);
}

// Ring-generality: arbitrary (non-unit) payloads over the real ring. Two
// engines with different thresholds maintain the same weighted triangle
// aggregate, and both match the brute-force recomputation in
// CheckInvariants.
TEST(IvmeEquivalenceTest, F64PayloadsAcrossThresholds) {
  auto ds = TriangleQuery();
  Config a;  // defaults
  Config b;
  b.epsilon = 0.25;
  b.min_threshold = 2;
  TriangleEngine<F64Ring> ea(*ds->query, ds->r, ds->s, ds->t, a);
  TriangleEngine<F64Ring> eb(*ds->query, ds->r, ds->s, ds->t, b);

  util::Rng rng(7);
  const std::array<int, 3> rels{ds->r, ds->s, ds->t};
  std::vector<std::tuple<int, Tuple, double>> live;
  for (int i = 0; i < 600; ++i) {
    int rel;
    Tuple t;
    double w;
    if (!live.empty() && rng.Bernoulli(0.3)) {
      // Retract an earlier payload exactly (floating-point-safe: the
      // retraction is the negation of the stored weight).
      size_t pick = rng.Uniform(live.size());
      std::tie(rel, t, w) = live[pick];
      w = -w;
      live[pick] = std::move(live.back());
      live.pop_back();
    } else {
      rel = rels[rng.Uniform(3)];
      t = Tuple::Ints({static_cast<int64_t>(rng.Uniform(6)),
                       static_cast<int64_t>(rng.Uniform(6))});
      // Powers of two: products and sums stay exact in binary floating
      // point, so exact equality assertions are meaningful.
      w = static_cast<double>(int64_t{1} << rng.Uniform(4));
      if (rng.Bernoulli(0.5)) w = -w;
      live.emplace_back(rel, t, w);
    }
    ea.ApplyUpdate(rel, t, w);
    eb.ApplyUpdate(rel, t, w);
    if (i % 50 == 0) {
      ASSERT_EQ(ea.result(), eb.result()) << "update " << i;
    }
  }
  EXPECT_EQ(ea.result(), eb.result());
  std::string err;
  ASSERT_TRUE(ea.CheckInvariants(&err)) << err;
  ASSERT_TRUE(eb.CheckInvariants(&err)) << err;
}

// ApplyDelta must accumulate per-key multiplicities identically to the
// equivalent single-tuple update sequence.
TEST(IvmeEquivalenceTest, ApplyDeltaMatchesPerTupleUpdates) {
  auto ds = TriangleQuery();
  TriangleEngine<I64Ring> by_delta(*ds->query, ds->r, ds->s, ds->t);
  TriangleEngine<I64Ring> by_tuple(*ds->query, ds->r, ds->s, ds->t);

  UpdateStream stream = UpdateStream::AdversarialSkew(SmallSkew(33));
  for (const auto& batch : stream.batches()) {
    Relation<I64Ring> delta =
        UpdateStream::ToDelta<I64Ring>(*ds->query, batch);
    by_delta.ApplyDelta(batch.relation, delta);
    // The delta relation collapses repeated keys; replay it per entry.
    delta.ForEach([&](const Tuple& key, const int64_t& m) {
      by_tuple.ApplyUpdate(batch.relation, key, m);
    });
    ASSERT_EQ(by_delta.result(), by_tuple.result());
  }
  std::string err;
  ASSERT_TRUE(by_delta.CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace fivm
