#include "src/ml/linear_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/ml/cofactor.h"
#include "src/rings/regression_ring.h"
#include "src/util/rng.h"

namespace fivm::ml {
namespace {

// Builds a cofactor payload directly from a design matrix.
RegressionPayload PayloadFromRows(
    const std::vector<std::vector<double>>& rows) {
  RegressionPayload total;
  for (const auto& row : rows) {
    RegressionPayload p = RegressionPayload::Count(1.0);
    for (size_t j = 0; j < row.size(); ++j) {
      p = Mul(p, RegressionPayload::Lift(static_cast<uint32_t>(j), row[j]));
    }
    total.AddInPlace(p);
  }
  return total;
}

TEST(LinearRegressionTest, RecoversExactLinearModel) {
  // y = 3 + 2*x0 - 1.5*x1, noise-free.
  util::Rng rng(11);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 200; ++i) {
    double x0 = rng.UniformDouble(-5.0, 5.0);
    double x1 = rng.UniformDouble(-5.0, 5.0);
    rows.push_back({x0, x1, 3.0 + 2.0 * x0 - 1.5 * x1});
  }
  auto payload = PayloadFromRows(rows);

  auto result = TrainFromCofactor(payload, {0, 1}, 2);
  ASSERT_EQ(result.theta.size(), 3u);
  EXPECT_NEAR(result.theta[0], 3.0, 1e-3);
  EXPECT_NEAR(result.theta[1], 2.0, 1e-3);
  EXPECT_NEAR(result.theta[2], -1.5, 1e-3);
  EXPECT_LT(result.mse, 1e-5);
}

TEST(LinearRegressionTest, ClosedFormMatchesGradientDescent) {
  util::Rng rng(12);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 300; ++i) {
    double x0 = rng.UniformDouble(-2.0, 2.0);
    double x1 = rng.UniformDouble(-2.0, 2.0);
    double y = 1.0 - 0.5 * x0 + 4.0 * x1 + rng.UniformDouble(-0.1, 0.1);
    rows.push_back({x0, x1, y});
  }
  auto payload = PayloadFromRows(rows);

  auto gd = TrainFromCofactor(payload, {0, 1}, 2);
  auto cf = SolveLeastSquares(payload, {0, 1}, 2);
  ASSERT_EQ(gd.theta.size(), cf.theta.size());
  for (size_t i = 0; i < gd.theta.size(); ++i) {
    EXPECT_NEAR(gd.theta[i], cf.theta[i], 1e-3) << "theta " << i;
  }
  EXPECT_NEAR(gd.mse, cf.mse, 1e-5);
}

TEST(LinearRegressionTest, MseDecreasesWithBetterModel) {
  util::Rng rng(13);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    double x = rng.UniformDouble(-1.0, 1.0);
    rows.push_back({x, 2.0 * x + 1.0});
  }
  auto payload = PayloadFromRows(rows);
  double mse_zero = MeanSquaredError(payload, {0}, 1, {0.0, 0.0});
  double mse_fit = MeanSquaredError(payload, {0}, 1, {1.0, 2.0});
  EXPECT_GT(mse_zero, mse_fit);
  EXPECT_NEAR(mse_fit, 0.0, 1e-12);
}

TEST(LinearRegressionTest, EmptyPayloadReturnsEmptyResult) {
  RegressionPayload empty;
  auto result = TrainFromCofactor(empty, {0}, 1);
  EXPECT_TRUE(result.theta.empty());
  EXPECT_FALSE(result.converged);
}

TEST(LinearRegressionTest, SingularSystemStillSolvable) {
  // Two perfectly collinear features: ridge keeps the solve finite.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.1;
    rows.push_back({x, 2.0 * x, 5.0 * x});
  }
  auto payload = PayloadFromRows(rows);
  auto cf = SolveLeastSquares(payload, {0, 1}, 2);
  ASSERT_EQ(cf.theta.size(), 3u);
  for (double t : cf.theta) EXPECT_TRUE(std::isfinite(t));
  EXPECT_LT(cf.mse, 1e-6);
}

TEST(CofactorHelpersTest, ScalarAggregateCountMatchesFormula) {
  Catalog catalog;
  Query query(&catalog);
  query.AddRelation("R", catalog.MakeSchema({"A", "B"}));
  query.AddRelation("S", catalog.MakeSchema({"B", "C"}));
  // m = 3 vars: 1 count + 3 sums + 6 quadratic = 10.
  auto aggs = ScalarRegressionAggregates(query);
  EXPECT_EQ(aggs.size(), 10u);
}

TEST(CofactorHelpersTest, ScalarAggregatesTruncate) {
  Catalog catalog;
  Query query(&catalog);
  query.AddRelation("R", catalog.MakeSchema({"A", "B", "C", "D"}));
  auto aggs = ScalarRegressionAggregates(query, 2);
  // 1 + 2 + 3 = 6.
  EXPECT_EQ(aggs.size(), 6u);
}

}  // namespace
}  // namespace fivm::ml
