#include "src/exec/delta_batcher.h"

#include <gtest/gtest.h>

#include <cassert>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/catalog.h"
#include "src/plan/propagation_plan.h"
#include "src/rings/ring.h"

namespace fivm::exec {
namespace {

// The paper's A-(B, C-(D,E)) query: R(A,B), S(A,C,E), T(C,D).
struct Fixture {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  int r, s, t;
  VariableOrder vo;
  ViewTree tree;
  // Standalone plan compilation (no engine needed): the batcher only reads
  // the per-relation leaf layouts off the plan handles.
  plan::PlanSet plans;

  static Fixture Make() { return Fixture(); }

  Fixture()
      : A(catalog.Intern("A")),
        B(catalog.Intern("B")),
        C(catalog.Intern("C")),
        D(catalog.Intern("D")),
        E(catalog.Intern("E")),
        r(query.AddRelation("R", Schema{A, B})),
        s(query.AddRelation("S", Schema{A, C, E})),
        t(query.AddRelation("T", Schema{C, D})),
        tree((Build(), &query), &vo),
        plans(plan::PlanSet::Compile(tree, [](VarId) { return true; })) {}

 private:
  void Build() {
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    std::string error;
    bool ok = vo.Finalize(query, &error);
    assert(ok);
    (void)ok;
  }
};

TEST(DeltaBatcherTest, CoalescesDuplicateKeysByRingAddition) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 0);
  batcher.PushInsert(f.r, Tuple::Ints({1, 2}));
  batcher.PushInsert(f.r, Tuple::Ints({1, 2}));
  batcher.Push(f.r, Tuple::Ints({1, 2}), 3);
  batcher.PushInsert(f.r, Tuple::Ints({4, 5}));
  EXPECT_EQ(batcher.pending_updates(), 4u);

  auto batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].relation, f.r);
  EXPECT_EQ(batches[0].delta.size(), 2u);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({1, 2})), 5);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({4, 5})), 1);
  EXPECT_EQ(batcher.pending_updates(), 0u);
}

TEST(DeltaBatcherTest, ZeroSumUpdatesCancelBeforeEmission) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 0);
  batcher.PushInsert(f.r, Tuple::Ints({1, 2}));
  batcher.PushDelete(f.r, Tuple::Ints({1, 2}));
  auto batches = batcher.Flush();
  EXPECT_TRUE(batches.empty());

  // A cancelled key alongside a surviving one: only the survivor is
  // emitted.
  batcher.PushInsert(f.r, Tuple::Ints({1, 2}));
  batcher.PushInsert(f.r, Tuple::Ints({7, 8}));
  batcher.PushDelete(f.r, Tuple::Ints({1, 2}));
  batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].delta.size(), 1u);
  EXPECT_EQ(batches[0].delta.Find(Tuple::Ints({1, 2})), nullptr);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({7, 8})), 1);
}

TEST(DeltaBatcherTest, ReordersArrivalLayoutToLeafSchemaOncePerBatch) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 0);
  // T's updates arrive as (D, C) — reversed relative to T(C, D).
  batcher.SetInputSchema(f.t, Schema{f.D, f.C});
  batcher.PushInsert(f.t, Tuple::Ints({9, 3}));   // (d=9, c=3)
  batcher.PushInsert(f.t, Tuple::Ints({9, 3}));   // coalesces pre-reorder
  batcher.PushInsert(f.t, Tuple::Ints({10, 4}));  // (d=10, c=4)

  auto batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 1u);
  const Schema& leaf_schema =
      f.tree.node(f.tree.LeafOfRelation(f.t)).out_schema;
  EXPECT_EQ(batches[0].delta.schema(), leaf_schema);
  EXPECT_EQ(batches[0].delta.size(), 2u);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({3, 9})), 2);   // (c,d)
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({4, 10})), 1);

  // The layout sticks across flushes.
  batcher.PushInsert(f.t, Tuple::Ints({11, 5}));
  batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({5, 11})), 1);
}

TEST(DeltaBatcherTest, EmitsRelationsInFirstTouchOrder) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 0);
  batcher.PushInsert(f.t, Tuple::Ints({1, 1}));
  batcher.PushInsert(f.r, Tuple::Ints({2, 2}));
  batcher.PushInsert(f.t, Tuple::Ints({3, 3}));
  batcher.PushInsert(f.s, Tuple::Ints({4, 4, 4}));

  auto batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].relation, f.t);
  EXPECT_EQ(batches[1].relation, f.r);
  EXPECT_EQ(batches[2].relation, f.s);
}

TEST(DeltaBatcherTest, CapacityDrivesFull) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 3);
  EXPECT_EQ(batcher.capacity(), 3u);
  EXPECT_FALSE(batcher.Full());
  batcher.PushInsert(f.r, Tuple::Ints({1, 1}));
  batcher.PushInsert(f.r, Tuple::Ints({1, 1}));  // duplicates still count
  EXPECT_FALSE(batcher.Full());
  batcher.PushInsert(f.r, Tuple::Ints({2, 2}));
  EXPECT_TRUE(batcher.Full());
  batcher.Flush();
  EXPECT_FALSE(batcher.Full());

  // Capacity 0 never reports full.
  DeltaBatcher<I64Ring> manual(&f.plans, 0);
  for (int i = 0; i < 100; ++i) {
    manual.PushInsert(f.r, Tuple::Ints({i, i}));
  }
  EXPECT_FALSE(manual.Full());
}

TEST(DeltaBatcherTest, PushInsertsCountsTowardCapacity) {
  Fixture f;
  DeltaBatcher<I64Ring> batcher(&f.plans, 4);
  std::vector<Tuple> keys{Tuple::Ints({1, 1}), Tuple::Ints({2, 2}),
                          Tuple::Ints({1, 1}), Tuple::Ints({3, 3})};
  batcher.PushInserts(f.r, keys);
  EXPECT_EQ(batcher.pending_updates(), 4u);
  EXPECT_TRUE(batcher.Full());
  auto batches = batcher.Flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].delta.size(), 3u);
  EXPECT_EQ(*batches[0].delta.Find(Tuple::Ints({1, 1})), 2);
}

}  // namespace
}  // namespace fivm::exec
