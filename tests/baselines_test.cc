// Cross-engine consistency: F-IVM, 1-IVM, DBT (recursive), F-RE and DBT-RE
// must maintain identical results on random update streams.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/baselines/first_order_ivm.h"
#include "src/baselines/recursive_ivm.h"
#include "src/baselines/reevaluation.h"
#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

struct EngineCase {
  int shape;
  int seed;
};

class CrossEngineTest : public ::testing::TestWithParam<EngineCase> {};

void BuildQuery(int shape, Catalog* catalog, Query* query) {
  if (shape == 0) {
    // Paper query: R(A,B), S(A,C,E), T(C,D).
    VarId A = catalog->Intern("A"), B = catalog->Intern("B"),
          C = catalog->Intern("C"), D = catalog->Intern("D"),
          E = catalog->Intern("E");
    query->AddRelation("R", Schema{A, B});
    query->AddRelation("S", Schema{A, C, E});
    query->AddRelation("T", Schema{C, D});
  } else if (shape == 1) {
    // Star join (Housing-like): all relations share K.
    VarId K = catalog->Intern("K");
    for (int i = 0; i < 4; ++i) {
      VarId X = catalog->Intern("X" + std::to_string(i));
      VarId Y = catalog->Intern("Y" + std::to_string(i));
      query->AddRelation("R" + std::to_string(i), Schema{K, X, Y});
    }
  } else {
    // Snowflake (Retailer-like): F(L,D,K), A(K,P), B(L,D), C(L,Z), Z(Z,W).
    VarId L = catalog->Intern("L"), D = catalog->Intern("D"),
          K = catalog->Intern("K"), P = catalog->Intern("P"),
          Z = catalog->Intern("Z"), W = catalog->Intern("W");
    query->AddRelation("F", Schema{L, D, K});
    query->AddRelation("A", Schema{K, P});
    query->AddRelation("B", Schema{L, D});
    query->AddRelation("C", Schema{L, Z});
    query->AddRelation("Zc", Schema{Z, W});
  }
}

TEST_P(CrossEngineTest, AllEnginesAgree) {
  const EngineCase& ec = GetParam();
  util::Rng rng(500 + ec.seed * 104729);

  Catalog catalog;
  Query query(&catalog);
  BuildQuery(ec.shape, &catalog, &query);

  LiftingMap<I64Ring> lifts;
  // Lift the last variable of relation 0 numerically (a SUM aggregate).
  VarId summed = query.relation(0).schema[query.relation(0).schema.size() - 1];
  lifts.Set(summed, [](const Value& x) { return x.AsInt(); });

  std::vector<int> updatable;
  for (int r = 0; r < query.relation_count(); ++r) updatable.push_back(r);

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.ComputeMaterialization(updatable);

  IvmEngine<I64Ring> fivm(&tree, lifts);
  FirstOrderIvm<I64Ring> first_order(&query, {lifts});
  RecursiveIvm<I64Ring> dbt(&query, updatable);
  dbt.AddAggregate({lifts, {}});

  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  fivm.Initialize(db);
  first_order.Initialize(db);
  dbt.Initialize(db);

  for (int step = 0; step < 30; ++step) {
    int rel = static_cast<int>(rng.Uniform(query.relation_count()));
    const Schema& sch = query.relation(rel).schema;
    Relation<I64Ring> delta(sch);
    int batch = 1 + static_cast<int>(rng.Uniform(3));
    for (int b = 0; b < batch; ++b) {
      Tuple t;
      for (size_t i = 0; i < sch.size(); ++i) {
        t.Append(Value::Int(rng.UniformInt(0, 2)));
      }
      delta.Add(t, rng.Bernoulli(0.25) ? -1 : 1);
    }

    fivm.ApplyDelta(rel, delta);
    first_order.ApplyDelta(rel, delta);
    dbt.ApplyDelta(rel, delta);
    db[rel].UnionWith(delta);

    const int64_t* a = fivm.result().Find(Tuple());
    const int64_t* b = first_order.result().Find(Tuple());
    const int64_t* c = dbt.result().Find(Tuple());
    int64_t va = a ? *a : 0;
    int64_t vb = b ? *b : 0;
    int64_t vc = c ? *c : 0;
    ASSERT_EQ(va, vb) << "1-IVM diverged at step " << step;
    ASSERT_EQ(va, vc) << "DBT diverged at step " << step;

    if (step % 10 == 9) {
      // Re-evaluation strategies agree too.
      auto fre = IvmEngine<I64Ring>::Evaluate(tree, lifts, db);
      auto dre = NaiveReevaluate(query, db, lifts);
      const int64_t* d = fre.Find(Tuple());
      const int64_t* e = dre.Find(Tuple());
      ASSERT_EQ(va, d ? *d : 0) << "F-RE diverged at step " << step;
      ASSERT_EQ(va, e ? *e : 0) << "DBT-RE diverged at step " << step;
    }
  }
}

std::vector<EngineCase> EngineCases() {
  std::vector<EngineCase> cases;
  for (int shape = 0; shape < 3; ++shape) {
    for (int seed = 0; seed < 3; ++seed) cases.push_back({shape, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossEngineTest, ::testing::ValuesIn(EngineCases()),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return "shape" + std::to_string(info.param.shape) + "seed" +
             std::to_string(info.param.seed);
    });

TEST(CrossEngineTest, GroupByQueryAgreesAcrossEngines) {
  Catalog catalog;
  Query query(&catalog);
  BuildQuery(0, &catalog, &query);
  VarId A = catalog.Lookup("A"), C = catalog.Lookup("C");
  query.SetFreeVars(Schema{A, C});

  LiftingMap<I64Ring> lifts;
  lifts.Set(catalog.Lookup("B"), [](const Value& x) { return x.AsInt(); });
  lifts.Set(catalog.Lookup("D"), [](const Value& x) { return x.AsInt(); });

  std::vector<int> updatable{0, 1, 2};
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();

  IvmEngine<I64Ring> fivm(&tree, lifts);
  FirstOrderIvm<I64Ring> first_order(&query, {lifts});
  RecursiveIvm<I64Ring> dbt(&query, updatable);
  dbt.AddAggregate({lifts, {}});

  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  fivm.Initialize(db);
  first_order.Initialize(db);
  dbt.Initialize(db);

  util::Rng rng(42);
  for (int step = 0; step < 40; ++step) {
    int rel = static_cast<int>(rng.Uniform(3));
    const Schema& sch = query.relation(rel).schema;
    Relation<I64Ring> delta(sch);
    Tuple t;
    for (size_t i = 0; i < sch.size(); ++i) {
      t.Append(Value::Int(rng.UniformInt(0, 2)));
    }
    delta.Add(t, rng.Bernoulli(0.2) ? -1 : 1);
    fivm.ApplyDelta(rel, delta);
    first_order.ApplyDelta(rel, delta);
    dbt.ApplyDelta(rel, delta);
    db[rel].UnionWith(delta);
  }

  const auto& fa = fivm.result();
  const auto& fo = first_order.result();
  const auto& dt = dbt.result();
  ASSERT_EQ(fa.size(), fo.size());
  ASSERT_EQ(fa.size(), dt.size());
  fa.ForEach([&](const Tuple& k, const int64_t& p) {
    auto pos_fo = fa.schema().PositionsOf(fo.schema());
    // result schemas are over {A, C} but may be ordered differently.
    auto reorder = [&](const Relation<I64Ring>& rel) {
      auto pos = fa.schema().PositionsOf(rel.schema());
      (void)pos;
      return rel.schema();
    };
    (void)reorder;
    (void)pos_fo;
    // Project k into each engine's schema order.
    auto project = [&](const Relation<I64Ring>& rel) -> const int64_t* {
      util::SmallVector<uint32_t, 6> pos;
      for (VarId v : rel.schema()) {
        pos.push_back(static_cast<uint32_t>(fa.schema().PositionOf(v)));
      }
      return rel.Find(k.Project(pos));
    };
    const int64_t* b = project(fo);
    const int64_t* c = project(dt);
    ASSERT_NE(b, nullptr) << k.ToString();
    ASSERT_NE(c, nullptr) << k.ToString();
    EXPECT_EQ(*b, p);
    EXPECT_EQ(*c, p);
  });
}

// Housing-like star join: DBT materializes one aggregated view per relation
// plus the top view (the paper's "DBT exploits conditional independence" —
// each component is a single relation keyed by the join variable).
TEST(RecursiveIvmTest, StarJoinViewStructure) {
  Catalog catalog;
  Query query(&catalog);
  BuildQuery(1, &catalog, &query);
  std::vector<int> updatable{0, 1, 2, 3};
  RecursiveIvm<I64Ring> dbt(&query, updatable);
  dbt.AddAggregate({LiftingMap<I64Ring>{}, {}});
  // Top view + 4 per-relation views grouped by K.
  EXPECT_EQ(dbt.ViewCount(), 5);
}

// Snowflake: DBT creates strictly more views than F-IVM's single view tree.
TEST(RecursiveIvmTest, SnowflakeCreatesMoreViewsThanFIvm) {
  Catalog catalog;
  Query query(&catalog);
  BuildQuery(2, &catalog, &query);
  std::vector<int> updatable{0, 1, 2, 3, 4};

  RecursiveIvm<I64Ring> dbt(&query, updatable);
  dbt.AddAggregate({LiftingMap<I64Ring>{}, {}});

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.ComputeMaterialization(updatable);

  EXPECT_GT(dbt.ViewCount(), tree.MaterializedCount());
}

// View sharing across aggregates: two scalar aggregates over different
// variables of the same relation share every auxiliary view that does not
// marginalize those variables.
TEST(RecursiveIvmTest, AggregatesShareViews) {
  Catalog catalog;
  Query query(&catalog);
  BuildQuery(1, &catalog, &query);
  std::vector<int> updatable{0, 1, 2, 3};

  auto numeric = [](const Value& x) { return x.AsInt(); };
  VarId x0 = catalog.Lookup("X0");
  VarId x1 = catalog.Lookup("X1");

  RecursiveIvm<I64Ring> dbt(&query, updatable);
  LiftingMap<I64Ring> l0;
  l0.Set(x0, numeric);
  std::vector<uint8_t> sig0(catalog.size(), 0);
  sig0[x0] = 1;
  dbt.AddAggregate({l0, sig0});
  int count_one = dbt.ViewCount();

  LiftingMap<I64Ring> l1;
  l1.Set(x1, numeric);
  std::vector<uint8_t> sig1(catalog.size(), 0);
  sig1[x1] = 1;
  dbt.AddAggregate({l1, sig1});
  int count_two = dbt.ViewCount();

  // The second aggregate adds its own top view and the views whose interior
  // contains X0/X1, but shares the others: fewer than 2x views.
  EXPECT_LT(count_two, 2 * count_one);
  EXPECT_GT(count_two, count_one);
}

// Multi-aggregate maintenance is correct: each top view tracks its own sum.
TEST(RecursiveIvmTest, MultiAggregateResultsIndependent) {
  Catalog catalog;
  Query query(&catalog);
  VarId K = catalog.Intern("K"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("R", Schema{K, X});
  query.AddRelation("S", Schema{K, Y});

  auto numeric = [](const Value& x) { return x.AsInt(); };
  RecursiveIvm<I64Ring> dbt(&query, {0, 1});
  LiftingMap<I64Ring> lx;
  lx.Set(X, numeric);
  std::vector<uint8_t> sigx(catalog.size(), 0);
  sigx[X] = 1;
  int ax = dbt.AddAggregate({lx, sigx});
  LiftingMap<I64Ring> ly;
  ly.Set(Y, numeric);
  std::vector<uint8_t> sigy(catalog.size(), 0);
  sigy[Y] = 1;
  int ay = dbt.AddAggregate({ly, sigy});

  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  dbt.Initialize(db);

  Relation<I64Ring> dr(Schema{K, X});
  dr.Add(Tuple::Ints({1, 5}), 1);
  dr.Add(Tuple::Ints({2, 7}), 1);
  dbt.ApplyDelta(0, dr);
  Relation<I64Ring> ds(Schema{K, Y});
  ds.Add(Tuple::Ints({1, 10}), 1);
  ds.Add(Tuple::Ints({1, 20}), 1);
  dbt.ApplyDelta(1, ds);

  // Join: K=1 pairs (5,10), (5,20). SUM(X) = 10, SUM(Y) = 30.
  EXPECT_EQ(*dbt.result(ax).Find(Tuple()), 10);
  EXPECT_EQ(*dbt.result(ay).Find(Tuple()), 30);
}

// 1-IVM with several aggregates recomputes each delta independently but
// stays correct.
TEST(FirstOrderIvmTest, MultipleAggregates) {
  Catalog catalog;
  Query query(&catalog);
  VarId K = catalog.Intern("K"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("R", Schema{K, X});
  query.AddRelation("S", Schema{K, Y});

  auto numeric = [](const Value& x) { return x.AsInt(); };
  LiftingMap<I64Ring> lx, ly;
  lx.Set(X, numeric);
  ly.Set(Y, numeric);
  FirstOrderIvm<I64Ring> ivm(&query, {lx, ly});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  ivm.Initialize(db);

  Relation<I64Ring> dr(Schema{K, X});
  dr.Add(Tuple::Ints({1, 5}), 1);
  ivm.ApplyDelta(0, dr);
  Relation<I64Ring> ds(Schema{K, Y});
  ds.Add(Tuple::Ints({1, 10}), 2);  // multiplicity 2
  ivm.ApplyDelta(1, ds);

  EXPECT_EQ(*ivm.result(0).Find(Tuple()), 10);  // SUM(X) = 5 * 2
  EXPECT_EQ(*ivm.result(1).Find(Tuple()), 20);  // SUM(Y) = 10 * 2
  EXPECT_EQ(ivm.StoredViewCount(), 4);          // 2 relations + 2 results
}

TEST(FirstOrderIvmTest, HandlesDeletes) {
  Catalog catalog;
  Query query(&catalog);
  VarId K = catalog.Intern("K"), X = catalog.Intern("X");
  query.AddRelation("R", Schema{K, X});
  query.AddRelation("S", Schema{K});

  FirstOrderIvm<I64Ring> ivm(&query, {LiftingMap<I64Ring>{}});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  db[0].Add(Tuple::Ints({1, 1}), 1);
  db[1].Add(Tuple::Ints({1}), 1);
  ivm.Initialize(db);
  EXPECT_EQ(*ivm.result().Find(Tuple()), 1);

  Relation<I64Ring> del(Schema{K, X});
  del.Add(Tuple::Ints({1, 1}), -1);
  ivm.ApplyDelta(0, del);
  EXPECT_EQ(ivm.result().Find(Tuple()), nullptr);  // count dropped to 0
}

}  // namespace
}  // namespace fivm
