// Differential fuzzing of the SwissTable hash core (util::GroupTable) and
// the structures rebased on it: randomized insert / erase / clear / rehash /
// move / Reset streams checked op-by-op against a std::unordered_map
// reference, SSE2-vs-scalar control-group equivalence, and the rehash
// accounting that proves presized bulk paths run rehash-free. Runs in the
// plain, Release, and sanitizer CI jobs (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"
#include "src/util/group_table.h"
#include "src/util/hash.h"
#include "src/util/memory_tracker.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

struct IntHash {
  uint64_t operator()(int64_t x) const {
    return util::Mix64(static_cast<uint64_t>(x));
  }
};

using Map = util::FlatHashMap<int64_t, int64_t, IntHash>;
using Ref = std::unordered_map<int64_t, int64_t>;

void CheckAgainstReference(const Map& m, const Ref& ref) {
  ASSERT_EQ(m.size(), ref.size());
  size_t seen = 0;
  m.ForEach([&](const int64_t& k, const int64_t& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "stray key " << k;
    ASSERT_EQ(v, it->second) << "value mismatch for key " << k;
    ++seen;
  });
  ASSERT_EQ(seen, ref.size());
}

// The core differential stream: every operation the table supports, with a
// key domain small enough that collisions, tombstone reuse, and
// tombstone-purging rehashes all happen constantly. Structural operations
// (clear, Reserve, move, copy) are interleaved at low probability so the
// stream crosses every lifecycle edge many times.
TEST(GroupTableFuzzTest, DifferentialStreamAgainstUnorderedMap) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    util::Rng rng(seed);
    Map m;
    Ref ref;
    for (int step = 0; step < 60000; ++step) {
      int64_t key = static_cast<int64_t>(rng.Uniform(700));
      uint64_t op = rng.Uniform(100);
      if (op < 40) {  // upsert via operator[]
        m[key] += 1;
        ref[key] += 1;
      } else if (op < 55) {  // Insert (no overwrite)
        int64_t v = static_cast<int64_t>(rng.Uniform(1000));
        bool a = m.Insert(key, v);
        bool b = ref.emplace(key, v).second;
        ASSERT_EQ(a, b) << "insert mismatch at step " << step;
      } else if (op < 85) {  // erase-heavy: tombstones dominate
        bool a = m.Erase(key);
        bool b = ref.erase(key) > 0;
        ASSERT_EQ(a, b) << "erase mismatch at step " << step;
      } else if (op < 97) {  // point lookup
        const int64_t* found = m.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_EQ(found, nullptr) << "find mismatch at step " << step;
        } else {
          ASSERT_NE(found, nullptr) << "find mismatch at step " << step;
          ASSERT_EQ(*found, it->second);
        }
      } else if (op < 98) {  // forced rehash
        m.Reserve(ref.size() * 2 + 64);
      } else if (op == 98) {  // move chain: source must stay usable
        Map moved(std::move(m));
        Map target;
        target = std::move(moved);
        ASSERT_EQ(m.size(), 0u);
        ASSERT_EQ(m.Find(key), nullptr);  // moved-from table answers sanely
        m = std::move(target);
      } else {  // clear
        m.clear();
        ref.clear();
      }
      ASSERT_EQ(m.size(), ref.size()) << "size drift at step " << step;
    }
    CheckAgainstReference(m, ref);
  }
}

// Erase-then-reinsert storms at fixed size: the table must reclaim
// tombstones through same-capacity purges rather than grow without bound.
TEST(GroupTableFuzzTest, TombstoneChurnDoesNotGrowTheTable) {
  util::Rng rng(44);
  Map m;
  Ref ref;
  for (int64_t i = 0; i < 500; ++i) {
    m.Insert(i, i);
    ref.emplace(i, i);
  }
  size_t bytes_after_warmup = 0;
  for (int round = 0; round < 200; ++round) {
    for (int n = 0; n < 300; ++n) {
      int64_t key = static_cast<int64_t>(rng.Uniform(500));
      if (m.Erase(key)) {
        ref.erase(key);
      } else {
        m.Insert(key, key);
        ref.emplace(key, key);
      }
    }
    if (round == 50) bytes_after_warmup = m.ApproxBytes();
  }
  CheckAgainstReference(m, ref);
  // Live size never exceeded 500 keys; the footprint must stay flat after
  // warmup (tombstone-free-on-rehash), not creep with churn.
  EXPECT_EQ(m.ApproxBytes(), bytes_after_warmup);
}

// Relation-level stream: SlotIndex (primary index over pooled entries) under
// Add with zero-crossing payloads (tombstoned entries stay indexed),
// Reset-and-refill (the scratch-slot lifecycle), compaction, and moves,
// against a reference map keyed by the same pairs.
TEST(GroupTableFuzzTest, RelationPrimaryIndexDifferentialStream) {
  for (uint64_t seed : {7u, 77u}) {
    util::Rng rng(seed);
    Relation<I64Ring> rel(Schema{0, 1});
    std::unordered_map<int64_t, int64_t> ref;  // key packed as a*1000+b
    auto pack = [](int64_t a, int64_t b) { return a * 1000 + b; };
    for (int step = 0; step < 40000; ++step) {
      int64_t a = static_cast<int64_t>(rng.Uniform(60));
      int64_t b = static_cast<int64_t>(rng.Uniform(60));
      uint64_t op = rng.Uniform(100);
      if (op < 55) {
        rel.Add(Tuple::Ints({a, b}), 1);
        if (++ref[pack(a, b)] == 0) ref.erase(pack(a, b));
      } else if (op < 80) {  // ring deletion: payload crosses zero
        rel.Add(Tuple::Ints({a, b}), -1);
        if (--ref[pack(a, b)] == 0) ref.erase(pack(a, b));
      } else if (op < 97) {
        const int64_t* p = rel.Find(Tuple::Ints({a, b}));
        auto it = ref.find(pack(a, b));
        if (it == ref.end()) {
          ASSERT_EQ(p, nullptr) << "find mismatch at step " << step;
        } else {
          ASSERT_NE(p, nullptr) << "find mismatch at step " << step;
          ASSERT_EQ(*p, it->second);
        }
      } else if (op < 98) {  // move chain; moved-from must stay coherent
        Relation<I64Ring> tmp(std::move(rel));
        ASSERT_EQ(rel.size(), 0u);
        rel.Add(Tuple::Ints({a, b}), 5);  // refill the moved-from shell
        rel = std::move(tmp);             // and discard it again
        if (rel.size() != ref.size()) FAIL() << "move lost entries";
      } else {  // scratch lifecycle: Reset keeps capacity, drops contents
        rel.Reset(Schema{0, 1});
        ref.clear();
      }
      ASSERT_EQ(rel.size(), ref.size()) << "size drift at step " << step;
    }
    size_t seen = 0;
    rel.ForEach([&](const Tuple& k, const int64_t& v) {
      auto it = ref.find(pack(k[0].AsInt(), k[1].AsInt()));
      ASSERT_NE(it, ref.end());
      ASSERT_EQ(v, it->second);
      ++seen;
    });
    ASSERT_EQ(seen, ref.size());
  }
}

// The portable SWAR group must agree with the SSE2 group on every sentinel
// scan, and its H2 match must be a superset of the true matches (the
// documented false-positive allowance — callers always confirm with a full
// hash/key comparison) that still contains every real match.
TEST(GroupTableFuzzTest, ScalarGroupMatchesSse2Semantics) {
  util::Rng rng(55);
  int8_t bytes[util::kGroupWidth];
  for (int round = 0; round < 2000; ++round) {
    for (auto& b : bytes) {
      uint64_t pick = rng.Uniform(10);
      if (pick == 0) {
        b = util::kCtrlEmpty;
      } else if (pick == 1) {
        b = util::kCtrlDeleted;
      } else {
        b = static_cast<int8_t>(rng.Uniform(128));
      }
    }
    util::ScalarGroup scalar(bytes);
    uint32_t true_empty = 0, true_any = 0;
    for (size_t i = 0; i < util::kGroupWidth; ++i) {
      if (bytes[i] == util::kCtrlEmpty) true_empty |= 1u << i;
      if (bytes[i] < 0) true_any |= 1u << i;
    }
    ASSERT_EQ(scalar.MatchEmpty(), true_empty);
    ASSERT_EQ(scalar.MatchEmptyOrDeleted(), true_any);
#if defined(FIVM_GROUP_TABLE_SSE2)
    util::SseGroup sse(bytes);
    ASSERT_EQ(sse.MatchEmpty(), true_empty);
    ASSERT_EQ(sse.MatchEmptyOrDeleted(), true_any);
#endif
    for (int h2 = 0; h2 < 128; h2 += 7) {
      uint32_t truth = 0;
      for (size_t i = 0; i < util::kGroupWidth; ++i) {
        if (bytes[i] == h2) truth |= 1u << i;
      }
#if defined(FIVM_GROUP_TABLE_SSE2)
      ASSERT_EQ(sse.Match(static_cast<int8_t>(h2)), truth);
#endif
      uint32_t scalar_match = scalar.Match(static_cast<int8_t>(h2));
      ASSERT_EQ(scalar_match & truth, truth)
          << "scalar group missed a real match";
    }
  }
}

// Presize proofs for the rehash counter (MemoryTracker::RehashCount counts
// in every binary — no allocator hooks needed): a reserved table absorbs its
// advertised size with zero growth rehashes, and the clustered bulk-absorb
// path rehashes at most once (its own up-front presize).
TEST(GroupTableFuzzTest, ReserveMakesBulkInsertRehashFree) {
  Map m;
  m.Reserve(20000);
  int64_t before = util::MemoryTracker::RehashCount();
  for (int64_t i = 0; i < 20000; ++i) m.Insert(i, i);
  EXPECT_EQ(util::MemoryTracker::RehashCount() - before, 0);
}

TEST(GroupTableFuzzTest, PresizedAbsorbRehashesAtMostOnce) {
  Relation<I64Ring> store(Schema{0, 1});
  Relation<I64Ring> delta(Schema{0, 1});
  for (int64_t i = 0; i < 30000; ++i) store.Add(Tuple::Ints({i, i}), 1);
  for (int64_t i = 20000; i < 50000; ++i) delta.Add(Tuple::Ints({i, i}), 1);
  int64_t before = util::MemoryTracker::RehashCount();
  AbsorbInto(store, std::move(delta));
  // One up-front index presize (ReserveForAbsorb); never a mid-absorb
  // growth rehash.
  EXPECT_LE(util::MemoryTracker::RehashCount() - before, 1);
  EXPECT_EQ(store.size(), 50000u);
}

// The gated home-cell-clustered absorb path (disabled by default — see the
// relation_ops.h measurement note) must produce exactly the contents of an
// arrival-order absorb, for both the copying and the consuming overload,
// with overlapping keys and zero-crossing tombstones in the delta. Also a
// presize proof: the clustered path reserves up front and never rehashes
// mid-absorb.
TEST(GroupTableFuzzTest, ClusteredAbsorbMatchesArrivalOrderContents) {
  util::Rng rng(66);
  Relation<I64Ring> base(Schema{0, 1});
  Relation<I64Ring> delta(Schema{0, 1});
  for (int64_t i = 0; i < 20000; ++i) {
    base.Add(Tuple::Ints({i, i % 97}), 1 + static_cast<int64_t>(rng.Uniform(5)));
  }
  for (int64_t i = 15000; i < 40000; ++i) {
    delta.Add(Tuple::Ints({i, i % 97}), 1);
  }
  // Zero-crossing keys: payload cancels against the base store.
  for (int64_t i = 15000; i < 15200; ++i) {
    delta.Add(Tuple::Ints({i, i % 97}), -1);
  }

  Relation<I64Ring> arrival = base;
  AbsorbInto(arrival, delta);  // knob disabled: arrival order

  ClusteredAbsorbMinKeys().store(1024);
  Relation<I64Ring> clustered_copy = base;
  AbsorbInto(clustered_copy, delta);
  Relation<I64Ring> clustered_move = base;
  int64_t before = util::MemoryTracker::RehashCount();
  AbsorbInto(clustered_move, Relation<I64Ring>(delta));
  EXPECT_LE(util::MemoryTracker::RehashCount() - before, 1);
  ClusteredAbsorbMinKeys().store(kClusteredAbsorbDisabled);

  EXPECT_TRUE(ContentEquals(arrival, clustered_copy));
  EXPECT_TRUE(ContentEquals(arrival, clustered_move));
}

}  // namespace
}  // namespace fivm
