#include "src/core/view_tree.h"

#include <gtest/gtest.h>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/data/catalog.h"

namespace fivm {
namespace {

struct PaperQuery {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  int r, s, t;

  PaperQuery() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    D = catalog.Intern("D");
    E = catalog.Intern("E");
    r = query.AddRelation("R", Schema{A, B});
    s = query.AddRelation("S", Schema{A, C, E});
    t = query.AddRelation("T", Schema{C, D});
  }

  VariableOrder Figure2a() const {
    VariableOrder vo;
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    return vo;
  }
};

// Figure 2b: views V@B_R[A], V@D_T[C], V@E_S[A,C], V@C_ST[A], V@A_RST[].
TEST(ViewTreeTest, Figure2bKeySchemas) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);

  // 5 variable views + 3 leaves = 8 nodes (no chains to compose here).
  EXPECT_EQ(tree.nodes().size(), 8u);

  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(root.out_schema.empty());
  ASSERT_EQ(root.vars.size(), 1u);
  EXPECT_EQ(root.vars[0], pq.A);

  // Locate the view above leaf R: V@B_R with keys [A].
  int leaf_r = tree.LeafOfRelation(pq.r);
  const auto& vb = tree.node(tree.node(leaf_r).parent);
  EXPECT_TRUE(vb.out_schema.SameSet(Schema{pq.A}));
  EXPECT_TRUE(vb.marg_vars.SameSet(Schema{pq.B}));

  int leaf_t = tree.LeafOfRelation(pq.t);
  const auto& vd = tree.node(tree.node(leaf_t).parent);
  EXPECT_TRUE(vd.out_schema.SameSet(Schema{pq.C}));

  int leaf_s = tree.LeafOfRelation(pq.s);
  const auto& ve = tree.node(tree.node(leaf_s).parent);
  EXPECT_TRUE(ve.out_schema.SameSet(Schema{pq.A, pq.C}));

  // V@C_ST[A]: parent of V@D and V@E.
  const auto& vc = tree.node(vd.parent);
  EXPECT_TRUE(vc.out_schema.SameSet(Schema{pq.A}));
  EXPECT_EQ(vc.parent, tree.root());
}

TEST(ViewTreeTest, FreeVariablesStayInKeys) {
  PaperQuery pq;
  pq.query.SetFreeVars(Schema{pq.A, pq.C});
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);

  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(root.out_schema.SameSet(Schema{pq.A, pq.C}));
  EXPECT_TRUE(root.marg_vars.empty());
}

TEST(ViewTreeTest, PathToRootFollowsLeafChain) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);

  auto path = tree.PathToRoot(pq.t);
  // T-leaf → V@D → V@C → V@A(root).
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(tree.node(path[0]).relation, pq.t);
  EXPECT_EQ(path.back(), tree.root());
}

// Example 4.2 / Figure 5: for updates to T only, materialize the root and
// the sibling views V@E_S and V@B_R, but not V@D_T or V@C_ST.
TEST(ViewTreeTest, MaterializationForUpdatesToTOnly) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);
  tree.ComputeMaterialization({pq.t});

  EXPECT_TRUE(tree.node(tree.root()).materialized);

  int leaf_r = tree.LeafOfRelation(pq.r);
  int leaf_s = tree.LeafOfRelation(pq.s);
  int leaf_t = tree.LeafOfRelation(pq.t);
  int vb = tree.node(leaf_r).parent;   // V@B_R
  int ve = tree.node(leaf_s).parent;   // V@E_S
  int vd = tree.node(leaf_t).parent;   // V@D_T
  int vc = tree.node(vd).parent;       // V@C_ST

  EXPECT_TRUE(tree.node(vb).materialized);
  EXPECT_TRUE(tree.node(ve).materialized);
  EXPECT_FALSE(tree.node(vd).materialized);
  EXPECT_FALSE(tree.node(vc).materialized);
  // Base relations are not needed either (T's own leaf feeds the delta).
  EXPECT_FALSE(tree.node(leaf_t).materialized);
  EXPECT_FALSE(tree.node(leaf_r).materialized);
  EXPECT_FALSE(tree.node(leaf_s).materialized);
}

TEST(ViewTreeTest, MaterializationForAllUpdatableStoresEverything) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);
  tree.ComputeMaterialization({pq.r, pq.s, pq.t});
  // Every view joins (at some ancestor) with siblings over updatable
  // relations, except base-relation leaves whose parents only cover
  // themselves... here all views are needed except none.
  for (const auto& n : tree.nodes()) {
    if (n.relation >= 0) {
      // Leaf R: parent V@B has rels {R} → (rels(parent)\{R}) ∩ U = ∅ for R's
      // own leaf under a single-relation view.
      continue;
    }
    EXPECT_TRUE(n.materialized) << n.name;
  }
}

TEST(ViewTreeTest, NoUpdatesStoresOnlyRoot) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);
  tree.ComputeMaterialization({});
  EXPECT_EQ(tree.MaterializedCount(), 1);
  EXPECT_TRUE(tree.node(tree.root()).materialized);
}

TEST(ViewTreeTest, ChainCompositionCollapsesLocalVariables) {
  // Wide relation W(K, L1..L4) joined with X(K, M): the L chain composes
  // into a single view over W.
  Catalog catalog;
  Query q(&catalog);
  VarId K = catalog.Intern("K");
  VarId M = catalog.Intern("M");
  std::vector<VarId> L;
  for (int i = 0; i < 4; ++i) {
    L.push_back(catalog.Intern("L" + std::to_string(i)));
  }
  Schema w_schema{K};
  for (VarId l : L) w_schema.Add(l);
  q.AddRelation("W", w_schema);
  q.AddRelation("X", Schema{K, M});

  VariableOrder vo;
  int k = vo.AddNode(K, -1);
  int parent = k;
  for (VarId l : L) parent = vo.AddNode(l, parent);
  vo.AddNode(M, k);
  std::string error;
  ASSERT_TRUE(vo.Finalize(q, &error)) << error;

  ViewTree tree(&q, &vo);
  // Expected: root V@K, child V@[L0..L3] over leaf W, child V@M over leaf X.
  // Total nodes: 3 views + 2 leaves = 5.
  EXPECT_EQ(tree.nodes().size(), 5u);
  int leaf_w = tree.LeafOfRelation(0);
  const auto& vl = tree.node(tree.node(leaf_w).parent);
  EXPECT_EQ(vl.vars.size(), 4u);
  EXPECT_TRUE(vl.marg_vars.SameSet(Schema{L[0], L[1], L[2], L[3]}));
  EXPECT_TRUE(vl.out_schema.SameSet(Schema{K}));
}

TEST(ViewTreeTest, CompositionDisabled) {
  Catalog catalog;
  Query q(&catalog);
  VarId K = catalog.Intern("K");
  VarId L0 = catalog.Intern("L0");
  VarId L1 = catalog.Intern("L1");
  q.AddRelation("W", Schema{K, L0, L1});
  q.AddRelation("X", Schema{K});
  VariableOrder vo;
  int k = vo.AddNode(K, -1);
  int l0 = vo.AddNode(L0, k);
  vo.AddNode(L1, l0);
  std::string error;
  ASSERT_TRUE(vo.Finalize(q, &error)) << error;
  ViewTree::Options opts;
  opts.compose_chains = false;
  ViewTree tree(&q, &vo, opts);
  EXPECT_EQ(tree.nodes().size(), 5u);  // K, L0, L1 views + 2 leaves
}

TEST(ViewTreeTest, RetainVarsModeStoresOwnVariable) {
  PaperQuery pq;
  pq.query.SetFreeVars(Schema{pq.A, pq.B, pq.C, pq.D});
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree::Options opts;
  opts.retain_vars = true;
  ViewTree tree(&pq.query, &vo, opts);

  // In retain mode the root marginalizes A but stores [A].
  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(root.out_schema.empty());
  EXPECT_TRUE(root.store_schema.SameSet(Schema{pq.A}));
  EXPECT_TRUE(root.retained_vars.SameSet(Schema{pq.A}));

  // V@D_T stores [C, D].
  int leaf_t = tree.LeafOfRelation(pq.t);
  const auto& vd = tree.node(tree.node(leaf_t).parent);
  EXPECT_TRUE(vd.store_schema.SameSet(Schema{pq.C, pq.D}));
  EXPECT_TRUE(vd.out_schema.SameSet(Schema{pq.C}));
}

TEST(ViewTreeTest, AggregateSlotsAreContiguousPerSubtree) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  ViewTree tree(&pq.query, &vo);
  auto slots = tree.AssignAggregateSlots();

  // All five variables get distinct slots 0..4.
  std::vector<bool> used(5, false);
  for (VarId v : {pq.A, pq.B, pq.C, pq.D, pq.E}) {
    ASSERT_LT(slots[v], 5u);
    EXPECT_FALSE(used[slots[v]]);
    used[slots[v]] = true;
  }
  // The subtree under C covers {C, D, E}: those slots are contiguous.
  uint32_t lo = std::min({slots[pq.C], slots[pq.D], slots[pq.E]});
  uint32_t hi = std::max({slots[pq.C], slots[pq.D], slots[pq.E]});
  EXPECT_EQ(hi - lo, 2u);
}

TEST(ViewTreeTest, DisconnectedQueryGetsVirtualRoot) {
  Catalog catalog;
  Query q(&catalog);
  q.AddRelation("R", catalog.MakeSchema({"A"}));
  q.AddRelation("S", catalog.MakeSchema({"X"}));
  VariableOrder vo = VariableOrder::Auto(q);
  ViewTree tree(&q, &vo);
  const auto& root = tree.node(tree.root());
  EXPECT_EQ(root.relation, -1);
  EXPECT_EQ(root.subtree_relations.size(), 2u);
}

}  // namespace
}  // namespace fivm
