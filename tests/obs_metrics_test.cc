// Tests of the src/obs/ metrics subsystem: log-linear histogram bucket
// geometry and percentile accuracy against a sorted-sample reference,
// thread-sharded concurrent recording (this file runs under the CI TSan
// job), registry semantics (pointer stability, gauge tokens), the runtime
// enable switch, and both exporters. Everything behind FIVM_METRICS_ENABLED
// is additionally compiled in the metrics-off CI job, where only the stub
// behavior is asserted.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics.h"

namespace fivm::obs {
namespace {

#if FIVM_METRICS_ENABLED

uint64_t NextRand(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

TEST(HistogramBuckets, RoundTripAndMonotone) {
  // Every probe value must land in a bucket whose [lo, hi] range contains
  // it, and bucket indices must be monotone in the value.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 200; ++v) probes.push_back(v);
  for (int msb = 4; msb < 64; ++msb) {
    const uint64_t base = uint64_t{1} << msb;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
    probes.push_back(base + base - 1);
  }
  probes.push_back(~uint64_t{0});
  std::sort(probes.begin(), probes.end());

  size_t prev_bucket = 0;
  for (uint64_t v : probes) {
    const size_t b = Histogram::BucketOf(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLo(b), v) << "value " << v;
    EXPECT_GE(Histogram::BucketHi(b), v) << "value " << v;
    EXPECT_GE(b, prev_bucket) << "value " << v;
    prev_bucket = b;
  }
}

TEST(HistogramBuckets, BoundariesTile) {
  // Consecutive buckets tile the value space with no gap or overlap.
  for (size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    const uint64_t hi = Histogram::BucketHi(b);
    const uint64_t next_lo = Histogram::BucketLo(b + 1);
    if (next_lo == ~uint64_t{0} && hi == ~uint64_t{0}) break;  // saturated
    ASSERT_EQ(hi + 1, next_lo) << "bucket " << b;
  }
}

// Reference nearest-rank percentile over the raw samples.
uint64_t ReferencePercentile(std::vector<uint64_t> sorted, double p) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void CheckPercentiles(const std::vector<uint64_t>& samples) {
  Histogram h;
  for (uint64_t v : samples) h.Record(v);
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const uint64_t ref = ReferencePercentile(sorted, p);
    const double got = h.Percentile(p);
    // The histogram cannot distinguish values inside one bucket, so the
    // answer must lie within the bucket holding the reference sample.
    const size_t rb = Histogram::BucketOf(ref);
    EXPECT_GE(got + 0.5, static_cast<double>(Histogram::BucketLo(rb)))
        << "p" << p << " ref " << ref;
    EXPECT_LE(got, static_cast<double>(Histogram::BucketHi(rb)) + 0.5)
        << "p" << p << " ref " << ref;
    // Which bounds the relative error by the sub-bucket width (12.5%).
    if (ref >= Histogram::kLinearMax) {
      EXPECT_LE(std::abs(got - static_cast<double>(ref)),
                static_cast<double>(ref) * 0.125 + 1.0)
          << "p" << p;
    }
  }
  EXPECT_EQ(h.Count(), samples.size());
  uint64_t sum = 0, mx = 0;
  for (uint64_t v : samples) {
    sum += v;
    mx = std::max(mx, v);
  }
  EXPECT_EQ(h.Sum(), sum);
  EXPECT_EQ(h.MaxValue(), mx);
}

TEST(HistogramPercentiles, MatchesSortedReferenceLogUniform) {
  // Log-uniform samples stress many buckets including boundary values.
  std::vector<uint64_t> samples;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    const int shift = static_cast<int>(NextRand(&seed) % 40);
    samples.push_back(NextRand(&seed) >> (63 - shift >= 0 ? 63 - shift : 0));
  }
  CheckPercentiles(samples);
}

TEST(HistogramPercentiles, MatchesSortedReferenceAcrossBucketBoundaries) {
  // Samples pinned to bucket edges: lo, hi, lo-1 of many buckets.
  std::vector<uint64_t> samples;
  for (size_t b = 0; b < Histogram::kNumBuckets; b += 7) {
    const uint64_t lo = Histogram::BucketLo(b);
    if (lo == ~uint64_t{0}) break;
    samples.push_back(lo);
    samples.push_back(Histogram::BucketHi(b));
    if (lo > 0) samples.push_back(lo - 1);
  }
  CheckPercentiles(samples);
}

TEST(HistogramPercentiles, SmallCounts) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50.0), 0.0);  // empty
  h.Record(1000);
  // One sample: every percentile lands in its bucket.
  const size_t b = Histogram::BucketOf(1000);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_GE(h.Percentile(p) + 0.5,
              static_cast<double>(Histogram::BucketLo(b)));
    EXPECT_LE(h.Percentile(p),
              static_cast<double>(Histogram::BucketHi(b)) + 0.5);
  }
}

TEST(HistogramConcurrency, ShardedRecordingLosesNothing) {
  // Multi-thread fuzz (exercised under TSan in CI): every record must be
  // visible in the merged scrape, regardless of shard assignment.
  Histogram h;
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t seed = 0x5bd1e995u + static_cast<uint64_t>(t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(NextRand(&seed) % 1000000);
        c.Add(1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot s = h.Snap();
  EXPECT_EQ(s.count, h.Count());
  EXPECT_LE(s.p50, s.p99 + 0.5);
  EXPECT_LE(s.p99, s.p999 + 0.5);
}

TEST(RuntimeSwitch, DisableStopsRecording) {
  Counter c;
  Histogram h;
  SetEnabled(false);
  c.Add(5);
  h.Record(5);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(5);
  h.Record(5);
  EXPECT_EQ(c.Value(), 5u);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(ScopedTimerTest, RecordsElapsedAndIgnoresNull) {
  Histogram h;
  {
    ScopedTimer t(&h);
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<uint64_t>(i);
    (void)sink;
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GT(h.Sum(), 0u);  // nanoseconds of a 10k-iteration loop
  { ScopedTimer t(nullptr); }  // must be a no-op, not a crash
}

TEST(RegistryTest, PointerStableAndShared) {
  auto& reg = MetricRegistry::Default();
  Counter* a = reg.GetCounter("obs_test.stable_counter");
  Counter* b = reg.GetCounter("obs_test.stable_counter");
  EXPECT_EQ(a, b);
  Histogram* ha = reg.GetHistogram("obs_test.stable_hist");
  Histogram* hb = reg.GetHistogram("obs_test.stable_hist");
  EXPECT_EQ(ha, hb);
  a->Add(3);
  const MetricsSnapshot snap = reg.Snapshot();
  bool found = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "obs_test.stable_counter") {
      found = true;
      EXPECT_GE(v, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RegistryTest, DefaultBridgesMemoryTracker) {
  const MetricsSnapshot snap = MetricRegistry::Default().Snapshot();
  std::vector<std::string> names;
  for (const auto& [name, v] : snap.gauges) names.push_back(name);
  for (const char* expected :
       {"memory.current_bytes", "memory.peak_bytes", "memory.allocations",
        "memory.rehashes"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

int64_t GaugeValue(const MetricsSnapshot& snap, const std::string& name,
                   bool* found) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) {
      *found = true;
      return v;
    }
  }
  *found = false;
  return 0;
}

TEST(RegistryTest, GaugeTokensProtectReplacements) {
  auto& reg = MetricRegistry::Default();
  const std::string name = "obs_test.gauge_token";
  const uint64_t t1 = reg.RegisterGauge(name, [] { return int64_t{1}; });
  // Replacement (a new engine registering before the old one's destructor
  // runs) takes over the name with a fresh token.
  const uint64_t t2 = reg.RegisterGauge(name, [] { return int64_t{2}; });
  EXPECT_NE(t1, t2);

  // The stale owner's unregister must not tear down the replacement.
  reg.UnregisterGauge(name, t1);
  bool found = false;
  EXPECT_EQ(GaugeValue(reg.Snapshot(), name, &found), 2);
  EXPECT_TRUE(found);

  // The current owner's token does remove it.
  reg.UnregisterGauge(name, t2);
  GaugeValue(reg.Snapshot(), name, &found);
  EXPECT_FALSE(found);
}

TEST(RegistryTest, ResetAllClearsCountersAndHistograms) {
  auto& reg = MetricRegistry::Default();
  Counter* c = reg.GetCounter("obs_test.reset_counter");
  Histogram* h = reg.GetHistogram("obs_test.reset_hist");
  c->Add(7);
  h->Record(7);
  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(ExportTest, JsonContainsAllSections) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("c.one", 42);
  snap.gauges.emplace_back("g.two", -7);
  HistogramSnapshot hs;
  hs.count = 3;
  hs.sum = 30;
  hs.max = 20;
  hs.p50 = 10;
  hs.p99 = 20;
  hs.p999 = 20;
  snap.histograms.emplace_back("h.three", hs);

  const std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"c.one\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.two\":-7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.three\":{\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":20.000"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line
}

TEST(ExportTest, PrometheusSanitizesAndEmitsQuantiles) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("engine.applied-deltas", 5);
  HistogramSnapshot hs;
  hs.count = 2;
  hs.sum = 10;
  hs.p50 = 4;
  hs.p99 = 6;
  hs.p999 = 6;
  snap.histograms.emplace_back("exec.merge_ns", hs);

  const std::string text = ToPrometheus(snap);
  EXPECT_NE(text.find("engine_applied_deltas 5"), std::string::npos) << text;
  EXPECT_NE(text.find("exec_merge_ns{quantile=\"0.99\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("exec_merge_ns_count 2"), std::string::npos) << text;
  EXPECT_EQ(text.find("applied-deltas"), std::string::npos) << text;
}

#else  // !FIVM_METRICS_ENABLED — compiled-out stubs must still behave.

TEST(MetricsOff, StubsAreInertAndExportersEmpty) {
  EXPECT_FALSE(Enabled());
  Counter c;
  c.Add(5);
  EXPECT_EQ(c.Value(), 0u);
  Histogram h;
  h.Record(5);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Snap().count, 0u);
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.Count(), 0u);

  auto& reg = MetricRegistry::Default();
  reg.GetCounter("anything")->Add(1);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_NE(ToJson(snap).find("\"counters\":{}"), std::string::npos);
  EXPECT_EQ(ToPrometheus(snap), "");
}

#endif  // FIVM_METRICS_ENABLED

}  // namespace
}  // namespace fivm::obs
