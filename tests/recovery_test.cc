// Durability end-to-end (no process kills — those live in
// recovery_chaos_test.cc): checkpoint round-trips, recovery == reference
// after window-mode and strict-mode ingest, WAL-only full replay, corrupt
// checkpoint fallback, .tmp images ignored, and the disk-full simulation
// (persistent wal.append faults shed windows gracefully — counted, engine
// consistent, recovery replays exactly the durable prefix).

#include "src/durability/recovery.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/durability/checkpoint.h"
#include "src/durability/wal.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/ingest/ingest_service.h"
#include "src/rings/ring.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"

namespace fivm::durability {
namespace {

using ingest::AdmissionPolicy;
using ingest::DurabilityPolicy;
using ingest::IngestService;
using ingest::ServiceOptions;

class TempDir {
 public:
  TempDir() {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "/tmp/fivm_rec_%d_XXXXXX",
                  static_cast<int>(::getpid()));
    dir_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    if (dir_.empty()) return;
    std::string cmd = "rm -rf " + dir_;
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// The standard two-relation rig (R(A,B) ⋈ S(B,C), free A) with the full
/// ingest pipeline and, optionally, the durability layer attached.
struct Rig {
  explicit Rig(const std::string& log_dir = "",
               DurabilityPolicy policy = DurabilityPolicy::kOff,
               size_t checkpoint_every = 0) {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
    pool.emplace(2);
    executor.emplace(&*engine, &*pool,
                     typename exec::ParallelExecutor<I64Ring>::Options{
                         .shards = 2});
    batcher.emplace(&engine->plans(), /*capacity=*/0);
    if (!log_dir.empty()) {
      wal.emplace(log_dir, WalWriter::Options{});
      ckpt.emplace(log_dir, &*engine, &*wal);
    }
    server.emplace(&*engine);
    ServiceOptions opts;
    opts.flush_updates = 128;
    opts.retry_backoff = std::chrono::microseconds(1);
    opts.retry_backoff_cap = std::chrono::microseconds(64);
    opts.max_retries = 4;
    opts.durability = policy;
    opts.checkpoint_every_flushes = checkpoint_every;
    opts.default_queue = {AdmissionPolicy::kBlock, /*capacity=*/1 << 20};
    service.emplace(&*engine, &*executor, &*batcher, &*server, opts);
    if (wal.has_value()) service->AttachDurability(&*wal, &*ckpt);
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
  std::optional<exec::ThreadPool> pool;
  std::optional<exec::ParallelExecutor<I64Ring>> executor;
  std::optional<exec::DeltaBatcher<I64Ring>> batcher;
  std::optional<WalWriter> wal;
  std::optional<Checkpointer<I64Ring>> ckpt;
  std::optional<serve::SnapshotServer<I64Ring>> server;
  std::optional<IngestService<I64Ring>> service;
};

/// Deterministic seeded insert/delete stream, identical regeneration per
/// seed (the recovery tests re-derive reference state from it).
struct StreamGen {
  explicit StreamGen(uint64_t seed) : rng(seed) {}

  struct U {
    int relation;
    Tuple key;
    int64_t mult;
  };

  U Next() {
    int r = static_cast<int>(rng.UniformInt(0, 1));
    if (!inserted[r].empty() && rng.Bernoulli(0.2)) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inserted[r].size()) - 1));
      Tuple key = inserted[r][pick];
      inserted[r][pick] = inserted[r].back();
      inserted[r].pop_back();
      return U{r, key, -1};
    }
    Tuple key = Tuple::Ints({rng.UniformInt(0, 40), rng.UniformInt(0, 25)});
    inserted[r].push_back(key);
    return U{r, key, 1};
  }

  util::Rng rng;
  std::vector<std::vector<Tuple>> inserted{2};
};

/// Reference engine fed the first `n` updates of `seed`'s stream,
/// sequentially and fault-free.
void FeedReference(IvmEngine<I64Ring>* engine, const Query& query,
                   uint64_t seed, size_t n) {
  StreamGen gen(seed);
  for (size_t i = 0; i < n; ++i) {
    auto u = gen.Next();
    Relation<I64Ring> delta(query.relation(u.relation).schema);
    delta.Add(u.key, u.mult);
    engine->ApplyDelta(u.relation, std::move(delta));
  }
}

RecoveryResult RecoverInto(Rig* rig, const std::string& dir) {
  return Recover(dir, &*rig->engine, &*rig->batcher, &*rig->executor);
}

TEST(RecoveryTest, CheckpointRoundTrip) {
  TempDir td;
  constexpr uint64_t kSeed = 60001;
  constexpr size_t kUpdates = 1500;
  Rig rig(td.path(), DurabilityPolicy::kWindow);
  StreamGen gen(kSeed);
  for (size_t i = 0; i < kUpdates; ++i) {
    auto u = gen.Next();
    ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
    if ((i + 1) % 128 == 0) rig.service->PumpOnce(/*force_flush=*/true);
  }
  rig.service->DrainNow();
  CheckpointMeta meta = rig.ckpt->WriteCheckpoint();
  EXPECT_EQ(meta.update_count, kUpdates);
  EXPECT_EQ(meta.lsn, rig.wal->last_sealed_lsn());

  // A fresh engine restored from the image alone (no WAL replay needed:
  // the checkpoint covers the entire sealed log).
  Rig fresh;
  auto loaded = LoadNewestCheckpoint(td.path(), &*fresh.engine);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.lsn, meta.lsn);
  EXPECT_EQ(loaded.meta.update_count, kUpdates);
  EXPECT_EQ(loaded.corrupt_skipped, 0u);
  EXPECT_TRUE(exec::StoresContentEqual(*fresh.engine, *rig.engine));
}

TEST(RecoveryTest, WindowModeRecoverEqualsReference) {
  TempDir td;
  constexpr uint64_t kSeed = 60002;
  constexpr size_t kUpdates = 3000;
  size_t checkpoints = 0;
  {
    Rig rig(td.path(), DurabilityPolicy::kWindow,
            /*checkpoint_every=*/4);
    StreamGen gen(kSeed);
    for (size_t i = 0; i < kUpdates; ++i) {
      auto u = gen.Next();
      ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
      if ((i + 1) % 128 == 0) rig.service->PumpOnce(/*force_flush=*/true);
    }
    rig.service->DrainNow();
    auto stats = rig.service->GetStats();
    EXPECT_EQ(stats.wal_appended, kUpdates);
    EXPECT_GE(stats.checkpoints, 1u);
    EXPECT_EQ(stats.wal_failed_windows, 0u);
    EXPECT_EQ(stats.checkpoint_failures, 0u);
    checkpoints = stats.checkpoints;
    // Dropping the rig here = clean process death after the last seal.
  }
  ASSERT_GE(checkpoints, 1u);

  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_TRUE(rr.checkpoint_loaded);
  EXPECT_FALSE(rr.gap_detected);
  EXPECT_FALSE(rr.saw_torn_tail);
  EXPECT_EQ(rr.update_count, kUpdates);

  Rig reference;
  FeedReference(&*reference.engine, reference.query, kSeed, kUpdates);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *reference.engine));

  // The serving layer rebases onto the recovered stores and answers.
  recovered.server->Rebase();
  auto snap = recovered.server->Acquire();
  EXPECT_TRUE(
      ContentEquals(snap.Materialize(), reference.engine->result()));
}

TEST(RecoveryTest, NoCheckpointFullReplay) {
  TempDir td;
  constexpr uint64_t kSeed = 60003;
  constexpr size_t kUpdates = 1000;
  {
    Rig rig(td.path(), DurabilityPolicy::kWindow);  // no checkpointing
    StreamGen gen(kSeed);
    for (size_t i = 0; i < kUpdates; ++i) {
      auto u = gen.Next();
      ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
      if ((i + 1) % 64 == 0) rig.service->PumpOnce(/*force_flush=*/true);
    }
    rig.service->DrainNow();
  }
  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_FALSE(rr.checkpoint_loaded);
  EXPECT_EQ(rr.updates_replayed, kUpdates);
  EXPECT_EQ(rr.frames_skipped, 0u);

  Rig reference;
  FeedReference(&*reference.engine, reference.query, kSeed, kUpdates);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *reference.engine));
}

TEST(RecoveryTest, CorruptNewestCheckpointFallsBackToOlder) {
  TempDir td;
  constexpr uint64_t kSeed = 60004;
  Rig rig(td.path(), DurabilityPolicy::kWindow);
  StreamGen gen(kSeed);
  size_t offered = 0;
  auto pump_n = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto u = gen.Next();
      ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
      ++offered;
      if (offered % 64 == 0) rig.service->PumpOnce(/*force_flush=*/true);
    }
    rig.service->DrainNow();
  };
  pump_n(600);
  rig.ckpt->WriteCheckpoint();
  pump_n(600);
  CheckpointMeta newest = rig.ckpt->WriteCheckpoint();
  pump_n(300);  // WAL suffix past the newest checkpoint

  // Corrupt the newest image (flip a byte in the middle).
  {
    FILE* fp = std::fopen(newest.path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 0, SEEK_END);
    long size = std::ftell(fp);
    std::fseek(fp, size / 2, SEEK_SET);
    int c = std::fgetc(fp);
    std::fseek(fp, size / 2, SEEK_SET);
    std::fputc(c ^ 0x10, fp);
    std::fclose(fp);
  }

  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_TRUE(rr.checkpoint_loaded);
  EXPECT_EQ(rr.corrupt_checkpoints_skipped, 1u);
  EXPECT_LT(rr.checkpoint_lsn, newest.lsn);  // fell back to the older image
  EXPECT_FALSE(rr.gap_detected);  // single active segment: nothing truncated
  EXPECT_EQ(rr.update_count, offered);

  Rig reference;
  FeedReference(&*reference.engine, reference.query, kSeed, offered);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *reference.engine));
}

TEST(RecoveryTest, PartialTmpImageIgnored) {
  TempDir td;
  constexpr uint64_t kSeed = 60005;
  Rig rig(td.path(), DurabilityPolicy::kWindow);
  StreamGen gen(kSeed);
  for (size_t i = 0; i < 500; ++i) {
    auto u = gen.Next();
    ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
  }
  rig.service->DrainNow();
  rig.ckpt->WriteCheckpoint();

  // A crashed install's leftovers: a half-written .tmp "newer" than the
  // real checkpoint. The loader must not even consider it.
  {
    std::string tmp = td.path() + "/ckpt-99999999999999999999.ckpt.tmp";
    FILE* fp = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("partial image garbage", fp);
    std::fclose(fp);
  }

  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_TRUE(rr.checkpoint_loaded);
  EXPECT_EQ(rr.corrupt_checkpoints_skipped, 0u);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *rig.engine));
}

#if !defined(FIVM_FAILPOINTS_OFF)
TEST(RecoveryTest, DiskFullShedsWindowsGracefully) {
  TempDir td;
  constexpr uint64_t kSeed = 60006;
  auto& fp = util::FailPointRegistry::Default();
  Rig rig(td.path(), DurabilityPolicy::kWindow);
  StreamGen gen(kSeed);
  size_t offered = 0;
  auto offer_pump = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto u = gen.Next();
      ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
      ++offered;
      if (offered % 64 == 0) rig.service->PumpOnce(/*force_flush=*/true);
    }
    rig.service->DrainNow();
  };

  offer_pump(512);  // healthy prefix
  const uint64_t durable_before = rig.wal->next_update_index();
  EXPECT_EQ(durable_before, 512u);

  // "Disk full": every append fails persistently. Windows must be shed —
  // counted, engine untouched by them, service alive.
  fp.Arm("wal.append", 1.0, kSeed);
  offer_pump(256);
  auto stats = rig.service->GetStats();
  EXPECT_GT(stats.wal_failed_windows, 0u);
  EXPECT_EQ(stats.failed_flushes, 0u);  // shed, not crashed
  EXPECT_EQ(rig.wal->next_update_index(), durable_before);
  fp.DisarmAll();

  // Space back: ingest resumes durably.
  offer_pump(256);
  EXPECT_EQ(rig.wal->next_update_index(), durable_before + 256);

  // The engine applied exactly the durable updates (shed windows are
  // discarded before apply), so recovery reproduces the live engine.
  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_EQ(rr.updates_replayed + 0, durable_before + 256);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *rig.engine));

  // And that state equals the reference fed the stream MINUS the shed
  // middle chunk: regenerate and skip updates [512, 768).
  Rig reference;
  {
    StreamGen g2(kSeed);
    for (size_t i = 0; i < offered; ++i) {
      auto u = g2.Next();
      if (i >= 512 && i < 768) continue;  // shed under the armed fault
      Relation<I64Ring> delta(reference.query.relation(u.relation).schema);
      delta.Add(u.key, u.mult);
      reference.engine->ApplyDelta(u.relation, std::move(delta));
    }
  }
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *reference.engine));
}
#endif  // !FIVM_FAILPOINTS_OFF

TEST(RecoveryTest, StrictModeUpdatesDurableAtAdmission) {
  TempDir td;
  constexpr uint64_t kSeed = 60007;
  constexpr size_t kUpdates = 400;
  {
    Rig rig(td.path(), DurabilityPolicy::kStrict);
    StreamGen gen(kSeed);
    for (size_t i = 0; i < kUpdates; ++i) {
      auto u = gen.Next();
      ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
    }
    // Every admitted update is already sealed + fsync'd — even though NONE
    // has been flushed or applied yet.
    EXPECT_EQ(rig.wal->next_update_index(), kUpdates);
    EXPECT_EQ(rig.service->GetStats().flushes, 0u);
    // Crash here (rig dropped with all updates still queued).
  }
  Rig recovered;
  RecoveryResult rr = RecoverInto(&recovered, td.path());
  EXPECT_EQ(rr.updates_replayed, kUpdates);

  Rig reference;
  FeedReference(&*reference.engine, reference.query, kSeed, kUpdates);
  EXPECT_TRUE(exec::StoresContentEqual(*recovered.engine, *reference.engine));
}

TEST(RecoveryTest, StrictModeCheckpointsOnlyAtQuiescence) {
  TempDir td;
  constexpr uint64_t kSeed = 60008;
  Rig rig(td.path(), DurabilityPolicy::kStrict, /*checkpoint_every=*/1);
  StreamGen gen(kSeed);
  for (size_t i = 0; i < 256; ++i) {
    auto u = gen.Next();
    ASSERT_TRUE(rig.service->Offer(u.relation, u.key, u.mult));
  }
  rig.service->DrainNow();  // final pump leaves queues + batcher empty
  auto stats = rig.service->GetStats();
  EXPECT_GE(stats.checkpoints, 1u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);

  // The newest checkpoint alone reproduces the engine (no replay needed).
  Rig fresh;
  auto loaded = LoadNewestCheckpoint(td.path(), &*fresh.engine);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.update_count, 256u);
  EXPECT_TRUE(exec::StoresContentEqual(*fresh.engine, *rig.engine));
}

}  // namespace
}  // namespace fivm::durability
