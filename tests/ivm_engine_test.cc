#include "src/core/ivm_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

struct PaperFixture {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  int r, s, t;
  VariableOrder vo;

  PaperFixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    D = catalog.Intern("D");
    E = catalog.Intern("E");
    r = query.AddRelation("R", Schema{A, B});
    s = query.AddRelation("S", Schema{A, C, E});
    t = query.AddRelation("T", Schema{C, D});
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    std::string error;
    bool ok = vo.Finalize(query, &error);
    assert(ok);
    (void)ok;
  }

  // Figure 2c database, with all payloads 1 (COUNT).
  Database<I64Ring> Figure2cDatabase() const {
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    db[r].Add(Tuple::Ints({1, 1}), 1);  // (a1,b1)
    db[r].Add(Tuple::Ints({1, 2}), 1);  // (a1,b2)
    db[r].Add(Tuple::Ints({2, 3}), 1);  // (a2,b3)
    db[r].Add(Tuple::Ints({3, 4}), 1);  // (a3,b4)
    db[s].Add(Tuple::Ints({1, 1, 1}), 1);  // (a1,c1,e1)
    db[s].Add(Tuple::Ints({1, 1, 2}), 1);  // (a1,c1,e2)
    db[s].Add(Tuple::Ints({1, 2, 3}), 1);  // (a1,c2,e3)
    db[s].Add(Tuple::Ints({2, 2, 4}), 1);  // (a2,c2,e4)
    db[t].Add(Tuple::Ints({1, 1}), 1);  // (c1,d1)
    db[t].Add(Tuple::Ints({2, 2}), 1);  // (c2,d2)
    db[t].Add(Tuple::Ints({2, 3}), 1);  // (c2,d3)
    db[t].Add(Tuple::Ints({3, 4}), 1);  // (c3,d4)
    return db;
  }
};

// Figure 2d: the COUNT query over the Figure 2c database is 10.
TEST(IvmEngineTest, CountQueryEvaluatesFigure2d) {
  PaperFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  engine.Initialize(f.Figure2cDatabase());

  ASSERT_EQ(engine.result().size(), 1u);
  EXPECT_EQ(*engine.result().Find(Tuple()), 10);

  // Intermediate views from Figure 2d: V@B_R[a1]=2, [a2]=1, [a3]=1.
  int vb = tree.node(tree.LeafOfRelation(f.r)).parent;
  EXPECT_EQ(*engine.store(vb).Find(Tuple::Ints({1})), 2);
  EXPECT_EQ(*engine.store(vb).Find(Tuple::Ints({2})), 1);
  EXPECT_EQ(*engine.store(vb).Find(Tuple::Ints({3})), 1);

  // V@D_T[c1]=1, [c2]=2, [c3]=1.
  int vd = tree.node(tree.LeafOfRelation(f.t)).parent;
  EXPECT_EQ(*engine.store(vd).Find(Tuple::Ints({1})), 1);
  EXPECT_EQ(*engine.store(vd).Find(Tuple::Ints({2})), 2);
  EXPECT_EQ(*engine.store(vd).Find(Tuple::Ints({3})), 1);

  // V@C_ST[a1]=4, [a2]=2.
  int vc = tree.node(vd).parent;
  EXPECT_EQ(*engine.store(vc).Find(Tuple::Ints({1})), 4);
  EXPECT_EQ(*engine.store(vc).Find(Tuple::Ints({2})), 2);
}

// Example 4.1: δT = {(c1,d1)→-1, (c2,d2)→3} changes the count by +5.
TEST(IvmEngineTest, Example41DeltaPropagation) {
  PaperFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  engine.Initialize(f.Figure2cDatabase());

  Relation<I64Ring> dt(Schema{f.C, f.D});
  dt.Add(Tuple::Ints({1, 1}), -1);
  dt.Add(Tuple::Ints({2, 2}), 3);
  engine.ApplyDelta(f.t, dt);

  EXPECT_EQ(*engine.result().Find(Tuple()), 15);

  // The stores on the path were refreshed: V@D_T[c1]=0 (gone), [c2]=5.
  int vd = tree.node(tree.LeafOfRelation(f.t)).parent;
  EXPECT_EQ(engine.store(vd).Find(Tuple::Ints({1})), nullptr);
  EXPECT_EQ(*engine.store(vd).Find(Tuple::Ints({2})), 5);
  // δV@C_ST[a1] = 1, [a2] = 3 over old values 4 and 2.
  int vc = tree.node(vd).parent;
  EXPECT_EQ(*engine.store(vc).Find(Tuple::Ints({1})), 5);
  EXPECT_EQ(*engine.store(vc).Find(Tuple::Ints({2})), 5);
}

// Example 4.2: for updates to T only, propagation works with only the root,
// V@B_R and V@E_S materialized.
TEST(IvmEngineTest, UpdatesToTOnlyUseSparsePlan) {
  PaperFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.ComputeMaterialization({f.t});
  EXPECT_EQ(tree.MaterializedCount(), 3);

  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  engine.Initialize(f.Figure2cDatabase());
  EXPECT_EQ(*engine.result().Find(Tuple()), 10);

  Relation<I64Ring> dt(Schema{f.C, f.D});
  dt.Add(Tuple::Ints({1, 1}), -1);
  dt.Add(Tuple::Ints({2, 2}), 3);
  engine.ApplyDelta(f.t, dt);
  EXPECT_EQ(*engine.result().Find(Tuple()), 15);
}

// Example 1.1 / 2.3: SUM(B*D*E) grouped by (A, C).
TEST(IvmEngineTest, SumQueryWithGroupByAndLiftings) {
  PaperFixture f;
  f.query.SetFreeVars(Schema{f.A, f.C});
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  LiftingMap<I64Ring> lifts;
  auto numeric = [](const Value& x) { return x.AsInt(); };
  lifts.Set(f.B, numeric);
  lifts.Set(f.D, numeric);
  lifts.Set(f.E, numeric);
  IvmEngine<I64Ring> engine(&tree, lifts);
  engine.Initialize(f.Figure2cDatabase());

  // Reference: join everything, sum B*D*E per (A, C).
  auto db = f.Figure2cDatabase();
  auto joined = Join(Join(db[f.r], db[f.s]), db[f.t]);
  auto expected = Marginalize(joined, Schema{f.B, f.D, f.E}, lifts);

  EXPECT_EQ(engine.result().size(), expected.size());
  expected.ForEach([&](const Tuple& k, const int64_t& p) {
    auto pos =
        expected.schema().PositionsOf(engine.result().schema());
    const int64_t* found = engine.result().Find(k.Project(pos));
    ASSERT_NE(found, nullptr) << k.ToString();
    EXPECT_EQ(*found, p);
  });

  // Now update S and compare against recomputation.
  Relation<I64Ring> ds(Schema{f.A, f.C, f.E});
  ds.Add(Tuple::Ints({1, 1, 9}), 2);
  ds.Add(Tuple::Ints({2, 2, 4}), -1);
  engine.ApplyDelta(f.s, ds);

  auto db2 = f.Figure2cDatabase();
  db2[f.s].UnionWith(ds);
  auto expected2 = Marginalize(Join(Join(db2[f.r], db2[f.s]), db2[f.t]),
                               Schema{f.B, f.D, f.E}, lifts);
  EXPECT_EQ(engine.result().size(), expected2.size());
  expected2.ForEach([&](const Tuple& k, const int64_t& p) {
    auto pos =
        expected2.schema().PositionsOf(engine.result().schema());
    const int64_t* found = engine.result().Find(k.Project(pos));
    ASSERT_NE(found, nullptr) << k.ToString();
    EXPECT_EQ(*found, p);
  });
}

// Factorized delta: δS = δS_A ⊗ δS_C ⊗ δS_E (Example 5.2) must produce the
// same result as the expanded listing delta.
TEST(IvmEngineTest, FactorizedDeltaMatchesListingDelta) {
  PaperFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  LiftingMap<I64Ring> lifts;

  IvmEngine<I64Ring> listing(&tree, lifts);
  IvmEngine<I64Ring> factorized(&tree, lifts);
  auto db = f.Figure2cDatabase();
  listing.Initialize(db);
  factorized.Initialize(db);

  Relation<I64Ring> da(Schema{f.A});
  da.Add(Tuple::Ints({1}), 1);
  da.Add(Tuple::Ints({2}), 1);
  Relation<I64Ring> dc(Schema{f.C});
  dc.Add(Tuple::Ints({1}), 1);
  dc.Add(Tuple::Ints({2}), 2);
  Relation<I64Ring> de(Schema{f.E});
  de.Add(Tuple::Ints({7}), 1);

  // Expanded product for the listing engine.
  auto expanded = Join(Join(da, dc), de);
  Relation<I64Ring> reordered(Schema{f.A, f.C, f.E});
  AbsorbInto(reordered, expanded);
  listing.ApplyDelta(f.s, reordered);

  factorized.ApplyFactorizedDelta(f.s, {da, dc, de});

  EXPECT_EQ(*listing.result().Find(Tuple()),
            *factorized.result().Find(Tuple()));
  // All stores on the path agree too.
  for (int node : tree.PathToRoot(f.s)) {
    const auto& a = listing.store(node);
    const auto& b = factorized.store(node);
    EXPECT_EQ(a.size(), b.size()) << tree.node(node).name;
    a.ForEach([&](const Tuple& k, const int64_t& p) {
      const int64_t* found = b.Find(k);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, p);
    });
  }
}

// ---------------------------------------------------------------------------
// Randomized property sweep: for random databases and random update streams
// (inserts and deletes, all relations), the engine result equals both
// from-scratch view-tree evaluation and a naive join-aggregate reference.
// ---------------------------------------------------------------------------

struct RandomCase {
  int shape;  // 0 = paper query, 1 = path join, 2 = star join
  int seed;
  bool with_free_vars;
  bool with_liftings;
};

class IvmRandomizedTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(IvmRandomizedTest, IvmMatchesRecomputation) {
  const RandomCase& rc = GetParam();
  util::Rng rng(1000 + rc.seed * 7919);

  Catalog catalog;
  Query query(&catalog);
  if (rc.shape == 0) {
    VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
          C = catalog.Intern("C"), D = catalog.Intern("D"),
          E = catalog.Intern("E");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{A, C, E});
    query.AddRelation("T", Schema{C, D});
    if (rc.with_free_vars) query.SetFreeVars(Schema{A, C});
  } else if (rc.shape == 1) {
    VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
          C = catalog.Intern("C"), D = catalog.Intern("D");
    query.AddRelation("R1", Schema{A, B});
    query.AddRelation("R2", Schema{B, C});
    query.AddRelation("R3", Schema{C, D});
    if (rc.with_free_vars) query.SetFreeVars(Schema{B});
  } else {
    VarId K = catalog.Intern("K");
    for (int i = 0; i < 4; ++i) {
      VarId X = catalog.Intern("X" + std::to_string(i));
      query.AddRelation("R" + std::to_string(i), Schema{K, X});
    }
    if (rc.with_free_vars) query.SetFreeVars(Schema{K});
  }

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();

  LiftingMap<I64Ring> lifts;
  if (rc.with_liftings) {
    for (VarId v : query.BoundVars()) {
      if (rng.Bernoulli(0.5)) {
        lifts.Set(v, [](const Value& x) { return x.AsInt(); });
      }
    }
  }

  IvmEngine<I64Ring> engine(&tree, lifts);
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  engine.Initialize(db);

  auto reference = [&]() {
    Relation<I64Ring> acc = db[0];
    for (int i = 1; i < query.relation_count(); ++i) {
      acc = Join(acc, db[i]);
    }
    return Marginalize(acc, query.BoundVars(), lifts);
  };

  for (int step = 0; step < 25; ++step) {
    // Random batch: 1-4 tuples to one random relation, inserts and deletes.
    int rel = static_cast<int>(rng.Uniform(query.relation_count()));
    const Schema& sch = query.relation(rel).schema;
    Relation<I64Ring> delta(sch);
    int batch = 1 + static_cast<int>(rng.Uniform(4));
    for (int b = 0; b < batch; ++b) {
      Tuple t;
      for (size_t i = 0; i < sch.size(); ++i) {
        t.Append(Value::Int(rng.UniformInt(0, 2)));
      }
      delta.Add(t, rng.Bernoulli(0.3) ? -1 : 1);
    }
    engine.ApplyDelta(rel, delta);
    db[rel].UnionWith(delta);

    auto expected = reference();
    const auto& actual = engine.result();
    ASSERT_EQ(actual.size(), expected.size()) << "step " << step;
    bool ok = true;
    expected.ForEach([&](const Tuple& k, const int64_t& p) {
      auto pos = expected.schema().PositionsOf(actual.schema());
      const int64_t* found = actual.Find(k.Project(pos));
      if (found == nullptr || *found != p) ok = false;
    });
    ASSERT_TRUE(ok) << "mismatch at step " << step;

    // From-scratch view-tree evaluation agrees as well (F-RE path).
    auto reeval = IvmEngine<I64Ring>::Evaluate(tree, lifts, db);
    ASSERT_EQ(reeval.size(), expected.size());
  }
}

std::vector<RandomCase> MakeCases() {
  std::vector<RandomCase> cases;
  for (int shape = 0; shape < 3; ++shape) {
    for (int seed = 0; seed < 4; ++seed) {
      cases.push_back({shape, seed, (seed % 2) == 0, (seed / 2) == 0});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IvmRandomizedTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<RandomCase>& info) {
                           return "shape" + std::to_string(info.param.shape) +
                                  "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace fivm
