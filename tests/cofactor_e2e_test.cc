// End-to-end Section 6.2: cofactor-matrix maintenance over joins with the
// regression ring, cross-checked against direct computation on the
// materialized join, the SQL-OPT sparse encoding, DBT-RING, and model
// training.

#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/recursive_ivm.h"
#include "src/core/ivm_engine.h"
#include "src/core/view_tree.h"
#include "src/ml/cofactor.h"
#include "src/ml/linear_regression.h"
#include "src/rings/regression_ring.h"
#include "src/rings/sparse_regression_ring.h"
#include "src/workloads/housing.h"
#include "src/workloads/retailer.h"
#include "src/workloads/stream.h"

namespace fivm {
namespace {

using workloads::HousingConfig;
using workloads::HousingDataset;
using workloads::RetailerConfig;
using workloads::RetailerDataset;
using workloads::UpdateStream;

// Direct reference: materialize the join, lift every tuple, and sum.
RegressionPayload DirectCofactor(const Query& query,
                                 const Database<I64Ring>& db,
                                 const std::vector<uint32_t>& slots) {
  Relation<I64Ring> acc = db[0];
  for (int i = 1; i < query.relation_count(); ++i) acc = Join(acc, db[i]);
  RegressionPayload total;
  acc.ForEach([&](const Tuple& t, const int64_t& m) {
    RegressionPayload p = RegressionPayload::Count(1.0);
    for (size_t i = 0; i < acc.schema().size(); ++i) {
      p = Mul(p, RegressionPayload::Lift(slots[acc.schema()[i]],
                                         t[i].AsDouble()));
    }
    total.AddInPlace(Mul(RegressionPayload::Count(static_cast<double>(m)), p));
  });
  return total;
}

TEST(CofactorE2ETest, HousingStreamMatchesDirectComputation) {
  HousingConfig cfg;
  cfg.postcodes = 40;
  cfg.scale = 2;
  auto ds = HousingDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  auto lifts = ml::RegressionLiftings(*ds->query, slots);

  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(*ds->query);
  engine.Initialize(empty);

  Database<I64Ring> mirror = MakeDatabase<I64Ring>(*ds->query);
  auto stream = UpdateStream::RoundRobin(ds->tuples, 50);
  for (const auto& batch : stream.batches()) {
    engine.ApplyDelta(batch.relation,
                      UpdateStream::ToDelta<RegressionRing>(*ds->query, batch));
    auto zdelta = UpdateStream::ToDelta<I64Ring>(*ds->query, batch);
    mirror[batch.relation].UnionWith(zdelta);
  }

  ASSERT_EQ(engine.result().size(), 1u);
  const RegressionPayload* got = engine.result().Find(Tuple());
  ASSERT_NE(got, nullptr);
  RegressionPayload expected = DirectCofactor(*ds->query, mirror, slots);

  EXPECT_DOUBLE_EQ(got->count(), expected.count());
  uint32_t m = static_cast<uint32_t>(ds->AttributeCount());
  for (uint32_t i = 0; i < m; ++i) {
    EXPECT_NEAR(got->Sum(i), expected.Sum(i),
                1e-6 * (1.0 + std::fabs(expected.Sum(i))))
        << "slot " << i;
    for (uint32_t j = i; j < m; ++j) {
      EXPECT_NEAR(got->Cofactor(i, j), expected.Cofactor(i, j),
                  1e-6 * (1.0 + std::fabs(expected.Cofactor(i, j))))
          << i << "," << j;
    }
  }
}

TEST(CofactorE2ETest, SparseEncodingAgreesWithDense) {
  HousingConfig cfg;
  cfg.postcodes = 25;
  cfg.scale = 1;
  auto ds = HousingDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();

  IvmEngine<RegressionRing> dense(&tree,
                                  ml::RegressionLiftings(*ds->query, slots));
  IvmEngine<SparseRegressionRing> sparse(
      &tree, ml::SparseRegressionLiftings(*ds->query, slots));
  Database<RegressionRing> e1 = MakeDatabase<RegressionRing>(*ds->query);
  Database<SparseRegressionRing> e2 =
      MakeDatabase<SparseRegressionRing>(*ds->query);
  dense.Initialize(e1);
  sparse.Initialize(e2);

  auto stream = UpdateStream::RoundRobin(ds->tuples, 30);
  for (const auto& batch : stream.batches()) {
    dense.ApplyDelta(
        batch.relation,
        UpdateStream::ToDelta<RegressionRing>(*ds->query, batch));
    sparse.ApplyDelta(
        batch.relation,
        UpdateStream::ToDelta<SparseRegressionRing>(*ds->query, batch));
  }

  const RegressionPayload* a = dense.result().Find(Tuple());
  const SparseRegressionPayload* b = sparse.result().Find(Tuple());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->count(), b->count());
  uint32_t m = static_cast<uint32_t>(ds->AttributeCount());
  for (uint32_t i = 0; i < m; ++i) {
    EXPECT_NEAR(a->Sum(i), b->Sum(i), 1e-6 * (1.0 + std::fabs(a->Sum(i))));
    for (uint32_t j = i; j < m; ++j) {
      EXPECT_NEAR(a->Cofactor(i, j), b->Cofactor(i, j),
                  1e-6 * (1.0 + std::fabs(a->Cofactor(i, j))));
    }
  }
}

TEST(CofactorE2ETest, DbtRingAgreesWithFIvm) {
  HousingConfig cfg;
  cfg.postcodes = 20;
  cfg.scale = 1;
  auto ds = HousingDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  auto lifts = ml::RegressionLiftings(*ds->query, slots);

  IvmEngine<RegressionRing> fivm(&tree, lifts);
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(*ds->query);
  fivm.Initialize(empty);

  std::vector<int> updatable;
  for (int r = 0; r < ds->query->relation_count(); ++r) {
    updatable.push_back(r);
  }
  RecursiveIvm<RegressionRing> dbt(ds->query.get(), updatable);
  dbt.AddAggregate({lifts, {}});
  dbt.Initialize(empty);

  auto stream = UpdateStream::RoundRobin(ds->tuples, 40);
  for (const auto& batch : stream.batches()) {
    auto delta = UpdateStream::ToDelta<RegressionRing>(*ds->query, batch);
    fivm.ApplyDelta(batch.relation, delta);
    dbt.ApplyDelta(batch.relation, delta);
  }

  const RegressionPayload* a = fivm.result().Find(Tuple());
  const RegressionPayload* b = dbt.result().Find(Tuple());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->count(), b->count());
  uint32_t m = static_cast<uint32_t>(ds->AttributeCount());
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i; j < m; ++j) {
      EXPECT_NEAR(a->Cofactor(i, j), b->Cofactor(i, j),
                  1e-6 * (1.0 + std::fabs(a->Cofactor(i, j))))
          << i << "," << j;
    }
  }
}

TEST(CofactorE2ETest, TrainsHousePriceModel) {
  HousingConfig cfg;
  cfg.postcodes = 150;
  cfg.scale = 2;
  auto ds = HousingDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  auto lifts = ml::RegressionLiftings(*ds->query, slots);
  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(*ds->query);
  engine.Initialize(empty);

  auto stream = UpdateStream::RoundRobin(ds->tuples, 200);
  for (const auto& batch : stream.batches()) {
    engine.ApplyDelta(batch.relation,
                      UpdateStream::ToDelta<RegressionRing>(*ds->query, batch));
  }

  const RegressionPayload* payload = engine.result().Find(Tuple());
  ASSERT_NE(payload, nullptr);

  // Predict price from livingarea and nbbedrooms.
  std::vector<uint32_t> features{slots[ds->livingarea], slots[ds->nbbedrooms]};
  uint32_t label = slots[ds->price];
  auto model = ml::SolveLeastSquares(*payload, features, label);
  ASSERT_EQ(model.theta.size(), 3u);

  // The generator prices at ~1500/sqm (scaled by a zone factor around 1.2
  // on average): area must be the dominant, positive coefficient, and the
  // model must beat the variance baseline (predicting the mean).
  EXPECT_GT(model.theta[1], 500.0);
  double n = payload->count();
  double mean = payload->Sum(label) / n;
  double variance = payload->Cofactor(label, label) / n - mean * mean;
  EXPECT_LT(model.mse, variance * 0.8);

  // Gradient descent lands close to the closed form.
  ml::TrainOptions opts;
  opts.max_iterations = 50000;
  // Normalize step for large feature scales.
  opts.step_size = 1e-7;
  auto gd = ml::TrainFromCofactor(*payload, features, label, opts);
  EXPECT_LT(gd.mse, variance);
}

TEST(CofactorE2ETest, RetailerFortyThreeVariablePayload) {
  RetailerConfig cfg;
  cfg.inventory_rows = 2000;
  cfg.locations = 5;
  cfg.dates = 20;
  cfg.products = 50;
  auto ds = RetailerDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  auto lifts = ml::RegressionLiftings(*ds->query, slots);
  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(*ds->query);
  engine.Initialize(empty);

  Database<I64Ring> mirror = MakeDatabase<I64Ring>(*ds->query);
  auto stream = UpdateStream::RoundRobin(ds->tuples, 500);
  for (const auto& batch : stream.batches()) {
    engine.ApplyDelta(batch.relation,
                      UpdateStream::ToDelta<RegressionRing>(*ds->query, batch));
    mirror[batch.relation].UnionWith(
        UpdateStream::ToDelta<I64Ring>(*ds->query, batch));
  }

  const RegressionPayload* got = engine.result().Find(Tuple());
  ASSERT_NE(got, nullptr);
  EXPECT_DOUBLE_EQ(got->count(), static_cast<double>(cfg.inventory_rows));

  // Spot-check a handful of aggregates against the direct computation.
  RegressionPayload expected = DirectCofactor(*ds->query, mirror, slots);
  for (VarId v : {ds->locn, ds->ksn, ds->zip}) {
    EXPECT_NEAR(got->Sum(slots[v]), expected.Sum(slots[v]),
                1e-6 * (1.0 + std::fabs(expected.Sum(slots[v]))));
  }
  EXPECT_NEAR(
      got->Cofactor(slots[ds->locn], slots[ds->zip]),
      expected.Cofactor(slots[ds->locn], slots[ds->zip]),
      1e-6 * (1.0 + std::fabs(expected.Cofactor(slots[ds->locn],
                                                slots[ds->zip]))));
}

}  // namespace
}  // namespace fivm
