// Concurrent reader/writer fuzz over the snapshot server: N reader threads
// issue point lookups and scans against pinned snapshots while one writer
// propagates randomized insert/delete batches and publishes each, with
// merges running inline or on the background thread. The invariant under
// test is prefix consistency: every snapshot equals the store state after
// exactly its pinned prefix of published batches — never a torn batch,
// never a vanished one. These tests are workload for the TSan/ASan CI jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/rings/ring.h"
#include "src/serve/snapshot_server.h"
#include "src/util/rng.h"

namespace fivm::serve {
namespace {

using Rel = Relation<I64Ring>;
using Server = SnapshotServer<I64Ring>;

constexpr int64_t kDomainA = 48;
constexpr int64_t kDomainBC = 12;

struct Fixture {
  Fixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
};

/// One randomized ±1 batch against R and S (small domains force heavy key
/// collisions, cancellations, and join-partner churn).
void ApplyRandomBatch(Fixture& f, util::Rng& rng, size_t updates) {
  Rel delta_r(f.query.relation(0).schema);
  Rel delta_s(f.query.relation(1).schema);
  for (size_t i = 0; i < updates; ++i) {
    int64_t mult = rng.Bernoulli(0.3) ? -1 : 1;
    if (rng.Bernoulli(0.5)) {
      delta_r.Add(Tuple::Ints({rng.UniformInt(0, kDomainA),
                               rng.UniformInt(0, kDomainBC)}),
                  mult);
    } else {
      delta_s.Add(Tuple::Ints({rng.UniformInt(0, kDomainBC),
                               rng.UniformInt(0, kDomainBC)}),
                  mult);
    }
  }
  if (!delta_r.empty()) f.engine->ApplyDelta(0, std::move(delta_r));
  if (!delta_s.empty()) f.engine->ApplyDelta(1, std::move(delta_s));
}

struct FuzzResult {
  std::atomic<uint64_t> reader_iterations{0};
  std::atomic<uint64_t> scan_mismatches{0};
  std::atomic<uint64_t> lookup_mismatches{0};
  std::atomic<uint64_t> seq_regressions{0};
};

/// Runs `batches` published writer batches against `readers` validating
/// threads. `refs[s]` is the writer-recorded root-store state after batch
/// s, written *before* the publish that exposes sequence s (the reader
/// observing seq s through the acquire load therefore reads it race-free).
void RunFuzz(Fixture& f, Server& server, size_t readers, size_t batches,
             size_t updates_per_batch, bool inline_merge, FuzzResult& out) {
  std::vector<Rel> refs(batches + 2);
  refs[0] = Rel(f.engine->result());
  std::atomic<bool> done{false};

  std::vector<std::thread> reader_threads;
  for (size_t t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&, t] {
      util::Rng rng(1000 + 31 * t);
      uint64_t last_seq = 0;
      // `first` guarantees one full validation pass per reader even if the
      // writer finishes before this thread is ever scheduled (a starved
      // 1-core box under load) — the reader_iterations > 0 assertions in
      // the tests must not depend on scheduler fairness.
      bool first = true;
      while (first || !done.load(std::memory_order_acquire)) {
        first = false;
        auto snap = server.Acquire();
        uint64_t s = snap.seq();
        if (s < last_seq) out.seq_regressions.fetch_add(1);
        last_seq = s;
        const Rel& ref = refs[s];
        // Full scan: every emitted key/payload must exist in the reference
        // and the live-key count must match exactly.
        size_t n = 0;
        bool scan_ok = true;
        snap.ForEach([&](const Tuple& k, const int64_t& v) {
          const int64_t* e = ref.Find(k);
          if (e == nullptr || *e != v) scan_ok = false;
          ++n;
        });
        if (!scan_ok || n != ref.size()) out.scan_mismatches.fetch_add(1);
        // Random point lookups, hit and miss alike.
        for (int i = 0; i < 24; ++i) {
          Tuple key = Tuple::Ints({rng.UniformInt(0, kDomainA)});
          int64_t got = 0;
          bool present = snap.Lookup(key, &got);
          const int64_t* e = ref.Find(key);
          if (present != (e != nullptr) || (e != nullptr && got != *e)) {
            out.lookup_mismatches.fetch_add(1);
          }
        }
        out.reader_iterations.fetch_add(1);
      }
    });
  }

  util::Rng wrng(77);
  uint64_t last = 0;
  for (size_t b = 0; b < batches; ++b) {
    ApplyRandomBatch(f, wrng, updates_per_batch);
    refs[last + 1] = Rel(f.engine->result());
    uint64_t seq = server.Publish();
    if (seq != last) {
      ASSERT_EQ(seq, last + 1);
      last = seq;
    }
    if (inline_merge && b % 5 == 4) server.MergeStep();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : reader_threads) th.join();
}

TEST(ServeConcurrentTest, ReadersStayPrefixConsistentUnderInlineMerges) {
  Fixture f;
  MergePolicy policy;
  policy.max_segments = 3;
  policy.max_diff_keys = 256;
  Server server(&*f.engine, policy);

  FuzzResult r;
  RunFuzz(f, server, /*readers=*/4, /*batches=*/120,
          /*updates_per_batch=*/48, /*inline_merge=*/true, r);

  EXPECT_EQ(r.scan_mismatches.load(), 0u);
  EXPECT_EQ(r.lookup_mismatches.load(), 0u);
  EXPECT_EQ(r.seq_regressions.load(), 0u);
  EXPECT_GT(r.reader_iterations.load(), 0u);
  EXPECT_GT(server.MergeCount(), 0u);

  server.MergeNow();
  server.Reclaim();
  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(ServeConcurrentTest, ReadersStayPrefixConsistentUnderBackgroundMerger) {
  Fixture f;
  MergePolicy policy;
  policy.max_segments = 2;
  policy.max_diff_keys = 64;
  Server server(&*f.engine, policy);
  server.StartBackgroundMerge(std::chrono::milliseconds(1));

  FuzzResult r;
  RunFuzz(f, server, /*readers=*/4, /*batches=*/120,
          /*updates_per_batch=*/48, /*inline_merge=*/false, r);
  server.StopBackgroundMerge();

  EXPECT_EQ(r.scan_mismatches.load(), 0u);
  EXPECT_EQ(r.lookup_mismatches.load(), 0u);
  EXPECT_EQ(r.seq_regressions.load(), 0u);
  EXPECT_GT(r.reader_iterations.load(), 0u);

  server.MergeNow();
  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(ServeConcurrentTest, PinnedSnapshotSurvivesMergesAndReclamation) {
  // A long-lived snapshot pinned at an early version must keep reading its
  // exact prefix while merges retire base generations underneath it, and
  // its generation's memory must be freed only after it drains.
  Fixture f;
  util::Rng rng(5);
  ApplyRandomBatch(f, rng, 128);
  MergePolicy policy;
  policy.max_segments = 2;
  Server server(&*f.engine, policy);
  Rel ref0 = Rel(f.engine->result());

  std::optional<Server::Snapshot> pinned(server.Acquire());
  uint64_t freed_before = server.ReclaimedGenerations();

  std::atomic<bool> done{false};
  std::thread merger([&] {
    while (!done.load(std::memory_order_acquire)) {
      server.MergeStep();
      server.Reclaim();
    }
  });
  for (int b = 0; b < 60; ++b) {
    ApplyRandomBatch(f, rng, 32);
    server.Publish();
    if (b % 10 == 0) {
      ASSERT_TRUE(ContentEquals(pinned->Materialize(), ref0)) << "batch " << b;
    }
  }
  done.store(true, std::memory_order_release);
  merger.join();

  EXPECT_TRUE(ContentEquals(pinned->Materialize(), ref0));
  EXPECT_EQ(server.ReclaimedGenerations(), freed_before)
      << "generation freed while a snapshot could still read it";
  pinned.reset();
  server.MergeNow();
  server.Reclaim();
  EXPECT_GT(server.ReclaimedGenerations(), freed_before);
  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

}  // namespace
}  // namespace fivm::serve
