// Wide randomized property sweeps across the engine surface:
//  - results are invariant under the choice of (valid) variable order;
//  - factorized-delta propagation equals listing propagation on arbitrary
//    product-shaped updates for arbitrary query shapes;
//  - restricted materialization plans (partial updatable sets) agree with
//    fully-materialized engines on their restricted streams;
//  - degenerate updates (empty deltas, full cancellation, repeated keys)
//    are no-ops or exact inversions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

struct QueryKit {
  Catalog catalog;
  std::unique_ptr<Query> query;

  explicit QueryKit(int shape) {
    query = std::make_unique<Query>(&catalog);
    if (shape == 0) {
      VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
            C = catalog.Intern("C"), D = catalog.Intern("D"),
            E = catalog.Intern("E");
      query->AddRelation("R", Schema{A, B});
      query->AddRelation("S", Schema{A, C, E});
      query->AddRelation("T", Schema{C, D});
    } else if (shape == 1) {
      VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
            C = catalog.Intern("C"), D = catalog.Intern("D"),
            E = catalog.Intern("E");
      query->AddRelation("R1", Schema{A, B});
      query->AddRelation("R2", Schema{B, C});
      query->AddRelation("R3", Schema{C, D});
      query->AddRelation("R4", Schema{D, E});
    } else if (shape == 2) {
      VarId K = catalog.Intern("K");
      for (int i = 0; i < 3; ++i) {
        query->AddRelation("R" + std::to_string(i),
                           Schema{K, catalog.Intern("X" + std::to_string(i)),
                                  catalog.Intern("Y" + std::to_string(i))});
      }
    } else {
      // Two instances of the same logical relation (emulated self-join
      // R(A,B) ⋈ R'(B,C) where R' is a copy maintained separately).
      VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
            C = catalog.Intern("C");
      query->AddRelation("Ra", Schema{A, B});
      query->AddRelation("Rb", Schema{B, C});
    }
  }
};

Relation<I64Ring> RandomDelta(const Schema& schema, util::Rng& rng,
                              int max_tuples = 3, int64_t domain = 2) {
  Relation<I64Ring> delta(schema);
  int n = 1 + static_cast<int>(rng.Uniform(max_tuples));
  for (int i = 0; i < n; ++i) {
    Tuple t;
    for (size_t k = 0; k < schema.size(); ++k) {
      t.Append(Value::Int(rng.UniformInt(0, domain)));
    }
    delta.Add(t, rng.Bernoulli(0.3) ? -1 : 1);
  }
  return delta;
}

int64_t ScalarResult(const Relation<I64Ring>& rel) {
  const int64_t* p = rel.Find(Tuple());
  return p ? *p : 0;
}

class VariableOrderInvarianceTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(VariableOrderInvarianceTest, AllOrdersGiveSameResult) {
  auto [shape, seed] = GetParam();
  QueryKit kit(shape);
  Query& query = *kit.query;
  util::Rng rng(7000 + seed);

  LiftingMap<I64Ring> lifts;
  VarId lifted = query.relation(0).schema[1];
  lifts.Set(lifted, [](const Value& x) { return x.AsInt(); });

  // Four engines over four different (random) variable orders.
  std::vector<VariableOrder> orders;
  orders.push_back(VariableOrder::Auto(query));
  for (uint64_t s = 0; s < 3; ++s) {
    orders.push_back(VariableOrder::AutoRandom(query, 100 * seed + s));
  }
  std::vector<std::unique_ptr<ViewTree>> trees;
  std::vector<std::unique_ptr<IvmEngine<I64Ring>>> engines;
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  for (auto& vo : orders) {
    trees.push_back(std::make_unique<ViewTree>(&query, &vo));
    trees.back()->MaterializeAll();
    engines.push_back(
        std::make_unique<IvmEngine<I64Ring>>(trees.back().get(), lifts));
    engines.back()->Initialize(db);
  }

  for (int step = 0; step < 25; ++step) {
    int rel = static_cast<int>(rng.Uniform(query.relation_count()));
    auto delta = RandomDelta(query.relation(rel).schema, rng);
    for (auto& e : engines) e->ApplyDelta(rel, delta);
    int64_t expected = ScalarResult(engines[0]->result());
    for (size_t i = 1; i < engines.size(); ++i) {
      ASSERT_EQ(ScalarResult(engines[i]->result()), expected)
          << "order " << i << " diverged at step " << step;
    }
  }
}

std::vector<std::pair<int, int>> VoCases() {
  std::vector<std::pair<int, int>> cases;
  for (int shape = 0; shape < 4; ++shape) {
    for (int seed = 0; seed < 3; ++seed) cases.emplace_back(shape, seed);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariableOrderInvarianceTest, ::testing::ValuesIn(VoCases()),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "shape" + std::to_string(info.param.first) + "seed" +
             std::to_string(info.param.second);
    });

class FactorizedDeltaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FactorizedDeltaPropertyTest, ProductDeltasMatchExpanded) {
  int seed = GetParam();
  QueryKit kit(seed % 3);
  Query& query = *kit.query;
  util::Rng rng(8100 + seed);

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  LiftingMap<I64Ring> lifts;

  IvmEngine<I64Ring> listing(&tree, lifts);
  IvmEngine<I64Ring> factorized(&tree, lifts);
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  // Seed a small random database so deltas join with existing state.
  for (int r = 0; r < query.relation_count(); ++r) {
    db[r].UnionWith(RandomDelta(query.relation(r).schema, rng, 6));
  }
  listing.Initialize(db);
  factorized.Initialize(db);

  for (int step = 0; step < 12; ++step) {
    int rel = static_cast<int>(rng.Uniform(query.relation_count()));
    const Schema& sch = query.relation(rel).schema;

    // Random unary factors: one per variable (a full product decomposition
    // of a grid-shaped delta).
    std::vector<Relation<I64Ring>> factors;
    for (VarId v : sch) {
      Relation<I64Ring> f(Schema{v});
      int vals = 1 + static_cast<int>(rng.Uniform(2));
      for (int i = 0; i < vals; ++i) {
        f.Add(Tuple::Ints({rng.UniformInt(0, 2)}),
              rng.Bernoulli(0.25) ? -1 : 1);
      }
      if (f.empty()) f.Add(Tuple::Ints({0}), 1);
      factors.push_back(std::move(f));
    }
    // Expanded form for the listing engine.
    Relation<I64Ring> expanded = factors[0];
    for (size_t i = 1; i < factors.size(); ++i) {
      expanded = Join(expanded, factors[i]);
    }
    Relation<I64Ring> reordered(sch);
    AbsorbInto(reordered, expanded);

    listing.ApplyDelta(rel, reordered);
    factorized.ApplyFactorizedDelta(rel, std::move(factors));

    ASSERT_EQ(ScalarResult(listing.result()),
              ScalarResult(factorized.result()))
        << "step " << step;
    // Stores on the path agree too.
    for (int node : tree.PathToRoot(rel)) {
      const auto& a = listing.store(node);
      const auto& b = factorized.store(node);
      ASSERT_EQ(a.size(), b.size()) << tree.node(node).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FactorizedDeltaPropertyTest,
                         ::testing::Range(0, 9));

TEST(EngineEdgeCasesTest, EmptyDeltaIsNoOp) {
  QueryKit kit(0);
  Query& query = *kit.query;
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  util::Rng rng(1);
  for (int r = 0; r < 3; ++r) {
    db[r].UnionWith(RandomDelta(query.relation(r).schema, rng, 5));
  }
  engine.Initialize(db);
  int64_t before = ScalarResult(engine.result());

  Relation<I64Ring> empty(query.relation(0).schema);
  engine.ApplyDelta(0, empty);
  EXPECT_EQ(ScalarResult(engine.result()), before);
}

TEST(EngineEdgeCasesTest, ExactInversionRestoresAllStores) {
  QueryKit kit(1);
  Query& query = *kit.query;
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  util::Rng rng(2);
  for (int r = 0; r < query.relation_count(); ++r) {
    db[r].UnionWith(RandomDelta(query.relation(r).schema, rng, 5));
  }
  engine.Initialize(db);

  // Snapshot sizes of all stores.
  std::vector<size_t> before;
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    before.push_back(engine.store(static_cast<int>(i)).size());
  }

  auto delta = RandomDelta(query.relation(1).schema, rng, 4);
  engine.ApplyDelta(1, delta);
  // Invert.
  Relation<I64Ring> inverse(delta.schema());
  delta.ForEach([&](const Tuple& k, const int64_t& p) {
    inverse.Add(k, -p);
  });
  engine.ApplyDelta(1, inverse);

  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    EXPECT_EQ(engine.store(static_cast<int>(i)).size(), before[i])
        << tree.node(static_cast<int>(i)).name;
  }
}

TEST(EngineEdgeCasesTest, RestrictedPlanMatchesFullPlanOnRestrictedStream) {
  QueryKit kit(2);
  Query& query = *kit.query;
  VariableOrder vo = VariableOrder::Auto(query);

  ViewTree full_tree(&query, &vo);
  full_tree.MaterializeAll();
  ViewTree sparse_tree(&query, &vo);
  sparse_tree.ComputeMaterialization({0});  // only R0 updatable
  EXPECT_LT(sparse_tree.MaterializedCount(),
            full_tree.MaterializedCount());

  LiftingMap<I64Ring> lifts;
  IvmEngine<I64Ring> full(&full_tree, lifts);
  IvmEngine<I64Ring> sparse(&sparse_tree, lifts);

  // Static contents for the non-updatable relations.
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  util::Rng rng(3);
  for (int r = 1; r < query.relation_count(); ++r) {
    db[r].UnionWith(RandomDelta(query.relation(r).schema, rng, 8));
  }
  full.Initialize(db);
  sparse.Initialize(db);

  for (int step = 0; step < 20; ++step) {
    auto delta = RandomDelta(query.relation(0).schema, rng, 3);
    full.ApplyDelta(0, delta);
    sparse.ApplyDelta(0, delta);
    ASSERT_EQ(ScalarResult(full.result()), ScalarResult(sparse.result()))
        << "step " << step;
  }
}

TEST(EngineEdgeCasesTest, RepeatedKeysInOneDeltaAggregate) {
  QueryKit kit(0);
  Query& query = *kit.query;
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  engine.Initialize(db);

  // Same key added three times in one delta = multiplicity 3.
  Relation<I64Ring> delta(query.relation(0).schema);
  for (int i = 0; i < 3; ++i) delta.Add(Tuple::Ints({1, 1}), 1);
  engine.ApplyDelta(0, delta);

  Relation<I64Ring> ds(query.relation(1).schema);
  ds.Add(Tuple::Ints({1, 1, 1}), 1);
  engine.ApplyDelta(1, ds);
  Relation<I64Ring> dt(query.relation(2).schema);
  dt.Add(Tuple::Ints({1, 1}), 1);
  engine.ApplyDelta(2, dt);

  EXPECT_EQ(ScalarResult(engine.result()), 3);
}

}  // namespace
}  // namespace fivm
