// util::FailPoint registry semantics: deterministic seeded schedules,
// probability / nth-evaluation / max-fires arming, wildcard arming, spec
// parsing (the FIVM_FAILPOINTS env format), and the disarmed fast path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/fail_point.h"

namespace fivm::util {
namespace {

#if !defined(FIVM_FAILPOINTS_OFF)

/// Evaluates `site` n times, recording which evaluations fired.
std::vector<int> FireProfile(const char* site, int n) {
  std::vector<int> fired;
  for (int i = 0; i < n; ++i) {
    try {
      FIVM_FAIL_POINT(site);
    } catch (const InjectedFault& e) {
      EXPECT_EQ(e.site(), site);
      fired.push_back(i);
    }
  }
  return fired;
}

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Default().DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(FailPointsArmed());
  EXPECT_TRUE(FireProfile("test.unarmed", 100).empty());
  // Unarmed evaluations bypass the registry entirely (no stats).
  EXPECT_EQ(FailPointRegistry::Default().Stats("test.unarmed").evaluations,
            0u);
}

TEST_F(FailPointTest, SameSeedSameFireSequence) {
  auto& fp = FailPointRegistry::Default();
  fp.Arm("test.det", 0.3, /*seed=*/42);
  auto first = FireProfile("test.det", 500);
  fp.Arm("test.det", 0.3, /*seed=*/42);  // re-arm resets the stream
  auto second = FireProfile("test.det", 500);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // Fire fraction in the right ballpark for p=0.3.
  EXPECT_GT(first.size(), 100u);
  EXPECT_LT(first.size(), 250u);

  fp.Arm("test.det", 0.3, /*seed=*/43);
  auto other_seed = FireProfile("test.det", 500);
  EXPECT_NE(first, other_seed);
}

TEST_F(FailPointTest, SitesDrawIndependentStreams) {
  auto& fp = FailPointRegistry::Default();
  fp.Arm("test.a", 0.5, /*seed=*/7);
  fp.Arm("test.b", 0.5, /*seed=*/7);
  EXPECT_NE(FireProfile("test.a", 200), FireProfile("test.b", 200));
}

TEST_F(FailPointTest, MaxFiresCapsInjection) {
  auto& fp = FailPointRegistry::Default();
  fp.Arm("test.cap", 1.0, /*seed=*/1, /*max_fires=*/3);
  auto fired = FireProfile("test.cap", 50);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(fp.Stats("test.cap").fires, 3u);
  EXPECT_EQ(fp.Stats("test.cap").evaluations, 50u);
}

TEST_F(FailPointTest, ArmNthFiresExactlyOnce) {
  auto& fp = FailPointRegistry::Default();
  fp.ArmNth("test.nth", 5);
  EXPECT_EQ(FireProfile("test.nth", 20), (std::vector<int>{4}));
  EXPECT_EQ(fp.Stats("test.nth").fires, 1u);
}

TEST_F(FailPointTest, DisarmStopsFiring) {
  auto& fp = FailPointRegistry::Default();
  fp.Arm("test.off", 1.0, /*seed=*/1);
  EXPECT_EQ(FireProfile("test.off", 3).size(), 3u);
  fp.Disarm("test.off");
  EXPECT_TRUE(FireProfile("test.off", 3).empty());
}

TEST_F(FailPointTest, WildcardArmsEverySiteIndependently) {
  auto& fp = FailPointRegistry::Default();
  const uint64_t evals0 = fp.TotalEvaluations();
  fp.ArmAll(1.0, /*seed=*/9);
  EXPECT_EQ(FireProfile("test.wild.x", 4).size(), 4u);
  EXPECT_EQ(FireProfile("test.wild.y", 4).size(), 4u);
  EXPECT_EQ(fp.TotalEvaluations() - evals0, 8u);
  fp.DisarmAll();
  EXPECT_TRUE(FireProfile("test.wild.x", 4).empty());
  EXPECT_FALSE(FailPointsArmed());
}

TEST_F(FailPointTest, SpecParsingArmsListedSites) {
  auto& fp = FailPointRegistry::Default();
  EXPECT_TRUE(fp.ConfigureFromSpec("test.s1=1.0, test.s2=0.0", /*seed=*/3));
  EXPECT_EQ(FireProfile("test.s1", 2).size(), 2u);
  EXPECT_TRUE(FireProfile("test.s2", 2).empty());

  EXPECT_TRUE(fp.ConfigureFromSpec("*=1.0", /*seed=*/3));
  EXPECT_EQ(FireProfile("test.s3", 1).size(), 1u);

  EXPECT_FALSE(fp.ConfigureFromSpec("garbage", /*seed=*/3));
  EXPECT_FALSE(fp.ConfigureFromSpec("site=2.5", /*seed=*/3));  // p out of range
  // A malformed entry does not abort well-formed ones before it.
  fp.DisarmAll();
  EXPECT_FALSE(fp.ConfigureFromSpec("test.s4=1.0,oops", /*seed=*/3));
  EXPECT_EQ(FireProfile("test.s4", 1).size(), 1u);
}

TEST_F(FailPointTest, SpecParsingMaxFiresNthAndKillForms) {
  auto& fp = FailPointRegistry::Default();
  // prob/max_fires: fires on the first 2 evaluations only at p=1.
  EXPECT_TRUE(fp.ConfigureFromSpec("test.g1=1.0/2", /*seed=*/3));
  EXPECT_EQ(FireProfile("test.g1", 10).size(), 2u);
  // nth form.
  EXPECT_TRUE(fp.ConfigureFromSpec("test.g2=n3", /*seed=*/3));
  EXPECT_EQ(FireProfile("test.g2", 10), (std::vector<int>{2}));
  // Malformed variants.
  EXPECT_FALSE(fp.ConfigureFromSpec("test.g3=1.0/", /*seed=*/3));
  EXPECT_FALSE(fp.ConfigureFromSpec("test.g4=n", /*seed=*/3));
  EXPECT_FALSE(fp.ConfigureFromSpec("test.g5=nx", /*seed=*/3));
  // Wildcard kill is rejected: a process-wide random _exit is never what a
  // harness wants.
  EXPECT_FALSE(fp.ConfigureFromSpec("*=1.0!kill", /*seed=*/3));
}

TEST_F(FailPointTest, KillActionExitsWithKillCode) {
  // The kill action _exit(kKillExitCode)s the process at the site; run it
  // in a death-test child so the suite survives. Also proves the spec
  // grammar's "!kill" suffix reaches the action.
  auto& fp = FailPointRegistry::Default();
  ASSERT_TRUE(fp.ConfigureFromSpec("test.kill=n2!kill", /*seed=*/1));
  FIVM_FAIL_POINT("test.kill");  // first evaluation: no fire
  EXPECT_EXIT(FIVM_FAIL_POINT("test.kill"),
              ::testing::ExitedWithCode(kKillExitCode), "");
}

TEST_F(FailPointTest, ArmedKillFiresWithoutThrowing) {
  // kKill must not raise InjectedFault on its way out; in the parent the
  // pre-kill evaluations are plain no-ops.
  auto& fp = FailPointRegistry::Default();
  fp.ArmNth("test.kill2", 100, FailAction::kKill);
  EXPECT_NO_THROW(FireProfile("test.kill2", 50));
  EXPECT_EQ(fp.Stats("test.kill2").fires, 0u);
}

TEST_F(FailPointTest, TotalFiresAccumulatesAcrossSites) {
  auto& fp = FailPointRegistry::Default();
  const uint64_t fires0 = fp.TotalFires();
  fp.Arm("test.t1", 1.0, 1, /*max_fires=*/2);
  fp.Arm("test.t2", 1.0, 1, /*max_fires=*/3);
  FireProfile("test.t1", 10);
  FireProfile("test.t2", 10);
  EXPECT_EQ(fp.TotalFires() - fires0, 5u);
}

#endif  // !FIVM_FAILPOINTS_OFF

#if defined(FIVM_FAILPOINTS_OFF)
TEST(FailPointTest, CompiledOutSitesAreNoops) {
  // With FIVM_FAILPOINTS=OFF the macro expands to nothing even when the
  // registry is armed programmatically.
  FailPointRegistry::Default().Arm("test.stub", 1.0, 1);
  FIVM_FAIL_POINT("test.stub");
  EXPECT_EQ(FailPointRegistry::Default().Stats("test.stub").evaluations, 0u);
  FailPointRegistry::Default().DisarmAll();
}
#endif

}  // namespace
}  // namespace fivm::util
