#include <gtest/gtest.h>

#include "src/data/tuple.h"
#include "src/data/value.h"
#include "src/util/small_vector.h"

namespace fivm {
namespace {

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 42.0);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Double(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, EqualityDistinguishesKind) {
  // Int 1 and Double 1.0 are distinct key values: group-by keys are typed.
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_EQ(Value::Double(1.5), Value::Double(1.5));
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Double(1.0), Value::Double(2.0));
}

TEST(ValueTest, HashDiffersForDifferentValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Double(1.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(TupleTest, EmptyTuple) {
  Tuple t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t, Tuple::Empty());
  EXPECT_EQ(t.ToString(), "()");
}

TEST(TupleTest, IntsFactory) {
  Tuple t = Tuple::Ints({1, 2, 3});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].AsInt(), 1);
  EXPECT_EQ(t[2].AsInt(), 3);
}

TEST(TupleTest, Equality) {
  EXPECT_EQ(Tuple::Ints({1, 2}), Tuple::Ints({1, 2}));
  EXPECT_NE(Tuple::Ints({1, 2}), Tuple::Ints({2, 1}));
  EXPECT_NE(Tuple::Ints({1}), Tuple::Ints({1, 2}));
}

TEST(TupleTest, HashConsistentWithEquality) {
  EXPECT_EQ(Tuple::Ints({1, 2}).Hash(), Tuple::Ints({1, 2}).Hash());
  EXPECT_NE(Tuple::Ints({1, 2}).Hash(), Tuple::Ints({2, 1}).Hash());
  EXPECT_NE(Tuple::Ints({}).Hash(), Tuple::Ints({0}).Hash());
}

TEST(TupleTest, Project) {
  Tuple t = Tuple::Ints({10, 20, 30, 40});
  util::SmallVector<uint32_t, 6> positions{2, 0};
  Tuple p = t.Project(positions);
  EXPECT_EQ(p, Tuple::Ints({30, 10}));
}

TEST(TupleTest, ProjectToEmpty) {
  Tuple t = Tuple::Ints({1});
  util::SmallVector<uint32_t, 6> positions;
  EXPECT_EQ(t.Project(positions), Tuple());
}

TEST(TupleTest, Concat) {
  Tuple a = Tuple::Ints({1, 2});
  Tuple b = Tuple::Ints({3});
  EXPECT_EQ(a.Concat(b), Tuple::Ints({1, 2, 3}));
  EXPECT_EQ(a.Concat(Tuple()), a);
  EXPECT_EQ(Tuple().Concat(b), b);
}

TEST(TupleTest, MixedKinds) {
  Tuple t{Value::Int(1), Value::Double(2.5)};
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.ToString(), "(1, 2.5)");
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tuple::Ints({1, 2}), Tuple::Ints({1, 3}));
  EXPECT_LT(Tuple::Ints({1}), Tuple::Ints({1, 0}));
}

}  // namespace
}  // namespace fivm
