// Versioned snapshot serving over IVM view stores (src/serve/): epoch-pinned
// snapshots, publish-per-batch visibility, differential segments, ordered
// background merge, and deferred reclamation. Single-threaded semantics here;
// the concurrent reader/writer fuzz lives in serve_concurrent_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/rings/ring.h"
#include "src/serve/epoch.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"

namespace fivm::serve {
namespace {

using Rel = Relation<I64Ring>;
using Server = SnapshotServer<I64Ring>;

/// Q(A) = Σ_{B,C} R(A,B) ⋈ S(B,C) over the counting ring: a keyed root
/// store (group-by A) with one sibling join on the propagation path.
struct Fixture {
  Fixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
  }

  /// Applies {±1 · rows} to relation `rel` through the sequential engine.
  void Apply(int rel, std::vector<std::pair<int64_t, int64_t>> rows,
             int64_t mult = 1) {
    Rel delta(query.relation(rel).schema);
    for (auto [x, y] : rows) delta.Add(Tuple::Ints({x, y}), mult);
    engine->ApplyDelta(rel, std::move(delta));
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
};

int64_t LookupCount(const Server::Snapshot& snap, int64_t a) {
  int64_t out = 0;
  return snap.Lookup(Tuple::Ints({a}), &out) ? out : 0;
}

TEST(SnapshotServerTest, ConstructionFreezesCurrentStoreState) {
  Fixture f;
  f.Apply(0, {{1, 10}, {2, 10}});
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  auto snap = server.Acquire();
  EXPECT_EQ(snap.seq(), 0u);
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_EQ(snap.base_gen(), 0u);
  EXPECT_EQ(LookupCount(snap, 1), 1);
  EXPECT_EQ(LookupCount(snap, 2), 1);
  EXPECT_EQ(LookupCount(snap, 3), 0);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, UpdatesInvisibleUntilPublish) {
  Fixture f;
  f.Apply(0, {{1, 10}});
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  // Delta absorbed by the engine but not yet published: staged only.
  f.Apply(0, {{2, 10}});
  auto before = server.Acquire();
  EXPECT_EQ(before.seq(), 0u);
  EXPECT_EQ(LookupCount(before, 2), 0);

  uint64_t seq = server.Publish();
  EXPECT_EQ(seq, 1u);
  auto after = server.Acquire();
  EXPECT_EQ(after.seq(), 1u);
  EXPECT_EQ(LookupCount(after, 2), 1);
  EXPECT_EQ(after.segment_count(), 1u);

  // The earlier snapshot still reads its pinned version.
  EXPECT_EQ(LookupCount(before, 2), 0);
  EXPECT_EQ(before.segment_count(), 0u);
  EXPECT_EQ(server.PublishCount(), 1u);

  // Publishing with nothing staged does not advance the sequence.
  EXPECT_EQ(server.Publish(), 1u);
  EXPECT_EQ(server.PublishCount(), 1u);
}

TEST(SnapshotServerTest, LookupSumsBaseAndAllSegments) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  f.Apply(0, {{1, 10}});  // base: Q(1) = 1
  Server server(&*f.engine);

  f.Apply(0, {{1, 10}});  // segment 1: +1
  server.Publish();
  f.Apply(0, {{1, 10}});  // segment 2: +1
  server.Publish();

  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 2u);
  EXPECT_EQ(LookupCount(snap, 1), 3);
  EXPECT_EQ(snap.Size(), 1u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, DeleteInSegmentCancelsBaseKey) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  f.Apply(0, {{1, 10}, {2, 10}});
  Server server(&*f.engine);

  f.Apply(0, {{1, 10}}, /*mult=*/-1);  // delete group 1 entirely
  server.Publish();

  auto snap = server.Acquire();
  EXPECT_FALSE(snap.Contains(Tuple::Ints({1})));
  EXPECT_EQ(LookupCount(snap, 2), 1);
  EXPECT_EQ(snap.Size(), 1u);
  size_t seen = 0;
  snap.ForEach([&](const Tuple& k, const int64_t& v) {
    EXPECT_EQ(k[0].AsInt(), 2);
    EXPECT_EQ(v, 1);
    ++seen;
  });
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, InsertThenDeleteAcrossSegmentsStaysDead) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  f.Apply(0, {{7, 10}});
  server.Publish();
  f.Apply(0, {{7, 10}}, /*mult=*/-1);
  server.Publish();

  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 2u);
  EXPECT_FALSE(snap.Contains(Tuple::Ints({7})));
  EXPECT_EQ(snap.Size(), 0u);
  snap.ForEach([](const Tuple&, const int64_t&) { FAIL(); });
}

TEST(SnapshotServerTest, MergeFoldsSegmentsIntoNextGeneration) {
  Fixture f;
  f.Apply(1, {{10, 5}, {11, 6}});
  f.Apply(0, {{1, 10}});
  Server server(&*f.engine);

  for (int64_t a = 2; a <= 5; ++a) {
    f.Apply(0, {{a, 10}, {a, 11}});
    server.Publish();
  }
  EXPECT_EQ(server.SegmentCount(), 4u);

  EXPECT_EQ(server.MergeNow(), 1u);
  EXPECT_EQ(server.MergeCount(), 1u);
  EXPECT_GT(server.MergedKeys(), 0u);

  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_EQ(snap.base_gen(), 1u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
  EXPECT_EQ(LookupCount(snap, 3), 2);

  // Nothing differential left: another merge is a no-op.
  EXPECT_EQ(server.MergeNow(), 0u);
}

TEST(SnapshotServerTest, ArrivalOrderMergeMatchesClusteredMerge) {
  for (bool clustered : {true, false}) {
    Fixture f;
    f.Apply(1, {{10, 5}});
    MergePolicy policy;
    policy.clustered_absorb = clustered;
    Server server(&*f.engine, policy);

    util::Rng rng(99);
    for (int batch = 0; batch < 6; ++batch) {
      std::vector<std::pair<int64_t, int64_t>> rows;
      for (int i = 0; i < 40; ++i) {
        rows.emplace_back(rng.UniformInt(0, 64), 10);
      }
      f.Apply(0, std::move(rows));
      server.Publish();
    }
    server.MergeNow();
    auto snap = server.Acquire();
    EXPECT_EQ(snap.segment_count(), 0u);
    EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()))
        << "clustered=" << clustered;
  }
}

TEST(SnapshotServerTest, MergeStepHonorsPolicyBounds) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  MergePolicy policy;
  policy.max_segments = 3;
  policy.max_diff_keys = 1u << 30;
  Server server(&*f.engine, policy);

  f.Apply(0, {{1, 10}});
  server.Publish();
  f.Apply(0, {{2, 10}});
  server.Publish();
  EXPECT_EQ(server.MergeStep(), 0u) << "below both bounds";
  EXPECT_EQ(server.SegmentCount(), 2u);

  f.Apply(0, {{3, 10}});
  server.Publish();
  EXPECT_EQ(server.MergeStep(), 1u) << "segment bound reached";
  EXPECT_EQ(server.SegmentCount(), 0u);

  // The key-count bound triggers independently of the segment bound.
  policy.max_segments = 1u << 20;
  policy.max_diff_keys = 2;
  server.set_policy(policy);
  f.Apply(0, {{4, 10}, {5, 10}, {6, 10}});
  server.Publish();
  EXPECT_EQ(server.MergeStep(), 1u);
  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, ReclamationWaitsForPinnedSnapshots) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  uint64_t freed_before = server.ReclaimedGenerations();
  {
    auto pinned = server.Acquire();  // pins the construction-time version
    f.Apply(0, {{1, 10}});
    server.Publish();
    f.Apply(0, {{2, 10}});
    server.Publish();
    server.MergeNow();
    server.Reclaim();
    // Every retired set is at or after the pinned epoch: nothing freed.
    EXPECT_GT(server.RetiredCount(), 0u);
    EXPECT_EQ(server.ReclaimedVersions(), 0u);
    // The pinned snapshot still reads pre-update state.
    EXPECT_EQ(LookupCount(pinned, 1), 0);
  }
  server.Reclaim();
  EXPECT_EQ(server.RetiredCount(), 0u);
  EXPECT_GT(server.ReclaimedVersions(), 0u);
  // The merge retired the generation-0 base; with no snapshot pinning it,
  // its memory is actually freed.
  EXPECT_GT(server.ReclaimedGenerations(), freed_before);

  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, RandomizedPublishMergeEquivalence) {
  Fixture f;
  MergePolicy policy;
  policy.max_segments = 3;
  policy.max_diff_keys = 64;
  Server server(&*f.engine, policy);

  util::Rng rng(2024);
  std::vector<std::pair<int, Tuple>> inserted;
  for (int batch = 0; batch < 40; ++batch) {
    Rel delta_r(f.query.relation(0).schema);
    Rel delta_s(f.query.relation(1).schema);
    for (int i = 0; i < 20; ++i) {
      int rel = static_cast<int>(rng.UniformInt(0, 1));
      Rel& d = rel == 0 ? delta_r : delta_s;
      if (!inserted.empty() && rng.Bernoulli(0.3)) {
        size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(inserted.size()) - 1));
        auto [prel, key] = inserted[pick];
        (prel == 0 ? delta_r : delta_s).Add(key, -1);
        inserted[pick] = inserted.back();
        inserted.pop_back();
        continue;
      }
      Tuple t = Tuple::Ints(
          {rng.UniformInt(0, 30), rng.UniformInt(0, 10)});
      d.Add(t, 1);
      inserted.emplace_back(rel, std::move(t));
    }
    if (!delta_r.empty()) f.engine->ApplyDelta(0, std::move(delta_r));
    if (!delta_s.empty()) f.engine->ApplyDelta(1, std::move(delta_s));
    server.Publish();
    server.MergeStep();

    auto snap = server.Acquire();
    ASSERT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()))
        << "batch " << batch;
  }
  server.MergeNow();
  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
  EXPECT_GT(server.MergeCount(), 1u);
}

TEST(SnapshotServerTest, MultiStoreSnapshotsAreCrossStoreConsistent) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  int root = f.tree->root();
  int leaf_r = f.tree->LeafOfRelation(0);
  Server server(&*f.engine, std::vector<int>{root, leaf_r});

  auto s0 = server.Acquire();
  ASSERT_EQ(s0.store_count(), 2u);
  EXPECT_TRUE(ContentEquals(s0.Materialize(0), f.engine->result()));
  EXPECT_TRUE(ContentEquals(s0.Materialize(1), f.engine->store(leaf_r)));

  // One batch touches both stores; one publish exposes both together.
  f.Apply(0, {{1, 10}});
  auto stale = server.Acquire();
  server.Publish();
  auto fresh = server.Acquire();
  EXPECT_EQ(stale.Size(0), 0u);
  EXPECT_EQ(stale.Size(1), 0u);
  EXPECT_EQ(fresh.Size(0), 1u);
  EXPECT_EQ(fresh.Size(1), 1u);
  EXPECT_TRUE(ContentEquals(fresh.Materialize(0), f.engine->result()));
  EXPECT_TRUE(ContentEquals(fresh.Materialize(1), f.engine->store(leaf_r)));

  server.MergeNow();
  auto merged = server.Acquire();
  EXPECT_TRUE(ContentEquals(merged.Materialize(0), f.engine->result()));
  EXPECT_TRUE(ContentEquals(merged.Materialize(1), f.engine->store(leaf_r)));
}

TEST(SnapshotServerTest, ExecutorPostBatchHookPublishesEveryBatch) {
  Fixture f;
  f.Apply(1, {{10, 5}, {11, 5}});
  Server server(&*f.engine);

  exec::ThreadPool pool(2);
  exec::ParallelExecutor<I64Ring> executor(&*f.engine, &pool, {.shards = 2});
  executor.SetPostBatchHook([&server] { server.Publish(); });
  exec::DeltaBatcher<I64Ring> batcher(&f.engine->plans(), /*capacity=*/128);

  util::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    batcher.PushInsert(0, Tuple::Ints({rng.UniformInt(0, 50),
                                       rng.UniformInt(10, 11)}));
    if (batcher.Full()) executor.Drain(batcher);
  }
  executor.Drain(batcher);

  EXPECT_GE(server.PublishCount(), 3u);
  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, FactorizedDeltaFlowsIntoSnapshots) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  // δR = {A=1,A=2} ⊗ {B=10}: the factorized path's store absorbs must tee
  // into the differential exactly like expanded deltas.
  Rel fa(Schema{f.A});
  fa.Add(Tuple::Ints({1}), 1);
  fa.Add(Tuple::Ints({2}), 1);
  Rel fb(Schema{f.B});
  fb.Add(Tuple::Ints({10}), 1);
  std::vector<Rel> factors;
  factors.push_back(std::move(fa));
  factors.push_back(std::move(fb));
  f.engine->ApplyFactorizedDelta(0, std::move(factors));
  server.Publish();

  auto snap = server.Acquire();
  EXPECT_EQ(LookupCount(snap, 1), 1);
  EXPECT_EQ(LookupCount(snap, 2), 1);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, RebaseAfterReinitialize) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  f.Apply(0, {{1, 10}});
  Server server(&*f.engine);
  f.Apply(0, {{2, 10}});
  server.Publish();

  // Initialize bypasses the delta observer; Rebase refreezes from the
  // engine's stores and drops all differential state.
  Database<I64Ring> db = MakeDatabase<I64Ring>(f.query);
  db[0].Add(Tuple::Ints({9, 10}), 1);
  db[1].Add(Tuple::Ints({10, 5}), 1);
  f.engine->Initialize(db);
  server.Rebase();

  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_EQ(LookupCount(snap, 9), 1);
  EXPECT_EQ(LookupCount(snap, 1), 0);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, BackgroundMergerFoldsWhilePublishing) {
  Fixture f;
  f.Apply(1, {{10, 5}});
  MergePolicy policy;
  policy.max_segments = 2;
  policy.max_diff_keys = 8;
  Server server(&*f.engine, policy);
  server.StartBackgroundMerge(std::chrono::milliseconds(1));

  util::Rng rng(31);
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<std::pair<int64_t, int64_t>> rows;
    for (int i = 0; i < 4; ++i) rows.emplace_back(rng.UniformInt(0, 40), 10);
    f.Apply(0, std::move(rows));
    server.Publish();
  }
  server.StopBackgroundMerge();
  server.MergeNow();

  EXPECT_GT(server.MergeCount(), 0u);
  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, TryAcquireReportsReaderSlotSaturation) {
  // Saturate the epoch registry: hold kMaxReaders live snapshots. The 65th
  // acquisition must fail cleanly via TryAcquire (Acquire would spin until
  // a reader releases), and releasing any one snapshot frees a slot.
  Fixture f;
  f.Apply(0, {{1, 10}});
  f.Apply(1, {{10, 5}});
  Server server(&*f.engine);

  std::vector<Server::Snapshot> held;
  held.reserve(EpochRegistry::kMaxReaders);
  for (uint32_t i = 0; i < EpochRegistry::kMaxReaders; ++i) {
    auto snap = server.TryAcquire();
    ASSERT_TRUE(snap.has_value()) << "slot " << i;
    held.push_back(std::move(*snap));
  }
  EXPECT_EQ(server.PinnedCount(),
            static_cast<int64_t>(EpochRegistry::kMaxReaders));
  EXPECT_FALSE(server.TryAcquire().has_value());

  // Saturated snapshots still read consistently.
  EXPECT_EQ(LookupCount(held.back(), 1), 1);

  held.pop_back();  // release one slot
  auto snap = server.TryAcquire();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(LookupCount(*snap, 1), 1);
}

TEST(EpochRegistryTest, TryAcquireSlotReturnsSentinelWhenSaturated) {
  EpochRegistry reg;
  for (uint32_t i = 0; i < EpochRegistry::kMaxReaders; ++i) {
    ASSERT_NE(reg.TryAcquireSlot(), EpochRegistry::kNoSlot);
  }
  EXPECT_EQ(reg.TryAcquireSlot(), EpochRegistry::kNoSlot);
  reg.ReleaseSlot(7);
  EXPECT_EQ(reg.TryAcquireSlot(), 7u);  // the freed slot is reclaimed
  EXPECT_EQ(reg.TryAcquireSlot(), EpochRegistry::kNoSlot);
}

#if !defined(FIVM_FAILPOINTS_OFF)
TEST(SnapshotServerTest, BackgroundMergerSurvivesInjectedMergeFaults) {
  // Satellite: exceptions escaping StartBackgroundMerge's thread used to
  // std::terminate the process. With "serve.merge" armed to fire its first
  // 3 evaluations, the merger must count 3 failures, back off, retry, and
  // eventually fold the segments; the version chain stays consistent
  // throughout.
  Fixture f;
  Server server(&*f.engine, MergePolicy{.max_segments = 1, .max_diff_keys = 1});

  auto& fp = util::FailPointRegistry::Default();
  fp.Arm("serve.merge", 1.0, /*seed=*/11, /*max_fires=*/3);
  server.StartBackgroundMerge(std::chrono::milliseconds(1));

  f.Apply(0, {{1, 10}, {2, 20}});
  f.Apply(1, {{10, 5}, {20, 6}});
  server.Publish();

  // Wait (bounded) for the merger to burn through the injected faults and
  // then complete a real merge.
  for (int i = 0; i < 4000 && server.MergeCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.StopBackgroundMerge();
  fp.DisarmAll();

  EXPECT_EQ(server.MergeFailureCount(), 3u);
  EXPECT_GE(server.MergeCount(), 1u);
  auto snap = server.Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
  EXPECT_EQ(snap.segment_count(), 0u);  // the retried merge folded them
}

TEST(SnapshotServerTest, FailedPublishLeavesStagingRetryable) {
  // A publish that throws (failpoint at entry) must leave staged segments
  // intact: the retry publishes exactly once, with nothing lost or
  // duplicated.
  Fixture f;
  Server server(&*f.engine);
  f.Apply(0, {{1, 10}});
  f.Apply(1, {{10, 5}});

  auto& fp = util::FailPointRegistry::Default();
  fp.Arm("serve.publish", 1.0, /*seed=*/5, /*max_fires=*/1);
  EXPECT_THROW(server.Publish(), util::InjectedFault);
  fp.DisarmAll();
  {
    auto snap = server.Acquire();
    EXPECT_EQ(snap.seq(), 0u);  // failed publish changed nothing
    EXPECT_EQ(LookupCount(snap, 1), 0);
  }
  EXPECT_EQ(server.Publish(), 1u);
  auto snap = server.Acquire();
  EXPECT_EQ(LookupCount(snap, 1), 1);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}

TEST(SnapshotServerTest, AbortedMergeInstallKeepsVersionChainConsistent) {
  // "serve.merge.install" aborts the merge between fold and install: the
  // built generation must unwind without corrupting the chain, and a
  // subsequent merge retry folds the same segments successfully.
  Fixture f;
  Server server(&*f.engine);
  f.Apply(0, {{1, 10}, {2, 20}});
  f.Apply(1, {{10, 5}, {20, 6}});
  server.Publish();

  auto& fp = util::FailPointRegistry::Default();
  fp.Arm("serve.merge.install", 1.0, /*seed=*/6, /*max_fires=*/1);
  EXPECT_THROW(server.MergeNow(), util::InjectedFault);
  fp.DisarmAll();
  EXPECT_EQ(server.MergeCount(), 0u);
  EXPECT_EQ(server.MergedKeys(), 0u);  // aborted merges count nothing
  {
    auto snap = server.Acquire();
    EXPECT_EQ(snap.segment_count(), 1u);  // segments still differential
    EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
  }
  EXPECT_EQ(server.MergeNow(), 1u);
  auto snap = server.Acquire();
  EXPECT_EQ(snap.segment_count(), 0u);
  EXPECT_EQ(snap.base_gen(), 1u);
  EXPECT_TRUE(ContentEquals(snap.Materialize(), f.engine->result()));
}
#endif  // !FIVM_FAILPOINTS_OFF

}  // namespace
}  // namespace fivm::serve
