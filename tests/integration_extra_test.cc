// Cross-module integration checks: slot contiguity on the wide Retailer
// schema, engine introspection, bulk-update sequencing, initialization
// semantics, and F-RE equivalence on a realistic workload.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/ivm_engine.h"
#include "src/core/view_tree.h"
#include "src/ml/cofactor.h"
#include "src/workloads/retailer.h"
#include "src/workloads/stream.h"

namespace fivm {
namespace {

using workloads::RetailerConfig;
using workloads::RetailerDataset;
using workloads::UpdateStream;

std::unique_ptr<RetailerDataset> SmallRetailer() {
  RetailerConfig cfg;
  cfg.inventory_rows = 1500;
  cfg.locations = 6;
  cfg.dates = 15;
  cfg.products = 40;
  return RetailerDataset::Generate(cfg);
}

TEST(IntegrationTest, RetailerSlotsContiguousPerRelationBranch) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  auto slots = tree.AssignAggregateSlots();

  // Every relation's schema must map to slots whose *branch-local* parts
  // are contiguous; in particular the locals of each dimension relation
  // form one contiguous run (this is what keeps regression payloads on
  // compact ranges).
  for (int r = 0; r < ds->query->relation_count(); ++r) {
    const Schema& sch = ds->query->relation(r).schema;
    // Collect slots of the relation's local (non-join) variables.
    Schema joins{ds->locn, ds->dateid, ds->ksn, ds->zip};
    std::vector<uint32_t> locals;
    for (VarId v : sch) {
      if (!joins.Contains(v)) locals.push_back(slots[v]);
    }
    if (locals.size() < 2) continue;
    std::sort(locals.begin(), locals.end());
    EXPECT_EQ(locals.back() - locals.front() + 1, locals.size())
        << "non-contiguous locals in " << ds->query->relation(r).name;
  }

  // All 43 slots distinct and within [0, 43).
  std::vector<bool> used(43, false);
  for (VarId v : ds->query->AllVars()) {
    ASSERT_LT(slots[v], 43u);
    EXPECT_FALSE(used[slots[v]]);
    used[slots[v]] = true;
  }
}

TEST(IntegrationTest, StatsStringListsMaterializedViews) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(*ds->query);
  for (int r = 0; r < 5; ++r) {
    for (const Tuple& t : ds->tuples[r]) db[r].Add(t, 1);
  }
  engine.Initialize(db);
  std::string stats = engine.StatsString();
  EXPECT_NE(stats.find("Inventory"), std::string::npos);
  EXPECT_NE(stats.find("keys"), std::string::npos);
  EXPECT_NE(stats.find("bytes"), std::string::npos);
}

TEST(IntegrationTest, ApplyUpdatesSequencesLikeIndividualDeltas) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> a(&tree, LiftingMap<I64Ring>{});
  IvmEngine<I64Ring> b(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> empty = MakeDatabase<I64Ring>(*ds->query);
  a.Initialize(empty);
  b.Initialize(empty);

  std::vector<std::pair<int, Relation<I64Ring>>> bulk;
  for (int r = 0; r < 5; ++r) {
    Relation<I64Ring> delta(ds->query->relation(r).schema);
    for (size_t i = 0; i < std::min<size_t>(20, ds->tuples[r].size()); ++i) {
      delta.Add(ds->tuples[r][i], 1);
    }
    bulk.emplace_back(r, std::move(delta));
  }

  a.ApplyUpdates(bulk);
  for (const auto& [r, delta] : bulk) b.ApplyDelta(r, delta);

  const int64_t* ra = a.result().Find(Tuple());
  const int64_t* rb = b.result().Find(Tuple());
  EXPECT_EQ(ra ? *ra : 0, rb ? *rb : 0);
}

TEST(IntegrationTest, InitializeIsIdempotentAndResets) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(*ds->query);
  for (int r = 0; r < 5; ++r) {
    for (const Tuple& t : ds->tuples[r]) db[r].Add(t, 1);
  }
  engine.Initialize(db);
  const int64_t* first = engine.result().Find(Tuple());
  int64_t v1 = first ? *first : 0;

  // Re-initializing with the same database resets rather than accumulates.
  engine.Initialize(db);
  const int64_t* second = engine.result().Find(Tuple());
  EXPECT_EQ(second ? *second : 0, v1);

  // Initializing with an empty database clears everything.
  Database<I64Ring> empty = MakeDatabase<I64Ring>(*ds->query);
  engine.Initialize(empty);
  EXPECT_EQ(engine.result().Find(Tuple()), nullptr);
}

TEST(IntegrationTest, StreamedEngineMatchesReevaluation) {
  auto ds = SmallRetailer();
  const Query& query = *ds->query;
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  auto slots = tree.AssignAggregateSlots();
  auto lifts = ml::RegressionLiftings(query, slots);

  IvmEngine<RegressionRing> engine(&tree, lifts);
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
  engine.Initialize(empty);

  Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
  auto stream = UpdateStream::RoundRobin(ds->tuples, 100);
  for (const auto& batch : stream.batches()) {
    auto delta = UpdateStream::ToDelta<RegressionRing>(query, batch);
    engine.ApplyDelta(batch.relation, delta);
    db[batch.relation].UnionWith(delta);
  }

  auto reeval = IvmEngine<RegressionRing>::Evaluate(tree, lifts, db);
  const RegressionPayload* a = engine.result().Find(Tuple());
  const RegressionPayload* b = reeval.Find(Tuple());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->count(), b->count());
  for (uint32_t i = 0; i < 43; i += 7) {
    for (uint32_t j = i; j < 43; j += 7) {
      EXPECT_NEAR(a->Cofactor(i, j), b->Cofactor(i, j),
                  1e-6 * (1.0 + std::abs(b->Cofactor(i, j))));
    }
  }
}

TEST(IntegrationTest, TotalBytesGrowsWithData) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> empty = MakeDatabase<I64Ring>(*ds->query);
  engine.Initialize(empty);
  size_t base = engine.TotalBytes();

  Relation<I64Ring> delta(ds->query->relation(ds->inventory).schema);
  for (size_t i = 0; i < 500 && i < ds->tuples[ds->inventory].size(); ++i) {
    delta.Add(ds->tuples[ds->inventory][i], 1);
  }
  engine.ApplyDelta(ds->inventory, delta);
  EXPECT_GT(engine.TotalBytes(), base);
}

TEST(IntegrationTest, ViewTreeToStringShowsStructure) {
  auto ds = SmallRetailer();
  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.ComputeMaterialization({ds->inventory});
  std::string s = tree.ToString();
  EXPECT_NE(s.find("Inventory"), std::string::npos);
  EXPECT_NE(s.find("*"), std::string::npos);  // materialized markers
  std::string vs = ds->vorder.ToString(ds->catalog);
  EXPECT_NE(vs.find("locn"), std::string::npos);
}

}  // namespace
}  // namespace fivm
