// Property tests: every payload ring must satisfy the ring axioms
// (Appendix A of the paper). Elements are generated with integer-valued
// components so floating-point arithmetic stays exact and the checks can use
// exact equality.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/rings/regression_ring.h"
#include "src/rings/relational_ring.h"
#include "src/rings/ring.h"
#include "src/rings/sparse_regression_ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

// Role-aware random element generator. The role (0, 1, 2) selects disjoint
// variable/slot regions so that heterogeneous operations (e.g. relational
// payload joins) are well-formed the way they are in view trees.
template <typename Ring>
struct Gen;

template <>
struct Gen<I64Ring> {
  static int64_t Make(util::Rng& rng, int) { return rng.UniformInt(-8, 8); }
};

template <>
struct Gen<F64Ring> {
  static double Make(util::Rng& rng, int) {
    return static_cast<double>(rng.UniformInt(-8, 8));
  }
};

template <>
struct Gen<RegressionRing> {
  static RegressionPayload Make(util::Rng& rng, int role) {
    uint32_t lo = static_cast<uint32_t>(role * 2);
    RegressionPayload p = RegressionPayload::Count(
        static_cast<double>(rng.UniformInt(-4, 4)));
    // Sum of a few lifted values over the role's slot region produces
    // payloads with a non-trivial (c, s, Q) structure.
    int n = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      uint32_t slot = lo + static_cast<uint32_t>(rng.Uniform(2));
      double x = static_cast<double>(rng.UniformInt(-4, 4));
      p = Add(p, RegressionPayload::Lift(slot, x));
    }
    return p;
  }
};

template <>
struct Gen<SparseRegressionRing> {
  static SparseRegressionPayload Make(util::Rng& rng, int role) {
    uint32_t lo = static_cast<uint32_t>(role * 2);
    SparseRegressionPayload p = SparseRegressionPayload::Count(
        static_cast<double>(rng.UniformInt(-4, 4)));
    int n = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      uint32_t slot = lo + static_cast<uint32_t>(rng.Uniform(2));
      double x = static_cast<double>(rng.UniformInt(-4, 4));
      p = Add(p, SparseRegressionPayload::Lift(slot, x));
    }
    return p;
  }
};

template <>
struct Gen<RelationalRing> {
  static PayloadRelation Make(util::Rng& rng, int role) {
    // Each role owns a distinct variable; payload relations in view trees
    // multiply only across disjoint schemas.
    VarId var = static_cast<VarId>(100 + role);
    PayloadRelation p;  // zero
    int n = static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < n; ++i) {
      PayloadRelation single =
          PayloadRelation::Singleton(var, Value::Int(rng.UniformInt(0, 3)));
      if (rng.Bernoulli(0.3)) single = -single;
      p = Add(p, single);
    }
    return p;
  }
};

template <typename Ring>
bool Eq(const typename Ring::Element& a, const typename Ring::Element& b) {
  return a == b;
}

template <typename Ring>
class RingAxiomsTest : public ::testing::Test {};

using RingTypes = ::testing::Types<I64Ring, F64Ring, RegressionRing,
                                   SparseRegressionRing, RelationalRing>;
TYPED_TEST_SUITE(RingAxiomsTest, RingTypes);

constexpr int kTrials = 60;

TYPED_TEST(RingAxiomsTest, AdditionCommutes) {
  util::Rng rng(1);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Add(a, b), TypeParam::Add(b, a)));
  }
}

TYPED_TEST(RingAxiomsTest, AdditionAssociates) {
  util::Rng rng(2);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 0);
    auto c = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Add(TypeParam::Add(a, b), c),
                              TypeParam::Add(a, TypeParam::Add(b, c))));
  }
}

TYPED_TEST(RingAxiomsTest, ZeroIsAdditiveIdentity) {
  util::Rng rng(3);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Add(a, TypeParam::Zero()), a));
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Add(TypeParam::Zero(), a), a));
  }
}

TYPED_TEST(RingAxiomsTest, AdditiveInverseCancels) {
  util::Rng rng(4);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(TypeParam::IsZero(TypeParam::Add(a, TypeParam::Neg(a))));
  }
}

TYPED_TEST(RingAxiomsTest, MultiplicationAssociates) {
  util::Rng rng(5);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 1);
    auto c = Gen<TypeParam>::Make(rng, 2);
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Mul(TypeParam::Mul(a, b), c),
                              TypeParam::Mul(a, TypeParam::Mul(b, c))));
  }
}

TYPED_TEST(RingAxiomsTest, OneIsMultiplicativeIdentity) {
  util::Rng rng(6);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Mul(a, TypeParam::One()), a));
    EXPECT_TRUE(Eq<TypeParam>(TypeParam::Mul(TypeParam::One(), a), a));
  }
}

TYPED_TEST(RingAxiomsTest, LeftDistributivity) {
  util::Rng rng(7);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 1);
    auto c = Gen<TypeParam>::Make(rng, 1);
    EXPECT_TRUE(
        Eq<TypeParam>(TypeParam::Mul(a, TypeParam::Add(b, c)),
                      TypeParam::Add(TypeParam::Mul(a, b),
                                     TypeParam::Mul(a, c))));
  }
}

TYPED_TEST(RingAxiomsTest, RightDistributivity) {
  util::Rng rng(8);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 0);
    auto c = Gen<TypeParam>::Make(rng, 1);
    EXPECT_TRUE(
        Eq<TypeParam>(TypeParam::Mul(TypeParam::Add(a, b), c),
                      TypeParam::Add(TypeParam::Mul(a, c),
                                     TypeParam::Mul(b, c))));
  }
}

TYPED_TEST(RingAxiomsTest, MultiplicationByZeroAnnihilates) {
  util::Rng rng(9);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    EXPECT_TRUE(TypeParam::IsZero(TypeParam::Mul(a, TypeParam::Zero())));
    EXPECT_TRUE(TypeParam::IsZero(TypeParam::Mul(TypeParam::Zero(), a)));
  }
}

TYPED_TEST(RingAxiomsTest, AddInPlaceMatchesAdd) {
  util::Rng rng(10);
  for (int t = 0; t < kTrials; ++t) {
    auto a = Gen<TypeParam>::Make(rng, 0);
    auto b = Gen<TypeParam>::Make(rng, 0);
    auto expected = TypeParam::Add(a, b);
    auto actual = a;
    TypeParam::AddInPlace(actual, b);
    EXPECT_TRUE(Eq<TypeParam>(actual, expected));
  }
}

TYPED_TEST(RingAxiomsTest, ZeroTestsAsZero) {
  EXPECT_TRUE(TypeParam::IsZero(TypeParam::Zero()));
  EXPECT_FALSE(TypeParam::IsZero(TypeParam::One()));
}

}  // namespace
}  // namespace fivm
