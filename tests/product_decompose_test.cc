#include "src/core/product_decompose.h"

#include <gtest/gtest.h>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

constexpr VarId kA = 0, kB = 1, kC = 2;

Relation<I64Ring> ProductRelation(int n, int m) {
  // Example 5.1: R[A,B] = {(a_i, b_j) -> 1}.
  Relation<I64Ring> r(Schema{kA, kB});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      r.Add(Tuple::Ints({i, j}), 1);
    }
  }
  return r;
}

TEST(ProductDecomposeTest, Example51FullGrid) {
  // nm keys decompose into n + m factor entries.
  auto r = ProductRelation(8, 5);
  auto result = TryDecompose(r, Schema{kA});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->first.size(), 8u);
  EXPECT_EQ(result->second.size(), 5u);
}

TEST(ProductDecomposeTest, NonProductFails) {
  auto r = ProductRelation(3, 3);
  r.Add(Tuple::Ints({0, 0}), -1);  // poke a hole in the grid
  EXPECT_FALSE(TryDecompose(r, Schema{kA}).has_value());
}

TEST(ProductDecomposeTest, PayloadMismatchFails) {
  auto r = ProductRelation(3, 3);
  r.Add(Tuple::Ints({0, 0}), 5);  // payload no longer multiplicative
  EXPECT_FALSE(TryDecompose(r, Schema{kA}).has_value());
}

TEST(ProductDecomposeTest, MultiplicativePayloadsFactorize) {
  // R[a, b] = f(a) * g(b).
  Relation<I64Ring> r(Schema{kA, kB});
  int64_t f[] = {2, 3, 5};
  int64_t g[] = {1, 7};
  for (int64_t a = 0; a < 3; ++a) {
    for (int64_t b = 0; b < 2; ++b) {
      r.Add(Tuple::Ints({a, b}), f[a] * g[b]);
    }
  }
  auto result = TryDecompose(r, Schema{kA});
  ASSERT_TRUE(result.has_value());
  // Reassemble and compare.
  auto back = Join(result->first, result->second);
  EXPECT_EQ(back.size(), r.size());
  r.ForEach([&](const Tuple& k, const int64_t& p) {
    auto pos = r.schema().PositionsOf(back.schema());
    ASSERT_NE(back.Find(k.Project(pos)), nullptr);
    EXPECT_EQ(*back.Find(k.Project(pos)), p);
  });
}

TEST(ProductDecomposeTest, FullDecompositionThreeWays) {
  // R[A,B,C] = 1 over a full 4x3x2 grid -> three unary factors.
  Relation<I64Ring> r(Schema{kA, kB, kC});
  for (int64_t a = 0; a < 4; ++a) {
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t c = 0; c < 2; ++c) {
        r.Add(Tuple::Ints({a, b, c}), 1);
      }
    }
  }
  auto factors = ProductDecompose(r);
  ASSERT_EQ(factors.size(), 3u);
  EXPECT_EQ(CumulativeSize(factors), 4u + 3u + 2u);  // vs 24 keys
}

TEST(ProductDecomposeTest, IndivisibleStaysSingle) {
  Relation<I64Ring> r(Schema{kA, kB});
  r.Add(Tuple::Ints({0, 0}), 1);
  r.Add(Tuple::Ints({1, 1}), 1);  // diagonal: not a product
  auto factors = ProductDecompose(r);
  ASSERT_EQ(factors.size(), 1u);
  EXPECT_EQ(factors[0].size(), 2u);
}

TEST(ProductDecomposeTest, DoubleRingDecomposition) {
  Relation<F64Ring> r(Schema{kA, kB});
  util::Rng rng(5);
  std::vector<double> f{0.5, -2.0, 3.0};
  std::vector<double> g{1.5, 4.0};
  for (int64_t a = 0; a < 3; ++a) {
    for (int64_t b = 0; b < 2; ++b) {
      r.Add(Tuple::Ints({a, b}), f[a] * g[b]);
    }
  }
  auto result = TryDecompose(r, Schema{kA});
  ASSERT_TRUE(result.has_value());
  auto back = Join(result->first, result->second);
  r.ForEach([&](const Tuple& k, const double& p) {
    auto pos = r.schema().PositionsOf(back.schema());
    const double* q = back.Find(k.Project(pos));
    ASSERT_NE(q, nullptr);
    EXPECT_NEAR(*q, p, 1e-9);
  });
}

// End-to-end: decompose a grid-shaped delta automatically and propagate it
// factorized; the result matches listing propagation.
TEST(ProductDecomposeTest, AutoFactorizedPropagation) {
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), C = catalog.Intern("C"),
        E = catalog.Intern("E"), B = catalog.Intern("B"),
        D = catalog.Intern("D");
  query.AddRelation("R", Schema{A, B});
  int s = query.AddRelation("S", Schema{A, C, E});
  query.AddRelation("T", Schema{C, D});

  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  LiftingMap<I64Ring> lifts;

  IvmEngine<I64Ring> listing(&tree, lifts);
  IvmEngine<I64Ring> factorized(&tree, lifts);
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  db[0].Add(Tuple::Ints({1, 1}), 1);
  db[2].Add(Tuple::Ints({1, 1}), 1);
  db[2].Add(Tuple::Ints({2, 1}), 1);
  listing.Initialize(db);
  factorized.Initialize(db);

  // Grid delta over S: {1,2} x {1,2} x {7}.
  Relation<I64Ring> delta(Schema{A, C, E});
  for (int64_t a = 1; a <= 2; ++a) {
    for (int64_t c = 1; c <= 2; ++c) {
      delta.Add(Tuple::Ints({a, c, 7}), 1);
    }
  }
  auto factors = ProductDecompose(delta);
  EXPECT_EQ(factors.size(), 3u);

  listing.ApplyDelta(s, delta);
  factorized.ApplyFactorizedDelta(s, factors);

  const int64_t* x = listing.result().Find(Tuple());
  const int64_t* y = factorized.result().Find(Tuple());
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(*x, *y);
}

}  // namespace
}  // namespace fivm
