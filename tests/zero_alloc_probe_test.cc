// Verifies the acceptance criterion of the zero-allocation probe path: with
// cached tuple hashes and TupleView-based heterogeneous lookup, the Join
// inner loop performs no heap allocation per probe. This binary links
// util/memhook_new.cc (see tests/CMakeLists.txt), so every operator new is
// counted by util::MemoryTracker.

#include <gtest/gtest.h>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/obs/metrics.h"
#include "src/serve/snapshot_server.h"
#include "src/rings/ring.h"
#include "src/util/memory_tracker.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

Relation<I64Ring> RandomRelation(const Schema& schema, size_t n,
                                 int64_t domain, util::Rng& rng) {
  Relation<I64Ring> rel(schema);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (size_t c = 0; c < schema.size(); ++c) {
      t.Append(Value::Int(rng.UniformInt(0, domain - 1)));
    }
    rel.Add(std::move(t), 1);
  }
  return rel;
}

TEST(ZeroAllocProbeTest, HooksAreLinked) {
  ASSERT_TRUE(util::MemoryTracker::enabled())
      << "memhook_new.cc not linked into this test binary";
}

// The raw probe sequence of the Join inner loop — view construction, index
// probe, slot walk, payload test — allocates nothing, for small (<=4 value)
// keys and misses alike.
TEST(ZeroAllocProbeTest, SecondaryIndexProbeIsAllocationFree) {
  util::Rng rng(91);
  auto right = RandomRelation(Schema{1, 2}, 50000, 1 << 8, rng);
  auto left = RandomRelation(Schema{0, 1}, 1024, 1 << 9, rng);  // ~50% misses
  const auto& index = right.IndexOn(Schema{1});
  auto left_common = left.schema().PositionsOf(Schema{1});

  int64_t matches = 0;
  int64_t before = util::MemoryTracker::AllocationCount();
  left.ForEach([&](const Tuple& lk, const int64_t&) {
    const auto* slots = index.Probe(TupleView(lk, left_common));
    if (slots == nullptr) return;
    for (uint32_t slot : *slots) {
      if (!I64Ring::IsZero(right.PayloadAt(slot))) ++matches;
    }
  });
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_GT(matches, 0);
}

// Same property through the primary index: Relation::Find with a view key.
TEST(ZeroAllocProbeTest, PrimaryIndexViewFindIsAllocationFree) {
  util::Rng rng(92);
  auto right = RandomRelation(Schema{1, 2}, 50000, 1 << 8, rng);
  auto left = RandomRelation(Schema{0, 1, 2}, 1024, 1 << 8, rng);
  auto probe_pos = left.schema().PositionsOf(Schema{1, 2});

  int64_t hits = 0;
  int64_t before = util::MemoryTracker::AllocationCount();
  left.ForEach([&](const Tuple& lk, const int64_t&) {
    if (right.Find(TupleView(lk, probe_pos)) != nullptr) ++hits;
  });
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_GT(hits, 0);
}

// A full Join whose probes all miss allocates nothing at all: the probe
// loop is allocation-free and no output entry is ever created.
TEST(ZeroAllocProbeTest, JoinWithNoMatchesAllocatesNothing) {
  util::Rng rng(93);
  Relation<I64Ring> right(Schema{1, 2});
  for (int64_t i = 0; i < 20000; ++i) {
    right.Add(Tuple::Ints({i, i}), 1);
  }
  Relation<I64Ring> left(Schema{0, 1});
  for (int64_t i = 0; i < 1024; ++i) {
    left.Add(Tuple::Ints({i, 1000000 + i}), 1);  // disjoint join keys
  }
  right.IndexOn(Schema{1});  // pre-built, as in steady-state maintenance

  int64_t before = util::MemoryTracker::AllocationCount();
  auto out = Join(left, right);
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_TRUE(out.empty());
}

// The SwissTable group-probe path (control-byte scan + H2 tag match before
// any cell load, hit and miss alike, through both the primary index and a
// FlatHashMap-backed secondary) performs zero heap allocations — the PR 1
// acceptance property, re-asserted over the PR 4 hash core.
TEST(ZeroAllocProbeTest, GroupProbePathIsAllocationFree) {
  util::Rng rng(95);
  auto rel = RandomRelation(Schema{0, 1}, 60000, 1 << 9, rng);
  // Build probe keys (half hits, half misses) and the secondary index
  // before counting.
  std::vector<Tuple> keys;
  keys.reserve(2048);
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(Tuple::Ints({rng.UniformInt(0, (1 << 9) - 1),
                                rng.UniformInt(0, (1 << 9) - 1)}));
    keys.push_back(Tuple::Ints({rng.UniformInt(1 << 9, 1 << 10),
                                rng.UniformInt(1 << 9, 1 << 10)}));
  }
  const auto& sec = rel.IndexOn(Schema{1});
  auto pos1 = rel.schema().PositionsOf(Schema{1});

  int64_t hits = 0;
  int64_t before = util::MemoryTracker::AllocationCount();
  for (const Tuple& k : keys) {
    if (rel.Find(k) != nullptr) ++hits;
    if (sec.Probe(TupleView(k, pos1)) != nullptr) ++hits;
  }
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_GT(hits, 0);
}

// The metrics record path — counter adds, histogram records, scoped
// timers, and the sampled probe-length cold path — allocates nothing: the
// src/obs/ cost-model contract that lets PR 7 instrument the engine's hot
// loops. Registry lookups (mutexed, allocating) belong at construction
// time and are done before counting starts.
TEST(ZeroAllocProbeTest, MetricRecordPathIsAllocationFree) {
#if FIVM_METRICS_ENABLED
  auto& reg = obs::MetricRegistry::Default();
  obs::Counter* counter = reg.GetCounter("zero_alloc.counter");
  obs::Histogram* hist = reg.GetHistogram("zero_alloc.hist");
  // Warm the per-thread shard assignment, the TSC calibration (first
  // RecordTicks busy-waits ~2ms against steady_clock) and the sampled
  // probe-length histogram, so only the steady-state record path is
  // counted.
  counter->Add(1);
  hist->RecordTicks(1000);  // triggers the one-time TSC calibration
  obs::SampleProbeLength(1);

  int64_t before = util::MemoryTracker::AllocationCount();
  for (uint64_t i = 0; i < 10000; ++i) {
    counter->Add(i);
    hist->Record(i * 37);
    obs::ScopedTimer t(hist);
    obs::SampleProbeLength(static_cast<uint32_t>(i & 7) + 1);
  }
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_GE(hist->Count(), 20001u);  // Record + timer per iteration + warmup
#endif
}

// The snapshot-serving read path — epoch pin, version load, point lookups
// against (base ⊎ differential segments), unpin — allocates nothing and
// takes no lock, for hits and misses alike: the wait-free acceptance
// property of src/serve/. Exercised with live segments so the differential
// probe loop itself is covered, not just the merged-base fast path.
TEST(ZeroAllocProbeTest, SnapshotReadPathIsAllocationFree) {
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
        C = catalog.Intern("C");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{B, C});
  query.SetFreeVars(Schema{A});
  VariableOrder vo = VariableOrder::Auto(query);
  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, {});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  engine.Initialize(db);

  util::Rng rng(96);
  auto apply = [&](int rel, size_t n, int64_t dom_x, int64_t dom_y) {
    Relation<I64Ring> delta(query.relation(rel).schema);
    for (size_t i = 0; i < n; ++i) {
      delta.Add(Tuple::Ints({rng.UniformInt(0, dom_x - 1),
                             rng.UniformInt(0, dom_y - 1)}),
                1);
    }
    engine.ApplyDelta(rel, std::move(delta));
  };
  apply(1, 512, 64, 64);
  apply(0, 8192, 2048, 64);
  serve::SnapshotServer<I64Ring> server(&engine);
  apply(0, 1024, 2048, 64);  // segment 1
  server.Publish();
  apply(0, 1024, 2048, 64);  // segment 2
  server.Publish();

  // Probe keys (hits and misses) built before counting starts.
  std::vector<Tuple> keys;
  keys.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(Tuple::Ints({rng.UniformInt(0, 4095)}));
  }

  int64_t hits = 0;
  int64_t sum = 0;
  int64_t before = util::MemoryTracker::AllocationCount();
  for (int round = 0; round < 8; ++round) {
    auto snap = server.Acquire();
    int64_t out = 0;
    for (const Tuple& k : keys) {
      if (snap.Lookup(k, &out)) {
        ++hits;
        sum += out;
      }
    }
  }
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_EQ(after - before, 0);
  EXPECT_GT(hits, 0);
  EXPECT_GT(sum, 0);
  auto check = server.Acquire();
  EXPECT_EQ(check.segment_count(), 2u);  // the differential loop really ran
}

// With matches, allocations are due to output materialization only
// (amortized vector/table growth), not to probing: far fewer allocations
// than probes.
TEST(ZeroAllocProbeTest, JoinAllocationsAreOutputBound) {
  util::Rng rng(94);
  auto right = RandomRelation(Schema{1, 2}, 20000, 1 << 8, rng);
  auto left = RandomRelation(Schema{0, 1}, 4096, 1 << 8, rng);
  right.IndexOn(Schema{1});

  int64_t before = util::MemoryTracker::AllocationCount();
  auto out = Join(left, right);
  int64_t after = util::MemoryTracker::AllocationCount();
  EXPECT_GT(out.size(), 0u);
  // Amortized growth of the output entry vector + hash table: logarithmic
  // number of reallocations, each counted once. 100 is generous; the
  // pre-optimization code allocated at least one projected probe key per
  // left entry (4096+).
  EXPECT_LT(after - before, 100);
}

}  // namespace
}  // namespace fivm
