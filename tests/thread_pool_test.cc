#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fivm::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 100; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  pool.RunTasks(std::move(tasks));
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  bool same_thread = false;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] { same_thread = caller == std::this_thread::get_id(); });
  pool.RunTasks(std::move(tasks));
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  int ran = 0;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] { ++ran; });
  pool.RunTasks(std::move(tasks));
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&total] { total.fetch_add(1); });
    }
    pool.RunTasks(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 350);
}

TEST(ThreadPoolTest, CallerParticipatesInRound) {
  // With n tasks that all block until n threads have arrived, the round can
  // only finish if caller + workers all execute tasks concurrently.
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::set<std::thread::id> ids;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kThreads; ++i) {
    tasks.push_back([&] {
      std::unique_lock<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
      if (++arrived == kThreads) {
        cv.notify_all();
      } else {
        // Bounded wait so a buggy (serializing) pool fails instead of
        // deadlocking the test binary.
        cv.wait_for(lock, std::chrono::seconds(30),
                    [&] { return arrived == kThreads; });
      }
    });
  }
  pool.RunTasks(std::move(tasks));
  EXPECT_EQ(arrived, kThreads);
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads));
}

TEST(ThreadPoolTest, FirstExceptionPropagates) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.RunTasks(std::move(tasks)), std::runtime_error);
  // The round still ran to completion before rethrowing.
  EXPECT_EQ(ran.load(), 8);

  // The pool remains usable after an exception.
  std::vector<std::function<void()>> more;
  more.push_back([&ran] { ran.fetch_add(1); });
  pool.RunTasks(std::move(more));
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRoundIsNoOp) {
  ThreadPool pool(2);
  pool.RunTasks({});
}

}  // namespace
}  // namespace fivm::exec
