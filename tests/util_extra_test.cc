#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/hash.h"
#include "src/util/memory_tracker.h"
#include "src/util/rng.h"
#include "src/util/string_dictionary.h"
#include "src/util/timer.h"

namespace fivm::util {
namespace {

TEST(HashTest, Mix64IsInjectiveOnSmallRange) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  int total_flips = 0;
  for (uint64_t x = 1; x < 100; ++x) {
    uint64_t h = Mix64(x);
    uint64_t h2 = Mix64(x ^ 1);
    total_flips += __builtin_popcountll(h ^ h2);
  }
  double avg = total_flips / 99.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashStringDiffers) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
  EXPECT_EQ(HashString("same"), HashString("same"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(10);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 should dominate rank 50 by roughly 50x under theta=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // All samples in range.
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(11);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(StringDictionaryTest, InternAndDecode) {
  StringDictionary dict;
  int64_t a = dict.Intern("alpha");
  int64_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Decode(a), "alpha");
  EXPECT_EQ(dict.Decode(b), "beta");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(StringDictionaryTest, LookupWithoutIntern) {
  StringDictionary dict;
  EXPECT_EQ(dict.Lookup("missing"), -1);
  dict.Intern("present");
  EXPECT_EQ(dict.Lookup("present"), 0);
}

TEST(StringDictionaryTest, DenseCodes) {
  StringDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern("key" + std::to_string(i)), i);
  }
}

TEST(MemoryTrackerTest, DisabledWithoutHooks) {
  // Tests do not link the allocation hooks; readings must be stable zeros.
  EXPECT_FALSE(MemoryTracker::enabled());
  EXPECT_EQ(MemoryTracker::CurrentBytes(), 0);
}

TEST(MemoryTrackerTest, ManualAccounting) {
  MemoryTracker::RecordAlloc(1000);
  EXPECT_GE(MemoryTracker::CurrentBytes(), 1000);
  EXPECT_GE(MemoryTracker::PeakBytes(), 1000);
  MemoryTracker::RecordFree(1000);
  EXPECT_EQ(MemoryTracker::CurrentBytes(), 0);
  // Peak persists until reset.
  EXPECT_GE(MemoryTracker::PeakBytes(), 1000);
  MemoryTracker::ResetPeak();
  EXPECT_EQ(MemoryTracker::PeakBytes(), 0);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
  double before = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace fivm::util
