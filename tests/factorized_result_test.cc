// Section 6.3: factorized result representations — maintenance in
// retain-vars mode and constant-delay enumeration.

#include "src/core/factorized_result.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/rings/relational_ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

struct PaperFixture {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  VariableOrder vo;

  PaperFixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    D = catalog.Intern("D");
    E = catalog.Intern("E");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{A, C, E});
    query.AddRelation("T", Schema{C, D});
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    std::string error;
    bool ok = vo.Finalize(query, &error);
    assert(ok);
    (void)ok;
  }

  Database<I64Ring> Figure2cDatabase() const {
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    db[0].Add(Tuple::Ints({1, 1}), 1);
    db[0].Add(Tuple::Ints({1, 2}), 1);
    db[0].Add(Tuple::Ints({2, 3}), 1);
    db[0].Add(Tuple::Ints({3, 4}), 1);
    db[1].Add(Tuple::Ints({1, 1, 1}), 1);
    db[1].Add(Tuple::Ints({1, 1, 2}), 1);
    db[1].Add(Tuple::Ints({1, 2, 3}), 1);
    db[1].Add(Tuple::Ints({2, 2, 4}), 1);
    db[2].Add(Tuple::Ints({1, 1}), 1);
    db[2].Add(Tuple::Ints({2, 2}), 1);
    db[2].Add(Tuple::Ints({2, 3}), 1);
    db[2].Add(Tuple::Ints({3, 4}), 1);
    return db;
  }
};

std::set<std::string> FullJoinSupport(const PaperFixture& /*fixture*/,
                                      const Database<I64Ring>& db,
                                      const Schema& order) {
  auto joined = Join(Join(db[0], db[1]), db[2]);
  std::set<std::string> out;
  auto pos = joined.schema().PositionsOf(order);
  joined.ForEach([&](const Tuple& k, const int64_t&) {
    out.insert(k.Project(pos).ToString());
  });
  return out;
}

TEST(FactorizedResultTest, EnumerationMatchesListingJoin) {
  PaperFixture f;
  ViewTree::Options opts;
  opts.retain_vars = true;
  ViewTree tree(&f.query, &f.vo, opts);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  auto db = f.Figure2cDatabase();
  engine.Initialize(db);

  FactorizedEnumerator<I64Ring> enumerator(&engine);
  // Figure 2e: 8 result tuples over (A,B,C,D,E projected appropriately);
  // over all five variables the join support has 8 tuples too (E is
  // functionally paired in this data... enumerate and compare exactly).
  std::set<std::string> expected =
      FullJoinSupport(f, db, enumerator.schema());
  std::set<std::string> actual;
  enumerator.Enumerate([&](const Tuple& t) { actual.insert(t.ToString()); });
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(enumerator.Count(), expected.size());
}

TEST(FactorizedResultTest, MaintainedUnderUpdates) {
  PaperFixture f;
  ViewTree::Options opts;
  opts.retain_vars = true;
  ViewTree tree(&f.query, &f.vo, opts);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(f.query);
  engine.Initialize(db);
  FactorizedEnumerator<I64Ring> enumerator(&engine);

  util::Rng rng(321);
  for (int step = 0; step < 40; ++step) {
    int rel = static_cast<int>(rng.Uniform(3));
    const Schema& sch = f.query.relation(rel).schema;
    Relation<I64Ring> delta(sch);
    Tuple t;
    for (size_t i = 0; i < sch.size(); ++i) {
      t.Append(Value::Int(rng.UniformInt(0, 2)));
    }
    // Insert-dominated stream (enumeration pruning assumes non-negative
    // multiplicities; deletes here only remove previously inserted tuples).
    delta.Add(t, 1);
    engine.ApplyDelta(rel, delta);
    db[rel].UnionWith(delta);

    std::set<std::string> expected =
        FullJoinSupport(f, db, enumerator.schema());
    std::set<std::string> actual;
    enumerator.Enumerate(
        [&](const Tuple& tup) { actual.insert(tup.ToString()); });
    ASSERT_EQ(actual, expected) << "step " << step;
  }
}

TEST(FactorizedResultTest, DeleteRetractsTuples) {
  PaperFixture f;
  ViewTree::Options opts;
  opts.retain_vars = true;
  ViewTree tree(&f.query, &f.vo, opts);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  auto db = f.Figure2cDatabase();
  engine.Initialize(db);
  FactorizedEnumerator<I64Ring> enumerator(&engine);
  size_t before = enumerator.Count();
  ASSERT_GT(before, 0u);

  // Delete T(c1,d1): all result tuples through it disappear.
  Relation<I64Ring> del(Schema{f.C, f.D});
  del.Add(Tuple::Ints({1, 1}), -1);
  engine.ApplyDelta(2, del);
  db[2].UnionWith(del);

  std::set<std::string> expected =
      FullJoinSupport(f, db, enumerator.schema());
  EXPECT_EQ(enumerator.Count(), expected.size());
  EXPECT_LT(enumerator.Count(), before);
}

// The relational-ring listing payload at the root equals the materialized
// join projected on the free variables (Example 6.5).
TEST(FactorizedResultTest, RelationalRingListingPayload) {
  PaperFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();

  // Conjunctive query Q(A,B,C,D): free vars lifted to singleton relations,
  // bound var E lifted to the identity.
  LiftingMap<RelationalRing> lifts;
  for (VarId v : {f.A, f.B, f.C, f.D}) {
    lifts.Set(v, RelationalLifting(v));
  }
  IvmEngine<RelationalRing> engine(&tree, lifts);

  Database<RelationalRing> db = MakeDatabase<RelationalRing>(f.query);
  auto zdb = f.Figure2cDatabase();
  for (int r = 0; r < 3; ++r) {
    zdb[r].ForEach([&](const Tuple& t, const int64_t&) {
      db[r].Add(t, PayloadRelation::Identity());
    });
  }
  engine.Initialize(db);

  ASSERT_EQ(engine.result().size(), 1u);
  const PayloadRelation* payload = engine.result().Find(Tuple());
  ASSERT_NE(payload, nullptr);

  // Expected: distinct (A,B,C,D) from the join (Figure 2e right column has
  // 8 tuples).
  auto joined = Join(Join(zdb[0], zdb[1]), zdb[2]);
  LiftingMap<I64Ring> trivial;
  auto expected = Marginalize(joined, Schema{f.E}, trivial);
  EXPECT_EQ(payload->size(), 8u);
  EXPECT_EQ(payload->size(), expected.size());
  expected.ForEach([&](const Tuple& k, const int64_t& m) {
    auto pos = expected.schema().PositionsOf(payload->schema());
    EXPECT_EQ(payload->Multiplicity(k.Project(pos)), m) << k.ToString();
  });
}

TEST(FactorizedResultTest, RetainModeStoresFormFigure2e) {
  PaperFixture f;
  ViewTree::Options opts;
  opts.retain_vars = true;
  ViewTree tree(&f.query, &f.vo, opts);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  engine.Initialize(f.Figure2cDatabase());

  // Root store (middle V_RST of Figure 2e): A-values a1 -> 8, a2 -> 2.
  const auto& root = engine.store(tree.root());
  EXPECT_EQ(root.size(), 2u);
  EXPECT_EQ(*root.Find(Tuple::Ints({1})), 8);
  EXPECT_EQ(*root.Find(Tuple::Ints({2})), 2);

  // V@D_T stores (C,D) unions: d2,d3 under c2 stored once (shared across
  // a1 and a2 — the succinctness of factorization).
  int leaf_t = tree.LeafOfRelation(2);
  const auto& vd = engine.store(tree.node(leaf_t).parent);
  EXPECT_EQ(*vd.Find(Tuple::Ints({2, 2})), 1);
  EXPECT_EQ(*vd.Find(Tuple::Ints({2, 3})), 1);
}

}  // namespace
}  // namespace fivm
