// WAL mechanics: frame round-trips, LSN/update-index continuity across
// reopen, segment rotation and truncation GC, and — the crash-critical
// paths — torn-tail discard at every possible mid-frame cut and CRC
// corruption detection. The tear tests byte-chop a real segment at each
// offset and assert recovery keeps exactly the frames before the tear.

#include "src/durability/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/rings/ring.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"

namespace fivm::durability {
namespace {

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/tmp/fivm_wal_%s_%d_XXXXXX", tag,
                  static_cast<int>(::getpid()));
    dir_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    if (dir_.empty()) return;
    std::string cmd = "rm -rf " + dir_;
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

// Appends `n` deterministic updates across two relations and seals once per
// `per_seal` updates. Returns the expected (relation, key-int, payload)
// stream.
struct Update {
  int relation;
  int64_t key;
  int64_t payload;
};

std::vector<Update> MakeStream(int n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Update{static_cast<int>(rng.UniformInt(0, 1)),
                         rng.UniformInt(0, 1000),
                         rng.UniformInt(1, 9)});
  }
  return out;
}

void AppendStream(WalWriter* w, const std::vector<Update>& stream,
                  size_t per_seal) {
  size_t in_window = 0;
  for (const Update& u : stream) {
    w->Append<I64Ring>(u.relation, Tuple::Ints({u.key}), u.payload);
    if (++in_window >= per_seal) {
      w->Seal(/*sync=*/true);
      in_window = 0;
    }
  }
  if (in_window > 0) w->Seal(/*sync=*/true);
}

/// The on-log order of `stream` sealed in windows of `per_seal`: one frame
/// per touched relation per window, relations in first-touch order, updates
/// of a relation in arrival order. (Cross-relation interleaving inside one
/// window is intentionally not preserved by the frame format.)
std::vector<Update> SealedOrder(const std::vector<Update>& stream,
                                size_t per_seal) {
  std::vector<Update> out;
  out.reserve(stream.size());
  for (size_t w = 0; w < stream.size(); w += per_seal) {
    size_t end = std::min(stream.size(), w + per_seal);
    std::vector<int> touch_order;
    for (size_t i = w; i < end; ++i) {
      bool seen = false;
      for (int r : touch_order) seen = seen || r == stream[i].relation;
      if (!seen) touch_order.push_back(stream[i].relation);
    }
    for (int r : touch_order) {
      for (size_t i = w; i < end; ++i) {
        if (stream[i].relation == r) out.push_back(stream[i]);
      }
    }
  }
  return out;
}

// Reads the whole log back into a flat update stream (LSN order).
std::vector<Update> ReadStream(const std::string& dir, WalReader* reader) {
  WalReader local(dir);
  WalReader* r = reader != nullptr ? reader : &local;
  std::vector<Update> out;
  WalFrame frame;
  while (r->Next(&frame)) {
    bool ok = DecodeFrameUpdates<I64Ring>(
        frame, [&](Tuple&& key, int64_t&& payload) {
          out.push_back(Update{frame.relation, key[0].AsInt(), payload});
        });
    EXPECT_TRUE(ok);
  }
  return out;
}

bool SameStream(const std::vector<Update>& a, const std::vector<Update>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].relation != b[i].relation || a[i].key != b[i].key ||
        a[i].payload != b[i].payload) {
      return false;
    }
  }
  return true;
}

TEST(WalTest, FrameRoundTripAndGrouping) {
  TempDir td("rt");
  WalWriter::Options opt;
  WalWriter w(td.path(), opt);
  // One window touching two relations → two frames, one fsync.
  w.Append<I64Ring>(0, Tuple::Ints({1}), 7);
  w.Append<I64Ring>(0, Tuple::Ints({2}), -3);
  w.Append<I64Ring>(1, Tuple::Ints({9}), 5);
  EXPECT_TRUE(w.HasPending());
  uint64_t lsn = w.Seal(true);
  EXPECT_EQ(lsn, 2u);  // two frames sealed, LSNs 1 and 2
  EXPECT_FALSE(w.HasPending());
  EXPECT_EQ(w.stats().frames_written, 2u);
  EXPECT_EQ(w.stats().fsyncs, 1u);
  EXPECT_EQ(w.next_update_index(), 3u);

  WalReader r(td.path());
  WalFrame f;
  ASSERT_TRUE(r.Next(&f));
  EXPECT_EQ(f.lsn, 1u);
  EXPECT_EQ(f.relation, 0);
  EXPECT_EQ(f.tuple_count, 2u);
  EXPECT_EQ(f.first_update_index, 0u);
  EXPECT_FALSE(f.window_commit);  // not the last frame of its group
  std::vector<std::pair<int64_t, int64_t>> got;
  EXPECT_TRUE(DecodeFrameUpdates<I64Ring>(f, [&](Tuple&& k, int64_t&& p) {
    got.emplace_back(k[0].AsInt(), p);
  }));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int64_t, int64_t>{1, 7}));
  EXPECT_EQ(got[1], (std::pair<int64_t, int64_t>{2, -3}));
  ASSERT_TRUE(r.Next(&f));
  EXPECT_EQ(f.lsn, 2u);
  EXPECT_EQ(f.relation, 1);
  EXPECT_EQ(f.first_update_index, 2u);
  EXPECT_TRUE(f.window_commit);  // group's final frame commits the window
  EXPECT_FALSE(r.Next(&f));
  EXPECT_FALSE(r.saw_torn_tail());
}

TEST(WalTest, ReopenResumesNumbering) {
  TempDir td("reopen");
  auto stream = MakeStream(100, 11);
  {
    WalWriter w(td.path(), {});
    AppendStream(&w, stream, 7);
  }
  WalWriter w2(td.path(), {});
  EXPECT_EQ(w2.next_update_index(), 100u);
  uint64_t resumed_lsn = w2.next_lsn();
  w2.Append<I64Ring>(0, Tuple::Ints({42}), 1);
  EXPECT_EQ(w2.Seal(true), resumed_lsn);
  auto back = ReadStream(td.path(), nullptr);
  auto expected = SealedOrder(stream, 7);
  expected.push_back(Update{0, 42, 1});
  EXPECT_TRUE(SameStream(back, expected));
}

TEST(WalTest, RotationSplitsSegmentsReaderSpansThem) {
  TempDir td("rot");
  WalWriter::Options opt;
  opt.max_segment_bytes = 256;  // force frequent rotation
  opt.sync_dir = false;
  auto stream = MakeStream(200, 12);
  WalWriter w(td.path(), opt);
  AppendStream(&w, stream, 5);
  EXPECT_GT(w.stats().rotations, 3u);
  EXPECT_GT(ListWalSegments(td.path()).size(), 4u);
  EXPECT_TRUE(
      SameStream(ReadStream(td.path(), nullptr), SealedOrder(stream, 5)));
}

TEST(WalTest, TruncateBelowUnlinksCoveredSegments) {
  TempDir td("trunc");
  WalWriter::Options opt;
  opt.max_segment_bytes = 256;
  opt.sync_dir = false;
  auto stream = MakeStream(200, 13);
  WalWriter w(td.path(), opt);
  AppendStream(&w, stream, 5);
  size_t before = ListWalSegments(td.path()).size();
  ASSERT_GT(before, 4u);

  // Truncate below the midpoint LSN: early segments go, the suffix (and
  // the active segment) stay, and the surviving log still chains.
  uint64_t mid = w.last_sealed_lsn() / 2;
  w.TruncateBelow(mid);
  size_t after = ListWalSegments(td.path()).size();
  EXPECT_LT(after, before);
  EXPECT_GE(w.stats().truncations, 1u);

  WalReader r(td.path());
  WalFrame f;
  uint64_t first_lsn = 0, last_lsn = 0, frames = 0;
  while (r.Next(&f)) {
    if (frames == 0) first_lsn = f.lsn;
    last_lsn = f.lsn;
    ++frames;
  }
  EXPECT_FALSE(r.saw_torn_tail());
  EXPECT_LE(first_lsn, mid + 1);  // nothing above the cover point was lost
  EXPECT_EQ(last_lsn, w.last_sealed_lsn());
  // Truncating everything never unlinks the active segment.
  w.TruncateBelow(w.last_sealed_lsn());
  EXPECT_GE(ListWalSegments(td.path()).size(), 1u);
}

// The acceptance-criteria test: chop the log at EVERY byte offset inside
// its final segment and assert (a) the reader reports a torn tail and
// yields exactly the frames wholly before the cut, (b) a reopened writer
// physically truncates back to the last *committed window* — a cut that
// lands between the frames of one window's group discards the whole group.
TEST(WalTest, TornTailDiscardedAtEveryCut) {
  TempDir pristine("tear_src");
  auto raw = MakeStream(30, 14);
  auto stream = SealedOrder(raw, 3);  // on-log update order
  {
    WalWriter w(pristine.path(), {});
    AppendStream(&w, raw, 3);  // 10 windows → 10+ frames
  }
  auto segments = ListWalSegments(pristine.path());
  ASSERT_EQ(segments.size(), 1u);
  struct stat st;
  ASSERT_EQ(::stat(segments[0].c_str(), &st), 0);
  const size_t file_size = static_cast<size_t>(st.st_size);

  // Frame boundaries, to compute how many updates survive a given cut.
  std::vector<size_t> frame_ends;
  std::vector<size_t> updates_at_end;  // cumulative updates at that boundary
  std::vector<bool> commit_at;         // frame carries the window-commit bit
  {
    WalReader r(pristine.path());
    WalFrame f;
    size_t off = 0, updates = 0;
    while (r.Next(&f)) {
      off += kWalHeaderBytes + f.payload.size() + kWalTrailerBytes;
      updates += f.tuple_count;
      frame_ends.push_back(off);
      updates_at_end.push_back(updates);
      commit_at.push_back(f.window_commit);
    }
    ASSERT_EQ(off, file_size);
    ASSERT_TRUE(commit_at.back());  // log ends on a committed window
  }

  for (size_t cut = 0; cut < file_size; ++cut) {
    TempDir td("tear");
    std::string seg_copy =
        td.path() + segments[0].substr(segments[0].find_last_of('/'));
    {
      std::string cmd = "head -c " + std::to_string(cut) + " " + segments[0] +
                        " > " + seg_copy;
      ASSERT_EQ(std::system(cmd.c_str()), 0);
    }
    size_t whole_frames = 0;
    while (whole_frames < frame_ends.size() &&
           frame_ends[whole_frames] <= cut) {
      ++whole_frames;
    }
    const size_t expect_updates =
        whole_frames == 0 ? 0 : updates_at_end[whole_frames - 1];
    // The writer resumes at the last committed frame among the whole ones;
    // trailing uncommitted frames of a half-sealed window are discarded.
    size_t commit_updates = 0, commit_end = 0;
    bool any_commit = false;
    for (size_t i = 0; i < whole_frames; ++i) {
      if (commit_at[i]) {
        any_commit = true;
        commit_updates = updates_at_end[i];
        commit_end = frame_ends[i];
      }
    }

    // Reader: only the torn suffix is discarded, every whole frame reads.
    WalReader r(td.path());
    WalFrame f;
    size_t read_updates = 0, read_frames = 0;
    while (r.Next(&f)) {
      ++read_frames;
      read_updates += f.tuple_count;
    }
    EXPECT_EQ(read_frames, whole_frames) << "cut=" << cut;
    EXPECT_EQ(read_updates, expect_updates) << "cut=" << cut;
    if (cut > (whole_frames == 0 ? 0 : frame_ends[whole_frames - 1])) {
      EXPECT_TRUE(r.saw_torn_tail()) << "cut=" << cut;
    }

    // Writer reopen: truncates to the last committed window and resumes
    // numbering there; the stream prefix survives bit-exact.
    WalWriter w(td.path(), {});
    EXPECT_EQ(w.next_update_index(), commit_updates) << "cut=" << cut;
    struct stat st2;
    if (::stat(seg_copy.c_str(), &st2) == 0) {
      EXPECT_TRUE(any_commit) << "cut=" << cut;
      EXPECT_EQ(static_cast<size_t>(st2.st_size), commit_end)
          << "cut=" << cut;
    } else {
      // No committed window survived the cut → whole segment unlinked.
      EXPECT_FALSE(any_commit) << "cut=" << cut;
    }
    std::vector<Update> expected(stream.begin(),
                                 stream.begin() +
                                     static_cast<long>(commit_updates));
    EXPECT_TRUE(SameStream(ReadStream(td.path(), nullptr), expected))
        << "cut=" << cut;
  }
}

TEST(WalTest, CrcCorruptionStopsReplay) {
  TempDir td("crc");
  auto raw = MakeStream(30, 15);
  auto stream = SealedOrder(raw, 3);  // on-log update order
  {
    WalWriter w(td.path(), {});
    AppendStream(&w, raw, 3);
  }
  auto segments = ListWalSegments(td.path());
  ASSERT_EQ(segments.size(), 1u);
  // Flip one payload byte in the middle of the file.
  FILE* fp = std::fopen(segments[0].c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 0, SEEK_END);
  long size = std::ftell(fp);
  std::fseek(fp, size / 2, SEEK_SET);
  int c = std::fgetc(fp);
  std::fseek(fp, size / 2, SEEK_SET);
  std::fputc(c ^ 0x40, fp);
  std::fclose(fp);

  WalReader r(td.path());
  WalFrame f;
  size_t updates = 0;
  while (r.Next(&f)) updates += f.tuple_count;
  EXPECT_TRUE(r.saw_torn_tail());
  EXPECT_GT(r.torn_bytes(), 0u);
  EXPECT_LT(updates, stream.size());  // corrupt frame and suffix dropped
  // The surviving prefix is still the true prefix.
  std::vector<Update> expected(stream.begin(), stream.begin() + updates);
  EXPECT_TRUE(SameStream(ReadStream(td.path(), nullptr), expected));
}

TEST(WalTest, InjectedAppendFaultRollsBackCleanly) {
  TempDir td("fault");
  WalWriter w(td.path(), {});
  w.Append<I64Ring>(0, Tuple::Ints({1}), 1);
  util::FailPointRegistry::Default().ArmNth("wal.append", 1);
  EXPECT_THROW(w.Seal(true), util::InjectedFault);
  // The throw rolled the segment back to the frame boundary and kept the
  // frame pending: a plain retry seals it.
  EXPECT_TRUE(w.HasPending());
  util::FailPointRegistry::Default().DisarmAll();
  w.Seal(true);
  EXPECT_FALSE(w.HasPending());
  auto back = ReadStream(td.path(), nullptr);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].key, 1);
  WalReader r(td.path());
  WalFrame f;
  while (r.Next(&f)) {
  }
  EXPECT_FALSE(r.saw_torn_tail());
}

TEST(WalTest, DropPendingSheds) {
  TempDir td("drop");
  WalWriter w(td.path(), {});
  w.Append<I64Ring>(0, Tuple::Ints({1}), 1);
  w.DropPending();
  EXPECT_FALSE(w.HasPending());
  EXPECT_EQ(w.Seal(true), 0u);  // nothing sealed
  EXPECT_EQ(w.stats().frames_written, 0u);
}

}  // namespace
}  // namespace fivm::durability
