// Equivalence of the batch execution subsystem with sequential per-tuple
// maintenance: randomized update streams (inserts, deletes, duplicate keys)
// applied through DeltaBatcher + ParallelExecutor at several batch sizes and
// thread counts must leave every materialized store content-equal to a
// reference engine fed one ApplyDelta per tuple. These tests are also the
// workload of the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/ml/cofactor.h"
#include "src/rings/regression_ring.h"
#include "src/rings/ring.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"
#include "src/workloads/twitter.h"

namespace fivm::exec {
namespace {

struct Update {
  int relation;
  Tuple key;
  int64_t multiplicity;  // +1 insert, -1 delete
};

/// A randomized stream over `query`'s relations: mostly inserts with
/// repeated keys (small key domain), plus deletes of previously inserted
/// tuples so zero-crossing tombstones occur on every path.
std::vector<Update> RandomStream(const Query& query, size_t n,
                                 int64_t key_domain, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Update> stream;
  stream.reserve(n);
  std::vector<std::vector<Tuple>> inserted(query.relation_count());
  for (size_t i = 0; i < n; ++i) {
    int r = static_cast<int>(rng.UniformInt(0, query.relation_count() - 1));
    bool can_delete = !inserted[r].empty();
    if (can_delete && rng.Bernoulli(0.25)) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inserted[r].size()) - 1));
      stream.push_back(Update{r, inserted[r][pick], -1});
      inserted[r][pick] = inserted[r].back();
      inserted[r].pop_back();
      continue;
    }
    Tuple t;
    for (size_t c = 0; c < query.relation(r).schema.size(); ++c) {
      t.Append(Value::Int(rng.UniformInt(0, key_domain)));
    }
    inserted[r].push_back(t);
    stream.push_back(Update{r, std::move(t), 1});
  }
  return stream;
}

/// Applies `stream` per tuple to `reference` and through a DeltaBatcher +
/// ParallelExecutor (batch `batch_size`, `threads` threads) to `batched`,
/// then asserts store equality.
template <typename Ring>
void CheckEquivalence(IvmEngine<Ring>& reference, IvmEngine<Ring>& batched,
                      const Query& query, const std::vector<Update>& stream,
                      size_t batch_size, size_t threads) {
  for (const Update& u : stream) {
    Relation<Ring> delta(query.relation(u.relation).schema);
    delta.Add(u.key, u.multiplicity > 0 ? Ring::One()
                                        : Ring::Neg(Ring::One()));
    reference.ApplyDelta(u.relation, std::move(delta));
  }

  ThreadPool pool(threads);
  // Pin the shard count so multi-shard execution is exercised regardless
  // of the machine's core count.
  ParallelExecutor<Ring> exec(&batched, &pool,
                              {.shards = threads});
  DeltaBatcher<Ring> batcher(&batched.plans(), batch_size);
  for (const Update& u : stream) {
    if (u.multiplicity > 0) {
      batcher.PushInsert(u.relation, u.key);
    } else {
      batcher.PushDelete(u.relation, u.key);
    }
    if (batcher.Full()) exec.Drain(batcher);
  }
  exec.Drain(batcher);

  EXPECT_TRUE(StoresContentEqual(reference, batched))
      << "batch_size=" << batch_size << " threads=" << threads;
}

// The paper's non-trivial 3-relation query R(A,B), S(A,C,E), T(C,D) under
// the A-(B, C-(D,E)) order: propagation paths with sibling joins at two
// levels. Exact I64 counting ring, so equality is bitwise.
class AcyclicFixture {
 public:
  AcyclicFixture() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    D = catalog.Intern("D");
    E = catalog.Intern("E");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{A, C, E});
    query.AddRelation("T", Schema{C, D});
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    std::string error;
    bool ok = vo.Finalize(query, &error);
    assert(ok);
    (void)ok;
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  VariableOrder vo;
};

TEST(ExecParallelTest, AcyclicCountEquivalenceAcrossBatchAndThreadSweep) {
  AcyclicFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  auto stream = RandomStream(f.query, 4000, 12, /*seed=*/17);

  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}, size_t{512}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      IvmEngine<I64Ring> reference(&tree, {});
      IvmEngine<I64Ring> batched(&tree, {});
      Database<I64Ring> empty = MakeDatabase<I64Ring>(f.query);
      reference.Initialize(empty);
      batched.Initialize(empty);
      CheckEquivalence(reference, batched, f.query, stream, batch_size,
                       threads);
    }
  }
}

TEST(ExecParallelTest, TriangleRegressionRingEquivalence) {
  // Cyclic triangle query with the degree-3 regression ring — the fig13
  // configuration. Integer-valued keys keep every aggregate exactly
  // representable, so parallel and sequential stores match bitwise.
  workloads::TwitterConfig cfg;
  cfg.nodes = 60;
  cfg.edges = 600;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  auto stream = RandomStream(query, 3000, 40, /*seed=*/23);

  for (size_t batch_size : {size_t{1}, size_t{100}, size_t{1000}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ViewTree tree(&query, &ds->vorder);
      tree.ComputeMaterialization({0, 1, 2});
      auto slots = tree.AssignAggregateSlots();
      IvmEngine<RegressionRing> reference(
          &tree, ml::RegressionLiftings(query, slots));
      IvmEngine<RegressionRing> batched(
          &tree, ml::RegressionLiftings(query, slots));
      Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
      reference.Initialize(empty);
      batched.Initialize(empty);
      CheckEquivalence(reference, batched, query, stream, batch_size,
                       threads);
    }
  }
}

TEST(ExecParallelTest, IndicatorTreesFallBackToSequential) {
  // With indicator projections, updates fire stateful support-count
  // maintenance; the executor must take the sequential path and still match
  // the reference.
  workloads::TwitterConfig cfg;
  cfg.nodes = 40;
  cfg.edges = 300;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  auto stream = RandomStream(query, 1500, 25, /*seed=*/5);

  ViewTree ref_tree(&query, &ds->vorder);
  ref_tree.AddIndicatorProjections();
  ref_tree.ComputeMaterialization({0, 1, 2});
  ViewTree par_tree(&query, &ds->vorder);
  par_tree.AddIndicatorProjections();
  par_tree.ComputeMaterialization({0, 1, 2});

  auto ref_slots = ref_tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> reference(
      &ref_tree, ml::RegressionLiftings(query, ref_slots));
  auto par_slots = par_tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> batched(
      &par_tree, ml::RegressionLiftings(query, par_slots));
  Database<RegressionRing> empty = MakeDatabase<RegressionRing>(query);
  reference.Initialize(empty);
  batched.Initialize(empty);

  for (const Update& u : stream) {
    Relation<RegressionRing> delta(query.relation(u.relation).schema);
    delta.Add(u.key, u.multiplicity > 0
                         ? RegressionRing::One()
                         : RegressionRing::Neg(RegressionRing::One()));
    reference.ApplyDelta(u.relation, std::move(delta));
  }

  ThreadPool pool(4);
  ParallelExecutor<RegressionRing> exec(&batched, &pool, {.shards = 4});
  DeltaBatcher<RegressionRing> batcher(&batched.plans(), 200);
  for (const Update& u : stream) {
    if (u.multiplicity > 0) {
      batcher.PushInsert(u.relation, u.key);
    } else {
      batcher.PushDelete(u.relation, u.key);
    }
    if (batcher.Full()) exec.Drain(batcher);
  }
  exec.Drain(batcher);

  // Store sets differ per tree instance but the trees are isomorphic;
  // compare the query results and per-node stores via the shared layout.
  EXPECT_TRUE(ContentEquals(reference.result(), batched.result()));
  for (size_t i = 0; i < ref_tree.nodes().size(); ++i) {
    int node = static_cast<int>(i);
    if (!ref_tree.node(node).materialized) continue;
    ASSERT_TRUE(par_tree.node(node).materialized);
    EXPECT_TRUE(ContentEquals(reference.store(node), batched.store(node)))
        << "store " << node;
  }
}

TEST(ExecParallelTest, DisconnectedQueryCartesianJoinEquivalence) {
  // Q = R(A,B) ⊗ S(C,D) with disjoint variables: the virtual root joins
  // the components as a Cartesian product, so the first sibling join of
  // every propagation path has an empty key and PropagationJoinKey must
  // fall back to the leaf's own schema (and never emit positions outside
  // it).
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B");
  VarId C = catalog.Intern("C"), D = catalog.Intern("D");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{C, D});
  VariableOrder vo;
  int a = vo.AddNode(A, -1);
  vo.AddNode(B, a);
  int c = vo.AddNode(C, -1);
  vo.AddNode(D, c);
  std::string error;
  ASSERT_TRUE(vo.Finalize(query, &error)) << error;

  ViewTree tree(&query, &vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> probe(&tree, {});
  for (int r = 0; r < query.relation_count(); ++r) {
    Schema key = probe.PropagationJoinKey(r);
    EXPECT_TRUE(
        tree.node(tree.LeafOfRelation(r)).out_schema.ContainsAll(key));
  }

  auto stream = RandomStream(query, 2000, 8, /*seed=*/41);
  IvmEngine<I64Ring> reference(&tree, {});
  IvmEngine<I64Ring> batched(&tree, {});
  Database<I64Ring> empty = MakeDatabase<I64Ring>(query);
  reference.Initialize(empty);
  batched.Initialize(empty);
  CheckEquivalence(reference, batched, query, stream, /*batch_size=*/256,
                   /*threads=*/4);
}

TEST(ExecParallelTest, PropagationJoinKeyAndPrewarmCoverTrianglePath) {
  workloads::TwitterConfig cfg;
  cfg.nodes = 30;
  cfg.edges = 200;
  auto ds = workloads::TwitterDataset::Generate(cfg);
  Query& query = *ds->query;
  ViewTree tree(&query, &ds->vorder);
  tree.ComputeMaterialization({0, 1, 2});
  auto slots = tree.AssignAggregateSlots();
  IvmEngine<RegressionRing> engine(&tree,
                                   ml::RegressionLiftings(query, slots));
  Database<RegressionRing> db = MakeDatabase<RegressionRing>(query);
  for (int r = 0; r < query.relation_count(); ++r) {
    for (const Tuple& t : ds->tuples[r]) {
      db[r].Add(t, RegressionRing::One());
    }
  }
  engine.Initialize(db);

  for (int r = 0; r < query.relation_count(); ++r) {
    Schema key = engine.PropagationJoinKey(r);
    EXPECT_FALSE(key.empty());
    // The partition key must be computable from the leaf's out-schema.
    const Schema& leaf =
        tree.node(tree.LeafOfRelation(r)).out_schema;
    EXPECT_TRUE(leaf.ContainsAll(key));
    engine.PrewarmPropagationIndexes(r);
  }
}

#if !defined(FIVM_FAILPOINTS_OFF)
TEST(ExecParallelTest, ShardTaskExceptionLeavesStoresUntouched) {
  // Exception propagation mid-batch: one worker task of a parallel
  // ApplyBatch throws (injected at the "exec.task" boundary). ThreadPool
  // rethrows only after the round's barrier, and every store delta — the
  // leaf's included — is staged until all tasks succeed, so the batch must
  // be all-or-nothing: engine stores bit-identical to before the failed
  // apply, and a retry of the same batch must land exactly the sequential
  // result (no partial merge, no double apply).
  AcyclicFixture f;
  ViewTree tree(&f.query, &f.vo);
  tree.MaterializeAll();
  IvmEngine<I64Ring> reference(&tree, {});
  IvmEngine<I64Ring> engine(&tree, {});
  Database<I64Ring> empty = MakeDatabase<I64Ring>(f.query);
  reference.Initialize(empty);
  engine.Initialize(empty);

  // Base fill through both engines (no faults armed).
  auto base = RandomStream(f.query, 1000, 12, /*seed=*/91);
  ThreadPool pool(4);
  ParallelExecutor<I64Ring> exec(&engine, &pool, {.shards = 4});
  DeltaBatcher<I64Ring> batcher(&engine.plans(), 256);
  for (const Update& u : base) {
    Relation<I64Ring> delta(f.query.relation(u.relation).schema);
    delta.Add(u.key,
              u.multiplicity > 0 ? I64Ring::One() : I64Ring::Neg(I64Ring::One()));
    reference.ApplyDelta(u.relation, delta);
    batcher.Push(u.relation, u.key, u.multiplicity);
    if (batcher.Full()) exec.Drain(batcher);
  }
  exec.Drain(batcher);
  ASSERT_TRUE(StoresContentEqual(reference, engine));

  // A batch wide enough for the parallel path (>= kMinParallelKeys
  // distinct keys across all 4 shards).
  Relation<I64Ring> batch(f.query.relation(0).schema);
  for (int64_t i = 0; i < 200; ++i) {
    Tuple t;
    t.Append(Value::Int(i % 15));
    t.Append(Value::Int(i));
    batch.Add(t, 1);
  }
  ASSERT_GE(batch.size(), ParallelExecutor<I64Ring>::kMinParallelKeys);

  // Pre-fault snapshot of every materialized store.
  std::vector<std::pair<int, Relation<I64Ring>>> before;
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    int node = static_cast<int>(i);
    if (!tree.node(node).materialized) continue;
    before.emplace_back(node, Relation<I64Ring>(engine.store(node)));
  }

  auto& fp = util::FailPointRegistry::Default();
  fp.ArmNth("exec.task", 1);  // first worker task of the next batch throws
  EXPECT_THROW(exec.ApplyBatch(0, Relation<I64Ring>(batch)),
               util::InjectedFault);
  fp.DisarmAll();
  EXPECT_EQ(fp.Stats("exec.task").fires, 1u);

  for (const auto& [node, rel] : before) {
    EXPECT_TRUE(ContentEquals(engine.store(node), rel))
        << "store " << node << " modified by a failed batch";
  }

  // Retrying the batch applies it exactly once, matching sequential.
  exec.ApplyBatch(0, Relation<I64Ring>(batch));
  reference.ApplyDelta(0, batch);
  EXPECT_TRUE(StoresContentEqual(reference, engine));
}
#endif  // !FIVM_FAILPOINTS_OFF

}  // namespace
}  // namespace fivm::exec
