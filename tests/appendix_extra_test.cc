// Remaining corner coverage: larger cyclic queries (the Appendix-B loop-4
// with chord), baseline initialization from non-empty databases, SQL parsing
// against the Retailer registry, and Value edge semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/recursive_ivm.h"
#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/sql/parser.h"
#include "src/util/rng.h"
#include "src/workloads/retailer.h"

namespace fivm {
namespace {

// Loop-4 query R(A,B), S(B,C), T(C,D), U(D,A): cyclic; the view tree over
// A-B-C-D gets indicator projections, and maintenance with them matches the
// plain engine under mixed updates.
TEST(AppendixBTest, Loop4IndicatorMaintenance) {
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
        C = catalog.Intern("C"), D = catalog.Intern("D");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{B, C});
  query.AddRelation("T", Schema{C, D});
  query.AddRelation("U", Schema{D, A});

  VariableOrder vo;
  int a = vo.AddNode(A, -1);
  int b = vo.AddNode(B, a);
  int c = vo.AddNode(C, b);
  vo.AddNode(D, c);
  std::string error;
  ASSERT_TRUE(vo.Finalize(query, &error)) << error;

  ViewTree plain(&query, &vo);
  plain.MaterializeAll();
  ViewTree indexed(&query, &vo);
  int added = indexed.AddIndicatorProjections();
  EXPECT_GE(added, 1);
  indexed.ComputeMaterialization({0, 1, 2, 3});

  IvmEngine<I64Ring> pe(&plain, LiftingMap<I64Ring>{});
  IvmEngine<I64Ring> ie(&indexed, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  pe.Initialize(db);
  ie.Initialize(db);

  util::Rng rng(1234);
  for (int step = 0; step < 150; ++step) {
    int rel = static_cast<int>(rng.Uniform(4));
    Relation<I64Ring> delta(query.relation(rel).schema);
    delta.Add(Tuple::Ints({rng.UniformInt(0, 3), rng.UniformInt(0, 3)}),
              rng.Bernoulli(0.3) ? -1 : 1);
    pe.ApplyDelta(rel, delta);
    ie.ApplyDelta(rel, delta);
    const int64_t* x = pe.result().Find(Tuple());
    const int64_t* y = ie.result().Find(Tuple());
    ASSERT_EQ(x ? *x : 0, y ? *y : 0) << "step " << step;
  }
}

// Loop-4 with a chord R(A,B), S(B,C), T(C,D), U(D,A), X(A,C): the chord
// participates in two triangles (Appendix B's Ql discussion); the whole
// hypergraph is cyclic and maintenance still matches.
TEST(AppendixBTest, Loop4WithChordMaintenance) {
  Catalog catalog;
  Query query(&catalog);
  VarId A = catalog.Intern("A"), B = catalog.Intern("B"),
        C = catalog.Intern("C"), D = catalog.Intern("D");
  query.AddRelation("R", Schema{A, B});
  query.AddRelation("S", Schema{B, C});
  query.AddRelation("T", Schema{C, D});
  query.AddRelation("U", Schema{D, A});
  query.AddRelation("X", Schema{A, C});

  VariableOrder vo;
  int a = vo.AddNode(A, -1);
  int b = vo.AddNode(B, a);
  int c = vo.AddNode(C, b);
  vo.AddNode(D, c);
  std::string error;
  ASSERT_TRUE(vo.Finalize(query, &error)) << error;

  ViewTree plain(&query, &vo);
  plain.MaterializeAll();
  ViewTree indexed(&query, &vo);
  indexed.AddIndicatorProjections();
  indexed.MaterializeAll();

  IvmEngine<I64Ring> pe(&plain, LiftingMap<I64Ring>{});
  IvmEngine<I64Ring> ie(&indexed, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  pe.Initialize(db);
  ie.Initialize(db);

  util::Rng rng(4321);
  for (int step = 0; step < 150; ++step) {
    int rel = static_cast<int>(rng.Uniform(5));
    Relation<I64Ring> delta(query.relation(rel).schema);
    delta.Add(Tuple::Ints({rng.UniformInt(0, 2), rng.UniformInt(0, 2)}),
              rng.Bernoulli(0.3) ? -1 : 1);
    pe.ApplyDelta(rel, delta);
    ie.ApplyDelta(rel, delta);
    const int64_t* x = pe.result().Find(Tuple());
    const int64_t* y = ie.result().Find(Tuple());
    ASSERT_EQ(x ? *x : 0, y ? *y : 0) << "step " << step;
  }
}

TEST(RecursiveIvmExtraTest, InitializeFromNonEmptyDatabase) {
  Catalog catalog;
  Query query(&catalog);
  VarId K = catalog.Intern("K"), X = catalog.Intern("X"),
        Y = catalog.Intern("Y");
  query.AddRelation("R", Schema{K, X});
  query.AddRelation("S", Schema{K, Y});

  LiftingMap<I64Ring> lifts;
  lifts.Set(X, [](const Value& v) { return v.AsInt(); });

  RecursiveIvm<I64Ring> dbt(&query, {0, 1});
  dbt.AddAggregate({lifts, {}});

  Database<I64Ring> db = MakeDatabase<I64Ring>(query);
  db[0].Add(Tuple::Ints({1, 5}), 1);
  db[0].Add(Tuple::Ints({2, 7}), 1);
  db[1].Add(Tuple::Ints({1, 0}), 2);
  dbt.Initialize(db);
  // SUM(X): K=1 joins twice (multiplicity 2): 5*2 = 10.
  EXPECT_EQ(*dbt.result().Find(Tuple()), 10);

  // Continue incrementally from the initialized state.
  Relation<I64Ring> ds(Schema{K, Y});
  ds.Add(Tuple::Ints({2, 3}), 1);
  dbt.ApplyDelta(1, ds);
  EXPECT_EQ(*dbt.result().Find(Tuple()), 17);
}

TEST(SqlRetailerTest, ParsesAggregatesOverRetailerSchema) {
  workloads::RetailerConfig cfg;
  cfg.inventory_rows = 10;
  cfg.locations = 2;
  cfg.dates = 2;
  cfg.products = 3;
  auto ds = workloads::RetailerDataset::Generate(cfg);

  sql::SchemaRegistry registry;
  for (const auto& rel : ds->query->relations()) {
    std::vector<std::string> attrs;
    for (VarId v : rel.schema) attrs.push_back(ds->catalog.NameOf(v));
    registry.Register(rel.name, attrs);
  }

  std::string error;
  auto parsed = sql::Parse(
      "SELECT locn, SUM(inventoryunits * prize) FROM Inventory NATURAL JOIN "
      "Item NATURAL JOIN Weather NATURAL JOIN Location NATURAL JOIN Census "
      "GROUP BY locn;",
      &ds->catalog, registry, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->query->relation_count(), 5);
  EXPECT_EQ(parsed->sum_terms.size(), 2u);
  EXPECT_TRUE(parsed->query->free_vars().Contains(ds->locn));

  // The parsed query runs end to end over the generated data.
  VariableOrder vo = VariableOrder::Auto(*parsed->query);
  ViewTree tree(parsed->query.get(), &vo);
  tree.MaterializeAll();
  IvmEngine<F64Ring> engine(&tree, sql::SumLiftings(*parsed));
  Database<F64Ring> db = MakeDatabase<F64Ring>(*parsed->query);
  for (int r = 0; r < 5; ++r) {
    int idx = parsed->query->RelationIndexByName(ds->query->relation(r).name);
    ASSERT_GE(idx, 0);
    for (const Tuple& t : ds->tuples[r]) {
      // Schemas in the parsed query may order attributes identically (the
      // registry preserved order), so tuples transfer directly.
      db[idx].Add(t, 1.0);
    }
  }
  engine.Initialize(db);
  EXPECT_EQ(engine.result().size(), 2u);  // one group per location
  engine.result().ForEach([](const Tuple&, const double& v) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  });
}

TEST(ValueEdgeTest, NegativeZeroAndLargeInts) {
  // -0.0 and 0.0 differ bitwise: they are distinct group-by keys, which is
  // deterministic (if surprising) — documented behavior.
  EXPECT_NE(Value::Double(-0.0), Value::Double(0.0));
  // Large int64 values survive round trips exactly.
  int64_t big = (int64_t{1} << 62) + 12345;
  EXPECT_EQ(Value::Int(big).AsInt(), big);
  // AsDouble on ints is the numeric value.
  EXPECT_DOUBLE_EQ(Value::Int(-7).AsDouble(), -7.0);
}

TEST(ValueEdgeTest, HashStableAcrossCopies) {
  Value v = Value::Double(3.25);
  Value w = v;
  EXPECT_EQ(v.Hash(), w.Hash());
  Tuple t{v, Value::Int(1)};
  Tuple u = t;
  EXPECT_EQ(t.Hash(), u.Hash());
}

}  // namespace
}  // namespace fivm
