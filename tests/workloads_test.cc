#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/view_tree.h"
#include "src/workloads/housing.h"
#include "src/workloads/retailer.h"
#include "src/workloads/stream.h"
#include "src/workloads/twitter.h"

namespace fivm::workloads {
namespace {

TEST(RetailerTest, SchemaHas43Attributes) {
  RetailerConfig cfg;
  cfg.inventory_rows = 100;
  cfg.locations = 5;
  cfg.dates = 10;
  cfg.products = 20;
  auto ds = RetailerDataset::Generate(cfg);
  EXPECT_EQ(ds->AttributeCount(), 43);
  EXPECT_EQ(ds->query->relation_count(), 5);
  EXPECT_EQ(ds->query->relation(ds->inventory).schema.size(), 4u);
  EXPECT_EQ(ds->query->relation(ds->location).schema.size(), 15u);
  EXPECT_EQ(ds->query->relation(ds->census).schema.size(), 16u);
  EXPECT_EQ(ds->query->relation(ds->item).schema.size(), 5u);
  EXPECT_EQ(ds->query->relation(ds->weather).schema.size(), 8u);
}

TEST(RetailerTest, VariableOrderValidAndComposed) {
  RetailerConfig cfg;
  cfg.inventory_rows = 10;
  cfg.locations = 3;
  cfg.dates = 4;
  cfg.products = 5;
  auto ds = RetailerDataset::Generate(cfg);
  EXPECT_TRUE(ds->vorder.finalized());

  // The paper's view tree for Retailer has 9 views: 5 over the input
  // relations, 3 intermediate (locn, dateid, ksn... zip), 1 root. With
  // chain composition our tree has 9 view nodes + 5 leaves.
  ViewTree tree(ds->query.get(), &ds->vorder);
  int views = 0;
  for (const auto& n : tree.nodes()) {
    if (n.relation < 0) ++views;
  }
  EXPECT_EQ(views, 9);
}

TEST(RetailerTest, JoinIsNonEmpty) {
  RetailerConfig cfg;
  cfg.inventory_rows = 500;
  cfg.locations = 5;
  cfg.dates = 10;
  cfg.products = 20;
  auto ds = RetailerDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(*ds->query);
  for (int r = 0; r < 5; ++r) {
    for (const Tuple& t : ds->tuples[r]) db[r].Add(t, 1);
  }
  engine.Initialize(db);
  ASSERT_EQ(engine.result().size(), 1u);
  // Every Inventory row joins with exactly one row of each dimension, so
  // the join count equals the Inventory multiset size.
  EXPECT_EQ(*engine.result().Find(Tuple()),
            static_cast<int64_t>(cfg.inventory_rows));
}

TEST(HousingTest, SchemaHas27Attributes) {
  HousingConfig cfg;
  cfg.postcodes = 10;
  auto ds = HousingDataset::Generate(cfg);
  EXPECT_EQ(ds->AttributeCount(), 27);
  EXPECT_EQ(ds->query->relation_count(), 6);
}

TEST(HousingTest, ScaleGrowsJoinCubically) {
  // Join count per postcode = scale^3 (House x Shop x Restaurant) with the
  // three singleton relations contributing factor 1.
  for (int scale : {1, 2, 3}) {
    HousingConfig cfg;
    cfg.postcodes = 20;
    cfg.scale = scale;
    auto ds = HousingDataset::Generate(cfg);

    ViewTree tree(ds->query.get(), &ds->vorder);
    tree.MaterializeAll();
    IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(*ds->query);
    for (int r = 0; r < 6; ++r) {
      for (const Tuple& t : ds->tuples[r]) db[r].Add(t, 1);
    }
    engine.Initialize(db);
    int64_t expected = static_cast<int64_t>(cfg.postcodes) * scale * scale *
                       static_cast<int64_t>(scale);
    EXPECT_EQ(*engine.result().Find(Tuple()), expected) << "scale " << scale;
  }
}

TEST(HousingTest, TotalTuplesScaleRoughlyLinearly) {
  HousingConfig cfg;
  cfg.postcodes = 100;
  cfg.scale = 1;
  auto s1 = HousingDataset::Generate(cfg);
  cfg.scale = 4;
  auto s4 = HousingDataset::Generate(cfg);
  size_t t1 = 0, t4 = 0;
  for (const auto& rel : s1->tuples) t1 += rel.size();
  for (const auto& rel : s4->tuples) t4 += rel.size();
  // scale 1: 6 rows/postcode; scale 4: 3*4+3 = 15 rows/postcode.
  EXPECT_EQ(t1, 600u);
  EXPECT_EQ(t4, 1500u);
}

TEST(TwitterTest, EdgesSplitEvenly) {
  TwitterConfig cfg;
  cfg.nodes = 100;
  cfg.edges = 3000;
  auto ds = TwitterDataset::Generate(cfg);
  EXPECT_EQ(ds->tuples[0].size(), 1000u);
  EXPECT_EQ(ds->tuples[1].size(), 1000u);
  EXPECT_EQ(ds->tuples[2].size(), 1000u);
}

TEST(TwitterTest, TriangleCountMatchesNaive) {
  TwitterConfig cfg;
  cfg.nodes = 30;
  cfg.edges = 300;
  auto ds = TwitterDataset::Generate(cfg);

  ViewTree tree(ds->query.get(), &ds->vorder);
  tree.MaterializeAll();
  IvmEngine<I64Ring> engine(&tree, LiftingMap<I64Ring>{});
  Database<I64Ring> db = MakeDatabase<I64Ring>(*ds->query);
  for (int r = 0; r < 3; ++r) {
    for (const Tuple& t : ds->tuples[r]) db[r].Add(t, 1);
  }
  engine.Initialize(db);

  // Naive triangle count with multiplicities.
  int64_t expected = 0;
  db[0].ForEach([&](const Tuple& rab, const int64_t& m1) {
    db[1].ForEach([&](const Tuple& sbc, const int64_t& m2) {
      if (rab[1] != sbc[0]) return;
      db[2].ForEach([&](const Tuple& tca, const int64_t& m3) {
        if (sbc[1] == tca[0] && tca[1] == rab[0]) expected += m1 * m2 * m3;
      });
    });
  });
  const int64_t* got = engine.result().Find(Tuple());
  EXPECT_EQ(got ? *got : 0, expected);
}

TEST(StreamTest, RoundRobinInterleavesBatches) {
  std::vector<std::vector<Tuple>> rels(2);
  for (int64_t i = 0; i < 5; ++i) rels[0].push_back(Tuple::Ints({i}));
  for (int64_t i = 0; i < 3; ++i) rels[1].push_back(Tuple::Ints({100 + i}));
  auto stream = UpdateStream::RoundRobin(rels, 2);

  // Batches: R0[0,1], R1[100,101], R0[2,3], R1[102], R0[4].
  ASSERT_EQ(stream.batches().size(), 5u);
  EXPECT_EQ(stream.batches()[0].relation, 0);
  EXPECT_EQ(stream.batches()[1].relation, 1);
  EXPECT_EQ(stream.batches()[2].relation, 0);
  EXPECT_EQ(stream.batches()[3].relation, 1);
  EXPECT_EQ(stream.batches()[3].tuples.size(), 1u);
  EXPECT_EQ(stream.batches()[4].relation, 0);
  EXPECT_EQ(stream.total_tuples(), 8u);
}

TEST(StreamTest, SingleRelationStream) {
  std::vector<Tuple> tuples;
  for (int64_t i = 0; i < 10; ++i) tuples.push_back(Tuple::Ints({i}));
  auto stream = UpdateStream::SingleRelation(2, tuples, 4);
  ASSERT_EQ(stream.batches().size(), 3u);
  for (const auto& b : stream.batches()) EXPECT_EQ(b.relation, 2);
}

TEST(StreamTest, RebatchedPreservesOrderAndCutsAtRelationChanges) {
  std::vector<std::vector<Tuple>> rels(2);
  for (int64_t i = 0; i < 5; ++i) rels[0].push_back(Tuple::Ints({i}));
  for (int64_t i = 0; i < 3; ++i) rels[1].push_back(Tuple::Ints({100 + i}));
  auto stream = UpdateStream::RoundRobin(rels, 2);

  // Tuple-granular: one batch per tuple, same order as the source.
  auto per_tuple = stream.Rebatched(1);
  ASSERT_EQ(per_tuple.batches().size(), 8u);
  EXPECT_EQ(per_tuple.total_tuples(), 8u);
  EXPECT_EQ(per_tuple.batches()[0].tuples[0], Tuple::Ints({0}));
  EXPECT_EQ(per_tuple.batches()[2].relation, 1);
  EXPECT_EQ(per_tuple.batches()[2].tuples[0], Tuple::Ints({100}));

  // Growing the granularity merges adjacent same-relation batches but
  // never crosses a relation change: R0[0,1], R1[100,101], R0[2,3],
  // R1[102], R0[4] regrouped at 3 → R0[0,1], R1[100,101], R0[2,3],
  // R1[102], R0[4] (source batches of 2 can only merge up to the cut).
  auto coarser = stream.Rebatched(3);
  size_t tuples = 0;
  int prev_relation = -1;
  for (size_t i = 0; i < coarser.batches().size(); ++i) {
    const auto& b = coarser.batches()[i];
    EXPECT_LE(b.tuples.size(), 3u);
    if (static_cast<int>(i) > 0 && b.relation == prev_relation) {
      // A same-relation successor only exists when the previous batch
      // was full.
      EXPECT_EQ(coarser.batches()[i - 1].tuples.size(), 3u);
    }
    prev_relation = b.relation;
    tuples += b.tuples.size();
  }
  EXPECT_EQ(tuples, 8u);

  // batch_size 0 is clamped to 1 instead of looping forever.
  EXPECT_EQ(stream.Rebatched(0).batches().size(), 8u);
}

TEST(StreamTest, AdversarialSkewIsDeterministic) {
  UpdateStream::SkewConfig cfg;
  cfg.nodes = 100;
  cfg.updates = 5000;
  cfg.batch_size = 128;
  cfg.burst = 32;
  cfg.theta = 1.3;
  cfg.churn = 0.4;
  cfg.seed = 42;

  auto a = UpdateStream::AdversarialSkew(cfg);
  auto b = UpdateStream::AdversarialSkew(cfg);
  ASSERT_EQ(a.batches().size(), b.batches().size());
  ASSERT_EQ(a.total_tuples(), cfg.updates);
  for (size_t i = 0; i < a.batches().size(); ++i) {
    const auto& ba = a.batches()[i];
    const auto& bb = b.batches()[i];
    ASSERT_EQ(ba.relation, bb.relation) << "batch " << i;
    ASSERT_EQ(ba.tuples, bb.tuples) << "batch " << i;
    ASSERT_EQ(ba.signs, bb.signs) << "batch " << i;
    ASSERT_EQ(ba.signs.size(), ba.tuples.size()) << "batch " << i;
  }

  // A different seed reorders the stream.
  cfg.seed = 43;
  auto c = UpdateStream::AdversarialSkew(cfg);
  bool differs = c.batches().size() != a.batches().size();
  for (size_t i = 0; !differs && i < a.batches().size(); ++i) {
    differs = a.batches()[i].tuples != c.batches()[i].tuples ||
              a.batches()[i].signs != c.batches()[i].signs;
  }
  EXPECT_TRUE(differs);
}

TEST(StreamTest, AdversarialSkewMixesChurnAndRelations) {
  UpdateStream::SkewConfig cfg;
  cfg.nodes = 50;
  cfg.updates = 4000;
  cfg.theta = 1.2;
  cfg.churn = 0.5;
  cfg.seed = 7;

  auto stream = UpdateStream::AdversarialSkew(cfg);
  size_t inserts = 0, deletes = 0;
  std::array<size_t, 3> per_relation{};
  for (const auto& b : stream.batches()) {
    ASSERT_GE(b.relation, 0);
    ASSERT_LT(b.relation, 3);
    for (size_t i = 0; i < b.tuples.size(); ++i) {
      ASSERT_EQ(b.tuples[i].size(), 2u);
      if (b.signs[i] >= 0) {
        ++inserts;
      } else {
        ++deletes;
      }
      ++per_relation[static_cast<size_t>(b.relation)];
    }
  }
  EXPECT_EQ(inserts + deletes, cfg.updates);
  // Churn = 0.5 with warm pools: a healthy share of both kinds.
  EXPECT_GT(deletes, cfg.updates / 5);
  EXPECT_GT(inserts, cfg.updates / 5);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_GT(per_relation[r], 0u) << "relation " << r << " never updated";
  }
}

TEST(StreamTest, RebatchedPreservesSigns) {
  UpdateStream::SkewConfig cfg;
  cfg.nodes = 30;
  cfg.updates = 1000;
  cfg.batch_size = 100;
  cfg.churn = 0.5;
  cfg.seed = 5;
  auto stream = UpdateStream::AdversarialSkew(cfg);

  auto fine = stream.Rebatched(1);
  // Flatten both streams into (relation, tuple, sign) event sequences;
  // rebatching must preserve the exact event order.
  auto flatten = [](const UpdateStream& s) {
    std::vector<std::tuple<int, Tuple, int8_t>> out;
    for (const auto& b : s.batches()) {
      for (size_t i = 0; i < b.tuples.size(); ++i) {
        int8_t sign = b.signs.empty() ? int8_t{1} : b.signs[i];
        out.emplace_back(b.relation, b.tuples[i], sign);
      }
    }
    return out;
  };
  EXPECT_EQ(flatten(stream), flatten(fine));
  EXPECT_EQ(flatten(stream), flatten(stream.Rebatched(37)));
}

TEST(StreamTest, ToDeltaAggregatesDuplicates) {
  Catalog catalog;
  Query query(&catalog);
  query.AddRelation("R", catalog.MakeSchema({"A"}));
  UpdateStream::Batch batch;
  batch.relation = 0;
  batch.tuples.push_back(Tuple::Ints({1}));
  batch.tuples.push_back(Tuple::Ints({1}));
  batch.tuples.push_back(Tuple::Ints({2}));
  auto delta = UpdateStream::ToDelta<I64Ring>(query, batch);
  EXPECT_EQ(*delta.Find(Tuple::Ints({1})), 2);
  EXPECT_EQ(*delta.Find(Tuple::Ints({2})), 1);
}

}  // namespace
}  // namespace fivm::workloads
