#include "src/core/variable_order.h"

#include <gtest/gtest.h>

#include "src/core/query.h"
#include "src/data/catalog.h"

namespace fivm {
namespace {

// The running example of the paper: R(A,B), S(A,C,E), T(C,D).
struct PaperQuery {
  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C, D, E;
  int r, s, t;

  PaperQuery() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    D = catalog.Intern("D");
    E = catalog.Intern("E");
    r = query.AddRelation("R", Schema{A, B});
    s = query.AddRelation("S", Schema{A, C, E});
    t = query.AddRelation("T", Schema{C, D});
  }

  // Figure 2a: A - {B, C - {D, E}}.
  VariableOrder Figure2a() const {
    VariableOrder vo;
    int a = vo.AddNode(A, -1);
    vo.AddNode(B, a);
    int c = vo.AddNode(C, a);
    vo.AddNode(D, c);
    vo.AddNode(E, c);
    return vo;
  }
};

TEST(VariableOrderTest, Figure2aValidates) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
}

TEST(VariableOrderTest, Figure2aDepSets) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;

  // dep(A)=∅, dep(B)={A}, dep(C)={A}, dep(D)={C}, dep(E)={A,C} (Fig. 2a).
  EXPECT_TRUE(vo.node(vo.node_of_var(pq.A)).dep.empty());
  EXPECT_TRUE(vo.node(vo.node_of_var(pq.B)).dep.SameSet(Schema{pq.A}));
  EXPECT_TRUE(vo.node(vo.node_of_var(pq.C)).dep.SameSet(Schema{pq.A}));
  EXPECT_TRUE(vo.node(vo.node_of_var(pq.D)).dep.SameSet(Schema{pq.C}));
  EXPECT_TRUE(
      vo.node(vo.node_of_var(pq.E)).dep.SameSet(Schema{pq.A, pq.C}));
}

TEST(VariableOrderTest, RelationsAnchoredAtLowestVariable) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;

  // R(A,B) under B; S(A,C,E) under E; T(C,D) under D.
  auto anchored = [&](VarId v) {
    return vo.node(vo.node_of_var(v)).relations;
  };
  ASSERT_EQ(anchored(pq.B).size(), 1u);
  EXPECT_EQ(anchored(pq.B)[0], pq.r);
  ASSERT_EQ(anchored(pq.E).size(), 1u);
  EXPECT_EQ(anchored(pq.E)[0], pq.s);
  ASSERT_EQ(anchored(pq.D).size(), 1u);
  EXPECT_EQ(anchored(pq.D)[0], pq.t);
}

TEST(VariableOrderTest, RejectsRelationAcrossBranches) {
  PaperQuery pq;
  // Put C in a separate branch from E: S(A,C,E) then spans two branches.
  VariableOrder vo;
  int a = vo.AddNode(pq.A, -1);
  vo.AddNode(pq.B, a);
  int c = vo.AddNode(pq.C, a);
  vo.AddNode(pq.D, c);
  vo.AddNode(pq.E, a);  // E not under C → S's vars not on one path
  std::string error;
  EXPECT_FALSE(vo.Finalize(pq.query, &error));
  EXPECT_NE(error.find("S"), std::string::npos);
}

TEST(VariableOrderTest, RejectsMissingVariable) {
  PaperQuery pq;
  VariableOrder vo;
  int a = vo.AddNode(pq.A, -1);
  vo.AddNode(pq.B, a);
  std::string error;
  EXPECT_FALSE(vo.Finalize(pq.query, &error));
}

TEST(VariableOrderTest, RejectsDuplicateVariable) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  vo.AddNode(pq.B, vo.node_of_var(pq.E));
  std::string error;
  EXPECT_FALSE(vo.Finalize(pq.query, &error));
}

TEST(VariableOrderTest, SubtreeVarsAndRelations) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  const auto& c_node = vo.node(vo.node_of_var(pq.C));
  EXPECT_TRUE(c_node.subtree_vars.SameSet(Schema{pq.C, pq.D, pq.E}));
  EXPECT_EQ(c_node.subtree_relations.size(), 2u);  // S and T
  const auto& a_node = vo.node(vo.node_of_var(pq.A));
  EXPECT_EQ(a_node.subtree_relations.size(), 3u);
}

TEST(VariableOrderTest, AutoProducesValidOrder) {
  PaperQuery pq;
  VariableOrder vo = VariableOrder::Auto(pq.query);
  EXPECT_TRUE(vo.finalized());
  EXPECT_EQ(vo.nodes().size(), 5u);
}

TEST(VariableOrderTest, AutoPutsFreeVarsOnTop) {
  PaperQuery pq;
  pq.query.SetFreeVars(Schema{pq.A, pq.C});
  VariableOrder vo = VariableOrder::Auto(pq.query);
  // Every free variable node must have only free ancestors.
  for (const auto& n : vo.nodes()) {
    if (!pq.query.free_vars().Contains(n.var)) continue;
    int anc = n.parent;
    while (anc >= 0) {
      EXPECT_TRUE(pq.query.free_vars().Contains(vo.node(anc).var))
          << "bound ancestor above free var";
      anc = vo.node(anc).parent;
    }
  }
}

TEST(VariableOrderTest, AutoHandlesDisconnectedQuery) {
  Catalog catalog;
  Query q(&catalog);
  q.AddRelation("R", catalog.MakeSchema({"A", "B"}));
  q.AddRelation("S", catalog.MakeSchema({"X", "Y"}));
  VariableOrder vo = VariableOrder::Auto(q);
  EXPECT_TRUE(vo.finalized());
  EXPECT_EQ(vo.roots().size(), 2u);
}

TEST(VariableOrderTest, ChainBuilder) {
  PaperQuery pq;
  VariableOrder vo =
      VariableOrder::Chain({pq.A, pq.C, pq.B, pq.D, pq.E});
  std::string error;
  // A-C-B-D-E: R(A,B) has A,B on the path ✓; S(A,C,E) ✓; T(C,D) ✓.
  EXPECT_TRUE(vo.Finalize(pq.query, &error)) << error;
}

TEST(VariableOrderTest, TopDownVisitsParentsFirst) {
  PaperQuery pq;
  VariableOrder vo = pq.Figure2a();
  std::string error;
  ASSERT_TRUE(vo.Finalize(pq.query, &error)) << error;
  auto order = vo.TopDown();
  std::vector<bool> seen(vo.nodes().size(), false);
  for (int n : order) {
    if (vo.node(n).parent >= 0) {
      EXPECT_TRUE(seen[vo.node(n).parent]);
    }
    seen[n] = true;
  }
}

}  // namespace
}  // namespace fivm
