// IngestService semantics: admission policies (block/shed/drop, counted),
// flush-by-size and flush-by-deadline triggers, graceful degradation under a
// visibility SLO, supervised retry of injected faults, and the clean-shutdown
// drain. Chaos sweeps (randomized faults + differential checks) live in
// ingest_chaos_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/ingest/ingest_service.h"
#include "src/rings/ring.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"

namespace fivm::ingest {
namespace {

using Rel = Relation<I64Ring>;

/// Q(A) = Σ_{B,C} R(A,B) ⋈ S(B,C) with the full service pipeline behind it:
/// pool → executor → batcher → snapshot server → ingest service.
struct Pipeline {
  explicit Pipeline(ServiceOptions opts = {}, bool with_server = true) {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
    pool.emplace(2);
    executor.emplace(&*engine, &*pool,
                     typename exec::ParallelExecutor<I64Ring>::Options{
                         .shards = 2});
    batcher.emplace(&engine->plans(), /*capacity=*/0);
    if (with_server) server.emplace(&*engine);
    service.emplace(&*engine, &*executor, &*batcher,
                    with_server ? &*server : nullptr, opts);
  }

  /// Reference result of applying `updates` (relation, x, y, mult) to a
  /// fresh engine sequentially.
  Rel ReferenceResult(
      const std::vector<std::tuple<int, int64_t, int64_t, int64_t>>& updates) {
    IvmEngine<I64Ring> ref(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    ref.Initialize(db);
    for (auto [r, x, y, m] : updates) {
      Rel delta(query.relation(r).schema);
      delta.Add(Tuple::Ints({x, y}), m);
      ref.ApplyDelta(r, std::move(delta));
    }
    return Rel(ref.result());
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
  std::optional<exec::ThreadPool> pool;
  std::optional<exec::ParallelExecutor<I64Ring>> executor;
  std::optional<exec::DeltaBatcher<I64Ring>> batcher;
  std::optional<serve::SnapshotServer<I64Ring>> server;
  std::optional<IngestService<I64Ring>> service;
};

TEST(IngestServiceTest, ThreadedServiceDrainsEverythingOnStop) {
  Pipeline p;
  std::vector<std::tuple<int, int64_t, int64_t, int64_t>> updates;
  for (int64_t i = 0; i < 500; ++i) {
    updates.emplace_back(0, i % 40, i % 7, 1);
    updates.emplace_back(1, i % 7, i % 11, 1);
  }
  p.service->Start();
  for (auto [r, x, y, m] : updates) {
    ASSERT_TRUE(p.service->Offer(r, Tuple::Ints({x, y}), m));
  }
  p.service->Stop();

  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.admitted, updates.size());
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_EQ(p.service->queue_depth(), 0u);

  // Everything admitted is applied AND published.
  Rel expect = p.ReferenceResult(updates);
  EXPECT_TRUE(ContentEquals(p.engine->result(), expect));
  auto snap = p.server->Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), expect));
}

TEST(IngestServiceTest, FlushBySizeTriggersAtEffectiveWindow) {
  ServiceOptions opts;
  opts.flush_updates = 64;
  opts.flush_deadline = std::chrono::microseconds(1000000);  // effectively off
  Pipeline p(opts);
  for (int64_t i = 0; i < 63; ++i) {
    p.service->Offer(0, Tuple::Ints({i, i % 5}), 1);
  }
  EXPECT_FALSE(p.service->PumpOnce());  // below the window, deadline far away
  EXPECT_EQ(p.service->GetStats().flushes, 0u);

  p.service->Offer(0, Tuple::Ints({63, 3}), 1);
  EXPECT_TRUE(p.service->PumpOnce());
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(p.engine->result().size(), 0u);  // no S rows yet: empty join
  // An empty root delta stages nothing, so the per-batch publish no-ops.
  EXPECT_EQ(p.server->PublishCount(), 0u);
}

TEST(IngestServiceTest, FlushByDeadlineTriggersOnAge) {
  ServiceOptions opts;
  opts.flush_updates = 1 << 20;  // size trigger effectively off
  opts.flush_deadline = std::chrono::microseconds(2000);
  Pipeline p(opts);
  p.service->Offer(0, Tuple::Ints({1, 2}), 1);
  p.service->Offer(1, Tuple::Ints({2, 9}), 1);
  EXPECT_FALSE(p.service->PumpOnce());  // too young
  std::this_thread::sleep_for(std::chrono::milliseconds(4));
  EXPECT_TRUE(p.service->PumpOnce());
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.deadline_flushes, 1u);
  auto snap = p.server->Acquire();
  // The flush emitted one batch per touched relation; only the S batch
  // produced a non-empty root delta (the R batch joined against an empty S),
  // so exactly one publish created a version.
  EXPECT_EQ(snap.seq(), 1u);
  int64_t out = 0;
  EXPECT_TRUE(snap.Lookup(Tuple::Ints({1}), &out));
  EXPECT_EQ(out, 1);
}

TEST(IngestServiceTest, ShedNewestRejectsWhenQueueFull) {
  ServiceOptions opts;
  opts.default_queue = {AdmissionPolicy::kShedNewest, /*capacity=*/8};
  Pipeline p(opts);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(p.service->Offer(0, Tuple::Ints({i, 0}), 1));
  }
  EXPECT_FALSE(p.service->Offer(0, Tuple::Ints({99, 0}), 1));  // shed
  EXPECT_TRUE(p.service->Offer(1, Tuple::Ints({0, 0}), 1));  // other queue
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.admitted, 9u);
  EXPECT_EQ(stats.shed, 1u);

  p.service->DrainNow();
  // The shed update is not in the engine: only keys 0..7 are live in R.
  EXPECT_EQ(p.engine->store(p.tree->LeafOfRelation(0)).size(), 8u);
}

TEST(IngestServiceTest, DropOldestEvictsQueueHead) {
  ServiceOptions opts;
  opts.default_queue = {AdmissionPolicy::kDropOldest, /*capacity=*/4};
  Pipeline p(opts);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(p.service->Offer(0, Tuple::Ints({i, 0}), 1));
  }
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.admitted, 10u);
  EXPECT_EQ(stats.dropped, 6u);

  p.service->DrainNow();
  // The four newest (6..9) survived.
  const Rel& store = p.engine->store(p.tree->LeafOfRelation(0));
  EXPECT_EQ(store.size(), 4u);
  EXPECT_NE(store.Find(Tuple::Ints({9, 0})), nullptr);
  EXPECT_EQ(store.Find(Tuple::Ints({0, 0})), nullptr);
}

TEST(IngestServiceTest, BlockBackpressuresProducerUntilDrained) {
  ServiceOptions opts;
  opts.default_queue = {AdmissionPolicy::kBlock, /*capacity=*/16};
  opts.flush_updates = 8;
  Pipeline p(opts);
  p.service->Start();
  std::atomic<int> offered{0};
  std::thread producer([&] {
    for (int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(p.service->Offer(0, Tuple::Ints({i % 50, i % 7}), 1));
      offered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  producer.join();
  p.service->Stop();
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.admitted, 2000u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  // With capacity 16 and a 2000-update burst the producer must have hit
  // backpressure at least once.
  EXPECT_GT(stats.blocks, 0u);
  // Nothing lost: total multiplicity in the leaf store equals offers.
  const Rel& store = p.engine->store(p.tree->LeafOfRelation(0));
  int64_t total = 0;
  store.ForEach([&](const Tuple&, const int64_t& m) { total += m; });
  EXPECT_EQ(total, 2000);
}

TEST(IngestServiceTest, OffersAfterStopAreShedNotLost) {
  Pipeline p;
  p.service->Start();
  ASSERT_TRUE(p.service->Offer(0, Tuple::Ints({1, 1}), 1));
  p.service->Stop();
  EXPECT_FALSE(p.service->Offer(0, Tuple::Ints({2, 2}), 1));
  EXPECT_EQ(p.service->GetStats().shed, 1u);
  EXPECT_EQ(p.engine->store(p.tree->LeafOfRelation(0)).size(), 1u);
}

TEST(IngestServiceTest, SustainedSloViolationWidensWindowThenRecovers) {
  ServiceOptions opts;
  opts.flush_updates = 4;
  opts.visibility_slo = std::chrono::microseconds(1);  // impossible SLO
  opts.slo_window = 4;
  opts.max_degrade_level = 2;
  Pipeline p(opts);

  int64_t next = 0;
  auto offer_window = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      p.service->Offer(0, Tuple::Ints({next++ % 64, 0}), 1);
    }
  };
  // 8 flushes violating the 1µs SLO: degrade at each 4-flush window edge.
  for (int w = 0; w < 8; ++w) {
    offer_window(p.service->EffectiveFlushUpdates());
    ASSERT_TRUE(p.service->PumpOnce());
  }
  EXPECT_EQ(p.service->degrade_level(), 2u);  // capped at max_degrade_level
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.degrade_enters, 2u);
  // The effective window doubled per level.
  EXPECT_EQ(p.service->EffectiveFlushUpdates(), 16u);

  // Clean windows (generous SLO) narrow it back one level per window.
  p.service.emplace(&*p.engine, &*p.executor, &*p.batcher, &*p.server, opts);
  EXPECT_EQ(p.service->degrade_level(), 0u);
}

TEST(IngestServiceTest, DegradationRecoversAfterCleanWindows) {
  // Violation is measured against real visibility latency, so an SLO of
  // 50ms is violated by aging the window 60ms before pumping and met by
  // pumping immediately — enter and exit on one service instance.
  ServiceOptions opts;
  opts.flush_updates = 2;
  opts.visibility_slo = std::chrono::milliseconds(50);
  opts.slo_window = 2;
  opts.max_degrade_level = 1;
  Pipeline p(opts);
  int64_t next = 0;
  for (int w = 0; w < 2; ++w) {  // two violating flushes: degrade
    p.service->Offer(0, Tuple::Ints({next++, 0}), 1);
    p.service->Offer(0, Tuple::Ints({next++, 0}), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(p.service->PumpOnce(true));
  }
  ASSERT_EQ(p.service->degrade_level(), 1u);
  ASSERT_EQ(p.service->GetStats().degrade_enters, 1u);

  for (int w = 0; w < 2; ++w) {  // two clean flushes: recover
    p.service->Offer(0, Tuple::Ints({next++, 0}), 1);
    p.service->Offer(0, Tuple::Ints({next++, 0}), 1);
    ASSERT_TRUE(p.service->PumpOnce(true));
  }
  EXPECT_EQ(p.service->degrade_level(), 0u);
  EXPECT_EQ(p.service->GetStats().degrade_exits, 1u);
}

TEST(IngestServiceTest, WorksWithoutSnapshotServer) {
  Pipeline p(ServiceOptions{}, /*with_server=*/false);
  for (int64_t i = 0; i < 100; ++i) {
    p.service->Offer(0, Tuple::Ints({i % 10, i % 5}), 1);
    p.service->Offer(1, Tuple::Ints({i % 5, i % 3}), 1);
  }
  p.service->DrainNow();
  std::vector<std::tuple<int, int64_t, int64_t, int64_t>> updates;
  for (int64_t i = 0; i < 100; ++i) {
    updates.emplace_back(0, i % 10, i % 5, 1);
    updates.emplace_back(1, i % 5, i % 3, 1);
  }
  EXPECT_TRUE(ContentEquals(p.engine->result(), p.ReferenceResult(updates)));
}

#if !defined(FIVM_FAILPOINTS_OFF)
TEST(IngestServiceTest, SupervisorRetriesInjectedFaultsToCompletion) {
  // Every supervised boundary fails a few times; the service must retry
  // through all of them and land exactly the reference state.
  ServiceOptions opts;
  opts.flush_updates = 96;
  opts.retry_backoff = std::chrono::microseconds(1);
  Pipeline p(opts);
  auto& fp = util::FailPointRegistry::Default();
  fp.Arm("batcher.flush", 1.0, /*seed=*/21, /*max_fires=*/2);
  fp.Arm("exec.task", 1.0, /*seed=*/22, /*max_fires=*/2);
  fp.Arm("serve.publish", 1.0, /*seed=*/23, /*max_fires=*/2);
  fp.Arm("serve.merge", 1.0, /*seed=*/24, /*max_fires=*/2);

  std::vector<std::tuple<int, int64_t, int64_t, int64_t>> updates;
  for (int64_t i = 0; i < 200; ++i) {
    updates.emplace_back(0, i % 30, i % 8, 1);
    updates.emplace_back(1, i % 8, i % 6, 1);
  }
  for (auto [r, x, y, m] : updates) {
    p.service->Offer(r, Tuple::Ints({x, y}), m);
  }
  p.service->DrainNow();
  fp.DisarmAll();

  auto stats = p.service->GetStats();
  EXPECT_GE(stats.flush_retries, 1u);
  EXPECT_GE(stats.apply_retries, 1u);
  EXPECT_EQ(stats.failed_flushes, 0u);

  Rel expect = p.ReferenceResult(updates);
  EXPECT_TRUE(ContentEquals(p.engine->result(), expect));
  auto snap = p.server->Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), expect));
}

TEST(IngestServiceTest, PublishFailurePastBudgetDelaysVisibilityOnly) {
  // serve.publish down hard for longer than the retry budget: the apply
  // still lands in the engine, publish_failures is counted, and the next
  // healthy flush publishes the stranded segments.
  ServiceOptions opts;
  opts.flush_updates = 4;
  opts.max_retries = 2;
  opts.retry_backoff = std::chrono::microseconds(1);
  opts.merge_each_flush = false;
  Pipeline p(opts);
  auto& fp = util::FailPointRegistry::Default();
  fp.Arm("serve.publish", 1.0, /*seed=*/31, /*max_fires=*/3);

  for (int64_t i = 0; i < 4; ++i) {
    p.service->Offer(0, Tuple::Ints({i, 0}), 1);
  }
  p.service->DrainNow();
  auto stats = p.service->GetStats();
  EXPECT_EQ(stats.publish_failures, 1u);
  EXPECT_EQ(stats.failed_flushes, 0u);
  EXPECT_EQ(p.engine->store(p.tree->LeafOfRelation(0)).size(), 4u);
  {
    auto snap = p.server->Acquire();
    EXPECT_EQ(snap.seq(), 0u);  // nothing visible yet
  }

  fp.DisarmAll();
  for (int64_t i = 0; i < 4; ++i) {
    p.service->Offer(1, Tuple::Ints({0, i}), 1);
  }
  p.service->DrainNow();
  auto snap = p.server->Acquire();
  EXPECT_EQ(snap.seq(), 1u);
  // Both flushes' segments became visible together.
  EXPECT_TRUE(ContentEquals(snap.Materialize(), p.engine->result()));
}
#endif  // !FIVM_FAILPOINTS_OFF

}  // namespace
}  // namespace fivm::ingest
