#include "src/util/small_vector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace fivm::util {
namespace {

TEST(SmallVectorTest, StartsEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVectorTest, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, SpillsToHeap) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InitializerList) {
  SmallVector<int, 2> v{1, 2, 3, 4, 5};
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 5);
}

TEST(SmallVectorTest, CopyConstruct) {
  SmallVector<std::string, 2> v{"a", "b", "c"};
  SmallVector<std::string, 2> w = v;
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w[2], "c");
  v[2] = "z";
  EXPECT_EQ(w[2], "c");
}

TEST(SmallVectorTest, MoveConstructInline) {
  SmallVector<std::unique_ptr<int>, 4> v;
  v.push_back(std::make_unique<int>(42));
  SmallVector<std::unique_ptr<int>, 4> w = std::move(v);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(*w[0], 42);
  EXPECT_EQ(v.size(), 0u);
}

TEST(SmallVectorTest, MoveConstructHeap) {
  SmallVector<std::unique_ptr<int>, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(std::make_unique<int>(i));
  SmallVector<std::unique_ptr<int>, 2> w = std::move(v);
  ASSERT_EQ(w.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*w[i], i);
}

TEST(SmallVectorTest, CopyAssign) {
  SmallVector<int, 2> v{1, 2, 3};
  SmallVector<int, 2> w{9};
  w = v;
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 1);
}

TEST(SmallVectorTest, MoveAssign) {
  SmallVector<int, 2> v{1, 2, 3, 4, 5, 6, 7, 8};
  SmallVector<int, 2> w{9};
  w = std::move(v);
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w[7], 8);
}

TEST(SmallVectorTest, PopBack) {
  SmallVector<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVectorTest, Resize) {
  SmallVector<int, 4> v;
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 0);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVectorTest, Erase) {
  SmallVector<int, 4> v{1, 2, 3, 4};
  v.erase(v.begin() + 1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
}

TEST(SmallVectorTest, Equality) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 2> b{1, 2, 3};
  SmallVector<int, 2> c{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SmallVectorTest, LexicographicCompare) {
  SmallVector<int, 2> a{1, 2};
  SmallVector<int, 2> b{1, 3};
  SmallVector<int, 2> c{1, 2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
}

TEST(SmallVectorTest, Clear) {
  SmallVector<std::string, 2> v{"x", "y", "z"};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back("w");
  EXPECT_EQ(v[0], "w");
}

TEST(SmallVectorTest, RangeConstructor) {
  std::vector<int> src{5, 6, 7};
  SmallVector<int, 2> v(src.begin(), src.end());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 7);
}

TEST(SmallVectorTest, NonTrivialDestructorsRun) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> p) : c(std::move(p)) {}
    Probe(Probe&& o) noexcept = default;
    Probe& operator=(Probe&& o) noexcept = default;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    SmallVector<Probe, 2> v;
    for (int i = 0; i < 5; ++i) v.push_back(Probe{counter});
  }
  // Only the 5 live elements count: moved-from temporaries and relocation
  // sources carry a null pointer.
  EXPECT_EQ(*counter, 5);
}

}  // namespace
}  // namespace fivm::util
