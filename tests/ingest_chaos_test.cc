// Chaos sweep over the full ingest → propagate → publish → merge pipeline:
// every failpoint site (batcher.flush, exec.task, serve.publish, serve.merge,
// serve.merge.install) armed with a per-seed probability while a randomized
// insert/delete stream runs through the supervised IngestService. After every
// pump in which at least one fault fired, a differential consistency check
// compares the served snapshot (drained: publish retried past any armed
// fault) against the engine's root store; at the end of each seed the engine
// must equal a fault-free reference engine fed the same stream.
//
// The CI chaos job sweeps FIVM_CHAOS_SEED; the in-binary seed loop plus the
// default seed count is sized so one run comfortably exceeds
// FIVM_CHAOS_MIN_FIRES (default 500) injected faults.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/core/view_tree.h"
#include "src/data/relation_ops.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/exec/thread_pool.h"
#include "src/ingest/ingest_service.h"
#include "src/rings/ring.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"
#include "src/util/rng.h"

namespace fivm::ingest {
namespace {

#if !defined(FIVM_FAILPOINTS_OFF)

using Rel = Relation<I64Ring>;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoll(v, nullptr, 10) : fallback;
}

constexpr const char* kSites[] = {"batcher.flush", "exec.task",
                                  "serve.publish", "serve.merge",
                                  "serve.merge.install"};

struct ChaosRig {
  ChaosRig() {
    A = catalog.Intern("A");
    B = catalog.Intern("B");
    C = catalog.Intern("C");
    query.AddRelation("R", Schema{A, B});
    query.AddRelation("S", Schema{B, C});
    query.SetFreeVars(Schema{A});
    vo = VariableOrder::Auto(query);
    tree.emplace(&query, &vo);
    tree->MaterializeAll();
    engine.emplace(&*tree, LiftingMap<I64Ring>{});
    reference.emplace(&*tree, LiftingMap<I64Ring>{});
    Database<I64Ring> db = MakeDatabase<I64Ring>(query);
    engine->Initialize(db);
    reference->Initialize(db);
    pool.emplace(2);
    executor.emplace(&*engine, &*pool,
                     typename exec::ParallelExecutor<I64Ring>::Options{
                         .shards = 2});
    batcher.emplace(&engine->plans(), /*capacity=*/0);
    server.emplace(&*engine);
    ServiceOptions opts;
    opts.flush_updates = 128;
    opts.retry_backoff = std::chrono::microseconds(1);
    opts.retry_backoff_cap = std::chrono::microseconds(64);
    opts.merge_each_flush = true;
    opts.default_queue = {AdmissionPolicy::kBlock, /*capacity=*/1 << 20};
    service.emplace(&*engine, &*executor, &*batcher, &*server, opts);
  }

  /// Publish retried past armed faults, for the differential check and the
  /// final drain ("engine root store == served snapshot after drain").
  void PublishHard() {
    for (;;) {
      try {
        server->Publish();
        return;
      } catch (const util::InjectedFault&) {
      }
    }
  }

  Catalog catalog;
  Query query{&catalog};
  VarId A, B, C;
  VariableOrder vo;
  std::optional<ViewTree> tree;
  std::optional<IvmEngine<I64Ring>> engine;
  std::optional<IvmEngine<I64Ring>> reference;  // fault-free, sequential
  std::optional<exec::ThreadPool> pool;
  std::optional<exec::ParallelExecutor<I64Ring>> executor;
  std::optional<exec::DeltaBatcher<I64Ring>> batcher;
  std::optional<serve::SnapshotServer<I64Ring>> server;
  std::optional<IngestService<I64Ring>> service;
};

/// One seeded chaos run; adds the number of faults injected to *total_fires.
/// (void so ASSERT_* can bail out; gtest fatal assertions need a void scope.)
void RunSeed(uint64_t seed, size_t updates, double probability,
             uint64_t* total_fires) {
  ChaosRig rig;
  auto& fp = util::FailPointRegistry::Default();
  const uint64_t fires0 = fp.TotalFires();
  for (const char* site : kSites) fp.Arm(site, probability, seed);

  util::Rng rng(seed);
  std::vector<std::vector<Tuple>> inserted(2);
  uint64_t last_fires = fires0;
  size_t since_pump = 0;
  for (size_t i = 0; i < updates; ++i) {
    int r = static_cast<int>(rng.UniformInt(0, 1));
    Tuple key;
    int64_t mult;
    if (!inserted[r].empty() && rng.Bernoulli(0.2)) {
      size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(inserted[r].size()) - 1));
      key = inserted[r][pick];
      mult = -1;
      inserted[r][pick] = inserted[r].back();
      inserted[r].pop_back();
    } else {
      key = Tuple::Ints({rng.UniformInt(0, 40), rng.UniformInt(0, 25)});
      mult = 1;
      inserted[r].push_back(key);
    }
    {
      Rel delta(rig.query.relation(r).schema);
      delta.Add(key, mult);
      rig.reference->ApplyDelta(r, std::move(delta));
    }
    ASSERT_TRUE(rig.service->Offer(r, key, mult)) << "i=" << i;

    if (++since_pump >= 128) {
      since_pump = 0;
      rig.service->PumpOnce(/*force_flush=*/true);
      const uint64_t fires = fp.TotalFires();
      if (fires > last_fires) {
        // At least one fault fired in this window: differential check.
        last_fires = fires;
        rig.PublishHard();
        auto snap = rig.server->Acquire();
        ASSERT_TRUE(
            ContentEquals(snap.Materialize(), rig.engine->result()))
            << "seed=" << seed << " i=" << i;
      }
    }
  }

  // Drain with faults still armed, then force the serving side current.
  rig.service->DrainNow();
  rig.PublishHard();
  for (;;) {
    try {
      rig.server->MergeNow();
      break;
    } catch (const util::InjectedFault&) {
    }
  }
  fp.DisarmAll();

  // Supervision must have lost nothing despite every injected fault: the
  // chaos engine equals the fault-free reference, and the served snapshot
  // equals the engine.
  auto stats = rig.service->GetStats();
  EXPECT_EQ(stats.failed_flushes, 0u) << "seed=" << seed;
  EXPECT_TRUE(
      ContentEquals(rig.engine->result(), rig.reference->result()))
      << "seed=" << seed;
  auto snap = rig.server->Acquire();
  EXPECT_TRUE(ContentEquals(snap.Materialize(), rig.engine->result()))
      << "seed=" << seed;
  EXPECT_EQ(snap.segment_count(), 0u) << "seed=" << seed;
  *total_fires += fp.TotalFires() - fires0;
}

TEST(IngestChaosTest, SeededFaultSweepPreservesConsistency) {
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("FIVM_CHAOS_SEED", 90001));
  const size_t seeds = static_cast<size_t>(EnvInt("FIVM_CHAOS_SEEDS", 12));
  const size_t updates =
      static_cast<size_t>(EnvInt("FIVM_CHAOS_UPDATES", 4000));
  const uint64_t min_fires =
      static_cast<uint64_t>(EnvInt("FIVM_CHAOS_MIN_FIRES", 500));

  uint64_t total_fires = 0;
  for (size_t s = 0; s < seeds; ++s) {
    RunSeed(base_seed + s, updates, /*probability=*/0.25, &total_fires);
    if (::testing::Test::HasFatalFailure()) return;
  }
  std::printf("chaos sweep: %llu injected faults across %zu seeds\n",
              static_cast<unsigned long long>(total_fires), seeds);
  EXPECT_GE(total_fires, min_fires);
}

#else
TEST(IngestChaosTest, SkippedWithoutFailpoints) { GTEST_SKIP(); }
#endif  // !FIVM_FAILPOINTS_OFF

}  // namespace
}  // namespace fivm::ingest
