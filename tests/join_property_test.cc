// Randomized property test: the view-based (TupleView + secondary-index)
// fast path of Join / JoinAndMarginalize must be key-for-key equal to a
// naive nested-loop reference, including in the presence of tombstoned
// entries inside index buckets and duplicate-prefix buckets (many entries
// sharing the join key).

#include <gtest/gtest.h>

#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"
#include "src/util/rng.h"

namespace fivm {
namespace {

using Rel = Relation<I64Ring>;

struct RandomConfig {
  size_t left_size;
  size_t right_size;
  int64_t key_domain;   // small domain → duplicate-prefix buckets
  double tombstone_p;   // fraction of entries cancelled to zero
};

// Builds a random relation; with probability `tombstone_p` an entry is
// cancelled *after* the secondary index exists, leaving a dead slot in the
// index buckets that the probe path must skip.
Rel RandomRelation(const Schema& schema, const Schema& pre_index,
                   const RandomConfig& cfg, size_t n, util::Rng& rng) {
  Rel rel(schema);
  if (!pre_index.empty()) rel.IndexOn(pre_index);
  std::vector<Tuple> keys;
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (size_t c = 0; c < schema.size(); ++c) {
      t.Append(Value::Int(rng.UniformInt(0, cfg.key_domain - 1)));
    }
    keys.push_back(t);
    rel.Add(std::move(t), rng.UniformInt(1, 5));
  }
  for (const Tuple& k : keys) {
    if (rng.Bernoulli(cfg.tombstone_p)) {
      if (const int64_t* p = rel.Find(k)) rel.Add(k, -*p);
    }
  }
  return rel;
}

// Reference ⊗: nested loops, no indexes, no views. Mirrors the documented
// semantics of Join (output schema = left ++ right-private, payload
// Mul(left, right)).
Rel NaiveJoin(const Rel& left, const Rel& right) {
  Schema common = left.schema().Intersect(right.schema());
  Schema right_private = right.schema().Minus(common);
  Rel out(left.schema().Union(right_private));
  auto left_common = left.schema().PositionsOf(common);
  auto right_common = right.schema().PositionsOf(common);
  auto right_private_pos = right.schema().PositionsOf(right_private);
  left.ForEach([&](const Tuple& lk, const int64_t& lp) {
    right.ForEach([&](const Tuple& rk, const int64_t& rp) {
      for (size_t i = 0; i < left_common.size(); ++i) {
        if (lk[left_common[i]] != rk[right_common[i]]) return;
      }
      out.Add(lk.Concat(rk.Project(right_private_pos)), lp * rp);
    });
  });
  return out;
}

void ExpectSameRelation(const Rel& got, const Rel& want) {
  ASSERT_EQ(got.schema(), want.schema());
  EXPECT_EQ(got.size(), want.size());
  size_t checked = 0;
  want.ForEach([&](const Tuple& k, const int64_t& p) {
    const int64_t* q = got.Find(k);
    ASSERT_NE(q, nullptr) << "missing key " << k.ToString();
    EXPECT_EQ(*q, p) << "payload mismatch at " << k.ToString();
    ++checked;
  });
  EXPECT_EQ(checked, want.size());
}

TEST(JoinPropertyTest, JoinMatchesNaiveReference) {
  util::Rng rng(7001);
  for (int round = 0; round < 40; ++round) {
    RandomConfig cfg{
        /*left_size=*/static_cast<size_t>(rng.UniformInt(0, 120)),
        /*right_size=*/static_cast<size_t>(rng.UniformInt(0, 120)),
        /*key_domain=*/rng.UniformInt(2, 6),  // heavy duplicate prefixes
        /*tombstone_p=*/round % 3 == 0 ? 0.3 : 0.0,
    };
    Rel left = RandomRelation(Schema{0, 1}, Schema{}, cfg, cfg.left_size, rng);
    Rel right = RandomRelation(Schema{1, 2}, Schema{1}, cfg, cfg.right_size,
                               rng);
    ExpectSameRelation(Join(left, right), NaiveJoin(left, right));
  }
}

TEST(JoinPropertyTest, JoinOnCompositeKeyMatchesNaive) {
  util::Rng rng(7002);
  for (int round = 0; round < 25; ++round) {
    RandomConfig cfg{80, 80, rng.UniformInt(2, 4), 0.25};
    Rel left =
        RandomRelation(Schema{0, 1, 2}, Schema{}, cfg, cfg.left_size, rng);
    Rel right =
        RandomRelation(Schema{1, 2, 3}, Schema{1, 2}, cfg, cfg.right_size,
                       rng);
    ExpectSameRelation(Join(left, right), NaiveJoin(left, right));
  }
}

TEST(JoinPropertyTest, CartesianProductMatchesNaive) {
  util::Rng rng(7003);
  RandomConfig cfg{30, 30, 5, 0.2};
  Rel left = RandomRelation(Schema{0}, Schema{}, cfg, cfg.left_size, rng);
  Rel right = RandomRelation(Schema{1}, Schema{}, cfg, cfg.right_size, rng);
  ExpectSameRelation(Join(left, right), NaiveJoin(left, right));
}

TEST(JoinPropertyTest, JoinAndMarginalizeMatchesNaiveComposition) {
  util::Rng rng(7004);
  LiftingMap<I64Ring> lifts;
  lifts.Set(1, [](const Value& x) { return x.AsInt() + 1; });
  lifts.Set(2, [](const Value& x) { return 2 * x.AsInt() - 1; });
  for (int round = 0; round < 40; ++round) {
    RandomConfig cfg{
        static_cast<size_t>(rng.UniformInt(0, 100)),
        static_cast<size_t>(rng.UniformInt(0, 100)),
        rng.UniformInt(2, 6),
        round % 2 == 0 ? 0.3 : 0.0,
    };
    Rel left = RandomRelation(Schema{0, 1}, Schema{}, cfg, cfg.left_size, rng);
    Rel right = RandomRelation(Schema{1, 2}, Schema{1}, cfg, cfg.right_size,
                               rng);
    // Reference: unfused join, then marginalization of the same variables
    // with the same liftings.
    Schema marg{1, 2};
    Rel want = Marginalize(NaiveJoin(left, right), marg, lifts);
    Rel got = JoinAndMarginalize(left, right, marg, lifts);
    ExpectSameRelation(got, want);
  }
}

TEST(JoinPropertyTest, MarginalizeAllVariablesToNullary) {
  util::Rng rng(7005);
  LiftingMap<I64Ring> lifts;
  lifts.Set(0, [](const Value& x) { return x.AsInt(); });
  RandomConfig cfg{60, 60, 4, 0.3};
  Rel left = RandomRelation(Schema{0, 1}, Schema{}, cfg, cfg.left_size, rng);
  Rel right = RandomRelation(Schema{1, 2}, Schema{1}, cfg, cfg.right_size,
                             rng);
  Schema marg{0, 1, 2};
  Rel want = Marginalize(NaiveJoin(left, right), marg, lifts);
  Rel got = JoinAndMarginalize(left, right, marg, lifts);
  ExpectSameRelation(got, want);
}

}  // namespace
}  // namespace fivm
