// Global operator new/delete hooks that feed MemoryTracker. Linked into
// benchmark binaries only (object library `fivm_memhook`), so tests and
// examples keep vanilla allocator behavior.

#include <malloc.h>

#include <cstdlib>
#include <new>

#include "src/util/memory_tracker.h"

namespace {

struct HookInit {
  HookInit() { fivm::util::MemoryTracker::MarkEnabled(); }
};
HookInit g_hook_init;

void* TrackedAlloc(size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  fivm::util::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void* TrackedAlloc(size_t size, std::align_val_t align) {
  void* p = std::aligned_alloc(static_cast<size_t>(align),
                               ((size + static_cast<size_t>(align) - 1) /
                                static_cast<size_t>(align)) *
                                   static_cast<size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  fivm::util::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  fivm::util::MemoryTracker::RecordFree(malloc_usable_size(p));
  std::free(p);
}

}  // namespace

void* operator new(size_t size) { return TrackedAlloc(size); }
void* operator new[](size_t size) { return TrackedAlloc(size); }
void* operator new(size_t size, std::align_val_t align) {
  return TrackedAlloc(size, align);
}
void* operator new[](size_t size, std::align_val_t align) {
  return TrackedAlloc(size, align);
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) fivm::util::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, size_t) noexcept { TrackedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
