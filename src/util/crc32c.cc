#include "src/util/crc32c.h"

#include <array>
#include <cstring>

namespace fivm::util::detail {
namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial. Table 0 is the
// classic byte-at-a-time table; table k advances a byte through k additional
// zero bytes, which lets the hot loop fold 8 input bytes per iteration with
// eight independent lookups instead of an 8-long dependency chain.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cTable(uint32_t state, const uint8_t* p, size_t n) {
  const auto& t = T().t;
  // Byte-align to 8 so the sliced loop reads whole words.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    state = t[0][(state ^ *p++) & 0xFF] ^ (state >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= state;  // little-endian: low word of w absorbs the running crc
    state = t[7][w & 0xFF] ^ t[6][(w >> 8) & 0xFF] ^ t[5][(w >> 16) & 0xFF] ^
            t[4][(w >> 24) & 0xFF] ^ t[3][(w >> 32) & 0xFF] ^
            t[2][(w >> 40) & 0xFF] ^ t[1][(w >> 48) & 0xFF] ^
            t[0][(w >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = t[0][(state ^ *p++) & 0xFF] ^ (state >> 8);
    --n;
  }
  return state;
}

}  // namespace fivm::util::detail
