#ifndef FIVM_UTIL_RNG_H_
#define FIVM_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace fivm::util {

/// xoshiro256** — fast, high-quality PRNG for workload generation and
/// property tests. Deterministic given the seed, so experiments are
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + UniformDouble() * (hi - lo);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipf-distributed sampler over [0, n). Used to give synthetic workloads
/// the key skew of the paper's real datasets (foreign keys in Retailer,
/// follower degrees in Twitter).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta) : n_(n) {
    cdf_.reserve(n);
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
    double acc = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(double(i), theta) / sum;
      cdf_.push_back(acc);
    }
  }

  uint64_t Sample(Rng& rng) const {
    double u = rng.UniformDouble();
    // Binary search over the CDF.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < n_ ? lo : n_ - 1;
  }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_RNG_H_
