// The SSE4.2 hardware CRC-32C arm. This is the only translation unit built
// with -msse4.2 (see the FIVM_HWCRC block in CMakeLists.txt), mirroring how
// src/util/simd_avx2.cc isolates -mavx2: the rest of the engine never emits
// an instruction the baseline target does not have, and runtime dispatch in
// crc32c.h decides per-process whether this arm is reachable.

#include "src/util/crc32c.h"

#if defined(FIVM_CRC32C_SSE42_BUILD)

#include <nmmintrin.h>

#include <cstring>

namespace fivm::util::detail {

uint32_t Crc32cSse42(uint32_t state, const uint8_t* p, size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
  uint64_t s64 = state;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    s64 = _mm_crc32_u64(s64, w);
    p += 8;
    n -= 8;
  }
  state = static_cast<uint32_t>(s64);
  while (n > 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
  return state;
}

}  // namespace fivm::util::detail

#endif  // FIVM_CRC32C_SSE42_BUILD
