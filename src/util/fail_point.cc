#include "src/util/fail_point.h"

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>

#include "src/obs/metrics.h"

namespace fivm::util {
namespace {

// Relaxed armed-site count consulted by the FIVM_FAIL_POINT macro.
std::atomic<int64_t> g_armed_sites{0};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashSite(const std::string& site) {
  // FNV-1a; stable across platforms so seeded CI sweeps reproduce locally.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : site) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool FailPointsArmed() {
  return g_armed_sites.load(std::memory_order_relaxed) > 0;
}

struct FailPointRegistry::Impl {
  struct Site {
    bool armed = false;      // explicitly armed (vs. materialized wildcard)
    double probability = 0;  // probability mode
    uint64_t nth = 0;        // !=0: fire on exactly this evaluation (1-based)
    uint64_t max_fires = 0;  // 0 = unlimited
    uint64_t rng = 0;        // splitmix64 state
    FailAction action = FailAction::kThrow;
    FailPointStats stats;
  };

  mutable std::mutex mu;
  std::map<std::string, Site> sites;
  bool wildcard_armed = false;
  double wildcard_probability = 0;
  uint64_t wildcard_seed = 0;
  uint64_t wildcard_max_fires = 0;
  uint64_t total_fires = 0;
  uint64_t total_evaluations = 0;
  obs::Counter* obs_fires =
      obs::MetricRegistry::Default().GetCounter("failpoint.fires");

  // Count of sites armed (wildcard counts as one); mirrored into
  // g_armed_sites so the hot-path check stays a single atomic load.
  int64_t armed = 0;

  void SetArmed(int64_t delta) {
    armed += delta;
    g_armed_sites.fetch_add(delta, std::memory_order_relaxed);
  }
};

FailPointRegistry::FailPointRegistry() : impl_(new Impl) {}
FailPointRegistry::~FailPointRegistry() { delete impl_; }

FailPointRegistry& FailPointRegistry::Default() {
  static FailPointRegistry* reg = [] {
    auto* r = new FailPointRegistry();
    if (const char* spec = std::getenv("FIVM_FAILPOINTS")) {
      uint64_t seed = 0;
      if (const char* s = std::getenv("FIVM_FAILPOINT_SEED")) {
        seed = std::strtoull(s, nullptr, 10);
      }
      r->ConfigureFromSpec(spec, seed);
    }
    return r;
  }();
  return *reg;
}

void FailPointRegistry::Arm(const std::string& site, double probability,
                            uint64_t seed, uint64_t max_fires,
                            FailAction action) {
  if (probability < 0) probability = 0;
  if (probability > 1) probability = 1;
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto& s = impl_->sites[site];
  if (!s.armed) impl_->SetArmed(+1);
  s.armed = true;
  s.probability = probability;
  s.nth = 0;
  s.max_fires = max_fires;
  s.rng = HashSite(site) ^ seed;
  s.action = action;
  s.stats = {};
}

void FailPointRegistry::ArmNth(const std::string& site, uint64_t nth,
                               FailAction action) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto& s = impl_->sites[site];
  if (!s.armed) impl_->SetArmed(+1);
  s.armed = true;
  s.probability = 0;
  s.nth = nth;
  s.max_fires = 1;
  s.action = action;
  s.stats = {};
}

void FailPointRegistry::ArmAll(double probability, uint64_t seed,
                               uint64_t max_fires) {
  if (probability < 0) probability = 0;
  if (probability > 1) probability = 1;
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->wildcard_armed) impl_->SetArmed(+1);
  impl_->wildcard_armed = true;
  impl_->wildcard_probability = probability;
  impl_->wildcard_seed = seed;
  impl_->wildcard_max_fires = max_fires;
}

void FailPointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->sites.find(site);
  if (it != impl_->sites.end() && it->second.armed) {
    it->second.armed = false;
    impl_->SetArmed(-1);
  }
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto& [name, s] : impl_->sites) {
    if (s.armed) {
      s.armed = false;
      impl_->SetArmed(-1);
    }
  }
  if (impl_->wildcard_armed) {
    impl_->wildcard_armed = false;
    impl_->SetArmed(-1);
  }
}

FailPointStats FailPointRegistry::Stats(const std::string& site) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? FailPointStats{} : it->second.stats;
}

uint64_t FailPointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->total_fires;
}

uint64_t FailPointRegistry::TotalEvaluations() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->total_evaluations;
}

bool FailPointRegistry::ConfigureFromSpec(const std::string& spec,
                                          uint64_t seed) {
  bool ok = true;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim whitespace.
    size_t b = entry.find_first_not_of(" \t");
    size_t e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;  // empty entry
    entry = entry.substr(b, e - b + 1);
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      ok = false;
      continue;
    }
    std::string site = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);

    // Optional "!kill" suffix selects the crash action.
    FailAction action = FailAction::kThrow;
    if (value.size() >= 5 && value.compare(value.size() - 5, 5, "!kill") == 0) {
      action = FailAction::kKill;
      value.resize(value.size() - 5);
    }
    if (value.empty()) {
      ok = false;
      continue;
    }

    if (value[0] == 'n') {
      // "n<N>": fire on exactly the N-th evaluation.
      char* end = nullptr;
      uint64_t nth = std::strtoull(value.c_str() + 1, &end, 10);
      if (end == value.c_str() + 1 || *end != '\0' || nth == 0 ||
          site == "*") {
        ok = false;
        continue;
      }
      ArmNth(site, nth, action);
      continue;
    }

    // "<prob>[/<max_fires>]".
    char* end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || p < 0 || p > 1) {
      ok = false;
      continue;
    }
    uint64_t max_fires = 0;
    if (*end == '/') {
      char* end2 = nullptr;
      max_fires = std::strtoull(end + 1, &end2, 10);
      if (end2 == end + 1 || *end2 != '\0' || max_fires == 0) {
        ok = false;
        continue;
      }
    } else if (*end != '\0') {
      ok = false;
      continue;
    }
    if (site == "*") {
      if (action == FailAction::kKill) {
        // A wildcard kill would take down the process at the first armed
        // site touched anywhere; reject it as almost certainly a typo.
        ok = false;
        continue;
      }
      ArmAll(p, seed, max_fires);
    } else {
      Arm(site, p, seed, max_fires, action);
    }
  }
  return ok;
}

void FailPointRegistry::MaybeFail(const char* site) {
  bool fire = false;
  bool kill = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto it = impl_->sites.find(site);
    if (it == impl_->sites.end() || !it->second.armed) {
      if (!impl_->wildcard_armed) return;
      // Materialize a per-site stream under the wildcard so the draw
      // sequence for this site is independent of other sites.
      auto& s = impl_->sites[site];
      if (!s.armed) {
        s.armed = true;
        impl_->SetArmed(+1);
        s.probability = impl_->wildcard_probability;
        s.nth = 0;
        s.max_fires = impl_->wildcard_max_fires;
        s.rng = HashSite(site) ^ impl_->wildcard_seed;
        s.stats = {};
      }
      it = impl_->sites.find(site);
    }
    auto& s = it->second;
    ++s.stats.evaluations;
    ++impl_->total_evaluations;
    if (s.nth != 0) {
      fire = s.stats.evaluations == s.nth && s.stats.fires < s.max_fires;
    } else if (s.probability > 0 &&
               (s.max_fires == 0 || s.stats.fires < s.max_fires)) {
      // 53-bit uniform draw in [0,1).
      double u = static_cast<double>(SplitMix64(&s.rng) >> 11) * 0x1.0p-53;
      fire = u < s.probability;
    }
    if (fire) {
      ++s.stats.fires;
      ++impl_->total_fires;
      impl_->obs_fires->Inc();
      kill = s.action == FailAction::kKill;
    }
  }
  if (fire) {
    // Simulated crash: no unwinding, no atexit, no stream flushes — the
    // process dies exactly as it stands, and only what already hit the
    // filesystem survives for recovery to find.
    if (kill) ::_exit(kKillExitCode);
    throw InjectedFault(site);
  }
}

}  // namespace fivm::util
