#include "src/util/string_dictionary.h"

#include <cassert>

namespace fivm::util {

int64_t StringDictionary::Intern(std::string_view s) {
  std::string key(s);
  if (const int64_t* found = codes_.Find(key)) return *found;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.push_back(key);
  codes_.Insert(std::move(key), code);
  return code;
}

int64_t StringDictionary::Lookup(std::string_view s) const {
  std::string key(s);
  const int64_t* found = codes_.Find(key);
  return found ? *found : -1;
}

const std::string& StringDictionary::Decode(int64_t code) const {
  assert(code >= 0 && static_cast<size_t>(code) < strings_.size());
  return strings_[static_cast<size_t>(code)];
}

}  // namespace fivm::util
