#include "src/util/memory_tracker.h"

#include <atomic>

namespace fivm::util {
namespace {

std::atomic<int64_t> g_current{0};
std::atomic<int64_t> g_peak{0};
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_rehash_count{0};
std::atomic<bool> g_enabled{false};

}  // namespace

int64_t MemoryTracker::CurrentBytes() {
  return g_current.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::AllocationCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::PeakBytes() {
  return g_peak.load(std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

int64_t MemoryTracker::RehashCount() {
  return g_rehash_count.load(std::memory_order_relaxed);
}

void MemoryTracker::RecordRehash() {
  g_rehash_count.fetch_add(1, std::memory_order_relaxed);
}

bool MemoryTracker::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void MemoryTracker::RecordAlloc(size_t bytes) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  int64_t cur = g_current.fetch_add(static_cast<int64_t>(bytes),
                                    std::memory_order_relaxed) +
                static_cast<int64_t>(bytes);
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (cur > peak &&
         !g_peak.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::RecordFree(size_t bytes) {
  g_current.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
}

void MemoryTracker::MarkEnabled() {
  g_enabled.store(true, std::memory_order_relaxed);
}

}  // namespace fivm::util
