#ifndef FIVM_UTIL_SIMD_H_
#define FIVM_UTIL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>

namespace fivm::simd {

/// Runtime-dispatched kernels over contiguous double arrays — the arithmetic
/// substrate of the ring payloads (regression cofactor blocks, sparse
/// aggregate value lanes). Follows the dispatch pattern util::GroupTable
/// established for control-byte scans (SSE2 with a fuzz-checked scalar
/// fallback), one level up: an AVX2 arm compiled into its own translation
/// unit (src/util/simd_avx2.cc, built with -mavx2 and nothing more) and an
/// inline scalar fallback, selected at runtime.
///
/// Every kernel is *element-wise* — no horizontal reductions, no FMA
/// contraction (the AVX2 arm pairs _mm256_mul_pd with _mm256_add_pd, and
/// -mavx2 alone cannot emit vfmadd) — so both arms perform bit-identical
/// IEEE arithmetic per element in the same order. That is what lets the
/// engine's bitwise equivalence tests (plan_equivalence, exec_parallel) pass
/// unchanged on either dispatch path, and what tests/simd_dispatch_test.cc
/// fuzzes directly.
///
/// Dispatch order of authority:
///  1. Build: on non-x86-64 targets, or with -DFIVM_AVX2=OFF (which defines
///     FIVM_SIMD_NO_AVX2), the AVX2 arm is not compiled and every call
///     inlines the scalar loop.
///  2. CPU: the AVX2 arm is used only when __builtin_cpu_supports("avx2").
///  3. Environment: FIVM_DISABLE_AVX2=1 pins the scalar path at startup
///     (the README's "force the scalar path" knob; the CI scalar-dispatch
///     job runs the whole suite under it).
///  4. SetAvx2Active(false/true): tests and benches toggle arms at runtime
///     (clamped to what the build and CPU actually support).

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(FIVM_SIMD_NO_AVX2)
#define FIVM_SIMD_AVX2_BUILD 1
#endif

namespace detail {

#if defined(FIVM_SIMD_AVX2_BUILD)
// The AVX2 arm, defined in src/util/simd_avx2.cc. Callers guarantee n >= 1.
void AddToAvx2(double* dst, const double* src, size_t n);
void AxpyToAvx2(double* dst, const double* src, double a, size_t n);
void ScalePairToAvx2(double* dst, const double* x, const double* y, double a,
                     double b, size_t n);
void ScaleToAvx2(double* dst, const double* src, double a, size_t n);
void SumToAvx2(double* dst, const double* x, const double* y, size_t n);
void NegateAvx2(double* v, size_t n);
bool AnyNonZeroAvx2(const double* v, size_t n);
void Rank1UpperToAvx2(double* q, const double* sa, const double* sb,
                      size_t len);
void DisjointMulRowsToAvx2(double* q, const double* pq, const double* ps,
                           const double* rs, double pscale, size_t plen,
                           size_t gap, size_t rlen, size_t len);
#endif

inline bool CpuSupportsAvx2() {
#if defined(FIVM_SIMD_AVX2_BUILD)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

inline bool Avx2StartupDefault() {
  if (!CpuSupportsAvx2()) return false;
  const char* env = std::getenv("FIVM_DISABLE_AVX2");
  return env == nullptr || env[0] == '\0' || env[0] == '0';
}

inline std::atomic<bool>& ActiveFlag() {
  static std::atomic<bool> active{Avx2StartupDefault()};
  return active;
}

}  // namespace detail

/// True when this binary contains the AVX2 arm at all.
constexpr bool Avx2CompiledIn() {
#if defined(FIVM_SIMD_AVX2_BUILD)
  return true;
#else
  return false;
#endif
}

/// True when the AVX2 arm could run here (build + CPU), regardless of the
/// current dispatch pin.
inline bool Avx2Supported() { return detail::CpuSupportsAvx2(); }

/// The arm the next kernel call will take.
inline bool Avx2Active() {
  return detail::ActiveFlag().load(std::memory_order_relaxed);
}

/// Pins dispatch (tests, differential fuzz, bench arms). Enabling is clamped
/// to Avx2Supported(); returns the previous state.
inline bool SetAvx2Active(bool on) {
  return detail::ActiveFlag().exchange(on && Avx2Supported(),
                                       std::memory_order_relaxed);
}

/// Below this length the scalar loop inlines into the caller and beats the
/// out-of-line AVX2 call: degree-1/2 regression payloads (2-5 doubles) stay
/// on it, cofactor blocks from width ~3 up take the vector arm.
inline constexpr size_t kMinAvx2Len = 8;

#if defined(FIVM_SIMD_AVX2_BUILD)
#define FIVM_SIMD_DISPATCH(call)                   \
  if (n >= kMinAvx2Len && Avx2Active()) {          \
    detail::call;                                  \
    return;                                        \
  }
#else
#define FIVM_SIMD_DISPATCH(call)
#endif

/// dst[i] += src[i].
inline void AddTo(double* dst, const double* src, size_t n) {
  FIVM_SIMD_DISPATCH(AddToAvx2(dst, src, n))
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// dst[i] += a * src[i] (mul then add: two roundings, never fused).
inline void AxpyTo(double* dst, const double* src, double a, size_t n) {
  FIVM_SIMD_DISPATCH(AxpyToAvx2(dst, src, a, n))
  for (size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

/// dst[i] = a * x[i] + b * y[i] (overwrite, same rounding order).
inline void ScalePairTo(double* dst, const double* x, const double* y,
                        double a, double b, size_t n) {
  FIVM_SIMD_DISPATCH(ScalePairToAvx2(dst, x, y, a, b, n))
  for (size_t i = 0; i < n; ++i) dst[i] = a * x[i] + b * y[i];
}

/// dst[i] = a * src[i] (overwrite).
inline void ScaleTo(double* dst, const double* src, double a, size_t n) {
  FIVM_SIMD_DISPATCH(ScaleToAvx2(dst, src, a, n))
  for (size_t i = 0; i < n; ++i) dst[i] = a * src[i];
}

/// dst[i] = x[i] + y[i] (overwrite).
inline void SumTo(double* dst, const double* x, const double* y, size_t n) {
  FIVM_SIMD_DISPATCH(SumToAvx2(dst, x, y, n))
  for (size_t i = 0; i < n; ++i) dst[i] = x[i] + y[i];
}

/// v[i] = -v[i] (sign-bit flip; exact on every value including ±0, NaN).
inline void Negate(double* v, size_t n) {
  FIVM_SIMD_DISPATCH(NegateAvx2(v, n))
  for (size_t i = 0; i < n; ++i) v[i] = -v[i];
}

/// Cofactor-structured kernels: the two per-row loops of the regression
/// ring's product, fused into one dispatch so a payload-wide product pays
/// one out-of-line call instead of one per triangle row. `q` is a packed
/// upper triangle of `len` rows (row i covers columns [i, len), rows
/// packed consecutively).

/// Rank-1 half of a same-range product: for each row i with a non-zero
/// coefficient pair, q[i][y] += sa[i]*sb[y] + sb[i]*sa[y] over y in
/// [i, len).
inline void Rank1UpperTo(double* q, const double* sa, const double* sb,
                         size_t len) {
#if defined(FIVM_SIMD_AVX2_BUILD)
  if (len >= 4 && Avx2Active()) {
    detail::Rank1UpperToAvx2(q, sa, sb, len);
    return;
  }
#endif
  for (size_t i = 0; i < len; ++i) {
    const double sax = sa[i];
    const double sbx = sb[i];
    if (sax != 0.0 || sbx != 0.0) {
      for (size_t j = 0; j < len - i; ++j) {
        q[j] += sax * sb[i + j] + sbx * sa[i + j];
      }
    }
    q += len - i;
  }
}

/// Triangle of a disjoint-range product, all block rows in one call: for
/// each row i of the earlier operand p, write [ pscale * Qp row | `gap`
/// zeros | ps[i] * sr ] — the scaled carried-over block followed by the
/// rank-1 rectangle (see regression_ring.cc for the derivation). `q`
/// points at the output triangle's first row (width `len`), `pq` at p's
/// packed triangle (width `plen`).
inline void DisjointMulRowsTo(double* q, const double* pq, const double* ps,
                              const double* rs, double pscale, size_t plen,
                              size_t gap, size_t rlen, size_t len) {
#if defined(FIVM_SIMD_AVX2_BUILD)
  if (rlen + plen >= 8 && Avx2Active()) {
    detail::DisjointMulRowsToAvx2(q, pq, ps, rs, pscale, plen, gap, rlen,
                                  len);
    return;
  }
#endif
  for (size_t i = 0; i < plen; ++i) {
    const size_t seg = plen - i;
    for (size_t j = 0; j < seg; ++j) q[j] = pscale * pq[j];
    for (size_t j = 0; j < gap; ++j) q[seg + j] = 0.0;
    const double px = ps[i];
    for (size_t j = 0; j < rlen; ++j) q[seg + gap + j] = px * rs[j];
    q += len - i;
    pq += seg;
  }
}

#undef FIVM_SIMD_DISPATCH

/// True when any v[i] != 0.0 (both signed zeros test as zero, NaN as
/// non-zero — the scalar comparison's semantics).
inline bool AnyNonZero(const double* v, size_t n) {
#if defined(FIVM_SIMD_AVX2_BUILD)
  if (n >= kMinAvx2Len && Avx2Active()) return detail::AnyNonZeroAvx2(v, n);
#endif
  for (size_t i = 0; i < n; ++i) {
    if (v[i] != 0.0) return true;
  }
  return false;
}

}  // namespace fivm::simd

#endif  // FIVM_UTIL_SIMD_H_
