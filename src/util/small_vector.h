#ifndef FIVM_UTIL_SMALL_VECTOR_H_
#define FIVM_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace fivm::util {

/// A vector with inline storage for up to `N` elements. Falls back to the
/// heap once the inline capacity is exceeded. Used pervasively for tuples,
/// schemas, and adjacency lists, where the common case is a handful of
/// elements and heap allocation per object would dominate.
template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  explicit SmallVector(size_t n) { resize(n); }

  SmallVector(size_t n, const T& value) {
    reserve(n);
    for (size_t i = 0; i < n; ++i) push_back(value);
  }

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  template <typename It>
  SmallVector(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    CopyAppend(other.data_, other.size_);
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    CopyAppend(other.data_, other.size_);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    Destroy();
    MoveFrom(std::move(other));
    return *this;
  }

  ~SmallVector() { Destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    new (data_ + size_) T(v);
    ++size_;
  }

  void push_back(T&& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    new (data_ + size_) T(std::move(v));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* p = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    data_[size_].~T();
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void resize(size_t n) {
    if (n < size_) {
      for (size_t i = n; i < size_; ++i) data_[i].~T();
      size_ = n;
    } else {
      reserve(n);
      for (size_t i = size_; i < n; ++i) new (data_ + i) T();
      size_ = n;
    }
  }

  /// Sets the size to `n` without value-initializing grown elements —
  /// callers promise to overwrite every new element before reading it.
  /// Only meaningful for trivial element types (the double payload buffers
  /// of the ring kernels, which fill the whole buffer with one pass and
  /// must not pay a zero-fill first); falls back to value-initializing
  /// resize otherwise.
  void resize_uninitialized(size_t n) {
    if constexpr (std::is_trivially_default_constructible_v<T> &&
                  std::is_trivially_destructible_v<T>) {
      reserve(n);
      size_ = n;
    } else {
      resize(n);
    }
  }

  iterator erase(iterator pos) {
    assert(pos >= begin() && pos < end());
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (!(data_[i] == other.data_[i])) return false;
    }
    return true;
  }

  bool operator!=(const SmallVector& other) const { return !(*this == other); }

  bool operator<(const SmallVector& other) const {
    return std::lexicographical_compare(begin(), end(), other.begin(),
                                        other.end());
  }

 private:
  bool IsInline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  // Bulk copy into the tail; requires reserved capacity. memcpy for
  // trivially copyable element types (e.g. Value), which is the hot path of
  // tuple key copies.
  void CopyAppend(const T* src, size_t n) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(data_ + size_, src, n * sizeof(T));
      size_ += n;
    } else {
      for (size_t i = 0; i < n; ++i) push_back(src[i]);
    }
  }

  void Grow(size_t new_capacity) {
    new_capacity = std::max<size_t>(new_capacity, N ? N : 1);
    if (new_capacity <= capacity_) return;
    T* new_data =
        static_cast<T*>(::operator new(new_capacity * sizeof(T),
                                       std::align_val_t(alignof(T))));
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(new_data, data_, size_ * sizeof(T));
    } else {
      for (size_t i = 0; i < size_; ++i) {
        new (new_data + i) T(std::move(data_[i]));
        data_[i].~T();
      }
    }
    if (!IsInline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = new_data;
    capacity_ = new_capacity;
  }

  void Destroy() {
    clear();
    if (!IsInline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = reinterpret_cast<T*>(inline_storage_);
      capacity_ = N;
    }
  }

  void MoveFrom(SmallVector&& other) {
    if (other.IsInline()) {
      data_ = reinterpret_cast<T*>(inline_storage_);
      capacity_ = N;
      size_ = 0;
      if constexpr (std::is_trivially_copyable_v<T>) {
        std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      } else {
        for (size_t i = 0; i < other.size_; ++i) {
          new (data_ + i) T(std::move(other.data_[i]));
          other.data_[i].~T();
        }
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = reinterpret_cast<T*>(other.inline_storage_);
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N ? N * sizeof(T) : 1];
  T* data_ = reinterpret_cast<T*>(inline_storage_);
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_SMALL_VECTOR_H_
