#ifndef FIVM_UTIL_STRING_DICTIONARY_H_
#define FIVM_UTIL_STRING_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/flat_hash_map.h"
#include "src/util/hash.h"

namespace fivm::util {

/// Interns strings to dense int64 codes. Key columns with string domains
/// (e.g. category names) are dictionary-encoded at load time so the hot
/// path only ever hashes and compares fixed-width values.
class StringDictionary {
 public:
  /// Returns the code for `s`, assigning the next dense code if unseen.
  int64_t Intern(std::string_view s);

  /// Returns the code for `s`, or -1 if it was never interned.
  int64_t Lookup(std::string_view s) const;

  /// Inverse mapping; `code` must have been produced by Intern().
  const std::string& Decode(int64_t code) const;

  size_t size() const { return strings_.size(); }

 private:
  struct StringHash {
    uint64_t operator()(const std::string& s) const { return HashString(s); }
  };

  std::vector<std::string> strings_;
  FlatHashMap<std::string, int64_t, StringHash> codes_;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_STRING_DICTIONARY_H_
