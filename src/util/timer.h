#ifndef FIVM_UTIL_TIMER_H_
#define FIVM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fivm::util {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_TIMER_H_
