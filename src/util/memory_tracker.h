#ifndef FIVM_UTIL_MEMORY_TRACKER_H_
#define FIVM_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace fivm::util {

/// Process-wide heap accounting, fed by the operator new/delete hooks in
/// memhook_new.cc (linked into benchmark binaries only). When the hooks are
/// not linked, all readings are zero and `enabled()` is false.
///
/// Used to reproduce the "Allocated Memory" series of Figures 7, 8 and 13.
class MemoryTracker {
 public:
  /// Bytes currently allocated (live).
  static int64_t CurrentBytes();

  /// Total number of allocations since process start. Used by tests to
  /// assert that hot probe paths stay allocation-free.
  static int64_t AllocationCount();

  /// High-water mark of live bytes since the last ResetPeak().
  static int64_t PeakBytes();

  /// Resets the peak to the current live byte count.
  static void ResetPeak();

  /// Number of hash-table rehashes (growth or tombstone purge) since
  /// process start, fed by util::GroupTable. Unlike the allocation
  /// counters this needs no linked hooks — it counts in every binary, so
  /// tests can prove that presized batch paths run rehash-free.
  static int64_t RehashCount();
  static void RecordRehash();

  /// True when the allocation hooks are linked into this binary.
  static bool enabled();

  // Internal: called by the new/delete hooks.
  static void RecordAlloc(size_t bytes);
  static void RecordFree(size_t bytes);
  static void MarkEnabled();
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_MEMORY_TRACKER_H_
