// The AVX2 arm of the fivm::simd kernels. This translation unit is the only
// one compiled with -mavx2 (see CMakeLists.txt) — and with -mavx2 *alone*:
// without -mfma the compiler cannot contract the explicit mul/add intrinsic
// pairs below into vfmadd, so every lane rounds exactly like the scalar
// fallback's `mul` then `add` and the two dispatch arms stay bitwise equal
// (fuzz-checked by tests/simd_dispatch_test.cc). Keep any future kernel to
// that discipline: element-wise, mul/add pairs, no horizontal reductions.

#include "src/util/simd.h"

#if defined(FIVM_SIMD_AVX2_BUILD)

#include <immintrin.h>

namespace fivm::simd::detail {

void AddToAvx2(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_loadu_pd(dst + i);
    __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void AxpyToAvx2(double* dst, const double* src, double a, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_loadu_pd(dst + i);
    __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, _mm256_mul_pd(va, s)));
  }
  for (; i < n; ++i) dst[i] += a * src[i];
}

void ScalePairToAvx2(double* dst, const double* x, const double* y, double a,
                     double b, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vx = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    __m256d vy = _mm256_mul_pd(vb, _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(dst + i, _mm256_add_pd(vx, vy));
  }
  for (; i < n; ++i) dst[i] = a * x[i] + b * y[i];
}

void ScaleToAvx2(double* dst, const double* src, double a, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(va, _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = a * src[i];
}

void SumToAvx2(double* dst, const double* x, const double* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) dst[i] = x[i] + y[i];
}

void NegateAvx2(double* v, size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_xor_pd(_mm256_loadu_pd(v + i), sign));
  }
  for (; i < n; ++i) v[i] = -v[i];
}

void Rank1UpperToAvx2(double* q, const double* sa, const double* sb,
                      size_t len) {
  for (size_t i = 0; i < len; ++i) {
    const double sax = sa[i];
    const double sbx = sb[i];
    if (sax != 0.0 || sbx != 0.0) {
      const __m256d va = _mm256_set1_pd(sax);
      const __m256d vb = _mm256_set1_pd(sbx);
      const size_t n = len - i;
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        __m256d d = _mm256_loadu_pd(q + j);
        __m256d x = _mm256_mul_pd(va, _mm256_loadu_pd(sb + i + j));
        __m256d y = _mm256_mul_pd(vb, _mm256_loadu_pd(sa + i + j));
        _mm256_storeu_pd(q + j, _mm256_add_pd(d, _mm256_add_pd(x, y)));
      }
      for (; j < n; ++j) q[j] += sax * sb[i + j] + sbx * sa[i + j];
    }
    q += len - i;
  }
}

void DisjointMulRowsToAvx2(double* q, const double* pq, const double* ps,
                           const double* rs, double pscale, size_t plen,
                           size_t gap, size_t rlen, size_t len) {
  const __m256d vscale = _mm256_set1_pd(pscale);
  for (size_t i = 0; i < plen; ++i) {
    const size_t seg = plen - i;
    size_t j = 0;
    for (; j + 4 <= seg; j += 4) {
      _mm256_storeu_pd(q + j,
                       _mm256_mul_pd(vscale, _mm256_loadu_pd(pq + j)));
    }
    for (; j < seg; ++j) q[j] = pscale * pq[j];
    for (j = 0; j < gap; ++j) q[seg + j] = 0.0;
    const __m256d vp = _mm256_set1_pd(ps[i]);
    double* rect = q + seg + gap;
    for (j = 0; j + 4 <= rlen; j += 4) {
      _mm256_storeu_pd(rect + j,
                       _mm256_mul_pd(vp, _mm256_loadu_pd(rs + j)));
    }
    for (; j < rlen; ++j) rect[j] = ps[i] * rs[j];
    q += len - i;
    pq += seg;
  }
}

bool AnyNonZeroAvx2(const double* v, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  // NEQ_UQ: true for any value that compares unequal to 0.0 — which treats
  // -0.0 as zero and NaN as non-zero, exactly like the scalar `!= 0.0`.
  for (; i + 4 <= n; i += 4) {
    __m256d ne = _mm256_cmp_pd(_mm256_loadu_pd(v + i), zero, _CMP_NEQ_UQ);
    if (_mm256_movemask_pd(ne) != 0) return true;
  }
  for (; i < n; ++i) {
    if (v[i] != 0.0) return true;
  }
  return false;
}

}  // namespace fivm::simd::detail

#endif  // FIVM_SIMD_AVX2_BUILD
