#ifndef FIVM_UTIL_FLAT_HASH_MAP_H_
#define FIVM_UTIL_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/util/group_table.h"

namespace fivm::util {

/// Hash map over the shared SwissTable probing core (util::GroupTable):
/// open addressing with a separate control-byte array, 16-slot group scans
/// and H1/H2 hash splitting — see group_table.h for the layout and
/// deletion policy.
///
/// This is the workhorse index structure behind `Relation`'s secondary
/// indexes (the paper's multi-indexed maps with memory-pooled records).
/// Compared to std::unordered_map it avoids per-node allocations and
/// pointer chasing, which dominate IVM delta processing where each update
/// tuple performs a handful of point lookups; most probes touch one
/// 16-byte control group before any {key, value} slot is loaded.
///
/// Requirements: `Hash` is a callable `uint64_t(const K&)`; `K` and `V` are
/// default-constructible, movable, and `K` is equality-comparable. Any
/// insert may rehash and invalidate references.
template <typename K, typename V, typename Hash>
class FlatHashMap {
 public:
  struct Slot {
    K key;
    V value;
  };

  FlatHashMap() = default;
  explicit FlatHashMap(Hash hash) : hash_(std::move(hash)) {}

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  void clear() { table_.Clear(); }

  /// Returns the value mapped to `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    auto [slot, inserted] = FindOrInsert(key);
    if (inserted) slot->key = key;
    return slot->value;
  }

  V& operator[](K&& key) {
    auto [slot, inserted] = FindOrInsert(key);
    if (inserted) slot->key = std::move(key);
    return slot->value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent. `Q` is
  /// either `K` itself or a borrowed stand-in (heterogeneous lookup): it
  /// must hash identically to the `K` it stands for under `Hash`, and
  /// `K == Q` must be defined consistently (e.g. TupleView probing a
  /// Tuple-keyed index). Allocation-free.
  template <typename Q>
  V* Find(const Q& key) {
    Slot* s = table_.Find(hash_(key),
                          [&](const Slot& c) { return c.key == key; });
    return s == nullptr ? nullptr : &s->value;
  }

  template <typename Q>
  const V* Find(const Q& key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Inserts (key, value); returns false if the key was already present (the
  /// stored value is untouched in that case).
  bool Insert(K key, V value) {
    auto [slot, inserted] = FindOrInsert(key);
    if (!inserted) return false;
    slot->key = std::move(key);
    slot->value = std::move(value);
    return true;
  }

  /// Removes `key`. Returns true if it was present. Deletion follows the
  /// core's policy: re-empty when the group can prove no probe chain
  /// passed, tombstone otherwise; rehashes purge all tombstones.
  bool Erase(const K& key) {
    return table_.Erase(hash_(key),
                        [&](const Slot& c) { return c.key == key; });
  }

  /// Iterates over all live (key, value) pairs: `fn(const K&, V&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    table_.ForEachSlot([&](Slot& s) {
      fn(const_cast<const K&>(s.key), s.value);
    });
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    table_.ForEachSlot([&](const Slot& s) { fn(s.key, s.value); });
  }

  void Reserve(size_t n) { table_.Reserve(n, SlotHash()); }

  /// Approximate heap footprint, for memory accounting in benchmarks. Does
  /// not include heap memory owned by keys/values themselves.
  size_t ApproxBytes() const { return table_.ApproxBytes(); }

 private:
  auto SlotHash() {
    return [this](const Slot& s) { return hash_(s.key); };
  }

  template <typename Q>
  std::pair<Slot*, bool> FindOrInsert(const Q& key) {
    return table_.FindOrInsert(
        hash_(key), [&](const Slot& c) { return c.key == key; }, SlotHash());
  }

  Hash hash_{};
  GroupTable<Slot> table_;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_FLAT_HASH_MAP_H_
