#ifndef FIVM_UTIL_FLAT_HASH_MAP_H_
#define FIVM_UTIL_FLAT_HASH_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fivm::util {

/// Shared sizing policy for the open-addressing tables (FlatHashMap and
/// Relation::SlotIndex): power-of-two capacities with an 8-slot floor and a
/// 3/4 load factor.
inline size_t HashCapacityPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

inline size_t HashReserveCapacity(size_t n) { return n + n / 2 + 1; }

inline bool HashNeedsGrowth(size_t size, size_t capacity) {
  return capacity == 0 || (size + 1) * 4 >= capacity * 3;
}

/// Open-addressing hash map with linear probing and backward-shift deletion.
///
/// This is the workhorse index structure behind `Relation` (the paper's
/// multi-indexed maps with memory-pooled records). Compared to
/// std::unordered_map it avoids per-node allocations and pointer chasing,
/// which dominate IVM delta processing where each update tuple performs a
/// handful of point lookups.
///
/// Requirements: `Hash` is a callable `uint64_t(const K&)`; `K` and `V` are
/// default-constructible, movable, and `K` is equality-comparable. Any insert
/// may rehash and invalidate references.
template <typename K, typename V, typename Hash>
class FlatHashMap {
 public:
  struct Slot {
    K key;
    V value;
  };

  FlatHashMap() = default;
  explicit FlatHashMap(Hash hash) : hash_(std::move(hash)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    states_.clear();
    size_ = 0;
    capacity_ = 0;
    mask_ = 0;
  }

  /// Returns the value mapped to `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    ReserveForInsert();
    size_t idx = FindSlot(key);
    if (states_[idx] != kFull) {
      slots_[idx].key = key;
      slots_[idx].value = V{};
      states_[idx] = kFull;
      ++size_;
    }
    return slots_[idx].value;
  }

  V& operator[](K&& key) {
    ReserveForInsert();
    size_t idx = FindSlot(key);
    if (states_[idx] != kFull) {
      slots_[idx].key = std::move(key);
      slots_[idx].value = V{};
      states_[idx] = kFull;
      ++size_;
    }
    return slots_[idx].value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent. `Q` is
  /// either `K` itself or a borrowed stand-in (heterogeneous lookup): it
  /// must hash identically to the `K` it stands for under `Hash`, and
  /// `K == Q` must be defined consistently (e.g. TupleView probing a
  /// Tuple-keyed index). Allocation-free.
  template <typename Q>
  V* Find(const Q& key) {
    if (size_ == 0) return nullptr;
    size_t idx = hash_(key) & mask_;
    while (true) {
      if (states_[idx] != kFull) return nullptr;
      if (slots_[idx].key == key) return &slots_[idx].value;
      idx = (idx + 1) & mask_;
    }
  }

  template <typename Q>
  const V* Find(const Q& key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Inserts (key, value); returns false if the key was already present (the
  /// stored value is untouched in that case).
  bool Insert(K key, V value) {
    ReserveForInsert();
    size_t idx = FindSlot(key);
    if (states_[idx] == kFull) return false;
    slots_[idx].key = std::move(key);
    slots_[idx].value = std::move(value);
    states_[idx] = kFull;
    ++size_;
    return true;
  }

  /// Removes `key`. Returns true if it was present. Uses backward-shift
  /// deletion, so no tombstones accumulate.
  bool Erase(const K& key) {
    if (size_ == 0) return false;
    size_t idx = FindSlot(key);
    if (states_[idx] != kFull) return false;
    slots_[idx] = Slot{};
    states_[idx] = kEmpty;
    --size_;
    size_t hole = idx;
    size_t cur = (idx + 1) & mask_;
    while (states_[cur] == kFull) {
      size_t home = hash_(slots_[cur].key) & mask_;
      // slots_[cur] may move into `hole` only if `hole` lies on its probe
      // path, i.e. cyclically home <= hole <= cur.
      bool movable;
      if (hole <= cur) {
        movable = (home <= hole) || (home > cur);
      } else {
        movable = (home <= hole) && (home > cur);
      }
      if (movable) {
        slots_[hole] = std::move(slots_[cur]);
        states_[hole] = kFull;
        slots_[cur] = Slot{};
        states_[cur] = kEmpty;
        hole = cur;
      }
      cur = (cur + 1) & mask_;
    }
    return true;
  }

  /// Iterates over all live (key, value) pairs: `fn(const K&, V&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (states_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (states_[i] == kFull) {
        fn(slots_[i].key, static_cast<const V&>(slots_[i].value));
      }
    }
  }

  void Reserve(size_t n) {
    size_t needed = HashReserveCapacity(n);
    if (needed > capacity_) Rehash(HashCapacityPow2(needed));
  }

  /// Approximate heap footprint, for memory accounting in benchmarks. Does
  /// not include heap memory owned by keys/values themselves.
  size_t ApproxBytes() const {
    return capacity_ * (sizeof(Slot) + sizeof(uint8_t));
  }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1 };

  void ReserveForInsert() {
    if (HashNeedsGrowth(size_, capacity_)) {
      Rehash(capacity_ == 0 ? 8 : capacity_ * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_states = std::move(states_);
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    slots_.assign(capacity_, Slot{});
    states_.assign(capacity_, kEmpty);

    for (size_t i = 0; i < old_capacity; ++i) {
      if (old_states[i] == kFull) {
        size_t idx = FindSlot(old_slots[i].key);
        slots_[idx] = std::move(old_slots[i]);
        states_[idx] = kFull;
      }
    }
  }

  size_t FindSlot(const K& key) const {
    size_t idx = hash_(key) & mask_;
    while (true) {
      if (states_[idx] != kFull) return idx;
      if (slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask_;
    }
  }

  Hash hash_{};
  std::vector<Slot> slots_;
  std::vector<uint8_t> states_;
  size_t size_ = 0;
  size_t capacity_ = 0;
  size_t mask_ = 0;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_FLAT_HASH_MAP_H_
