// Deterministic, seeded fault-injection registry.
//
// A *failpoint* is a named site in the code (e.g. "serve.publish") that can be
// armed to throw util::InjectedFault on a deterministic, seeded schedule.  The
// ingest/serve robustness tests use this to drive chaos sweeps: arm every site
// with a per-seed probability, run a workload, and check engine/serving
// consistency after every injected fault.
//
// Design goals:
//   * Zero cost when nothing is armed: the FIVM_FAIL_POINT macro checks one
//     relaxed atomic and only enters the registry when at least one site is
//     armed.  Production builds can additionally compile all sites out with
//     -DFIVM_FAILPOINTS=OFF (CMake option), which defines FIVM_FAILPOINTS_OFF.
//   * Determinism: each site draws from its own splitmix64 stream seeded from
//     hash(site) ^ seed, so a given (site, seed) pair always produces the same
//     fire/no-fire sequence regardless of which other sites are armed.  Under
//     concurrency the per-site draw sequence is still fixed; only which thread
//     consumes which draw depends on scheduling.
//   * Env arming for chaos CI: FIVM_FAILPOINTS="serve.publish=0.1,exec.task=0.05"
//     (or "*=0.1" for every site) plus FIVM_FAILPOINT_SEED=<n> arms sites at
//     process start without code changes. Full per-entry grammar:
//
//       site=<prob>                fire with probability <prob>
//       site=<prob>/<max_fires>    ... at most <max_fires> times
//       site=n<N>                  fire on exactly the N-th evaluation
//       ...!kill                   any of the above with `!kill` appended
//                                  _exit()s at the site instead of throwing
//
//     e.g. FIVM_FAILPOINTS="wal.append=0.01!kill,ckpt.rename=n2!kill".
//
// Modes per site:
//   Arm(site, p, seed[, max_fires[, action]])
//       fire each evaluation with probability p, at most max_fires times
//       (0 = unlimited).
//   ArmNth(site, n[, action])
//       fire on exactly the n-th evaluation (1-based); used to target e.g.
//       "the first worker task of a batch".
//
// Actions: FailAction::kThrow (default) raises InjectedFault for the
// supervision paths to retry; FailAction::kKill calls _exit(kKillExitCode)
// at the site — simulated process death for the crash-recovery harness
// (tests/recovery_chaos_test.cc forks a child, arms kill sites, and
// recovers from whatever the dead child left on disk).
#ifndef FIVM_UTIL_FAIL_POINT_H_
#define FIVM_UTIL_FAIL_POINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fivm::util {

// Exception thrown by an armed failpoint.  Supervisors treat it like any other
// transient failure; tests catch it specifically to distinguish injected
// faults from real bugs.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

struct FailPointStats {
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

/// What an armed site does when its schedule fires.
enum class FailAction : uint8_t {
  kThrow,  // throw InjectedFault (supervisors retry past it)
  kKill,   // _exit(kKillExitCode): simulated crash, nothing unwinds/flushes
};

/// Exit code of a kKill fire; distinct from common test-failure codes so a
/// fork-based harness can tell "killed at the armed site" from a real abort.
inline constexpr int kKillExitCode = 86;

class FailPointRegistry {
 public:
  // Process-wide registry.  First call parses FIVM_FAILPOINTS /
  // FIVM_FAILPOINT_SEED from the environment.
  static FailPointRegistry& Default();

  // Probability mode.  p is clamped to [0,1]; max_fires==0 means unlimited.
  void Arm(const std::string& site, double probability, uint64_t seed,
           uint64_t max_fires = 0, FailAction action = FailAction::kThrow);
  // Wildcard: every site evaluated while armed draws from its own stream
  // seeded with `seed`.
  void ArmAll(double probability, uint64_t seed, uint64_t max_fires = 0);
  // Fire on exactly the nth evaluation of `site` (1-based), once.
  void ArmNth(const std::string& site, uint64_t nth,
              FailAction action = FailAction::kThrow);

  void Disarm(const std::string& site);
  void DisarmAll();

  FailPointStats Stats(const std::string& site) const;
  uint64_t TotalFires() const;
  uint64_t TotalEvaluations() const;

  // Parse a comma-separated arming spec; each entry is
  // "site=<prob>[/<max_fires>][!kill]" or "site=n<N>[!kill]" and site may be
  // "*" (probability entries only).  Used for the FIVM_FAILPOINTS env var;
  // exposed for tests.  Returns false on a malformed spec (registry state is
  // unchanged for the malformed entry; well-formed entries before it are
  // applied).
  bool ConfigureFromSpec(const std::string& spec, uint64_t seed);

  // Evaluate `site`; throws InjectedFault when the site's schedule fires.
  // Called via the FIVM_FAIL_POINT macro only when at least one site is armed.
  void MaybeFail(const char* site);

  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

 private:
  FailPointRegistry();
  ~FailPointRegistry();
  struct Impl;
  Impl* impl_;
};

// True when at least one site (or the wildcard) is armed.  Cheap: one relaxed
// atomic load; kept outside the registry so the hot-path macro does not pay
// for the Default() init check.
bool FailPointsArmed();

}  // namespace fivm::util

#if defined(FIVM_FAILPOINTS_OFF)
#define FIVM_FAIL_POINT(site) \
  do {                        \
  } while (0)
#else
#define FIVM_FAIL_POINT(site)                                      \
  do {                                                             \
    if (::fivm::util::FailPointsArmed()) [[unlikely]] {            \
      ::fivm::util::FailPointRegistry::Default().MaybeFail(site);  \
    }                                                              \
  } while (0)
#endif

#endif  // FIVM_UTIL_FAIL_POINT_H_
