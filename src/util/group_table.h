#ifndef FIVM_UTIL_GROUP_TABLE_H_
#define FIVM_UTIL_GROUP_TABLE_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/memory_tracker.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define FIVM_GROUP_TABLE_SSE2 1
#endif

namespace fivm::util {

/// SwissTable-style probing core shared by every hash structure in the
/// engine (util::FlatHashMap, Relation::SlotIndex and, through FlatHashMap,
/// Relation::SecondaryIndex). One probing / growth / deletion semantics
/// instead of three.
///
/// Layout: a separate control array of one byte per slot runs parallel to
/// the slot array. A control byte is either a sentinel (empty, deleted) or
/// the 7-bit H2 tag of the slot's hash. Capacities are multiples of the
/// 16-slot group width with a power-of-two group count, and probing is
/// *group-aligned*: a probe loads one 16-byte control group at a time
/// (SSE2 `_mm_cmpeq_epi8` + movemask, or a SWAR scalar fallback) and
/// compares H2 tags for 16 candidate slots before touching any slot data.
/// Groups never straddle the table end, so no mirrored control bytes are
/// needed. The group sequence is triangular quadratic (step 1, 2, 3, …),
/// which visits every group of a power-of-two table exactly once.
///
/// H1/H2 split: both halves come from the same 64-bit hash the caller
/// already has (tuple hashes are cached, see Tuple) — H1 = hash >> 7 picks
/// the home group, H2 = hash & 0x7f is the tag byte. No extra hashing.
///
/// Deletion is tombstone-free-on-rehash: erasing a slot whose group still
/// holds an empty byte re-empties it outright (no probe chain can have
/// passed a non-full group), otherwise it leaves a tombstone that probes
/// skip; every rehash rebuilds the control array from live slots only, so
/// tombstones never survive a growth or a same-capacity purge.
inline constexpr size_t kGroupWidth = 16;

inline constexpr int8_t kCtrlEmpty = -128;  // 0b10000000
inline constexpr int8_t kCtrlDeleted = -2;  // 0b11111110

constexpr uint64_t GroupH1(uint64_t hash) { return hash >> 7; }
constexpr int8_t GroupH2(uint64_t hash) {
  return static_cast<int8_t>(hash & 0x7f);
}

/// Smallest valid table capacity (a multiple of kGroupWidth with a
/// power-of-two group count) that holds `n` slots under the 3/4 load
/// ceiling. (SwissTable's classic 7/8 was measured slower here: the
/// engine's hit path pays an extra entry-pool dereference per probe, so
/// group-overflow hops cost more than they do with inline slots; 3/4 also
/// matches the growth schedule of the cells this core replaced, and the
/// control bytes keep misses one-group cheap either way.)
constexpr size_t GroupCapacityFor(size_t n) {
  size_t cap = kGroupWidth;
  while (n * 4 > cap * 3) cap <<= 1;
  return cap;
}

/// Home group of `hash` in a table of `capacity` slots — the sort key of
/// home-cell-clustered bulk absorbs (relation_ops.h): inserting keys in
/// ascending home group sweeps the control and slot arrays sequentially.
constexpr size_t GroupHomeIndex(uint64_t hash, size_t capacity) {
  return GroupH1(hash) & (capacity / kGroupWidth - 1);
}

/// One 16-byte control group. `Match*` return a bitmask with bit i set for
/// matching byte i; iterate with `mask &= mask - 1` + countr_zero.
#if defined(FIVM_GROUP_TABLE_SSE2)
struct SseGroup {
  __m128i ctrl;

  explicit SseGroup(const int8_t* p)
      : ctrl(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))) {}

  uint32_t Match(int8_t h2) const {
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(ctrl, _mm_set1_epi8(h2))));
  }
  uint32_t MatchEmpty() const { return Match(kCtrlEmpty); }
  /// Empty and deleted are the only bytes with the sign bit set.
  uint32_t MatchEmptyOrDeleted() const {
    return static_cast<uint32_t>(_mm_movemask_epi8(ctrl));
  }
};
#endif

/// Portable fallback: two 8-byte SWAR words per group. MatchH2 may report a
/// false positive when adjacent bytes straddle the pattern; callers always
/// confirm with a full hash / key comparison, so false positives only cost
/// a wasted compare. Sentinel matches (high bit set) are exact.
struct ScalarGroup {
  uint64_t lo, hi;

  explicit ScalarGroup(const int8_t* p) {
    std::memcpy(&lo, p, 8);
    std::memcpy(&hi, p + 8, 8);
  }

  static constexpr uint64_t kLsbs = 0x0101010101010101ULL;
  static constexpr uint64_t kMsbs = 0x8080808080808080ULL;

  static uint32_t MatchWord(uint64_t w, uint8_t byte) {
    uint64_t x = w ^ (kLsbs * byte);
    uint64_t hit = (x - kLsbs) & ~x & kMsbs;
    // Compress the per-byte high bits to one bit per byte.
    uint32_t m = 0;
    while (hit != 0) {
      int b = std::countr_zero(hit);
      m |= 1u << (b / 8);
      hit &= hit - 1;
    }
    return m;
  }

  uint32_t Match(int8_t h2) const {
    uint8_t b = static_cast<uint8_t>(h2);
    return MatchWord(lo, b) | (MatchWord(hi, b) << 8);
  }
  uint32_t MatchEmpty() const {
    // Empty = 0b10000000: high bit set, bit 6 clear (deleted has bit 6 set).
    auto match = [](uint64_t w) {
      uint64_t hit = w & ~(w << 1) & kMsbs;
      uint32_t m = 0;
      while (hit != 0) {
        int b = std::countr_zero(hit);
        m |= 1u << (b / 8);
        hit &= hit - 1;
      }
      return m;
    };
    return match(lo) | (match(hi) << 8);
  }
  uint32_t MatchEmptyOrDeleted() const {
    auto match = [](uint64_t w) {
      uint64_t hit = w & kMsbs;
      uint32_t m = 0;
      while (hit != 0) {
        int b = std::countr_zero(hit);
        m |= 1u << (b / 8);
        hit &= hit - 1;
      }
      return m;
    };
    return match(lo) | (match(hi) << 8);
  }
};

#if defined(FIVM_GROUP_TABLE_SSE2)
using Group = SseGroup;
#else
using Group = ScalarGroup;
#endif

#if defined(__GNUC__) || defined(__clang__)
#define FIVM_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define FIVM_PREFETCH(addr) ((void)0)
#endif

/// The probing engine: owns the control array and a parallel slot array.
/// Hashing and key equality stay with the caller — `Find`/`FindOrInsert`
/// take the precomputed 64-bit hash plus an `eq(const Slot&)` predicate,
/// and any operation that may rehash takes a `hash_of(const Slot&)` functor
/// to re-derive slot hashes (FlatHashMap hashes the stored key;
/// Relation::SlotIndex stores the hash in the slot). All probe paths are
/// allocation-free.
///
/// Slots are default-constructed up to capacity and reset to `Slot{}` on
/// erase, so `Slot` must be default-constructible and movable; a control
/// byte, never slot state, says whether a slot is live.
template <typename Slot>
class GroupTable {
 public:
  GroupTable() = default;

  /// Moves leave the source a valid empty table: the arrays transfer, so
  /// the scalar bookkeeping must reset with them or the source would lie
  /// about storage it no longer owns (scratch-slot reuse refills
  /// moved-from tables).
  GroupTable(GroupTable&& o) noexcept
      : ctrl_(std::move(o.ctrl_)),
        slots_(std::move(o.slots_)),
        size_(o.size_),
        deleted_(o.deleted_),
        capacity_(o.capacity_),
        group_mask_(o.group_mask_) {
    o.ForgetStorage();
  }
  GroupTable& operator=(GroupTable&& o) noexcept {
    if (this == &o) return *this;
    ctrl_ = std::move(o.ctrl_);
    slots_ = std::move(o.slots_);
    size_ = o.size_;
    deleted_ = o.deleted_;
    capacity_ = o.capacity_;
    group_mask_ = o.group_mask_;
    o.ForgetStorage();
    return *this;
  }
  GroupTable(const GroupTable&) = default;
  GroupTable& operator=(const GroupTable&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Releases all storage (vector::clear would keep the heap buffers —
  /// SlotIndex::Reset's oversized-scratch drop relies on actually freeing
  /// them).
  void Clear() {
    std::vector<int8_t>().swap(ctrl_);
    std::vector<Slot>().swap(slots_);
    ForgetStorage();
  }

  /// Empties the table but keeps the allocated arrays: the control bytes
  /// re-empty (one byte per slot — 16× cheaper than refilling 16-byte
  /// cells) and slots reset only when they own resources.
  void ResetKeepCapacity() {
    if (capacity_ == 0) return;
    if (size_ != 0 || deleted_ != 0) {
      if constexpr (!std::is_trivially_destructible_v<Slot>) {
        for (size_t i = 0; i < capacity_; ++i) {
          if (ctrl_[i] >= 0) slots_[i] = Slot{};
        }
      }
      std::memset(ctrl_.data(), static_cast<unsigned char>(kCtrlEmpty),
                  capacity_);
    }
    size_ = 0;
    deleted_ = 0;
  }

  /// Pointer to the slot whose H2 matches and `eq` accepts, or nullptr.
  /// Allocation-free; most misses cost one control-group load.
  template <typename Eq>
  Slot* Find(uint64_t hash, Eq&& eq) {
    if (size_ == 0) return nullptr;
    const int8_t h2 = GroupH2(hash);
    size_t g = GroupH1(hash) & group_mask_;
    size_t step = 0;
    // Start the home group's slot line fetch in parallel with the control
    // load + tag match: on a hit the slot load lands on an in-flight line,
    // collapsing the ctrl→slot half of the dependent chain (the entry/key
    // dereference the caller's eq performs remains the only serial hop).
    PrefetchGroupSlots(g);
    while (true) {
      Group grp(ctrl_.data() + g * kGroupWidth);
      for (uint32_t m = grp.Match(h2); m != 0; m &= m - 1) {
        size_t i = g * kGroupWidth +
                   static_cast<size_t>(std::countr_zero(m));
        if (eq(const_cast<const Slot&>(slots_[i]))) {
          FIVM_OBS_SAMPLE_PROBE(h2, step + 1);
          return &slots_[i];
        }
      }
      if (grp.MatchEmpty() != 0) {
        FIVM_OBS_SAMPLE_PROBE(h2, step + 1);
        return nullptr;
      }
      g = (g + ++step) & group_mask_;
    }
  }

  template <typename Eq>
  const Slot* Find(uint64_t hash, Eq&& eq) const {
    return const_cast<GroupTable*>(this)->Find(hash, eq);
  }

  /// Finds the slot matching (`hash`, `eq`) or claims a fresh one for it:
  /// returns {slot, true} when the caller must construct the new element
  /// into `*slot` (its control byte is already set). Growth uses `hash_of`
  /// to re-derive live slots' hashes.
  template <typename Eq, typename HashOf>
  std::pair<Slot*, bool> FindOrInsert(uint64_t hash, Eq&& eq,
                                      HashOf&& hash_of) {
    if (NeedsGrowth()) RehashForGrowth(hash_of);
    const int8_t h2 = GroupH2(hash);
    size_t g = GroupH1(hash) & group_mask_;
    size_t step = 0;
    size_t insert_at = kNpos;
    PrefetchGroupSlots(g);
    while (true) {
      Group grp(ctrl_.data() + g * kGroupWidth);
      for (uint32_t m = grp.Match(h2); m != 0; m &= m - 1) {
        size_t i = g * kGroupWidth +
                   static_cast<size_t>(std::countr_zero(m));
        if (eq(const_cast<const Slot&>(slots_[i]))) {
          FIVM_OBS_SAMPLE_PROBE(h2, step + 1);
          return {&slots_[i], false};
        }
      }
      if (insert_at == kNpos) {
        uint32_t m = grp.MatchEmptyOrDeleted();
        if (m != 0) {
          insert_at = g * kGroupWidth +
                      static_cast<size_t>(std::countr_zero(m));
        }
      }
      if (grp.MatchEmpty() != 0) {
        if (ctrl_[insert_at] == kCtrlDeleted) --deleted_;
        ctrl_[insert_at] = h2;
        ++size_;
        FIVM_OBS_SAMPLE_PROBE(h2, step + 1);
        return {&slots_[insert_at], true};
      }
      g = (g + ++step) & group_mask_;
    }
  }

  /// Claims a slot for a key the caller guarantees absent (bulk loads,
  /// rehash fills): single pass, no key comparisons.
  template <typename HashOf>
  Slot* InsertUnique(uint64_t hash, HashOf&& hash_of) {
    if (NeedsGrowth()) RehashForGrowth(hash_of);
    size_t i = FindInsertIndex(hash);
    if (ctrl_[i] == kCtrlDeleted) --deleted_;
    ctrl_[i] = GroupH2(hash);
    ++size_;
    return &slots_[i];
  }

  /// Erases the slot matching (`hash`, `eq`). Returns false when absent.
  template <typename Eq>
  bool Erase(uint64_t hash, Eq&& eq) {
    Slot* s = Find(hash, eq);
    if (s == nullptr) return false;
    EraseAt(static_cast<size_t>(s - slots_.data()));
    return true;
  }

  /// Erases slot `i` (obtained from Find): re-empty when the group still
  /// holds an empty byte — no probe chain can have continued past it —
  /// otherwise tombstone.
  void EraseAt(size_t i) {
    assert(i < capacity_ && ctrl_[i] >= 0);
    Group grp(ctrl_.data() + (i / kGroupWidth) * kGroupWidth);
    if (grp.MatchEmpty() != 0) {
      ctrl_[i] = kCtrlEmpty;
    } else {
      ctrl_[i] = kCtrlDeleted;
      ++deleted_;
    }
    slots_[i] = Slot{};
    --size_;
  }

  /// Starts the cache-line fetches a Find(hash, …) would wait on — the
  /// home group's control line and slot lines — without probing. Pipelined
  /// probe loops call this a few iterations ahead so the dependent
  /// ctrl→slot chain overlaps across independent probes.
  void PrefetchProbe(uint64_t hash) const {
    if (capacity_ == 0) return;
    size_t g = GroupH1(hash) & group_mask_;
    FIVM_PREFETCH(ctrl_.data() + g * kGroupWidth);
    PrefetchGroupSlots(g);
  }

  /// Ensures `n` live slots fit without further growth.
  template <typename HashOf>
  void Reserve(size_t n, HashOf&& hash_of) {
    size_t needed = GroupCapacityFor(n);
    if (needed > capacity_) Rehash(needed, hash_of);
  }

  /// The capacity this table would occupy after Reserve(n) — the mask the
  /// home-cell-clustered absorb path sorts against.
  size_t CapacityAfterReserve(size_t n) const {
    return std::max(capacity_, GroupCapacityFor(n));
  }

  /// Iterates over live slots: `fn(Slot&)` / `fn(const Slot&)`.
  template <typename Fn>
  void ForEachSlot(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] >= 0) fn(slots_[i]);
    }
  }
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] >= 0) fn(const_cast<const Slot&>(slots_[i]));
    }
  }

  /// Control bytes cost 1 byte per slot on top of the slot array.
  size_t ApproxBytes() const {
    return capacity_ * (sizeof(Slot) + sizeof(int8_t));
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  void ForgetStorage() {
    size_ = 0;
    deleted_ = 0;
    capacity_ = 0;
    group_mask_ = 0;
  }

  /// Prefetches the first cache lines of group `g`'s slots (both lines for
  /// small slots, whose 16-slot group spans ≤ 2 lines). Cheap enough to
  /// issue unconditionally on the probe entry path; wasted only on misses
  /// that never tag-match.
  void PrefetchGroupSlots(size_t g) const {
    const char* p = reinterpret_cast<const char*>(slots_.data()) +
                    g * kGroupWidth * sizeof(Slot);
    FIVM_PREFETCH(p);
    if constexpr (sizeof(Slot) * kGroupWidth > 64) {
      FIVM_PREFETCH(p + 64);
    }
  }

  /// Growth ceiling at 3/4 occupancy (see GroupCapacityFor), counting
  /// tombstones: past it, probe chains stop terminating quickly even when
  /// few slots are live.
  bool NeedsGrowth() const {
    return capacity_ == 0 || (size_ + deleted_ + 1) * 4 > capacity_ * 3;
  }

  template <typename HashOf>
  void RehashForGrowth(HashOf&& hash_of) {
    // When live slots would fit in half the ceiling, the table is mostly
    // tombstones: purge them at the same capacity instead of doubling.
    size_t new_capacity;
    if (capacity_ > 0 && (size_ + 1) * 8 <= capacity_ * 3) {  // ≤ 3/8 live
      new_capacity = capacity_;
    } else {
      new_capacity = capacity_ == 0 ? kGroupWidth : capacity_ * 2;
    }
    Rehash(new_capacity, hash_of);
  }

  /// First empty-or-deleted index on `hash`'s probe sequence.
  size_t FindInsertIndex(uint64_t hash) const {
    size_t g = GroupH1(hash) & group_mask_;
    size_t step = 0;
    while (true) {
      Group grp(ctrl_.data() + g * kGroupWidth);
      uint32_t m = grp.MatchEmptyOrDeleted();
      if (m != 0) {
        return g * kGroupWidth + static_cast<size_t>(std::countr_zero(m));
      }
      g = (g + ++step) & group_mask_;
    }
  }

  template <typename HashOf>
  void Rehash(size_t new_capacity, HashOf&& hash_of) {
    assert(new_capacity % kGroupWidth == 0 &&
           std::has_single_bit(new_capacity / kGroupWidth));
    MemoryTracker::RecordRehash();
    std::vector<int8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    group_mask_ = capacity_ / kGroupWidth - 1;
    ctrl_.assign(capacity_, kCtrlEmpty);
    slots_.clear();
    slots_.resize(capacity_);
    deleted_ = 0;  // tombstone-free: only live slots carry over

    for (size_t i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] >= 0) {
        uint64_t h = hash_of(const_cast<const Slot&>(old_slots[i]));
        size_t j = FindInsertIndex(h);
        ctrl_[j] = GroupH2(h);
        slots_[j] = std::move(old_slots[i]);
      }
    }
  }

  std::vector<int8_t> ctrl_;
  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t deleted_ = 0;
  size_t capacity_ = 0;
  size_t group_mask_ = 0;
};

}  // namespace fivm::util

#endif  // FIVM_UTIL_GROUP_TABLE_H_
