#ifndef FIVM_UTIL_CRC32C_H_
#define FIVM_UTIL_CRC32C_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace fivm::util {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// iSCSI/ext4/LevelDB checksum, and the one x86 implements in hardware
/// (SSE4.2 CRC32 instruction). The durability layer stamps it on every WAL
/// frame and checkpoint image; recovery treats a mismatch as a torn tail.
///
/// Running form: `crc = Crc32c(p, n, crc)` chains across buffers, with 0 as
/// the empty-prefix seed. The conventional init/final bit inversions are
/// internal, so chaining just feeds the previous return value back in and
/// `Crc32c(buf, n)` over a whole buffer equals any split of it.
///
/// Dispatch follows src/util/simd.h exactly, one rung down (SSE4.2 instead
/// of AVX2):
///  1. Build: non-x86-64 targets or -DFIVM_HWCRC=OFF (defines
///     FIVM_CRC32C_NO_SSE42) drop the hardware arm; every call takes the
///     slice-by-8 table fallback.
///  2. CPU: the hardware arm runs only when __builtin_cpu_supports("sse4.2").
///  3. Environment: FIVM_DISABLE_HWCRC=1 pins the table path at startup.
///  4. SetHardwareCrcActive(false/true): tests and benches toggle arms at
///     runtime (clamped to what build + CPU support). Both arms compute the
///     same function bit-for-bit; tests/crc32c_test.cc fuzzes them against
///     each other and against a bitwise reference.

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(FIVM_CRC32C_NO_SSE42)
#define FIVM_CRC32C_SSE42_BUILD 1
#endif

namespace detail {

#if defined(FIVM_CRC32C_SSE42_BUILD)
// The SSE4.2 arm, defined in src/util/crc32c_sse42.cc (the only TU built
// with -msse4.2). `state` is the pre-inverted running remainder.
uint32_t Crc32cSse42(uint32_t state, const uint8_t* p, size_t n);
#endif

// Slice-by-8 table arm, defined in src/util/crc32c.cc.
uint32_t Crc32cTable(uint32_t state, const uint8_t* p, size_t n);

inline bool CpuSupportsSse42Crc() {
#if defined(FIVM_CRC32C_SSE42_BUILD)
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

inline bool HwCrcStartupDefault() {
  if (!CpuSupportsSse42Crc()) return false;
  const char* env = std::getenv("FIVM_DISABLE_HWCRC");
  return env == nullptr || env[0] == '\0' || env[0] == '0';
}

inline std::atomic<bool>& HwCrcActiveFlag() {
  static std::atomic<bool> active{HwCrcStartupDefault()};
  return active;
}

}  // namespace detail

/// True when this binary contains the SSE4.2 arm at all.
constexpr bool HardwareCrcCompiledIn() {
#if defined(FIVM_CRC32C_SSE42_BUILD)
  return true;
#else
  return false;
#endif
}

/// True when the hardware arm could run here (build + CPU), regardless of
/// the current dispatch pin.
inline bool HardwareCrcSupported() { return detail::CpuSupportsSse42Crc(); }

/// The arm the next Crc32c call will take.
inline bool HardwareCrcActive() {
  return detail::HwCrcActiveFlag().load(std::memory_order_relaxed);
}

/// Pins dispatch (tests, differential fuzz). Enabling is clamped to
/// HardwareCrcSupported(); returns the previous state.
inline bool SetHardwareCrcActive(bool on) {
  return detail::HwCrcActiveFlag().exchange(on && HardwareCrcSupported(),
                                            std::memory_order_relaxed);
}

/// CRC-32C of `n` bytes at `data`, chained onto `crc` (0 = fresh).
inline uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t state = crc ^ 0xFFFFFFFFu;
#if defined(FIVM_CRC32C_SSE42_BUILD)
  if (HardwareCrcActive()) {
    return detail::Crc32cSse42(state, p, n) ^ 0xFFFFFFFFu;
  }
#endif
  return detail::Crc32cTable(state, p, n) ^ 0xFFFFFFFFu;
}

}  // namespace fivm::util

#endif  // FIVM_UTIL_CRC32C_H_
