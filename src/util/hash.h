#ifndef FIVM_UTIL_HASH_H_
#define FIVM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace fivm::util {

/// 64-bit finalizer from SplitMix64. Good avalanche behaviour; used as the
/// scalar hash and as the combiner step for tuple hashing.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent, left-fold combiner: tuple hashes are built by folding
/// value hashes left to right, which is what lets Tuple cache its hash and
/// extend it incrementally on Append/Concat without re-scanning.
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

inline uint64_t HashBytes(const void* data, size_t len) {
  // FNV-1a with a strong finalizer; strings are rare in the hot path (they
  // are dictionary-encoded at load time), so simplicity wins here.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace fivm::util

#endif  // FIVM_UTIL_HASH_H_
