#include "src/ml/linear_regression.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace fivm::ml {
namespace {

// Builds the normal-equation system from the payload: A θ = b with the bias
// folded in as a constant-1 feature (paper footnote 1).
//   A[0][0] = c,          A[0][1+i]   = SUM(x_i),
//   A[1+i][1+j] = SUM(x_i x_j),   b[0] = SUM(y),   b[1+i] = SUM(x_i y).
void BuildSystem(const RegressionPayload& p,
                 const std::vector<uint32_t>& features, uint32_t label,
                 std::vector<std::vector<double>>* a,
                 std::vector<double>* b) {
  size_t m = features.size() + 1;
  a->assign(m, std::vector<double>(m, 0.0));
  b->assign(m, 0.0);
  (*a)[0][0] = p.count();
  (*b)[0] = p.Sum(label);
  for (size_t i = 0; i < features.size(); ++i) {
    (*a)[0][i + 1] = p.Sum(features[i]);
    (*a)[i + 1][0] = p.Sum(features[i]);
    (*b)[i + 1] = p.Cofactor(features[i], label);
    for (size_t j = 0; j < features.size(); ++j) {
      (*a)[i + 1][j + 1] = p.Cofactor(features[i], features[j]);
    }
  }
}

double Quadratic(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, double yty,
                 const std::vector<double>& theta) {
  // theta^T A theta - 2 theta^T b + y^T y.
  size_t m = theta.size();
  double quad = 0.0, lin = 0.0;
  for (size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < m; ++j) row += a[i][j] * theta[j];
    quad += theta[i] * row;
    lin += theta[i] * b[i];
  }
  return quad - 2.0 * lin + yty;
}

}  // namespace

TrainResult TrainFromCofactor(const RegressionPayload& payload,
                              const std::vector<uint32_t>& feature_slots,
                              uint32_t label_slot,
                              const TrainOptions& options) {
  TrainResult result;
  size_t m = feature_slots.size() + 1;
  double n = payload.count();
  if (n <= 0.0) return result;

  std::vector<std::vector<double>> a;
  std::vector<double> b;
  BuildSystem(payload, feature_slots, label_slot, &a, &b);
  double yty = payload.Cofactor(label_slot, label_slot);

  std::vector<double> theta(m, 0.0);
  double alpha = options.step_size;
  double loss = Quadratic(a, b, yty, theta) / (2.0 * n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // g = (A θ - b) / n.
    std::vector<double> g(m, 0.0);
    double gnorm = 0.0;
    for (size_t i = 0; i < m; ++i) {
      double row = 0.0;
      for (size_t j = 0; j < m; ++j) row += a[i][j] * theta[j];
      g[i] = (row - b[i]) / n;
      gnorm += g[i] * g[i];
    }
    gnorm = std::sqrt(gnorm);
    result.iterations = iter;
    if (gnorm < options.tolerance) {
      result.converged = true;
      break;
    }
    // Backtracking line search on the exact quadratic loss.
    for (int bt = 0; bt < 60; ++bt) {
      std::vector<double> next = theta;
      for (size_t i = 0; i < m; ++i) next[i] -= alpha * g[i];
      double next_loss = Quadratic(a, b, yty, next) / (2.0 * n);
      if (next_loss <= loss) {
        theta = std::move(next);
        loss = next_loss;
        alpha *= 1.1;
        break;
      }
      alpha *= 0.5;
    }
  }
  result.theta = theta;
  result.mse = Quadratic(a, b, yty, theta) / n;
  return result;
}

TrainResult SolveLeastSquares(const RegressionPayload& payload,
                              const std::vector<uint32_t>& feature_slots,
                              uint32_t label_slot) {
  TrainResult result;
  size_t m = feature_slots.size() + 1;
  double n = payload.count();
  if (n <= 0.0) return result;

  std::vector<std::vector<double>> a;
  std::vector<double> b;
  BuildSystem(payload, feature_slots, label_slot, &a, &b);
  double yty = payload.Cofactor(label_slot, label_slot);

  // Ridge regularization keeps degenerate systems solvable.
  double trace = 0.0;
  for (size_t i = 0; i < m; ++i) trace += a[i][i];
  double ridge = trace > 0 ? trace * 1e-12 : 1e-12;
  for (size_t i = 0; i < m; ++i) a[i][i] += ridge;

  // Gaussian elimination with partial pivoting.
  std::vector<double> x = b;
  for (size_t col = 0; col < m; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < m; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(x[col], x[pivot]);
    double p = a[col][col];
    if (std::fabs(p) < 1e-300) continue;  // fully degenerate direction
    for (size_t r = col + 1; r < m; ++r) {
      double factor = a[r][col] / p;
      if (factor == 0.0) continue;
      for (size_t c = col; c < m; ++c) a[r][c] -= factor * a[col][c];
      x[r] -= factor * x[col];
    }
  }
  std::vector<double> theta(m, 0.0);
  for (size_t i = m; i-- > 0;) {
    double sum = x[i];
    for (size_t j = i + 1; j < m; ++j) sum -= a[i][j] * theta[j];
    theta[i] = std::fabs(a[i][i]) < 1e-300 ? 0.0 : sum / a[i][i];
  }

  result.theta = theta;
  result.converged = true;
  // Recompute the system without ridge for the reported MSE.
  BuildSystem(payload, feature_slots, label_slot, &a, &b);
  result.mse = Quadratic(a, b, yty, theta) / n;
  return result;
}

double MeanSquaredError(const RegressionPayload& payload,
                        const std::vector<uint32_t>& feature_slots,
                        uint32_t label_slot,
                        const std::vector<double>& theta) {
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  BuildSystem(payload, feature_slots, label_slot, &a, &b);
  double yty = payload.Cofactor(label_slot, label_slot);
  double n = payload.count();
  return n > 0 ? Quadratic(a, b, yty, theta) / n : 0.0;
}

}  // namespace fivm::ml
