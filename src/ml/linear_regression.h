#ifndef FIVM_ML_LINEAR_REGRESSION_H_
#define FIVM_ML_LINEAR_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "src/rings/regression_ring.h"

namespace fivm::ml {

/// Batch gradient descent over a maintained cofactor payload (Section 6.2).
/// The payload (c, s, Q) holds the sufficient statistics of the training
/// dataset (the join result); each convergence step costs O(m^2) and never
/// touches the data again — the property that makes maintaining the payload
/// incrementally worthwhile.
struct TrainOptions {
  double step_size = 0.1;     // initial α; adapted by backtracking
  int max_iterations = 10000;
  double tolerance = 1e-9;    // stop when the gradient norm falls below
};

struct TrainResult {
  /// theta[0] is the bias; theta[1 + i] multiplies feature_slots[i].
  std::vector<double> theta;
  int iterations = 0;
  /// Mean squared error on the training data, computed from the payload.
  double mse = 0.0;
  bool converged = false;
};

/// Trains f(x) = θ_0 + Σ_i θ_i x_i to predict the variable at `label_slot`
/// from the variables at `feature_slots`, using only the cofactor payload.
TrainResult TrainFromCofactor(const RegressionPayload& payload,
                              const std::vector<uint32_t>& feature_slots,
                              uint32_t label_slot,
                              const TrainOptions& options = TrainOptions());

/// Closed-form least squares via the normal equations (Gaussian elimination
/// with partial pivoting); used to validate gradient descent and as the
/// fast path when the system is well-conditioned.
TrainResult SolveLeastSquares(const RegressionPayload& payload,
                              const std::vector<uint32_t>& feature_slots,
                              uint32_t label_slot);

/// Mean squared error of `theta` (bias-first layout) on the dataset
/// summarized by `payload`.
double MeanSquaredError(const RegressionPayload& payload,
                        const std::vector<uint32_t>& feature_slots,
                        uint32_t label_slot, const std::vector<double>& theta);

}  // namespace fivm::ml

#endif  // FIVM_ML_LINEAR_REGRESSION_H_
