#ifndef FIVM_ML_COFACTOR_H_
#define FIVM_ML_COFACTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/ml/linear_regression.h"
#include "src/rings/lifting.h"
#include "src/rings/regression_ring.h"
#include "src/rings/ring.h"
#include "src/rings/sparse_regression_ring.h"

namespace fivm::ml {

/// Lifting map for the cofactor query over *all* query variables under the
/// degree-m matrix ring: g_X(x) = (1, s_slot = x, Q_slot,slot = x^2).
/// `slots` maps VarId -> aggregate slot (ViewTree::AssignAggregateSlots).
inline LiftingMap<RegressionRing> RegressionLiftings(
    const Query& query, const std::vector<uint32_t>& slots) {
  LiftingMap<RegressionRing> lifts;
  for (VarId v : query.AllVars()) {
    lifts.Set(v, RegressionLifting(slots[v]));
  }
  return lifts;
}

/// Same under the SQL-OPT degree-indexed encoding.
inline LiftingMap<SparseRegressionRing> SparseRegressionLiftings(
    const Query& query, const std::vector<uint32_t>& slots) {
  LiftingMap<SparseRegressionRing> lifts;
  for (VarId v : query.AllVars()) {
    lifts.Set(v, SparseRegressionLifting(slots[v]));
  }
  return lifts;
}

/// One scalar aggregate (a SUM with per-variable degree liftings), for the
/// DBT and 1-IVM baselines that maintain the cofactor matrix as
/// quadratically many independent scalar SUMs.
struct ScalarAggregateSpec {
  LiftingMap<F64Ring> lifts;
  std::vector<uint8_t> signature;  // degree per VarId (0, 1, or 2)
};

/// Builds the m + m(m+1)/2 + 1 scalar aggregates of the cofactor matrix:
/// SUM(1), SUM(x_i) for each variable, and SUM(x_i * x_j) for each pair.
/// `max_vars` optionally truncates the variable set (the baselines time out
/// on the full set — exactly the paper's observation — so benchmarks can
/// scale the aggregate count).
inline std::vector<ScalarAggregateSpec> ScalarRegressionAggregates(
    const Query& query, size_t max_vars = SIZE_MAX) {
  std::vector<VarId> vars;
  for (VarId v : query.AllVars()) {
    if (vars.size() >= max_vars) break;
    vars.push_back(v);
  }
  size_t sig_len = query.catalog().size();

  auto degree1 = [](const Value& x) { return x.AsDouble(); };
  auto degree2 = [](const Value& x) {
    double d = x.AsDouble();
    return d * d;
  };

  std::vector<ScalarAggregateSpec> out;
  // SUM(1).
  out.push_back(ScalarAggregateSpec{{}, std::vector<uint8_t>(sig_len, 0)});
  // SUM(x_i).
  for (VarId v : vars) {
    ScalarAggregateSpec spec;
    spec.signature.assign(sig_len, 0);
    spec.signature[v] = 1;
    spec.lifts.Set(v, degree1);
    out.push_back(std::move(spec));
  }
  // SUM(x_i * x_j), i <= j.
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = i; j < vars.size(); ++j) {
      ScalarAggregateSpec spec;
      spec.signature.assign(sig_len, 0);
      if (i == j) {
        spec.signature[vars[i]] = 2;
        spec.lifts.Set(vars[i], degree2);
      } else {
        spec.signature[vars[i]] = 1;
        spec.signature[vars[j]] = 1;
        spec.lifts.Set(vars[i], degree1);
        spec.lifts.Set(vars[j], degree1);
      }
      out.push_back(std::move(spec));
    }
  }
  return out;
}

/// Trains one model per group from a group-by cofactor view (Example 1.1:
/// "one model f for each pair of values (A,C)"). Each key of `grouped` maps
/// to the sufficient statistics of its group; training never revisits the
/// data.
inline std::vector<std::pair<Tuple, TrainResult>> TrainPerGroup(
    const Relation<RegressionRing>& grouped,
    const std::vector<uint32_t>& feature_slots, uint32_t label_slot) {
  std::vector<std::pair<Tuple, TrainResult>> models;
  grouped.ForEach([&](const Tuple& key, const RegressionPayload& payload) {
    models.emplace_back(key,
                        SolveLeastSquares(payload, feature_slots, label_slot));
  });
  return models;
}

}  // namespace fivm::ml

#endif  // FIVM_ML_COFACTOR_H_
