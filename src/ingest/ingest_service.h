// Streaming ingest front-end: the long-running service loop that turns the
// library's batch machinery into a deployment-shaped system. Producers Offer()
// single-tuple updates into bounded per-relation admission queues; a service
// thread moves admitted updates into the DeltaBatcher and flushes on EITHER
// trigger — enough buffered updates (flush-by-size) or the oldest admitted
// update aging past the flush deadline (flush-by-time) — then drives
// ParallelExecutor propagation and SnapshotServer::Publish, so every flush
// becomes one atomically visible snapshot step.
//
//   sources → Offer() → admission queues → DeltaBatcher → ParallelExecutor
//                                              → engine stores → Publish()
//
// Robustness properties:
//  * Admission control: each relation's queue is bounded and governed by an
//    AdmissionPolicy — kBlock (backpressure the producer), kShedNewest
//    (reject the incoming update), kDropOldest (evict the queue head). Every
//    outcome is counted (Stats + obs ingest.* counters).
//  * Graceful degradation: update visibility (steady-clock age of the oldest
//    update in a flushed window, recorded into the ingest.visibility_ns
//    histogram) is checked against ServiceOptions::visibility_slo; when more
//    than half the flushes in a window violate the SLO the service doubles
//    its effective batch window (size and deadline) — trading per-update
//    latency for throughput instead of falling over — and narrows it back
//    once a full window is clean.
//  * Fault supervision: Flush, ApplyBatch, Publish and MergeStep are wrapped
//    in retry-with-capped-backoff loops. The underlying operations are
//    all-or-nothing (batcher.flush / serve.publish failpoints sit before any
//    state change; the parallel executor stages every store delta until all
//    worker tasks succeed), so a retry can never double-apply. ApplyBatch
//    consumes its delta, so the supervisor retains a copy per flush for
//    retry (set max_retries=0 to skip both the copy and the supervision).
//    Publish failures past the retry budget are absorbed, not propagated:
//    staged segments stay staged and the next flush's publish makes them
//    visible — visibility delayed, never lost.
//  * Clean shutdown: Stop() stops admission, drains every queued update
//    through flush→apply→publish, then joins the service thread. With
//    kBlock admission nothing offered before Stop() is lost.
//  * Durability (optional): AttachDurability() wires a write-ahead log and
//    checkpointer into the loop. Under DurabilityPolicy::kWindow every
//    update entering the batcher is also staged into the WAL, and the
//    window's frames are sealed + group-fsync'd BEFORE the flush touches
//    any store — a crash mid-apply replays the whole window from the log.
//    If the seal cannot complete (e.g. disk full, modeled by the
//    "wal.append" failpoint) the window is shed wholesale: WAL staging and
//    batcher accumulators are discarded together, counted in
//    wal_failed_windows — degraded ingest, never an unlogged apply. kStrict
//    logs and fsyncs each update inside Offer() before admission completes
//    (one frame per update; pair it with kBlock/kShedNewest — kDropOldest
//    can evict an already-logged update, which recovery would then
//    resurrect). Checkpoints run between flush windows every
//    checkpoint_every_flushes flushes, when sealed == applied holds.
//
// Threading: any number of producer threads may Offer() concurrently; the
// single service thread owns batcher/executor/server (the engine write path
// is single-writer by contract). Tests can instead run the loop inline with
// PumpOnce()/DrainNow() — same code paths, no thread.
#ifndef FIVM_INGEST_INGEST_SERVICE_H_
#define FIVM_INGEST_INGEST_SERVICE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/durability/checkpoint.h"
#include "src/durability/wal.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/obs/metrics.h"
#include "src/serve/snapshot_server.h"
#include "src/util/fail_point.h"

namespace fivm::ingest {

/// What Offer() does when a relation's admission queue is full.
enum class AdmissionPolicy {
  kBlock,      // wait for the service to drain the queue (backpressure)
  kShedNewest, // reject the incoming update (Offer returns false)
  kDropOldest, // evict the oldest queued update, admit the incoming one
};

struct QueuePolicy {
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Maximum queued (admitted, not yet batched) updates for the relation.
  size_t capacity = 8192;
};

/// When (relative to admission/apply) updates reach the write-ahead log.
enum class DurabilityPolicy {
  kOff,     // no logging (AttachDurability not required)
  kWindow,  // log at batcher entry, seal + group-fsync before each apply
  kStrict,  // log + fsync each update inside Offer(), before admission
};

struct ServiceOptions {
  /// Flush-by-size: buffered updates (queue + batcher, pre-coalescing) that
  /// trigger a flush. Doubled per degradation level.
  size_t flush_updates = 512;
  /// Flush-by-time: a flush fires when the oldest admitted-but-unflushed
  /// update is older than this. Doubled per degradation level.
  std::chrono::microseconds flush_deadline{1000};
  /// Per-flush visibility SLO driving degradation; 0 disables degradation.
  std::chrono::microseconds visibility_slo{0};
  /// Flushes per SLO evaluation window: degrade when more than half the
  /// window violated the SLO, recover when the whole window was clean.
  size_t slo_window = 32;
  /// Ceiling on degradation: effective window = configured × 2^level.
  size_t max_degrade_level = 3;
  /// Supervision retry budget per operation (0 disables retry — faults
  /// then propagate out of the service loop — and skips the per-flush
  /// retry copy).
  size_t max_retries = 16;
  /// First retry sleep; doubles per attempt up to retry_backoff_cap.
  std::chrono::microseconds retry_backoff{50};
  std::chrono::microseconds retry_backoff_cap{10000};
  /// Run one SnapshotServer::MergeStep after each flush (no-op without a
  /// server; merge failures are counted and absorbed — the next flush
  /// retries).
  bool merge_each_flush = true;
  /// Admission policy applied to every relation unless overridden via
  /// SetQueuePolicy.
  QueuePolicy default_queue;
  /// Write-ahead logging mode; anything but kOff requires
  /// AttachDurability() before Start()/PumpOnce().
  DurabilityPolicy durability = DurabilityPolicy::kOff;
  /// Checkpoint after every N flush windows (0 disables automatic
  /// checkpoints). A failed checkpoint is counted and retried at the next
  /// flush boundary.
  size_t checkpoint_every_flushes = 0;
};

/// Counters mirrored into the obs registry as ingest.*; these live in every
/// build config (tests and benches read them with FIVM_METRICS=OFF too).
struct IngestStats {
  uint64_t admitted = 0;
  uint64_t shed = 0;          // kShedNewest rejections (+ offers after Stop)
  uint64_t dropped = 0;       // kDropOldest evictions
  uint64_t blocks = 0;        // kBlock wait episodes
  uint64_t flushes = 0;
  uint64_t size_flushes = 0;
  uint64_t deadline_flushes = 0;
  uint64_t drain_flushes = 0;
  uint64_t flush_retries = 0;
  uint64_t apply_retries = 0;
  uint64_t publish_retries = 0;
  uint64_t publish_failures = 0;  // retry budget exhausted (absorbed)
  uint64_t merge_failures = 0;    // absorbed; next flush retries
  /// Flush/apply retry budget exhausted on the service thread: the window's
  /// updates were abandoned (engine state stays consistent — the failed
  /// operation was all-or-nothing). Only non-zero under persistent faults.
  uint64_t failed_flushes = 0;
  uint64_t degrade_enters = 0;
  uint64_t degrade_exits = 0;
  uint64_t wal_appended = 0;       // updates staged into the WAL
  uint64_t wal_retries = 0;        // window-mode seal retries
  /// Windows (strict: single updates) shed because the WAL could not seal
  /// them within the retry budget — degraded ingest, never an unlogged
  /// apply (disk-full behaves like sustained shedding, not corruption).
  uint64_t wal_failed_windows = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;  // absorbed; retried next boundary
};

template <typename Ring>
  requires RingPolicy<Ring>
class IngestService {
 public:
  using Element = typename Ring::Element;
  using Clock = std::chrono::steady_clock;

  /// All pointees must outlive the service. `server` may be null (ingest
  /// without a serving layer). When a server is given the service installs
  /// its own supervised publish as the executor's post-batch hook and owns
  /// that wiring until destruction.
  IngestService(IvmEngine<Ring>* engine, exec::ParallelExecutor<Ring>* executor,
                exec::DeltaBatcher<Ring>* batcher,
                serve::SnapshotServer<Ring>* server, ServiceOptions options = {})
      : engine_(engine),
        executor_(executor),
        batcher_(batcher),
        server_(server),
        opts_(options) {
    queues_.resize(engine_->tree().query().relation_count());
    for (auto& q : queues_) q.policy = opts_.default_queue;
    if (server_ != nullptr) {
      executor_->SetPostBatchHook([this] { SupervisedPublish(); });
    }
    auto& reg = obs::MetricRegistry::Default();
    obs_admitted_ = reg.GetCounter("ingest.admitted");
    obs_shed_ = reg.GetCounter("ingest.shed");
    obs_dropped_ = reg.GetCounter("ingest.dropped");
    obs_blocks_ = reg.GetCounter("ingest.blocks");
    obs_flushes_ = reg.GetCounter("ingest.flushes");
    obs_retries_ = reg.GetCounter("ingest.retries");
    obs_degrades_ = reg.GetCounter("ingest.degrade_transitions");
    obs_wal_appended_ = reg.GetCounter("ingest.wal_appended");
    obs_wal_failed_ = reg.GetCounter("ingest.wal_failed_windows");
    obs_checkpoints_ = reg.GetCounter("ingest.checkpoints");
    obs_visibility_ns_ = reg.GetHistogram("ingest.visibility_ns");
    depth_gauge_token_ = reg.RegisterGauge("ingest.queue_depth", [this] {
      return static_cast<int64_t>(queued_depth_.load(std::memory_order_relaxed));
    });
    level_gauge_token_ = reg.RegisterGauge("ingest.degrade_level", [this] {
      return static_cast<int64_t>(
          degrade_level_.load(std::memory_order_relaxed));
    });
  }

  ~IngestService() {
    if (service_.joinable()) Stop();
    if (server_ != nullptr) executor_->SetPostBatchHook(nullptr);
    auto& reg = obs::MetricRegistry::Default();
    reg.UnregisterGauge("ingest.queue_depth", depth_gauge_token_);
    reg.UnregisterGauge("ingest.degrade_level", level_gauge_token_);
  }

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Per-relation admission override; call before producers start.
  void SetQueuePolicy(int relation, QueuePolicy policy) {
    queues_[static_cast<size_t>(relation)].policy = policy;
  }

  /// Wires the durability layer in; call before Start()/PumpOnce() and keep
  /// both pointees alive for the service's lifetime. `ckpt` may be null
  /// (WAL-only durability: recovery replays the whole log). The WAL is
  /// driven from the service thread under kWindow and from inside Offer()
  /// (under the admission lock) under kStrict — never both.
  void AttachDurability(durability::WalWriter* wal,
                        durability::Checkpointer<Ring>* ckpt) {
    wal_ = wal;
    ckpt_ = ckpt;
  }

  /// Admits one update (any thread). Returns false when the update was shed:
  /// queue full under kShedNewest, or the service is stopping. Under kBlock
  /// a full queue blocks until the service drains it (or Stop() begins).
  bool Offer(int relation, const Tuple& key, Element payload) {
    const uint64_t now = NowNs();
    std::unique_lock<std::mutex> lk(mu_);
    RelQueue& rq = queues_[static_cast<size_t>(relation)];
    if (!accepting_) {
      Shed(1);
      return false;
    }
    while (rq.q.size() >= rq.policy.capacity) {
      switch (rq.policy.admission) {
        case AdmissionPolicy::kShedNewest:
          Shed(1);
          return false;
        case AdmissionPolicy::kDropOldest:
          if (rq.q.empty()) {  // capacity 0: nothing to evict, shed instead
            Shed(1);
            return false;
          }
          rq.q.pop_front();
          --queued_total_;
          stats_.dropped += 1;
          obs_dropped_->Inc();
          continue;
        case AdmissionPolicy::kBlock:
          stats_.blocks += 1;
          obs_blocks_->Inc();
          space_cv_.wait(lk, [&] {
            return !accepting_ || rq.q.size() < rq.policy.capacity;
          });
          if (!accepting_) {
            Shed(1);
            return false;
          }
          continue;
      }
    }
    if (opts_.durability == DurabilityPolicy::kStrict && wal_ != nullptr) {
      // Log-at-admission: the update is durable (frame written + fsync'd)
      // before Offer() acknowledges it. Single attempt — mu_ is held, so
      // the retry/backoff machinery (which takes mu_) cannot run; a WAL
      // failure sheds this one update instead.
      try {
        wal_->Append<Ring>(relation, key, payload);
        wal_->Seal(/*sync=*/true);
        stats_.wal_appended += 1;
        obs_wal_appended_->Inc();
      } catch (const std::exception&) {
        wal_->DropPending();
        stats_.wal_failed_windows += 1;
        obs_wal_failed_->Inc();
        Shed(1);
        return false;
      }
    }
    rq.q.push_back(Pending{key, std::move(payload), now});
    ++queued_total_;
    queued_depth_.store(queued_total_, std::memory_order_relaxed);
    stats_.admitted += 1;
    obs_admitted_->Inc();
    lk.unlock();
    ingest_cv_.notify_one();
    return true;
  }

  /// Starts the service thread. Pair with Stop(); do not mix with
  /// PumpOnce()/DrainNow().
  void Start() {
    assert(!service_.joinable());
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = false;
      accepting_ = true;
    }
    service_ = std::thread([this] { ServiceLoop(); });
  }

  /// Stops admission, drains everything already admitted (flush → apply →
  /// publish), and joins the service thread.
  void Stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      accepting_ = false;
      stop_ = true;
    }
    ingest_cv_.notify_all();
    space_cv_.notify_all();
    if (service_.joinable()) service_.join();
  }

  /// Synchronous single step for tests and benches (no service thread):
  /// admits queued updates into the batcher and flushes when a trigger
  /// holds (or unconditionally with force_flush). Returns true when a
  /// flush ran. Producers on other threads may Offer() concurrently, but
  /// beware kBlock with a single thread: an Offer that blocks with nobody
  /// pumping deadlocks — use a capacity ≥ the offered burst.
  bool PumpOnce(bool force_flush = false) {
    MoveQueuedToBatcher();
    FlushTrigger trigger;
    if (force_flush) {
      trigger = FlushTrigger::kDrain;
    } else if (batcher_->pending_updates() >= EffectiveFlushUpdates()) {
      trigger = FlushTrigger::kSize;
    } else if (batcher_->pending_updates() > 0 &&
               NowNs() >= window_oldest_ns_ + EffectiveDeadlineNs()) {
      trigger = FlushTrigger::kDeadline;
    } else {
      return false;
    }
    if (batcher_->pending_updates() == 0) return false;
    FlushWindow(trigger);
    return true;
  }

  /// Drains every queued update through flush/apply/publish, inline.
  void DrainNow() {
    bool more = true;
    while (more) {
      PumpOnce(/*force_flush=*/true);
      std::lock_guard<std::mutex> lk(mu_);
      more = queued_total_ > 0;
    }
  }

  IngestStats GetStats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }
  size_t degrade_level() const {
    return degrade_level_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const {
    return queued_depth_.load(std::memory_order_relaxed);
  }
  size_t EffectiveFlushUpdates() const {
    return opts_.flush_updates
           << degrade_level_.load(std::memory_order_relaxed);
  }
  uint64_t EffectiveDeadlineNs() const {
    return static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   opts_.flush_deadline)
                   .count())
           << degrade_level_.load(std::memory_order_relaxed);
  }

  /// Per-flush visibility callback (latency in ns), invoked on the service
  /// thread after each flush; benches use this for per-arm histograms.
  void SetVisibilityProbe(std::function<void(uint64_t)> probe) {
    visibility_probe_ = std::move(probe);
  }

 private:
  struct Pending {
    Tuple key;
    Element payload;
    uint64_t arrival_ns;
  };
  struct RelQueue {
    QueuePolicy policy;
    std::deque<Pending> q;
  };
  enum class FlushTrigger { kSize, kDeadline, kDrain };

  static uint64_t NowNs() {
    // steady_clock, not obs::TickClock: control decisions must work with
    // FIVM_METRICS=OFF (where TickClock::Now() is a zero stub).
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  void Shed(uint64_t n) {  // caller holds mu_
    stats_.shed += n;
    obs_shed_->Add(n);
  }

  /// The service thread: wait for work, admit, flush on whichever trigger
  /// fires first, drain on stop.
  void ServiceLoop() {
    for (;;) {
      FlushTrigger trigger = FlushTrigger::kSize;
      {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
          if (stop_) break;
          const size_t window = batcher_->pending_updates();
          if (queued_total_ == 0 && window == 0) {
            ingest_cv_.wait(lk, [&] { return stop_ || queued_total_ > 0; });
            continue;
          }
          if (queued_total_ + window >= EffectiveFlushUpdates()) {
            trigger = FlushTrigger::kSize;
            break;
          }
          const uint64_t oldest =
              std::min(window > 0 ? window_oldest_ns_ : kNoDeadline,
                       OldestQueuedLocked());
          const uint64_t due_ns = oldest + EffectiveDeadlineNs();
          if (NowNs() >= due_ns) {
            trigger = FlushTrigger::kDeadline;
            break;
          }
          ingest_cv_.wait_until(
              lk, Clock::time_point(std::chrono::nanoseconds(due_ns)));
        }
        if (stop_) break;
      }
      MoveQueuedToBatcher();
      if (batcher_->pending_updates() > 0) {
        // An exception here means a retry budget was exhausted under a
        // persistent fault. Letting it escape the service thread would
        // std::terminate; engine/serving state is still consistent
        // (failed operations are all-or-nothing), so count the lost
        // window and keep serving.
        try {
          FlushWindow(trigger);
        } catch (const std::exception&) {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.failed_flushes += 1;
        }
      }
    }
    // Shutdown drain: admission is closed (Stop set accepting_ = false), so
    // this terminates; everything admitted becomes visible before join.
    try {
      DrainNow();
    } catch (const std::exception&) {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.failed_flushes += 1;
    }
  }

  uint64_t OldestQueuedLocked() const {
    uint64_t oldest = kNoDeadline;
    for (const RelQueue& rq : queues_) {
      if (!rq.q.empty()) oldest = std::min(oldest, rq.q.front().arrival_ns);
    }
    return oldest;
  }

  /// Moves queued updates into the batcher, up to one effective window's
  /// worth, oldest-first across relations; wakes blocked producers.
  void MoveQueuedToBatcher() {
    moved_.clear();
    {
      std::lock_guard<std::mutex> lk(mu_);
      size_t budget = EffectiveFlushUpdates();
      const size_t pending = batcher_->pending_updates();
      budget = budget > pending ? budget - pending : 0;
      for (size_t r = 0; r < queues_.size() && budget > 0; ++r) {
        auto& q = queues_[r].q;
        while (!q.empty() && budget > 0) {
          moved_.emplace_back(static_cast<int>(r), std::move(q.front()));
          q.pop_front();
          --queued_total_;
          --budget;
        }
      }
      queued_depth_.store(queued_total_, std::memory_order_relaxed);
    }
    if (!moved_.empty()) space_cv_.notify_all();
    const bool log_window = opts_.durability == DurabilityPolicy::kWindow &&
                            wal_ != nullptr;
    for (auto& [rel, p] : moved_) {
      window_oldest_ns_ = std::min(window_oldest_ns_, p.arrival_ns);
      // Window-mode logging happens here — at batcher entry — so the WAL's
      // staged frames cover exactly the updates the next seal/flush pair
      // makes durable and applied.
      if (log_window) wal_->template Append<Ring>(rel, p.key, p.payload);
      batcher_->Push(rel, std::move(p.key), std::move(p.payload));
    }
    if (log_window && !moved_.empty()) {
      const uint64_t n = moved_.size();
      obs_wal_appended_->Add(n);
      std::lock_guard<std::mutex> lk(mu_);
      stats_.wal_appended += n;
    }
    moved_.clear();
  }

  /// One supervised flush→apply[→merge] pass over the current window.
  /// (Publish runs inside ApplyBatch via the post-batch hook.)
  void FlushWindow(FlushTrigger trigger) {
    const uint64_t window_oldest = window_oldest_ns_;
    window_oldest_ns_ = kNoDeadline;
    bool sealed = false;
    if (opts_.durability == DurabilityPolicy::kWindow && wal_ != nullptr &&
        wal_->HasPending()) {
      // Write-ahead: the window's frames hit the disk (one group fsync)
      // before any delta touches a store. A seal that cannot complete sheds
      // the whole window — WAL staging and batcher accumulators dropped
      // together, so nothing is ever applied unlogged. (If the failure
      // struck after some frames were written, recovery may replay a
      // superset of what the live engine applied — over-delivery, never a
      // logged-but-lost update.)
      if (!SupervisedSeal()) {
        wal_->DropPending();
        batcher_->Flush();  // discard the undurable window
        std::lock_guard<std::mutex> lk(mu_);
        stats_.wal_failed_windows += 1;
        obs_wal_failed_->Inc();
        return;
      }
      sealed = true;
    }
    std::vector<typename exec::DeltaBatcher<Ring>::Batch> batches;
    try {
      batches = SupervisedFlush();
      for (auto& b : batches) {
        SupervisedApply(b.relation, std::move(b.delta));
      }
    } catch (...) {
      // Retry budget exhausted after a successful seal: the WAL is now
      // ahead of the engine, so a checkpoint stamped at the sealed LSN
      // would misrepresent the stores. Recovery-by-replay stays correct
      // (and even restores this lost window); just stop checkpointing.
      if (sealed) wal_ahead_of_engine_ = true;
      throw;
    }
    // Visibility is stamped here: every update in the window is applied and
    // published (readers see it). The merge below is compaction, not
    // visibility.
    const uint64_t vis_ns = NowNs() - window_oldest;
    obs_visibility_ns_->Record(vis_ns);
    if (visibility_probe_) visibility_probe_(vis_ns);
    if (server_ != nullptr && opts_.merge_each_flush) {
      try {
        server_->MergeStep();
      } catch (const std::exception&) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.merge_failures += 1;  // segments wait for the next flush
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.flushes += 1;
      switch (trigger) {
        case FlushTrigger::kSize: stats_.size_flushes += 1; break;
        case FlushTrigger::kDeadline: stats_.deadline_flushes += 1; break;
        case FlushTrigger::kDrain: stats_.drain_flushes += 1; break;
      }
    }
    obs_flushes_->Inc();
    UpdateDegradation(vis_ns);
    MaybeCheckpoint();
  }

  /// Checkpoint between flush windows, every checkpoint_every_flushes
  /// flushes. Window mode: sealed == applied holds right here (the window
  /// just sealed was just applied), no locking needed beyond service-thread
  /// ownership. Strict mode: Offer() seals ahead of apply, so the image is
  /// only valid when nothing is in flight — taken under mu_ (blocking
  /// producers for the duration) with empty queues and an empty batcher.
  /// Failures are counted and the saturated flush counter retries at the
  /// next boundary.
  void MaybeCheckpoint() {
    if (ckpt_ == nullptr || wal_ == nullptr ||
        opts_.checkpoint_every_flushes == 0 ||
        opts_.durability == DurabilityPolicy::kOff || wal_ahead_of_engine_) {
      return;
    }
    if (++flushes_since_ckpt_ < opts_.checkpoint_every_flushes) return;
    if (opts_.durability == DurabilityPolicy::kStrict) {
      std::lock_guard<std::mutex> lk(mu_);
      if (queued_total_ > 0 || batcher_->pending_updates() > 0) return;
      try {
        ckpt_->WriteCheckpoint();
        flushes_since_ckpt_ = 0;
        stats_.checkpoints += 1;
        obs_checkpoints_->Inc();
      } catch (const std::exception&) {
        stats_.checkpoint_failures += 1;
      }
      return;
    }
    try {
      ckpt_->WriteCheckpoint();
      flushes_since_ckpt_ = 0;
      std::lock_guard<std::mutex> lk(mu_);
      stats_.checkpoints += 1;
      obs_checkpoints_->Inc();
    } catch (const std::exception&) {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.checkpoint_failures += 1;
    }
  }

  /// Window-mode seal with the standard retry/backoff envelope. Returns
  /// false on exhaustion (caller sheds the window). Seal() re-writes only
  /// the still-unwritten pending frames on retry and re-arms the group
  /// fsync, so a mid-seal fault never duplicates a frame.
  bool SupervisedSeal() {
    auto backoff = opts_.retry_backoff;
    for (size_t attempt = 0;; ++attempt) {
      try {
        wal_->Seal(/*sync=*/true);
        return true;
      } catch (const std::exception&) {
        if (attempt >= opts_.max_retries) return false;
        CountRetry(&IngestStats::wal_retries);
        Backoff(&backoff);
      }
    }
  }

  /// Widens the batch window ×2 per level under sustained SLO violation,
  /// narrows it back after a clean window.
  void UpdateDegradation(uint64_t vis_ns) {
    if (opts_.visibility_slo.count() <= 0) return;
    const uint64_t slo_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            opts_.visibility_slo)
            .count());
    slo_flushes_ += 1;
    if (vis_ns > slo_ns) slo_violations_ += 1;
    if (slo_flushes_ < opts_.slo_window) return;
    const size_t level = degrade_level_.load(std::memory_order_relaxed);
    if (slo_violations_ * 2 > slo_flushes_ && level < opts_.max_degrade_level) {
      degrade_level_.store(level + 1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      stats_.degrade_enters += 1;
      obs_degrades_->Inc();
    } else if (slo_violations_ == 0 && level > 0) {
      degrade_level_.store(level - 1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      stats_.degrade_exits += 1;
      obs_degrades_->Inc();
    }
    slo_flushes_ = 0;
    slo_violations_ = 0;
  }

  std::vector<typename exec::DeltaBatcher<Ring>::Batch> SupervisedFlush() {
    // Flush throws only before surrendering any accumulator (its failpoint
    // sits at entry), so a failed flush is retried verbatim.
    auto backoff = opts_.retry_backoff;
    for (size_t attempt = 0;; ++attempt) {
      try {
        return batcher_->Flush();
      } catch (const std::exception&) {
        if (attempt >= opts_.max_retries) throw;
        CountRetry(&IngestStats::flush_retries);
        Backoff(&backoff);
      }
    }
  }

  void SupervisedApply(int relation, Relation<Ring> delta) {
    if (opts_.max_retries == 0) {
      executor_->ApplyBatch(relation, std::move(delta));
      return;
    }
    // ApplyBatch consumes its delta but is all-or-nothing with respect to
    // engine state (and the publish hook never throws — see
    // SupervisedPublish), so retrying from a retained copy cannot
    // double-apply.
    auto backoff = opts_.retry_backoff;
    for (size_t attempt = 0;; ++attempt) {
      Relation<Ring> attempt_delta(delta);
      try {
        executor_->ApplyBatch(relation, std::move(attempt_delta));
        return;
      } catch (const std::exception&) {
        if (attempt >= opts_.max_retries) throw;
        CountRetry(&IngestStats::apply_retries);
        Backoff(&backoff);
      }
    }
  }

  /// Post-batch hook: publish with retry, absorbing exhaustion. Publish
  /// runs inside ApplyBatch (after the batch merged into the stores), so an
  /// escaping exception would make the apply supervisor re-run an already
  /// applied batch; instead a publish that stays down only delays
  /// visibility — segments remain staged for the next publish.
  void SupervisedPublish() {
    auto backoff = opts_.retry_backoff;
    for (size_t attempt = 0;; ++attempt) {
      try {
        server_->Publish();
        return;
      } catch (const std::exception&) {
        if (attempt >= opts_.max_retries) {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.publish_failures += 1;
          return;
        }
        CountRetry(&IngestStats::publish_retries);
        Backoff(&backoff);
      }
    }
  }

  void CountRetry(uint64_t IngestStats::* field) {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.*field += 1;
    obs_retries_->Inc();
  }

  void Backoff(std::chrono::microseconds* backoff) {
    std::this_thread::sleep_for(*backoff);
    *backoff = std::min(*backoff * 2, opts_.retry_backoff_cap);
  }

  static constexpr uint64_t kNoDeadline =
      std::numeric_limits<uint64_t>::max();

  IvmEngine<Ring>* engine_;
  exec::ParallelExecutor<Ring>* executor_;
  exec::DeltaBatcher<Ring>* batcher_;
  serve::SnapshotServer<Ring>* server_;  // may be null
  ServiceOptions opts_;

  /// Durability layer (AttachDurability); both may be null under kOff.
  durability::WalWriter* wal_ = nullptr;
  durability::Checkpointer<Ring>* ckpt_ = nullptr;

  /// Admission state (mu_). queued_total_ mirrors into queued_depth_ for
  /// lock-free gauge reads.
  mutable std::mutex mu_;
  std::condition_variable ingest_cv_;  // service waits for work
  std::condition_variable space_cv_;   // kBlock producers wait for space
  std::vector<RelQueue> queues_;
  size_t queued_total_ = 0;
  bool accepting_ = true;
  bool stop_ = false;
  IngestStats stats_;  // guarded by mu_

  /// Service-thread-only state.
  std::thread service_;
  std::vector<std::pair<int, Pending>> moved_;  // MoveQueuedToBatcher scratch
  uint64_t window_oldest_ns_ = kNoDeadline;  // oldest unflushed arrival
  size_t slo_flushes_ = 0;
  size_t slo_violations_ = 0;
  size_t flushes_since_ckpt_ = 0;
  /// A window sealed into the WAL but abandoned mid-apply (retry budget
  /// exhausted): checkpoints are disabled from here on — see FlushWindow.
  bool wal_ahead_of_engine_ = false;
  std::function<void(uint64_t)> visibility_probe_;

  std::atomic<size_t> degrade_level_{0};
  std::atomic<size_t> queued_depth_{0};

  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_blocks_ = nullptr;
  obs::Counter* obs_flushes_ = nullptr;
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_degrades_ = nullptr;
  obs::Counter* obs_wal_appended_ = nullptr;
  obs::Counter* obs_wal_failed_ = nullptr;
  obs::Counter* obs_checkpoints_ = nullptr;
  obs::Histogram* obs_visibility_ns_ = nullptr;
  uint64_t depth_gauge_token_ = 0;
  uint64_t level_gauge_token_ = 0;
};

}  // namespace fivm::ingest

#endif  // FIVM_INGEST_INGEST_SERVICE_H_
