#ifndef FIVM_SERVE_EPOCH_H_
#define FIVM_SERVE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace fivm::serve {

/// Epoch-based reclamation registry for snapshot readers: a fixed array of
/// cache-line-separated reader slots, each holding the epoch its reader
/// pinned (or kInactive). Readers pin with a store/validate loop; the
/// writer advances the epoch after every version swap and frees a retired
/// version only once every active slot pins a *later* epoch.
///
/// Memory-order contract (all epoch/pin operations are seq_cst; the proof
/// needs a single total order across the three atomics involved):
///
///  - Reader pin:   slot.store(e); if (epoch.load() == e) done else retry.
///  - Writer swap:  current.store(next); retire(old, re = epoch.load());
///                  epoch.fetch_add(1).
///  - Writer free:  scan all slots; free retired(re) iff min pin > re.
///
/// Safety: suppose a reader pinned e <= re but the writer's scan missed it
/// and freed the version the reader still dereferences. The scan runs after
/// the epoch advance (re -> re+1); if it missed the pin, the pin store is
/// ordered after the scan's slot load, so the reader's validating epoch
/// load — ordered after its own pin store — observes >= re+1 and the pin
/// retries with e >= re+1: contradiction. Conversely a validated pin
/// e >= re+1 is ordered after the advance, hence after the version swap,
/// so its subsequent load of the current version sees `next` (or newer),
/// never the retired version. Unpin is a release store and the scan's slot
/// loads are acquires, so the reader's last access to the version
/// happens-before the writer's free (what TSan checks on the fuzz test).
///
/// Slots are claimed per live Snapshot (CAS over the array — lock-free,
/// typically one probe); the *lookup* path never touches the registry at
/// all, which is what keeps reads wait-free.
class EpochRegistry {
 public:
  static constexpr uint32_t kMaxReaders = 64;
  static constexpr uint64_t kInactive = ~uint64_t{0};

  uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Writer-side: starts a new epoch after a version swap.
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_seq_cst); }

  /// Returned by TryAcquireSlot when every slot holds a live snapshot.
  static constexpr uint32_t kNoSlot = kMaxReaders;

  /// One pass over the slot array: claims and returns a free reader slot,
  /// or returns kNoSlot when the registry is saturated (all kMaxReaders
  /// slots hold live snapshots). The non-blocking primitive behind both
  /// AcquireSlot and SnapshotServer::TryAcquire.
  uint32_t TryAcquireSlot() {
    for (uint32_t i = 0; i < kMaxReaders; ++i) {
      uint32_t expect = 0;
      if (slots_[i].claimed.load(std::memory_order_relaxed) == 0 &&
          slots_[i].claimed.compare_exchange_strong(
              expect, 1, std::memory_order_acquire)) {
        return i;
      }
    }
    return kNoSlot;
  }

  /// Claims a free reader slot, spinning (with yield) while all kMaxReaders
  /// slots hold live snapshots. Callers that cannot tolerate waiting for a
  /// reader to release — or that might saturate the registry themselves —
  /// use TryAcquireSlot and handle kNoSlot instead of blocking here.
  uint32_t AcquireSlot() {
    for (;;) {
      uint32_t slot = TryAcquireSlot();
      if (slot != kNoSlot) return slot;
      std::this_thread::yield();
    }
  }

  void ReleaseSlot(uint32_t slot) {
    slots_[slot].claimed.store(0, std::memory_order_release);
  }

  /// Pins the current epoch into `slot` (validated — see the class
  /// comment) and returns it. The loop re-runs only when a writer advanced
  /// the epoch mid-pin, so it terminates as soon as publishes pause and is
  /// bounded in practice by the publish rate.
  uint64_t Pin(uint32_t slot) {
    Slot& s = slots_[slot];
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      s.pinned.store(e, std::memory_order_seq_cst);
      uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (now == e) return e;
      e = now;
    }
  }

  void Unpin(uint32_t slot) {
    slots_[slot].pinned.store(kInactive, std::memory_order_release);
  }

  /// Smallest epoch any active slot pins, or kInactive when none is
  /// pinned. A retired version with retire-epoch re is reclaimable iff
  /// re < MinPinned().
  uint64_t MinPinned() const {
    uint64_t min = kInactive;
    for (const Slot& s : slots_) {
      uint64_t p = s.pinned.load(std::memory_order_acquire);
      if (p < min) min = p;
    }
    return min;
  }

  /// Number of currently pinned slots (the serve.pinned_epochs gauge).
  int64_t PinnedCount() const {
    int64_t n = 0;
    for (const Slot& s : slots_) {
      if (s.pinned.load(std::memory_order_acquire) != kInactive) ++n;
    }
    return n;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> pinned{kInactive};
    std::atomic<uint32_t> claimed{0};
  };
  std::atomic<uint64_t> epoch_{1};
  Slot slots_[kMaxReaders];
};

}  // namespace fivm::serve

#endif  // FIVM_SERVE_EPOCH_H_
