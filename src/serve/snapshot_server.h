#ifndef FIVM_SERVE_SNAPSHOT_SERVER_H_
#define FIVM_SERVE_SNAPSHOT_SERVER_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/obs/metrics.h"
#include "src/serve/epoch.h"
#include "src/util/fail_point.h"

namespace fivm::serve {

/// When a store's differential is folded into its next base generation.
/// A merge fires when EITHER bound is hit; MergeNow() ignores both.
struct MergePolicy {
  /// Frozen segments a store accumulates before a merge folds them.
  size_t max_segments = 8;
  /// Total differential keys (summed over segments) that trigger a merge.
  size_t max_diff_keys = 4096;
  /// Absorb the coalesced differential into the cloned base in destination
  /// home-cell order (relation_ops.h AbsorbIntoClustered) instead of
  /// arrival order. The merge path is the friendliest shape the ordering
  /// can get — off the serving hot path, against a presized clone, no
  /// growth rehash — and it still loses: bench_serve's fold A/B measures
  /// ordered at 0.87–0.97x arrival (medians of 15 interleaved reps, 224k-
  /// and 1.1M-key folds), the permuted source gather again costing about
  /// what the destination locality saves. Default off; the knob remains
  /// for re-measurement on other cache hierarchies.
  bool clustered_absorb = false;
};

/// The concurrent read path over an IvmEngine's view stores (the serving
/// half of F-IVM's promise: views are maintained *to be queried*).
///
/// Design: every served store is published as an immutable *generation*
/// (a frozen Relation behind shared_ptr<const>) plus an ordered list of
/// frozen *differential segments* — one per publish that touched the store.
/// One VersionSet bundles all served stores at a publish sequence number;
/// a single atomic pointer swap per publish makes snapshots consistent
/// across stores. The writer-side flow:
///
///  - the engine's store-delta observer tees every absorbed store delta
///    into a small mutable staging relation per served store (the only
///    mutable differential state, touched exclusively by the writer);
///  - Publish() — wired per batch via ParallelExecutor::SetPostBatchHook —
///    freezes dirty staging relations into segments by move, swaps in a new
///    VersionSet, retires the old one, and advances the reclamation epoch;
///  - MergeStep()/MergeNow() (explicit, or StartBackgroundMerge's thread)
///    folds base ⊎ segments into the next generation off-lock: segments
///    coalesce into one differential, the base clones with headroom
///    (Relation's extra-capacity constructor — one final index capacity, no
///    mid-merge rehash), and the differential bulk-absorbs in destination
///    home-cell order (MergePolicy::clustered_absorb).
///
/// Readers call Acquire() for an RAII Snapshot: pin an epoch slot
/// (lock-free), load the current VersionSet, and read. Point lookups and
/// scans see (base ⊎ segments) — a ring-sum over at most 1 + segment-count
/// immutable probes — and are wait-free: no lock, no refcount, no
/// allocation on the lookup path (tests/zero_alloc_probe_test.cc proves
/// the scalar-ring case). Retired VersionSets are freed only after every
/// snapshot pinned at or before their retire epoch drains
/// (serve/epoch.h has the full memory-order argument).
///
/// Threading contract: deltas + Publish() on one writer thread; merges on
/// one merger thread at a time (serialized internally, so the background
/// merger and explicit MergeNow calls may overlap); any number of reader
/// threads up to EpochRegistry::kMaxReaders live snapshots. The server
/// registers itself as the engine's store-delta observer for its lifetime
/// and must outlive every Snapshot it hands out. Engine::Initialize
/// bypasses the observer — construct the server afterwards, or Rebase().
template <typename Ring>
class SnapshotServer {
 public:
  using Element = typename Ring::Element;
  using Rel = Relation<Ring>;
  using RelPtr = std::shared_ptr<const Rel>;

  /// One served store at one publish: an immutable base generation plus
  /// the frozen differential segments published after it (oldest first).
  /// Segments hold ring *deltas*: a reader's value for a key is the ring
  /// sum of the base hit and every segment hit.
  struct StoreVersion {
    RelPtr base;
    std::vector<RelPtr> segments;
    uint64_t base_gen = 0;
  };

  /// All served stores at one publish sequence. Immutable once installed;
  /// the atomic current-set pointer is the only mutable cell readers touch.
  struct VersionSet {
    uint64_t seq = 0;
    std::vector<StoreVersion> stores;
  };

  /// `engine` must outlive the server. `nodes` are the view-tree nodes to
  /// serve (each must be materialized); the single-argument overload serves
  /// the root. Served-store contents are frozen from the engine's current
  /// stores at construction.
  SnapshotServer(IvmEngine<Ring>* engine, std::vector<int> nodes,
                 MergePolicy policy = {})
      : engine_(engine), nodes_(std::move(nodes)), policy_(policy) {
    slot_of_node_.assign(engine_->tree().nodes().size(), -1);
    staging_.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      assert(engine_->tree().node(nodes_[i]).materialized &&
             "can only serve materialized stores");
      slot_of_node_[nodes_[i]] = static_cast<int>(i);
      staging_.emplace_back(engine_->store(nodes_[i]).schema());
      dirty_.push_back(0);
    }
    auto& reg = obs::MetricRegistry::Default();
    obs_reads_ = reg.GetCounter("serve.reads");
    obs_base_hits_ = reg.GetCounter("serve.base_hits");
    obs_diff_hits_ = reg.GetCounter("serve.diff_hits");
    obs_publishes_ = reg.GetCounter("serve.publishes");
    obs_merges_ = reg.GetCounter("serve.merges");
    obs_reclaimed_gens_ = reg.GetCounter("serve.reclaimed_generations");
    obs_merge_failures_ = reg.GetCounter("serve.merge_failures");
    obs_merge_ns_ = reg.GetHistogram("serve.merge_ns");
    pinned_gauge_token_ = reg.RegisterGauge(
        "serve.pinned_epochs", [this] { return epochs_.PinnedCount(); });
    segments_gauge_token_ = reg.RegisterGauge("serve.segments", [this] {
      return static_cast<int64_t>(
          segment_count_.load(std::memory_order_relaxed));
    });

    auto* init = new VersionSet();
    init->stores.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      init->stores[i].base = MakeGeneration(Rel(engine_->store(nodes_[i])));
    }
    current_.store(init, std::memory_order_seq_cst);
    engine_->SetStoreDeltaObserver(
        [this](int node, const Rel& delta) { OnStoreDelta(node, delta); });
  }

  SnapshotServer(IvmEngine<Ring>* engine, MergePolicy policy = {})
      : SnapshotServer(engine, std::vector<int>{engine->tree().root()},
                       policy) {}

  ~SnapshotServer() {
    StopBackgroundMerge();
    engine_->SetStoreDeltaObserver(nullptr);
    assert(epochs_.PinnedCount() == 0 &&
           "snapshots must not outlive their server");
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [epoch, set] : retired_) delete set;
      retired_.clear();
      delete current_.load(std::memory_order_relaxed);
    }
    auto& reg = obs::MetricRegistry::Default();
    reg.UnregisterGauge("serve.pinned_epochs", pinned_gauge_token_);
    reg.UnregisterGauge("serve.segments", segments_gauge_token_);
  }

  SnapshotServer(const SnapshotServer&) = delete;
  SnapshotServer& operator=(const SnapshotServer&) = delete;

  /// RAII read handle: pins an epoch at construction, releases it at
  /// destruction. All reads dereference the immutable VersionSet captured
  /// at acquisition — nothing a concurrent writer publishes changes what
  /// this snapshot sees. Move-only; must not outlive the server.
  class Snapshot {
   public:
    Snapshot(Snapshot&& o) noexcept
        : server_(o.server_), set_(o.set_), slot_(o.slot_) {
      o.server_ = nullptr;
    }
    Snapshot& operator=(Snapshot&& o) noexcept {
      if (this != &o) {
        Release();
        server_ = o.server_;
        set_ = o.set_;
        slot_ = o.slot_;
        o.server_ = nullptr;
      }
      return *this;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    ~Snapshot() { Release(); }

    /// Publish sequence this snapshot observes: the store state after
    /// exactly the first seq() published batches.
    uint64_t seq() const { return set_->seq; }

    size_t store_count() const { return set_->stores.size(); }
    uint64_t base_gen(size_t store = 0) const {
      return set_->stores[store].base_gen;
    }
    size_t segment_count(size_t store = 0) const {
      return set_->stores[store].segments.size();
    }
    const Schema& schema(size_t store = 0) const {
      return set_->stores[store].base->schema();
    }

    /// Wait-free point lookup against (base ⊎ differential): writes the
    /// ring sum of the base hit and every segment hit into `*out` and
    /// returns true iff the key is live (non-zero sum). `key` may be a
    /// Tuple or TupleView. No lock, no refcount, no allocation for
    /// scalar-payload rings (heavier rings may grow `*out` once; reuse it
    /// across calls for an allocation-free steady state).
    template <typename K>
    bool Lookup(const K& key, Element* out, size_t store = 0) const {
      const StoreVersion& sv = set_->stores[store];
      bool have = false;
      bool diff_hit = false;
      if (const Element* b = sv.base->Find(key)) {
        *out = *b;
        have = true;
      }
      for (const RelPtr& seg : sv.segments) {
        const Element* d = seg->Find(key);
        if (d == nullptr) continue;
        diff_hit = true;
        if (have) {
          Ring::AddInPlace(*out, *d);
        } else {
          *out = *d;
          have = true;
        }
      }
      server_->obs_reads_->Inc();
      if (diff_hit) {
        server_->obs_diff_hits_->Inc();
      } else if (have) {
        server_->obs_base_hits_->Inc();
      }
      return have && !Ring::IsZero(*out);
    }

    template <typename K>
    bool Contains(const K& key, size_t store = 0) const {
      Element scratch;
      return Lookup(key, &scratch, store);
    }

    /// Full scan of (base ⊎ differential): `fn(const Tuple&, const
    /// Element&)` once per live key with its summed payload. Keys claimed
    /// by any segment are emitted in the segment pass (combined across
    /// segments and base); untouched base keys pass through by reference.
    /// Cost: one probe into each other layer per differential-touched key.
    template <typename Fn>
    void ForEach(Fn&& fn, size_t store = 0) const {
      const StoreVersion& sv = set_->stores[store];
      const auto& segs = sv.segments;
      if (segs.empty()) {
        sv.base->ForEach(fn);
        return;
      }
      sv.base->ForEach([&](const Tuple& k, const Element& p) {
        for (const RelPtr& s : segs) {
          if (s->Contains(k)) return;
        }
        fn(k, p);
      });
      Element acc;
      for (size_t si = 0; si < segs.size(); ++si) {
        segs[si]->ForEach([&](const Tuple& k, const Element& p) {
          // A key is emitted at its first (oldest) live segment occurrence.
          for (size_t sj = 0; sj < si; ++sj) {
            if (segs[sj]->Contains(k)) return;
          }
          acc = p;
          for (size_t sj = si + 1; sj < segs.size(); ++sj) {
            if (const Element* d = segs[sj]->Find(k)) {
              Ring::AddInPlace(acc, *d);
            }
          }
          if (const Element* b = sv.base->Find(k)) {
            Ring::AddInPlace(acc, *b);
          }
          if (!Ring::IsZero(acc)) fn(k, acc);
        });
      }
    }

    /// Live keys in the snapshot (scan-priced when segments are present).
    size_t Size(size_t store = 0) const {
      const StoreVersion& sv = set_->stores[store];
      if (sv.segments.empty()) return sv.base->size();
      size_t n = 0;
      ForEach([&n](const Tuple&, const Element&) { ++n; }, store);
      return n;
    }

    /// Materializes the snapshot's view of `store` as a plain Relation
    /// (test/verification helper; not a read-path operation).
    Rel Materialize(size_t store = 0) const {
      Rel out(schema(store));
      ForEach([&out](const Tuple& k, const Element& p) { out.Add(k, p); },
              store);
      return out;
    }

   private:
    friend class SnapshotServer;
    explicit Snapshot(const SnapshotServer* server)
        : Snapshot(server, server->epochs_.AcquireSlot()) {}
    /// Adopts a pre-claimed epoch slot (TryAcquire path).
    Snapshot(const SnapshotServer* server, uint32_t slot)
        : server_(server), slot_(slot) {
      server_->epochs_.Pin(slot_);
      set_ = server_->current_.load(std::memory_order_seq_cst);
    }
    void Release() {
      if (server_ == nullptr) return;
      server_->epochs_.Unpin(slot_);
      server_->epochs_.ReleaseSlot(slot_);
      server_ = nullptr;
    }

    const SnapshotServer* server_;
    const VersionSet* set_;
    uint32_t slot_;
  };

  /// Pins the current version for reading. Lock-free (one slot CAS + the
  /// pin/validate loop); safe from any thread, concurrent with writes and
  /// merges. Spins while all EpochRegistry::kMaxReaders reader slots hold
  /// live snapshots — callers that may saturate the registry (or cannot
  /// block) use TryAcquire instead.
  Snapshot Acquire() const { return Snapshot(this); }

  /// Non-blocking Acquire: returns std::nullopt when every reader slot
  /// holds a live snapshot (the registry is saturated). The caller decides
  /// the retry policy — back off and retry, shed the read, or release one
  /// of its own snapshots (acquiring again after a release always succeeds
  /// eventually, since only live Snapshots hold slots).
  std::optional<Snapshot> TryAcquire() const {
    uint32_t slot = epochs_.TryAcquireSlot();
    if (slot == EpochRegistry::kNoSlot) return std::nullopt;
    return Snapshot(this, slot);
  }

  /// Freezes every dirty staging relation into a published segment and
  /// swaps in the next VersionSet; returns its sequence number (unchanged
  /// when nothing was staged). Writer-thread only — wire it per batch via
  /// ParallelExecutor::SetPostBatchHook, or call explicitly after
  /// ApplyDelta.
  uint64_t Publish() {
    // Failpoint before any staging relation is frozen: a publish that
    // throws here changed nothing — staged deltas stay staged, dirty flags
    // stay set — so the caller retries Publish() as-is, or simply lets the
    // next publish pick the segments up (visibility is delayed, never
    // lost or duplicated).
    FIVM_FAIL_POINT("serve.publish");
    bool any = false;
    for (char d : dirty_) any |= (d != 0);
    if (!any) {
      // Nothing staged: report the current sequence. The lock (not a pin)
      // keeps a concurrent background merge from retiring-and-reclaiming
      // the set between the load and the deref.
      std::lock_guard<std::mutex> lk(mu_);
      return current_.load(std::memory_order_relaxed)->seq;
    }
    std::lock_guard<std::mutex> lk(mu_);
    const VersionSet* old = current_.load(std::memory_order_relaxed);
    auto* next = new VersionSet(*old);
    next->seq = old->seq + 1;
    for (size_t i = 0; i < staging_.size(); ++i) {
      if (!dirty_[i]) continue;
      dirty_[i] = 0;
      Schema schema = staging_[i].schema();
      if (staging_[i].empty()) {
        // Every staged key cancelled; drop the tombstones.
        staging_[i] = Rel(std::move(schema));
        continue;
      }
      next->stores[i].segments.push_back(
          std::make_shared<const Rel>(std::move(staging_[i])));
      staging_[i] = Rel(std::move(schema));
    }
    stats_publishes_.fetch_add(1, std::memory_order_relaxed);
    obs_publishes_->Inc();
    InstallLocked(next);
    return next->seq;
  }

  /// One merge pass under the current MergePolicy; returns how many stores
  /// folded their differential into a new base generation. The fold runs
  /// off the writer lock against a pinned snapshot; only the final install
  /// takes it. Merges are serialized against each other internally.
  size_t MergeStep() { return MergeImpl(/*force=*/false); }

  /// Folds every non-empty differential regardless of policy bounds.
  size_t MergeNow() { return MergeImpl(/*force=*/true); }

  /// Frees retired VersionSets whose last possible reader has drained.
  /// Publish and merge reclaim opportunistically; tests and the background
  /// merger call this to reclaim without publishing.
  void Reclaim() {
    std::lock_guard<std::mutex> lk(mu_);
    ReclaimLocked();
  }

  /// Runs MergeStep (and reclamation) every `interval` on a background
  /// thread until StopBackgroundMerge or destruction.
  ///
  /// The merge body is exception-hardened: a throw out of MergeStep (an
  /// injected "serve.merge*" fault, a real transient failure) would
  /// otherwise escape the thread and std::terminate the process. Instead
  /// the failure is counted (MergeFailureCount, obs serve.merge_failures)
  /// and the thread retries with exponentially growing sleep, capped at
  /// max(64×interval, 100ms); a successful pass resets the backoff. A
  /// failed merge installs nothing (see MergeImpl), so retrying is always
  /// safe — segments just stay differential a little longer.
  void StartBackgroundMerge(
      std::chrono::milliseconds interval = std::chrono::milliseconds(1)) {
    if (merger_.joinable()) return;
    merger_stop_.store(false, std::memory_order_relaxed);
    merger_ = std::thread([this, interval] {
      const std::chrono::milliseconds cap =
          std::max(interval * 64, std::chrono::milliseconds(100));
      std::chrono::milliseconds sleep = interval;
      while (!merger_stop_.load(std::memory_order_acquire)) {
        try {
          if (MergeStep() == 0) Reclaim();
          sleep = interval;
        } catch (...) {
          stats_merge_failures_.fetch_add(1, std::memory_order_relaxed);
          obs_merge_failures_->Inc();
          sleep = std::min(sleep * 2, cap);
        }
        std::unique_lock<std::mutex> lk(merger_mu_);
        merger_cv_.wait_for(lk, sleep, [this] {
          return merger_stop_.load(std::memory_order_acquire);
        });
      }
    });
  }

  void StopBackgroundMerge() {
    if (!merger_.joinable()) return;
    {
      std::lock_guard<std::mutex> lk(merger_mu_);
      merger_stop_.store(true, std::memory_order_release);
    }
    merger_cv_.notify_all();
    merger_.join();
  }

  /// Re-freezes every served base from the engine's current stores,
  /// dropping all segments and staged state (IvmEngine::Initialize fills
  /// stores without firing the delta observer — call this after it).
  /// Writer-thread only.
  void Rebase() {
    std::lock_guard<std::mutex> lk(mu_);
    auto* next = new VersionSet();
    next->seq = current_.load(std::memory_order_relaxed)->seq + 1;
    next->stores.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      next->stores[i].base = MakeGeneration(Rel(engine_->store(nodes_[i])));
      staging_[i] = Rel(engine_->store(nodes_[i]).schema());
      dirty_[i] = 0;
    }
    InstallLocked(next);
  }

  const MergePolicy& policy() const { return policy_; }
  void set_policy(const MergePolicy& p) { policy_ = p; }

  /// Server-local statistics, independent of FIVM_METRICS (the obs
  /// counters mirror these into the process-wide registry).
  uint64_t PublishCount() const {
    return stats_publishes_.load(std::memory_order_relaxed);
  }
  uint64_t MergeCount() const {
    return stats_merges_.load(std::memory_order_relaxed);
  }
  uint64_t MergedKeys() const {
    return stats_merged_keys_.load(std::memory_order_relaxed);
  }
  /// Merge passes that threw (and were retried) on the background merger.
  uint64_t MergeFailureCount() const {
    return stats_merge_failures_.load(std::memory_order_relaxed);
  }
  uint64_t ReclaimedVersions() const {
    return stats_reclaimed_versions_.load(std::memory_order_relaxed);
  }
  /// Base generations whose memory was actually freed (counted by the
  /// generation deleter — a merge retires a base, but it is reclaimed only
  /// when the last VersionSet and snapshot referencing it drain).
  uint64_t ReclaimedGenerations() const {
    return reclaimed_generations_->load(std::memory_order_relaxed);
  }
  size_t RetiredCount() const {
    std::lock_guard<std::mutex> lk(mu_);
    return retired_.size();
  }
  size_t SegmentCount() const {
    return segment_count_.load(std::memory_order_relaxed);
  }
  int64_t PinnedCount() const { return epochs_.PinnedCount(); }

 private:
  /// Wraps a frozen generation so its eventual free is observable: the
  /// deleter owns the counters it touches (shared_ptr + registry-lifetime
  /// pointer), so it stays valid wherever the last reference dies.
  RelPtr MakeGeneration(Rel&& rel) {
    auto counter = reclaimed_generations_;
    obs::Counter* obs_counter = obs_reclaimed_gens_;
    return RelPtr(new Rel(std::move(rel)),
                  [counter, obs_counter](const Rel* p) {
                    counter->fetch_add(1, std::memory_order_relaxed);
                    obs_counter->Inc();
                    delete p;
                  });
  }

  /// Engine store-delta observer (writer thread): tees the delta into the
  /// served store's staging relation. Staging absorbs by ring addition, so
  /// several deltas to one store within a batch coalesce before freezing.
  void OnStoreDelta(int node, const Rel& delta) {
    int slot = slot_of_node_[node];
    if (slot < 0) return;
    AbsorbInto(staging_[static_cast<size_t>(slot)], delta);
    dirty_[static_cast<size_t>(slot)] = 1;
  }

  /// Swaps in `next`, retires the displaced set at the current epoch,
  /// advances the epoch, and reclaims what already drained. Caller holds
  /// mu_.
  void InstallLocked(const VersionSet* next) {
    const VersionSet* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_seq_cst);
    uint64_t retire_epoch = epochs_.CurrentEpoch();
    retired_.emplace_back(retire_epoch, old);
    epochs_.AdvanceEpoch();
    size_t segs = 0;
    for (const StoreVersion& sv : next->stores) segs += sv.segments.size();
    segment_count_.store(segs, std::memory_order_relaxed);
    ReclaimLocked();
  }

  void ReclaimLocked() {
    uint64_t min_pinned = epochs_.MinPinned();
    size_t kept = 0;
    for (auto& [epoch, set] : retired_) {
      if (epoch < min_pinned) {
        delete set;
        stats_reclaimed_versions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        retired_[kept++] = {epoch, set};
      }
    }
    retired_.resize(kept);
  }

  size_t MergeImpl(bool force) {
    // One merger at a time: segment-list prefixes below are only stable
    // when no other merge can install between the fold and the install.
    std::lock_guard<std::mutex> merge_lk(merge_mu_);
    // Failpoint at merge start: nothing folded, nothing installed. An
    // aborted merge leaves the version chain untouched; segments simply
    // wait for the next pass.
    FIVM_FAIL_POINT("serve.merge");
    Snapshot snap = Acquire();  // pins the fold's working set
    size_t merged = 0;
    std::vector<std::pair<size_t, RelPtr>> built;   // store slot -> new base
    std::vector<size_t> folded_segments;
    std::vector<size_t> folded_keys;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const StoreVersion& sv = snap.set_->stores[i];
      if (sv.segments.empty()) continue;
      size_t diff_keys = 0;
      for (const RelPtr& s : sv.segments) diff_keys += s->size();
      if (!force && sv.segments.size() < policy_.max_segments &&
          diff_keys < policy_.max_diff_keys) {
        continue;
      }
      obs::ScopedTimer timer(obs_merge_ns_);
      // Coalesce the frozen segments into one differential (ring addition
      // dedups keys across segments), then clone the base with headroom:
      // the clone is built at the final index capacity, so the bulk absorb
      // never growth-rehashes — which would also re-home the clustered
      // order below.
      Rel diff(sv.base->schema());
      diff.Reserve(diff_keys);
      for (const RelPtr& s : sv.segments) AbsorbInto(diff, *s);
      folded_keys.push_back(diff.size());
      Rel next_base(*sv.base, diff.size());
      if (policy_.clustered_absorb) {
        AbsorbIntoClustered(next_base, std::move(diff));
      } else {
        AbsorbInto(next_base, std::move(diff));
      }
      built.emplace_back(i, MakeGeneration(std::move(next_base)));
      folded_segments.push_back(sv.segments.size());
      ++merged;
    }
    if (built.empty()) return 0;
    // Failpoint between fold and install: the built generations unwind
    // (their deleters fire) and no set was swapped — an injected abort
    // here wastes the fold's work but cannot corrupt the version chain.
    // Stats are counted past this point so an aborted merge reports
    // nothing as merged.
    FIVM_FAIL_POINT("serve.merge.install");
    std::lock_guard<std::mutex> lk(mu_);
    const VersionSet* latest = current_.load(std::memory_order_relaxed);
    auto* next = new VersionSet(*latest);
    for (size_t b = 0; b < built.size(); ++b) {
      StoreVersion& sv = next->stores[built[b].first];
      // The writer only appends segments and merges are serialized, so
      // the latest set's first folded_segments[b] segments are exactly the
      // ones folded above; the remainder published after the fold started
      // and stays differential.
      assert(sv.segments.size() >= folded_segments[b]);
      sv.segments.erase(
          sv.segments.begin(),
          sv.segments.begin() +
              static_cast<std::ptrdiff_t>(folded_segments[b]));
      sv.base = std::move(built[b].second);
      ++sv.base_gen;
      stats_merged_keys_.fetch_add(folded_keys[b], std::memory_order_relaxed);
    }
    InstallLocked(next);
    stats_merges_.fetch_add(merged, std::memory_order_relaxed);
    obs_merges_->Add(merged);
    return merged;
  }

  IvmEngine<Ring>* engine_;
  std::vector<int> nodes_;           // served view-tree nodes
  std::vector<int> slot_of_node_;    // tree node -> served slot, or -1
  MergePolicy policy_;

  /// Writer-thread-only differential staging (one per served store).
  std::vector<Rel> staging_;
  std::vector<char> dirty_;

  /// The published version chain. current_ is the readers' single entry
  /// point; mu_ guards installs and the retired list (writers/mergers
  /// only — never taken on a read path).
  std::atomic<const VersionSet*> current_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::pair<uint64_t, const VersionSet*>> retired_;
  mutable EpochRegistry epochs_;
  std::mutex merge_mu_;  // serializes MergeImpl executions

  std::thread merger_;
  std::mutex merger_mu_;
  std::condition_variable merger_cv_;
  std::atomic<bool> merger_stop_{false};

  /// Server-local stats (live in every build config; tests read these).
  std::atomic<uint64_t> stats_publishes_{0};
  std::atomic<uint64_t> stats_merges_{0};
  std::atomic<uint64_t> stats_merged_keys_{0};
  std::atomic<uint64_t> stats_merge_failures_{0};
  std::atomic<uint64_t> stats_reclaimed_versions_{0};
  std::shared_ptr<std::atomic<uint64_t>> reclaimed_generations_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::atomic<size_t> segment_count_{0};

  /// Registry handles (process lifetime; stubs when FIVM_METRICS=OFF).
  obs::Counter* obs_reads_ = nullptr;
  obs::Counter* obs_base_hits_ = nullptr;
  obs::Counter* obs_diff_hits_ = nullptr;
  obs::Counter* obs_publishes_ = nullptr;
  obs::Counter* obs_merges_ = nullptr;
  obs::Counter* obs_reclaimed_gens_ = nullptr;
  obs::Counter* obs_merge_failures_ = nullptr;
  obs::Histogram* obs_merge_ns_ = nullptr;
  uint64_t pinned_gauge_token_ = 0;
  uint64_t segments_gauge_token_ = 0;
};

}  // namespace fivm::serve

#endif  // FIVM_SERVE_SNAPSHOT_SERVER_H_
