#ifndef FIVM_WORKLOADS_RETAILER_H_
#define FIVM_WORKLOADS_RETAILER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/data/catalog.h"
#include "src/data/tuple.h"

namespace fivm::workloads {

/// Synthetic stand-in for the paper's proprietary Retailer dataset: the
/// published snowflake schema (fact relation Inventory joining dimension
/// hierarchies Item, Weather, and Location with its lookup Census; 43
/// attributes total), Zipf-skewed foreign keys, and scaled row counts. The
/// paper's variable order is reproduced: locn - { dateid - { ksn }, zip },
/// with each relation's local attributes forming a chain below.
struct RetailerConfig {
  uint64_t inventory_rows = 100000;
  uint64_t locations = 30;
  uint64_t dates = 200;
  uint64_t products = 1000;
  double zipf_theta = 0.5;  // skew of Inventory foreign keys
  uint64_t seed = 1;
};

class RetailerDataset {
 public:
  static std::unique_ptr<RetailerDataset> Generate(const RetailerConfig& cfg);

  RetailerDataset(const RetailerDataset&) = delete;
  RetailerDataset& operator=(const RetailerDataset&) = delete;

  Catalog catalog;
  std::unique_ptr<Query> query;
  VariableOrder vorder;

  // Relation indices in the query/database.
  int inventory = -1, item = -1, weather = -1, location = -1, census = -1;
  // Join variables.
  VarId locn = 0, dateid = 0, ksn = 0, zip = 0;

  /// Generated tuples per relation (aligned with query relation indices).
  std::vector<std::vector<Tuple>> tuples;

  /// Total attribute count (43, as in the paper).
  int AttributeCount() const { return static_cast<int>(catalog.size()); }

 private:
  RetailerDataset() = default;
};

}  // namespace fivm::workloads

#endif  // FIVM_WORKLOADS_RETAILER_H_
