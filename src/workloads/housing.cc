#include "src/workloads/housing.h"

#include <cassert>
#include <string>

#include "src/util/rng.h"

namespace fivm::workloads {

std::unique_ptr<HousingDataset> HousingDataset::Generate(
    const HousingConfig& cfg) {
  auto ds = std::unique_ptr<HousingDataset>(new HousingDataset());
  Catalog& c = ds->catalog;
  ds->postcode = c.Intern("postcode");

  Schema house_schema{ds->postcode};
  const char* house_locals[] = {"livingarea", "price",   "nbbedrooms",
                                "nbbathrooms", "kitchensize", "house",
                                "flat",        "unknown", "garden",
                                "parking"};
  for (const char* n : house_locals) house_schema.Add(c.Intern(n));
  ds->livingarea = c.Lookup("livingarea");
  ds->price = c.Lookup("price");
  ds->nbbedrooms = c.Lookup("nbbedrooms");

  Schema shop_schema{ds->postcode};
  for (const char* n : {"openinghoursshop", "pricerangeshop", "sainsburys",
                        "tesco", "ms"}) {
    shop_schema.Add(c.Intern(n));
  }
  Schema institution_schema{ds->postcode};
  for (const char* n : {"typeeducation", "sizeinstitution"}) {
    institution_schema.Add(c.Intern(n));
  }
  Schema restaurant_schema{ds->postcode};
  for (const char* n : {"openinghoursrest", "pricerangerest"}) {
    restaurant_schema.Add(c.Intern(n));
  }
  Schema demographics_schema{ds->postcode};
  for (const char* n : {"averagesalary", "crimesperyear", "unemployment",
                        "nbhospitals"}) {
    demographics_schema.Add(c.Intern(n));
  }
  Schema transport_schema{ds->postcode};
  for (const char* n : {"nbbuslines", "nbtrainstations",
                        "distancecitycentre"}) {
    transport_schema.Add(c.Intern(n));
  }

  ds->query = std::make_unique<Query>(&ds->catalog);
  ds->house = ds->query->AddRelation("House", house_schema);
  ds->shop = ds->query->AddRelation("Shop", shop_schema);
  ds->institution = ds->query->AddRelation("Institution", institution_schema);
  ds->restaurant = ds->query->AddRelation("Restaurant", restaurant_schema);
  ds->demographics =
      ds->query->AddRelation("Demographics", demographics_schema);
  ds->transport = ds->query->AddRelation("Transport", transport_schema);

  // Variable order: postcode on top, one chain of local attributes per
  // relation (the paper's "optimal view tree" for the star join).
  VariableOrder& vo = ds->vorder;
  int root = vo.AddNode(ds->postcode, -1);
  for (const Schema* sch :
       {&house_schema, &shop_schema, &institution_schema, &restaurant_schema,
        &demographics_schema, &transport_schema}) {
    int parent = root;
    for (size_t i = 1; i < sch->size(); ++i) {
      parent = vo.AddNode((*sch)[i], parent);
    }
  }
  std::string error;
  bool ok = vo.Finalize(*ds->query, &error);
  assert(ok && "housing variable order must validate");
  (void)ok;

  // ---- Data generation ----------------------------------------------------
  util::Rng rng(cfg.seed);
  ds->tuples.resize(6);
  const int growing = cfg.scale;  // rows per postcode in growing relations

  for (uint64_t pc = 0; pc < cfg.postcodes; ++pc) {
    double zone_factor = rng.UniformDouble(0.5, 2.0);  // location quality

    // House: `scale` rows per postcode, price correlated with features.
    for (int k = 0; k < growing; ++k) {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      double area = rng.UniformDouble(40.0, 250.0);
      int64_t bedrooms = rng.UniformInt(1, 6);
      int64_t bathrooms = rng.UniformInt(1, 3);
      double kitchen = rng.UniformDouble(5.0, 30.0);
      double price = zone_factor * (1500.0 * area + 20000.0 * bedrooms +
                                    15000.0 * bathrooms) +
                     rng.UniformDouble(-2e4, 2e4);
      t.Append(Value::Double(area));
      t.Append(Value::Double(price));
      t.Append(Value::Int(bedrooms));
      t.Append(Value::Int(bathrooms));
      t.Append(Value::Double(kitchen));
      t.Append(Value::Int(rng.Bernoulli(0.5) ? 1 : 0));  // house
      t.Append(Value::Int(rng.Bernoulli(0.3) ? 1 : 0));  // flat
      t.Append(Value::Int(rng.Bernoulli(0.2) ? 1 : 0));  // unknown
      t.Append(Value::Int(rng.Bernoulli(0.6) ? 1 : 0));  // garden
      t.Append(Value::Int(rng.Bernoulli(0.4) ? 1 : 0));  // parking
      ds->tuples[ds->house].push_back(std::move(t));
    }

    // Shop: grows with scale.
    for (int k = 0; k < growing; ++k) {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      t.Append(Value::Int(rng.UniformInt(6, 14)));  // openinghours
      t.Append(Value::Int(rng.UniformInt(1, 5)));   // pricerange
      t.Append(Value::Int(rng.Bernoulli(0.3) ? 1 : 0));
      t.Append(Value::Int(rng.Bernoulli(0.4) ? 1 : 0));
      t.Append(Value::Int(rng.Bernoulli(0.2) ? 1 : 0));
      ds->tuples[ds->shop].push_back(std::move(t));
    }

    // Restaurant: grows with scale.
    for (int k = 0; k < growing; ++k) {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      t.Append(Value::Int(rng.UniformInt(8, 16)));
      t.Append(Value::Int(rng.UniformInt(1, 5)));
      ds->tuples[ds->restaurant].push_back(std::move(t));
    }

    // Institution, Demographics, Transport: one row per postcode.
    {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      t.Append(Value::Int(rng.UniformInt(0, 3)));
      t.Append(Value::Int(rng.UniformInt(50, 2000)));
      ds->tuples[ds->institution].push_back(std::move(t));
    }
    {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      t.Append(Value::Double(zone_factor * rng.UniformDouble(2e4, 6e4)));
      t.Append(Value::Int(rng.UniformInt(10, 500)));
      t.Append(Value::Double(rng.UniformDouble(0.02, 0.15)));
      t.Append(Value::Int(rng.UniformInt(0, 4)));
      ds->tuples[ds->demographics].push_back(std::move(t));
    }
    {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(pc)));
      t.Append(Value::Int(rng.UniformInt(0, 12)));
      t.Append(Value::Int(rng.UniformInt(0, 3)));
      t.Append(Value::Double(rng.UniformDouble(0.1, 25.0)));
      ds->tuples[ds->transport].push_back(std::move(t));
    }
  }

  return ds;
}

}  // namespace fivm::workloads
