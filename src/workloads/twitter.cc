#include "src/workloads/twitter.h"

#include <cassert>
#include <string>

#include "src/util/rng.h"

namespace fivm::workloads {

std::unique_ptr<TwitterDataset> TwitterDataset::Generate(
    const TwitterConfig& cfg) {
  auto ds = std::unique_ptr<TwitterDataset>(new TwitterDataset());
  Catalog& c = ds->catalog;
  ds->A = c.Intern("A");
  ds->B = c.Intern("B");
  ds->C = c.Intern("C");

  ds->query = std::make_unique<Query>(&ds->catalog);
  ds->r = ds->query->AddRelation("R", Schema{ds->A, ds->B});
  ds->s = ds->query->AddRelation("S", Schema{ds->B, ds->C});
  ds->t = ds->query->AddRelation("T", Schema{ds->C, ds->A});

  // Variable order A - B - C (Figure 9): R's lowest variable is B; S and T
  // bottom out at C.
  VariableOrder& vo = ds->vorder;
  int a = vo.AddNode(ds->A, -1);
  int b = vo.AddNode(ds->B, a);
  vo.AddNode(ds->C, b);
  std::string error;
  bool ok = vo.Finalize(*ds->query, &error);
  assert(ok && "triangle variable order must validate");
  (void)ok;

  // Skewed digraph; edges split round-robin into the three relations.
  util::Rng rng(cfg.seed);
  util::ZipfSampler sampler(cfg.nodes, cfg.zipf_theta);
  ds->tuples.resize(3);
  for (uint64_t e = 0; e < cfg.edges; ++e) {
    int64_t src = static_cast<int64_t>(sampler.Sample(rng));
    int64_t dst = static_cast<int64_t>(sampler.Sample(rng));
    Tuple t = Tuple::Ints({src, dst});
    ds->tuples[e % 3].push_back(std::move(t));
  }

  return ds;
}

}  // namespace fivm::workloads
