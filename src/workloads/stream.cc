#include "src/workloads/stream.h"

#include <algorithm>
#include <cassert>

#include "src/util/rng.h"

namespace fivm::workloads {

UpdateStream UpdateStream::RoundRobin(
    const std::vector<std::vector<Tuple>>& per_relation, size_t batch_size) {
  UpdateStream stream;
  std::vector<size_t> cursor(per_relation.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t r = 0; r < per_relation.size(); ++r) {
      if (cursor[r] >= per_relation[r].size()) continue;
      progress = true;
      Batch batch;
      batch.relation = static_cast<int>(r);
      size_t end = std::min(cursor[r] + batch_size, per_relation[r].size());
      batch.tuples.assign(per_relation[r].begin() + cursor[r],
                          per_relation[r].begin() + end);
      stream.total_tuples_ += batch.tuples.size();
      cursor[r] = end;
      stream.batches_.push_back(std::move(batch));
    }
  }
  return stream;
}

UpdateStream UpdateStream::SingleRelation(int relation,
                                          const std::vector<Tuple>& tuples,
                                          size_t batch_size) {
  std::vector<std::vector<Tuple>> per_relation(relation + 1);
  per_relation[relation] = tuples;
  return RoundRobin(per_relation, batch_size);
}

UpdateStream UpdateStream::Rebatched(size_t batch_size) const {
  if (batch_size == 0) batch_size = 1;
  UpdateStream out;
  for (const Batch& b : batches_) {
    size_t offset = 0;
    while (offset < b.tuples.size()) {
      if (out.batches_.empty() || out.batches_.back().relation != b.relation ||
          out.batches_.back().tuples.size() >= batch_size) {
        out.batches_.push_back(Batch{b.relation, {}, {}});
      }
      Batch& cur = out.batches_.back();
      size_t take = std::min(batch_size - cur.tuples.size(),
                             b.tuples.size() - offset);
      cur.tuples.insert(cur.tuples.end(), b.tuples.begin() + offset,
                        b.tuples.begin() + offset + take);
      if (!b.signs.empty()) {
        // Mixed-sign sources keep per-tuple signs; pad any previously
        // appended sign-free tuples with +1 so positions stay aligned.
        if (cur.signs.size() < cur.tuples.size() - take) {
          cur.signs.resize(cur.tuples.size() - take, 1);
        }
        cur.signs.insert(cur.signs.end(), b.signs.begin() + offset,
                         b.signs.begin() + offset + take);
      } else if (!cur.signs.empty()) {
        cur.signs.resize(cur.tuples.size(), 1);
      }
      offset += take;
    }
  }
  out.total_tuples_ = total_tuples_;
  return out;
}

UpdateStream UpdateStream::AdversarialSkew(const SkewConfig& cfg) {
  assert(cfg.relations > 0 && cfg.nodes > 0);
  util::Rng rng(cfg.seed);
  util::ZipfSampler hot(cfg.nodes, cfg.theta);

  // Live tuples inserted so far, per relation: the delete pool. Deleting
  // swap-removes, so the pool stays dense and O(1) to sample.
  std::vector<std::vector<Tuple>> pool(cfg.relations);

  UpdateStream out;
  const size_t burst = std::max<size_t>(1, cfg.burst);
  uint64_t emitted = 0;
  int burst_idx = 0;
  while (emitted < cfg.updates) {
    const int rel = burst_idx % cfg.relations;
    ++burst_idx;
    const int64_t v = static_cast<int64_t>(hot.Sample(rng));
    const size_t len =
        std::min<uint64_t>(burst, cfg.updates - emitted);
    for (size_t u = 0; u < len; ++u) {
      bool del = rng.Bernoulli(cfg.churn) && !pool[rel].empty();
      Tuple t;
      int8_t sign;
      if (del) {
        size_t pick = rng.Uniform(pool[rel].size());
        t = pool[rel][pick];
        pool[rel][pick] = std::move(pool[rel].back());
        pool[rel].pop_back();
        sign = -1;
      } else {
        // Hot vertex in the first (partition/join-variable) position; the
        // second endpoint is Zipf-skewed too, so reversed-role degrees are
        // adversarial as well.
        int64_t w = static_cast<int64_t>(hot.Sample(rng));
        t = Tuple::Ints({v, w});
        pool[rel].push_back(t);
        sign = 1;
      }
      if (out.batches_.empty() || out.batches_.back().relation != rel ||
          out.batches_.back().tuples.size() >= cfg.batch_size) {
        out.batches_.push_back(Batch{rel, {}, {}});
      }
      Batch& cur = out.batches_.back();
      cur.tuples.push_back(std::move(t));
      cur.signs.push_back(sign);
      ++out.total_tuples_;
      ++emitted;
    }
  }
  return out;
}

}  // namespace fivm::workloads
