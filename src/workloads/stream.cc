#include "src/workloads/stream.h"

#include <algorithm>

namespace fivm::workloads {

UpdateStream UpdateStream::RoundRobin(
    const std::vector<std::vector<Tuple>>& per_relation, size_t batch_size) {
  UpdateStream stream;
  std::vector<size_t> cursor(per_relation.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t r = 0; r < per_relation.size(); ++r) {
      if (cursor[r] >= per_relation[r].size()) continue;
      progress = true;
      Batch batch;
      batch.relation = static_cast<int>(r);
      size_t end = std::min(cursor[r] + batch_size, per_relation[r].size());
      batch.tuples.assign(per_relation[r].begin() + cursor[r],
                          per_relation[r].begin() + end);
      stream.total_tuples_ += batch.tuples.size();
      cursor[r] = end;
      stream.batches_.push_back(std::move(batch));
    }
  }
  return stream;
}

UpdateStream UpdateStream::SingleRelation(int relation,
                                          const std::vector<Tuple>& tuples,
                                          size_t batch_size) {
  std::vector<std::vector<Tuple>> per_relation(relation + 1);
  per_relation[relation] = tuples;
  return RoundRobin(per_relation, batch_size);
}

UpdateStream UpdateStream::Rebatched(size_t batch_size) const {
  if (batch_size == 0) batch_size = 1;
  UpdateStream out;
  for (const Batch& b : batches_) {
    size_t offset = 0;
    while (offset < b.tuples.size()) {
      if (out.batches_.empty() || out.batches_.back().relation != b.relation ||
          out.batches_.back().tuples.size() >= batch_size) {
        out.batches_.push_back(Batch{b.relation, {}});
      }
      Batch& cur = out.batches_.back();
      size_t take = std::min(batch_size - cur.tuples.size(),
                             b.tuples.size() - offset);
      cur.tuples.insert(cur.tuples.end(), b.tuples.begin() + offset,
                        b.tuples.begin() + offset + take);
      offset += take;
    }
  }
  out.total_tuples_ = total_tuples_;
  return out;
}

}  // namespace fivm::workloads
