#include "src/workloads/stream.h"

namespace fivm::workloads {

UpdateStream UpdateStream::RoundRobin(
    const std::vector<std::vector<Tuple>>& per_relation, size_t batch_size) {
  UpdateStream stream;
  std::vector<size_t> cursor(per_relation.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t r = 0; r < per_relation.size(); ++r) {
      if (cursor[r] >= per_relation[r].size()) continue;
      progress = true;
      Batch batch;
      batch.relation = static_cast<int>(r);
      size_t end = std::min(cursor[r] + batch_size, per_relation[r].size());
      batch.tuples.assign(per_relation[r].begin() + cursor[r],
                          per_relation[r].begin() + end);
      stream.total_tuples_ += batch.tuples.size();
      cursor[r] = end;
      stream.batches_.push_back(std::move(batch));
    }
  }
  return stream;
}

UpdateStream UpdateStream::SingleRelation(int relation,
                                          const std::vector<Tuple>& tuples,
                                          size_t batch_size) {
  std::vector<std::vector<Tuple>> per_relation(relation + 1);
  per_relation[relation] = tuples;
  return RoundRobin(per_relation, batch_size);
}

}  // namespace fivm::workloads
