#ifndef FIVM_WORKLOADS_STREAM_H_
#define FIVM_WORKLOADS_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/tuple.h"

namespace fivm::workloads {

/// A synthesized update stream (Section 7): tuples of the input relations
/// interleaved round-robin and grouped into fixed-size batches, each batch
/// targeting one relation. Batches carry an optional per-tuple sign vector:
/// empty means all inserts (the original figure streams), otherwise
/// signs[i] is +1 for an insert and -1 for a delete of tuples[i].
class UpdateStream {
 public:
  struct Batch {
    int relation;
    std::vector<Tuple> tuples;
    std::vector<int8_t> signs;  // empty = all +1
  };

  /// Interleaves the per-relation tuple lists round-robin in chunks of
  /// `batch_size` until all lists are exhausted.
  static UpdateStream RoundRobin(
      const std::vector<std::vector<Tuple>>& per_relation, size_t batch_size);

  /// A stream touching only `relation` (the paper's ONE scenario).
  static UpdateStream SingleRelation(int relation,
                                     const std::vector<Tuple>& tuples,
                                     size_t batch_size);

  /// Configuration of the adversarial skewed stream (the IVM^ε acceptance
  /// workload): hot-vertex insert/delete bursts. Each burst targets one
  /// relation (round-robin) and one Zipf-sampled "hot" vertex, emitting
  /// `burst` updates whose first (partition/join) value is the hot vertex;
  /// within a burst a `churn` fraction of updates deletes a tuple inserted
  /// earlier in the stream instead of inserting a fresh one. High `theta`
  /// concentrates bursts on a few vertices, which drives their degrees to
  /// Θ(stream length) — the workload where classic per-update delta joins
  /// degrade to O(N) while IVM^ε stays O(√N) amortized.
  struct SkewConfig {
    uint64_t nodes = 1000;     // vertex domain [0, nodes)
    uint64_t updates = 30000;  // total update events (inserts + deletes)
    size_t batch_size = 1000;  // max tuples per emitted batch
    size_t burst = 64;         // updates per hot-vertex burst
    double theta = 1.2;        // Zipf skew of hot-vertex selection
    double churn = 0.4;        // fraction of events deleting a live tuple
    int relations = 3;         // bursts round-robin over [0, relations)
    uint64_t seed = 7;
  };

  /// Deterministic for a fixed config (pinned by workloads_test).
  static UpdateStream AdversarialSkew(const SkewConfig& cfg);

  /// Re-groups this stream into batches of at most `batch_size` tuples
  /// (0 is treated as 1), preserving tuple order and cutting a batch
  /// whenever the target relation changes. bench_batch derives its
  /// per-tuple baseline stream this way; shrinking a canonical stream's
  /// granularity keeps the exact tuple order comparable across batch
  /// sizes.
  UpdateStream Rebatched(size_t batch_size) const;

  const std::vector<Batch>& batches() const { return batches_; }
  size_t total_tuples() const { return total_tuples_; }

  /// Converts a batch into a delta relation with unit payloads: +1 per
  /// insert, -1 (Ring::Neg(One)) per delete when the batch carries signs.
  template <typename Ring>
  static Relation<Ring> ToDelta(const Query& query, const Batch& batch) {
    Relation<Ring> delta(query.relation(batch.relation).schema);
    delta.Reserve(batch.tuples.size());
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      delta.Add(batch.tuples[i], UnitPayload<Ring>(batch, i));
    }
    return delta;
  }

  /// Same, but builds the delta directly in `layout` (e.g. the compiled
  /// plan's leaf schema, PropagationPlan::leaf_schema()), so the engine's
  /// intake needs no per-batch reorder materialization. `layout` must cover
  /// the relation's variable set.
  template <typename Ring>
  static Relation<Ring> ToDelta(const Query& query, const Batch& batch,
                                const Schema& layout) {
    const Schema& src = query.relation(batch.relation).schema;
    if (src == layout) return ToDelta<Ring>(query, batch);
    Relation<Ring> delta(layout);
    delta.Reserve(batch.tuples.size());
    auto pos = src.PositionsOf(layout);
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      delta.Add(batch.tuples[i].Project(pos), UnitPayload<Ring>(batch, i));
    }
    return delta;
  }

  /// The ring payload of tuple `i` of `batch`: One for inserts, Neg(One)
  /// for deletes. Per-tuple appliers (the IVM^ε engine) use this directly.
  template <typename Ring>
  static typename Ring::Element UnitPayload(const Batch& batch, size_t i) {
    if (batch.signs.empty() || batch.signs[i] >= 0) return Ring::One();
    return Ring::Neg(Ring::One());
  }

 private:
  std::vector<Batch> batches_;
  size_t total_tuples_ = 0;
};

}  // namespace fivm::workloads

#endif  // FIVM_WORKLOADS_STREAM_H_
