#ifndef FIVM_WORKLOADS_STREAM_H_
#define FIVM_WORKLOADS_STREAM_H_

#include <cstddef>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/tuple.h"

namespace fivm::workloads {

/// A synthesized update stream (Section 7): tuples of the input relations
/// interleaved round-robin and grouped into fixed-size batches, each batch
/// targeting one relation.
class UpdateStream {
 public:
  struct Batch {
    int relation;
    std::vector<Tuple> tuples;
  };

  /// Interleaves the per-relation tuple lists round-robin in chunks of
  /// `batch_size` until all lists are exhausted.
  static UpdateStream RoundRobin(
      const std::vector<std::vector<Tuple>>& per_relation, size_t batch_size);

  /// A stream touching only `relation` (the paper's ONE scenario).
  static UpdateStream SingleRelation(int relation,
                                     const std::vector<Tuple>& tuples,
                                     size_t batch_size);

  /// Re-groups this stream into batches of at most `batch_size` tuples
  /// (0 is treated as 1), preserving tuple order and cutting a batch
  /// whenever the target relation changes. bench_batch derives its
  /// per-tuple baseline stream this way; shrinking a canonical stream's
  /// granularity keeps the exact tuple order comparable across batch
  /// sizes.
  UpdateStream Rebatched(size_t batch_size) const;

  const std::vector<Batch>& batches() const { return batches_; }
  size_t total_tuples() const { return total_tuples_; }

  /// Converts a batch into a delta relation with unit payloads (inserts).
  template <typename Ring>
  static Relation<Ring> ToDelta(const Query& query, const Batch& batch) {
    Relation<Ring> delta(query.relation(batch.relation).schema);
    delta.Reserve(batch.tuples.size());
    for (const Tuple& t : batch.tuples) delta.Add(t, Ring::One());
    return delta;
  }

  /// Same, but builds the delta directly in `layout` (e.g. the compiled
  /// plan's leaf schema, PropagationPlan::leaf_schema()), so the engine's
  /// intake needs no per-batch reorder materialization. `layout` must cover
  /// the relation's variable set.
  template <typename Ring>
  static Relation<Ring> ToDelta(const Query& query, const Batch& batch,
                                const Schema& layout) {
    const Schema& src = query.relation(batch.relation).schema;
    if (src == layout) return ToDelta<Ring>(query, batch);
    Relation<Ring> delta(layout);
    delta.Reserve(batch.tuples.size());
    auto pos = src.PositionsOf(layout);
    for (const Tuple& t : batch.tuples) {
      delta.Add(t.Project(pos), Ring::One());
    }
    return delta;
  }

 private:
  std::vector<Batch> batches_;
  size_t total_tuples_ = 0;
};

}  // namespace fivm::workloads

#endif  // FIVM_WORKLOADS_STREAM_H_
