#ifndef FIVM_WORKLOADS_TWITTER_H_
#define FIVM_WORKLOADS_TWITTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/data/catalog.h"
#include "src/data/tuple.h"

namespace fivm::workloads {

/// Synthetic stand-in for the Higgs Twitter dataset (Appendix C): a skewed
/// directed graph whose edge list is split into three equal relations
/// R(A,B), S(B,C), T(C,A), queried with the triangle query
/// Q = ⊕_A ⊕_B ⊕_C R ⊗ S ⊗ T over the variable order A-B-C.
struct TwitterConfig {
  uint64_t nodes = 5000;
  uint64_t edges = 30000;
  double zipf_theta = 0.8;  // follower-degree skew
  uint64_t seed = 3;
};

class TwitterDataset {
 public:
  static std::unique_ptr<TwitterDataset> Generate(const TwitterConfig& cfg);

  TwitterDataset(const TwitterDataset&) = delete;
  TwitterDataset& operator=(const TwitterDataset&) = delete;

  Catalog catalog;
  std::unique_ptr<Query> query;
  VariableOrder vorder;  // A - B - C, with R under B and S, T under C

  int r = -1, s = -1, t = -1;
  VarId A = 0, B = 0, C = 0;

  std::vector<std::vector<Tuple>> tuples;

 private:
  TwitterDataset() = default;
};

}  // namespace fivm::workloads

#endif  // FIVM_WORKLOADS_TWITTER_H_
