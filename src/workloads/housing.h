#ifndef FIVM_WORKLOADS_HOUSING_H_
#define FIVM_WORKLOADS_HOUSING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/data/catalog.h"
#include "src/data/tuple.h"

namespace fivm::workloads {

/// Re-implementation of the Housing synthetic generator [42]: a star schema
/// of six relations (House, Shop, Institution, Restaurant, Demographics,
/// Transport; 27 attributes) all joining on the common `postcode`. The
/// scale factor grows House/Shop/Restaurant linearly per postcode, so the
/// listing representation of the natural join grows cubically while the
/// factorized representation grows linearly (Figure 8 right).
struct HousingConfig {
  uint64_t postcodes = 2000;
  int scale = 1;  // paper sweeps 1..20
  uint64_t seed = 7;
};

class HousingDataset {
 public:
  static std::unique_ptr<HousingDataset> Generate(const HousingConfig& cfg);

  HousingDataset(const HousingDataset&) = delete;
  HousingDataset& operator=(const HousingDataset&) = delete;

  Catalog catalog;
  std::unique_ptr<Query> query;
  VariableOrder vorder;

  int house = -1, shop = -1, institution = -1, restaurant = -1,
      demographics = -1, transport = -1;
  VarId postcode = 0;
  VarId price = 0, livingarea = 0, nbbedrooms = 0;  // regression targets

  std::vector<std::vector<Tuple>> tuples;

  int AttributeCount() const { return static_cast<int>(catalog.size()); }

 private:
  HousingDataset() = default;
};

}  // namespace fivm::workloads

#endif  // FIVM_WORKLOADS_HOUSING_H_
