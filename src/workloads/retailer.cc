#include "src/workloads/retailer.h"

#include <cassert>
#include <string>

#include "src/util/rng.h"

namespace fivm::workloads {

std::unique_ptr<RetailerDataset> RetailerDataset::Generate(
    const RetailerConfig& cfg) {
  auto ds = std::unique_ptr<RetailerDataset>(new RetailerDataset());
  Catalog& c = ds->catalog;

  ds->locn = c.Intern("locn");
  ds->dateid = c.Intern("dateid");
  ds->ksn = c.Intern("ksn");
  ds->zip = c.Intern("zip");

  // Inventory(locn, dateid, ksn, inventoryunits).
  Schema inv_schema{ds->locn, ds->dateid, ds->ksn, c.Intern("inventoryunits")};

  // Location(locn, zip, 13 locals).
  const char* location_locals[] = {
      "rgn_cd",         "clim_zn_nbr",       "tot_area_sq_ft",
      "sell_area_sq_ft", "avghhi",           "supertargetdistance",
      "supertargetdrivetime", "targetdistance", "targetdrivetime",
      "walmartdistance", "walmartdrivetime", "walmartsupercenterdistance",
      "walmartsupercenterdrivetime"};
  Schema loc_schema{ds->locn, ds->zip};
  for (const char* name : location_locals) loc_schema.Add(c.Intern(name));

  // Census(zip, 15 locals).
  const char* census_locals[] = {
      "population",  "white",    "asian",     "pacific",
      "blackafrican", "medianage", "occupiedhouseunits", "houseunits",
      "families",    "households", "husbwife", "males",
      "females",     "householdschildren", "hispanic"};
  Schema census_schema{ds->zip};
  for (const char* name : census_locals) census_schema.Add(c.Intern(name));

  // Item(ksn, subcategory, category, categoryCluster, prize).
  Schema item_schema{ds->ksn, c.Intern("subcategory"), c.Intern("category"),
                     c.Intern("categoryCluster"), c.Intern("prize")};

  // Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind, thunder).
  Schema weather_schema{ds->locn,           ds->dateid,
                        c.Intern("rain"),   c.Intern("snow"),
                        c.Intern("maxtemp"), c.Intern("mintemp"),
                        c.Intern("meanwind"), c.Intern("thunder")};

  ds->query = std::make_unique<Query>(&ds->catalog);
  ds->inventory = ds->query->AddRelation("Inventory", inv_schema);
  ds->item = ds->query->AddRelation("Item", item_schema);
  ds->weather = ds->query->AddRelation("Weather", weather_schema);
  ds->location = ds->query->AddRelation("Location", loc_schema);
  ds->census = ds->query->AddRelation("Census", census_schema);

  // Variable order: locn - { dateid - { ksn - {item locals, inventoryunits},
  // weather locals }, zip - {location locals, census locals} }.
  VariableOrder& vo = ds->vorder;
  int n_locn = vo.AddNode(ds->locn, -1);
  int n_date = vo.AddNode(ds->dateid, n_locn);
  int n_ksn = vo.AddNode(ds->ksn, n_date);
  int parent = n_ksn;
  for (size_t i = 1; i < item_schema.size(); ++i) {
    parent = vo.AddNode(item_schema[i], parent);
  }
  vo.AddNode(inv_schema[3], n_ksn);  // inventoryunits
  parent = n_date;
  for (size_t i = 2; i < weather_schema.size(); ++i) {
    parent = vo.AddNode(weather_schema[i], parent);
  }
  int n_zip = vo.AddNode(ds->zip, n_locn);
  parent = n_zip;
  for (size_t i = 2; i < loc_schema.size(); ++i) {
    parent = vo.AddNode(loc_schema[i], parent);
  }
  parent = n_zip;
  for (size_t i = 1; i < census_schema.size(); ++i) {
    parent = vo.AddNode(census_schema[i], parent);
  }
  std::string error;
  bool ok = vo.Finalize(*ds->query, &error);
  assert(ok && "retailer variable order must validate");
  (void)ok;

  // ---- Data generation ----------------------------------------------------
  util::Rng rng(cfg.seed);
  util::ZipfSampler locn_sampler(cfg.locations, cfg.zipf_theta);
  util::ZipfSampler ksn_sampler(cfg.products, cfg.zipf_theta);
  const uint64_t zips = cfg.locations / 2 + 1;

  ds->tuples.resize(5);

  // Location: one row per store.
  for (uint64_t l = 0; l < cfg.locations; ++l) {
    Tuple t;
    t.Append(Value::Int(static_cast<int64_t>(l)));
    t.Append(Value::Int(static_cast<int64_t>(l % zips)));
    t.Append(Value::Int(rng.UniformInt(1, 9)));            // rgn_cd
    t.Append(Value::Int(rng.UniformInt(1, 20)));           // clim_zn_nbr
    t.Append(Value::Double(rng.UniformDouble(2e4, 2e5)));  // tot_area
    t.Append(Value::Double(rng.UniformDouble(1e4, 1e5)));  // sell_area
    t.Append(Value::Double(rng.UniformDouble(3e4, 2e5)));  // avghhi
    for (int d = 0; d < 8; ++d) {
      t.Append(Value::Double(rng.UniformDouble(0.5, 60.0)));  // distances
    }
    ds->tuples[ds->location].push_back(std::move(t));
  }

  // Census: one row per zip.
  for (uint64_t z = 0; z < zips; ++z) {
    Tuple t;
    t.Append(Value::Int(static_cast<int64_t>(z)));
    int64_t population = rng.UniformInt(5000, 80000);
    t.Append(Value::Int(population));
    for (int k = 0; k < 5; ++k) {
      t.Append(Value::Int(rng.UniformInt(0, population)));
    }
    t.Append(Value::Double(rng.UniformDouble(20.0, 55.0)));  // medianage
    for (int k = 0; k < 9; ++k) {
      t.Append(Value::Int(rng.UniformInt(0, population / 2)));
    }
    ds->tuples[ds->census].push_back(std::move(t));
  }

  // Item: one row per product, with a category hierarchy.
  for (uint64_t p = 0; p < cfg.products; ++p) {
    Tuple t;
    t.Append(Value::Int(static_cast<int64_t>(p)));
    int64_t subcategory = static_cast<int64_t>(p % 97);
    t.Append(Value::Int(subcategory));
    t.Append(Value::Int(subcategory % 17));  // category
    t.Append(Value::Int(subcategory % 5));   // categoryCluster
    t.Append(Value::Double(rng.UniformDouble(0.5, 300.0)));  // prize
    ds->tuples[ds->item].push_back(std::move(t));
  }

  // Weather: one row per (locn, date).
  for (uint64_t l = 0; l < cfg.locations; ++l) {
    for (uint64_t d = 0; d < cfg.dates; ++d) {
      Tuple t;
      t.Append(Value::Int(static_cast<int64_t>(l)));
      t.Append(Value::Int(static_cast<int64_t>(d)));
      t.Append(Value::Int(rng.Bernoulli(0.3) ? 1 : 0));       // rain
      t.Append(Value::Int(rng.Bernoulli(0.05) ? 1 : 0));      // snow
      double maxtemp = rng.UniformDouble(-5.0, 40.0);
      t.Append(Value::Double(maxtemp));
      t.Append(Value::Double(maxtemp - rng.UniformDouble(2.0, 15.0)));
      t.Append(Value::Double(rng.UniformDouble(0.0, 30.0)));  // meanwind
      t.Append(Value::Int(rng.Bernoulli(0.02) ? 1 : 0));      // thunder
      ds->tuples[ds->weather].push_back(std::move(t));
    }
  }

  // Inventory: the fact stream, Zipf-skewed over locations and products.
  for (uint64_t i = 0; i < cfg.inventory_rows; ++i) {
    Tuple t;
    t.Append(Value::Int(static_cast<int64_t>(locn_sampler.Sample(rng))));
    t.Append(Value::Int(rng.UniformInt(0, cfg.dates - 1)));
    t.Append(Value::Int(static_cast<int64_t>(ksn_sampler.Sample(rng))));
    t.Append(Value::Int(rng.UniformInt(0, 99)));  // inventoryunits
    ds->tuples[ds->inventory].push_back(std::move(t));
  }

  return ds;
}

}  // namespace fivm::workloads
