#ifndef FIVM_SQL_PARSER_H_
#define FIVM_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/data/catalog.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"

namespace fivm::sql {

/// Registry of base-relation schemas available to the parser.
class SchemaRegistry {
 public:
  void Register(std::string name, std::vector<std::string> attributes);
  const std::vector<std::string>* Find(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> relations_;
};

/// A parsed query of the paper's dialect (Section 2):
///
///   SELECT X1, ..., Xf, SUM(g(X_{f+1}) * ... * g(X_m))
///   FROM R1 NATURAL JOIN ... NATURAL JOIN Rn
///   GROUP BY X1, ..., Xf;
///
/// The SUM argument is a product of attribute names (repetitions raise the
/// degree) or the literal 1 (COUNT).
struct ParsedQuery {
  std::unique_ptr<Query> query;
  /// Variables inside SUM with their degrees (empty for SUM(1)).
  std::vector<std::pair<VarId, int>> sum_terms;
};

/// Parses `text`; returns std::nullopt and sets *error on syntax or
/// semantic problems (unknown relation, aggregate over a group-by variable,
/// unknown attribute).
std::optional<ParsedQuery> Parse(const std::string& text, Catalog* catalog,
                                 const SchemaRegistry& registry,
                                 std::string* error);

/// Lifting map realizing the parsed SUM under the real ring:
/// g_X(x) = x^degree for each SUM term.
LiftingMap<F64Ring> SumLiftings(const ParsedQuery& parsed);

}  // namespace fivm::sql

#endif  // FIVM_SQL_PARSER_H_
