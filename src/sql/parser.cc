#include "src/sql/parser.h"

#include <cctype>
#include <cmath>

namespace fivm::sql {
namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd };
  Kind kind;
  std::string text;  // upper-cased for idents
  std::string raw;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    while (pos_ < text_.size() && std::isspace(Byte(pos_))) ++pos_;
    if (pos_ >= text_.size()) return Token{Token::Kind::kEnd, "", ""};
    char c = text_[pos_];
    if (std::isalpha(Byte(pos_)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(Byte(pos_)) || text_[pos_] == '_' ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      std::string raw = text_.substr(start, pos_ - start);
      std::string upper = raw;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      return Token{Token::Kind::kIdent, upper, raw};
    }
    if (std::isdigit(Byte(pos_))) {
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isdigit(Byte(pos_)))) ++pos_;
      std::string raw = text_.substr(start, pos_ - start);
      return Token{Token::Kind::kNumber, raw, raw};
    }
    ++pos_;
    return Token{Token::Kind::kSymbol, std::string(1, c), std::string(1, c)};
  }

 private:
  unsigned char Byte(size_t i) const {
    return static_cast<unsigned char>(text_[i]);
  }
  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const std::string& text, Catalog* catalog,
         const SchemaRegistry& registry, std::string* error)
      : lexer_(text), catalog_(catalog), registry_(registry), error_(error) {
    Advance();
  }

  std::optional<ParsedQuery> Run() {
    if (!ExpectKeyword("SELECT")) return std::nullopt;

    // SELECT list: identifiers and one SUM(...).
    std::vector<std::string> select_columns;
    bool have_sum = false;
    while (true) {
      if (IsKeyword("SUM")) {
        if (have_sum) return Fail("multiple SUM aggregates");
        have_sum = true;
        Advance();
        if (!ExpectSymbol("(")) return std::nullopt;
        if (!ParseSumArgument()) return std::nullopt;
        if (!ExpectSymbol(")")) return std::nullopt;
      } else if (cur_.kind == Token::Kind::kIdent) {
        select_columns.push_back(cur_.raw);
        Advance();
      } else {
        return Fail("expected column or SUM in SELECT list");
      }
      if (IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (!have_sum) return Fail("query must contain a SUM aggregate");

    if (!ExpectKeyword("FROM")) return std::nullopt;
    std::vector<std::string> relations;
    while (true) {
      if (cur_.kind != Token::Kind::kIdent) {
        return Fail("expected relation name");
      }
      relations.push_back(cur_.raw);
      Advance();
      if (IsKeyword("NATURAL")) {
        Advance();
        if (!ExpectKeyword("JOIN")) return std::nullopt;
        continue;
      }
      break;
    }

    std::vector<std::string> group_by;
    if (IsKeyword("GROUP")) {
      Advance();
      if (!ExpectKeyword("BY")) return std::nullopt;
      while (true) {
        if (cur_.kind != Token::Kind::kIdent) {
          return Fail("expected attribute in GROUP BY");
        }
        group_by.push_back(cur_.raw);
        Advance();
        if (IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (IsSymbol(";")) Advance();
    if (cur_.kind != Token::Kind::kEnd) return Fail("trailing input");

    // ---- Semantic assembly ------------------------------------------------
    ParsedQuery out;
    out.query = std::make_unique<Query>(catalog_);
    for (const std::string& rel : relations) {
      const std::vector<std::string>* attrs = registry_.Find(rel);
      if (attrs == nullptr) return Fail("unknown relation " + rel);
      Schema schema;
      for (const std::string& a : *attrs) schema.Add(catalog_->Intern(a));
      out.query->AddRelation(rel, schema);
    }
    Schema all = out.query->AllVars();

    Schema free;
    for (const std::string& g : group_by) {
      VarId v = catalog_->Lookup(g);
      if (v == kInvalidVar || !all.Contains(v)) {
        return Fail("GROUP BY attribute " + g + " not in any relation");
      }
      free.Add(v);
    }
    out.query->SetFreeVars(free);

    for (const std::string& col : select_columns) {
      VarId v = catalog_->Lookup(col);
      if (v == kInvalidVar || !free.Contains(v)) {
        return Fail("SELECT column " + col + " must appear in GROUP BY");
      }
    }

    for (const std::string& term : sum_idents_) {
      VarId v = catalog_->Lookup(term);
      if (v == kInvalidVar || !all.Contains(v)) {
        return Fail("SUM attribute " + term + " not in any relation");
      }
      if (free.Contains(v)) {
        return Fail("SUM attribute " + term + " is a GROUP BY variable");
      }
      bool found = false;
      for (auto& [var, degree] : out.sum_terms) {
        if (var == v) {
          ++degree;
          found = true;
        }
      }
      if (!found) out.sum_terms.emplace_back(v, 1);
    }
    return out;
  }

 private:
  bool ParseSumArgument() {
    // 1 | ident (* ident)*
    if (cur_.kind == Token::Kind::kNumber) {
      if (cur_.text != "1") {
        Fail("only SUM(1) or products of attributes are supported");
        return false;
      }
      Advance();
      return true;
    }
    while (true) {
      if (cur_.kind != Token::Kind::kIdent) {
        Fail("expected attribute in SUM");
        return false;
      }
      sum_idents_.push_back(cur_.raw);
      Advance();
      if (IsSymbol("*")) {
        Advance();
        continue;
      }
      return true;
    }
  }

  void Advance() { cur_ = lexer_.Next(); }

  bool IsKeyword(const char* kw) const {
    return cur_.kind == Token::Kind::kIdent && cur_.text == kw;
  }
  bool IsSymbol(const char* s) const {
    return cur_.kind == Token::Kind::kSymbol && cur_.text == s;
  }
  bool ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      Fail(std::string("expected ") + kw);
      return false;
    }
    Advance();
    return true;
  }
  bool ExpectSymbol(const char* s) {
    if (!IsSymbol(s)) {
      Fail(std::string("expected '") + s + "'");
      return false;
    }
    Advance();
    return true;
  }

  std::nullopt_t Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) *error_ = message;
    return std::nullopt;
  }

  Lexer lexer_;
  Token cur_;
  Catalog* catalog_;
  const SchemaRegistry& registry_;
  std::string* error_;
  std::vector<std::string> sum_idents_;
};

}  // namespace

void SchemaRegistry::Register(std::string name,
                              std::vector<std::string> attributes) {
  relations_.emplace_back(std::move(name), std::move(attributes));
}

const std::vector<std::string>* SchemaRegistry::Find(
    const std::string& name) const {
  for (const auto& [n, attrs] : relations_) {
    if (n == name) return &attrs;
  }
  return nullptr;
}

std::optional<ParsedQuery> Parse(const std::string& text, Catalog* catalog,
                                 const SchemaRegistry& registry,
                                 std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, catalog, registry, error);
  return parser.Run();
}

LiftingMap<F64Ring> SumLiftings(const ParsedQuery& parsed) {
  LiftingMap<F64Ring> lifts;
  for (const auto& [var, degree] : parsed.sum_terms) {
    int d = degree;
    lifts.Set(var, [d](const Value& x) {
      return std::pow(x.AsDouble(), d);
    });
  }
  return lifts;
}

}  // namespace fivm::sql
