#ifndef FIVM_LINALG_MATRIX_H_
#define FIVM_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace fivm::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. This is the "Octave" substrate of the
/// paper's Figure 6: matrices in flat arrays with cache-blocked
/// multiplication, in contrast to the hash-map representation used by the
/// relational engines.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double at(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  double* row(size_t i) { return data_.data() + i * cols_; }
  const double* row(size_t i) const { return data_.data() + i * cols_; }

  const std::vector<double>& data() const { return data_; }

  /// Fills with uniform values in (-1, 1) (the paper's dense matrices).
  static Matrix Random(size_t rows, size_t cols, util::Rng& rng);

  /// A matrix of the given rank: the product of random (rows x rank) and
  /// (rank x cols) factors.
  static Matrix RandomOfRank(size_t rows, size_t cols, size_t rank,
                             util::Rng& rng);

  static Matrix Identity(size_t n);

  Matrix Transposed() const;

  void Add(const Matrix& other, double scale = 1.0);

  /// this += u * v^T.
  void AddOuter(const Vector& u, const Vector& v, double scale = 1.0);

  /// Max absolute element difference.
  double MaxAbsDiff(const Matrix& other) const;

  double FrobeniusNorm() const;

  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           MaxAbsDiff(other) <= tol;
  }

  size_t ApproxBytes() const { return data_.capacity() * sizeof(double); }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// C = A * B with cache blocking (the O(n^3) kernel of RE-EVAL and 1-IVM).
Matrix Multiply(const Matrix& a, const Matrix& b);

/// y = A * x (O(n^2), the kernel of factorized updates).
Vector MultiplyVec(const Matrix& a, const Vector& x);

/// y^T = x^T * A, returned as a vector (O(n^2)).
Vector VecMultiply(const Vector& x, const Matrix& a);

double Dot(const Vector& a, const Vector& b);

}  // namespace fivm::linalg

#endif  // FIVM_LINALG_MATRIX_H_
