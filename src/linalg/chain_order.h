#ifndef FIVM_LINALG_CHAIN_ORDER_H_
#define FIVM_LINALG_CHAIN_ORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fivm::linalg {

/// Textbook matrix chain multiplication DP (Section 6.1: "the optimal
/// variable order corresponds to the optimal sequence of matrix
/// multiplications"). Given dimensions p_0..p_n for matrices A_i of size
/// p_{i-1} x p_i, computes the minimal scalar multiplication count and the
/// optimal split points.
class ChainOrder {
 public:
  explicit ChainOrder(std::vector<uint64_t> dims);

  /// Minimal multiplication cost of computing A_1 ... A_n.
  uint64_t OptimalCost() const { return cost_[Index(1, n_)]; }

  /// The split point k for the subchain A_i..A_j (1-based, i <= k < j).
  int SplitOf(int i, int j) const { return split_[Index(i, j)]; }

  int chain_length() const { return n_; }

  /// Parenthesized rendering, e.g. "((A1 A2) A3)".
  std::string Parenthesization() const;

  /// The order in which pairwise products are performed: a list of (i, j, k)
  /// subchains, children before parents.
  struct Product {
    int i, j, k;
  };
  std::vector<Product> EvaluationOrder() const;

 private:
  size_t Index(int i, int j) const {
    return static_cast<size_t>(i) * (n_ + 1) + j;
  }
  std::string Render(int i, int j) const;
  void CollectOrder(int i, int j, std::vector<Product>* out) const;

  int n_;
  std::vector<uint64_t> dims_;
  std::vector<uint64_t> cost_;
  std::vector<int> split_;
};

}  // namespace fivm::linalg

#endif  // FIVM_LINALG_CHAIN_ORDER_H_
