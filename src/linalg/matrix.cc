#include "src/linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fivm::linalg {

Matrix Matrix::Random(size_t rows, size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.UniformDouble(-1.0, 1.0);
  return m;
}

Matrix Matrix::RandomOfRank(size_t rows, size_t cols, size_t rank,
                            util::Rng& rng) {
  Matrix u = Random(rows, rank, rng);
  Matrix v = Random(rank, cols, rng);
  return Multiply(u, v);
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t.at(j, i) = at(i, j);
  }
  return t;
}

void Matrix::Add(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::AddOuter(const Vector& u, const Vector& v, double scale) {
  assert(u.size() == rows_ && v.size() == cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double ui = scale * u[i];
    double* r = row(i);
    for (size_t j = 0; j < cols_; ++j) r[j] += ui * v[j];
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double max = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max = std::max(max, std::fabs(data_[i] - other.data_[i]));
  }
  return max;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  constexpr size_t kBlock = 64;
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order with blocking: streams over contiguous rows of B and C.
  for (size_t ii = 0; ii < n; ii += kBlock) {
    size_t iend = std::min(ii + kBlock, n);
    for (size_t kk = 0; kk < k; kk += kBlock) {
      size_t kend = std::min(kk + kBlock, k);
      for (size_t i = ii; i < iend; ++i) {
        double* crow = c.row(i);
        const double* arow = a.row(i);
        for (size_t p = kk; p < kend; ++p) {
          double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b.row(p);
          for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Vector MultiplyVec(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* r = a.row(i);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += r[j] * x[j];
    y[i] = sum;
  }
  return y;
}

Vector VecMultiply(const Vector& x, const Matrix& a) {
  assert(a.rows() == x.size());
  Vector y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    const double* r = a.row(i);
    for (size_t j = 0; j < a.cols(); ++j) y[j] += xi * r[j];
  }
  return y;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace fivm::linalg
