#ifndef FIVM_LINALG_DENSE_CHAIN_IVM_H_
#define FIVM_LINALG_DENSE_CHAIN_IVM_H_

#include "src/linalg/low_rank.h"
#include "src/linalg/matrix.h"

namespace fivm::linalg {

/// Maintains the dense product A = A1 * A2 * A3 under updates to A2, with
/// the three strategies of Figure 6 on the dense-array ("Octave") runtime:
///
/// - RE-EVAL:   recompute A1*A2*A3 from scratch (two O(n^3) multiplies).
/// - 1-IVM:     δA = (A1 δA2) A3; the sparse first product is cheap but the
///              second is a full O(n^3) matrix-matrix multiply.
/// - F-IVM:     factorize δA2 = u v^T and propagate (A1 u)(v^T A3): two
///              matrix-vector products and an outer product, all O(n^2).
///
/// The same strategies run on the hash-map runtime via IvmEngine over the
/// F64 ring; see bench/bench_fig6_*.
class DenseChainIvm {
 public:
  DenseChainIvm(Matrix a1, Matrix a2, Matrix a3);

  const Matrix& product() const { return product_; }
  const Matrix& a2() const { return a2_; }

  /// RE-EVAL: applies δA2 and recomputes the product from scratch.
  void ReevaluateUpdate(const Matrix& delta_a2);

  /// 1-IVM: δA = (A1 δA2) A3 with a full matrix-matrix multiply.
  void FirstOrderUpdate(const Matrix& delta_a2);

  /// F-IVM: rank-1 update δA2 = u v^T, maintained in O(n^2).
  void FactorizedRank1Update(const Vector& u, const Vector& v);

  /// F-IVM: rank-r update as a sequence of rank-1 updates (O(r n^2)).
  void FactorizedUpdate(const LowRankFactorization& f);

  /// One full row update expressed as the rank-1 factorization
  /// δA2 = e_row * delta_row^T.
  void FactorizedRowUpdate(size_t row, const Vector& delta_row);

  size_t ApproxBytes() const {
    return a1_.ApproxBytes() + a2_.ApproxBytes() + a3_.ApproxBytes() +
           product_.ApproxBytes();
  }

 private:
  Matrix a1_, a2_, a3_;
  Matrix product_;
};

}  // namespace fivm::linalg

#endif  // FIVM_LINALG_DENSE_CHAIN_IVM_H_
