#include "src/linalg/low_rank.h"

#include <cmath>

namespace fivm::linalg {

Matrix LowRankFactorization::Expand(size_t rows, size_t cols) const {
  Matrix out(rows, cols);
  for (size_t k = 0; k < us.size(); ++k) out.AddOuter(us[k], vs[k]);
  return out;
}

LowRankFactorization FactorizeLowRank(const Matrix& a, size_t max_rank,
                                      double tol) {
  LowRankFactorization f;
  Matrix residual = a;
  const size_t rows = a.rows(), cols = a.cols();

  while (f.rank() < max_rank) {
    // Find the pivot: the largest remaining absolute entry.
    size_t pi = 0, pj = 0;
    double pivot = 0.0;
    for (size_t i = 0; i < rows; ++i) {
      const double* r = residual.row(i);
      for (size_t j = 0; j < cols; ++j) {
        if (std::fabs(r[j]) > std::fabs(pivot)) {
          pivot = r[j];
          pi = i;
          pj = j;
        }
      }
    }
    if (std::fabs(pivot) <= tol) break;

    // u = residual column pj; v = residual row pi / pivot.
    Vector u(rows), v(cols);
    for (size_t i = 0; i < rows; ++i) u[i] = residual.at(i, pj);
    const double* prow = residual.row(pi);
    for (size_t j = 0; j < cols; ++j) v[j] = prow[j] / pivot;

    residual.AddOuter(u, v, -1.0);
    f.us.push_back(std::move(u));
    f.vs.push_back(std::move(v));
  }
  return f;
}

}  // namespace fivm::linalg
