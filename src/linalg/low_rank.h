#ifndef FIVM_LINALG_LOW_RANK_H_
#define FIVM_LINALG_LOW_RANK_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace fivm::linalg {

/// A rank-revealing product decomposition δA = Σ_i u_i v_i^T (Section 5:
/// "an arbitrary update matrix can be decomposed into a sum of rank-1
/// matrices, each of them expressible as products of vectors").
struct LowRankFactorization {
  std::vector<Vector> us;  // column factors
  std::vector<Vector> vs;  // row factors
  size_t rank() const { return us.size(); }

  /// Reassembles Σ u_i v_i^T (for tests / fallback paths).
  Matrix Expand(size_t rows, size_t cols) const;
};

/// Greedy cross (rank-1 peeling) factorization: repeatedly subtracts the
/// outer product through the largest remaining pivot. Exact (up to
/// round-off) for matrices of true low rank; `max_rank` and `tol` bound the
/// effort for noisy inputs. This is the library's stand-in for the external
/// tensor-decomposition toolboxes the paper cites [26, 44].
LowRankFactorization FactorizeLowRank(const Matrix& a,
                                      size_t max_rank = SIZE_MAX,
                                      double tol = 1e-10);

}  // namespace fivm::linalg

#endif  // FIVM_LINALG_LOW_RANK_H_
