#include "src/linalg/chain_order.h"

#include <cassert>
#include <limits>

namespace fivm::linalg {

ChainOrder::ChainOrder(std::vector<uint64_t> dims)
    : n_(static_cast<int>(dims.size()) - 1), dims_(std::move(dims)) {
  assert(n_ >= 1);
  cost_.assign(static_cast<size_t>(n_ + 1) * (n_ + 1), 0);
  split_.assign(static_cast<size_t>(n_ + 1) * (n_ + 1), 0);
  for (int len = 2; len <= n_; ++len) {
    for (int i = 1; i + len - 1 <= n_; ++i) {
      int j = i + len - 1;
      uint64_t best = std::numeric_limits<uint64_t>::max();
      int best_k = i;
      for (int k = i; k < j; ++k) {
        uint64_t c = cost_[Index(i, k)] + cost_[Index(k + 1, j)] +
                     dims_[i - 1] * dims_[k] * dims_[j];
        if (c < best) {
          best = c;
          best_k = k;
        }
      }
      cost_[Index(i, j)] = best;
      split_[Index(i, j)] = best_k;
    }
  }
}

std::string ChainOrder::Render(int i, int j) const {
  if (i == j) return "A" + std::to_string(i);
  int k = split_[Index(i, j)];
  return "(" + Render(i, k) + " " + Render(k + 1, j) + ")";
}

std::string ChainOrder::Parenthesization() const { return Render(1, n_); }

void ChainOrder::CollectOrder(int i, int j,
                              std::vector<Product>* out) const {
  if (i == j) return;
  int k = split_[Index(i, j)];
  CollectOrder(i, k, out);
  CollectOrder(k + 1, j, out);
  out->push_back(Product{i, j, k});
}

std::vector<ChainOrder::Product> ChainOrder::EvaluationOrder() const {
  std::vector<Product> out;
  CollectOrder(1, n_, &out);
  return out;
}

}  // namespace fivm::linalg
