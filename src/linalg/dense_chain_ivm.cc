#include "src/linalg/dense_chain_ivm.h"

#include <cassert>

namespace fivm::linalg {

DenseChainIvm::DenseChainIvm(Matrix a1, Matrix a2, Matrix a3)
    : a1_(std::move(a1)), a2_(std::move(a2)), a3_(std::move(a3)) {
  product_ = Multiply(Multiply(a1_, a2_), a3_);
}

void DenseChainIvm::ReevaluateUpdate(const Matrix& delta_a2) {
  a2_.Add(delta_a2);
  product_ = Multiply(Multiply(a1_, a2_), a3_);
}

void DenseChainIvm::FirstOrderUpdate(const Matrix& delta_a2) {
  // δA12 = A1 δA2 — cheap when δA2 is sparse (the multiply kernel skips
  // zero entries), but the result is dense...
  Matrix delta12 = Multiply(a1_, delta_a2);
  // ... so this is a full O(n^3) matrix-matrix multiplication.
  Matrix delta = Multiply(delta12, a3_);
  product_.Add(delta);
  a2_.Add(delta_a2);
}

void DenseChainIvm::FactorizedRank1Update(const Vector& u, const Vector& v) {
  // u1 = A1 u  (O(n^2)); v1^T = v^T A3  (O(n^2)); δA = u1 v1^T  (O(n^2)).
  Vector u1 = MultiplyVec(a1_, u);
  Vector v1 = VecMultiply(v, a3_);
  product_.AddOuter(u1, v1);
  a2_.AddOuter(u, v);
}

void DenseChainIvm::FactorizedUpdate(const LowRankFactorization& f) {
  for (size_t k = 0; k < f.rank(); ++k) {
    FactorizedRank1Update(f.us[k], f.vs[k]);
  }
}

void DenseChainIvm::FactorizedRowUpdate(size_t row, const Vector& delta_row) {
  assert(row < a2_.rows());
  Vector u(a2_.rows(), 0.0);
  u[row] = 1.0;
  FactorizedRank1Update(u, delta_row);
}

}  // namespace fivm::linalg
