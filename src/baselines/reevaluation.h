#ifndef FIVM_BASELINES_REEVALUATION_H_
#define FIVM_BASELINES_REEVALUATION_H_

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"

namespace fivm {

/// Naive re-evaluation (the DBT-RE baseline of Appendix C): materializes the
/// full join result in listing representation, then aggregates. Contrast
/// with IvmEngine<Ring>::Evaluate (F-RE), which evaluates over a view tree
/// with aggregates pushed past joins.
template <typename Ring>
Relation<Ring> NaiveReevaluate(const Query& query, const Database<Ring>& db,
                               const LiftingMap<Ring>& lifts) {
  Relation<Ring> acc = db[0];
  for (int i = 1; i < query.relation_count(); ++i) {
    acc = Join(acc, db[i]);
  }
  return Marginalize(acc, acc.schema().Minus(query.free_vars()), lifts);
}

}  // namespace fivm

#endif  // FIVM_BASELINES_REEVALUATION_H_
