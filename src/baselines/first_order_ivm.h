#ifndef FIVM_BASELINES_FIRST_ORDER_IVM_H_
#define FIVM_BASELINES_FIRST_ORDER_IVM_H_

#include <cassert>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"

namespace fivm {

/// Classical first-order IVM (1-IVM): stores only the input relations and
/// the query result(s); no auxiliary views. On an update δR the delta query
/// is recomputed from scratch by joining δR with the other base relations,
/// aggregating on the fly (DBToaster's first-order compilation places an
/// aggregate around each disconnected component of the delta query, which is
/// what the eager marginalization below implements).
///
/// Supports several aggregates over the same join (e.g. the quadratically
/// many scalar regression aggregates of Section 7's 1-IVM baseline); the
/// base relations are shared but each aggregate recomputes its own delta —
/// exactly the redundancy the paper measures.
template <typename Ring>
class FirstOrderIvm {
 public:
  using Element = typename Ring::Element;

  /// One result view per lifting map ("aggregate").
  FirstOrderIvm(const Query* query, std::vector<LiftingMap<Ring>> aggregates)
      : query_(query), aggregates_(std::move(aggregates)) {
    assert(!aggregates_.empty());
    for (const auto& rel : query_->relations()) {
      base_.emplace_back(rel.schema);
    }
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      results_.emplace_back(query_->free_vars());
    }
  }

  void Initialize(const Database<Ring>& db) {
    for (int r = 0; r < query_->relation_count(); ++r) {
      base_[r] = db[r];
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      results_[a].Clear();
      Relation<Ring> full = JoinAll(db);
      AbsorbResult(a, Marginalize(full, query_->BoundVars(), aggregates_[a]));
    }
  }

  void ApplyDelta(int relation, const Relation<Ring>& delta) {
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      Relation<Ring> d = ComputeDelta(relation, delta, aggregates_[a]);
      AbsorbResult(a, d);
    }
    base_[relation].UnionWith(delta);
  }

  const Relation<Ring>& result(size_t aggregate = 0) const {
    return results_[aggregate];
  }

  size_t aggregate_count() const { return aggregates_.size(); }

  /// Stored state: base relations plus result maps (the paper counts these
  /// as "views" for 1-IVM).
  int StoredViewCount() const {
    return query_->relation_count() + static_cast<int>(results_.size());
  }

  size_t TotalBytes() const {
    size_t bytes = 0;
    for (const auto& r : base_) bytes += r.ApproxBytes();
    for (const auto& r : results_) bytes += r.ApproxBytes();
    return bytes;
  }

 private:
  Relation<Ring> JoinAll(const Database<Ring>& db) const {
    Relation<Ring> acc = db[0];
    for (int i = 1; i < query_->relation_count(); ++i) acc = Join(acc, db[i]);
    return acc;
  }

  /// Joins δR with the remaining base relations, greedily picking connected
  /// relations and marginalizing (with liftings) every bound variable that
  /// no longer occurs in the remaining relations or the output.
  Relation<Ring> ComputeDelta(int relation, const Relation<Ring>& delta,
                              const LiftingMap<Ring>& lifts) const {
    std::vector<int> remaining;
    for (int r = 0; r < query_->relation_count(); ++r) {
      if (r != relation) remaining.push_back(r);
    }

    Relation<Ring> acc = delta;
    // Marginalize delta-local vars that occur nowhere else right away.
    acc = Marginalize(acc, DisposableVars(acc.schema(), remaining), lifts);

    while (!remaining.empty()) {
      // Pick the relation sharing the most variables with acc (fall back to
      // any, producing a Cartesian component join).
      size_t best = 0;
      int best_shared = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const Schema& sch = query_->relation(remaining[i]).schema;
        int shared = static_cast<int>(sch.Intersect(acc.schema()).size());
        if (shared > best_shared) {
          best_shared = shared;
          best = i;
        }
      }
      int r = remaining[best];
      remaining.erase(remaining.begin() + best);
      Schema joined = acc.schema().Union(query_->relation(r).schema);
      Schema disposable = DisposableVars(joined, remaining);
      acc = JoinAndMarginalize(acc, base_[r], disposable, lifts);
    }
    // Any bound vars still present (e.g. free of liftings) are marginalized
    // at the end.
    Schema leftover = acc.schema().Minus(query_->free_vars());
    if (!leftover.empty()) acc = Marginalize(acc, leftover, lifts);
    return acc;
  }

  /// Bound variables of `schema` that occur in no remaining relation.
  Schema DisposableVars(const Schema& schema,
                        const std::vector<int>& remaining) const {
    Schema out;
    for (VarId v : schema) {
      if (query_->free_vars().Contains(v)) continue;
      bool needed = false;
      for (int r : remaining) {
        if (query_->relation(r).schema.Contains(v)) needed = true;
      }
      if (!needed) out.Add(v);
    }
    return out;
  }

  void AbsorbResult(size_t a, const Relation<Ring>& delta) {
    AbsorbInto(results_[a], delta);
  }

  const Query* query_;
  std::vector<LiftingMap<Ring>> aggregates_;
  std::vector<Relation<Ring>> base_;
  std::vector<Relation<Ring>> results_;
};

}  // namespace fivm

#endif  // FIVM_BASELINES_FIRST_ORDER_IVM_H_
