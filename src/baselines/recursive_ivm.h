#ifndef FIVM_BASELINES_RECURSIVE_IVM_H_
#define FIVM_BASELINES_RECURSIVE_IVM_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"
#include "src/util/hash.h"

namespace fivm {

/// DBToaster-style fully recursive higher-order IVM (the DBT and DBT-RING
/// baselines of Section 7).
///
/// For every updatable relation R of every maintained view, the delta
/// δ_R(view) is a query over the remaining relations; its connected
/// components (two relations connect iff they share a variable that is not
/// bound by the delta tuple or the group-by) are materialized as auxiliary
/// views and themselves maintained recursively. This yields one
/// materialization hierarchy per relation, in contrast to F-IVM's single
/// view tree — the structural difference the paper measures.
///
/// Several aggregates over the same join can be registered; auxiliary views
/// are shared across aggregates through (relations, group-by, interior
/// lifting signature) memoization. This reproduces the paper's view counts
/// (e.g. DBT maintaining 990 scalar regression aggregates over Retailer with
/// thousands of views rather than 990 independent hierarchies).
template <typename Ring>
class RecursiveIvm {
 public:
  using Element = typename Ring::Element;

  /// `signature[v]` describes how the aggregate lifts variable v (any small
  /// integer code; 0 = trivial). Views are shared between two aggregates iff
  /// their interior variables carry identical codes — the caller guarantees
  /// that equal codes mean equal lifting functions.
  struct Aggregate {
    LiftingMap<Ring> lifts;
    std::vector<uint8_t> signature;  // indexed by VarId; may be short
  };

  RecursiveIvm(const Query* query, std::vector<int> updatable)
      : query_(query), updatable_(std::move(updatable)) {}

  /// Registers an aggregate; returns its index. Call before Initialize /
  /// ApplyDelta.
  int AddAggregate(Aggregate agg) {
    aggregates_.push_back(std::move(agg));
    int a = static_cast<int>(aggregates_.size()) - 1;
    uint64_t all = (uint64_t{1} << query_->relation_count()) - 1;
    top_views_.push_back(Define(all, query_->free_vars(), a));
    return a;
  }

  void Initialize(const Database<Ring>& db) {
    for (ViewDef& v : views_) {
      v.store.Clear();
      Relation<Ring> acc;
      bool have = false;
      for (int r = 0; r < query_->relation_count(); ++r) {
        if ((v.mask >> r) & 1) {
          if (!have) {
            acc = db[r];
            have = true;
          } else {
            acc = Join(acc, db[r]);
          }
        }
      }
      Schema interior = acc.schema().Minus(v.group_by);
      acc = Marginalize(acc, interior, aggregates_[v.aggregate].lifts);
      AbsorbInto(v.store, acc);
    }
  }

  /// Applies δR to every maintained view whose mask contains `relation`.
  /// Views not defined over R are unaffected, so update order is irrelevant.
  void ApplyDelta(int relation, const Relation<Ring>& delta) {
    for (ViewDef& v : views_) {
      if (((v.mask >> relation) & 1) == 0) continue;
      const Plan* plan = nullptr;
      for (const Plan& p : v.plans) {
        if (p.relation == relation) plan = &p;
      }
      assert(plan != nullptr && "relation not updatable for this view");
      Relation<Ring> acc = delta;
      for (int child : plan->components) {
        acc = Join(acc, views_[child].store);
      }
      Schema interior = acc.schema().Minus(v.group_by);
      if (!interior.empty()) {
        acc = Marginalize(acc, interior, aggregates_[v.aggregate].lifts);
      }
      AbsorbInto(v.store, acc);
    }
  }

  const Relation<Ring>& result(int aggregate = 0) const {
    return views_[top_views_[aggregate]].store;
  }

  int ViewCount() const { return static_cast<int>(views_.size()); }

  size_t TotalBytes() const {
    size_t bytes = 0;
    for (const ViewDef& v : views_) bytes += v.store.ApproxBytes();
    return bytes;
  }

  /// Debug: lists views as "mask|group_by" strings.
  std::vector<std::string> ViewSignatures() const {
    std::vector<std::string> out;
    for (const ViewDef& v : views_) {
      out.push_back(std::to_string(v.mask) + "|" + v.group_by.ToString());
    }
    return out;
  }

 private:
  struct Plan {
    int relation;
    std::vector<int> components;  // child view ids
  };

  struct ViewDef {
    uint64_t mask;
    Schema group_by;   // canonical (sorted) order
    int aggregate;     // whose liftings marginalize the interior vars
    Relation<Ring> store;
    std::vector<Plan> plans;
  };

  Schema VarsOfMask(uint64_t mask) const {
    Schema out;
    for (int r = 0; r < query_->relation_count(); ++r) {
      if ((mask >> r) & 1) out = out.Union(query_->relation(r).schema);
    }
    return out;
  }

  static Schema Canonical(const Schema& s) {
    std::vector<VarId> vars(s.begin(), s.end());
    std::sort(vars.begin(), vars.end());
    Schema out;
    for (VarId v : vars) out.Add(v);
    return out;
  }

  std::string MemoKey(uint64_t mask, const Schema& gb, int aggregate) const {
    std::string key = std::to_string(mask) + "|";
    for (VarId v : gb) key += std::to_string(v) + ",";
    key += "|";
    // Interior lifting signature: degree codes of the marginalized vars.
    const auto& sig = aggregates_[aggregate].signature;
    Schema interior = VarsOfMask(mask).Minus(gb);
    std::vector<VarId> vars(interior.begin(), interior.end());
    std::sort(vars.begin(), vars.end());
    for (VarId v : vars) {
      uint8_t code = v < sig.size() ? sig[v] : 0;
      key += std::to_string(v) + ":" + std::to_string(code) + ";";
    }
    return key;
  }

  int Define(uint64_t mask, const Schema& group_by, int aggregate) {
    Schema gb = Canonical(group_by);
    std::string key = MemoKey(mask, gb, aggregate);
    if (const int* found = memo_.Find(key)) return *found;

    int id = static_cast<int>(views_.size());
    views_.push_back(ViewDef{});
    memo_.Insert(key, id);
    {
      ViewDef& v = views_[id];
      v.mask = mask;
      v.group_by = gb;
      v.aggregate = aggregate;
      v.store = Relation<Ring>(gb);
    }

    // Delta plans (built after the view is registered; recursion may append
    // to views_, so re-fetch by id).
    std::vector<Plan> plans;
    for (int r : updatable_) {
      if (((mask >> r) & 1) == 0) continue;
      uint64_t rest = mask & ~(uint64_t{1} << r);
      Plan plan;
      plan.relation = r;
      if (rest != 0) {
        const Schema& rsch = query_->relation(r).schema;
        Schema bound_by_delta = gb.Union(rsch);
        for (uint64_t comp : ConnectedComponents(rest, bound_by_delta)) {
          Schema cgb = VarsOfMask(comp).Intersect(bound_by_delta);
          plan.components.push_back(Define(comp, cgb, aggregate));
        }
      }
      plans.push_back(std::move(plan));
    }
    views_[id].plans = std::move(plans);
    return id;
  }

  /// Splits `mask` into connected components; relations connect iff they
  /// share a variable outside `bound` (variables fixed by the delta tuple or
  /// the group-by do not connect — DBToaster aggregates such components
  /// separately).
  std::vector<uint64_t> ConnectedComponents(uint64_t mask,
                                            const Schema& bound) const {
    std::vector<int> rels;
    for (int r = 0; r < query_->relation_count(); ++r) {
      if ((mask >> r) & 1) rels.push_back(r);
    }
    std::vector<int> comp(rels.size());
    for (size_t i = 0; i < rels.size(); ++i) comp[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      while (comp[x] != x) x = comp[x] = comp[comp[x]];
      return x;
    };
    for (size_t i = 0; i < rels.size(); ++i) {
      for (size_t j = i + 1; j < rels.size(); ++j) {
        Schema shared = query_->relation(rels[i])
                            .schema.Intersect(query_->relation(rels[j]).schema);
        bool connects = false;
        for (VarId v : shared) {
          if (!bound.Contains(v)) connects = true;
        }
        if (connects) comp[find(static_cast<int>(i))] = find(static_cast<int>(j));
      }
    }
    std::vector<uint64_t> out;
    std::vector<int> reps;
    for (size_t i = 0; i < rels.size(); ++i) {
      int rep = find(static_cast<int>(i));
      int at = -1;
      for (size_t k = 0; k < reps.size(); ++k) {
        if (reps[k] == rep) at = static_cast<int>(k);
      }
      if (at < 0) {
        reps.push_back(rep);
        out.push_back(0);
        at = static_cast<int>(out.size()) - 1;
      }
      out[at] |= uint64_t{1} << rels[i];
    }
    return out;
  }

  struct StringHash {
    uint64_t operator()(const std::string& s) const {
      return util::HashString(s);
    }
  };

  const Query* query_;
  std::vector<int> updatable_;
  std::vector<Aggregate> aggregates_;
  std::vector<ViewDef> views_;
  std::vector<int> top_views_;
  util::FlatHashMap<std::string, int, StringHash> memo_;
};

}  // namespace fivm

#endif  // FIVM_BASELINES_RECURSIVE_IVM_H_
