#ifndef FIVM_RINGS_RELATIONAL_RING_H_
#define FIVM_RINGS_RELATIONAL_RING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/data/value.h"
#include "src/util/flat_hash_map.h"

namespace fivm {

/// An element of the relational data ring F[Z] (Definition 6.4): a relation
/// over the Z ring, i.e. a finite map from tuples to integer multiplicities,
/// tagged with its schema. Addition is (multiset) union; multiplication is
/// join, which in view-tree usage always concatenates payloads with disjoint
/// schemas (Cartesian product with multiplicity products).
///
/// The multiplicative identity is {() -> 1}; the additive identity is the
/// empty relation. Used to carry listing representations of conjunctive
/// query results in payloads (Section 6.3).
class PayloadRelation {
 public:
  /// The additive identity: the empty relation.
  PayloadRelation() = default;

  /// The multiplicative identity {() -> 1}.
  static PayloadRelation Identity() {
    PayloadRelation p;
    p.rows_.Insert(Tuple(), 1);
    return p;
  }

  /// A singleton relation {(x) -> 1} over schema {var} — the lifting of a
  /// free variable.
  static PayloadRelation Singleton(VarId var, const Value& x) {
    PayloadRelation p;
    p.schema_ = Schema{var};
    Tuple t;
    t.Append(x);
    p.rows_.Insert(std::move(t), 1);
    return p;
  }

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  int64_t Multiplicity(const Tuple& t) const {
    const int64_t* m = rows_.Find(t);
    return m ? *m : 0;
  }

  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const {
    rows_.ForEach([&](const Tuple& t, const int64_t& m) {
      if (m != 0) fn(t, m);
    });
  }

  bool IsZero() const { return rows_.empty(); }

  PayloadRelation operator-() const;

  /// Union ⊎ (sums multiplicities; schemas must agree unless one side is
  /// empty or nullary).
  friend PayloadRelation Add(const PayloadRelation& a,
                             const PayloadRelation& b);

  /// Join ⊗. For disjoint schemas this is the Cartesian concatenation; for
  /// overlapping schemas a natural join on the shared variables.
  friend PayloadRelation Mul(const PayloadRelation& a,
                             const PayloadRelation& b);

  void AddInPlace(const PayloadRelation& b);

  bool operator==(const PayloadRelation& o) const;

  size_t ApproxBytes() const {
    size_t bytes = sizeof(*this) + rows_.ApproxBytes();
    rows_.ForEach([&](const Tuple& t, const int64_t&) {
      if (t.size() > 4) bytes += t.size() * sizeof(Value);
    });
    return bytes;
  }

 private:
  void Insert(Tuple t, int64_t m) {
    int64_t& slot = rows_[std::move(t)];
    slot += m;
    // Zero rows are pruned eagerly so IsZero() stays O(1).
    if (slot == 0) {
      // We cannot erase through the reference; re-find by key is avoided by
      // deferring to a lazy count; instead track exact live rows.
    }
  }

  Schema schema_;
  util::FlatHashMap<Tuple, int64_t, TupleHash> rows_;
};

PayloadRelation Add(const PayloadRelation& a, const PayloadRelation& b);
PayloadRelation Mul(const PayloadRelation& a, const PayloadRelation& b);

/// Ring policy for the relational data ring.
struct RelationalRing {
  using Element = PayloadRelation;
  static Element Zero() { return PayloadRelation(); }
  static Element One() { return PayloadRelation::Identity(); }
  static Element Add(const Element& a, const Element& b) {
    return fivm::Add(a, b);
  }
  static Element Mul(const Element& a, const Element& b) {
    return fivm::Mul(a, b);
  }
  static Element Neg(const Element& a) { return -a; }
  static void AddInPlace(Element& a, const Element& b) { a.AddInPlace(b); }
  static bool IsZero(const Element& a) { return a.IsZero(); }
  static size_t ApproxBytes(const Element& a) { return a.ApproxBytes(); }
};

/// Lifting for a free variable under the relational ring: x -> {(x) -> 1}.
inline auto RelationalLifting(VarId var) {
  return [var](const Value& x) { return PayloadRelation::Singleton(var, x); };
}

}  // namespace fivm

#endif  // FIVM_RINGS_RELATIONAL_RING_H_
