#ifndef FIVM_RINGS_REGRESSION_RING_H_
#define FIVM_RINGS_REGRESSION_RING_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/data/value.h"
#include "src/util/simd.h"
#include "src/util/small_vector.h"

namespace fivm {

/// An element of the degree-m matrix ring (Definition 6.2): a triple
/// (c, s, Q) where c is a count, s a vector of linear aggregates SUM(x_i),
/// and Q a symmetric matrix of quadratic aggregates SUM(x_i * x_j).
///
/// Variables are assigned *aggregate slots* in variable-order DFS order, so
/// the payloads flowing through a view tree always cover a contiguous slot
/// range [lo, hi). A payload stores s and the upper triangle of Q only over
/// its range and ranges merge as computation progresses towards the root —
/// this implements the paper's "store blocks of matrices with non-zero
/// values and assemble larger matrices as the computation progresses",
/// together with the symmetric-matrix optimization.
class RegressionPayload {
 public:
  /// The additive identity: zero count, empty range.
  RegressionPayload() : c_(0.0), lo_(0), hi_(0) {}

  /// A pure count payload (s = 0, Q = 0): c * multiplicative identity.
  static RegressionPayload Count(double c) {
    RegressionPayload p;
    p.c_ = c;
    return p;
  }

  /// The lifting g_X(x) for the variable at aggregate slot `slot`:
  /// (1, s, Q) with s[slot] = x and Q[slot][slot] = x^2.
  static RegressionPayload Lift(uint32_t slot, double x) {
    RegressionPayload p;
    p.c_ = 1.0;
    p.lo_ = slot;
    p.hi_ = slot + 1;
    p.buf_.resize(2);
    p.buf_[0] = x;       // s[slot]
    p.buf_[1] = x * x;   // Q[slot][slot]
    return p;
  }

  /// Inline buffer capacity: lifts (2 doubles) stay inline; anything wider
  /// spills to the heap. The default was 9 (degree-3 cofactors inline)
  /// while payload arithmetic allocated a fresh element per product — the
  /// SoA entry pool + MulInto scratch chaining (PR 5) made the steady
  /// state allocation-free regardless, and re-measurement on that layout
  /// inverted the tradeoff: N=2 shrinks every payload-pool slot 112 → 56
  /// bytes, which the zero-sweeps, absorbs and point-lookup walks all feel
  /// (fig13 F-IVM store 22.8 → 15.7 MB with regression arms 1.2-1.9×
  /// faster; fig7 ~1.08× and 11.4 → 9.3 MB — interleaved medians, see
  /// ROADMAP PR 5 entry).
  ///
  /// Still overridable at configure time
  /// (-DFIVM_REGRESSION_INLINE_DOUBLES=N) for cache-layout experiments on
  /// other hosts.
#ifndef FIVM_REGRESSION_INLINE_DOUBLES
#define FIVM_REGRESSION_INLINE_DOUBLES 2
#endif
  static constexpr size_t kInlineDoubles = FIVM_REGRESSION_INLINE_DOUBLES;

  double count() const { return c_; }
  uint32_t lo() const { return lo_; }
  uint32_t hi() const { return hi_; }

  /// SUM(x_slot); zero outside the covered range.
  double Sum(uint32_t slot) const {
    if (slot < lo_ || slot >= hi_) return 0.0;
    return buf_[slot - lo_];
  }

  /// SUM(x_i * x_j); symmetric; zero outside the covered range.
  double Cofactor(uint32_t i, uint32_t j) const {
    if (i > j) std::swap(i, j);
    if (i < lo_ || j >= hi_) return 0.0;
    size_t len = hi_ - lo_;
    return buf_[len + TriIndex(len, i - lo_, j - lo_)];
  }

  bool IsZero() const {
    if (c_ != 0.0) return false;
    return !simd::AnyNonZero(buf_.data(), buf_.size());
  }

  RegressionPayload operator-() const {
    RegressionPayload p = *this;
    p.c_ = -p.c_;
    simd::Negate(p.buf_.data(), p.buf_.size());
    return p;
  }

  /// a + b: component-wise over the union of the ranges.
  friend RegressionPayload Add(const RegressionPayload& a,
                               const RegressionPayload& b);

  void AddInPlace(const RegressionPayload& b);

  /// a * b per Definition 6.2:
  ///   c = ca*cb, s = cb*sa + ca*sb, Q = cb*Qa + ca*Qb + sa sb^T + sb sa^T.
  friend RegressionPayload Mul(const RegressionPayload& a,
                               const RegressionPayload& b);

  /// a * b written into `out`, reusing out's buffer capacity: the
  /// allocation-free form the propagation term loops chain through scratch
  /// payloads (a wide product allocates kilobytes otherwise). `out` must
  /// not alias `a` or `b`.
  friend void MulInto(RegressionPayload& out, const RegressionPayload& a,
                      const RegressionPayload& b);

  bool operator==(const RegressionPayload& o) const;

  size_t ApproxBytes() const {
    size_t heap = buf_.capacity() > kInlineDoubles
                      ? buf_.capacity() * sizeof(double)
                      : 0;
    return sizeof(RegressionPayload) + heap;
  }

  /// Raw view of the packed buffer (s block then upper-triangle Q block) for
  /// the durability serializer — the wire format is exactly this layout.
  const double* raw_data() const { return buf_.data(); }
  size_t raw_size() const { return buf_.size(); }

  /// Rebuilds a payload from serialized parts (durability recovery). `n`
  /// must be the packed size for [lo, hi): (hi-lo) + (hi-lo)(hi-lo+1)/2.
  static RegressionPayload FromRaw(double c, uint32_t lo, uint32_t hi,
                                   const double* data, size_t n) {
    RegressionPayload p;
    p.c_ = c;
    p.lo_ = lo;
    p.hi_ = hi;
    p.buf_.resize(n);
    for (size_t i = 0; i < n; ++i) p.buf_[i] = data[i];
    return p;
  }

 private:
  size_t len() const { return hi_ - lo_; }
  bool has_range() const { return hi_ > lo_; }

  // Index into the packed upper triangle of a len x len symmetric matrix,
  // for local indices i <= j.
  static size_t TriIndex(size_t len, size_t i, size_t j) {
    return i * len - i * (i - 1) / 2 + (j - i);
  }

  const double* s_data() const { return buf_.data(); }
  const double* q_data() const { return buf_.data() + len(); }
  double* s_data() { return buf_.data(); }
  double* q_data() { return buf_.data() + len(); }

  double c_;
  uint32_t lo_, hi_;
  // Layout: s over [lo, hi) (len doubles), then packed upper triangle of Q
  // (len*(len+1)/2 doubles).
  util::SmallVector<double, kInlineDoubles> buf_;
};

RegressionPayload Add(const RegressionPayload& a, const RegressionPayload& b);
RegressionPayload Mul(const RegressionPayload& a, const RegressionPayload& b);
void MulInto(RegressionPayload& out, const RegressionPayload& a,
             const RegressionPayload& b);

/// Ring policy for the degree-m matrix ring. Slot assignment is the caller's
/// responsibility (see core/view_tree AssignAggregateSlots).
struct RegressionRing {
  using Element = RegressionPayload;
  static Element Zero() { return RegressionPayload(); }
  static Element One() { return RegressionPayload::Count(1.0); }
  static Element Add(const Element& a, const Element& b) {
    return fivm::Add(a, b);
  }
  static Element Mul(const Element& a, const Element& b) {
    return fivm::Mul(a, b);
  }
  /// Optional ring-policy extension (see RingMulInto in rings/ring.h):
  /// product into a reused scratch element, no allocation once the scratch
  /// buffer has grown to the view's payload width.
  static void MulInto(Element& out, const Element& a, const Element& b) {
    fivm::MulInto(out, a, b);
  }
  static Element Neg(const Element& a) { return -a; }
  static void AddInPlace(Element& a, const Element& b) { a.AddInPlace(b); }
  static bool IsZero(const Element& a) { return a.IsZero(); }
  static size_t ApproxBytes(const Element& a) { return a.ApproxBytes(); }
};

/// Lifting function for the regression ring: x at aggregate slot `slot`.
inline auto RegressionLifting(uint32_t slot) {
  return [slot](const Value& x) {
    return RegressionPayload::Lift(slot, x.AsDouble());
  };
}

}  // namespace fivm

#endif  // FIVM_RINGS_REGRESSION_RING_H_
