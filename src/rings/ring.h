#ifndef FIVM_RINGS_RING_H_
#define FIVM_RINGS_RING_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace fivm {

/// A ring policy bundles the payload element type with the ring operations
/// (+, *, additive inverse, identities). Relations, views, and the whole IVM
/// machinery are parameterized on a ring policy; swapping the ring retargets
/// the same view trees to a different analytical task (Section 6 of the
/// paper).
///
/// All operations are static: elements are self-describing (e.g. a
/// RegressionPayload carries its own slot range).
template <typename R>
concept RingPolicy = requires(const typename R::Element& a,
                              typename R::Element& m) {
  typename R::Element;
  { R::Zero() } -> std::same_as<typename R::Element>;
  { R::One() } -> std::same_as<typename R::Element>;
  { R::Add(a, a) } -> std::same_as<typename R::Element>;
  { R::Mul(a, a) } -> std::same_as<typename R::Element>;
  { R::Neg(a) } -> std::same_as<typename R::Element>;
  { R::AddInPlace(m, a) };
  { R::IsZero(a) } -> std::same_as<bool>;
  { R::ApproxBytes(a) } -> std::same_as<size_t>;
};

/// Optional ring-policy extension: `MulInto(out, a, b)` computes a * b into
/// a reused element instead of returning a fresh one. Rings with heavy
/// elements (the regression cofactor payloads, kilobytes wide at the root)
/// implement it to make the propagation term loops allocation-free;
/// everything else falls back to assignment from Mul.
template <typename R>
concept RingHasMulInto =
    requires(typename R::Element& out, const typename R::Element& a) {
      { R::MulInto(out, a, a) };
    };

/// Product into a scratch element: the form the operator inner loops call.
/// Value-equal to `out = R::Mul(a, b)` on every ring (and bit-equal where
/// the ring defines MulInto by the same kernels).
template <typename R>
inline void RingMulInto(typename R::Element& out,
                        const typename R::Element& a,
                        const typename R::Element& b) {
  if constexpr (RingHasMulInto<R>) {
    R::MulInto(out, a, b);
  } else {
    out = R::Mul(a, b);
  }
}

/// The integer ring (Z, +, *, 0, 1). Payloads are tuple multiplicities;
/// this is the ring of COUNT queries and of delta encodings (inserts map to
/// +1, deletes to -1).
struct I64Ring {
  using Element = int64_t;
  static Element Zero() { return 0; }
  static Element One() { return 1; }
  static Element Add(Element a, Element b) { return a + b; }
  static Element Mul(Element a, Element b) { return a * b; }
  static Element Neg(Element a) { return -a; }
  static void AddInPlace(Element& a, Element b) { a += b; }
  static bool IsZero(Element a) { return a == 0; }
  static size_t ApproxBytes(const Element&) { return sizeof(Element); }
};

/// The real ring (R, +, *, 0, 1). Payloads are SUM aggregates; this is the
/// ring of SUM queries and of matrix chain multiplication (matrices as
/// binary relations with double payloads).
struct F64Ring {
  using Element = double;
  static Element Zero() { return 0.0; }
  static Element One() { return 1.0; }
  static Element Add(Element a, Element b) { return a + b; }
  static Element Mul(Element a, Element b) { return a * b; }
  static Element Neg(Element a) { return -a; }
  static void AddInPlace(Element& a, Element b) { a += b; }
  static bool IsZero(Element a) { return a == 0.0; }
  static size_t ApproxBytes(const Element&) { return sizeof(Element); }
};

static_assert(RingPolicy<I64Ring>);
static_assert(RingPolicy<F64Ring>);

}  // namespace fivm

#endif  // FIVM_RINGS_RING_H_
