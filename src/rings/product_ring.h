#ifndef FIVM_RINGS_PRODUCT_RING_H_
#define FIVM_RINGS_PRODUCT_RING_H_

#include <cstddef>
#include <utility>

#include "src/rings/ring.h"

namespace fivm {

/// The direct product of two rings: elements are pairs, operations are
/// component-wise. Lets one view tree maintain several compound aggregates
/// in a single pass — e.g. (COUNT, SUM) for AVG, or (SUM, SUM OF SQUARES)
/// for variance — sharing all key-space computation, which is exactly the
/// sharing F-IVM exploits against per-aggregate baselines.
template <typename R1, typename R2>
struct ProductRing {
  struct Element {
    typename R1::Element first;
    typename R2::Element second;

    bool operator==(const Element& o) const {
      return first == o.first && second == o.second;
    }
  };

  static Element Zero() { return Element{R1::Zero(), R2::Zero()}; }
  static Element One() { return Element{R1::One(), R2::One()}; }
  static Element Add(const Element& a, const Element& b) {
    return Element{R1::Add(a.first, b.first), R2::Add(a.second, b.second)};
  }
  static Element Mul(const Element& a, const Element& b) {
    return Element{R1::Mul(a.first, b.first), R2::Mul(a.second, b.second)};
  }
  static Element Neg(const Element& a) {
    return Element{R1::Neg(a.first), R2::Neg(a.second)};
  }
  static void AddInPlace(Element& a, const Element& b) {
    R1::AddInPlace(a.first, b.first);
    R2::AddInPlace(a.second, b.second);
  }
  static bool IsZero(const Element& a) {
    return R1::IsZero(a.first) && R2::IsZero(a.second);
  }
  static size_t ApproxBytes(const Element& a) {
    return R1::ApproxBytes(a.first) + R2::ApproxBytes(a.second);
  }
};

/// (COUNT, SUM) pairs — the payload of incrementally maintained AVG.
using CountSumRing = ProductRing<I64Ring, F64Ring>;

static_assert(RingPolicy<CountSumRing>);

}  // namespace fivm

#endif  // FIVM_RINGS_PRODUCT_RING_H_
