#include "src/rings/sparse_regression_ring.h"

#include <algorithm>

#include "src/util/simd.h"

namespace fivm {
namespace {

// Merges two sorted key spans, appending keys to `out_k` and
// sa * a + sb * b values to `out_v`, summing on key collisions and
// dropping zero results.
void MergeSumInto(const uint64_t* ak, const double* av, size_t na,
                  const uint64_t* bk, const double* bv, size_t nb, double sa,
                  double sb, std::vector<uint64_t>& out_k,
                  std::vector<double>& out_v) {
  size_t i = 0, j = 0;
  auto push = [&](uint64_t k, double v) {
    if (v != 0.0) {
      out_k.push_back(k);
      out_v.push_back(v);
    }
  };
  while (i < na || j < nb) {
    if (j >= nb || (i < na && ak[i] < bk[j])) {
      push(ak[i], av[i] * sa);
      ++i;
    } else if (i >= na || bk[j] < ak[i]) {
      push(bk[j], bv[j] * sb);
      ++j;
    } else {
      push(ak[i], sa * av[i] + sb * bv[j]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

double SparseRegressionPayload::Sum(uint32_t slot) const {
  for (size_t i = 0; i < s_count_; ++i) {
    if (keys_[i] == slot) return vals_[i];
    if (keys_[i] > slot) break;
  }
  return 0.0;
}

double SparseRegressionPayload::Cofactor(uint32_t i, uint32_t j) const {
  uint64_t code = PairCode(i, j);
  for (size_t k = s_count_; k < keys_.size(); ++k) {
    if (keys_[k] == code) return vals_[k];
    if (keys_[k] > code) break;
  }
  return 0.0;
}

void SparseRegressionPayload::CompactZeros() {
  size_t n = vals_.size();
  size_t w = 0;
  uint32_t new_s = s_count_;
  for (size_t i = 0; i < n; ++i) {
    if (vals_[i] == 0.0) {
      if (i < s_count_) --new_s;
      continue;
    }
    if (w != i) {
      keys_[w] = keys_[i];
      vals_[w] = vals_[i];
    }
    ++w;
  }
  keys_.resize(w);
  vals_.resize(w);
  s_count_ = new_s;
}

SparseRegressionPayload Add(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b) {
  SparseRegressionPayload out;
  out.c_ = a.c_ + b.c_;
  if (a.s_count_ == b.s_count_ && a.keys_ == b.keys_) {
    // Identical key layouts: one lane kernel over every value, linear and
    // quadratic together. (x + y and 1.0*x + 1.0*y round identically, so
    // this matches the general merge bit for bit.)
    out.s_count_ = a.s_count_;
    out.keys_ = a.keys_;
    out.vals_.resize(a.vals_.size());
    simd::SumTo(out.vals_.data(), a.vals_.data(), b.vals_.data(),
                a.vals_.size());
    out.CompactZeros();
    return out;
  }
  out.keys_.reserve(a.keys_.size() + b.keys_.size());
  out.vals_.reserve(a.keys_.size() + b.keys_.size());
  MergeSumInto(a.keys_.data(), a.vals_.data(), a.s_count_, b.keys_.data(),
               b.vals_.data(), b.s_count_, 1.0, 1.0, out.keys_, out.vals_);
  out.s_count_ = static_cast<uint32_t>(out.keys_.size());
  MergeSumInto(a.keys_.data() + a.s_count_, a.vals_.data() + a.s_count_,
               a.keys_.size() - a.s_count_, b.keys_.data() + b.s_count_,
               b.vals_.data() + b.s_count_, b.keys_.size() - b.s_count_, 1.0,
               1.0, out.keys_, out.vals_);
  return out;
}

void SparseRegressionPayload::AddInPlace(const SparseRegressionPayload& b) {
  if (s_count_ == b.s_count_ && keys_ == b.keys_) {
    // The path store absorbs and delta coalescing take on a stabilized
    // support: accumulate the value lane in place, no allocation.
    c_ += b.c_;
    simd::AddTo(vals_.data(), b.vals_.data(), vals_.size());
    CompactZeros();
    return;
  }
  *this = fivm::Add(*this, b);
}

SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b) {
  SparseRegressionPayload out;
  out.c_ = a.c_ * b.c_;
  // One up-front reserve covering the worst case (both operands' entries
  // plus every cross pair): the merges below must never reallocate
  // mid-stream.
  const size_t bound = a.keys_.size() + b.keys_.size() +
                       static_cast<size_t>(a.s_count_) * b.s_count_;
  out.keys_.reserve(bound);
  out.vals_.reserve(bound);
  // s = cb*sa + ca*sb.
  MergeSumInto(a.keys_.data(), a.vals_.data(), a.s_count_, b.keys_.data(),
               b.vals_.data(), b.s_count_, b.c_, a.c_, out.keys_, out.vals_);
  out.s_count_ = static_cast<uint32_t>(out.keys_.size());

  const uint64_t* aqk = a.keys_.data() + a.s_count_;
  const double* aqv = a.vals_.data() + a.s_count_;
  const size_t aqn = a.keys_.size() - a.s_count_;
  const uint64_t* bqk = b.keys_.data() + b.s_count_;
  const double* bqv = b.vals_.data() + b.s_count_;
  const size_t bqn = b.keys_.size() - b.s_count_;

  if (a.s_count_ == 0 || b.s_count_ == 0) {
    // No cross terms: Q = cb*Qa + ca*Qb.
    MergeSumInto(aqk, aqv, aqn, bqk, bqv, bqn, b.c_, a.c_, out.keys_,
                 out.vals_);
    return out;
  }

  // Cross terms sa sb^T + sb sa^T: entry (x <= y) gets sa_x*sb_y +
  // sb_x*sa_y.
  struct CodeVal {
    uint64_t code;
    double value;
  };
  std::vector<CodeVal> cross;
  cross.reserve(static_cast<size_t>(a.s_count_) * b.s_count_);
  for (size_t i = 0; i < a.s_count_; ++i) {
    const uint32_t sx = static_cast<uint32_t>(a.keys_[i]);
    for (size_t j = 0; j < b.s_count_; ++j) {
      cross.push_back({SparseRegressionPayload::PairCode(
                           sx, static_cast<uint32_t>(b.keys_[j])),
                       a.vals_[i] * b.vals_[j]});
    }
  }
  std::sort(cross.begin(), cross.end(),
            [](const CodeVal& x, const CodeVal& y) {
              return x.code < y.code;
            });
  // Coalesce duplicate codes in place. Both (x,y) orderings of the two
  // outer products land on the same packed code, which is exactly the
  // desired sa_x*sb_y + sb_x*sa_y accumulation; the diagonal pair (x,x)
  // appears only once per outer product and must be doubled explicitly.
  size_t w = 0;
  for (const CodeVal& e : cross) {
    double v = e.value;
    uint32_t x = static_cast<uint32_t>(e.code >> 32);
    uint32_t y = static_cast<uint32_t>(e.code & 0xffffffffu);
    if (x == y) v *= 2.0;  // sa_x sb_x + sb_x sa_x
    if (w > 0 && cross[w - 1].code == e.code) {
      cross[w - 1].value += v;
    } else {
      cross[w++] = {e.code, v};
    }
  }

  // One 3-way merge of cb*Qa, ca*Qb and the folded cross terms, written
  // straight into out's quadratic region. The scaled halves combine and
  // drop-if-zero first, then the cross term joins — the same association
  // (and zero-dropping points) as merging the halves and then the cross.
  size_t i = 0, j = 0, k = 0;
  while (i < aqn || j < bqn || k < w) {
    uint64_t key = ~uint64_t{0};
    if (i < aqn) key = aqk[i];
    if (j < bqn && bqk[j] < key) key = bqk[j];
    if (k < w && cross[k].code < key) key = cross[k].code;
    double m = 0.0;
    bool has_m = false;
    const bool in_a = i < aqn && aqk[i] == key;
    const bool in_b = j < bqn && bqk[j] == key;
    if (in_a && in_b) {
      m = b.c_ * aqv[i] + a.c_ * bqv[j];
    } else if (in_a) {
      m = aqv[i] * b.c_;
    } else if (in_b) {
      m = bqv[j] * a.c_;
    }
    if ((in_a || in_b) && m != 0.0) has_m = true;
    i += in_a;
    j += in_b;
    double v;
    bool have = has_m;
    if (k < w && cross[k].code == key) {
      v = has_m ? m + cross[k].value : cross[k].value;
      have = true;
      ++k;
    } else {
      v = m;
    }
    if (have && v != 0.0) {
      out.keys_.push_back(key);
      out.vals_.push_back(v);
    }
  }
  return out;
}

bool SparseRegressionPayload::operator==(
    const SparseRegressionPayload& o) const {
  if (c_ != o.c_) return false;
  if (s_count_ != o.s_count_ || keys_ != o.keys_) return false;
  for (size_t i = 0; i < vals_.size(); ++i) {
    if (vals_[i] != o.vals_[i]) return false;
  }
  return true;
}

}  // namespace fivm
