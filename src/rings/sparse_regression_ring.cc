#include "src/rings/sparse_regression_ring.h"

#include <algorithm>

namespace fivm {
namespace {

// Merges two sorted entry lists, summing values on key collisions and
// dropping zero results.
template <typename Entry, typename KeyFn>
std::vector<Entry> MergeSum(const std::vector<Entry>& a,
                            const std::vector<Entry>& b, double sa, double sb,
                            KeyFn key) {
  std::vector<Entry> out;
  out.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && key(a[i]) < key(b[j]))) {
      Entry e = a[i++];
      e.value *= sa;
      if (e.value != 0.0) out.push_back(e);
    } else if (i >= a.size() || key(b[j]) < key(a[i])) {
      Entry e = b[j++];
      e.value *= sb;
      if (e.value != 0.0) out.push_back(e);
    } else {
      Entry e = a[i];
      e.value = sa * a[i].value + sb * b[j].value;
      ++i;
      ++j;
      if (e.value != 0.0) out.push_back(e);
    }
  }
  return out;
}

}  // namespace

double SparseRegressionPayload::Sum(uint32_t slot) const {
  for (const SEntry& e : s_) {
    if (e.slot == slot) return e.value;
    if (e.slot > slot) break;
  }
  return 0.0;
}

double SparseRegressionPayload::Cofactor(uint32_t i, uint32_t j) const {
  uint64_t code = PairCode(i, j);
  for (const QEntry& e : q_) {
    if (e.code == code) return e.value;
    if (e.code > code) break;
  }
  return 0.0;
}

bool SparseRegressionPayload::IsZero() const {
  return c_ == 0.0 && s_.empty() && q_.empty();
}

SparseRegressionPayload SparseRegressionPayload::operator-() const {
  SparseRegressionPayload p = *this;
  p.c_ = -p.c_;
  for (SEntry& e : p.s_) e.value = -e.value;
  for (QEntry& e : p.q_) e.value = -e.value;
  return p;
}

SparseRegressionPayload Add(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b) {
  SparseRegressionPayload out;
  out.c_ = a.c_ + b.c_;
  out.s_ = MergeSum(a.s_, b.s_, 1.0, 1.0,
                    [](const auto& e) { return e.slot; });
  out.q_ = MergeSum(a.q_, b.q_, 1.0, 1.0,
                    [](const auto& e) { return e.code; });
  return out;
}

void SparseRegressionPayload::AddInPlace(const SparseRegressionPayload& b) {
  *this = fivm::Add(*this, b);
}

SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b) {
  using SEntry = SparseRegressionPayload::SEntry;
  using QEntry = SparseRegressionPayload::QEntry;
  SparseRegressionPayload out;
  out.c_ = a.c_ * b.c_;
  // s = cb * sa + ca * sb.
  out.s_ = MergeSum(a.s_, b.s_, b.c_, a.c_,
                    [](const auto& e) { return e.slot; });
  // Q = cb * Qa + ca * Qb ...
  out.q_ = MergeSum(a.q_, b.q_, b.c_, a.c_,
                    [](const auto& e) { return e.code; });
  // ... + sa sb^T + sb sa^T: entry (x <= y) gets sa_x*sb_y + sb_x*sa_y.
  if (!a.s_.empty() && !b.s_.empty()) {
    std::vector<QEntry> cross;
    cross.reserve(a.s_.size() * b.s_.size());
    for (const SEntry& ea : a.s_) {
      for (const SEntry& eb : b.s_) {
        cross.push_back(
            {SparseRegressionPayload::PairCode(ea.slot, eb.slot),
             ea.value * eb.value});
      }
    }
    std::sort(cross.begin(), cross.end(),
              [](const QEntry& x, const QEntry& y) { return x.code < y.code; });
    // Coalesce duplicate codes. Note both (x,y) orderings of the two outer
    // products land on the same packed code, which is exactly the desired
    // sa_x*sb_y + sb_x*sa_y accumulation; the diagonal gets 2*sa_x*sb_x from
    // ... a single pass? No: the diagonal pair (x,x) appears once per outer
    // product; we must double it explicitly.
    std::vector<QEntry> folded;
    for (const QEntry& e : cross) {
      double v = e.value;
      uint32_t x = static_cast<uint32_t>(e.code >> 32);
      uint32_t y = static_cast<uint32_t>(e.code & 0xffffffffu);
      if (x == y) v *= 2.0;  // sa_x sb_x + sb_x sa_x
      if (!folded.empty() && folded.back().code == e.code) {
        folded.back().value += v;
      } else {
        folded.push_back({e.code, v});
      }
    }
    out.q_ = MergeSum(out.q_, folded, 1.0, 1.0,
                      [](const auto& e) { return e.code; });
  }
  return out;
}

bool SparseRegressionPayload::operator==(
    const SparseRegressionPayload& o) const {
  if (c_ != o.c_) return false;
  if (s_.size() != o.s_.size() || q_.size() != o.q_.size()) return false;
  for (size_t i = 0; i < s_.size(); ++i) {
    if (s_[i].slot != o.s_[i].slot || s_[i].value != o.s_[i].value) {
      return false;
    }
  }
  for (size_t i = 0; i < q_.size(); ++i) {
    if (q_[i].code != o.q_[i].code || q_[i].value != o.q_[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace fivm
