#ifndef FIVM_RINGS_LIFTING_H_
#define FIVM_RINGS_LIFTING_H_

#include <functional>
#include <vector>

#include "src/data/schema.h"
#include "src/data/value.h"

namespace fivm {

/// Per-variable lifting functions g_X : Dom(X) -> D (Section 2). When a bound
/// variable X is marginalized, each of its values is lifted into the ring and
/// multiplied into the payload. Variables without an explicit lifting use the
/// multiplicative identity (i.e. they are simply aggregated away, as in
/// COUNT).
template <typename Ring>
class LiftingMap {
 public:
  using Element = typename Ring::Element;
  using Fn = std::function<Element(const Value&)>;

  /// Registers the lifting function for variable `v`.
  void Set(VarId v, Fn fn) {
    if (v >= fns_.size()) fns_.resize(v + 1);
    fns_[v] = std::move(fn);
  }

  /// True if `v` lifts to the multiplicative identity (no function set), in
  /// which case callers can skip the ring multiplication entirely.
  bool IsTrivial(VarId v) const {
    return v >= fns_.size() || !static_cast<bool>(fns_[v]);
  }

  Element Lift(VarId v, const Value& x) const {
    if (IsTrivial(v)) return Ring::One();
    return fns_[v](x);
  }

 private:
  std::vector<Fn> fns_;
};

/// Lifting that maps every value to its numeric content: g(x) = x. This is
/// the lifting of SQL SUM(X) under the real/integer rings.
template <typename Ring>
typename LiftingMap<Ring>::Fn NumericLifting() {
  return [](const Value& x) ->
      typename Ring::Element { return x.AsDouble(); };
}

}  // namespace fivm

#endif  // FIVM_RINGS_LIFTING_H_
