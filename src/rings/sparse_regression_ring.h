#ifndef FIVM_RINGS_SPARSE_REGRESSION_RING_H_
#define FIVM_RINGS_SPARSE_REGRESSION_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/value.h"

namespace fivm {

/// The SQL-OPT payload encoding (Section 7, "optimized SQL encoding of
/// cofactor matrix computation"): regression aggregates are kept *explicitly
/// indexed by variable degrees* — a sorted list of (slot, value) entries for
/// the linear aggregates and (slot-pair, value) entries for the quadratic
/// ones — rather than implicitly as dense vector/matrix blocks.
///
/// Semantically identical to RegressionPayload (same ring, Definition 6.2);
/// the representation difference is exactly what the paper's SQL-OPT vs
/// F-IVM comparison measures.
class SparseRegressionPayload {
 public:
  SparseRegressionPayload() : c_(0.0) {}

  static SparseRegressionPayload Count(double c) {
    SparseRegressionPayload p;
    p.c_ = c;
    return p;
  }

  static SparseRegressionPayload Lift(uint32_t slot, double x) {
    SparseRegressionPayload p;
    p.c_ = 1.0;
    p.s_.push_back({slot, x});
    p.q_.push_back({PairCode(slot, slot), x * x});
    return p;
  }

  double count() const { return c_; }
  double Sum(uint32_t slot) const;
  double Cofactor(uint32_t i, uint32_t j) const;

  bool IsZero() const;

  SparseRegressionPayload operator-() const;

  friend SparseRegressionPayload Add(const SparseRegressionPayload& a,
                                     const SparseRegressionPayload& b);
  friend SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                                     const SparseRegressionPayload& b);

  void AddInPlace(const SparseRegressionPayload& b);

  bool operator==(const SparseRegressionPayload& o) const;

  size_t ApproxBytes() const {
    return sizeof(*this) + s_.capacity() * sizeof(SEntry) +
           q_.capacity() * sizeof(QEntry);
  }

  size_t LinearEntryCount() const { return s_.size(); }
  size_t QuadraticEntryCount() const { return q_.size(); }

 private:
  struct SEntry {
    uint32_t slot;
    double value;
  };
  struct QEntry {
    uint64_t code;  // (min << 32) | max
    double value;
  };

  static uint64_t PairCode(uint32_t i, uint32_t j) {
    if (i > j) {
      uint32_t t = i;
      i = j;
      j = t;
    }
    return (static_cast<uint64_t>(i) << 32) | j;
  }

  double c_;
  std::vector<SEntry> s_;  // sorted by slot, no zero values
  std::vector<QEntry> q_;  // sorted by code, no zero values
};

SparseRegressionPayload Add(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b);
SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b);

/// Ring policy for the degree-indexed (SQL-OPT) encoding of the regression
/// ring.
struct SparseRegressionRing {
  using Element = SparseRegressionPayload;
  static Element Zero() { return SparseRegressionPayload(); }
  static Element One() { return SparseRegressionPayload::Count(1.0); }
  static Element Add(const Element& a, const Element& b) {
    return fivm::Add(a, b);
  }
  static Element Mul(const Element& a, const Element& b) {
    return fivm::Mul(a, b);
  }
  static Element Neg(const Element& a) { return -a; }
  static void AddInPlace(Element& a, const Element& b) { a.AddInPlace(b); }
  static bool IsZero(const Element& a) { return a.IsZero(); }
  static size_t ApproxBytes(const Element& a) { return a.ApproxBytes(); }
};

inline auto SparseRegressionLifting(uint32_t slot) {
  return [slot](const Value& x) {
    return SparseRegressionPayload::Lift(slot, x.AsDouble());
  };
}

}  // namespace fivm

#endif  // FIVM_RINGS_SPARSE_REGRESSION_RING_H_
