#ifndef FIVM_RINGS_SPARSE_REGRESSION_RING_H_
#define FIVM_RINGS_SPARSE_REGRESSION_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/value.h"
#include "src/util/simd.h"

namespace fivm {

/// The SQL-OPT payload encoding (Section 7, "optimized SQL encoding of
/// cofactor matrix computation"): regression aggregates are kept *explicitly
/// indexed by variable degrees* — a sorted list of (slot, value) entries for
/// the linear aggregates and (slot-pair, value) entries for the quadratic
/// ones — rather than implicitly as dense vector/matrix blocks.
///
/// Semantically identical to RegressionPayload (same ring, Definition 6.2);
/// the representation difference is exactly what the paper's SQL-OPT vs
/// F-IVM comparison measures.
///
/// Storage is key/payload-split (the same SoA discipline as the Relation
/// entry pool), in exactly two arrays: `keys_` holds the linear slots
/// followed by the packed quadratic pair codes (`s_count_` marks the
/// split), `vals_` the parallel doubles. Two arrays — not four — keeps the
/// per-payload allocation count at the seed's level, and the single
/// contiguous value lane is what the SIMD fast path runs over: combining
/// two payloads with identical key layouts (the steady state once a view's
/// aggregate support stabilizes) is one key-array equality check plus one
/// lane kernel over all values, linear and quadratic together. Keys stay
/// sorted within each region; values are non-zero.
class SparseRegressionPayload {
 public:
  SparseRegressionPayload() : c_(0.0) {}

  static SparseRegressionPayload Count(double c) {
    SparseRegressionPayload p;
    p.c_ = c;
    return p;
  }

  static SparseRegressionPayload Lift(uint32_t slot, double x) {
    SparseRegressionPayload p;
    p.c_ = 1.0;
    p.s_count_ = 1;
    p.keys_ = {slot, PairCode(slot, slot)};
    p.vals_ = {x, x * x};
    return p;
  }

  double count() const { return c_; }
  double Sum(uint32_t slot) const;
  double Cofactor(uint32_t i, uint32_t j) const;

  bool IsZero() const { return c_ == 0.0 && keys_.empty(); }

  SparseRegressionPayload operator-() const {
    SparseRegressionPayload p = *this;
    p.c_ = -p.c_;
    simd::Negate(p.vals_.data(), p.vals_.size());
    return p;
  }

  friend SparseRegressionPayload Add(const SparseRegressionPayload& a,
                                     const SparseRegressionPayload& b);
  friend SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                                     const SparseRegressionPayload& b);

  void AddInPlace(const SparseRegressionPayload& b);

  bool operator==(const SparseRegressionPayload& o) const;

  size_t ApproxBytes() const {
    return sizeof(*this) + keys_.capacity() * sizeof(uint64_t) +
           vals_.capacity() * sizeof(double);
  }

  size_t LinearEntryCount() const { return s_count_; }
  size_t QuadraticEntryCount() const { return keys_.size() - s_count_; }

  /// Raw views of the key/value lanes for the durability serializer — the
  /// wire format is exactly this split-array layout.
  const std::vector<uint64_t>& raw_keys() const { return keys_; }
  const std::vector<double>& raw_vals() const { return vals_; }

  /// Rebuilds a payload from serialized parts (durability recovery).
  /// `keys`/`vals` must be parallel, sorted within each region, with
  /// `s_count` marking the linear/quadratic split.
  static SparseRegressionPayload FromRaw(double c, uint32_t s_count,
                                         std::vector<uint64_t> keys,
                                         std::vector<double> vals) {
    SparseRegressionPayload p;
    p.c_ = c;
    p.s_count_ = s_count;
    p.keys_ = std::move(keys);
    p.vals_ = std::move(vals);
    return p;
  }

 private:
  static uint64_t PairCode(uint32_t i, uint32_t j) {
    if (i > j) {
      uint32_t t = i;
      i = j;
      j = t;
    }
    return (static_cast<uint64_t>(i) << 32) | j;
  }

  // Drops entries whose value cancelled to exactly 0.0 (rare: exact
  // insert/delete pairs), keeping the no-zero-values invariant and the
  // region split consistent.
  void CompactZeros();

  double c_;
  uint32_t s_count_ = 0;  // keys_[0, s_count_): slots; rest: pair codes
  std::vector<uint64_t> keys_;
  std::vector<double> vals_;
};

SparseRegressionPayload Add(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b);
SparseRegressionPayload Mul(const SparseRegressionPayload& a,
                            const SparseRegressionPayload& b);

/// Ring policy for the degree-indexed (SQL-OPT) encoding of the regression
/// ring.
struct SparseRegressionRing {
  using Element = SparseRegressionPayload;
  static Element Zero() { return SparseRegressionPayload(); }
  static Element One() { return SparseRegressionPayload::Count(1.0); }
  static Element Add(const Element& a, const Element& b) {
    return fivm::Add(a, b);
  }
  static Element Mul(const Element& a, const Element& b) {
    return fivm::Mul(a, b);
  }
  static Element Neg(const Element& a) { return -a; }
  static void AddInPlace(Element& a, const Element& b) { a.AddInPlace(b); }
  static bool IsZero(const Element& a) { return a.IsZero(); }
  static size_t ApproxBytes(const Element& a) { return a.ApproxBytes(); }
};

inline auto SparseRegressionLifting(uint32_t slot) {
  return [slot](const Value& x) {
    return SparseRegressionPayload::Lift(slot, x.AsDouble());
  };
}

}  // namespace fivm

#endif  // FIVM_RINGS_SPARSE_REGRESSION_RING_H_
