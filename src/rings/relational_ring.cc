#include "src/rings/relational_ring.h"

#include <cassert>

namespace fivm {

PayloadRelation PayloadRelation::operator-() const {
  PayloadRelation p;
  p.schema_ = schema_;
  rows_.ForEach([&](const Tuple& t, const int64_t& m) {
    if (m != 0) p.rows_.Insert(t, -m);
  });
  return p;
}

PayloadRelation Add(const PayloadRelation& a, const PayloadRelation& b) {
  PayloadRelation out = a;
  out.AddInPlace(b);
  return out;
}

void PayloadRelation::AddInPlace(const PayloadRelation& b) {
  if (this == &b) {
    PayloadRelation copy = b;
    AddInPlace(copy);
    return;
  }
  if (b.rows_.empty()) return;
  if (rows_.empty()) {
    *this = b;
    return;
  }
  assert(schema_.SameSet(b.schema_));
  // Re-order b's tuples into our positional layout.
  auto proj = b.schema_.PositionsOf(schema_);
  b.rows_.ForEach([&](const Tuple& t, const int64_t& m) {
    if (m == 0) return;
    Tuple key = (schema_ == b.schema_) ? t : t.Project(proj);
    int64_t& slot = rows_[key];
    slot += m;
    if (slot == 0) rows_.Erase(key);
  });
}

PayloadRelation Mul(const PayloadRelation& a, const PayloadRelation& b) {
  PayloadRelation out;
  if (a.rows_.empty() || b.rows_.empty()) return out;

  Schema common = a.schema_.Intersect(b.schema_);
  Schema b_private = b.schema_.Minus(common);
  out.schema_ = a.schema_.Union(b_private);
  auto b_private_pos = b.schema_.PositionsOf(b_private);

  auto emit = [&](const Tuple& ta, int64_t ma, const Tuple& tb, int64_t mb) {
    Tuple key = ta.Concat(tb.Project(b_private_pos));
    int64_t& slot = out.rows_[key];
    slot += ma * mb;
    if (slot == 0) out.rows_.Erase(key);
  };

  if (common.empty()) {
    // Cartesian concatenation — the view-tree case (disjoint payload
    // schemas).
    a.rows_.ForEach([&](const Tuple& ta, const int64_t& ma) {
      if (ma == 0) return;
      b.rows_.ForEach([&](const Tuple& tb, const int64_t& mb) {
        if (mb != 0) emit(ta, ma, tb, mb);
      });
    });
    return out;
  }

  // General natural join on the shared variables.
  auto a_common = a.schema_.PositionsOf(common);
  auto b_common = b.schema_.PositionsOf(common);
  util::FlatHashMap<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHash>
      index;
  b.rows_.ForEach([&](const Tuple& tb, const int64_t& mb) {
    if (mb != 0) index[tb.Project(b_common)].emplace_back(tb, mb);
  });
  a.rows_.ForEach([&](const Tuple& ta, const int64_t& ma) {
    if (ma == 0) return;
    const auto* bucket = index.Find(ta.Project(a_common));
    if (bucket == nullptr) return;
    for (const auto& [tb, mb] : *bucket) emit(ta, ma, tb, mb);
  });
  return out;
}

bool PayloadRelation::operator==(const PayloadRelation& o) const {
  if (rows_.size() != o.rows_.size()) return false;
  if (rows_.empty()) return true;
  if (!schema_.SameSet(o.schema_)) return false;
  auto proj = schema_.PositionsOf(o.schema_);
  bool equal = true;
  rows_.ForEach([&](const Tuple& t, const int64_t& m) {
    if (!equal) return;
    Tuple other_key = (schema_ == o.schema_) ? t : t.Project(proj);
    if (o.Multiplicity(other_key) != m) equal = false;
  });
  return equal;
}

}  // namespace fivm
