#include "src/rings/regression_ring.h"

#include <algorithm>
#include <cassert>

namespace fivm {
namespace {

// Union of two ranges, treating an empty range (lo == hi) as absent.
void UnionRange(uint32_t alo, uint32_t ahi, uint32_t blo, uint32_t bhi,
                uint32_t* lo, uint32_t* hi) {
  if (alo == ahi) {
    *lo = blo;
    *hi = bhi;
  } else if (blo == bhi) {
    *lo = alo;
    *hi = ahi;
  } else {
    *lo = std::min(alo, blo);
    *hi = std::max(ahi, bhi);
  }
}

}  // namespace

RegressionPayload Add(const RegressionPayload& a, const RegressionPayload& b) {
  RegressionPayload out;
  out.c_ = a.c_ + b.c_;
  UnionRange(a.lo_, a.hi_, b.lo_, b.hi_, &out.lo_, &out.hi_);
  size_t len = out.len();
  if (len == 0) return out;
  out.buf_.resize(len + len * (len + 1) / 2);  // value-initialized to 0.0

  auto accumulate = [&](const RegressionPayload& p) {
    if (!p.has_range()) return;
    size_t plen = p.len();
    size_t off = p.lo_ - out.lo_;
    double* s = out.s_data();
    double* q = out.q_data();
    const double* ps = p.s_data();
    const double* pq = p.q_data();
    for (size_t i = 0; i < plen; ++i) s[off + i] += ps[i];
    for (size_t i = 0; i < plen; ++i) {
      const size_t row = RegressionPayload::TriIndex(plen, i, i);
      const size_t orow = RegressionPayload::TriIndex(len, off + i, off + i);
      for (size_t j = 0; i + j < plen; ++j) {
        q[orow + j] += pq[row + j];
      }
    }
  };
  accumulate(a);
  accumulate(b);
  return out;
}

void RegressionPayload::AddInPlace(const RegressionPayload& b) {
  if (!b.has_range()) {
    c_ += b.c_;
    return;
  }
  if (has_range() && lo_ <= b.lo_ && b.hi_ <= hi_) {
    // Fast path: b's range is contained in ours (the common case when
    // accumulating deltas into a view whose range is fixed).
    c_ += b.c_;
    size_t len = this->len();
    size_t blen = b.len();
    size_t off = b.lo_ - lo_;
    double* s = s_data();
    double* q = q_data();
    const double* bs = b.s_data();
    const double* bq = b.q_data();
    for (size_t i = 0; i < blen; ++i) s[off + i] += bs[i];
    for (size_t i = 0; i < blen; ++i) {
      const size_t row = TriIndex(blen, i, i);
      const size_t orow = TriIndex(len, off + i, off + i);
      for (size_t j = 0; i + j < blen; ++j) {
        q[orow + j] += bq[row + j];
      }
    }
    return;
  }
  *this = fivm::Add(*this, b);
}

RegressionPayload Mul(const RegressionPayload& a, const RegressionPayload& b) {
  RegressionPayload out;
  out.c_ = a.c_ * b.c_;
  UnionRange(a.lo_, a.hi_, b.lo_, b.hi_, &out.lo_, &out.hi_);
  size_t len = out.len();
  if (len == 0) return out;
  out.buf_.resize(len + len * (len + 1) / 2);  // value-initialized to 0.0

  double* s = out.s_data();
  double* q = out.q_data();

  // s += scale * sp ; Q += scale * Qp (the cb*Qa and ca*Qb terms).
  auto scale_in = [&](const RegressionPayload& p, double scale) {
    if (!p.has_range() || scale == 0.0) return;
    size_t plen = p.len();
    size_t off = p.lo_ - out.lo_;
    const double* ps = p.s_data();
    const double* pq = p.q_data();
    for (size_t i = 0; i < plen; ++i) s[off + i] += scale * ps[i];
    for (size_t i = 0; i < plen; ++i) {
      const size_t row = RegressionPayload::TriIndex(plen, i, i);
      const size_t orow = RegressionPayload::TriIndex(len, off + i, off + i);
      for (size_t j = 0; i + j < plen; ++j) {
        q[orow + j] += scale * pq[row + j];
      }
    }
  };
  scale_in(a, b.c_);
  scale_in(b, a.c_);

  // Q += sa sb^T + sb sa^T. The sum is symmetric with entry
  // M(x, y) = sa_x * sb_y + sb_x * sa_y, accumulated once per packed cell.
  if (a.has_range() && b.has_range()) {
    auto sa_at = [&](uint32_t g) -> double {
      return (g >= a.lo_ && g < a.hi_) ? a.s_data()[g - a.lo_] : 0.0;
    };
    auto sb_at = [&](uint32_t g) -> double {
      return (g >= b.lo_ && g < b.hi_) ? b.s_data()[g - b.lo_] : 0.0;
    };
    for (uint32_t x = out.lo_; x < out.hi_; ++x) {
      double sax = sa_at(x);
      double sbx = sb_at(x);
      if (sax == 0.0 && sbx == 0.0) continue;
      const size_t orow =
          RegressionPayload::TriIndex(len, x - out.lo_, x - out.lo_);
      for (uint32_t y = x; y < out.hi_; ++y) {
        double v = sax * sb_at(y) + sbx * sa_at(y);
        if (v != 0.0) q[orow + (y - x)] += v;
      }
    }
  }
  return out;
}

bool RegressionPayload::operator==(const RegressionPayload& o) const {
  if (c_ != o.c_) return false;
  uint32_t lo, hi;
  UnionRange(lo_, hi_, o.lo_, o.hi_, &lo, &hi);
  for (uint32_t i = lo; i < hi; ++i) {
    if (Sum(i) != o.Sum(i)) return false;
    for (uint32_t j = i; j < hi; ++j) {
      if (Cofactor(i, j) != o.Cofactor(i, j)) return false;
    }
  }
  return true;
}

}  // namespace fivm
