#include "src/rings/regression_ring.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/simd.h"

namespace fivm {
namespace {

// Union of two ranges, treating an empty range (lo == hi) as absent.
void UnionRange(uint32_t alo, uint32_t ahi, uint32_t blo, uint32_t bhi,
                uint32_t* lo, uint32_t* hi) {
  if (alo == ahi) {
    *lo = blo;
    *hi = bhi;
  } else if (blo == bhi) {
    *lo = alo;
    *hi = ahi;
  } else {
    *lo = std::min(alo, blo);
    *hi = std::max(ahi, bhi);
  }
}

}  // namespace

// Kernel discipline for everything below: the structural case analysis
// (which ranges align, which rows are contiguous) lives here, shared by
// both dispatch arms; only the element-wise inner loops go through
// fivm::simd, whose AVX2 and scalar arms round identically per element.
//
// Layout facts the fast paths rest on: a payload buffer packs s over
// [lo, hi) followed by the upper triangle of Q row-major, rows of
// shrinking length packing consecutively. Hence (1) two payloads over the
// *same* range have bit-identical layouts and combine with one flat kernel
// over s and Q together; (2) a *contained* range still gives one
// contiguous s block and one contiguous Q segment per row; (3) for
// *disjoint* ranges the output triangle decomposes into block rows —
// earlier-range triangle segment, gap, rank-1 rectangle segment, then the
// later-range triangle as one contiguous tail — so Mul can write every
// output double exactly once (no zero-fill pass, no read-modify-write),
// which is where the allocating product spends its time.
//
// The overwrite paths write `scale * x` where the seed accumulated
// `0.0 + scale * x`: identical except that a -0.0 product now stays -0.0
// instead of flushing to +0.0. Both dispatch arms share the structure, so
// the bitwise plan-equivalence and parallel-determinism guarantees are
// unaffected (and operator== compares ±0 equal).

RegressionPayload Add(const RegressionPayload& a, const RegressionPayload& b) {
  RegressionPayload out;
  out.c_ = a.c_ + b.c_;
  UnionRange(a.lo_, a.hi_, b.lo_, b.hi_, &out.lo_, &out.hi_);
  size_t len = out.len();
  if (len == 0) return out;
  const size_t total = len + len * (len + 1) / 2;

  const bool a_covers = a.has_range() && a.len() == len;
  const bool b_covers = b.has_range() && b.len() == len;

  if (a_covers && b_covers) {
    // Identical ranges: one flat overwrite over s and Q together.
    out.buf_.resize_uninitialized(total);
    simd::SumTo(out.buf_.data(), a.buf_.data(), b.buf_.data(), total);
    return out;
  }

  if (a_covers || b_covers) {
    // One operand covers the union: copy it, accumulate the other into the
    // contained window (contiguous s block + one contiguous Q segment per
    // row).
    const RegressionPayload& cov = a_covers ? a : b;
    const RegressionPayload& sub = a_covers ? b : a;
    out.buf_.resize_uninitialized(total);
    std::memcpy(out.buf_.data(), cov.buf_.data(), total * sizeof(double));
    if (sub.has_range()) {
      size_t sublen = sub.len();
      size_t off = sub.lo_ - out.lo_;
      simd::AddTo(out.s_data() + off, sub.s_data(), sublen);
      double* q = out.q_data();
      const double* sq = sub.q_data();
      for (size_t i = 0; i < sublen; ++i) {
        simd::AddTo(q + RegressionPayload::TriIndex(len, off + i, off + i),
                    sq + RegressionPayload::TriIndex(sublen, i, i),
                    sublen - i);
      }
    }
    return out;
  }

  // Neither covers the union (disjoint or partial overlap): zero-fill and
  // accumulate both windows.
  out.buf_.resize(total);  // value-initialized to 0.0
  auto accumulate = [&](const RegressionPayload& p) {
    if (!p.has_range()) return;
    size_t plen = p.len();
    size_t off = p.lo_ - out.lo_;
    simd::AddTo(out.s_data() + off, p.s_data(), plen);
    double* q = out.q_data();
    const double* pq = p.q_data();
    for (size_t i = 0; i < plen; ++i) {
      simd::AddTo(q + RegressionPayload::TriIndex(len, off + i, off + i),
                  pq + RegressionPayload::TriIndex(plen, i, i), plen - i);
    }
  };
  accumulate(a);
  accumulate(b);
  return out;
}

void RegressionPayload::AddInPlace(const RegressionPayload& b) {
  if (!b.has_range()) {
    c_ += b.c_;
    return;
  }
  if (has_range() && lo_ <= b.lo_ && b.hi_ <= hi_) {
    // Fast path: b's range is contained in ours (the common case when
    // accumulating deltas into a view whose range is fixed).
    c_ += b.c_;
    size_t len = this->len();
    size_t blen = b.len();
    if (blen == len) {  // identical ranges: one flat add over s and Q
      simd::AddTo(buf_.data(), b.buf_.data(), buf_.size());
      return;
    }
    size_t off = b.lo_ - lo_;
    simd::AddTo(s_data() + off, b.s_data(), blen);
    double* q = q_data();
    const double* bq = b.q_data();
    for (size_t i = 0; i < blen; ++i) {
      simd::AddTo(q + TriIndex(len, off + i, off + i),
                  bq + TriIndex(blen, i, i), blen - i);
    }
    return;
  }
  *this = fivm::Add(*this, b);
}

RegressionPayload Mul(const RegressionPayload& a, const RegressionPayload& b) {
  RegressionPayload out;
  MulInto(out, a, b);
  return out;
}

/// The product, written into a reused element: clears and refills `out`
/// (buffer capacity survives, so a scratch element chained through
/// propagation terms stops allocating once it has seen the view's payload
/// width). Every path below either overwrites the whole buffer or
/// explicitly zeroes what it skips — `out` may hold arbitrary stale state.
void MulInto(RegressionPayload& out, const RegressionPayload& a,
             const RegressionPayload& b) {
  assert(&out != &a && &out != &b);
  out.c_ = a.c_ * b.c_;
  UnionRange(a.lo_, a.hi_, b.lo_, b.hi_, &out.lo_, &out.hi_);
  size_t len = out.len();
  if (len == 0) {
    out.buf_.clear();
    return;
  }
  const size_t total = len + len * (len + 1) / 2;
  out.buf_.resize_uninitialized(total);

  if (!a.has_range() || !b.has_range()) {
    // One ranged operand: out = scale * p over p's own layout. The
    // scale == 0 case (multiplication by a pure count of zero) keeps the
    // seed's exact-zero buffer so annihilation holds even for non-finite
    // aggregates.
    const RegressionPayload& p = a.has_range() ? a : b;
    const double scale = a.has_range() ? b.c_ : a.c_;
    if (scale == 0.0) {
      std::memset(out.buf_.data(), 0, total * sizeof(double));
    } else {
      simd::ScaleTo(out.buf_.data(), p.buf_.data(), scale, total);
    }
    return;
  }

  // The overwrite fast paths multiply by the counts unconditionally, so
  // they require both counts non-zero: a zero count must contribute exact
  // zeros (annihilation — `0 * inf` would manufacture NaN), which the
  // accumulate-over-zeros path at the bottom preserves via scale_in's
  // skip. Zero-count payloads with a live range only arise from exact
  // insert/delete cancellation — rare enough for the slow path.
  const bool counts_nonzero = a.c_ != 0.0 && b.c_ != 0.0;

  if (counts_nonzero && a.lo_ == b.lo_ && a.hi_ == b.hi_) {
    // Identical ranges: cb*Qa + ca*Qb (with the s halves riding along) is
    // one flat overwrite; the rank-1 sa sb^T + sb sa^T half then
    // accumulates row by row over the contiguous tails y in [x, hi).
    simd::ScalePairTo(out.buf_.data(), a.buf_.data(), b.buf_.data(), b.c_,
                      a.c_, total);
    simd::Rank1UpperTo(out.q_data(), a.s_data(), b.s_data(), len);
    return;
  }

  if (counts_nonzero && (a.hi_ <= b.lo_ || b.hi_ <= a.lo_)) {
    // Disjoint ranges — every view-tree payload product (sibling views and
    // lifts cover disjoint variable sets). With p the earlier range and r
    // the later, each cross term sa_x*sb_y + sb_x*sa_y keeps exactly one
    // non-zero side, so the output decomposes into blocks written exactly
    // once:
    //   s   = [ pscale * sp | zeros | rscale * sr ]
    //   Q,  row x in p:  [ pscale * Qp row | zeros | sp_x * sr ]
    //       rows in gap:   zeros
    //       rows in r:     rscale * Qr — one contiguous triangle tail.
    const bool a_first = a.lo_ < b.lo_;
    const RegressionPayload& p = a_first ? a : b;
    const RegressionPayload& r = a_first ? b : a;
    const double pscale = a_first ? b.c_ : a.c_;  // multiplies sp and Qp
    const double rscale = a_first ? a.c_ : b.c_;
    const size_t plen = p.len();
    const size_t rlen = r.len();
    const size_t gap = r.lo_ - p.hi_;

    double* s = out.s_data();
    double* q = out.q_data();

    simd::ScaleTo(s, p.s_data(), pscale, plen);
    std::memset(s + plen, 0, gap * sizeof(double));
    simd::ScaleTo(s + plen + gap, r.s_data(), rscale, rlen);

    simd::DisjointMulRowsTo(q, p.q_data(), p.s_data(), r.s_data(), pscale,
                            plen, gap, rlen, len);
    if (gap > 0) {
      double* gap_rows = q + RegressionPayload::TriIndex(len, plen, plen);
      double* r_rows =
          q + RegressionPayload::TriIndex(len, plen + gap, plen + gap);
      std::memset(gap_rows, 0,
                  static_cast<size_t>(r_rows - gap_rows) * sizeof(double));
    }
    simd::ScaleTo(q + RegressionPayload::TriIndex(len, plen + gap, plen + gap),
                  r.q_data(), rscale, rlen * (rlen + 1) / 2);
    return;
  }

  // General form — partial overlap (does not arise from view-tree
  // products) and zero-count operands: zero-fill, accumulate the scaled
  // halves (scale_in skips zero scales, preserving annihilation), then
  // gather the rank-1 terms.
  std::memset(out.buf_.data(), 0, total * sizeof(double));
  double* s = out.s_data();
  double* q = out.q_data();
  auto scale_in = [&](const RegressionPayload& p, double scale) {
    if (scale == 0.0) return;
    size_t plen = p.len();
    size_t off = p.lo_ - out.lo_;
    simd::AxpyTo(s + off, p.s_data(), scale, plen);
    const double* pq = p.q_data();
    for (size_t i = 0; i < plen; ++i) {
      simd::AxpyTo(q + RegressionPayload::TriIndex(len, off + i, off + i),
                   pq + RegressionPayload::TriIndex(plen, i, i), scale,
                   plen - i);
    }
  };
  scale_in(a, b.c_);
  scale_in(b, a.c_);

  auto sa_at = [&](uint32_t g) -> double {
    return (g >= a.lo_ && g < a.hi_) ? a.s_data()[g - a.lo_] : 0.0;
  };
  auto sb_at = [&](uint32_t g) -> double {
    return (g >= b.lo_ && g < b.hi_) ? b.s_data()[g - b.lo_] : 0.0;
  };
  for (uint32_t x = out.lo_; x < out.hi_; ++x) {
    double sax = sa_at(x);
    double sbx = sb_at(x);
    if (sax == 0.0 && sbx == 0.0) continue;
    const size_t orow =
        RegressionPayload::TriIndex(len, x - out.lo_, x - out.lo_);
    for (uint32_t y = x; y < out.hi_; ++y) {
      double v = sax * sb_at(y) + sbx * sa_at(y);
      if (v != 0.0) q[orow + (y - x)] += v;
    }
  }
}

bool RegressionPayload::operator==(const RegressionPayload& o) const {
  if (c_ != o.c_) return false;
  uint32_t lo, hi;
  UnionRange(lo_, hi_, o.lo_, o.hi_, &lo, &hi);
  for (uint32_t i = lo; i < hi; ++i) {
    if (Sum(i) != o.Sum(i)) return false;
    for (uint32_t j = i; j < hi; ++j) {
      if (Cofactor(i, j) != o.Cofactor(i, j)) return false;
    }
  }
  return true;
}

}  // namespace fivm
