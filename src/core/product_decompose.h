#ifndef FIVM_CORE_PRODUCT_DECOMPOSE_H_
#define FIVM_CORE_PRODUCT_DECOMPOSE_H_

#include <optional>
#include <vector>

#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"

namespace fivm {

/// Product decomposition of relations (Section 5 / [35]): rewrites a delta
/// relation as a product of factors over a schema partition,
/// δR = F_1 ⊗ ... ⊗ F_k, so that the engine can propagate it factorized
/// (ApplyFactorizedDelta) instead of expanded.
///
/// A relation factorizes over a partition (S_1, S_2) iff its key set is the
/// Cartesian product of its projections and its payloads are multiplicative
/// across the split. Numeric rings (ℤ, ℝ) support the payload check via
/// division against a reference row; `TryDecompose` returns std::nullopt if
/// the relation is not a product over the given partition.

namespace internal {

inline bool PayloadDivide(int64_t a, int64_t b, int64_t* out) {
  if (b == 0) return false;
  if (a % b != 0) return false;
  *out = a / b;
  return true;
}

inline bool PayloadDivide(double a, double b, double* out) {
  if (b == 0.0) return false;
  *out = a / b;
  return true;
}

inline bool PayloadNear(int64_t a, int64_t b) { return a == b; }

inline bool PayloadNear(double a, double b) {
  double scale = 1.0 + (a < 0 ? -a : a);
  double diff = a - b;
  if (diff < 0) diff = -diff;
  return diff <= 1e-9 * scale;
}

}  // namespace internal

/// Attempts δR = F_left ⊗ F_right over the split (left_vars, rest). The
/// payload of F_left[t1] is R[t1, t2_ref]; F_right[t2] = R[t1_ref, t2] /
/// R[t1_ref, t2_ref]; every entry is then verified. O(|R|) time.
template <typename Ring>
std::optional<std::pair<Relation<Ring>, Relation<Ring>>> TryDecompose(
    const Relation<Ring>& rel, const Schema& left_vars) {
  using Element = typename Ring::Element;
  Schema right_vars = rel.schema().Minus(left_vars);
  if (left_vars.empty() || right_vars.empty()) return std::nullopt;
  if (!rel.schema().ContainsAll(left_vars)) return std::nullopt;

  auto left_pos = rel.schema().PositionsOf(left_vars);
  auto right_pos = rel.schema().PositionsOf(right_vars);

  // Distinct projections.
  Relation<Ring> left(left_vars);
  Relation<Ring> right(right_vars);
  std::optional<Tuple> ref_left, ref_right;
  std::optional<Element> ref_payload;
  rel.ForEach([&](const Tuple& k, const Element& p) {
    if (!ref_left) {
      ref_left = k.Project(left_pos);
      ref_right = k.Project(right_pos);
      ref_payload = p;
    }
  });
  if (!ref_left) return std::nullopt;  // empty relation

  // F_left[t1] = R[t1, ref_right]; F_right[t2] = R[ref_left, t2] / ref.
  bool ok = true;
  rel.ForEach([&](const Tuple& k, const Element& p) {
    if (!ok) return;
    Tuple lk = k.Project(left_pos);
    Tuple rk = k.Project(right_pos);
    if (rk == *ref_right) left.Add(lk, p);
    if (lk == *ref_left) {
      Element q;
      if (!internal::PayloadDivide(p, *ref_payload, &q)) {
        ok = false;
        return;
      }
      right.Add(rk, q);
    }
  });
  if (!ok) return std::nullopt;

  // The key set must be exactly the Cartesian product...
  if (left.size() * right.size() != rel.size()) return std::nullopt;
  // ... and every payload must be the product of the factors.
  rel.ForEach([&](const Tuple& k, const Element& p) {
    if (!ok) return;
    const Element* lp = left.Find(k.Project(left_pos));
    const Element* rp = right.Find(k.Project(right_pos));
    if (lp == nullptr || rp == nullptr ||
        !internal::PayloadNear(p, Ring::Mul(*lp, *rp))) {
      ok = false;
    }
  });
  if (!ok) return std::nullopt;
  return std::make_pair(std::move(left), std::move(right));
}

/// Fully factorizes a delta by greedily splitting off one variable at a
/// time. Returns the factors (singleton = no factorization found). The
/// cumulative factor size can be far below |δR| (Example 5.1: nm -> n + m).
template <typename Ring>
std::vector<Relation<Ring>> ProductDecompose(const Relation<Ring>& rel) {
  std::vector<Relation<Ring>> factors;
  Relation<Ring> rest = rel;
  bool split = true;
  while (split && rest.schema().size() > 1) {
    split = false;
    for (VarId v : rest.schema()) {
      auto result = TryDecompose(rest, Schema{v});
      if (result) {
        factors.push_back(std::move(result->first));
        rest = std::move(result->second);
        split = true;
        break;
      }
    }
  }
  factors.push_back(std::move(rest));
  return factors;
}

/// Cumulative size of a factorization (for deciding whether propagating it
/// factorized is worthwhile).
template <typename Ring>
size_t CumulativeSize(const std::vector<Relation<Ring>>& factors) {
  size_t total = 0;
  for (const auto& f : factors) total += f.size();
  return total;
}

}  // namespace fivm

#endif  // FIVM_CORE_PRODUCT_DECOMPOSE_H_
