#include "src/core/view_tree.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "src/core/gyo.h"

namespace fivm {

ViewTree::ViewTree(const Query* query, const VariableOrder* vorder,
                   Options options)
    : query_(query), vorder_(vorder), options_(options) {
  assert(vorder->finalized() && "variable order must be finalized");
  if (options_.retain_vars) options_.compose_chains = false;

  leaf_of_relation_.assign(query->relation_count(), -1);

  // Build one view node per variable-order node (plus relation leaves),
  // bottom-up, following Figure 3.
  std::vector<int> tops;
  for (int r : vorder->roots()) tops.push_back(BuildFromVarOrder(r, -1));

  if (tops.size() == 1) {
    root_ = tops[0];
  } else {
    // Disconnected query: a virtual root joins the independent components
    // (Cartesian product in the key space).
    root_ = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    Node& root = nodes_[root_];
    for (int t : tops) {
      root.children.push_back(t);
      nodes_[t].parent = root_;
      root.out_schema = root.out_schema.Union(nodes_[t].out_schema);
      for (int r : nodes_[t].subtree_relations) {
        root.subtree_relations.push_back(r);
      }
    }
    root.store_schema = root.out_schema;
  }

  if (options_.compose_chains) ComposeChains();
  ComputeNames();
}

int ViewTree::BuildFromVarOrder(int vo_node, int parent) {
  const VariableOrder::Node& vn = vorder_->node(vo_node);
  int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  {
    Node& n = nodes_[idx];
    n.parent = parent;
    n.vars.push_back(vn.var);
  }

  // Children: recurse into variable-order children, then wrap anchored
  // relations as leaves.
  util::SmallVector<int, 4> children;
  for (int c : vn.children) {
    children.push_back(BuildFromVarOrder(c, idx));
  }
  for (int r : vn.relations) {
    int leaf = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    Node& ln = nodes_[leaf];
    ln.relation = r;
    ln.parent = idx;
    ln.out_schema = query_->relation(r).schema;
    ln.store_schema = ln.out_schema;
    ln.subtree_relations.push_back(r);
    leaf_of_relation_[r] = leaf;
    children.push_back(leaf);
  }

  Node& n = nodes_[idx];
  n.children = children;

  // Keys: dep(X) ∪ (F ∩ union of child keys). In retain mode all variables
  // are treated as bound (the factorization lives in the stores).
  Schema child_keys;
  for (int c : n.children) {
    child_keys = child_keys.Union(nodes_[c].out_schema);
    for (int r : nodes_[c].subtree_relations) {
      bool present = false;
      for (int existing : n.subtree_relations) {
        if (existing == r) present = true;
      }
      if (!present) n.subtree_relations.push_back(r);
    }
  }
  const Schema& free =
      options_.retain_vars ? Schema{} : query_->free_vars();
  bool var_is_free = free.Contains(vn.var);

  n.out_schema = vn.dep;
  for (VarId v : child_keys) {
    if (free.Contains(v)) n.out_schema.Add(v);
  }
  if (!var_is_free && child_keys.Contains(vn.var)) {
    n.marg_vars = Schema{vn.var};
  }
  n.store_schema = n.out_schema;
  if (options_.retain_vars && child_keys.Contains(vn.var)) {
    n.store_schema = n.out_schema.Union(Schema{vn.var});
    n.retained_vars = Schema{vn.var};
  }
  return idx;
}

void ViewTree::ComposeChains() {
  // Merge every variable node P whose single child C is also a variable
  // node: the composed view marginalizes both nodes' variables at once
  // (V_P = ⊕_{P.marg} ⊕_{C.marg} ⊗ C.children, with keys(P)).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t p = 0; p < nodes_.size(); ++p) {
      Node& pn = nodes_[p];
      if (pn.relation >= 0 || pn.children.size() != 1) continue;
      int c = pn.children[0];
      Node& cn = nodes_[c];
      if (cn.relation >= 0) continue;
      // Absorb C into P.
      for (VarId v : cn.vars) pn.vars.push_back(v);
      pn.marg_vars = pn.marg_vars.Union(cn.marg_vars);
      pn.children = cn.children;
      for (int gc : pn.children) nodes_[gc].parent = static_cast<int>(p);
      cn.children.clear();
      cn.parent = -2;  // detached marker
      changed = true;
    }
  }

  // Compact: drop detached nodes, remap indices.
  std::vector<int> remap(nodes_.size(), -1);
  std::vector<Node> compact;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == -2) continue;
    remap[i] = static_cast<int>(compact.size());
    compact.push_back(std::move(nodes_[i]));
  }
  for (Node& n : compact) {
    if (n.parent >= 0) n.parent = remap[n.parent];
    for (int& c : n.children) c = remap[c];
  }
  for (int& l : leaf_of_relation_) l = remap[l];
  root_ = remap[root_];
  nodes_ = std::move(compact);
}

int ViewTree::AddIndicatorProjections() {
  int added = 0;
  // Bottom-up over variable nodes (leaves have no children to cycle with).
  std::vector<int> order;
  std::function<void(int)> collect = [&](int idx) {
    for (int c : nodes_[idx].children) collect(c);
    order.push_back(idx);
  };
  collect(root_);

  for (int idx : order) {
    if (nodes_[idx].relation >= 0 || nodes_[idx].indicator_for >= 0) continue;
    // Hyperedges: the children's out schemas.
    std::vector<Schema> edges;
    for (int c : nodes_[idx].children) edges.push_back(nodes_[c].out_schema);
    size_t child_count = edges.size();
    if (child_count < 2) continue;

    // Candidate indicators: relations outside this subtree whose schema
    // intersects the view keys.
    std::vector<int> candidates;
    for (int r = 0; r < query_->relation_count(); ++r) {
      bool in_subtree = false;
      for (int own : nodes_[idx].subtree_relations) {
        if (own == r) in_subtree = true;
      }
      if (in_subtree) continue;
      Schema pk = query_->relation(r).schema.Intersect(nodes_[idx].out_schema);
      if (pk.empty()) continue;
      candidates.push_back(r);
      edges.push_back(pk);
    }
    if (candidates.empty()) continue;

    std::vector<int> core = GyoCyclicCore(edges);
    for (int e : core) {
      if (static_cast<size_t>(e) < child_count) continue;  // a child edge
      int r = candidates[e - child_count];
      int leaf = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      Node& ln = nodes_[leaf];
      ln.indicator_for = r;
      ln.parent = idx;
      ln.out_schema = edges[e];
      ln.store_schema = edges[e];
      ln.name = "Ind" + query_->relation(r).name + edges[e].ToString();
      nodes_[idx].children.push_back(leaf);
      // The node (and its ancestors) now depend on r for maintenance.
      int anc = idx;
      while (anc >= 0) {
        bool present = false;
        for (int own : nodes_[anc].subtree_relations) {
          if (own == r) present = true;
        }
        if (!present) nodes_[anc].subtree_relations.push_back(r);
        anc = nodes_[anc].parent;
      }
      ++added;
    }
  }
  return added;
}

std::vector<int> ViewTree::IndicatorLeavesOfRelation(int r) const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].indicator_for == r) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> ViewTree::PathToRoot(int r) const {
  std::vector<int> path;
  int n = leaf_of_relation_[r];
  while (n >= 0) {
    path.push_back(n);
    n = nodes_[n].parent;
  }
  return path;
}

void ViewTree::ComputeMaterialization(const std::vector<int>& updatable) {
  auto is_updatable = [&](int rel) {
    for (int u : updatable) {
      if (u == rel) return true;
    }
    return false;
  };

  // Leaf descendants per node. Indicator leaves count as instances of their
  // underlying relation, so a view that hosts an indicator for R is still
  // materialized when R's *real* leaf sits in a sibling branch (and vice
  // versa) — the Figure 5 rule applied to relation instances.
  std::vector<std::vector<int>> leaves(nodes_.size());
  std::function<void(int)> collect = [&](int idx) {
    const Node& n = nodes_[idx];
    if (n.relation >= 0 || n.indicator_for >= 0) {
      leaves[idx].push_back(idx);
      return;
    }
    for (int c : n.children) {
      collect(c);
      for (int l : leaves[c]) leaves[idx].push_back(l);
    }
  };
  collect(root_);

  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[static_cast<int>(i)];
    if (n.parent < 0) {
      n.materialized = true;
      continue;
    }
    bool store = false;
    for (int leaf : leaves[n.parent]) {
      bool in_self = false;
      for (int own : leaves[i]) {
        if (own == leaf) in_self = true;
      }
      if (in_self) continue;
      const Node& ln = nodes_[leaf];
      int rel = ln.relation >= 0 ? ln.relation : ln.indicator_for;
      if (is_updatable(rel)) store = true;
    }
    n.materialized = store;
  }

  // The engine derives indicator deltas from the base relation's payloads,
  // so an indicated relation's leaf must be stored when it is updatable.
  for (const Node& n : nodes_) {
    if (n.indicator_for >= 0 && is_updatable(n.indicator_for)) {
      nodes_[leaf_of_relation_[n.indicator_for]].materialized = true;
    }
  }
}

void ViewTree::MaterializeAll() {
  for (Node& n : nodes_) n.materialized = true;
}

int ViewTree::MaterializedCount() const {
  int count = 0;
  for (const Node& n : nodes_) count += n.materialized ? 1 : 0;
  return count;
}

std::vector<uint32_t> ViewTree::AssignAggregateSlots() const {
  size_t max_var = 0;
  for (VarId v : query_->AllVars()) {
    max_var = std::max<size_t>(max_var, v + 1);
  }
  std::vector<uint32_t> slots(max_var, 0);
  uint32_t next = 0;
  std::function<void(int)> rec = [&](int idx) {
    const Node& n = nodes_[idx];
    for (VarId v : n.vars) slots[v] = next++;
    for (int c : n.children) {
      if (nodes_[c].relation < 0) rec(c);
    }
  };
  rec(root_);
  return slots;
}

void ViewTree::ComputeNames() {
  for (Node& n : nodes_) {
    if (n.relation >= 0) {
      n.name = query_->relation(n.relation).name;
      continue;
    }
    std::string at;
    for (size_t i = 0; i < n.vars.size(); ++i) {
      if (i > 0) at += ",";
      at += query_->catalog().NameOf(n.vars[i]);
    }
    std::string rels;
    for (int r : n.subtree_relations) {
      rels += query_->relation(r).name.substr(0, 2);
    }
    n.name = "V@" + at + "_" + rels;
  }
}

std::string ViewTree::SchemaNames(const Schema& s) const {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ",";
    out += query_->catalog().NameOf(s[i]);
  }
  out += "]";
  return out;
}

std::string ViewTree::ExplainViews() const {
  std::string out;
  std::function<void(int)> rec = [&](int idx) {
    const Node& n = nodes_[idx];
    for (int c : n.children) rec(c);
    if (n.relation >= 0) return;
    out += n.name + SchemaNames(n.store_schema) + " = ";
    if (!n.marg_vars.empty()) {
      Schema shown = n.marg_vars.Minus(n.retained_vars);
      if (!shown.empty()) {
        out += "⊕";
        for (VarId v : shown) out += query_->catalog().NameOf(v);
        out += " ";
      }
    }
    out += "( ";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out += " ⊗ ";
      const Node& c = nodes_[n.children[i]];
      out += c.name + SchemaNames(c.out_schema);
    }
    out += " )\n";
  };
  rec(root_);
  return out;
}

std::string ViewTree::ExplainDelta(int relation) const {
  std::string out;
  std::vector<int> path = PathToRoot(relation);
  for (size_t i = 1; i < path.size(); ++i) {
    const Node& n = nodes_[path[i]];
    out += "δ" + n.name + SchemaNames(n.out_schema) + " = ";
    if (!n.marg_vars.empty()) {
      out += "⊕";
      for (VarId v : n.marg_vars) out += query_->catalog().NameOf(v);
      out += " ";
    }
    out += "( ";
    bool first = true;
    // The delta child first, then the materialized siblings it joins with.
    {
      const Node& c = nodes_[path[i - 1]];
      out += "δ" + c.name + SchemaNames(c.out_schema);
      first = false;
    }
    for (int child : n.children) {
      if (child == path[i - 1]) continue;
      const Node& c = nodes_[child];
      if (!first) out += " ⊗ ";
      out += c.name + SchemaNames(c.store_schema);
      first = false;
    }
    out += " )\n";
  }
  return out;
}

std::string ViewTree::ToString() const {
  std::string out;
  std::function<void(int, int)> rec = [&](int idx, int indent) {
    const Node& n = nodes_[idx];
    out.append(indent, ' ');
    out += n.name + n.store_schema.ToString();
    if (n.materialized) out += " *";
    out += "\n";
    for (int c : n.children) rec(c, indent + 2);
  };
  rec(root_, 0);
  return out;
}

}  // namespace fivm
