#include "src/core/variable_order.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace fivm {

int VariableOrder::AddNode(VarId var, int parent) {
  int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[idx].var = var;
  nodes_[idx].parent = parent;
  if (parent < 0) {
    roots_.push_back(idx);
  } else {
    nodes_[parent].children.push_back(idx);
  }
  return idx;
}

int VariableOrder::node_of_var(VarId v) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var == v) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> VariableOrder::TopDown() const {
  std::vector<int> order;
  order.reserve(nodes_.size());
  std::vector<int> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (int c : nodes_[n].children) stack.push_back(c);
  }
  return order;
}

bool VariableOrder::Finalize(const Query& q, std::string* error) {
  // Every query variable must have exactly one node.
  Schema all = q.AllVars();
  for (VarId v : all) {
    int count = 0;
    for (const Node& n : nodes_) {
      if (n.var == v) ++count;
    }
    if (count != 1) {
      if (error) {
        *error = "variable " + q.catalog().NameOf(v) +
                 (count == 0 ? " missing from" : " duplicated in") +
                 " variable order";
      }
      return false;
    }
  }

  // Depth of each node, for path checks and lowest-variable anchoring.
  std::vector<int> depth(nodes_.size(), 0);
  for (int n : TopDown()) {
    depth[n] = nodes_[n].parent < 0 ? 0 : depth[nodes_[n].parent] + 1;
  }

  auto is_ancestor = [&](int anc, int node) {
    int cur = node;
    while (cur >= 0) {
      if (cur == anc) return true;
      cur = nodes_[cur].parent;
    }
    return false;
  };

  // Attach each relation to its deepest variable and validate the
  // root-to-leaf path constraint.
  for (int r = 0; r < q.relation_count(); ++r) {
    const Schema& sch = q.relation(r).schema;
    int deepest = -1;
    for (VarId v : sch) {
      int n = node_of_var(v);
      if (deepest < 0 || depth[n] > depth[deepest]) deepest = n;
    }
    if (deepest < 0) {
      if (error) *error = "relation " + q.relation(r).name + " has no vars";
      return false;
    }
    for (VarId v : sch) {
      int n = node_of_var(v);
      if (!is_ancestor(n, deepest)) {
        if (error) {
          *error = "relation " + q.relation(r).name +
                   " variables not on one root-to-leaf path (" +
                   q.catalog().NameOf(v) + ")";
        }
        return false;
      }
    }
    nodes_[deepest].relations.push_back(r);
  }

  ComputeSubtrees(q);
  finalized_ = true;
  return true;
}

void VariableOrder::ComputeSubtrees(const Query& q) {
  std::vector<int> order = TopDown();
  // Bottom-up: subtree vars and subtree relations.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& n = nodes_[*it];
    n.subtree_vars = Schema{};
    n.subtree_vars.Add(n.var);
    n.subtree_relations.clear();
    for (int c : n.children) {
      n.subtree_vars = n.subtree_vars.Union(nodes_[c].subtree_vars);
      for (int r : nodes_[c].subtree_relations) {
        bool present = false;
        for (int existing : n.subtree_relations) {
          if (existing == r) present = true;
        }
        if (!present) n.subtree_relations.push_back(r);
      }
    }
    for (int r : n.relations) n.subtree_relations.push_back(r);
  }
  // dep(X) = ancestors(X) ∩ vars of relations intersecting subtree(X).
  for (int idx : order) {
    Node& n = nodes_[idx];
    Schema reachable;
    for (int r = 0; r < q.relation_count(); ++r) {
      if (q.relation(r).schema.Intersects(n.subtree_vars)) {
        reachable = reachable.Union(q.relation(r).schema);
      }
    }
    n.dep = Schema{};
    int anc = n.parent;
    while (anc >= 0) {
      if (reachable.Contains(nodes_[anc].var)) n.dep.Add(nodes_[anc].var);
      anc = nodes_[anc].parent;
    }
  }
}

namespace {
struct AutoTask {
  std::vector<VarId> vars;
  std::vector<Schema> schemas;  // remaining relation schemas (restricted)
  int parent;
};
}  // namespace

VariableOrder VariableOrder::Auto(const Query& q) {
  return AutoImpl(q, nullptr);
}

VariableOrder VariableOrder::AutoRandom(const Query& q, uint64_t seed) {
  util::Rng rng(seed);
  return AutoImpl(q, &rng);
}

VariableOrder VariableOrder::AutoImpl(const Query& q, util::Rng* rng) {
  VariableOrder vo;
  using Task = AutoTask;

  std::vector<Schema> schemas;
  for (const auto& rel : q.relations()) schemas.push_back(rel.schema);

  std::function<void(Task)> build = [&](Task task) {
    if (task.vars.empty()) return;
    // Prefer free variables (keeps them on top of every path), then either
    // the highest relation degree (deterministic) or a uniform pick
    // (randomized plan exploration).
    VarId best = task.vars[0];
    if (rng != nullptr) {
      std::vector<VarId> candidates;
      for (VarId v : task.vars) {
        if (q.free_vars().Contains(v)) candidates.push_back(v);
      }
      if (candidates.empty()) candidates = task.vars;
      best = candidates[rng->Uniform(candidates.size())];
    } else {
      int best_score = -1;
      bool best_free = false;
      for (VarId v : task.vars) {
        bool is_free = q.free_vars().Contains(v);
        int score = 0;
        for (const Schema& s : task.schemas) {
          if (s.Contains(v)) ++score;
        }
        if ((is_free && !best_free) ||
            (is_free == best_free && score > best_score)) {
          best = v;
          best_score = score;
          best_free = is_free;
        }
      }
    }

    int node = vo.AddNode(best, task.parent);

    // Remove best; split the remainder into connected components (two
    // variables connect if they co-occur in a remaining relation schema).
    std::vector<VarId> rest;
    for (VarId v : task.vars) {
      if (v != best) rest.push_back(v);
    }
    if (rest.empty()) return;

    // Union-find over rest via shared schemas.
    std::vector<int> comp(rest.size());
    for (size_t i = 0; i < rest.size(); ++i) comp[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      while (comp[x] != x) x = comp[x] = comp[comp[x]];
      return x;
    };
    auto unite = [&](int a, int b) { comp[find(a)] = find(b); };
    auto index_of = [&](VarId v) -> int {
      for (size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == v) return static_cast<int>(i);
      }
      return -1;
    };
    for (const Schema& s : task.schemas) {
      int first = -1;
      for (VarId v : s) {
        if (v == best) continue;
        int i = index_of(v);
        if (i < 0) continue;
        if (first < 0) {
          first = i;
        } else {
          unite(first, i);
        }
      }
    }

    // Group into component tasks.
    std::vector<int> reps;
    std::vector<Task> subtasks;
    for (size_t i = 0; i < rest.size(); ++i) {
      int rep = find(static_cast<int>(i));
      int t = -1;
      for (size_t k = 0; k < reps.size(); ++k) {
        if (reps[k] == rep) t = static_cast<int>(k);
      }
      if (t < 0) {
        reps.push_back(rep);
        subtasks.push_back(Task{{}, {}, node});
        t = static_cast<int>(subtasks.size()) - 1;
      }
      subtasks[t].vars.push_back(rest[i]);
    }
    for (const Schema& s : task.schemas) {
      // A schema (with best removed) belongs to the component of any of its
      // remaining vars (they are all connected through it).
      Schema reduced;
      for (VarId v : s) {
        if (v != best && index_of(v) >= 0) reduced.Add(v);
      }
      if (reduced.empty()) continue;
      int rep = find(index_of(reduced[0]));
      for (size_t k = 0; k < reps.size(); ++k) {
        if (reps[k] == rep) subtasks[k].schemas.push_back(reduced);
      }
    }
    for (Task& t : subtasks) build(std::move(t));
  };

  Schema all = q.AllVars();
  Task root;
  root.parent = -1;
  for (VarId v : all) root.vars.push_back(v);
  root.schemas = schemas;
  // If the query itself is disconnected, the recursion handles it only below
  // the first pick; split the top level into components as well.
  // (Simplest: run build once; disconnected queries get a chain through the
  // first component then separate roots are not created. To support multiple
  // roots we split here.)
  {
    std::vector<int> comp(root.vars.size());
    for (size_t i = 0; i < comp.size(); ++i) comp[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      while (comp[x] != x) x = comp[x] = comp[comp[x]];
      return x;
    };
    auto index_of = [&](VarId v) -> int {
      for (size_t i = 0; i < root.vars.size(); ++i) {
        if (root.vars[i] == v) return static_cast<int>(i);
      }
      return -1;
    };
    for (const Schema& s : root.schemas) {
      int first = -1;
      for (VarId v : s) {
        int i = index_of(v);
        if (i < 0) continue;
        if (first < 0) {
          first = i;
        } else {
          comp[find(first)] = find(i);
        }
      }
    }
    std::vector<int> reps;
    std::vector<Task> tops;
    for (size_t i = 0; i < root.vars.size(); ++i) {
      int rep = find(static_cast<int>(i));
      int t = -1;
      for (size_t k = 0; k < reps.size(); ++k) {
        if (reps[k] == rep) t = static_cast<int>(k);
      }
      if (t < 0) {
        reps.push_back(rep);
        tops.push_back(Task{{}, {}, -1});
        t = static_cast<int>(tops.size()) - 1;
      }
      tops[t].vars.push_back(root.vars[i]);
    }
    for (const Schema& s : root.schemas) {
      if (s.empty()) continue;
      int rep = find(index_of(s[0]));
      for (size_t k = 0; k < reps.size(); ++k) {
        if (reps[k] == rep) tops[k].schemas.push_back(s);
      }
    }
    for (Task& t : tops) build(std::move(t));
  }

  std::string error;
  bool ok = vo.Finalize(q, &error);
  assert(ok && "Auto() must produce a valid variable order");
  (void)ok;
  return vo;
}

VariableOrder VariableOrder::Chain(const std::vector<VarId>& vars) {
  VariableOrder vo;
  int parent = -1;
  for (VarId v : vars) parent = vo.AddNode(v, parent);
  return vo;
}

std::string VariableOrder::ToString(const Catalog& catalog) const {
  std::string out;
  std::function<void(int, int)> rec = [&](int n, int indent) {
    out.append(indent, ' ');
    out += catalog.NameOf(nodes_[n].var);
    if (!nodes_[n].relations.empty()) {
      out += " [";
      for (size_t i = 0; i < nodes_[n].relations.size(); ++i) {
        if (i > 0) out += ",";
        out += "R" + std::to_string(nodes_[n].relations[i]);
      }
      out += "]";
    }
    out += "\n";
    for (int c : nodes_[n].children) rec(c, indent + 2);
  };
  for (int r : roots_) rec(r, 0);
  return out;
}

}  // namespace fivm
