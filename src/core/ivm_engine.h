#ifndef FIVM_CORE_IVM_ENGINE_H_
#define FIVM_CORE_IVM_ENGINE_H_

#include <atomic>
#include <cassert>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/core/view_tree.h"
#include "src/data/op_specs.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/obs/metrics.h"
#include "src/plan/propagation_plan.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"
#include "src/util/memory_tracker.h"

namespace fivm {

#if FIVM_METRICS_ENABLED
namespace engine_obs {

/// Observed execution profile of one compiled plan step, accumulated across
/// every PropagateDelta that reached it (including concurrent shard
/// callers, hence the relaxed atomics). Engine-owned — not in the global
/// registry — so each engine instance profiles its own plans and
/// ExplainAnalyze never mixes arms of an A/B bench.
struct StepObs {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> in_tuples{0};
  std::atomic<uint64_t> out_tuples{0};
  std::atomic<uint64_t> time_ns{0};
  std::atomic<uint64_t> allocs{0};
};

/// Per-plan step profiles, sized once at engine construction (atomics are
/// immovable, so the vector is never grown).
struct LeafObs {
  explicit LeafObs(size_t steps) : step(steps) {}
  std::vector<StepObs> step;
};

}  // namespace engine_obs
#endif  // FIVM_METRICS_ENABLED

/// F-IVM: the factorized higher-order incremental view maintenance engine
/// (Section 4). Owns the materialized stores of a view tree and implements
/// the IVM triggers: an update to relation R propagates delta views along
/// the single leaf-to-root path of R, joining each delta with the
/// materialized sibling views (Figure 4).
///
/// Propagation is *compiled*, DBToaster-style: at construction the engine
/// compiles one plan::PropagationPlan per leaf (src/plan/) — the full
/// leaf-to-root route as a flat vector of resolved steps with precomputed
/// schemas, position maps, per-join probe strategy, fused marginalization
/// placement and store-absorb points. PropagateDelta executes those steps;
/// PrewarmPropagationIndexes and PropagationJoinKey read the same compiled
/// plan, so execution, prewarming and partitioning can never drift apart
/// (the seed interpreter needed a schema-algebra replay kept in lockstep by
/// hand). Intermediate delta relations ping-pong through reusable scratch
/// slots, so repeated batches refill existing entry/index capacity.
///
/// ApplyFactorizedDelta additionally implements the Optimize step of
/// Section 5: a delta given as a product of factors is propagated without
/// materializing its Cartesian product — sibling views join into the factor
/// they share variables with, and marginalization is pushed into the factor
/// that owns each variable. (Factor schemas vary per update, so this path
/// derives its specs per call.)
///
/// If the tree carries indicator projections (Appendix B), updates to an
/// indicated relation trigger a second, sequential propagation from each
/// indicator leaf; per-key support counts (Example B.2) turn base-relation
/// deltas into indicator deltas.
template <typename Ring>
class IvmEngine {
 public:
  using Element = typename Ring::Element;

  /// Reusable intermediate-delta buffers for one propagation execution.
  /// PropagateDelta ping-pongs join/marginalize outputs through the two
  /// slots (Relation::Reset keeps their entry and index capacity), so a
  /// caller that owns a scratch across calls — as the engine itself does for
  /// the sequential trigger — re-fills allocated memory instead of growing
  /// fresh relations per delta. Each concurrent PropagateDelta caller must
  /// use its own scratch.
  struct PropagationScratch {
    Relation<Ring> buf[2];
  };

  /// `tree` must outlive the engine and must already carry a
  /// materialization plan (ComputeMaterialization / MaterializeAll).
  IvmEngine(const ViewTree* tree, LiftingMap<Ring> lifts)
      : IvmEngine(tree, std::move(lifts), /*compile_plans=*/true) {}

  const ViewTree& tree() const { return *tree_; }
  const LiftingMap<Ring>& lifts() const { return lifts_; }

  /// The compiled propagation plans (one per base/indicator leaf). The exec
  /// layer holds handles into this set; PlanSet::DebugString() dumps every
  /// route for diffing in bug reports.
  const plan::PlanSet& plans() const { return plans_; }

  /// The maintained query result (root view).
  const Relation<Ring>& result() const { return stores_[tree_->root()]; }

  /// The materialized store of view `node` (empty if not materialized).
  const Relation<Ring>& store(int node) const { return stores_[node]; }

  /// Bulk-loads an initial database: evaluates the whole tree bottom-up and
  /// fills every materialized store.
  void Initialize(const Database<Ring>& db) {
    for (auto& s : stores_) s.Clear();
    EvalOut(tree_->root(), db);
  }

  /// Durability hook: overwrites the store of `node` with recovered
  /// checkpoint contents. Like Initialize this bypasses the store-delta
  /// observer (an attached SnapshotServer must Rebase() afterwards); the
  /// caller (durability::LoadNewestCheckpoint) has already validated that
  /// the image's schema matches this node's store schema.
  void RestoreStore(int node, Relation<Ring>&& contents) {
    stores_[static_cast<size_t>(node)] = std::move(contents);
  }

  /// Applies an update δR to relation `relation` (Figure 4 delta tree):
  /// propagates delta views leaf-to-root and refreshes every materialized
  /// store on the path, then propagates any indicator deltas sequentially.
  /// The rvalue overload consumes the delta, so a freshly built update
  /// batch flows into propagation without a per-batch deep copy.
  void ApplyDelta(int relation, const Relation<Ring>& delta) {
    const Schema& target =
        tree_->node(tree_->LeafOfRelation(relation)).out_schema;
    if (delta.schema() == target) {
      ApplyDelta(relation, Relation<Ring>(delta));
      return;
    }
    // Reorder straight from the reference: one materialization, not a deep
    // copy followed by a rebuild inside ReorderIfNeeded.
    Relation<Ring> reordered(target);
    reordered.Reserve(delta.size());
    auto pos = delta.schema().PositionsOf(target);
    delta.ForEach([&](const Tuple& k, const Element& p) {
      reordered.Add(k.Project(pos), p);
    });
    ApplyDelta(relation, std::move(reordered));
  }

  void ApplyDelta(int relation, Relation<Ring>&& delta) {
#if FIVM_METRICS_ENABLED
    if (applied_deltas_ != nullptr) {
      applied_deltas_->Inc();
      applied_tuples_->Add(delta.size());
    }
#endif
    // Indicator deltas are derived from the pre-update base relation.
    std::vector<std::pair<int, Relation<Ring>>> indicator_deltas;
    for (int leaf : tree_->IndicatorLeavesOfRelation(relation)) {
      indicator_deltas.emplace_back(leaf,
                                    ComputeIndicatorDelta(leaf, delta));
    }

    int leaf = tree_->LeafOfRelation(relation);
    if (tree_->node(leaf).materialized) AbsorbStoreDelta(leaf, delta);
    PropagateUp(leaf,
                ReorderIfNeeded(std::move(delta),
                                tree_->node(leaf).out_schema));

    for (auto& [ind_leaf, ind_delta] : indicator_deltas) {
      if (ind_delta.empty()) continue;
      if (tree_->node(ind_leaf).materialized) {
        AbsorbStoreDelta(ind_leaf, ind_delta);
      }
      PropagateUp(ind_leaf, std::move(ind_delta));
    }
  }

  /// A bulk of updates to distinct relations is handled as a sequence of
  /// single-relation updates (Section 4, "IVM Triggers"). The rvalue
  /// overload consumes each delta, sparing one deep copy per entry on the
  /// common build-then-apply pattern.
  void ApplyUpdates(
      const std::vector<std::pair<int, Relation<Ring>>>& deltas) {
    for (const auto& [relation, delta] : deltas) {
      ApplyDelta(relation, delta);
    }
  }

  void ApplyUpdates(std::vector<std::pair<int, Relation<Ring>>>&& deltas) {
    for (auto& [relation, delta] : deltas) {
      ApplyDelta(relation, std::move(delta));
    }
  }

  /// Applies a factorizable update δR = factors[0] ⊗ ... ⊗ factors[k-1]
  /// (disjoint schemas covering sch(R)) without materializing the product
  /// except where a store on the path requires it (Section 5).
  void ApplyFactorizedDelta(int relation,
                            std::vector<Relation<Ring>> factors) {
    assert(!factors.empty());
    if (!tree_->IndicatorLeavesOfRelation(relation).empty()) {
      // Indicator maintenance needs per-tuple payloads; fall back to the
      // expanded form, consuming the factors.
      ApplyDelta(relation,
                 ReorderIfNeeded(ExpandProduct(std::move(factors)),
                                 query_relation_schema(relation)));
      return;
    }

    std::vector<int> path = tree_->PathToRoot(relation);
    int leaf = path[0];
    if (tree_->node(leaf).materialized) {
      AbsorbProductDelta(leaf, factors);
    }

    int prev = leaf;
    for (size_t i = 1; i < path.size(); ++i) {
      const ViewTree::Node& n = tree_->node(path[i]);
      Schema remaining = n.marg_vars;

      for (size_t ci = 0; ci < n.children.size(); ++ci) {
        int c = n.children[ci];
        if (c == prev) continue;
        assert(tree_->node(c).materialized);
        const Relation<Ring>& sib = stores_[c];

        // Merge every factor sharing variables with the sibling. Consumed
        // factors are compacted out in one stable pass (the erase-in-loop
        // alternative is quadratic on wide products).
        Relation<Ring> combined;
        bool have = false;
        size_t keep = 0;
        for (size_t f = 0; f < factors.size(); ++f) {
          if (factors[f].schema().Intersects(sib.schema())) {
            if (!have) {
              combined = std::move(factors[f]);
              have = true;
            } else {
              combined = Join(combined, factors[f]);
            }
          } else {
            if (keep != f) factors[keep] = std::move(factors[f]);
            ++keep;
          }
        }
        factors.resize(keep);
        if (!have) {
          // Sibling independent of all factors: it becomes its own factor
          // (Cartesian term), with retained vars marginalized.
          Relation<Ring> copy = sib;
          if (!tree_->node(c).retained_vars.empty()) {
            copy = Marginalize(copy, tree_->node(c).retained_vars, lifts_);
          }
          factors.push_back(std::move(copy));
          continue;
        }

        // Marginalize now the vars that live only in this join's scope.
        Schema now = tree_->node(c).retained_vars;
        Schema scope = combined.schema().Union(sib.schema());
        for (VarId v : remaining) {
          if (!scope.Contains(v)) continue;
          bool elsewhere = false;
          for (const auto& f : factors) {
            if (f.schema().Contains(v)) elsewhere = true;
          }
          for (size_t cj = ci + 1; cj < n.children.size(); ++cj) {
            if (n.children[cj] == prev) continue;
            if (stores_[n.children[cj]].schema().Contains(v)) {
              elsewhere = true;
            }
          }
          if (!elsewhere) now.Add(v);
        }
        factors.push_back(JoinAndMarginalize(combined, sib, now, lifts_));
        remaining = remaining.Minus(now);
      }

      // Marginalize leftover node vars inside the factor that owns them.
      for (VarId v : remaining) {
        for (auto& f : factors) {
          if (f.schema().Contains(v)) {
            f = Marginalize(f, Schema{v}, lifts_);
            break;
          }
        }
      }

      if (n.materialized) {
        AbsorbProductDelta(path[i], factors);
      }
      prev = path[i];
    }
  }

  /// True when updates to `relation` also fire indicator-leaf propagations.
  /// Indicator maintenance is stateful (per-key support counts transition
  /// between zero and non-zero), hence not linear in the delta: such updates
  /// must be applied sequentially, never shard-parallel.
  bool HasIndicatorLeaves(int relation) const {
    return !tree_->IndicatorLeavesOfRelation(relation).empty();
  }

  /// The join key on which the first sibling join of `relation`'s
  /// leaf-to-root path matches delta tuples — the natural partitioning key
  /// for shard-parallel batch propagation (src/exec/parallel_executor.h).
  /// Read straight off the compiled plan.
  Schema PropagationJoinKey(int relation) const {
    return plans_.ForRelation(relation).partition_key();
  }

  /// Builds every sibling-store secondary index that propagation from
  /// `relation`'s leaf probes. Index construction is lazy and not
  /// thread-safe, so concurrent PropagateDelta callers must prewarm first;
  /// after this call the parallel shards only perform read-only probes.
  /// The probe list is part of the compiled plan — the same steps execution
  /// runs — so it is exact by construction: empty join keys scan (no
  /// index), full-key joins probe the primary index, and only proper-subset
  /// keys appear as secondary probes.
  void PrewarmPropagationIndexes(int relation) const {
    const plan::PropagationPlan& p = plans_.ForRelation(relation);
    for (const auto& probe : p.secondary_probes()) {
      stores_[probe.node].IndexOn(probe.key);
    }
  }

  /// Adds a store-schema delta into the store of view `node` — also the
  /// merge entry point of the parallel executor: staged shard deltas are
  /// absorbed in shard order, which keeps the final store state
  /// deterministic and equal to sequential application. Every store
  /// mutation after Initialize funnels through these two overloads, which
  /// is what makes the store-delta observer below a complete feed for the
  /// serving layer's differential staging (src/serve/).
  void AbsorbStoreDelta(int node, Relation<Ring>&& delta) {
    if (store_delta_observer_) store_delta_observer_(node, delta);
    AbsorbInto(stores_[node], std::move(delta));
  }
  void AbsorbStoreDelta(int node, const Relation<Ring>& delta) {
    if (store_delta_observer_) store_delta_observer_(node, delta);
    AbsorbInto(stores_[node], delta);
  }

  /// Observer of every store delta the engine absorbs, invoked (on the
  /// absorbing thread, i.e. the thread applying deltas) with the view node
  /// and the delta *before* it merges into the store. One observer at a
  /// time; pass nullptr to detach. Initialize() fills stores directly and
  /// does not fire it — serving-layer consumers register afterwards (or
  /// re-freeze, see serve::SnapshotServer::Rebase).
  using StoreDeltaObserver = std::function<void(int, const Relation<Ring>&)>;
  void SetStoreDeltaObserver(StoreDeltaObserver observer) {
    store_delta_observer_ = std::move(observer);
  }

  /// Propagates a delta from (just above) leaf `from` toward the root by
  /// executing the compiled plan, handing `store_delta(node,
  /// std::move(delta))` the store delta of every materialized node on the
  /// path instead of writing the stores directly. The sink takes ownership
  /// (no copy is staged) and must return a stable reference to the relation
  /// it stored; propagation continues reading from that reference. `cur`
  /// must be in the leaf's out-schema layout.
  ///
  /// The method only *reads* engine state (sibling stores are probed,
  /// never written), so several shards of one batch may run it
  /// concurrently after PrewarmPropagationIndexes; propagation is linear
  /// in the delta, so the per-shard results merge by ⊎ into exactly the
  /// sequential result. Each concurrent caller must pass its own
  /// `scratch` (or use the scratch-allocating overload).
  ///
  /// With `stage_leaf` set, the leaf's own store delta is also handed to
  /// the sink (first, before any plan step) instead of the caller absorbing
  /// it into the leaf store upfront. A caller that stages every sink result
  /// and merges only after propagation succeeds then gets all-or-nothing
  /// semantics with respect to engine state — nothing is written if any
  /// step throws. Only pass it for leaves with a materialized store.
  template <typename StoreDeltaSink>
  void PropagateDelta(int from, Relation<Ring> cur,
                      StoreDeltaSink&& store_delta,
                      PropagationScratch* scratch,
                      bool stage_leaf = false) const {
    const plan::PropagationPlan& p = plans_.ForLeaf(from);
    assert(p.executable() &&
           "sibling view not materialized for this updatable set");
    assert(cur.schema() == p.leaf_schema());
    Relation<Ring> owned = std::move(cur);
    const Relation<Ring>* left = &owned;
    if (stage_leaf) left = &store_delta(from, std::move(owned));
    int next_buf = 0;
#if FIVM_METRICS_ENABLED
    // Per-step profile: timer + tuple counts + allocation delta, recorded
    // into the engine-owned step atomics that ExplainAnalyze reads. One
    // Enabled() load decides the whole propagation; a disabled run pays a
    // single well-predicted null check per step.
    engine_obs::LeafObs* lobs =
        obs::Enabled() && static_cast<size_t>(from) < obs_by_node_.size()
            ? obs_by_node_[static_cast<size_t>(from)].get()
            : nullptr;
    size_t step_i = 0;
#endif
    for (const plan::PropagationStep& s : p.steps()) {
      if (left->empty()) return;  // nothing changes upstream
#if FIVM_METRICS_ENABLED
      uint64_t t0 = 0;
      int64_t a0 = 0;
      size_t in_n = 0;
      if (lobs != nullptr) {
        t0 = obs::TickClock::Now();
        a0 = util::MemoryTracker::AllocationCount();
        in_n = left->size();
      }
#endif
      switch (s.kind) {
        case plan::PropagationStep::Kind::kJoin: {
          Relation<Ring>& out = scratch->buf[next_buf];
          next_buf = 1 - next_buf;
          out.Reset(s.join.out_schema);
          JoinAndMarginalizeInto(out, *left, stores_[s.sibling], s.join,
                                 lifts_);
          left = &out;
          break;
        }
        case plan::PropagationStep::Kind::kMarginalize: {
          Relation<Ring>& out = scratch->buf[next_buf];
          next_buf = 1 - next_buf;
          out.Reset(s.marg.out_schema);
          MarginalizeInto(out, *left, s.marg, lifts_);
          left = &out;
          break;
        }
        case plan::PropagationStep::Kind::kStoreDelta: {
          // The sink takes ownership, so the current buffer is surrendered
          // (its slot refills from scratch on the next step). When `left`
          // is a relation a previous sink call kept — two materialized
          // nodes with nothing in between — re-materialize it first.
          Relation<Ring>* surrender;
          if (left == &owned) {
            surrender = &owned;
          } else if (left == &scratch->buf[0] || left == &scratch->buf[1]) {
            surrender = const_cast<Relation<Ring>*>(left);
          } else {
            Relation<Ring>& out = scratch->buf[next_buf];
            next_buf = 1 - next_buf;
            out = *left;
            surrender = &out;
          }
          left = &store_delta(s.node, std::move(*surrender));
          break;
        }
      }
#if FIVM_METRICS_ENABLED
      if (lobs != nullptr) {
        engine_obs::StepObs& so = lobs->step[step_i];
        so.calls.fetch_add(1, std::memory_order_relaxed);
        so.in_tuples.fetch_add(in_n, std::memory_order_relaxed);
        so.out_tuples.fetch_add(left->size(), std::memory_order_relaxed);
        so.time_ns.fetch_add(
            obs::TickClock::ToNanos(obs::TickClock::Now() - t0),
            std::memory_order_relaxed);
        so.allocs.fetch_add(
            static_cast<uint64_t>(util::MemoryTracker::AllocationCount() -
                                  a0),
            std::memory_order_relaxed);
      }
      ++step_i;
#endif
    }
  }

  template <typename StoreDeltaSink>
  void PropagateDelta(int from, Relation<Ring> cur,
                      StoreDeltaSink&& store_delta) const {
    PropagationScratch scratch;
    PropagateDelta(from, std::move(cur), store_delta, &scratch);
  }

  /// Memory footprint of all materialized stores and indicator counts.
  size_t TotalBytes() const {
    size_t bytes = 0;
    for (size_t i = 0; i < stores_.size(); ++i) {
      if (tree_->node(static_cast<int>(i)).materialized) {
        bytes += stores_[i].ApproxBytes();
      }
      bytes += counts_[i].ApproxBytes();
    }
    return bytes;
  }

  int StoredViewCount() const { return tree_->MaterializedCount(); }

  /// Human-readable snapshot of every materialized store: name, key count,
  /// approximate bytes. Useful for inspecting maintenance state.
  std::string StatsString() const {
    std::string out;
    for (size_t i = 0; i < stores_.size(); ++i) {
      const ViewTree::Node& n = tree_->node(static_cast<int>(i));
      if (!n.materialized) continue;
      out += n.name + n.store_schema.ToString() + ": " +
             std::to_string(stores_[i].size()) + " keys, " +
             std::to_string(stores_[i].ApproxBytes()) + " bytes\n";
    }
    return out;
  }

  /// EXPLAIN ANALYZE: every compiled propagation route, annotated per step
  /// with the observed execution profile — calls, input/output tuples,
  /// cumulative wall time and heap allocations (allocations require the
  /// memhook-linked binaries; elsewhere they read 0). Steps a propagation
  /// never reached show calls=0. With FIVM_METRICS=OFF this degrades to the
  /// plain static plan dump.
  std::string ExplainAnalyze() const {
#if FIVM_METRICS_ENABLED
    std::string out;
    for (const plan::PropagationPlan& p : plans_.plans()) {
      const engine_obs::LeafObs* lobs =
          static_cast<size_t>(p.leaf()) < obs_by_node_.size()
              ? obs_by_node_[static_cast<size_t>(p.leaf())].get()
              : nullptr;
      if (lobs == nullptr) {
        out += p.DebugString(*tree_);
        continue;
      }
      out += p.DebugString(*tree_, [lobs](size_t i) {
        const engine_obs::StepObs& so = lobs->step[i];
        char buf[160];
        std::snprintf(
            buf, sizeof buf,
            "  [calls=%llu in=%llu out=%llu time=%.3fms allocs=%llu]",
            static_cast<unsigned long long>(
                so.calls.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                so.in_tuples.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                so.out_tuples.load(std::memory_order_relaxed)),
            static_cast<double>(so.time_ns.load(std::memory_order_relaxed)) /
                1e6,
            static_cast<unsigned long long>(
                so.allocs.load(std::memory_order_relaxed)));
        return std::string(buf);
      });
    }
    return out;
#else
    return plans_.DebugString();
#endif
  }

  /// Non-incremental evaluation (F-RE): computes the root view over `db`
  /// using the factorized view-tree plan, materializing nothing. The
  /// throwaway engine skips propagation-plan compilation — re-evaluation
  /// never propagates a delta.
  static Relation<Ring> Evaluate(const ViewTree& tree,
                                 const LiftingMap<Ring>& lifts,
                                 const Database<Ring>& db) {
    IvmEngine tmp(&tree, lifts, /*compile_plans=*/false);
    return tmp.EvalOut(tree.root(), db);
  }

 private:
  IvmEngine(const ViewTree* tree, LiftingMap<Ring> lifts, bool compile_plans)
      : tree_(tree), lifts_(std::move(lifts)) {
    stores_.reserve(tree_->nodes().size());
    counts_.resize(tree_->nodes().size());
    for (size_t i = 0; i < tree_->nodes().size(); ++i) {
      const auto& n = tree_->node(static_cast<int>(i));
      stores_.emplace_back(n.store_schema);
      if (n.indicator_for >= 0) {
        counts_[i] = Relation<I64Ring>(n.out_schema);
      }
    }
    if (compile_plans) {
      plans_ = plan::PlanSet::Compile(*tree_, TrivialityOf(lifts_));
#if FIVM_METRICS_ENABLED
      obs_by_node_.resize(tree_->nodes().size());
      for (const plan::PropagationPlan& p : plans_.plans()) {
        obs_by_node_[static_cast<size_t>(p.leaf())] =
            std::make_unique<engine_obs::LeafObs>(p.steps().size());
      }
      auto& reg = obs::MetricRegistry::Default();
      applied_deltas_ = reg.GetCounter("engine.applied_deltas");
      applied_tuples_ = reg.GetCounter("engine.applied_tuples");
#endif
    }
  }
  const Schema& query_relation_schema(int relation) const {
    return tree_->query().relation(relation).schema;
  }

  static Relation<Ring> ReorderIfNeeded(Relation<Ring> rel,
                                        const Schema& target) {
    return Reordered(std::move(rel), target);
  }

  /// Propagates a delta from (just above) `from` to the root, joining with
  /// sibling stores, marginalizing per node, and refreshing materialized
  /// stores. `cur` is the out-value delta of node `from`. Runs on the
  /// engine-owned scratch, so consecutive sequential triggers reuse the
  /// intermediate buffers' capacity — including the store-delta buffer:
  /// the sink *swaps* the surrendered buffer with the engine-owned
  /// `seq_held_`, handing the previous trigger's storage back to the
  /// scratch slot instead of freeing it (Reset clears the stale contents
  /// before the slot is written again).
  void PropagateUp(int from, Relation<Ring> cur) {
    PropagateDelta(from, std::move(cur),
                   [this](int idx, Relation<Ring>&& d)
                       -> const Relation<Ring>& {
                     std::swap(seq_held_, d);
                     AbsorbStoreDelta(idx, seq_held_);
                     return seq_held_;
                   },
                   &seq_scratch_);
  }

  /// Turns a base-relation delta into an indicator delta (±1 for keys whose
  /// support transitions between zero and non-zero), maintaining the
  /// support counts (Example B.2). Must run before the base leaf absorbs
  /// the delta.
  Relation<Ring> ComputeIndicatorDelta(int ind_leaf,
                                       const Relation<Ring>& delta) {
    const ViewTree::Node& ln = tree_->node(ind_leaf);
    int relation = ln.indicator_for;
    int rleaf = tree_->LeafOfRelation(relation);
    assert(tree_->node(rleaf).materialized &&
           "indicated relation must be stored");
    const Relation<Ring>& rstore = stores_[rleaf];

    Relation<I64Ring>& counts = counts_[ind_leaf];

    auto store_pos = delta.schema().PositionsOf(rstore.schema());
    auto pk_pos = delta.schema().PositionsOf(ln.out_schema);

    Relation<Ring> dind(ln.out_schema);
    delta.ForEach([&](const Tuple& t, const Element& p) {
      const Element* old = rstore.Find(TupleView(t, store_pos));
      bool old_nz = old != nullptr;
      Element updated = old ? Ring::Add(*old, p) : p;
      bool new_nz = !Ring::IsZero(updated);
      if (old_nz == new_nz) return;
      Tuple pk = t.Project(pk_pos);
      const int64_t* before_ptr = counts.Find(pk);
      int64_t before = before_ptr ? *before_ptr : 0;
      if (new_nz) {
        counts.Add(pk, 1);
        if (before == 0) dind.Add(pk, Ring::One());
      } else {
        counts.Add(pk, -1);
        if (before == 1) dind.Add(pk, Ring::Neg(Ring::One()));
      }
    });
    return dind;
  }

  /// Materializes factors[0] ⊗ ... ⊗ factors[k-1], consuming the factors:
  /// the first factor moves into the accumulator instead of being copied.
  static Relation<Ring> ExpandProduct(std::vector<Relation<Ring>> factors) {
    assert(!factors.empty());
    Relation<Ring> acc = std::move(factors[0]);
    for (size_t i = 1; i < factors.size(); ++i) {
      acc = Join(acc, factors[i]);
    }
    return acc;
  }

  /// Absorbs the expanded product into `node`'s store without consuming
  /// (or deep copying) the factors: with two or more factors the first
  /// join already materializes a fresh accumulator, and a single factor
  /// absorbs directly. Routed through AbsorbStoreDelta so the factorized
  /// path feeds the store-delta observer like every other store write.
  void AbsorbProductDelta(int node,
                          const std::vector<Relation<Ring>>& factors) {
    assert(!factors.empty());
    if (factors.size() == 1) {
      AbsorbStoreDelta(node, factors[0]);
      return;
    }
    Relation<Ring> acc = Join(factors[0], factors[1]);
    for (size_t i = 2; i < factors.size(); ++i) {
      acc = Join(acc, factors[i]);
    }
    AbsorbStoreDelta(node, std::move(acc));
  }

  // Computes the node's *store* value (pre-out-marginalization) and fills
  // the store if materialized; returns the *out* value for the parent.
  Relation<Ring> EvalOut(int idx, const Database<Ring>& db) {
    const ViewTree::Node& n = tree_->node(idx);
    if (n.relation >= 0) {
      Relation<Ring> copy(n.out_schema);
      AbsorbInto(copy, db[n.relation]);
      if (n.materialized) {
        stores_[idx].Clear();
        stores_[idx].UnionWith(copy);
      }
      return copy;
    }
    if (n.indicator_for >= 0) {
      // ∃_pk R over the database instance, with fresh support counts.
      counts_[idx] = Relation<I64Ring>(n.out_schema);
      const Relation<Ring>& r = db[n.indicator_for];
      auto pos = r.schema().PositionsOf(n.out_schema);
      r.ForEach([&](const Tuple& t, const Element&) {
        counts_[idx].Add(t.Project(pos), 1);
      });
      Relation<Ring> ones(n.out_schema);
      counts_[idx].ForEach([&](const Tuple& pk, const int64_t&) {
        ones.Add(pk, Ring::One());
      });
      if (n.materialized) {
        stores_[idx].Clear();
        stores_[idx].UnionWith(ones);
      }
      return ones;
    }

    Relation<Ring> acc;
    bool have = false;
    Schema store_marg = n.marg_vars.Minus(n.retained_vars);
    for (size_t ci = 0; ci < n.children.size(); ++ci) {
      Relation<Ring> child = EvalOut(n.children[ci], db);
      if (!have) {
        acc = std::move(child);
        have = true;
      } else if (ci + 1 == n.children.size() && !store_marg.empty()) {
        // Fuse the final join with the store-level marginalization.
        acc = JoinAndMarginalize(acc, child, store_marg, lifts_);
        store_marg = Schema{};
      } else {
        acc = Join(acc, child);
      }
    }
    if (!have) acc = Relation<Ring>(n.out_schema);
    if (!store_marg.empty()) acc = Marginalize(acc, store_marg, lifts_);
    if (n.materialized) {
      stores_[idx].Clear();
      AbsorbInto(stores_[idx], acc);
    }
    Schema out_marg = n.marg_vars.Intersect(n.retained_vars);
    if (!out_marg.empty()) acc = Marginalize(acc, out_marg, lifts_);
    return acc;
  }

  const ViewTree* tree_;
  LiftingMap<Ring> lifts_;
  plan::PlanSet plans_;
  std::vector<Relation<Ring>> stores_;
  std::vector<Relation<I64Ring>> counts_;  // indicator support counters
  /// Scratch for the engine's own (sequential) triggers. Concurrent
  /// PropagateDelta callers bring their own. `seq_held_` keeps the last
  /// store delta alive (propagation reads it after the absorb) and carries
  /// its storage across triggers via the PropagateUp sink swap.
  PropagationScratch seq_scratch_;
  Relation<Ring> seq_held_;
  /// Serving-layer tee over absorbed store deltas (empty = one untaken
  /// branch per absorb). Invoked on the absorbing thread only.
  StoreDeltaObserver store_delta_observer_;
#if FIVM_METRICS_ENABLED
  /// Per-plan-step execution profiles, indexed by leaf node id (null for
  /// non-leaf nodes and for plan-less engines). unique_ptr keeps the
  /// atomic-holding LeafObs at a stable address — PropagateDelta is const
  /// but records through the (shallow-const) pointer.
  std::vector<std::unique_ptr<engine_obs::LeafObs>> obs_by_node_;
  obs::Counter* applied_deltas_ = nullptr;  // engine.applied_deltas
  obs::Counter* applied_tuples_ = nullptr;  // engine.applied_tuples
#endif
};

}  // namespace fivm

#endif  // FIVM_CORE_IVM_ENGINE_H_
