#ifndef FIVM_CORE_FACTORIZED_RESULT_H_
#define FIVM_CORE_FACTORIZED_RESULT_H_

#include <cassert>
#include <functional>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/core/view_tree.h"
#include "src/data/schema.h"
#include "src/data/tuple.h"

namespace fivm {

/// Enumerates the tuples of a query result from its *factorized
/// representation* (Section 6.3): the per-view stores of an engine running
/// in retain_vars mode, which together form a factorization of the result
/// over the variable order. No listing representation is ever materialized;
/// each result tuple is assembled by walking the variable-order DFS and
/// probing one store per variable (constant delay per tuple, up to the
/// secondary-index probes).
///
/// Enumeration yields *distinct* tuples over all retained variables;
/// project onto the query's free variables for the conjunctive-query result
/// (Example 6.6: bound-variable unions are simply discarded). Pruning
/// relies on zero-payload suppression, so multiplicities are assumed
/// non-negative (insert-dominated workloads).
template <typename Ring>
class FactorizedEnumerator {
 public:
  explicit FactorizedEnumerator(const IvmEngine<Ring>* engine)
      : engine_(engine) {
    const ViewTree& tree = engine->tree();
    assert(tree.options().retain_vars &&
           "factorized enumeration requires retain_vars mode");
    // Pre-order over variable nodes that retain their variable; ancestors
    // precede descendants, so every store's key prefix is assigned when the
    // node is visited.
    CollectPreOrder(tree.root());
    for (int n : order_) {
      schema_.Add(tree.node(n).retained_vars[0]);
    }
  }

  /// Schema of emitted tuples: retained variables in DFS pre-order.
  const Schema& schema() const { return schema_; }

  /// Calls `fn` once per distinct result tuple (over schema()).
  void Enumerate(const std::function<void(const Tuple&)>& fn) const {
    if (order_.empty()) return;
    std::vector<Value> assignment(schema_.size());
    Recurse(0, assignment, fn);
  }

  /// Number of distinct result tuples.
  size_t Count() const {
    size_t n = 0;
    Enumerate([&](const Tuple&) { ++n; });
    return n;
  }

 private:
  void CollectPreOrder(int idx) {
    const ViewTree::Node& n = engine_->tree().node(idx);
    if (n.relation < 0 && n.indicator_for < 0) {
      if (!n.retained_vars.empty()) order_.push_back(idx);
      for (int c : n.children) CollectPreOrder(c);
    }
  }

  void Recurse(size_t level, std::vector<Value>& assignment,
               const std::function<void(const Tuple&)>& fn) const {
    if (level == order_.size()) {
      Tuple t;
      for (const Value& v : assignment) t.Append(v);
      fn(t);
      return;
    }
    const ViewTree::Node& n = engine_->tree().node(order_[level]);
    const Relation<Ring>& store = engine_->store(order_[level]);
    VarId var = n.retained_vars[0];
    int var_pos_in_store = store.schema().PositionOf(var);
    assert(var_pos_in_store >= 0);

    // Probe the store on its key prefix (everything but the retained var),
    // which is fully assigned by ancestor levels.
    Schema prefix = store.schema().Minus(Schema{var});
    Tuple key;
    for (VarId v : prefix) {
      key.Append(assignment[static_cast<size_t>(schema_.PositionOf(v))]);
    }
    size_t out_pos = static_cast<size_t>(schema_.PositionOf(var));

    if (prefix.empty()) {
      store.ForEach([&](const Tuple& k, const typename Ring::Element&) {
        assignment[out_pos] = k[static_cast<size_t>(var_pos_in_store)];
        Recurse(level + 1, assignment, fn);
      });
      return;
    }
    const auto& index = store.IndexOn(prefix);
    const auto* slots = index.Probe(key);
    if (slots == nullptr) return;
    for (uint32_t slot : *slots) {
      if (Ring::IsZero(store.PayloadAt(slot))) continue;
      assignment[out_pos] =
          store.KeyAt(slot)[static_cast<size_t>(var_pos_in_store)];
      Recurse(level + 1, assignment, fn);
    }
  }

  const IvmEngine<Ring>* engine_;
  std::vector<int> order_;
  Schema schema_;
};

}  // namespace fivm

#endif  // FIVM_CORE_FACTORIZED_RESULT_H_
