#ifndef FIVM_CORE_GYO_H_
#define FIVM_CORE_GYO_H_

#include <vector>

#include "src/data/schema.h"

namespace fivm {

/// GYO (Graham / Yu–Ozsoyoglu) hypergraph reduction. Repeatedly removes
/// "ear" structure: variables occurring in a single hyperedge, and edges
/// contained in other edges. The query hypergraph is (alpha-)acyclic iff the
/// reduction empties it; otherwise the surviving edges form the cyclic core.
///
/// Returns the indices (into `edges`) of the hyperedges that survive —
/// used by the indicator-projection algorithm (Figure 10) to decide which
/// candidate projections participate in a cycle.
std::vector<int> GyoCyclicCore(const std::vector<Schema>& edges);

/// Convenience: true iff the hypergraph is acyclic.
bool IsAcyclic(const std::vector<Schema>& edges);

}  // namespace fivm

#endif  // FIVM_CORE_GYO_H_
