#include "src/core/gyo.h"

namespace fivm {

std::vector<int> GyoCyclicCore(const std::vector<Schema>& edges) {
  std::vector<Schema> work = edges;
  std::vector<bool> removed(edges.size(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: drop variables that occur in exactly one remaining edge.
    for (size_t i = 0; i < work.size(); ++i) {
      if (removed[i]) continue;
      Schema kept;
      for (VarId v : work[i]) {
        bool elsewhere = false;
        for (size_t j = 0; j < work.size(); ++j) {
          if (j == i || removed[j]) continue;
          if (work[j].Contains(v)) elsewhere = true;
        }
        if (elsewhere) kept.Add(v);
      }
      if (kept.size() != work[i].size()) {
        work[i] = kept;
        changed = true;
      }
    }
    // Rule 2: drop empty edges and edges contained in another edge.
    for (size_t i = 0; i < work.size(); ++i) {
      if (removed[i]) continue;
      if (work[i].empty()) {
        removed[i] = true;
        changed = true;
        continue;
      }
      for (size_t j = 0; j < work.size(); ++j) {
        if (i == j || removed[j]) continue;
        if (work[j].ContainsAll(work[i])) {
          removed[i] = true;
          changed = true;
          break;
        }
      }
    }
  }

  std::vector<int> core;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (!removed[i]) core.push_back(static_cast<int>(i));
  }
  return core;
}

bool IsAcyclic(const std::vector<Schema>& edges) {
  return GyoCyclicCore(edges).empty();
}

}  // namespace fivm
