#include "src/core/query.h"

namespace fivm {

int Query::AddRelation(std::string name, Schema schema) {
  relations_.push_back(RelationDef{std::move(name), std::move(schema)});
  return static_cast<int>(relations_.size()) - 1;
}

int Query::RelationIndexByName(std::string_view name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Query::AllVars() const {
  Schema all;
  for (const auto& rel : relations_) {
    for (VarId v : rel.schema) all.Add(v);
  }
  return all;
}

std::vector<int> Query::RelationsWithVar(VarId v) const {
  std::vector<int> out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].schema.Contains(v)) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace fivm
