#ifndef FIVM_CORE_VARIABLE_ORDER_H_
#define FIVM_CORE_VARIABLE_ORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/data/schema.h"
#include "src/util/rng.h"
#include "src/util/small_vector.h"

namespace fivm {

/// A variable order ω = (F, dep) for a join query (Definition 3.1): a rooted
/// forest with one node per query variable, plus the dependency sets dep(X).
/// It dictates the order in which join variables are solved; the constraint
/// is that every relation's variables lie along one root-to-leaf path.
///
/// Build a variable order by adding nodes top-down (AddNode), then call
/// Finalize(query) to attach relations to their lowest variables, validate
/// the path constraint, and compute dep sets and subtree variables. The
/// Auto() builder produces a valid order via recursive connected-component
/// decomposition, placing free variables on top.
class VariableOrder {
 public:
  struct Node {
    VarId var = kInvalidVar;
    int parent = -1;
    util::SmallVector<int, 4> children;
    /// Query relation indices anchored at this node (their lowest variable).
    util::SmallVector<int, 2> relations;
    /// dep(X): ancestors on which the subtree rooted here depends.
    Schema dep;
    /// All variables in the subtree rooted here (including var).
    Schema subtree_vars;
    /// Indices of all query relations whose schema intersects the subtree.
    util::SmallVector<int, 4> subtree_relations;
  };

  /// Adds a node for `var` under `parent` (-1 for a root). Returns its index.
  int AddNode(VarId var, int parent);

  /// Attaches relations, validates, and computes dep/subtree metadata.
  /// Returns false and sets *error on an invalid order (variable missing, or
  /// a relation's variables not on one path).
  bool Finalize(const Query& q, std::string* error);

  /// Builds a valid variable order automatically: free variables first, then
  /// greedy highest-degree elimination with connected-component splitting.
  static VariableOrder Auto(const Query& q);

  /// Like Auto but picks uniformly among valid candidates at every step
  /// (still free-variables-first). Every returned order is valid; used by
  /// property tests to check that results are independent of the chosen
  /// order, and available to users for plan-space exploration.
  static VariableOrder AutoRandom(const Query& q, uint64_t seed);

  /// Convenience: a single chain in the given order (must mention all vars).
  static VariableOrder Chain(const std::vector<VarId>& vars);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int i) const { return nodes_[i]; }
  const std::vector<int>& roots() const { return roots_; }
  int node_of_var(VarId v) const;
  bool finalized() const { return finalized_; }

  /// Nodes in a top-down (parents before children) order.
  std::vector<int> TopDown() const;

  std::string ToString(const Catalog& catalog) const;

 private:
  static VariableOrder AutoImpl(const Query& q, util::Rng* rng);
  void ComputeSubtrees(const Query& q);

  std::vector<Node> nodes_;
  std::vector<int> roots_;
  bool finalized_ = false;
};

}  // namespace fivm

#endif  // FIVM_CORE_VARIABLE_ORDER_H_
