#ifndef FIVM_CORE_VIEW_TREE_H_
#define FIVM_CORE_VIEW_TREE_H_

#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/core/variable_order.h"
#include "src/data/schema.h"
#include "src/util/flat_hash_map.h"
#include "src/util/small_vector.h"

namespace fivm {

/// The ring-independent structure of a view tree τ(ω, F) (Figure 3): which
/// views exist, their key schemas, which variables each view marginalizes,
/// and which views a materialization plan stores (Figure 5). The ring, the
/// payload stores, and the delta propagation live in IvmEngine<Ring>.
class ViewTree {
 public:
  struct Options {
    /// Compose maximal single-child chains of views into one view that
    /// marginalizes several variables at a time (paper Section 3, "long
    /// chains"). Also merges stacked identical views.
    bool compose_chains = true;
    /// Factorized-result mode (Section 6.3): every variable is marginalized
    /// on the way up, but each view's store additionally retains its own
    /// variable, so the stores together form the factorized representation
    /// over ω. Implies compose_chains = false.
    bool retain_vars = false;
  };

  struct Node {
    /// >= 0: leaf wrapper for this query relation (vars empty).
    int relation = -1;
    /// Variable-order variables composed into this view, top-down.
    std::vector<VarId> vars;
    /// Bound vars marginalized by this view (with their lifting functions).
    Schema marg_vars;
    /// Schema of the view value passed to the parent.
    Schema out_schema;
    /// Schema of the materialized store: out_schema plus retained vars.
    Schema store_schema;
    /// store_schema \ out_schema — marginalized by the parent when probing.
    Schema retained_vars;
    int parent = -1;
    util::SmallVector<int, 4> children;
    /// Query relations in this node's subtree.
    util::SmallVector<int, 4> subtree_relations;
    /// >= 0: this leaf is the indicator projection ∃_{out_schema} R of query
    /// relation `indicator_for` (Appendix B). Its payloads are always the
    /// multiplicative identity; the engine maintains per-key support counts.
    int indicator_for = -1;
    bool materialized = false;
    std::string name;
  };

  ViewTree(const Query* query, const VariableOrder* vorder, Options options);
  ViewTree(const Query* query, const VariableOrder* vorder)
      : ViewTree(query, vorder, Options{}) {}

  const Query& query() const { return *query_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int i) const { return nodes_[i]; }
  int root() const { return root_; }
  const Options& options() const { return options_; }

  /// Index of the leaf node wrapping query relation `r`.
  int LeafOfRelation(int r) const { return leaf_of_relation_[r]; }

  /// Leaf-to-root node path for updates to relation `r` (leaf first).
  std::vector<int> PathToRoot(int r) const;

  /// Figure 10: extends the tree with indicator projections ∃_pk R wherever
  /// a relation outside a view's subtree forms a cycle with the view's
  /// children (detected by GYO reduction). Call before
  /// ComputeMaterialization. Returns the number of indicators added.
  int AddIndicatorProjections();

  /// Indicator leaves maintained for relation `r` (empty unless
  /// AddIndicatorProjections was called and found cycles).
  std::vector<int> IndicatorLeavesOfRelation(int r) const;

  /// Figure 5: marks the views to materialize for the given updatable
  /// relation indices. The root is always materialized.
  void ComputeMaterialization(const std::vector<int>& updatable);

  /// Marks every view materialized (updates to all relations).
  void MaterializeAll();

  /// Number of materialized views.
  int MaterializedCount() const;

  /// Assigns aggregate slots to query variables in view-tree DFS order, so
  /// every subtree covers a contiguous slot range (used by the regression
  /// ring payloads). Returns slot by VarId.
  std::vector<uint32_t> AssignAggregateSlots() const;

  std::string ToString() const;

  /// Renders every view's defining expression with variable names, e.g.
  ///   V@C_ST[A] = ⊕C ( V@D_T[C] ⊗ V@E_S[A,C] )
  /// (the Figure 2b view definitions).
  std::string ExplainViews() const;

  /// Renders the delta rules fired by an update to `relation` — the
  /// leaf-to-root propagation of Example 4.1:
  ///   δV@D_T[C]  = ⊕D δT[C,D]
  ///   δV@C_ST[A] = ⊕C ( δV@D_T[C] ⊗ V@E_S[A,C] )
  ///   ...
  std::string ExplainDelta(int relation) const;

 private:
  std::string SchemaNames(const Schema& s) const;
  int BuildFromVarOrder(int vo_node, int parent);
  void ComposeChains();
  void ComputeNames();

  const Query* query_;
  const VariableOrder* vorder_;
  Options options_;
  std::vector<Node> nodes_;
  std::vector<int> leaf_of_relation_;
  int root_ = -1;
};

}  // namespace fivm

#endif  // FIVM_CORE_VIEW_TREE_H_
