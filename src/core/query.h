#ifndef FIVM_CORE_QUERY_H_
#define FIVM_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/data/catalog.h"
#include "src/data/relation.h"
#include "src/data/schema.h"

namespace fivm {

/// A natural-join query with group-by (free) variables and a SUM aggregate
/// over a ring (Section 2):
///
///   Q[X_1..X_f] = ⊕_{X_{f+1}} ... ⊕_{X_m}  R_1[S_1] ⊗ ... ⊗ R_n[S_n]
///
/// The ring, the payloads, and the lifting functions are supplied separately
/// (LiftingMap / Database<Ring>); the Query only fixes the key-space shape,
/// which is shared by all tasks.
class Query {
 public:
  struct RelationDef {
    std::string name;
    Schema schema;
  };

  explicit Query(Catalog* catalog) : catalog_(catalog) {}

  /// Registers a relation; returns its index (position in the database).
  int AddRelation(std::string name, Schema schema);

  void SetFreeVars(Schema free_vars) { free_vars_ = std::move(free_vars); }

  const Catalog& catalog() const { return *catalog_; }
  Catalog* mutable_catalog() { return catalog_; }
  const std::vector<RelationDef>& relations() const { return relations_; }
  const RelationDef& relation(int i) const { return relations_[i]; }
  int relation_count() const { return static_cast<int>(relations_.size()); }
  const Schema& free_vars() const { return free_vars_; }

  /// Index of the relation named `name`, or -1.
  int RelationIndexByName(std::string_view name) const;

  /// All variables mentioned by any relation, in first-occurrence order.
  Schema AllVars() const;

  /// Bound variables: AllVars minus free.
  Schema BoundVars() const { return AllVars().Minus(free_vars_); }

  /// Indices of relations whose schema contains `v`.
  std::vector<int> RelationsWithVar(VarId v) const;

 private:
  Catalog* catalog_;
  std::vector<RelationDef> relations_;
  Schema free_vars_;
};

/// The database instance for a query: one keyed relation per Query relation,
/// by index, all over the same ring.
template <typename Ring>
using Database = std::vector<Relation<Ring>>;

/// Creates an empty database matching the query's relation schemas.
template <typename Ring>
Database<Ring> MakeDatabase(const Query& q) {
  Database<Ring> db;
  db.reserve(q.relations().size());
  for (const auto& rel : q.relations()) db.emplace_back(rel.schema);
  return db;
}

}  // namespace fivm

#endif  // FIVM_CORE_QUERY_H_
