// Write-ahead delta log: the durable record of every update admitted into a
// flush window, written *before* the window's deltas touch any store.
//
// Layout on disk: a directory of append-only segments named
// wal-<first lsn>.seg. A segment is a run of frames; one frame carries one
// relation's updates from one flush window (strict durability degenerates
// to one-update frames):
//
//   header   magic 'FWAL' | version | lsn | first_update_index |
//            relation | tuple_count | payload_bytes          (36 bytes)
//   payload  tuple_count × (SerializeTuple key, RingCodec payload)
//   trailer  CRC32C over header + payload                     (4 bytes)
//
// LSNs are assigned at seal time and increase by exactly 1 per frame;
// first_update_index is the count of updates logged before the frame, so any
// frame pins its position in the admitted-update stream — recovery and the
// crash-chaos harness both use it to resume/regenerate the workload.
//
// Window atomicity: one flush window seals as a GROUP of frames (one per
// touched relation), and only the group's last frame carries the
// window-commit marker (the top bit of the header's relation field). A
// kill mid-seal can persist a prefix of the group; without the marker,
// recovery would land mid-window — a state that matches no prefix of the
// admitted stream. Both recovery and the writer's open-scan therefore
// treat a trailing uncommitted frame group exactly like a torn tail:
// valid CRCs or not, it is discarded.
//
// Group fsync: Seal() writes every pending relation's frame with plain
// write() calls and issues ONE fsync for the window (the "wal.fsync" site
// guards it). Frames are written in two write() calls with the "wal.append"
// failpoint between them: an injected *throw* rolls the segment back to the
// frame start (ftruncate) so a supervised retry re-seals cleanly, while an
// injected *kill* leaves a genuinely torn frame on disk for recovery to
// discard — the crash-chaos harness exercises exactly that.
//
// Rotation ("wal.rotate" site) caps segment size; TruncateBelow(lsn) unlinks
// segments made fully redundant by a checkpoint. Opening for append re-scans
// the tail, discards a torn suffix (ftruncate + unlink of later segments),
// and resumes LSN/update-index numbering from the last valid frame.

#ifndef FIVM_DURABILITY_WAL_H_
#define FIVM_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/data/tuple.h"
#include "src/durability/serialize.h"

namespace fivm::durability {

inline constexpr uint32_t kWalMagic = 0x4C415746u;  // "FWAL"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 36;
inline constexpr size_t kWalTrailerBytes = 4;
/// Top bit of the header's relation field: this frame completes its flush
/// window's frame group.
inline constexpr uint32_t kWalCommitBit = 0x80000000u;

/// One decoded frame (header + raw payload bytes; decode the updates with
/// DecodeFrameUpdates<Ring>).
struct WalFrame {
  uint64_t lsn = 0;
  uint64_t first_update_index = 0;
  int relation = 0;
  uint32_t tuple_count = 0;
  /// Last frame of its window's group; replay state at or before this
  /// frame corresponds to a prefix of the admitted update stream.
  bool window_commit = false;
  std::vector<uint8_t> payload;
};

struct WalStats {
  uint64_t frames_written = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
  uint64_t truncations = 0;  // TruncateBelow calls that unlinked segments
};

/// Appender. Not thread-safe; the ingest service drives it from the service
/// thread (window mode) or under its own lock (strict mode).
class WalWriter {
 public:
  struct Options {
    size_t max_segment_bytes = 64u << 20;
    /// fsync the directory after segment create/unlink (off only in tests
    /// that hammer rotation).
    bool sync_dir = true;
  };

  /// Opens `dir` (created if absent) for appending: scans existing
  /// segments, discards any torn tail, and resumes numbering after the last
  /// valid frame. `min_lsn`/`min_update_index` seed numbering when the WAL
  /// is empty (e.g. freshly truncated past a checkpoint).
  WalWriter(std::string dir, Options options, uint64_t min_lsn = 0,
            uint64_t min_update_index = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Stages one update for `relation` into its pending frame. The bytes are
  /// produced by EncodeUpdate<Ring> below.
  template <typename Ring>
  void Append(int relation, const Tuple& key,
              const typename Ring::Element& payload) {
    PendingFrame& f = Pending(relation);
    SerializeTuple(&f.bytes, key);
    RingCodec<Ring>::Write(&f.bytes, payload);
    ++f.tuples;
  }

  /// Writes every pending frame and (when `sync`) group-fsyncs the window.
  /// Returns the LSN of the last sealed frame (or last_sealed_lsn() when
  /// nothing was pending). Throws on injected faults and real I/O errors;
  /// the segment is rolled back to the last frame boundary first, so a
  /// retry re-seals the same pending set.
  uint64_t Seal(bool sync);

  /// True when at least one update is staged.
  bool HasPending() const;
  /// Drops staged updates without writing them (WAL-failure shed path).
  void DropPending();

  /// Unlinks segments whose every frame has lsn <= `lsn` (i.e. covered by a
  /// checkpoint). The active segment is never unlinked.
  void TruncateBelow(uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t last_sealed_lsn() const { return next_lsn_ - 1; }
  /// Total updates sealed into the log over its lifetime (resumes across
  /// reopen); the next sealed frame's first_update_index.
  uint64_t next_update_index() const { return next_update_index_; }
  const WalStats& stats() const { return stats_; }

 private:
  struct PendingFrame {
    int relation = 0;
    uint32_t tuples = 0;
    std::vector<uint8_t> bytes;
  };

  PendingFrame& Pending(int relation);
  void EnsureSegment();
  void RotateIfNeeded(size_t incoming_frame_bytes);
  void WriteFrame(const PendingFrame& f, bool window_commit);

  std::string dir_;
  Options options_;
  int fd_ = -1;
  std::string segment_path_;
  size_t segment_bytes_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t next_update_index_ = 0;
  bool sync_pending_ = false;  // frames written but not yet fsync'd
  std::vector<PendingFrame> pending_;  // touch order
  WalStats stats_;
};

/// Sequential frame reader across all segments of `dir`, in LSN order.
/// Stops (Next() -> false) at end of log, at the first CRC mismatch, or at
/// a partial frame — the last two mark a torn tail, reported via
/// saw_torn_tail()/torn_bytes(). Read-only: recovery can scan a log that a
/// crashed writer left torn without mutating it.
class WalReader {
 public:
  explicit WalReader(std::string dir);
  ~WalReader();

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  bool Next(WalFrame* frame);

  bool saw_torn_tail() const { return torn_bytes_ > 0; }
  uint64_t torn_bytes() const { return torn_bytes_; }
  uint64_t frames_read() const { return frames_read_; }

 private:
  bool OpenNextSegment();

  std::string dir_;
  std::vector<std::string> segments_;
  size_t segment_idx_ = 0;
  int fd_ = -1;
  std::vector<uint8_t> buf_;
  size_t buf_pos_ = 0;
  uint64_t prev_lsn_ = 0;
  uint64_t torn_bytes_ = 0;
  uint64_t frames_read_ = 0;
};

/// Decodes the updates of a frame: fn(Tuple&&, Element&&) per update.
/// Returns false on malformed payload bytes (possible only if the CRC
/// collided, i.e. effectively never).
template <typename Ring, typename Fn>
bool DecodeFrameUpdates(const WalFrame& frame, Fn&& fn) {
  ByteReader r{frame.payload.data(),
               frame.payload.data() + frame.payload.size()};
  for (uint32_t i = 0; i < frame.tuple_count; ++i) {
    Tuple key;
    typename Ring::Element payload;
    if (!DeserializeTuple(&r, &key)) return false;
    if (!RingCodec<Ring>::Read(&r, &payload)) return false;
    fn(std::move(key), std::move(payload));
  }
  return r.remaining() == 0;
}

/// Lists wal-*.seg paths of `dir` sorted by first LSN. Exposed for the
/// writer's open-scan, TruncateBelow, and tests.
std::vector<std::string> ListWalSegments(const std::string& dir);

}  // namespace fivm::durability

#endif  // FIVM_DURABILITY_WAL_H_
