#include "src/durability/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/util/fail_point.h"

namespace fivm::durability {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void WriteAll(int fd, const uint8_t* p, size_t n, const std::string& what) {
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("ckpt: write " + what);
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "ckpt-%020llu.ckpt",
                static_cast<unsigned long long>(lsn));
  return dir + "/" + name;
}

std::vector<CheckpointMeta> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointMeta> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 10 && name.rfind("ckpt-", 0) == 0 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      CheckpointMeta m;
      m.lsn = std::strtoull(name.c_str() + 5, nullptr, 10);
      m.path = dir + "/" + name;
      out.push_back(std::move(m));
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const CheckpointMeta& a, const CheckpointMeta& b) {
              return a.lsn < b.lsn;
            });
  return out;
}

void InstallCheckpointBytes(const std::string& dir, uint64_t lsn,
                            const std::vector<uint8_t>& bytes) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    ThrowErrno("ckpt: mkdir " + dir);
  }
  const std::string final_path = CheckpointPath(dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) ThrowErrno("ckpt: create " + tmp_path);
  try {
    // The image is written in two halves with the "ckpt.write" site between
    // them: a kill there leaves a partial .tmp (never visible to the
    // loader), an injected throw unwinds to the unlink below.
    const size_t half = bytes.size() / 2;
    WriteAll(fd, bytes.data(), half, tmp_path);
    FIVM_FAIL_POINT("ckpt.write");
    WriteAll(fd, bytes.data() + half, bytes.size() - half, tmp_path);
    if (::fsync(fd) != 0) ThrowErrno("ckpt: fsync " + tmp_path);
    ::close(fd);
    fd = -1;
    // A kill here leaves a complete but uninstalled .tmp; the loader never
    // reads .tmp files and the next GC pass collects it.
    FIVM_FAIL_POINT("ckpt.rename");
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      ThrowErrno("ckpt: rename " + tmp_path);
    }
  } catch (...) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  SyncDir(dir);
}

bool ReadCheckpointBytes(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  std::vector<uint8_t> buf;
  uint8_t chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    buf.insert(buf.end(), chunk, chunk + n);
  }
  ::close(fd);
  if (buf.size() < 28 + 4) return false;
  uint32_t magic, version, stored_crc;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&version, buf.data() + 4, 4);
  std::memcpy(&stored_crc, buf.data() + buf.size() - 4, 4);
  if (magic != kCkptMagic || version != kCkptVersion) return false;
  if (util::Crc32c(buf.data(), buf.size() - 4) != stored_crc) return false;
  *out = std::move(buf);
  return true;
}

void RemoveOldCheckpoints(const std::string& dir, size_t keep) {
  std::vector<CheckpointMeta> all = ListCheckpoints(dir);
  for (size_t i = 0; i + keep < all.size(); ++i) {
    ::unlink(all[i].path.c_str());
  }
  // Stray temp files from crashed installs.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> tmps;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0 &&
        name.rfind("ckpt-", 0) == 0) {
      tmps.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  for (const std::string& t : tmps) ::unlink(t.c_str());
}

}  // namespace fivm::durability
