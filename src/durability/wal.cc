#include "src/durability/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/util/crc32c.h"
#include "src/util/fail_point.h"

namespace fivm::durability {
namespace {

constexpr size_t kMaxFramePayload = 1u << 30;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void PutHeaderU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutHeaderU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string SegmentPath(const std::string& dir, uint64_t first_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_lsn));
  return dir + "/" + name;
}

uint64_t SegmentFirstLsn(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  return std::strtoull(name.c_str() + 4, nullptr, 10);
}

void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void MkDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    ThrowErrno("wal: mkdir " + dir);
  }
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  uint8_t chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), chunk, chunk + n);
  }
  ::close(fd);
  return true;
}

// Parses the frame at buf[pos..]; returns the frame's total byte size on
// success (header + payload + trailer), 0 on a torn/invalid frame. When
// `out` is non-null the header fields and payload are copied into it.
size_t ParseFrame(const std::vector<uint8_t>& buf, size_t pos,
                  uint64_t prev_lsn, WalFrame* out) {
  if (buf.size() - pos < kWalHeaderBytes + kWalTrailerBytes) return 0;
  const uint8_t* h = buf.data() + pos;
  if (GetU32(h) != kWalMagic || GetU32(h + 4) != kWalVersion) return 0;
  uint64_t lsn = GetU64(h + 8);
  uint32_t payload_bytes = GetU32(h + 32);
  if (payload_bytes > kMaxFramePayload) return 0;
  size_t total = kWalHeaderBytes + payload_bytes + kWalTrailerBytes;
  if (buf.size() - pos < total) return 0;
  uint32_t stored_crc = GetU32(h + kWalHeaderBytes + payload_bytes);
  uint32_t crc = util::Crc32c(h, kWalHeaderBytes + payload_bytes);
  if (crc != stored_crc) return 0;
  if (prev_lsn != 0 && lsn != prev_lsn + 1) return 0;
  if (out != nullptr) {
    const uint32_t rel_raw = GetU32(h + 24);
    out->lsn = lsn;
    out->first_update_index = GetU64(h + 16);
    out->relation = static_cast<int32_t>(rel_raw & ~kWalCommitBit);
    out->window_commit = (rel_raw & kWalCommitBit) != 0;
    out->tuple_count = GetU32(h + 28);
    out->payload.assign(h + kWalHeaderBytes,
                        h + kWalHeaderBytes + payload_bytes);
  }
  return total;
}

}  // namespace

std::vector<std::string> ListWalSegments(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 8 && name.rfind("wal-", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".seg") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  // Zero-padded LSNs make lexical order LSN order.
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(std::string dir, Options options, uint64_t min_lsn,
                     uint64_t min_update_index)
    : dir_(std::move(dir)), options_(options) {
  MkDir(dir_);
  next_lsn_ = min_lsn + 1;
  next_update_index_ = min_update_index;

  // Scan for the last *committed* frame. Everything after it — a torn
  // frame, stray bytes, or valid-but-uncommitted frames of a partially
  // sealed window — is discarded before we append, so the resumed log
  // always ends on a window boundary and first_update_index numbering
  // matches what recovery replays.
  std::vector<std::string> segments = ListWalSegments(dir_);
  size_t commit_segment = segments.size();  // none found yet
  size_t commit_pos = 0;
  uint64_t prev_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    std::vector<uint8_t> buf;
    if (!ReadWholeFile(segments[i], &buf)) break;
    size_t pos = 0;
    WalFrame frame;
    bool stopped = false;
    while (pos < buf.size()) {
      size_t n = ParseFrame(buf, pos, prev_lsn, &frame);
      if (n == 0) {
        stopped = true;
        break;
      }
      prev_lsn = frame.lsn;
      pos += n;
      if (frame.window_commit) {
        commit_segment = i;
        commit_pos = pos;
        next_lsn_ = frame.lsn + 1;
        next_update_index_ = frame.first_update_index + frame.tuple_count;
      }
    }
    if (stopped) break;
  }
  // Drop everything past the resume point: later segments entirely, and
  // the commit segment's suffix. With no committed frame at all the whole
  // log is a torn first window — unlink it and fall back to the caller's
  // min_lsn/min_update_index seeds.
  for (size_t i = 0; i < segments.size(); ++i) {
    if (commit_segment == segments.size() || i > commit_segment) {
      ::unlink(segments[i].c_str());
    }
  }
  if (commit_segment < segments.size()) {
    const std::string& tail = segments[commit_segment];
    struct stat st;
    if (::stat(tail.c_str(), &st) == 0 &&
        static_cast<size_t>(st.st_size) != commit_pos) {
      if (::truncate(tail.c_str(), commit_pos) != 0) {
        ThrowErrno("wal: truncate torn tail " + tail);
      }
    }
    // Resume appending into the surviving tail segment.
    fd_ = ::open(tail.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) ThrowErrno("wal: reopen " + tail);
    segment_path_ = tail;
    segment_bytes_ = commit_pos;
  }
  if (options_.sync_dir) SyncDir(dir_);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

WalWriter::PendingFrame& WalWriter::Pending(int relation) {
  for (PendingFrame& f : pending_) {
    if (f.relation == relation) return f;
  }
  pending_.emplace_back();
  pending_.back().relation = relation;
  return pending_.back();
}

bool WalWriter::HasPending() const {
  for (const PendingFrame& f : pending_) {
    if (f.tuples > 0) return true;
  }
  return false;
}

void WalWriter::DropPending() { pending_.clear(); }

void WalWriter::EnsureSegment() {
  if (fd_ >= 0) return;
  segment_path_ = SegmentPath(dir_, next_lsn_);
  fd_ = ::open(segment_path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) ThrowErrno("wal: create " + segment_path_);
  segment_bytes_ = 0;
  if (options_.sync_dir) SyncDir(dir_);
}

void WalWriter::RotateIfNeeded(size_t incoming_frame_bytes) {
  if (fd_ < 0 || segment_bytes_ == 0) return;
  if (segment_bytes_ + incoming_frame_bytes <= options_.max_segment_bytes) {
    return;
  }
  // Site evaluated before any side effect: a throw leaves the writer on the
  // old segment (retry rotates again); a kill leaves a fully-valid old
  // segment and no new one.
  FIVM_FAIL_POINT("wal.rotate");
  if (::fsync(fd_) != 0) ThrowErrno("wal: fsync before rotate");
  ::close(fd_);
  fd_ = -1;
  ++stats_.rotations;
  EnsureSegment();
}

void WalWriter::WriteFrame(const PendingFrame& f, bool window_commit) {
  static obs::Counter* appended_bytes =
      obs::MetricRegistry::Default().GetCounter("wal.appended_bytes");
  uint8_t header[kWalHeaderBytes];
  PutHeaderU32(header, kWalMagic);
  PutHeaderU32(header + 4, kWalVersion);
  PutHeaderU64(header + 8, next_lsn_);
  PutHeaderU64(header + 16, next_update_index_);
  PutHeaderU32(header + 24, static_cast<uint32_t>(f.relation) |
                                (window_commit ? kWalCommitBit : 0u));
  PutHeaderU32(header + 28, f.tuples);
  PutHeaderU32(header + 32, static_cast<uint32_t>(f.bytes.size()));
  uint32_t crc = util::Crc32c(header, kWalHeaderBytes);
  crc = util::Crc32c(f.bytes.data(), f.bytes.size(), crc);

  RotateIfNeeded(kWalHeaderBytes + f.bytes.size() + kWalTrailerBytes);
  EnsureSegment();
  const size_t frame_start = segment_bytes_;
  auto rollback = [&] {
    // All-or-nothing under throws: put the segment back on the last frame
    // boundary so a supervised retry re-seals cleanly. (A *kill* never gets
    // here — that is how the chaos harness manufactures torn tails.)
    ::ftruncate(fd_, static_cast<off_t>(frame_start));
    segment_bytes_ = frame_start;
  };
  auto write_all = [&](const uint8_t* p, size_t n) {
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        rollback();
        ThrowErrno("wal: write " + segment_path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
      segment_bytes_ += static_cast<size_t>(w);
    }
  };
  write_all(header, kWalHeaderBytes);
  try {
    // Between the header write and the body write: a kill here is a torn
    // frame on disk, which recovery must discard.
    FIVM_FAIL_POINT("wal.append");
  } catch (...) {
    rollback();
    throw;
  }
  write_all(f.bytes.data(), f.bytes.size());
  uint8_t trailer[kWalTrailerBytes];
  PutHeaderU32(trailer, crc);
  write_all(trailer, kWalTrailerBytes);

  ++next_lsn_;
  next_update_index_ += f.tuples;
  ++stats_.frames_written;
  const uint64_t frame_bytes = segment_bytes_ - frame_start;
  stats_.bytes_written += frame_bytes;
  appended_bytes->Add(frame_bytes);
}

uint64_t WalWriter::Seal(bool sync) {
  static obs::Counter* fsyncs =
      obs::MetricRegistry::Default().GetCounter("wal.fsyncs");
  // The last non-empty frame of the group carries the window-commit marker;
  // a retry after a mid-seal throw recomputes it over what is still pending,
  // so the marker always lands on the group's final frame.
  size_t nonempty = 0;
  for (const PendingFrame& f : pending_) {
    if (f.tuples > 0) ++nonempty;
  }
  bool wrote = false;
  while (!pending_.empty()) {
    PendingFrame& f = pending_.front();
    if (f.tuples > 0) {
      WriteFrame(f, /*window_commit=*/nonempty == 1);
      --nonempty;
      wrote = true;
    }
    pending_.erase(pending_.begin());
  }
  if (sync && (wrote || sync_pending_)) {
    sync_pending_ = true;
    FIVM_FAIL_POINT("wal.fsync");
    if (fd_ >= 0 && ::fsync(fd_) != 0) ThrowErrno("wal: fsync");
    sync_pending_ = false;
    ++stats_.fsyncs;
    fsyncs->Inc();
  } else if (wrote && !sync) {
    sync_pending_ = true;
  }
  return last_sealed_lsn();
}

void WalWriter::TruncateBelow(uint64_t lsn) {
  static obs::Counter* truncations =
      obs::MetricRegistry::Default().GetCounter("wal.truncations");
  std::vector<std::string> segments = ListWalSegments(dir_);
  bool any = false;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i spans [first(i), first(i+1) - 1]; unlink it once a
    // checkpoint covers that whole range. The active segment stays.
    if (segments[i] == segment_path_) break;
    if (SegmentFirstLsn(segments[i + 1]) <= lsn + 1) {
      ::unlink(segments[i].c_str());
      any = true;
    }
  }
  if (any) {
    ++stats_.truncations;
    truncations->Inc();
    if (options_.sync_dir) SyncDir(dir_);
  }
}

// ---------------------------------------------------------------------------
// WalReader

WalReader::WalReader(std::string dir) : dir_(std::move(dir)) {
  segments_ = ListWalSegments(dir_);
}

WalReader::~WalReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool WalReader::OpenNextSegment() {
  while (segment_idx_ < segments_.size()) {
    if (ReadWholeFile(segments_[segment_idx_], &buf_)) {
      ++segment_idx_;
      buf_pos_ = 0;
      if (!buf_.empty()) return true;
      // Empty segment (crashed rotation): skip it.
      continue;
    }
    ++segment_idx_;
  }
  return false;
}

bool WalReader::Next(WalFrame* frame) {
  for (;;) {
    if (buf_pos_ >= buf_.size()) {
      buf_.clear();
      if (!OpenNextSegment()) return false;
    }
    size_t n = ParseFrame(buf_, buf_pos_, prev_lsn_, frame);
    if (n == 0) {
      // Torn tail: count every unread byte here and in later segments, and
      // stop permanently.
      torn_bytes_ += buf_.size() - buf_pos_;
      for (size_t i = segment_idx_; i < segments_.size(); ++i) {
        struct stat st;
        if (::stat(segments_[i].c_str(), &st) == 0) {
          torn_bytes_ += static_cast<uint64_t>(st.st_size);
        }
      }
      buf_pos_ = buf_.size();
      segment_idx_ = segments_.size();
      return false;
    }
    buf_pos_ += n;
    prev_lsn_ = frame->lsn;
    ++frames_read_;
    return true;
  }
}

}  // namespace fivm::durability
