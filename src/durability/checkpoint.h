// Store checkpointing: a checkpoint file is an index-free image of every
// materialized store (the SoA entry pools serialized live-entry by
// live-entry, see serialize.h) stamped with the WAL position it covers:
//
//   magic 'FCKP' | version | lsn | update_count | store_count |
//   store_count × (node id | SerializeRelation image) |
//   CRC32C over everything above
//
// A checkpoint at LSN L means "this image equals the empty database plus
// every WAL frame with lsn <= L"; recovery loads it and replays only the
// frames after L. Installation is crash-atomic: the image is written to
// ckpt-<lsn>.ckpt.tmp, fsync'd, and rename()d into place — a crash leaves
// either the old checkpoint set or the new one, never a half-visible file
// (the "ckpt.write" and "ckpt.rename" failpoints let the chaos harness kill
// at both boundaries; a partial .tmp is ignored by the loader and collected
// by the next GC pass).
//
// The ingest service triggers checkpoints between flush windows — after a
// window's frames are sealed, fsync'd and applied, so the engine is exactly
// at the WAL's last sealed LSN and the serving side keeps answering from
// its epoch-pinned snapshots while the image is written (SnapshotServer
// froze its own immutable base generations at the last publish; the
// checkpoint never touches them).

#ifndef FIVM_DURABILITY_CHECKPOINT_H_
#define FIVM_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/durability/serialize.h"
#include "src/durability/wal.h"
#include "src/obs/metrics.h"
#include "src/util/crc32c.h"

namespace fivm::durability {

inline constexpr uint32_t kCkptMagic = 0x504B4346u;  // "FCKP"
inline constexpr uint32_t kCkptVersion = 1;

struct CheckpointMeta {
  uint64_t lsn = 0;
  uint64_t update_count = 0;  // admitted updates covered by the image
  std::string path;
};

// --- Untemplated file machinery (checkpoint.cc) ---

/// ckpt-*.ckpt files of `dir`, ascending LSN (parsed from the name;
/// update_count is only known after reading the image).
std::vector<CheckpointMeta> ListCheckpoints(const std::string& dir);

/// The install path of the checkpoint covering `lsn`.
std::string CheckpointPath(const std::string& dir, uint64_t lsn);

/// Crash-atomic installation: temp file + fsync + rename + dir fsync.
/// Throws on injected faults ("ckpt.write" mid-image, "ckpt.rename" before
/// the rename) and real I/O errors; the temp file is unlinked on a throw.
void InstallCheckpointBytes(const std::string& dir, uint64_t lsn,
                            const std::vector<uint8_t>& bytes);

/// Reads a checkpoint file and validates magic, version and CRC. Returns
/// false (corrupt/torn image) without touching `out` on failure.
bool ReadCheckpointBytes(const std::string& path, std::vector<uint8_t>* out);

/// Unlinks all but the newest `keep` checkpoints plus any stray .tmp files
/// a crashed writer left behind.
void RemoveOldCheckpoints(const std::string& dir, size_t keep);

// --- Image build/parse ---

template <typename Ring>
std::vector<uint8_t> BuildCheckpointImage(const IvmEngine<Ring>& engine,
                                          uint64_t lsn,
                                          uint64_t update_count) {
  std::vector<uint8_t> out;
  PutU32(&out, kCkptMagic);
  PutU32(&out, kCkptVersion);
  PutU64(&out, lsn);
  PutU64(&out, update_count);
  const auto& nodes = engine.tree().nodes();
  uint32_t count = 0;
  for (const auto& n : nodes) {
    if (n.materialized) ++count;
  }
  PutU32(&out, count);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].materialized) continue;
    PutU32(&out, static_cast<uint32_t>(i));
    SerializeRelation(&out, engine.store(static_cast<int>(i)));
  }
  PutU32(&out, util::Crc32c(out.data(), out.size()));
  return out;
}

/// Parses a validated image into (node, store) pairs, checking every node
/// id and schema against the engine's view tree. All-or-nothing: on any
/// mismatch returns false with no partial output, so a caller can fall back
/// to an older checkpoint without having half-restored the engine.
template <typename Ring>
bool ParseCheckpointImage(const std::vector<uint8_t>& bytes,
                          const IvmEngine<Ring>& engine, CheckpointMeta* meta,
                          std::vector<std::pair<int, Relation<Ring>>>* stores) {
  if (bytes.size() < 28 + 4) return false;
  ByteReader r{bytes.data(), bytes.data() + bytes.size() - 4};
  uint32_t magic, version, count;
  if (!r.U32(&magic) || !r.U32(&version)) return false;
  if (magic != kCkptMagic || version != kCkptVersion) return false;
  if (!r.U64(&meta->lsn) || !r.U64(&meta->update_count) || !r.U32(&count)) {
    return false;
  }
  const auto& nodes = engine.tree().nodes();
  stores->clear();
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t node;
    if (!r.U32(&node) || node >= nodes.size()) return false;
    if (!nodes[node].materialized) return false;
    Relation<Ring> rel;
    if (!DeserializeRelation(&r, &rel)) return false;
    if (!(rel.schema() == engine.store(static_cast<int>(node)).schema())) {
      return false;
    }
    stores->emplace_back(static_cast<int>(node), std::move(rel));
  }
  return r.remaining() == 0;
}

// --- Orchestration ---

template <typename Ring>
struct LoadedCheckpoint {
  bool loaded = false;
  CheckpointMeta meta;
  size_t corrupt_skipped = 0;  // newer images rejected before this one
};

/// Loads the newest checkpoint that validates (CRC + schema), restoring its
/// stores into the engine; corrupt or torn images fall back to the next
/// older one. The engine should be freshly Initialize()d on an empty
/// database; if no checkpoint loads, it is left untouched (recovery then
/// replays the WAL from the beginning).
template <typename Ring>
LoadedCheckpoint<Ring> LoadNewestCheckpoint(const std::string& dir,
                                            IvmEngine<Ring>* engine) {
  LoadedCheckpoint<Ring> result;
  std::vector<CheckpointMeta> all = ListCheckpoints(dir);
  for (size_t i = all.size(); i-- > 0;) {
    std::vector<uint8_t> bytes;
    if (!ReadCheckpointBytes(all[i].path, &bytes)) {
      ++result.corrupt_skipped;
      continue;
    }
    CheckpointMeta meta = all[i];
    std::vector<std::pair<int, Relation<Ring>>> stores;
    if (!ParseCheckpointImage(bytes, *engine, &meta, &stores)) {
      ++result.corrupt_skipped;
      continue;
    }
    for (auto& [node, rel] : stores) {
      engine->RestoreStore(node, std::move(rel));
    }
    result.loaded = true;
    result.meta = std::move(meta);
    return result;
  }
  return result;
}

/// The ingest service's checkpoint driver: snapshots every materialized
/// store at the WAL's current sealed position, installs atomically, then
/// truncates the WAL below the covered LSN and GCs old images.
template <typename Ring>
class Checkpointer {
 public:
  struct Options {
    size_t keep = 2;  // checkpoints retained after a successful install
  };

  Checkpointer(std::string dir, IvmEngine<Ring>* engine, WalWriter* wal,
               Options options = {})
      : dir_(std::move(dir)),
        engine_(engine),
        wal_(wal),
        options_(options),
        duration_ns_(obs::MetricRegistry::Default().GetHistogram(
            "durability.checkpoint_ns")),
        installed_(obs::MetricRegistry::Default().GetCounter(
            "ckpt.installed")) {}

  /// Pre-condition: every sealed WAL frame has been applied to the engine
  /// (the service calls this between flush windows). Throws on injected
  /// faults and I/O errors; the caller counts and retries at a later
  /// boundary.
  CheckpointMeta WriteCheckpoint() {
    obs::ScopedTimer timer(duration_ns_);
    CheckpointMeta meta;
    meta.lsn = wal_->last_sealed_lsn();
    meta.update_count = wal_->next_update_index();
    meta.path = CheckpointPath(dir_, meta.lsn);
    std::vector<uint8_t> bytes =
        BuildCheckpointImage(*engine_, meta.lsn, meta.update_count);
    InstallCheckpointBytes(dir_, meta.lsn, bytes);
    installed_->Inc();
    wal_->TruncateBelow(meta.lsn);
    RemoveOldCheckpoints(dir_, options_.keep);
    return meta;
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  IvmEngine<Ring>* engine_;
  WalWriter* wal_;
  Options options_;
  obs::Histogram* duration_ns_;
  obs::Counter* installed_;
};

}  // namespace fivm::durability

#endif  // FIVM_DURABILITY_CHECKPOINT_H_
