// Crash recovery: newest valid checkpoint + bounded WAL-suffix replay.
//
// The engine is rebuilt in three steps:
//   1. The caller constructs the view tree / engine / executor exactly as
//      the crashed process did (the tree is a deterministic function of the
//      query and variable order) and Initialize()s on an empty database.
//   2. LoadNewestCheckpoint restores every materialized store from the
//      newest image that validates; corrupt or partial images fall back to
//      the next older one (an interrupted install only ever leaves a .tmp,
//      which the loader ignores).
//   3. The WAL frames with lsn > checkpoint LSN are replayed through the
//      same DeltaBatcher → ParallelExecutor pipeline live ingest uses.
//      Frames at or below the checkpoint LSN are skipped — the checkpoint
//      already folds those ring deltas in — so replay lands on exactly the
//      state the sealed log prescribes. A torn tail (partial frame or CRC
//      mismatch, e.g. a kill between the WAL header and body writes) ends
//      replay; the next WalWriter open physically discards it. Frames are
//      buffered per window and applied only when the group's window-commit
//      frame is seen — trailing valid frames of a partially sealed window
//      are discarded the same way (see wal.h "Window atomicity").
//
// Replay order is LSN order, which is the order the crashed service sealed
// (and applied) the windows in, so stateful leaves (indicator support
// counts) recover bit-identically, not just up to delta commutativity.
//
// Recovery is read-only on the log directory: a parent process can verify a
// killed child's durable state without disturbing what the next child will
// recover from (tests/recovery_chaos_test.cc leans on this).

#ifndef FIVM_DURABILITY_RECOVERY_H_
#define FIVM_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/durability/checkpoint.h"
#include "src/durability/wal.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/parallel_executor.h"
#include "src/obs/metrics.h"

namespace fivm::durability {

struct RecoveryResult {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_lsn = 0;
  size_t corrupt_checkpoints_skipped = 0;

  uint64_t frames_replayed = 0;
  uint64_t updates_replayed = 0;
  uint64_t frames_skipped = 0;  // lsn <= checkpoint_lsn (already folded in)
  /// Valid trailing frames discarded because their window's commit frame
  /// never made it to disk (kill mid-seal).
  uint64_t frames_discarded_uncommitted = 0;
  bool saw_torn_tail = false;
  uint64_t torn_bytes = 0;
  /// Media-corruption guard: true when the first frame past the checkpoint
  /// does not chain directly onto it (frames lost that a clean crash cannot
  /// lose). The recovered state is then best-effort.
  bool gap_detected = false;

  /// Durable position: the LSN of the last state-bearing record (frame or
  /// checkpoint) and the total admitted updates it covers. A reopened
  /// WalWriter resumes numbering here, and the chaos harness regenerates
  /// its seeded workload from update_count onward.
  uint64_t last_lsn = 0;
  uint64_t update_count = 0;
};

template <typename Ring>
RecoveryResult Recover(const std::string& dir, IvmEngine<Ring>* engine,
                       exec::DeltaBatcher<Ring>* batcher,
                       exec::ParallelExecutor<Ring>* executor,
                       size_t replay_batch_updates = 1024) {
  static obs::Histogram* duration_ns =
      obs::MetricRegistry::Default().GetHistogram("durability.recovery_ns");
  obs::ScopedTimer timer(duration_ns);

  RecoveryResult result;
  LoadedCheckpoint<Ring> ckpt = LoadNewestCheckpoint(dir, engine);
  result.checkpoint_loaded = ckpt.loaded;
  result.corrupt_checkpoints_skipped = ckpt.corrupt_skipped;
  if (ckpt.loaded) {
    result.checkpoint_lsn = ckpt.meta.lsn;
    result.last_lsn = ckpt.meta.lsn;
    result.update_count = ckpt.meta.update_count;
  }

  WalReader reader(dir);
  WalFrame frame;
  size_t batched = 0;
  auto flush_and_apply = [&] {
    if (batched == 0) return;
    for (auto& b : batcher->Flush()) {
      executor->ApplyBatch(b.relation, std::move(b.delta));
    }
    batched = 0;
  };
  // Frames of the in-flight window; pushed into the batcher only once the
  // window's commit frame arrives, so a kill mid-seal never replays half a
  // window.
  std::vector<WalFrame> window;
  bool first_replayed = true;
  bool torn = false;
  while (reader.Next(&frame)) {
    if (frame.lsn <= result.checkpoint_lsn) {
      ++result.frames_skipped;
      continue;
    }
    if (first_replayed) {
      first_replayed = false;
      if (ckpt.loaded && frame.lsn != result.checkpoint_lsn + 1) {
        result.gap_detected = true;
      }
    }
    const bool commit = frame.window_commit;
    window.push_back(std::move(frame));
    if (!commit) continue;
    // Decode the whole group before pushing anything, so a decode failure
    // (CRC collision — effectively never) drops the window atomically.
    std::vector<std::pair<int, std::pair<Tuple, typename Ring::Element>>>
        decoded;
    for (WalFrame& wf : window) {
      bool ok = DecodeFrameUpdates<Ring>(
          wf, [&](Tuple&& key, typename Ring::Element&& payload) {
            decoded.emplace_back(
                wf.relation,
                std::make_pair(std::move(key), std::move(payload)));
          });
      if (!ok) {
        torn = true;
        break;
      }
    }
    if (torn) break;
    for (auto& [rel, kv] : decoded) {
      batcher->Push(rel, std::move(kv.first), std::move(kv.second));
      ++batched;
    }
    for (const WalFrame& wf : window) {
      ++result.frames_replayed;
      result.updates_replayed += wf.tuple_count;
    }
    result.last_lsn = window.back().lsn;
    result.update_count =
        window.back().first_update_index + window.back().tuple_count;
    window.clear();
    if (batched >= replay_batch_updates) flush_and_apply();
  }
  if (!torn && !window.empty()) {
    // Valid frames whose window never committed: a kill between the group's
    // frame writes. Discard exactly like a torn tail.
    result.frames_discarded_uncommitted = window.size();
    result.saw_torn_tail = true;
  }
  if (torn) result.saw_torn_tail = true;
  flush_and_apply();
  if (reader.saw_torn_tail()) {
    result.saw_torn_tail = true;
    result.torn_bytes = reader.torn_bytes();
  }
  return result;
}

}  // namespace fivm::durability

#endif  // FIVM_DURABILITY_RECOVERY_H_
