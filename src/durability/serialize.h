// Index-free binary serialization of relation stores and ring payloads —
// the byte layer shared by the WAL (per-update key/payload records inside a
// frame) and checkpoints (whole-store images). "Index-free" means exactly
// the SoA entry-pool content is written: the live (key, payload) pairs in
// pool order, skipping ring-zero tombstones; the hash index and any
// secondary indexes are rebuilt by Relation::Add on load.
//
// Everything is little-endian (the engine targets x86-64; a checkpoint is a
// host-local artifact, not an interchange format). Integer tuple values and
// I64Ring multiplicities are zigzag-varint encoded: update records are
// write-amplification on every durable ingest path, and typical keys are
// small ints with ±1 multiplicities — varints cut a WAL record from ~31 to
// ~7 bytes, which matters because the group-fsync'd WAL is bandwidth-bound
// on commodity disks. Doubles keep their raw 8-byte bit pattern (exactness
// over size). Readers take a [cursor, end) byte window and return false on
// underflow or malformed counts instead of throwing: the WAL/checkpoint
// loaders translate a false into "torn tail" / "corrupt image, fall back".

#ifndef FIVM_DURABILITY_SERIALIZE_H_
#define FIVM_DURABILITY_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/data/relation.h"
#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/data/value.h"
#include "src/rings/regression_ring.h"
#include "src/rings/ring.h"
#include "src/rings/sparse_regression_ring.h"

namespace fivm::durability {

// ---------------------------------------------------------------------------
// Primitive append/read helpers.

inline void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

inline void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

/// LEB128 varint, at most 10 bytes. Returns the advanced cursor.
inline uint8_t* VarEncodeTo(uint8_t* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<uint8_t>(v);
  return p;
}

inline void PutVarU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t buf[10];
  uint8_t* p = VarEncodeTo(buf, v);
  out->insert(out->end(), buf, p);
}

/// Zigzag: small-magnitude signed values (keys, ±1 multiplicities) encode
/// to 1-2 varint bytes regardless of sign.
inline uint64_t ZigZag(int64_t x) {
  return (static_cast<uint64_t>(x) << 1) ^ static_cast<uint64_t>(x >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }

  bool U8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = *p++;
    return true;
  }
  bool U32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool VarU64(uint64_t* v) {
    uint64_t r = 0;
    for (int shift = 0; shift < 64 && p < end; shift += 7) {
      const uint8_t b = *p++;
      r |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *v = r;
        return true;
      }
    }
    return false;  // underflow or over-long encoding
  }
};

// ---------------------------------------------------------------------------
// Tuples and schemas.

inline void SerializeTuple(std::vector<uint8_t>* out, const Tuple& t) {
  // Encoded into a stack buffer and appended with one insert: this runs once
  // per update on the WAL append path, where per-value push_back/resize
  // calls are measurable against the ~0.5us/update ingest budget. Worst
  // case per value is 1 kind byte + 10 varint bytes (doubles: 1 + 8).
  const size_t n = t.size();
  uint8_t buf[5 + 24 * 11];
  uint8_t* p = (n <= 24) ? buf : nullptr;
  if (p == nullptr) {
    // Rare wide tuples: slow path through the vector helpers.
    PutVarU64(out, n);
    for (size_t i = 0; i < n; ++i) {
      const Value& v = t[i];
      PutU8(out, static_cast<uint8_t>(v.kind()));
      if (v.kind() == Value::Kind::kDouble) {
        PutF64(out, v.AsDouble());
      } else {
        PutVarU64(out, ZigZag(v.AsInt()));
      }
    }
    return;
  }
  p = VarEncodeTo(p, n);
  for (size_t i = 0; i < n; ++i) {
    const Value& v = t[i];
    *p++ = static_cast<uint8_t>(v.kind());
    if (v.kind() == Value::Kind::kDouble) {
      const double d = v.AsDouble();
      std::memcpy(p, &d, 8);
      p += 8;
    } else {
      p = VarEncodeTo(p, ZigZag(v.AsInt()));
    }
  }
  out->insert(out->end(), buf, p);
}

inline bool DeserializeTuple(ByteReader* r, Tuple* out) {
  uint64_t n;
  if (!r->VarU64(&n)) return false;
  if (n > 1u << 16) return false;  // sanity: no 65k-ary keys
  *out = Tuple();
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t kind;
    if (!r->U8(&kind)) return false;
    if (kind == static_cast<uint8_t>(Value::Kind::kDouble)) {
      double d;
      if (!r->F64(&d)) return false;
      out->Append(Value::Double(d));  // Append maintains the cached hash
    } else if (kind == static_cast<uint8_t>(Value::Kind::kInt)) {
      uint64_t zz;
      if (!r->VarU64(&zz)) return false;
      out->Append(Value::Int(UnZigZag(zz)));
    } else {
      return false;
    }
  }
  return true;
}

inline void SerializeSchema(std::vector<uint8_t>* out, const Schema& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  for (size_t i = 0; i < s.size(); ++i) PutU32(out, s[i]);
}

inline bool DeserializeSchema(ByteReader* r, Schema* out) {
  uint32_t n;
  if (!r->U32(&n)) return false;
  if (n > 1u << 10) return false;
  *out = Schema();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t var;
    if (!r->U32(&var)) return false;
    out->Add(var);
  }
  return out->size() == n;  // schemas hold distinct vars
}

// ---------------------------------------------------------------------------
// Ring payload codecs. The primary template covers rings whose Element is a
// trivially-copyable 8-byte scalar (I64Ring, F64Ring); wider payloads get
// explicit specializations below.

template <typename Ring>
struct RingCodec {
  using Element = typename Ring::Element;
  static_assert(std::is_trivially_copyable_v<Element> &&
                    sizeof(Element) == 8,
                "no RingCodec specialization for this ring's payload");

  static void Write(std::vector<uint8_t>* out, const Element& e) {
    uint64_t bits;
    std::memcpy(&bits, &e, 8);
    PutU64(out, bits);
  }
  static bool Read(ByteReader* r, Element* out) {
    uint64_t bits;
    if (!r->U64(&bits)) return false;
    std::memcpy(out, &bits, 8);
    return true;
  }
};

// I64Ring multiplicities are almost always ±1 (insert/delete deltas):
// zigzag-varint them instead of spending 8 bytes per update in the WAL.
template <>
struct RingCodec<I64Ring> {
  static void Write(std::vector<uint8_t>* out, const int64_t& e) {
    PutVarU64(out, ZigZag(e));
  }
  static bool Read(ByteReader* r, int64_t* out) {
    uint64_t zz;
    if (!r->VarU64(&zz)) return false;
    *out = UnZigZag(zz);
    return true;
  }
};

template <>
struct RingCodec<RegressionRing> {
  static void Write(std::vector<uint8_t>* out, const RegressionPayload& e) {
    PutF64(out, e.count());
    PutU32(out, e.lo());
    PutU32(out, e.hi());
    for (size_t i = 0; i < e.raw_size(); ++i) PutF64(out, e.raw_data()[i]);
  }
  static bool Read(ByteReader* r, RegressionPayload* out) {
    double c;
    uint32_t lo, hi;
    if (!r->F64(&c) || !r->U32(&lo) || !r->U32(&hi) || hi < lo) return false;
    size_t len = hi - lo;
    if (len > 1u << 12) return false;
    size_t n = len + len * (len + 1) / 2;
    if (r->remaining() < n * 8) return false;
    std::vector<double> buf(n);
    for (size_t i = 0; i < n; ++i) {
      if (!r->F64(&buf[i])) return false;
    }
    *out = RegressionPayload::FromRaw(c, lo, hi, buf.data(), n);
    return true;
  }
};

template <>
struct RingCodec<SparseRegressionRing> {
  static void Write(std::vector<uint8_t>* out,
                    const SparseRegressionPayload& e) {
    PutF64(out, e.count());
    PutU32(out, static_cast<uint32_t>(e.LinearEntryCount()));
    PutU32(out, static_cast<uint32_t>(e.raw_keys().size()));
    for (uint64_t k : e.raw_keys()) PutU64(out, k);
    for (double v : e.raw_vals()) PutF64(out, v);
  }
  static bool Read(ByteReader* r, SparseRegressionPayload* out) {
    double c;
    uint32_t s_count, total;
    if (!r->F64(&c) || !r->U32(&s_count) || !r->U32(&total)) return false;
    if (s_count > total || total > 1u << 24) return false;
    if (r->remaining() < static_cast<size_t>(total) * 16) return false;
    std::vector<uint64_t> keys(total);
    std::vector<double> vals(total);
    for (uint32_t i = 0; i < total; ++i) {
      if (!r->U64(&keys[i])) return false;
    }
    for (uint32_t i = 0; i < total; ++i) {
      if (!r->F64(&vals[i])) return false;
    }
    *out = SparseRegressionPayload::FromRaw(c, s_count, std::move(keys),
                                            std::move(vals));
    return true;
  }
};

// ---------------------------------------------------------------------------
// Whole-store serialization (checkpoints): schema, live-entry count, then
// the live (key, payload) pairs in pool order.

template <typename Ring>
void SerializeRelation(std::vector<uint8_t>* out, const Relation<Ring>& rel) {
  SerializeSchema(out, rel.schema());
  PutU64(out, rel.size());
  rel.ForEach([&](const Tuple& key, const typename Ring::Element& payload) {
    SerializeTuple(out, key);
    RingCodec<Ring>::Write(out, payload);
  });
}

/// Rebuilds a store (hash index included, via Add) from a SerializeRelation
/// image. Returns false on malformed bytes; `*out` is then unspecified.
template <typename Ring>
bool DeserializeRelation(ByteReader* r, Relation<Ring>* out) {
  Schema schema;
  if (!DeserializeSchema(r, &schema)) return false;
  uint64_t count;
  if (!r->U64(&count)) return false;
  // Each entry needs at least a tuple header + one payload byte.
  if (count > r->remaining()) return false;
  *out = Relation<Ring>(schema);
  out->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Tuple key;
    typename Ring::Element payload;
    if (!DeserializeTuple(r, &key)) return false;
    if (key.size() != schema.size()) return false;
    if (!RingCodec<Ring>::Read(r, &payload)) return false;
    out->Add(std::move(key), std::move(payload));
  }
  return true;
}

}  // namespace fivm::durability

#endif  // FIVM_DURABILITY_SERIALIZE_H_
