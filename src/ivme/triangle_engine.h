#ifndef FIVM_IVME_TRIANGLE_ENGINE_H_
#define FIVM_IVME_TRIANGLE_ENGINE_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/query.h"
#include "src/data/relation.h"
#include "src/data/tuple.h"
#include "src/obs/metrics.h"
#include "src/rings/ring.h"

namespace fivm::ivme {

/// Tuning of the IVM^ε maintenance strategy.
struct Config {
  /// The ε of the paper: the heavy/light degree threshold is θ ≈ M^ε for
  /// live database size M. Per-update cost is O(M^max(ε,1-ε)), minimized at
  /// ε = 1/2 (amortized O(√M)).
  double epsilon = 0.5;
  /// Floor for θ, so tiny databases don't degenerate into all-heavy
  /// partitions with constant rebalancing.
  size_t min_threshold = 4;
};

/// Rebalancing / maintenance counters (MemoryTracker-style observability:
/// cheap monotonic counters, surfaced by benches and asserted by CI smoke
/// runs so the amortization machinery is provably exercised).
struct Stats {
  int64_t updates = 0;           // single-tuple updates applied
  int64_t minor_rebalances = 0;  // value moves between heavy and light
  int64_t minor_moved_tuples = 0;
  int64_t major_rebalances = 0;  // full repartition + view recomputations
  std::string ToString() const;
};

/// The heavy/light degree threshold for live size `m`:
/// max(min_threshold, round(m^epsilon)).
size_t ThresholdFor(size_t m, double epsilon, size_t min_threshold);

/// IVM^ε maintenance of the triangle count under single-tuple updates
/// (Kara, Ngo, Nikolic, Olteanu, Zhang: "Counting Triangles under Updates
/// in Worst-Case Optimal Time", ICDT 2019, and "Maintaining Triangle
/// Queries under Updates", TODS 2020 — both in PAPERS.md). Maintains
///
///   Q = ⊕_{a,b,c} R(a,b) ⊗ S(b,c) ⊗ T(c,a)
///
/// over any *commutative* ring (multiplicities are ring elements; inserts
/// carry One, deletes Neg(One), so with I64Ring Q is the triangle count of
/// a Z-relation database). In contrast to the classic delta join — whose
/// per-update cost is the degree of the touched value, O(N) on skewed
/// graphs — every update here costs O(N^max(ε,1-ε)) amortized: O(√N) at
/// the default ε = 1/2.
///
/// Strategy. Each relation is partitioned by the degree of one variable
/// against the threshold θ = Θ(M^ε): R(A,B) on A, S(B,C) on B, T(C,A) on C
/// (generically: relation i is partitioned on the variable it shares with
/// relation i-1 in the R→S→T cycle). Three auxiliary views join a heavy
/// part with the following light part, marginalizing the shared variable:
///
///   V_RS(a,c) = ⊕_b R_h(a,b) ⊗ S_l(b,c)
///   V_ST(b,a) = ⊕_c S_h(b,c) ⊗ T_l(c,a)
///   V_TR(c,b) = ⊕_a T_h(c,a) ⊗ R_l(a,b)
///
/// An update δR(a,b) with payload m splits the delta query
/// δQ = m ⊗ ⊕_c S(b,c) ⊗ T(c,a) into three cases:
///
///   (light)       ⊕_c S_l(b,c) ⊗ T(c,a): enumerate σ_{B=b} S_l — at most
///                 2θ tuples by the light-degree invariant — and probe both
///                 parts of T by full key. O(θ) = O(N^ε).
///   (heavy-heavy) ⊕_c S_h(b,c) ⊗ T_h(c,a): enumerate σ_{A=a} T_h — at
///                 most one tuple per heavy C-value, and there are at most
///                 2M/θ heavy values — and probe S_h by full key.
///                 O(M/θ) = O(N^{1-ε}).
///   (heavy-light) ⊕_c S_h(b,c) ⊗ T_l(c,a) = V_ST(b,a): one lookup.
///
/// The same enumerations maintain the two views that contain R: if a is
/// heavy in R, V_RS gains m ⊗ S_l(b,·) (the light enumeration); if a is
/// light, V_TR gains T_h(·,a) ⊗ m (the heavy enumeration). Updates to S
/// and T are the same rules rotated.
///
/// Rebalancing. Partition membership is per-value with hysteresis: a light
/// value is promoted when its degree reaches 2θ and a heavy value demoted
/// when its degree drops below θ/2, so Ω(θ) updates to a value separate
/// two moves of that value and the O(θ·N^{1-ε}+θ²) move cost amortizes to
/// O(N^max(ε,1-ε)) per update (minor rebalancing). When the live database
/// size drifts past a constant factor of its size at the last rebuild, θ
/// is recomputed and partitions + views rebuilt from scratch — O(N(θ+1))
/// amortized over the Ω(N) updates in between (major rebalancing). Both
/// are counted in Stats.
///
/// Storage reuses the engine's existing machinery: partitions and views
/// are `Relation<Ring>` stores (SoA pool + SwissTable primary index), the
/// per-case enumerations run over lazily built secondary indexes, and
/// degree counters are I64Ring relations.
template <typename Ring>
class TriangleEngine {
 public:
  using Element = typename Ring::Element;

  /// `query` must contain three binary relations `r`, `s`, `t` forming a
  /// triangle: sch(r) = (A,B), sch(s) = (B,C), sch(t) = (C,A) for distinct
  /// variables A, B, C (each consecutive pair shares exactly one variable).
  TriangleEngine(const Query& query, int r, int s, int t, Config cfg = {})
      : cfg_(cfg), theta_(ThresholdForLive(0)) {
    const std::array<int, 3> rels{r, s, t};
    for (int i = 0; i < 3; ++i) {
      Rel& rel = rel_[i];
      rel.relation = rels[i];
      rel.schema = query.relation(rels[i]).schema;
      assert(rel.schema.size() == 2 && "triangle relations are binary");
    }
    for (int i = 0; i < 3; ++i) {
      Rel& rel = rel_[i];
      const Schema& prev = rel_[(i + 2) % 3].schema;
      Schema shared = rel.schema.Intersect(prev);
      assert(shared.size() == 1 && "consecutive relations share one var");
      rel.px = static_cast<uint32_t>(rel.schema.PositionOf(shared[0]));
      rel.py = 1 - rel.px;
      rel.xs = Schema{rel.schema[rel.px]};
      rel.ys = Schema{rel.schema[rel.py]};
      rel.light = Relation<Ring>(rel.schema);
      rel.heavy = Relation<Ring>(rel.schema);
      rel.degree = Relation<I64Ring>(rel.xs);
      rel.heavy_set = Relation<I64Ring>(rel.xs);
    }
    for (int i = 0; i < 3; ++i) {
      // Y_i must be X_{i+1}: the marginalized variable of each delta rule.
      assert(rel_[i].schema[rel_[i].py] ==
                 rel_[(i + 1) % 3].schema[rel_[(i + 1) % 3].px] &&
             "relation cycle must close");
      view_schema_[i] = Schema{rel_[i].schema[rel_[i].px],
                               rel_[(i + 2) % 3].schema[rel_[(i + 2) % 3].px]};
      view_[i] = Relation<Ring>(view_schema_[i]);
    }
    RegisterGauges();
  }

  /// The registered gauge callbacks capture `this` — the engine is pinned.
  /// The latest-constructed engine owns the ivme.* gauge names; the
  /// registration tokens keep an earlier engine's destructor from tearing
  /// down its replacement's gauges.
  ~TriangleEngine() { UnregisterGauges(); }
  TriangleEngine(const TriangleEngine&) = delete;
  TriangleEngine& operator=(const TriangleEngine&) = delete;

  /// Applies a single-tuple update δK_rel(key) with ring payload `m`
  /// (insert = One, delete = Neg(One), arbitrary elements allowed). `key`
  /// must be in the relation's query schema layout.
  void ApplyUpdate(int relation, const Tuple& key, const Element& m) {
    if (Ring::IsZero(m)) return;
    const int i = SlotOf(relation);
    const int j = (i + 1) % 3;
    const int k = (i + 2) % 3;
    Rel& ri = rel_[i];
    Rel& rj = rel_[j];
    Rel& rk = rel_[k];
    assert(key.size() == 2);
    const Value& x = key[ri.px];
    const Value& y = key[ri.py];
    Tuple xt = OneTuple(x);
    Tuple yt = OneTuple(y);
    const bool x_heavy = ri.heavy_set.Contains(xt);

    Element sum = Ring::Zero();

    // Case (light): enumerate σ_{X_j = y} K_j^l, probe K_k at (z, x).
    // Doubles as the V_i = K_i^h ⋈ K_j^l maintenance loop when x is heavy.
    {
      const auto* slots = rj.light.IndexOn(rj.xs).Probe(yt);
      if (slots != nullptr) {
        for (uint32_t slot : *slots) {
          const Element& pj = rj.light.PayloadAt(slot);
          if (Ring::IsZero(pj)) continue;
          const Value& z = rj.light.KeyAt(slot)[rj.py];
          Tuple zx = PairKey(rk, z, x);
          Element acc = Ring::Zero();
          if (const Element* p = rk.light.Find(zx)) acc = *p;
          if (const Element* p = rk.heavy.Find(zx)) Ring::AddInPlace(acc, *p);
          if (!Ring::IsZero(acc)) {
            Ring::AddInPlace(sum, Ring::Mul(pj, acc));
          }
          if (x_heavy) {
            view_[i].Add(PairValues(x, z), Ring::Mul(m, pj));
          }
        }
      }
    }

    // Case (heavy-heavy): enumerate σ_{Y_k = x} K_k^h, probe K_j^h at
    // (y, z). Doubles as the V_k = K_k^h ⋈ K_i^l maintenance loop when x
    // is light.
    {
      const auto* slots = rk.heavy.IndexOn(rk.ys).Probe(xt);
      if (slots != nullptr) {
        for (uint32_t slot : *slots) {
          const Element& pk = rk.heavy.PayloadAt(slot);
          if (Ring::IsZero(pk)) continue;
          const Value& z = rk.heavy.KeyAt(slot)[rk.px];
          if (const Element* pj = rj.heavy.Find(PairKey(rj, y, z))) {
            Ring::AddInPlace(sum, Ring::Mul(*pj, pk));
          }
          if (!x_heavy) {
            view_[k].Add(PairValues(z, y), Ring::Mul(pk, m));
          }
        }
      }
    }

    // Case (heavy-light): the auxiliary view V_j = K_j^h ⋈ K_k^l at (y, x).
    if (const Element* v = view_[j].Find(PairValues(y, x))) {
      Ring::AddInPlace(sum, *v);
    }
    Ring::AddInPlace(q_, Ring::Mul(m, sum));

    // Partition insert + degree maintenance. Liveness transitions (payload
    // zero ↔ non-zero) drive the per-value degree counters.
    Relation<Ring>& part = x_heavy ? ri.heavy : ri.light;
    const bool was_live = part.Contains(key);
    part.Add(key, m);
    const bool is_live = part.Contains(key);
    ++stats_.updates;
    if (was_live == is_live) return;

    const int64_t dlive = is_live ? 1 : -1;
    ri.degree.Add(xt, dlive);
    live_total_ = static_cast<size_t>(static_cast<int64_t>(live_total_) +
                                      dlive);
    const int64_t* dptr = ri.degree.Find(xt);
    const int64_t deg = dptr ? *dptr : 0;
    // Hysteresis: promote at 2θ, demote below θ/2 — Ω(θ) updates to the
    // same value separate two moves of that value.
    if (!x_heavy && deg >= 2 * static_cast<int64_t>(theta_)) {
      MoveValue(i, x, /*to_heavy=*/true);
    } else if (x_heavy && 2 * deg < static_cast<int64_t>(theta_)) {
      MoveValue(i, x, /*to_heavy=*/false);
    }
    if (live_total_ > 2 * rebalance_base_ + kMinMajorSpacing ||
        2 * live_total_ + kMinMajorSpacing < rebalance_base_) {
      MajorRebalance();
    }
  }

  /// Applies every entry of a delta relation (query-schema layout) as a
  /// single-tuple update, in entry order.
  void ApplyDelta(int relation, const Relation<Ring>& delta) {
    assert(delta.schema() == rel_[SlotOf(relation)].schema);
    delta.ForEach([&](const Tuple& key, const Element& m) {
      ApplyUpdate(relation, key, m);
    });
  }

  /// The maintained triangle aggregate Q.
  const Element& result() const { return q_; }

  const Stats& stats() const { return stats_; }
  size_t threshold() const { return theta_; }
  size_t live_tuples() const { return live_total_; }

  /// Live keys in the heavy / light part of `relation`.
  size_t HeavySize(int relation) const {
    return rel_[SlotOf(relation)].heavy.size();
  }
  size_t LightSize(int relation) const {
    return rel_[SlotOf(relation)].light.size();
  }

  /// Approximate heap footprint: partitions, auxiliary views, degree and
  /// membership maps.
  size_t TotalBytes() const {
    size_t bytes = 0;
    for (const Rel& r : rel_) {
      bytes += r.light.ApproxBytes() + r.heavy.ApproxBytes() +
               r.degree.ApproxBytes() + r.heavy_set.ApproxBytes();
    }
    for (const auto& v : view_) bytes += v.ApproxBytes();
    return bytes;
  }

  /// Exhaustively verifies internal consistency (test hook, O(N·(θ+deg))):
  ///   - partitions are disjoint and degree counters match live counts;
  ///   - heavy/light membership respects the hysteresis band
  ///     (heavy ⇒ 2·deg ≥ θ, light ⇒ deg < 2θ);
  ///   - each auxiliary view equals its heavy ⋈ light join recomputed from
  ///     scratch;
  ///   - Q equals the brute-force triangle aggregate.
  /// Returns false and fills `error` on the first violation.
  bool CheckInvariants(std::string* error) const {
    size_t live = 0;
    for (int i = 0; i < 3; ++i) {
      const Rel& r = rel_[i];
      live += r.light.size() + r.heavy.size();
      // Degrees and membership per value.
      Relation<I64Ring> counts(r.xs);
      bool ok = true;
      r.light.ForEach([&](const Tuple& key, const Element&) {
        Tuple xt = OneTuple(key[r.px]);
        counts.Add(xt, 1);
        if (r.heavy_set.Contains(xt)) {
          ok = false;
          *error = "light tuple under heavy value in relation " +
                   std::to_string(i) + ": " + key.ToString();
        }
      });
      r.heavy.ForEach([&](const Tuple& key, const Element&) {
        Tuple xt = OneTuple(key[r.px]);
        counts.Add(xt, 1);
        if (!r.heavy_set.Contains(xt)) {
          ok = false;
          *error = "heavy tuple under light value in relation " +
                   std::to_string(i) + ": " + key.ToString();
        }
      });
      if (!ok) return false;
      size_t degree_live = 0;
      counts.ForEach([&](const Tuple& xt, const int64_t& n) {
        ++degree_live;
        const int64_t* d = r.degree.Find(xt);
        if (d == nullptr || *d != n) {
          ok = false;
          *error = "degree mismatch in relation " + std::to_string(i) +
                   " at " + xt.ToString() + ": counted " + std::to_string(n);
          return;
        }
        const bool is_heavy = r.heavy_set.Contains(xt);
        if (is_heavy && 2 * n < static_cast<int64_t>(theta_)) {
          ok = false;
          *error = "heavy value below θ/2 in relation " + std::to_string(i) +
                   " at " + xt.ToString();
        }
        if (!is_heavy && n >= 2 * static_cast<int64_t>(theta_)) {
          ok = false;
          *error = "light value at/above 2θ in relation " + std::to_string(i) +
                   " at " + xt.ToString();
        }
      });
      if (!ok) return false;
      if (r.degree.size() != degree_live) {
        *error = "degree map live-key count mismatch in relation " +
                 std::to_string(i);
        return false;
      }
    }
    if (live != live_total_) {
      *error = "live_total mismatch";
      return false;
    }
    // Views.
    for (int i = 0; i < 3; ++i) {
      Relation<Ring> expect = RecomputeView(i);
      if (!SameContents(expect, view_[i], error,
                        "view " + std::to_string(i))) {
        return false;
      }
    }
    // Q.
    Element brute = BruteForceResult();
    if (!Ring::IsZero(Ring::Add(brute, Ring::Neg(q_)))) {
      *error = "maintained Q differs from brute-force triangle aggregate";
      return false;
    }
    return true;
  }

  /// Human-readable maintenance snapshot.
  std::string StatsString() const {
    std::string out = stats_.ToString();
    out += " threshold=" + std::to_string(theta_) +
           " live=" + std::to_string(live_total_);
    for (int i = 0; i < 3; ++i) {
      out += " h" + std::to_string(i) + "=" +
             std::to_string(rel_[i].heavy.size()) + "/l" + std::to_string(i) +
             "=" + std::to_string(rel_[i].light.size());
    }
    return out;
  }

 private:
  // Major rebalances are spaced by at least this many live-size steps, so
  // near-empty databases don't rebuild on every update.
  static constexpr size_t kMinMajorSpacing = 8;

  /// Bridges Stats and the partition state into the metric registry as
  /// pull-style gauges — the ivme counters become registry citizens without
  /// any hot-path recording (ApplyUpdate keeps its plain int64 increments;
  /// the gauge lambdas read them at scrape time).
  void RegisterGauges() {
    auto& reg = obs::MetricRegistry::Default();
    auto add = [&](const char* name, std::function<int64_t()> fn) {
      gauges_.emplace_back(name, reg.RegisterGauge(name, std::move(fn)));
    };
    add("ivme.updates", [this] { return stats_.updates; });
    add("ivme.minor_rebalances", [this] { return stats_.minor_rebalances; });
    add("ivme.minor_moved_tuples",
        [this] { return stats_.minor_moved_tuples; });
    add("ivme.major_rebalances", [this] { return stats_.major_rebalances; });
    add("ivme.threshold",
        [this] { return static_cast<int64_t>(theta_); });
    add("ivme.live_tuples",
        [this] { return static_cast<int64_t>(live_total_); });
  }

  void UnregisterGauges() {
    auto& reg = obs::MetricRegistry::Default();
    for (const auto& [name, token] : gauges_) {
      reg.UnregisterGauge(name, token);
    }
  }

  struct Rel {
    int relation = -1;
    Schema schema;     // (two variables, query layout)
    uint32_t px = 0;   // position of the partition variable X
    uint32_t py = 1;   // position of the other variable Y (== X of next rel)
    Schema xs, ys;     // singleton schemas {X}, {Y} for secondary indexes
    Relation<Ring> light, heavy;
    Relation<I64Ring> degree;     // X -> live tuple count (both parts)
    Relation<I64Ring> heavy_set;  // X -> 1 iff the value is in the heavy part
  };

  int SlotOf(int relation) const {
    for (int i = 0; i < 3; ++i) {
      if (rel_[i].relation == relation) return i;
    }
    assert(false && "unknown relation");
    return 0;
  }

  size_t ThresholdForLive(size_t m) const {
    return ThresholdFor(m, cfg_.epsilon, cfg_.min_threshold);
  }

  static Tuple OneTuple(const Value& v) {
    Tuple t;
    t.Append(v);
    return t;
  }

  /// A key of `rel` with partition value `x` and other value `y`, laid out
  /// in the relation's query schema order.
  static Tuple PairKey(const Rel& rel, const Value& x, const Value& y) {
    Tuple t;
    if (rel.px == 0) {
      t.Append(x);
      t.Append(y);
    } else {
      t.Append(y);
      t.Append(x);
    }
    return t;
  }

  static Tuple PairValues(const Value& a, const Value& b) {
    Tuple t;
    t.Append(a);
    t.Append(b);
    return t;
  }

  /// Moves every tuple of value `x` of relation `i` between the light and
  /// heavy parts, updating the two auxiliary views whose definition
  /// distinguishes K_i's parts: V_i = K_i^h ⋈ K_j^l and V_k = K_k^h ⋈ K_i^l.
  void MoveValue(int i, const Value& x, bool to_heavy) {
    const int j = (i + 1) % 3;
    const int k = (i + 2) % 3;
    Rel& ri = rel_[i];
    Rel& rj = rel_[j];
    Rel& rk = rel_[k];
    Tuple xt = OneTuple(x);

    Relation<Ring>& src = to_heavy ? ri.light : ri.heavy;
    Relation<Ring>& dst = to_heavy ? ri.heavy : ri.light;

    // Collect first: removals below would invalidate the probe result.
    std::vector<std::pair<Tuple, Element>> moved;
    if (const auto* slots = src.IndexOn(ri.xs).Probe(xt)) {
      moved.reserve(slots->size());
      for (uint32_t slot : *slots) {
        const Element& p = src.PayloadAt(slot);
        if (Ring::IsZero(p)) continue;
        moved.emplace_back(src.KeyAt(slot), p);
      }
    }
    // The σ_{Y_k = x} K_k^h enumeration is shared by every moved tuple.
    std::vector<std::pair<Value, Element>> khx;
    if (const auto* slots = rk.heavy.IndexOn(rk.ys).Probe(xt)) {
      khx.reserve(slots->size());
      for (uint32_t slot : *slots) {
        const Element& p = rk.heavy.PayloadAt(slot);
        if (Ring::IsZero(p)) continue;
        khx.emplace_back(rk.heavy.KeyAt(slot)[rk.px], p);
      }
    }

    for (auto& [key, p] : moved) {
      const Value& y = key[ri.py];
      // V_i = K_i^h ⋈ K_j^l gains the tuple when it enters the heavy part.
      if (const auto* slots = rj.light.IndexOn(rj.xs).Probe(OneTuple(y))) {
        for (uint32_t slot : *slots) {
          const Element& pj = rj.light.PayloadAt(slot);
          if (Ring::IsZero(pj)) continue;
          const Value& z = rj.light.KeyAt(slot)[rj.py];
          Element term = Ring::Mul(p, pj);
          view_[i].Add(PairValues(x, z),
                       to_heavy ? std::move(term) : Ring::Neg(term));
        }
      }
      // V_k = K_k^h ⋈ K_i^l loses it when it leaves the light part.
      for (const auto& [z, pk] : khx) {
        Element term = Ring::Mul(pk, p);
        view_[k].Add(PairValues(z, y),
                     to_heavy ? Ring::Neg(term) : std::move(term));
      }
      src.Add(key, Ring::Neg(p));
      dst.Add(std::move(key), std::move(p));
    }
    ri.heavy_set.Add(std::move(xt), to_heavy ? 1 : -1);
    ++stats_.minor_rebalances;
    stats_.minor_moved_tuples += static_cast<int64_t>(moved.size());
  }

  /// Recomputes θ from the live size, repartitions every relation by the
  /// new threshold and rebuilds the auxiliary views from scratch.
  void MajorRebalance() {
    theta_ = ThresholdForLive(live_total_);
    for (int i = 0; i < 3; ++i) {
      Rel& r = rel_[i];
      std::vector<std::pair<Tuple, Element>> all;
      all.reserve(r.light.size() + r.heavy.size());
      auto collect = [&](const Tuple& key, const Element& p) {
        all.emplace_back(key, p);
      };
      r.light.ForEach(collect);
      r.heavy.ForEach(collect);
      r.light = Relation<Ring>(r.schema);
      r.heavy = Relation<Ring>(r.schema);
      r.heavy_set = Relation<I64Ring>(r.xs);
      r.light.Reserve(all.size());
      for (auto& [key, p] : all) {
        Tuple xt = OneTuple(key[r.px]);
        const int64_t* d = r.degree.Find(xt);
        const bool heavy =
            d != nullptr && *d >= static_cast<int64_t>(theta_);
        if (heavy && !r.heavy_set.Contains(xt)) {
          r.heavy_set.Add(std::move(xt), 1);
        }
        (heavy ? r.heavy : r.light).Add(std::move(key), std::move(p));
      }
    }
    for (int i = 0; i < 3; ++i) {
      view_[i] = RecomputeView(i);
    }
    rebalance_base_ = live_total_;
    ++stats_.major_rebalances;
  }

  /// V_i = K_i^h ⋈ K_j^l, from scratch.
  Relation<Ring> RecomputeView(int i) const {
    const int j = (i + 1) % 3;
    const Rel& ri = rel_[i];
    const Rel& rj = rel_[j];
    Relation<Ring> out(view_schema_[i]);
    ri.heavy.ForEach([&](const Tuple& key, const Element& p) {
      const Value& x = key[ri.px];
      const Value& y = key[ri.py];
      if (const auto* slots = rj.light.IndexOn(rj.xs).Probe(OneTuple(y))) {
        for (uint32_t slot : *slots) {
          const Element& pj = rj.light.PayloadAt(slot);
          if (Ring::IsZero(pj)) continue;
          const Value& z = rj.light.KeyAt(slot)[rj.py];
          out.Add(PairValues(x, z), Ring::Mul(p, pj));
        }
      }
    });
    return out;
  }

  /// Q from scratch: full triangle join over both parts of every relation.
  Element BruteForceResult() const {
    const Rel& r0 = rel_[0];
    const Rel& r1 = rel_[1];
    const Rel& r2 = rel_[2];
    Element q = Ring::Zero();
    auto scan = [&](const Tuple& key, const Element& p0) {
      const Value& x = key[r0.px];
      const Value& y = key[r0.py];
      auto inner = [&](const Relation<Ring>& part1) {
        if (const auto* slots = part1.IndexOn(r1.xs).Probe(OneTuple(y))) {
          for (uint32_t slot : *slots) {
            const Element& p1 = part1.PayloadAt(slot);
            if (Ring::IsZero(p1)) continue;
            const Value& z = part1.KeyAt(slot)[r1.py];
            Tuple zx = PairKey(r2, z, x);
            Element acc = Ring::Zero();
            if (const Element* p = r2.light.Find(zx)) acc = *p;
            if (const Element* p = r2.heavy.Find(zx)) {
              Ring::AddInPlace(acc, *p);
            }
            if (!Ring::IsZero(acc)) {
              Ring::AddInPlace(q, Ring::Mul(p0, Ring::Mul(p1, acc)));
            }
          }
        }
      };
      inner(r1.light);
      inner(r1.heavy);
    };
    r0.light.ForEach(scan);
    r0.heavy.ForEach(scan);
    return q;
  }

  /// Ring-generic content equality of two relations (a ≡ b iff every key's
  /// payloads cancel).
  static bool SameContents(const Relation<Ring>& a, const Relation<Ring>& b,
                           std::string* error, const std::string& what) {
    bool ok = true;
    auto check = [&](const Relation<Ring>& lhs, const Relation<Ring>& rhs) {
      lhs.ForEach([&](const Tuple& key, const Element& p) {
        const Element* q = rhs.Find(key);
        Element other = q ? *q : Ring::Zero();
        if (!Ring::IsZero(Ring::Add(p, Ring::Neg(other)))) {
          ok = false;
          *error = what + " mismatch at " + key.ToString();
        }
      });
    };
    check(a, b);
    check(b, a);
    return ok;
  }

  Config cfg_;
  std::array<Rel, 3> rel_;
  std::array<Schema, 3> view_schema_;
  std::array<Relation<Ring>, 3> view_;
  Element q_ = Ring::Zero();
  size_t theta_ = 1;
  size_t live_total_ = 0;
  size_t rebalance_base_ = 0;
  Stats stats_;
  /// Registered gauge names + tokens, released in the destructor.
  std::vector<std::pair<std::string, uint64_t>> gauges_;
};

}  // namespace fivm::ivme

#endif  // FIVM_IVME_TRIANGLE_ENGINE_H_
