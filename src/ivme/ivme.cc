#include "src/ivme/triangle_engine.h"

#include <algorithm>
#include <cmath>

namespace fivm::ivme {

std::string Stats::ToString() const {
  return "updates=" + std::to_string(updates) +
         " minor=" + std::to_string(minor_rebalances) +
         " moved=" + std::to_string(minor_moved_tuples) +
         " major=" + std::to_string(major_rebalances);
}

size_t ThresholdFor(size_t m, double epsilon, size_t min_threshold) {
  double raw = std::pow(static_cast<double>(m), std::clamp(epsilon, 0.0, 1.0));
  auto rounded = static_cast<size_t>(std::llround(raw));
  return std::max(min_threshold, rounded);
}

}  // namespace fivm::ivme
