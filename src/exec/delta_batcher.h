#ifndef FIVM_EXEC_DELTA_BATCHER_H_
#define FIVM_EXEC_DELTA_BATCHER_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/view_tree.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/data/tuple.h"
#include "src/obs/metrics.h"
#include "src/plan/propagation_plan.h"
#include "src/rings/ring.h"
#include "src/util/fail_point.h"

namespace fivm::exec {

/// Ingestion buffer in front of the IVM engine: accumulates single-tuple
/// updates per relation, coalescing identical keys by ring addition as they
/// arrive (an insert/delete pair of the same key cancels before the engine
/// ever sees it), and emits one delta relation per touched relation,
/// reordered to the engine's leaf schema once per batch rather than once
/// per tuple. One coalesced leaf-to-root propagation then amortizes the
/// join/marginalize work the per-tuple path repeats per update.
///
/// Cross-relation ordering inside one batch window collapses to first-touch
/// order: Flush() emits relations in the order they first received an
/// update since the previous flush. Per-relation, coalescing makes the
/// emitted delta independent of arrival order (ring addition commutes).
template <typename Ring>
  requires RingPolicy<Ring>
class DeltaBatcher {
 public:
  using Element = typename Ring::Element;

  struct Batch {
    int relation;
    Relation<Ring> delta;  // keyed in the leaf's out-schema layout
  };

  /// `plans` (a compiled plan set, e.g. IvmEngine::plans()) must outlive
  /// the batcher: per relation the batcher holds a handle to its
  /// PropagationPlan, whose leaf schema is the layout Flush() emits.
  /// `capacity` is the number of buffered updates (counted pre-coalescing)
  /// after which Full() turns true and the caller should Flush(); 0 means
  /// "never full" (manual flushing only).
  DeltaBatcher(const plan::PlanSet* plans, size_t capacity)
      : tree_(&plans->tree()),
        capacity_(capacity),
        accums_(tree_->query().relation_count()),
        input_layouts_(tree_->query().relation_count()),
        in_batch_(tree_->query().relation_count(), 0) {
    plan_of_relation_.reserve(tree_->query().relation_count());
    for (int r = 0; r < tree_->query().relation_count(); ++r) {
      plan_of_relation_.push_back(&plans->ForRelation(r));
    }
    auto& reg = obs::MetricRegistry::Default();
    obs_flushes_ = reg.GetCounter("batcher.flushes");
    obs_pushed_ = reg.GetCounter("batcher.pushed_updates");
    obs_emitted_ = reg.GetCounter("batcher.emitted_keys");
    obs_cancelled_ = reg.GetCounter("batcher.cancelled_keys");
  }

  size_t capacity() const { return capacity_; }

  /// Declares the column layout in which `relation`'s updates arrive (e.g.
  /// a source feed ordered differently from the query relation). Keys are
  /// coalesced in the arrival layout; Flush() projects each *coalesced* key
  /// to the leaf schema once, instead of re-ordering per pushed tuple.
  /// `schema` must cover the same variable set as the query relation, and
  /// the relation's accumulator must be empty. The layout sticks across
  /// flushes.
  void SetInputSchema(int relation, Schema schema) {
    assert(schema.SameSet(tree_->query().relation(relation).schema));
    assert(!in_batch_[relation] &&
           "cannot change the input layout of a non-empty accumulator");
    input_layouts_[relation] = std::move(schema);
    accums_[relation] = Relation<Ring>();
  }

  /// Updates buffered since the last flush, before coalescing.
  size_t pending_updates() const { return pending_updates_; }

  bool Full() const { return capacity_ > 0 && pending_updates_ >= capacity_; }

  /// Buffers key → payload into `relation`'s accumulator. The key uses the
  /// query relation's schema layout, or the layout declared with
  /// SetInputSchema.
  void Push(int relation, const Tuple& key, Element payload) {
    if (pending_updates_ == 0) first_push_ticks_ = obs::TickClock::Now();
    Accumulator(relation).Add(key, std::move(payload));
    ++pending_updates_;
  }

  void PushInsert(int relation, const Tuple& key) {
    Push(relation, key, Ring::One());
  }

  void PushDelete(int relation, const Tuple& key) {
    Push(relation, key, Ring::Neg(Ring::One()));
  }

  void PushInserts(int relation, const std::vector<Tuple>& keys) {
    if (pending_updates_ == 0 && !keys.empty()) {
      first_push_ticks_ = obs::TickClock::Now();
    }
    Relation<Ring>& acc = Accumulator(relation);
    for (const Tuple& k : keys) acc.Add(k, Ring::One());
    pending_updates_ += keys.size();
  }

  /// TickClock timestamp of the first update buffered since the last
  /// Flush (0 when the window is empty). The serving bench derives
  /// update-visibility latency from it: publish time minus this stamp is
  /// how long the window's oldest update waited to become readable.
  uint64_t first_push_ticks() const { return first_push_ticks_; }

  /// Emits the coalesced per-relation deltas (first-touch order), dropping
  /// keys whose payloads cancelled to zero and reordering each delta to the
  /// engine's leaf out-schema in a single pass. Resets the batcher.
  std::vector<Batch> Flush() {
    // Failpoint before any accumulator is surrendered: a flush that throws
    // here leaves every buffered update in place, so the caller can simply
    // retry Flush() (see ingest::IngestService supervision).
    FIVM_FAIL_POINT("batcher.flush");
    std::vector<Batch> out;
    out.reserve(touched_.size());
    // Coalescing accounting, read off the accumulators before they are
    // surrendered: emitted = live keys, cancelled = keys whose payloads
    // summed to the ring zero, coalesced = updates folded into an existing
    // key. pushed/emitted gives the batch's coalesce ratio.
    size_t emitted = 0;
    size_t cancelled = 0;
    for (int r : touched_) {
      Relation<Ring>& acc = accums_[r];
      emitted += acc.size();
      cancelled += acc.KeyPoolSize() - acc.size();
      if (!acc.empty()) {
        const Schema& target = plan_of_relation_[r]->leaf_schema();
        out.push_back(Batch{r, Reordered(std::move(acc), target)});
      }
      accums_[r] = Relation<Ring>();
      in_batch_[r] = 0;
    }
    if (obs_flushes_ != nullptr && !touched_.empty()) {
      obs_flushes_->Inc();
      obs_pushed_->Add(pending_updates_);
      obs_emitted_->Add(emitted);
      obs_cancelled_->Add(cancelled);
    }
    touched_.clear();
    pending_updates_ = 0;
    first_push_ticks_ = 0;
    return out;
  }

 private:
  Relation<Ring>& Accumulator(int relation) {
    if (!in_batch_[relation]) {
      const Schema& layout = input_layouts_[relation].empty()
                                 ? tree_->query().relation(relation).schema
                                 : input_layouts_[relation];
      accums_[relation] = Relation<Ring>(layout);
      in_batch_[relation] = 1;
      touched_.push_back(relation);
    }
    return accums_[relation];
  }

  const ViewTree* tree_;
  /// Per-relation handle into the compiled plan set (flush target layout).
  std::vector<const plan::PropagationPlan*> plan_of_relation_;
  size_t capacity_;
  std::vector<Relation<Ring>> accums_;
  /// Per-relation arrival layout; empty = the query relation's schema.
  std::vector<Schema> input_layouts_;
  std::vector<char> in_batch_;
  std::vector<int> touched_;  // first-touch emission order
  size_t pending_updates_ = 0;
  uint64_t first_push_ticks_ = 0;  // visibility-latency stamp
  /// Registry counters, resolved once at construction (lookups are
  /// mutexed; recording is lock-free). Process-wide: every batcher feeds
  /// the same batcher.* series.
  obs::Counter* obs_flushes_ = nullptr;
  obs::Counter* obs_pushed_ = nullptr;
  obs::Counter* obs_emitted_ = nullptr;
  obs::Counter* obs_cancelled_ = nullptr;
};

}  // namespace fivm::exec

#endif  // FIVM_EXEC_DELTA_BATCHER_H_
