#ifndef FIVM_EXEC_THREAD_POOL_H_
#define FIVM_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace fivm::exec {

/// A fixed-size worker pool with a barrier-style round API: RunTasks()
/// hands a closed set of tasks to the workers, the calling thread
/// participates in draining the queue, and the call returns once every task
/// has finished (rethrowing the first task exception, if any).
///
/// Workers are started once and parked on a condition variable between
/// rounds, so dispatching a batch costs two lock handoffs per worker rather
/// than thread creation. A pool of size 1 starts no workers at all and
/// RunTasks degenerates to a plain sequential loop — the parallel executor
/// relies on this to make thread-count sweeps comparable.
class ThreadPool {
 public:
  /// `threads` is the total number of threads that execute a round,
  /// including the caller; `threads - 1` workers are spawned. 0 is treated
  /// as 1.
  explicit ThreadPool(size_t threads)
      : thread_count_(threads == 0 ? 1 : threads) {
    workers_.reserve(thread_count_ - 1);
    for (size_t i = 1; i < thread_count_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return thread_count_; }

  /// Runs every task to completion, caller thread included. Tasks of one
  /// round are claimed in index order; if any task throws, the first
  /// exception is rethrown here after the round completes.
  void RunTasks(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    if (workers_.empty()) {
      for (auto& t : tasks) t();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_ = std::move(tasks);
      next_ = 0;
      remaining_ = tasks_.size();
      error_ = nullptr;
    }
    work_cv_.notify_all();
    Drain();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    tasks_.clear();
    if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  }

  /// Convenience: runs fn(0) … fn(n-1) across the pool.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tasks.push_back([&fn, i] { fn(i); });
    }
    RunTasks(std::move(tasks));
  }

 private:
  /// Claims and runs queued tasks until the round's queue is exhausted.
  void Drain() {
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_ >= tasks_.size()) return;
        task = std::move(tasks_[next_++]);
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      bool round_done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        round_done = --remaining_ == 0;
      }
      if (round_done) done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [this] { return stop_ || next_ < tasks_.size(); });
        if (stop_) return;
      }
      Drain();
    }
  }

  const size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>> tasks_;
  size_t next_ = 0;
  size_t remaining_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace fivm::exec

#endif  // FIVM_EXEC_THREAD_POOL_H_
