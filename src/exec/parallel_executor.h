#ifndef FIVM_EXEC_PARALLEL_EXECUTOR_H_
#define FIVM_EXEC_PARALLEL_EXECUTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/ivm_engine.h"
#include "src/data/relation.h"
#include "src/data/relation_ops.h"
#include "src/data/tuple.h"
#include "src/exec/delta_batcher.h"
#include "src/exec/thread_pool.h"
#include "src/plan/propagation_plan.h"
#include "src/util/fail_point.h"

namespace fivm::exec {

/// Applies coalesced delta batches to an IvmEngine, hash-partitioning each
/// batch on the leaf's propagation join key across a worker pool. Every
/// shard runs the ordinary leaf-to-root propagation against the sibling
/// stores — which the propagation only reads — staging its per-store deltas
/// locally; the staged deltas are then merged into the shared stores in
/// shard order on the calling thread.
///
/// Correctness rests on two properties:
///  - Propagation is linear in the delta (it joins the delta against
///    sibling stores that the update does not modify), so the shard
///    results merged by ⊎ equal sequential application of the whole batch.
///  - The shard count is fixed by the pool and the partitioner hashes only
///    key values, so the merge order — and with it the final store state —
///    is deterministic, independent of thread scheduling.
///
/// Updates that fire indicator propagations are stateful (support counts)
/// and automatically fall back to the sequential engine path, as do batches
/// too small to amortize the fork/merge overhead.
///
/// The parallel path is all-or-nothing with respect to engine state: every
/// store delta — the leaf's included — is staged in worker-local buffers
/// and merged only after all tasks completed, so an exception thrown by a
/// worker task (see the "exec.task" failpoint) propagates out of ApplyBatch
/// with no store modified.
template <typename Ring>
  requires RingPolicy<Ring>
class ParallelExecutor {
 public:
  using Element = typename Ring::Element;

  /// Below this many coalesced delta keys a batch is applied sequentially:
  /// the propagation is cheaper than partitioning plus task dispatch.
  static constexpr size_t kMinParallelKeys = 64;

  struct Options {
    /// Number of shards a batch is split into. 0 = auto: the pool size
    /// capped by the hardware's concurrency — oversharding beyond physical
    /// cores pays staging and merge overhead with no wall-clock gain.
    /// Tests pin this explicitly to exercise multi-shard execution on any
    /// machine.
    size_t shards = 0;
  };

  /// `engine` and `pool` must outlive the executor. The executor holds a
  /// handle to the engine's compiled plan set: partition keys, leaf
  /// layouts and prewarm lists are read off the per-relation
  /// PropagationPlan instead of being re-derived per batch.
  ParallelExecutor(IvmEngine<Ring>* engine, ThreadPool* pool,
                   Options options = {})
      : engine_(engine),
        plans_(&engine->plans()),
        pool_(pool),
        options_(options) {
    auto& reg = obs::MetricRegistry::Default();
    obs_parallel_ = reg.GetCounter("exec.parallel_batches");
    obs_sequential_ = reg.GetCounter("exec.sequential_batches");
    obs_partition_ns_ = reg.GetHistogram("exec.partition_ns");
    obs_merge_ns_ = reg.GetHistogram("exec.merge_ns");
    obs_imbalance_ = reg.GetHistogram("exec.shard_imbalance_x100");
  }

  /// Invoked at the end of every ApplyBatch (parallel and sequential
  /// fallback alike), after all of the batch's store absorbs merged — the
  /// publish-per-batch hook of the serving layer: wiring
  /// serve::SnapshotServer::Publish here makes each applied batch visible
  /// to new snapshots atomically. Empty batches fire nothing.
  void SetPostBatchHook(std::function<void()> hook) {
    post_batch_ = std::move(hook);
  }

  size_t ShardCount() const {
    if (options_.shards > 0) return options_.shards;
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    return std::min(pool_->thread_count(), hw);
  }

  /// Applies one coalesced batch to `relation`. The delta may be keyed in
  /// the query relation's layout or the leaf's out-schema layout; the final
  /// store contents equal engine->ApplyDelta(relation, delta).
  void ApplyBatch(int relation, Relation<Ring> delta) {
    if (delta.empty()) return;
    const size_t shards = ShardCount();
    if (shards <= 1 || delta.size() < kMinParallelKeys ||
        engine_->HasIndicatorLeaves(relation)) {
      obs_sequential_->Inc();
      engine_->ApplyDelta(relation, std::move(delta));
      if (post_batch_) post_batch_();
      return;
    }
    obs_parallel_->Inc();

    const plan::PropagationPlan& plan = plans_->ForRelation(relation);
    const int leaf = plan.leaf();
    const Schema& leaf_schema = plan.leaf_schema();
    delta = Reordered(std::move(delta), leaf_schema);

    // The leaf's own store delta is staged through each shard's sink along
    // with the view deltas (stage_leaf below) rather than absorbed up
    // front: no shared store is written until every worker task has
    // finished, so a task that throws — an injected fault or a real one —
    // leaves the engine exactly as it was (no partial merge). The batch
    // content is consumed either way; retry policy lives in the caller
    // (see ingest::IngestService).
    const bool leaf_materialized = engine_->tree().node(leaf).materialized;

    // Partition on the first sibling join's key so entries sharing a join
    // partner land in the same shard; any partition is correct
    // (linearity), this one keeps each shard's probe working set disjoint.
    // Key and positions are precompiled into the plan.
    const auto& part_pos = plan.partition_positions();
    const size_t batch_keys = delta.size();
    const uint64_t part_t0 = obs::TickClock::Now();
    std::vector<Relation<Ring>> shard_delta;
    shard_delta.reserve(shards);
    // Presize each shard for its expected share of the batch (hash
    // partitioning spreads keys near-uniformly), so the partition loop
    // runs without mid-batch rehashes; the 2× slack absorbs skew.
    const size_t per_shard = delta.size() / shards * 2 + 16;
    for (size_t s = 0; s < shards; ++s) {
      shard_delta.emplace_back(leaf_schema);
      shard_delta[s].Reserve(per_shard);
    }
    auto pool = delta.TakePool();
    for (size_t i = 0; i < pool.keys.size(); ++i) {
      if (Ring::IsZero(pool.payloads[i])) continue;
      size_t s = TupleView(pool.keys[i], part_pos).Hash() % shards;
      shard_delta[s].Add(std::move(pool.keys[i]), std::move(pool.payloads[i]));
    }

    obs_partition_ns_->RecordTicks(obs::TickClock::Now() - part_t0);
    if (obs::Enabled()) {
      // Shard-size imbalance: largest shard over the perfectly-even share,
      // in percent (100 = perfectly balanced). The histogram's tail shows
      // how often hash partitioning leaves one worker with the batch.
      size_t largest = 0;
      for (const auto& sd : shard_delta) largest = std::max(largest, sd.size());
      obs_imbalance_->Record(largest * shards * 100 / std::max<size_t>(1, batch_keys));
    }

    // Lazy secondary-index construction is not thread-safe; build every
    // index the shards will probe — the plan's exact probe list — before
    // forking.
    engine_->PrewarmPropagationIndexes(relation);

    std::vector<std::vector<std::pair<int, Relation<Ring>>>> staged(shards);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      tasks.push_back([this, leaf, s, leaf_materialized, &shard_delta,
                       &staged] {
        FIVM_FAIL_POINT("exec.task");
        auto& out = staged[s];
        // The sink takes ownership of each store delta (no copy) and the
        // propagation continues reading from the staged slot. Scratch is
        // per task: concurrent plan executions must not share buffers.
        typename IvmEngine<Ring>::PropagationScratch scratch;
        engine_->PropagateDelta(
            leaf, std::move(shard_delta[s]),
            [&out](int node, Relation<Ring>&& d) -> const Relation<Ring>& {
              out.emplace_back(node, std::move(d));
              return out.back().second;
            },
            &scratch, /*stage_leaf=*/leaf_materialized);
      });
    }
    // Rethrows the first task exception only after every task finished its
    // round (ThreadPool barrier semantics), so no staged delta has touched
    // the shared stores when an exception escapes here.
    pool_->RunTasks(std::move(tasks));

    // Deterministic shard-ordered merge into the shared stores (large
    // staged deltas are absorbed in key-hash order, see AbsorbStoreDelta).
    const uint64_t merge_t0 = obs::TickClock::Now();
    for (size_t s = 0; s < shards; ++s) {
      for (auto& [node, d] : staged[s]) {
        engine_->AbsorbStoreDelta(node, std::move(d));
      }
    }
    obs_merge_ns_->RecordTicks(obs::TickClock::Now() - merge_t0);
    if (post_batch_) post_batch_();
  }

  /// Flushes `batcher` and applies every emitted batch in emission order.
  void Drain(DeltaBatcher<Ring>& batcher) {
    for (auto& b : batcher.Flush()) {
      ApplyBatch(b.relation, std::move(b.delta));
    }
  }

 private:
  IvmEngine<Ring>* engine_;
  const plan::PlanSet* plans_;  // the engine's compiled propagation plans
  ThreadPool* pool_;
  Options options_;
  std::function<void()> post_batch_;  // serving-layer publish hook
  /// Registry handles, resolved once at construction (process-wide exec.*
  /// series; recording is lock-free).
  obs::Counter* obs_parallel_ = nullptr;
  obs::Counter* obs_sequential_ = nullptr;
  obs::Histogram* obs_partition_ns_ = nullptr;
  obs::Histogram* obs_merge_ns_ = nullptr;
  obs::Histogram* obs_imbalance_ = nullptr;
};

/// True when the two engines (over the same view tree) hold content-equal
/// materialized stores — the invariant the parallel executor preserves
/// relative to sequential per-tuple application.
template <typename Ring>
bool StoresContentEqual(const IvmEngine<Ring>& a, const IvmEngine<Ring>& b) {
  const ViewTree& tree = a.tree();
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    int node = static_cast<int>(i);
    if (!tree.node(node).materialized) continue;
    if (!ContentEquals(a.store(node), b.store(node))) return false;
  }
  return true;
}

}  // namespace fivm::exec

#endif  // FIVM_EXEC_PARALLEL_EXECUTOR_H_
