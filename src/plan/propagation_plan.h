#ifndef FIVM_PLAN_PROPAGATION_PLAN_H_
#define FIVM_PLAN_PROPAGATION_PLAN_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/view_tree.h"
#include "src/data/op_specs.h"
#include "src/data/schema.h"
#include "src/util/small_vector.h"

namespace fivm::plan {

/// One resolved step of a compiled leaf-to-root propagation route. The step
/// sequence is executed against a running delta relation (the "left" side):
///  - kJoin: fused join+marginalize of the delta with the materialized store
///    of view `sibling`, per the precompiled JoinMargSpec (join kind, probe
///    positions, output assembly, fused store-marginalization placement are
///    all baked in);
///  - kMarginalize: marginalize per the precompiled MargSpec (store-level or
///    out-level marginalization that could not be fused into a join);
///  - kStoreDelta: the delta, in `node`'s store schema, is a store delta of
///    materialized view `node` — hand it to the absorb sink.
struct PropagationStep {
  enum class Kind : uint8_t { kJoin, kMarginalize, kStoreDelta };

  Kind kind = Kind::kStoreDelta;
  /// View-tree node this step belongs to (the store target for kStoreDelta).
  int node = -1;
  /// kJoin: view-tree node whose materialized store is the right side.
  int sibling = -1;
  JoinMargSpec join;  // kJoin
  MargSpec marg;      // kMarginalize
};

/// The compiled propagation route of one leaf: F-IVM's per-path delta
/// trigger (paper §4) resolved once at engine construction instead of
/// re-interpreted from the view tree on every delta. Replaces the seed
/// engine's per-update schema algebra (intersections/unions/position maps/
/// join-strategy choices) and the WalkPropagationJoins lockstep replay that
/// index prewarming used to depend on: the prewarm list and the partition
/// key now fall out of the same compiled steps the execution runs.
class PropagationPlan {
 public:
  /// A secondary index a propagation join will probe: the store of view
  /// `node` must be indexed on `key` before concurrent propagation.
  struct SecondaryProbe {
    int node = -1;
    Schema key;
  };

  /// Compiles the leaf-to-root route of `leaf` (a relation or indicator
  /// leaf). `is_trivial` must match the engine's LiftingMap (it decides
  /// which marginalized variables carry ring multiplications).
  static PropagationPlan Compile(const ViewTree& tree, int leaf,
                                 const TrivialLiftFn& is_trivial);

  int leaf() const { return leaf_; }
  /// Layout the delta must be in when propagation starts (the leaf's
  /// out-schema).
  const Schema& leaf_schema() const { return leaf_schema_; }
  const std::vector<PropagationStep>& steps() const { return steps_; }

  /// The join key on which the first sibling join matches delta tuples —
  /// the natural partitioning key for shard-parallel batch propagation.
  /// Restricted to the leaf's out-schema; falls back to the full out-schema
  /// when no sibling join shares a leaf variable.
  const Schema& partition_key() const { return partition_key_; }
  /// Positions of partition_key within leaf_schema (precomputed for the
  /// shard partitioner).
  const util::SmallVector<uint32_t, 6>& partition_positions() const {
    return partition_positions_;
  }

  /// Every secondary index the compiled joins probe (kSecondaryProbe steps,
  /// in step order). Full-key joins probe the primary index and Cartesian
  /// steps scan, so neither appears here.
  const std::vector<SecondaryProbe>& secondary_probes() const {
    return secondary_probes_;
  }

  /// True when every sibling store on the route is materialized — the
  /// precondition for executing the plan (guaranteed by
  /// ViewTree::ComputeMaterialization for updatable relations).
  bool executable() const { return executable_; }

  /// Human-readable dump of the compiled route — one line per step with
  /// view names, schemas, join kinds and probe keys — so a plan can be
  /// diffed against another engine's in bug reports.
  std::string DebugString(const ViewTree& tree) const;

  /// Annotated variant: `annotate(i)` is appended to the line of step `i`
  /// (0-based, in steps() order). IvmEngine::ExplainAnalyze uses this to
  /// turn the static route dump into a profile with observed per-step
  /// time/tuples/allocations.
  std::string DebugString(
      const ViewTree& tree,
      const std::function<std::string(size_t)>& annotate) const;

 private:
  int leaf_ = -1;
  Schema leaf_schema_;
  Schema partition_key_;
  util::SmallVector<uint32_t, 6> partition_positions_;
  std::vector<PropagationStep> steps_;
  std::vector<SecondaryProbe> secondary_probes_;
  bool executable_ = true;
};

/// The compiled plans of a whole view tree: one PropagationPlan per leaf
/// (base-relation and indicator leaves), addressable by query relation or by
/// leaf node. Ring-independent plain data; IvmEngine compiles one at
/// construction and the exec layer (DeltaBatcher / ParallelExecutor) holds
/// handles into it.
class PlanSet {
 public:
  PlanSet() = default;

  static PlanSet Compile(const ViewTree& tree,
                         const TrivialLiftFn& is_trivial);

  const ViewTree& tree() const { return *tree_; }

  /// Plan for updates to query relation `r` (its base leaf).
  const PropagationPlan& ForRelation(int r) const {
    return ForLeaf(tree_->LeafOfRelation(r));
  }

  /// Plan rooted at leaf node `leaf` (base or indicator). Only leaves have
  /// plans — propagation always starts at one.
  const PropagationPlan& ForLeaf(int leaf) const {
    assert(HasPlanForLeaf(leaf) && "no compiled plan: node is not a leaf");
    return plans_[static_cast<size_t>(plan_of_node_[leaf])];
  }

  bool HasPlanForLeaf(int leaf) const {
    return leaf >= 0 && static_cast<size_t>(leaf) < plan_of_node_.size() &&
           plan_of_node_[leaf] >= 0;
  }

  /// All compiled plans, in leaf-node order.
  const std::vector<PropagationPlan>& plans() const { return plans_; }

  std::string DebugString() const;

 private:
  const ViewTree* tree_ = nullptr;
  std::vector<PropagationPlan> plans_;
  std::vector<int> plan_of_node_;  // node id -> index into plans_, or -1
};

}  // namespace fivm::plan

#endif  // FIVM_PLAN_PROPAGATION_PLAN_H_
