#include "src/plan/propagation_plan.h"

#include <cassert>

#include "src/data/catalog.h"

namespace fivm::plan {
namespace {

std::string SchemaNames(const Catalog& catalog, const Schema& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += catalog.NameOf(s[i]);
  }
  out += "]";
  return out;
}

const char* JoinKindName(JoinKind k) {
  switch (k) {
    case JoinKind::kCartesian:
      return "cartesian-scan";
    case JoinKind::kFullKeyPrimary:
      return "full-key primary probe";
    case JoinKind::kSecondaryProbe:
      return "secondary probe";
  }
  return "?";
}

}  // namespace

PropagationPlan PropagationPlan::Compile(const ViewTree& tree, int leaf,
                                         const TrivialLiftFn& is_trivial) {
  PropagationPlan p;
  p.leaf_ = leaf;
  p.leaf_schema_ = tree.node(leaf).out_schema;

  // Replay — once — the exact schema algebra the seed interpreter performed
  // per delta: per path node, fold each sibling store into the running
  // delta, fusing the store-level marginalization into the last sibling
  // join, then marginalize leftovers, stage the store delta, and marginalize
  // the retained variables before handing the delta to the parent.
  Schema cur = p.leaf_schema_;
  int prev = leaf;
  int idx = tree.node(leaf).parent;
  while (idx >= 0) {
    const ViewTree::Node& n = tree.node(idx);
    Schema store_marg = n.marg_vars.Minus(n.retained_vars);
    int last_sibling = -1;
    for (int c : n.children) {
      if (c != prev) last_sibling = c;
    }
    for (int c : n.children) {
      if (c == prev) continue;
      if (!tree.node(c).materialized) p.executable_ = false;
      const Schema& sib = tree.node(c).store_schema;
      Schema marg = tree.node(c).retained_vars;
      if (c == last_sibling && !store_marg.empty()) {
        marg = marg.Union(store_marg);
        store_marg = Schema{};
      }
      PropagationStep step;
      step.kind = PropagationStep::Kind::kJoin;
      step.node = idx;
      step.sibling = c;
      step.join = JoinMargSpec::Compile(cur, sib, marg, is_trivial);
      if (step.join.kind == JoinKind::kSecondaryProbe) {
        p.secondary_probes_.push_back(SecondaryProbe{c, step.join.common});
      }
      if (p.partition_key_.empty()) {
        Schema usable = step.join.common.Intersect(p.leaf_schema_);
        if (!usable.empty()) p.partition_key_ = std::move(usable);
      }
      cur = step.join.out_schema;
      p.steps_.push_back(std::move(step));
    }
    if (!store_marg.empty()) {
      PropagationStep step;
      step.kind = PropagationStep::Kind::kMarginalize;
      step.node = idx;
      step.marg = MargSpec::Compile(cur, store_marg, is_trivial);
      cur = step.marg.out_schema;
      p.steps_.push_back(std::move(step));
    }
    if (n.materialized) {
      PropagationStep step;
      step.kind = PropagationStep::Kind::kStoreDelta;
      step.node = idx;
      p.steps_.push_back(std::move(step));
    }
    Schema out_marg = n.marg_vars.Intersect(n.retained_vars);
    if (!out_marg.empty()) {
      PropagationStep step;
      step.kind = PropagationStep::Kind::kMarginalize;
      step.node = idx;
      step.marg = MargSpec::Compile(cur, out_marg, is_trivial);
      cur = step.marg.out_schema;
      p.steps_.push_back(std::move(step));
    }
    prev = idx;
    idx = n.parent;
  }

  if (p.partition_key_.empty()) p.partition_key_ = p.leaf_schema_;
  p.partition_positions_ = p.leaf_schema_.PositionsOf(p.partition_key_);
  return p;
}

std::string PropagationPlan::DebugString(const ViewTree& tree) const {
  return DebugString(tree, nullptr);
}

std::string PropagationPlan::DebugString(
    const ViewTree& tree,
    const std::function<std::string(size_t)>& annotate) const {
  const Catalog& catalog = tree.query().catalog();
  std::string out = "plan for leaf " + tree.node(leaf_).name +
                    SchemaNames(catalog, leaf_schema_) +
                    (executable_ ? "" : "  (NOT executable: sibling "
                                        "store not materialized)") +
                    "\n  partition key " +
                    SchemaNames(catalog, partition_key_) + "\n";
  int i = 0;
  for (const PropagationStep& s : steps_) {
    out += "  " + std::to_string(++i) + ". ";
    switch (s.kind) {
      case PropagationStep::Kind::kJoin:
        out += "join ⊗ " + tree.node(s.sibling).name +
               SchemaNames(catalog, s.join.right_schema) + " [" +
               JoinKindName(s.join.kind);
        if (s.join.kind == JoinKind::kSecondaryProbe) {
          out += " on " + SchemaNames(catalog, s.join.common);
        }
        out += "]";
        if (!s.join.marg.empty()) {
          out += " fused ⊕" + SchemaNames(catalog, s.join.marg);
        }
        if (s.join.left_only_key) out += " (left-key ring fold)";
        out += " -> " + SchemaNames(catalog, s.join.out_schema);
        break;
      case PropagationStep::Kind::kMarginalize:
        out += "⊕" + SchemaNames(catalog, s.marg.in_schema.Minus(
                                              s.marg.out_schema)) +
               " -> " + SchemaNames(catalog, s.marg.out_schema);
        break;
      case PropagationStep::Kind::kStoreDelta:
        out += "store δ" + tree.node(s.node).name + " (absorb)";
        break;
    }
    if (annotate) out += annotate(static_cast<size_t>(i - 1));
    out += "\n";
  }
  return out;
}

PlanSet PlanSet::Compile(const ViewTree& tree,
                         const TrivialLiftFn& is_trivial) {
  PlanSet set;
  set.tree_ = &tree;
  set.plan_of_node_.assign(tree.nodes().size(), -1);
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const ViewTree::Node& n = tree.node(static_cast<int>(i));
    if (n.relation < 0 && n.indicator_for < 0) continue;
    set.plan_of_node_[i] = static_cast<int>(set.plans_.size());
    set.plans_.push_back(
        PropagationPlan::Compile(tree, static_cast<int>(i), is_trivial));
  }
  return set;
}

std::string PlanSet::DebugString() const {
  std::string out;
  for (const PropagationPlan& p : plans_) {
    out += p.DebugString(*tree_);
  }
  return out;
}

}  // namespace fivm::plan
