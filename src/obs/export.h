#ifndef FIVM_OBS_EXPORT_H_
#define FIVM_OBS_EXPORT_H_

/// Renderers for a MetricsSnapshot. Both work on the merged snapshot (never
/// the live shards), so they are pure string builders with no concurrency
/// concerns, and both compile unchanged when FIVM_METRICS=OFF (they just
/// render an empty snapshot).

#include <string>

#include "src/obs/metrics.h"

namespace fivm::obs {

/// One-line JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
///  "sum":..,"max":..,"mean":..,"p50":..,"p99":..,"p999":..},...}}
std::string ToJson(const MetricsSnapshot& snap);

/// Prometheus text exposition. Counters/gauges one sample per line;
/// histograms as summary-style quantile series plus _sum/_count/_max.
/// Metric names are sanitized to [a-zA-Z0-9_:].
std::string ToPrometheus(const MetricsSnapshot& snap);

}  // namespace fivm::obs

#endif  // FIVM_OBS_EXPORT_H_
