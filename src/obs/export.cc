#include "src/obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>

namespace fivm::obs {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  *out += buf;
}

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(256 + 64 * (snap.counters.size() + snap.gauges.size()) +
              160 * snap.histograms.size());
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += ",\"mean\":";
    AppendDouble(&out, h.Mean());
    out += ",\"p50\":";
    AppendDouble(&out, h.p50);
    out += ",\"p99\":";
    AppendDouble(&out, h.p99);
    out += ",\"p999\":";
    AppendDouble(&out, h.p999);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string ToPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " summary\n";
    const struct {
      const char* q;
      double v;
    } quantiles[] = {{"0.5", h.p50}, {"0.99", h.p99}, {"0.999", h.p999}};
    for (const auto& q : quantiles) {
      out += n + "{quantile=\"" + q.q + "\"} ";
      AppendDouble(&out, q.v);
      out += '\n';
    }
    out += n + "_sum " + std::to_string(h.sum) + '\n';
    out += n + "_count " + std::to_string(h.count) + '\n';
    out += n + "_max " + std::to_string(h.max) + '\n';
  }
  return out;
}

}  // namespace fivm::obs
