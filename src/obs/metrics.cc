#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "src/util/memory_tracker.h"

namespace fivm::obs {

#if FIVM_METRICS_ENABLED

namespace detail {

std::atomic<bool> g_runtime_enabled{true};

uint32_t AssignThreadShard() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void SetEnabled(bool on) {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

double TickClock::NsPerTick() {
#if defined(__x86_64__)
  static const double ns_per_tick = [] {
    // Calibrate the TSC against steady_clock over a ~2ms busy-wait. Done
    // once per process, cached in the function-local static; the record
    // path then converts with one multiply.
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = __rdtsc();
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      if (t1 - t0 >= std::chrono::milliseconds(2)) {
        const uint64_t c1 = __rdtsc();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        const uint64_t dt = c1 - c0;
        return dt > 0 ? ns / static_cast<double>(dt) : 1.0;
      }
    }
  }();
  return ns_per_tick;
#else
  return 1.0;  // Now() already returns nanoseconds
#endif
}

void Histogram::MergeBuckets(uint64_t out[kNumBuckets]) const {
  for (size_t b = 0; b < kNumBuckets; ++b) out[b] = 0;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
}

double Histogram::PercentileFrom(const uint64_t buckets[kNumBuckets],
                                 uint64_t count, double p) {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the target is the ceil(p% · count)-th smallest sample.
  uint64_t rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count))));
  if (rank > count) rank = count;
  uint64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t c = buckets[b];
    if (cum + c >= rank) {
      const double lo = static_cast<double>(BucketLo(b));
      const double hi = static_cast<double>(BucketHi(b));
      const double within = static_cast<double>(rank - cum);  // 1..c
      return lo + (hi - lo) * (within - 0.5) / static_cast<double>(c);
    }
    cum += c;
  }
  return static_cast<double>(BucketHi(kNumBuckets - 1));
}

double Histogram::Percentile(double p) const {
  uint64_t merged[kNumBuckets];
  MergeBuckets(merged);
  uint64_t count = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) count += merged[b];
  return PercentileFrom(merged, count, p);
}

HistogramSnapshot Histogram::Snap() const {
  uint64_t merged[kNumBuckets];
  MergeBuckets(merged);
  HistogramSnapshot s;
  for (size_t b = 0; b < kNumBuckets; ++b) s.count += merged[b];
  s.sum = Sum();
  s.max = MaxValue();
  s.p50 = PercentileFrom(merged, s.count, 50.0);
  s.p99 = PercentileFrom(merged, s.count, 99.0);
  s.p999 = PercentileFrom(merged, s.count, 99.9);
  return s;
}

struct MetricRegistry::Impl {
  mutable std::mutex mu;
  // std::map: sorted scrapes for free, and node stability keeps the
  // returned Counter*/Histogram* valid for the registry's lifetime.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  struct Gauge {
    uint64_t token = 0;
    std::function<int64_t()> fn;
  };
  std::map<std::string, Gauge> gauges;
  std::atomic<uint64_t> next_token{1};
};

MetricRegistry::MetricRegistry() : impl_(new Impl) {}
MetricRegistry::~MetricRegistry() { delete impl_; }

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* reg = [] {
    auto* r = new MetricRegistry;  // leaked: metrics outlive static dtors
    r->RegisterGauge("memory.current_bytes",
                     [] { return util::MemoryTracker::CurrentBytes(); });
    r->RegisterGauge("memory.peak_bytes",
                     [] { return util::MemoryTracker::PeakBytes(); });
    r->RegisterGauge("memory.allocations",
                     [] { return util::MemoryTracker::AllocationCount(); });
    r->RegisterGauge("memory.rehashes",
                     [] { return util::MemoryTracker::RehashCount(); });
    return r;
  }();
  return *reg;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricRegistry::RegisterGauge(const std::string& name,
                                       std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t token = impl_->next_token.fetch_add(1, std::memory_order_relaxed);
  impl_->gauges[name] = Impl::Gauge{token, std::move(fn)};
  return token;
}

void MetricRegistry::UnregisterGauge(const std::string& name,
                                     uint64_t token) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end() && it->second.token == token) {
    impl_->gauges.erase(it);
  }
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  // Copy the gauge callbacks out under the lock, poll them outside it: a
  // gauge callback may itself touch the registry (or take arbitrary time).
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauges;
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    snap.counters.reserve(impl_->counters.size());
    for (const auto& [name, c] : impl_->counters) {
      snap.counters.emplace_back(name, c->Value());
    }
    snap.histograms.reserve(impl_->histograms.size());
    for (const auto& [name, h] : impl_->histograms) {
      snap.histograms.emplace_back(name, h->Snap());
    }
    gauges.reserve(impl_->gauges.size());
    for (const auto& [name, g] : impl_->gauges) {
      gauges.emplace_back(name, g.fn);
    }
  }
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, fn] : gauges) {
    snap.gauges.emplace_back(name, fn ? fn() : 0);
  }
  return snap;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
}

namespace {
// Resolved at static-init time (Default() is a function-local static, so
// cross-TU order is safe): the first sampled probe of the process — which
// may sit inside an allocation-counted or timed region — performs no
// registry lookup and no heap allocation.
Histogram* const g_probe_hist =
    MetricRegistry::Default().GetHistogram("group_table.probe_groups");
}  // namespace

void SampleProbeLength(uint32_t groups) { g_probe_hist->Record(groups); }

#else  // !FIVM_METRICS_ENABLED

namespace {
Counter g_dummy_counter;
Histogram g_dummy_histogram;
}  // namespace

struct MetricRegistry::Impl {};
MetricRegistry::MetricRegistry() : impl_(nullptr) {}
MetricRegistry::~MetricRegistry() {}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry reg;
  return reg;
}

Counter* MetricRegistry::GetCounter(const std::string&) {
  return &g_dummy_counter;
}
Histogram* MetricRegistry::GetHistogram(const std::string&) {
  return &g_dummy_histogram;
}
uint64_t MetricRegistry::RegisterGauge(const std::string&,
                                       std::function<int64_t()>) {
  return 0;
}
void MetricRegistry::UnregisterGauge(const std::string&, uint64_t) {}
MetricsSnapshot MetricRegistry::Snapshot() const { return {}; }
void MetricRegistry::ResetAll() {}

void SampleProbeLength(uint32_t) {}

#endif  // FIVM_METRICS_ENABLED

}  // namespace fivm::obs
