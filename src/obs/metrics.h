#ifndef FIVM_OBS_METRICS_H_
#define FIVM_OBS_METRICS_H_

/// Engine-wide observability: a registry of named counters, gauges and
/// log-bucketed histograms with thread-sharded lock-free recording, plus
/// scoped RAII timers over a calibrated tick clock. Every layer of the
/// engine records into this subsystem (plan steps, the batcher, the
/// parallel executor, the hash core, the IVM^ε rebalancer); scrapes merge
/// the shards into a MetricsSnapshot that src/obs/export.h renders as JSON
/// or Prometheus text exposition, and IvmEngine::ExplainAnalyze() renders
/// per plan step.
///
/// Cost model. The record path is allocation-free and lock-free: callers
/// hold Counter*/Histogram* obtained once (registry lookups are mutexed and
/// belong at construction time, never per record), and a record is one
/// relaxed fetch_add on a per-thread shard (tests/zero_alloc_probe_test.cc
/// proves the no-allocation property). Timers read the TSC and convert with
/// a calibration cached at first use, so a timestamp costs ~10ns, not a
/// clock_gettime syscall. Two switches exist:
///  - compile time: -DFIVM_METRICS=OFF (CMake) defines FIVM_METRICS_OFF and
///    compiles every type here down to empty no-op stubs — instrumented
///    call sites vanish entirely;
///  - run time: SetEnabled(false) short-circuits recording behind one
///    relaxed atomic load.
/// Both default to on; the figure-bench A/B (metrics-on vs OFF binaries)
/// bounds the on-cost at ≤2% on the fig7/fig13 hot loops.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#if defined(FIVM_METRICS_OFF)
#define FIVM_METRICS_ENABLED 0
#else
#define FIVM_METRICS_ENABLED 1
#endif

#if FIVM_METRICS_ENABLED && defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace fivm::obs {

/// Merged, point-in-time view of one histogram (always available, even in
/// the compiled-out build, so exporters and benches compile unchanged).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;   // of recorded values (ns for timer histograms)
  uint64_t max = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  double Mean() const { return count ? static_cast<double>(sum) / count : 0; }
};

/// One scrape of the whole registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Shards per metric. Each recording thread hashes to one shard; shards are
/// cache-line separated so concurrent recorders do not false-share. More
/// threads than shards merely share fetch_add targets (still correct).
inline constexpr size_t kShards = 8;

#if FIVM_METRICS_ENABLED

namespace detail {
extern std::atomic<bool> g_runtime_enabled;
uint32_t AssignThreadShard();
inline uint32_t ThreadShard() {
  static thread_local uint32_t shard = AssignThreadShard();
  return shard;
}
}  // namespace detail

/// Runtime switch (default on). Checked with one relaxed load per record.
inline bool Enabled() {
  return detail::g_runtime_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

/// Cheap timestamps for the RAII timers: the TSC on x86-64 (≈10ns per
/// read), converted to nanoseconds through a steady_clock calibration
/// cached at first use (the "cached tick" fast path — no clock_gettime on
/// the record path). Elsewhere falls back to steady_clock nanoseconds
/// directly (ticks == ns).
class TickClock {
 public:
  static uint64_t Now() {
#if defined(__x86_64__)
    return __rdtsc();
#else
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  /// Nanoseconds per tick, calibrated against steady_clock once per
  /// process (first call busy-waits ~2ms; subsequent calls read a cached
  /// constant).
  static double NsPerTick();

  static uint64_t ToNanos(uint64_t ticks) {
    return static_cast<uint64_t>(static_cast<double>(ticks) * NsPerTick());
  }
};

/// Monotonic counter. Add() is one relaxed fetch_add on the caller's
/// thread shard; Value() merges the shards.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!Enabled()) return;
    shards_[detail::ThreadShard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Fixed-size log-linear histogram (HdrHistogram-style): values below 2^4
/// get exact buckets; above, each power of two splits into 2^kSubBits
/// sub-buckets, bounding the relative quantile error at 2^-kSubBits
/// (12.5%). 512 buckets cover the full uint64 range, so recording never
/// clamps, branches on range, or allocates. Recording is one relaxed
/// fetch_add per shard bucket; percentiles interpolate inside the bucket
/// holding the nearest-rank sample.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr size_t kNumBuckets = 512;
  static constexpr uint64_t kLinearMax = uint64_t{1} << (kSubBits + 1);

  static size_t BucketOf(uint64_t v) {
    if (v < kLinearMax) return static_cast<size_t>(v);
    int msb = 63 - std::countl_zero(v);
    size_t sub = (v >> (msb - kSubBits)) & ((size_t{1} << kSubBits) - 1);
    return ((static_cast<size_t>(msb) - kSubBits) << kSubBits) + sub +
           (size_t{1} << kSubBits);
  }

  /// Smallest value mapping to bucket `b`.
  static uint64_t BucketLo(size_t b) {
    if (b < kLinearMax) return b;
    size_t base = b - (size_t{1} << kSubBits);
    size_t msb = (base >> kSubBits) + kSubBits;
    if (msb >= 64) return ~uint64_t{0};
    uint64_t sub = base & ((size_t{1} << kSubBits) - 1);
    return (uint64_t{1} << msb) + (sub << (msb - kSubBits));
  }

  /// Largest value mapping to bucket `b`.
  static uint64_t BucketHi(size_t b) {
    uint64_t next = BucketLo(b + 1);
    return next == ~uint64_t{0} ? next : next - 1;
  }

  void Record(uint64_t v) {
    if (!Enabled()) return;
    Shard& s = shards_[detail::ThreadShard() & (kShards - 1)];
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m && !s.max.compare_exchange_weak(m, v,
                                                 std::memory_order_relaxed)) {
    }
  }

  /// Records a TickClock interval, converted to nanoseconds.
  void RecordTicks(uint64_t ticks) {
    if (!Enabled()) return;
    Record(TickClock::ToNanos(ticks));
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.count.load(std::memory_order_relaxed);
    }
    return total;
  }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.sum.load(std::memory_order_relaxed);
    }
    return total;
  }

  uint64_t MaxValue() const {
    uint64_t m = 0;
    for (const Shard& s : shards_) {
      uint64_t v = s.max.load(std::memory_order_relaxed);
      if (v > m) m = v;
    }
    return m;
  }

  /// Nearest-rank percentile (`p` in [0,100]) with linear interpolation
  /// inside the winning bucket: the returned value lies in the bounds of
  /// the bucket that holds the p-th sorted sample.
  double Percentile(double p) const;

  HistogramSnapshot Snap() const;

  void Reset() {
    for (Shard& s : shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  void MergeBuckets(uint64_t out[kNumBuckets]) const;
  static double PercentileFrom(const uint64_t buckets[kNumBuckets],
                               uint64_t count, double p);

  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Shard shards_[kShards];
};

#else  // !FIVM_METRICS_ENABLED — every type is an empty no-op stub.

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}

class TickClock {
 public:
  static uint64_t Now() { return 0; }
  static double NsPerTick() { return 1.0; }
  static uint64_t ToNanos(uint64_t) { return 0; }
};

class Counter {
 public:
  void Add(uint64_t) {}
  void Inc() {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr size_t kNumBuckets = 512;
  static size_t BucketOf(uint64_t) { return 0; }
  static uint64_t BucketLo(size_t) { return 0; }
  static uint64_t BucketHi(size_t) { return 0; }
  void Record(uint64_t) {}
  void RecordTicks(uint64_t) {}
  uint64_t Count() const { return 0; }
  uint64_t Sum() const { return 0; }
  uint64_t MaxValue() const { return 0; }
  double Percentile(double) const { return 0; }
  HistogramSnapshot Snap() const { return {}; }
  void Reset() {}
};

#endif  // FIVM_METRICS_ENABLED

/// RAII wall-time recorder: measures the scope and records nanoseconds
/// into `h`. A null histogram (or disabled metrics) records nothing and
/// reads no clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) {
#if FIVM_METRICS_ENABLED
    if (h != nullptr && Enabled()) {
      h_ = h;
      start_ = TickClock::Now();
    }
#else
    (void)h;
#endif
  }
  ~ScopedTimer() {
#if FIVM_METRICS_ENABLED
    if (h_ != nullptr) h_->RecordTicks(TickClock::Now() - start_);
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#if FIVM_METRICS_ENABLED
  Histogram* h_ = nullptr;
  uint64_t start_ = 0;
#endif
};

/// Process-wide registry of named metrics. Lookup (mutexed) belongs at
/// construction time; the returned pointers stay valid for the process
/// lifetime and record lock-free. Gauges are pull-style callbacks polled at
/// scrape — the bridge that turns the MemoryTracker and ivme::Stats
/// singletons into thin adapters (Default() pre-registers the memory.*
/// gauges). Re-registering a gauge name replaces the callback and returns a
/// fresh token; UnregisterGauge removes the gauge only when the token still
/// matches, so a dying owner cannot tear down its replacement.
class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide default registry, with the MemoryTracker gauges
  /// (memory.current_bytes/peak_bytes/allocations/rehashes) pre-registered.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  uint64_t RegisterGauge(const std::string& name,
                         std::function<int64_t()> fn);
  void UnregisterGauge(const std::string& name, uint64_t token);

  MetricsSnapshot Snapshot() const;

  /// Resets every counter and histogram (gauges are pull-style and have no
  /// state to reset). For benches that want per-phase deltas.
  void ResetAll();

 private:
  struct Impl;
  Impl* impl_;  // raw pimpl keeps the header free of map/mutex includes
};

/// Cold path of the sampled GroupTable probe-length instrumentation:
/// records `groups` (control groups scanned by one probe) into the
/// registry histogram "group_table.probe_groups". Call only on sampled
/// probes — the sampling test itself lives in FIVM_OBS_SAMPLE_PROBE so the
/// hot path pays one predictable branch on a hash already in a register.
/// cold + noinline keep the call sequence (register saves and all) out of
/// the probe loops' hot text: without them, inlined Find/FindOrInsert
/// bodies pay the call's register pressure even on unsampled probes.
#if defined(__GNUC__)
__attribute__((cold, noinline))
#endif
void SampleProbeLength(uint32_t groups);

#if FIVM_METRICS_ENABLED
/// 1-in-128 deterministic sampling keyed on the probe's H2 control tag.
/// The tag is the one hash-derived value the probe loop already keeps in a
/// register (every group scan matches against it), so the test adds zero
/// register pressure to the inlined Find/FindOrInsert bodies — keying on
/// spare high hash bits instead keeps `hash` live across the whole loop
/// at every inlined probe site. Per-key determinism:
/// a key either always samples or never does; tag-0 keys are a uniform
/// 1/128 subsample of a hashed key population, and probe length depends on
/// H1/occupancy, not the tag value.
#define FIVM_OBS_SAMPLE_PROBE(h2_tag, groups)                    \
  do {                                                           \
    if ((h2_tag) == 0) [[unlikely]] {                            \
      ::fivm::obs::SampleProbeLength(                            \
          static_cast<uint32_t>(groups));                        \
    }                                                            \
  } while (0)
#else
#define FIVM_OBS_SAMPLE_PROBE(h2_tag, groups) \
  do {                                        \
  } while (0)
#endif

}  // namespace fivm::obs

#endif  // FIVM_OBS_METRICS_H_
