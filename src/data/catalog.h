#ifndef FIVM_DATA_CATALOG_H_
#define FIVM_DATA_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/data/schema.h"
#include "src/util/flat_hash_map.h"
#include "src/util/hash.h"

namespace fivm {

/// Maps human-readable variable (attribute) names to dense VarIds and back.
/// One catalog per query workload; shared by the query, the variable order,
/// and the view tree.
class Catalog {
 public:
  /// Returns the id for `name`, creating it if unseen.
  VarId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidVar if it was never interned.
  VarId Lookup(std::string_view name) const;

  const std::string& NameOf(VarId id) const;

  /// Interns a list of names into a Schema, in order.
  Schema MakeSchema(std::initializer_list<std::string_view> names);
  Schema MakeSchema(const std::vector<std::string>& names);

  size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    uint64_t operator()(const std::string& s) const {
      return util::HashString(s);
    }
  };

  std::vector<std::string> names_;
  util::FlatHashMap<std::string, VarId, StringHash> ids_;
};

}  // namespace fivm

#endif  // FIVM_DATA_CATALOG_H_
