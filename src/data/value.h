#ifndef FIVM_DATA_VALUE_H_
#define FIVM_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "src/util/hash.h"

namespace fivm {

/// A typed scalar key value: either a 64-bit integer or a double. Strings are
/// dictionary-encoded to integers at load time (util::StringDictionary), so
/// the key space stays fixed-width.
///
/// Values appear in tuple keys and feed lifting functions; they are compared
/// and hashed bitwise (two doubles are equal iff their bit patterns match,
/// which is the right semantics for group-by keys).
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kDouble = 1 };

  constexpr Value() : kind_(Kind::kInt), i_(0) {}

  static constexpr Value Int(int64_t v) {
    Value x;
    x.kind_ = Kind::kInt;
    x.i_ = v;
    return x;
  }

  static constexpr Value Double(double v) {
    Value x;
    x.kind_ = Kind::kDouble;
    x.d_ = v;
    return x;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }

  /// Integer view; only valid for kInt values.
  int64_t AsInt() const { return i_; }

  /// Numeric view; converts integers to double. This is what lifting
  /// functions use, so SUM(B) works regardless of the column type.
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(i_) : d_;
  }

  bool operator==(const Value& o) const {
    return kind_ == o.kind_ && i_ == o.i_;  // bitwise compare via the union
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  bool operator<(const Value& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    if (kind_ == Kind::kInt) return i_ < o.i_;
    return d_ < o.d_;
  }

  constexpr uint64_t Hash() const {
    return util::Mix64(static_cast<uint64_t>(i_) ^
                       (static_cast<uint64_t>(kind_) << 62));
  }

  std::string ToString() const;

 private:
  Kind kind_;
  union {
    int64_t i_;
    double d_;
  };
};

// Tuples copy keys with memcpy fast paths (util::SmallVector) and Relation
// snapshots entry vectors wholesale; both rely on Value staying trivially
// copyable.
static_assert(std::is_trivially_copyable_v<Value>);

}  // namespace fivm

#endif  // FIVM_DATA_VALUE_H_
