#include "src/data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fivm::csv {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

bool ParseLine(const std::string& line, const std::vector<ColumnType>& types,
               const LoadOptions& options, Tuple* out, std::string* error) {
  std::vector<std::string> fields = SplitLine(line, options.delimiter);
  if (fields.size() != types.size()) {
    if (error) {
      *error = "expected " + std::to_string(types.size()) + " fields, got " +
               std::to_string(fields.size());
    }
    return false;
  }
  Tuple t;
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    char* end = nullptr;
    switch (types[i]) {
      case ColumnType::kInt: {
        long long v = std::strtoll(f.c_str(), &end, 10);
        if (end == f.c_str() || *end != '\0') {
          if (error) *error = "bad integer '" + f + "'";
          return false;
        }
        t.Append(Value::Int(v));
        break;
      }
      case ColumnType::kDouble: {
        double v = std::strtod(f.c_str(), &end);
        if (end == f.c_str() || *end != '\0') {
          if (error) *error = "bad double '" + f + "'";
          return false;
        }
        t.Append(Value::Double(v));
        break;
      }
      case ColumnType::kString: {
        if (options.dictionary == nullptr) {
          if (error) *error = "string column requires a dictionary";
          return false;
        }
        t.Append(Value::Int(options.dictionary->Intern(f)));
        break;
      }
    }
  }
  *out = std::move(t);
  return true;
}

bool LoadTuples(const std::string& path, const std::vector<ColumnType>& types,
                const LoadOptions& options, std::vector<Tuple>* out,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  size_t line_no = 0;
  bool skip_header = options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (line.empty()) continue;
    Tuple t;
    std::string parse_error;
    if (!ParseLine(line, types, options, &t, &parse_error)) {
      if (error) {
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    out->push_back(std::move(t));
  }
  return true;
}

std::string FormatTuple(const Tuple& tuple,
                        const util::StringDictionary* dictionary,
                        char delimiter) {
  std::string out;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    if (dictionary != nullptr && tuple[i].is_int() &&
        tuple[i].AsInt() >= 0 &&
        static_cast<size_t>(tuple[i].AsInt()) < dictionary->size()) {
      out += dictionary->Decode(tuple[i].AsInt());
    } else {
      out += tuple[i].ToString();
    }
  }
  return out;
}

bool SaveRelation(const std::string& path, const Relation<I64Ring>& relation,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  relation.ForEach([&](const Tuple& t, const int64_t& m) {
    out << FormatTuple(t) << ',' << m << '\n';
  });
  out.flush();
  if (!out) {
    if (error) *error = "write error on " + path;
    return false;
  }
  return true;
}

}  // namespace fivm::csv
