#ifndef FIVM_DATA_TUPLE_H_
#define FIVM_DATA_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/data/value.h"
#include "src/util/hash.h"
#include "src/util/small_vector.h"

namespace fivm {

/// An ordered list of values — the key of a relation entry. The empty tuple
/// `()` is the key of nullary (fully aggregated) views.
class Tuple {
 public:
  Tuple() = default;

  Tuple(std::initializer_list<Value> vals) : values_(vals) {}

  explicit Tuple(util::SmallVector<Value, 4> vals)
      : values_(std::move(vals)) {}

  /// Convenience constructor for all-integer keys (tests, examples).
  static Tuple Ints(std::initializer_list<int64_t> ints) {
    Tuple t;
    t.values_.reserve(ints.size());
    for (int64_t v : ints) t.values_.push_back(Value::Int(v));
    return t;
  }

  static const Tuple& Empty();

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void Append(const Value& v) { values_.push_back(v); }

  /// Projects this tuple onto the given positions, in the given order.
  template <typename Positions>
  Tuple Project(const Positions& positions) const {
    Tuple out;
    out.values_.reserve(positions.size());
    for (auto p : positions) out.values_.push_back(values_[p]);
    return out;
  }

  /// Concatenation: this tuple followed by `other`.
  Tuple Concat(const Tuple& other) const {
    Tuple out;
    out.values_.reserve(values_.size() + other.values_.size());
    for (const Value& v : values_) out.values_.push_back(v);
    for (const Value& v : other.values_) out.values_.push_back(v);
    return out;
  }

  bool operator==(const Tuple& o) const { return values_ == o.values_; }
  bool operator!=(const Tuple& o) const { return !(*this == o); }
  bool operator<(const Tuple& o) const { return values_ < o.values_; }

  uint64_t Hash() const {
    uint64_t h = 0x51ed2701a3bf2dceULL;
    for (const Value& v : values_) h = util::HashCombine(h, v.Hash());
    return h;
  }

  std::string ToString() const;

  const Value* begin() const { return values_.begin(); }
  const Value* end() const { return values_.end(); }

 private:
  util::SmallVector<Value, 4> values_;
};

struct TupleHash {
  uint64_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace fivm

#endif  // FIVM_DATA_TUPLE_H_
