#ifndef FIVM_DATA_TUPLE_H_
#define FIVM_DATA_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/data/value.h"
#include "src/util/hash.h"
#include "src/util/small_vector.h"

namespace fivm {

/// An ordered list of values — the key of a relation entry. The empty tuple
/// `()` is the key of nullary (fully aggregated) views.
///
/// The 64-bit hash is cached inside the tuple and maintained incrementally:
/// it is a left-fold of util::HashCombine over the value hashes, so Append
/// and Concat extend it in O(1) per appended value and hash-map probes and
/// inserts never re-scan the values. The invariant "hash_ == fold over
/// values_" holds at all times; there is deliberately no mutable access to
/// individual values.
class Tuple {
 public:
  Tuple() = default;

  Tuple(std::initializer_list<Value> vals) : values_(vals) {
    hash_ = FoldHash(kHashSeed, values_.begin(), values_.end());
  }

  explicit Tuple(util::SmallVector<Value, 4> vals) : values_(std::move(vals)) {
    hash_ = FoldHash(kHashSeed, values_.begin(), values_.end());
  }

  /// Convenience constructor for all-integer keys (tests, examples).
  static Tuple Ints(std::initializer_list<int64_t> ints) {
    Tuple t;
    t.values_.reserve(ints.size());
    for (int64_t v : ints) t.Append(Value::Int(v));
    return t;
  }

  static const Tuple& Empty();

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }

  void Append(const Value& v) {
    values_.push_back(v);
    hash_ = util::HashCombine(hash_, v.Hash());
  }

  /// Resets to the empty tuple, keeping any allocated capacity. This is what
  /// makes a scratch key reusable across hot-loop iterations.
  void Clear() {
    values_.clear();
    hash_ = kHashSeed;
  }

  /// Projects this tuple onto the given positions, in the given order.
  template <typename Positions>
  Tuple Project(const Positions& positions) const {
    Tuple out;
    out.values_.reserve(positions.size());
    for (auto p : positions) out.Append(values_[p]);
    return out;
  }

  /// Concatenation: this tuple followed by `other`. The cached hash of this
  /// tuple is extended with `other`'s value hashes — no re-scan of `*this`.
  Tuple Concat(const Tuple& other) const {
    Tuple out;
    // Assign first, reserve after: reserving before the copy-assignment
    // leaves the final capacity at the assignee's mercy, and the append
    // loop could then reallocate mid-stream.
    out.values_ = values_;
    out.values_.reserve(values_.size() + other.values_.size());
    out.hash_ = hash_;
    for (const Value& v : other.values_) out.Append(v);
    return out;
  }

  bool operator==(const Tuple& o) const {
    return hash_ == o.hash_ && values_ == o.values_;
  }
  bool operator!=(const Tuple& o) const { return !(*this == o); }
  bool operator<(const Tuple& o) const { return values_ < o.values_; }

  /// The cached hash; O(1).
  uint64_t Hash() const { return hash_; }

  std::string ToString() const;

  const Value* begin() const { return values_.begin(); }
  const Value* end() const { return values_.end(); }

 private:
  friend class TupleView;

  static constexpr uint64_t kHashSeed = 0x51ed2701a3bf2dceULL;

  static uint64_t FoldHash(uint64_t h, const Value* first, const Value* last) {
    for (; first != last; ++first) h = util::HashCombine(h, first->Hash());
    return h;
  }

  util::SmallVector<Value, 4> values_;
  uint64_t hash_ = kHashSeed;
};

/// A non-owning projection of a borrowed Tuple: a position list applied
/// lazily to a base tuple. Hashes and compares exactly like the owning
/// `base.Project(positions)` tuple, but costs zero allocations to build, so
/// join loops can probe indexes once per left entry without materializing a
/// key (heterogeneous lookup; see util::FlatHashMap::Find and
/// Relation::SecondaryIndex::Probe).
///
/// The view borrows both the tuple and the position array; it must not
/// outlive either.
class TupleView {
 public:
  TupleView(const Tuple& base, const uint32_t* positions, size_t n)
      : base_(&base), positions_(positions), n_(n) {
    uint64_t h = Tuple::kHashSeed;
    for (size_t i = 0; i < n; ++i) {
      h = util::HashCombine(h, base[positions[i]].Hash());
    }
    hash_ = h;
  }

  template <typename Positions>
  TupleView(const Tuple& base, const Positions& positions)
      : TupleView(base, positions.data(), positions.size()) {}

  /// Re-materializes a view whose hash was already computed (pipelined
  /// probe loops construct the view once for the hash, prefetch, and
  /// rebuild it at probe time without re-folding). `hash` MUST equal the
  /// hash the ordinary constructor would produce for (base, positions).
  template <typename Positions>
  TupleView(const Tuple& base, const Positions& positions, uint64_t hash)
      : base_(&base),
        positions_(positions.data()),
        n_(positions.size()),
        hash_(hash) {}

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  const Value& operator[](size_t i) const { return (*base_)[positions_[i]]; }

  /// Hash of the projected key, equal to base.Project(positions).Hash();
  /// computed once at construction.
  uint64_t Hash() const { return hash_; }

  /// Materializes the projection into an owning tuple.
  Tuple ToTuple() const {
    Tuple out;
    out.values_.reserve(n_);
    for (size_t i = 0; i < n_; ++i) out.values_.push_back((*this)[i]);
    out.hash_ = hash_;
    return out;
  }

 private:
  const Tuple* base_;
  const uint32_t* positions_;
  size_t n_;
  uint64_t hash_;
};

inline bool operator==(const Tuple& t, const TupleView& v) {
  if (t.Hash() != v.Hash() || t.size() != v.size()) return false;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] != v[i]) return false;
  }
  return true;
}

inline bool operator==(const TupleView& v, const Tuple& t) { return t == v; }

/// Transparent hasher: accepts owning tuples and borrowed views, which is
/// what lets FlatHashMap look up Tuple-keyed slots from a TupleView.
struct TupleHash {
  uint64_t operator()(const Tuple& t) const { return t.Hash(); }
  uint64_t operator()(const TupleView& v) const { return v.Hash(); }
};

}  // namespace fivm

#endif  // FIVM_DATA_TUPLE_H_
