#include "src/data/tuple.h"

namespace fivm {

const Tuple& Tuple::Empty() {
  static const Tuple kEmpty{};
  return kEmpty;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fivm
