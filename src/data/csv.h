#ifndef FIVM_DATA_CSV_H_
#define FIVM_DATA_CSV_H_

#include <string>
#include <vector>

#include "src/data/relation.h"
#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/rings/ring.h"
#include "src/util/string_dictionary.h"

namespace fivm::csv {

/// Column type declaration for CSV loading. String columns are
/// dictionary-encoded to dense integer codes.
enum class ColumnType { kInt, kDouble, kString };

struct LoadOptions {
  char delimiter = ',';
  bool has_header = false;
  /// Dictionary for string columns; required if any column is kString.
  util::StringDictionary* dictionary = nullptr;
};

/// Parses one CSV line into a tuple according to `types`. Returns false on
/// arity or numeric-format errors (error text in *error).
bool ParseLine(const std::string& line, const std::vector<ColumnType>& types,
               const LoadOptions& options, Tuple* out, std::string* error);

/// Loads a CSV file into a list of tuples. Returns false on I/O or parse
/// errors.
bool LoadTuples(const std::string& path, const std::vector<ColumnType>& types,
                const LoadOptions& options, std::vector<Tuple>* out,
                std::string* error);

/// Loads a CSV file into a relation over the unit-payload Z ring (each line
/// is one tuple with multiplicity 1; duplicates accumulate).
template <typename Ring>
bool LoadRelation(const std::string& path, const Schema& schema,
                  const std::vector<ColumnType>& types,
                  const LoadOptions& options, Relation<Ring>* out,
                  std::string* error) {
  std::vector<Tuple> tuples;
  if (!LoadTuples(path, types, options, &tuples, error)) return false;
  *out = Relation<Ring>(schema);
  for (Tuple& t : tuples) out->Add(std::move(t), Ring::One());
  return true;
}

/// Serializes a tuple as a CSV line (string codes decoded through the
/// dictionary when given).
std::string FormatTuple(const Tuple& tuple,
                        const util::StringDictionary* dictionary = nullptr,
                        char delimiter = ',');

/// Writes a relation's live keys (with an extra multiplicity column) to a
/// CSV file. Returns false on I/O errors.
bool SaveRelation(const std::string& path, const Relation<I64Ring>& relation,
                  std::string* error);

}  // namespace fivm::csv

#endif  // FIVM_DATA_CSV_H_
