#ifndef FIVM_DATA_SCHEMA_H_
#define FIVM_DATA_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/util/hash.h"
#include "src/util/small_vector.h"

namespace fivm {

/// Dense identifier of a query variable (attribute). Assigned by Catalog.
using VarId = uint32_t;

inline constexpr VarId kInvalidVar = static_cast<VarId>(-1);

/// An ordered list of distinct variables — the schema of a relation or view.
/// Order matters: it fixes the positional layout of tuples.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<VarId> vars) : vars_(vars) {}
  explicit Schema(util::SmallVector<VarId, 6> vars) : vars_(std::move(vars)) {}

  size_t size() const { return vars_.size(); }
  bool empty() const { return vars_.empty(); }
  VarId operator[](size_t i) const { return vars_[i]; }

  const VarId* begin() const { return vars_.begin(); }
  const VarId* end() const { return vars_.end(); }

  /// Appends `v` if not already present; returns true if appended.
  bool Add(VarId v);

  bool Contains(VarId v) const { return PositionOf(v) >= 0; }

  /// Position of `v` in this schema, or -1.
  int PositionOf(VarId v) const;

  /// True if every variable of `other` occurs in this schema.
  bool ContainsAll(const Schema& other) const;

  /// Variables of this schema that also occur in `other`, in this schema's
  /// order.
  Schema Intersect(const Schema& other) const;

  /// Variables of this schema that do not occur in `other`.
  Schema Minus(const Schema& other) const;

  /// This schema followed by the variables of `other` not already present.
  Schema Union(const Schema& other) const;

  bool Intersects(const Schema& other) const;

  /// Positions (into this schema) of the variables of `target`, in target
  /// order. All of `target` must be present.
  util::SmallVector<uint32_t, 6> PositionsOf(const Schema& target) const;

  bool operator==(const Schema& o) const { return vars_ == o.vars_; }
  bool operator!=(const Schema& o) const { return !(*this == o); }

  /// Order-insensitive equality (same variable set).
  bool SameSet(const Schema& o) const;

  uint64_t Hash() const {
    uint64_t h = 0xa0761d6478bd642fULL;
    for (VarId v : vars_) h = util::HashCombine(h, v);
    return h;
  }

  std::string ToString() const;

 private:
  util::SmallVector<VarId, 6> vars_;
};

/// Hasher for schema-keyed maps (e.g. Relation's secondary-index cache).
struct SchemaHash {
  uint64_t operator()(const Schema& s) const { return s.Hash(); }
};

}  // namespace fivm

#endif  // FIVM_DATA_SCHEMA_H_
