#include "src/data/value.h"

#include <cstdio>

namespace fivm {

std::string Value::ToString() const {
  char buf[32];
  if (kind_ == Kind::kInt) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i_));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", d_);
  }
  return buf;
}

}  // namespace fivm
