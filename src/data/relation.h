#ifndef FIVM_DATA_RELATION_H_
#define FIVM_DATA_RELATION_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"
#include "src/util/small_vector.h"

namespace fivm {

/// A relation over a ring: a finite map from tuples (keys) over `schema` to
/// non-zero ring payloads (Section 2 of the paper). This is the storage unit
/// of base relations, views, and deltas.
///
/// Storage model: slot-stable entry vector + primary hash index + lazily
/// built secondary indexes over key prefixes (DBToaster-style multi-indexed
/// map). Entries whose payload becomes zero are tombstoned lazily: they stay
/// in the entry vector and indexes but are skipped by iteration, `Find`, and
/// index probes. `CompactionThreshold` triggers a rebuild when dead entries
/// dominate.
template <typename Ring>
  requires RingPolicy<Ring>
class Relation {
 public:
  using Element = typename Ring::Element;

  struct Entry {
    Tuple key;
    Element payload;
  };

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Copies contents but not secondary indexes (they rebuild lazily).
  Relation(const Relation& other)
      : schema_(other.schema_),
        entries_(other.entries_),
        index_(other.index_),
        live_(other.live_) {}

  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    entries_ = other.entries_;
    index_ = other.index_;
    secondary_.clear();
    live_ = other.live_;
    return *this;
  }

  Relation(Relation&&) noexcept = default;
  Relation& operator=(Relation&&) noexcept = default;

  const Schema& schema() const { return schema_; }

  /// Number of keys with non-zero payload.
  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Adds `delta` to the payload of `key` (⊎ of a singleton). Creates the
  /// entry if absent; tombstones it if the payload becomes zero.
  void Add(const Tuple& key, Element delta) {
    if (Ring::IsZero(delta)) return;
    if (uint32_t* slot = index_.Find(key)) {
      Entry& e = entries_[*slot];
      bool was_zero = Ring::IsZero(e.payload);
      Ring::AddInPlace(e.payload, delta);
      bool is_zero = Ring::IsZero(e.payload);
      if (was_zero && !is_zero) ++live_;
      if (!was_zero && is_zero) {
        --live_;
        MaybeCompact();
      }
      return;
    }
    uint32_t slot = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{key, std::move(delta)});
    index_.Insert(key, slot);
    for (auto& sec : secondary_) {
      sec->Append(entries_[slot].key, slot);
    }
    ++live_;
  }

  /// Returns the payload of `key`, or nullptr if absent/zero.
  const Element* Find(const Tuple& key) const {
    const uint32_t* slot = index_.Find(key);
    if (slot == nullptr) return nullptr;
    const Entry& e = entries_[*slot];
    return Ring::IsZero(e.payload) ? nullptr : &e.payload;
  }

  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  /// Iterates over live entries: `fn(const Tuple&, const Element&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (!Ring::IsZero(e.payload)) fn(e.key, e.payload);
    }
  }

  /// ⊎: adds every entry of `other` into this relation.
  void UnionWith(const Relation& other) {
    other.ForEach([&](const Tuple& k, const Element& p) { Add(k, p); });
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    secondary_.clear();
    live_ = 0;
  }

  /// A secondary hash index over a projection of the key. Probing yields the
  /// slots of all (live and dead) entries whose projection matches; callers
  /// must skip zero payloads.
  class SecondaryIndex {
   public:
    SecondaryIndex(const Schema& full, const Schema& sub)
        : sub_schema_(sub), positions_(full.PositionsOf(sub)) {}

    const Schema& sub_schema() const { return sub_schema_; }

    void Append(const Tuple& full_key, uint32_t slot) {
      buckets_[full_key.Project(positions_)].push_back(slot);
    }

    /// Slots of entries matching `sub_key` (projected key), or nullptr.
    const util::SmallVector<uint32_t, 2>* Probe(const Tuple& sub_key) const {
      return buckets_.Find(sub_key);
    }

    size_t ApproxBytes() const { return buckets_.ApproxBytes(); }

   private:
    friend class Relation;
    Schema sub_schema_;
    util::SmallVector<uint32_t, 6> positions_;
    util::FlatHashMap<Tuple, util::SmallVector<uint32_t, 2>, TupleHash>
        buckets_;
  };

  /// Returns (building on first use) the secondary index on `sub` ⊆ schema.
  /// The index is maintained by subsequent Add() calls. Logically const:
  /// index construction does not change relation contents.
  const SecondaryIndex& IndexOn(const Schema& sub) const {
    for (const auto& sec : secondary_) {
      if (sec->sub_schema() == sub) return *sec;
    }
    auto sec = std::make_unique<SecondaryIndex>(schema_, sub);
    for (uint32_t slot = 0; slot < entries_.size(); ++slot) {
      sec->Append(entries_[slot].key, slot);
    }
    secondary_.push_back(std::move(sec));
    return *secondary_.back();
  }

  const Entry& EntryAt(uint32_t slot) const { return entries_[slot]; }

  /// Number of entry slots including tombstones (for index probing).
  size_t SlotCount() const { return entries_.size(); }

  /// Approximate heap footprint of entries plus all indexes.
  size_t ApproxBytes() const {
    size_t bytes = index_.ApproxBytes();
    for (const auto& sec : secondary_) bytes += sec->ApproxBytes();
    bytes += entries_.capacity() * sizeof(Entry);
    for (const Entry& e : entries_) {
      bytes += Ring::ApproxBytes(e.payload);
      if (e.key.size() > 4) bytes += e.key.size() * sizeof(Value);
    }
    return bytes;
  }

 private:
  void MaybeCompact() {
    size_t dead = entries_.size() - live_;
    if (entries_.size() < 64 || dead * 2 < entries_.size()) return;
    std::vector<Entry> old = std::move(entries_);
    entries_.clear();
    index_.clear();
    std::vector<std::unique_ptr<SecondaryIndex>> old_secondary =
        std::move(secondary_);
    secondary_.clear();
    live_ = 0;
    for (Entry& e : old) {
      if (!Ring::IsZero(e.payload)) Add(e.key, std::move(e.payload));
    }
    // Rebuild the same secondary indexes so cached references stay valid
    // across compaction is NOT guaranteed; engine code re-fetches via
    // IndexOn() per operation.
    for (auto& sec : old_secondary) {
      IndexOn(sec->sub_schema());
    }
  }

  Schema schema_;
  std::vector<Entry> entries_;
  util::FlatHashMap<Tuple, uint32_t, TupleHash> index_;
  mutable std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  size_t live_ = 0;
};

}  // namespace fivm

#endif  // FIVM_DATA_RELATION_H_
