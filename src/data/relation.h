#ifndef FIVM_DATA_RELATION_H_
#define FIVM_DATA_RELATION_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"
#include "src/util/group_table.h"
#include "src/util/small_vector.h"

namespace fivm {

/// A relation over a ring: a finite map from tuples (keys) over `schema` to
/// non-zero ring payloads (Section 2 of the paper). This is the storage unit
/// of base relations, views, and deltas.
///
/// Storage model: a key/payload-*split* entry pool (SoA) + primary hash
/// index + lazily built secondary indexes over key prefixes
/// (DBToaster-style multi-indexed map). Slot `i`'s key lives in `keys_[i]`
/// (the Tuple carries its cached 64-bit hash inline) and its ring payload in
/// `payloads_[i]` — two parallel arrays with a stable 1:1 slot mapping.
/// The split exists for the payload-heavy passes: zero-sweeps, absorb
/// merges, and ring accumulation stream the payload pool without dragging
/// ~80-byte tuple keys through cache, and the wide-double ring kernels
/// (src/util/simd.h) then run over contiguous payload storage. Index probes
/// conversely touch only the key array until a hit needs its payload.
///
/// The allocation-free probe path (TupleView + heterogeneous lookup) relies
/// on the following invariants:
///
///  - *Slot stability*: an entry's slot (its position in the parallel
///    arrays) never changes while the relation is alive, except across
///    compaction, which renumbers slots and rebuilds every index. Probe
///    results (slot lists) are therefore valid only until the next Add().
///  - *Tombstone skipping*: entries whose payload becomes zero are
///    tombstoned lazily — they stay in the pool and in all indexes;
///    iteration and `Find` skip them, and secondary-index probe results may
///    include them, so probe loops must test `Ring::IsZero` per slot.
///  - *Hash caching*: every stored key carries its 64-bit hash (computed
///    once at construction, see Tuple); index probes, inserts, rehashes and
///    compaction reuse it and never re-scan key values. A TupleView probe
///    key computes its hash once at view construction and must fold the
///    same value hashes in the same order as the owning Tuple would.
///
/// `CompactionThreshold` triggers a rebuild when dead entries dominate.
template <typename Ring>
  requires RingPolicy<Ring>
class Relation {
 public:
  using Element = typename Ring::Element;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Copies contents but not secondary indexes (they rebuild lazily).
  Relation(const Relation& other)
      : schema_(other.schema_),
        keys_(other.keys_),
        payloads_(other.payloads_),
        index_(other.index_),
        live_(other.live_) {}

  /// Clone-with-headroom: copies `other`'s *live* contents with the pool
  /// arrays and primary index sized for other.size() + extra_capacity keys
  /// up front. This is the generation clone of the versioned read path
  /// (src/serve/): the next generation absorbs its differential at one
  /// final index capacity — no mid-merge growth rehash, which would also
  /// re-home a clustered absorb order — and tombstones are dropped in the
  /// same pass. Secondary indexes are not copied.
  Relation(const Relation& other, size_t extra_capacity)
      : schema_(other.schema_) {
    Reserve(other.size() + extra_capacity);
    other.ForEach(
        [this](const Tuple& k, const Element& p) { AddImpl(k, p); });
  }

  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    keys_ = other.keys_;
    payloads_ = other.payloads_;
    index_ = other.index_;
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = other.live_;
    return *this;
  }

  /// Moves leave the source a valid *empty* relation (not just
  /// moved-from): the scalar bookkeeping (live_, and the index/map sizes
  /// inside the members) would otherwise survive the member-wise move and
  /// lie about emptied storage — the same hazard SlotIndex's move guards
  /// against one level down. Scratch-slot reuse Reset()s and refills
  /// surrendered relations, so the source must stay coherent.
  Relation(Relation&& o) noexcept
      : schema_(std::move(o.schema_)),
        keys_(std::move(o.keys_)),
        payloads_(std::move(o.payloads_)),
        index_(std::move(o.index_)),
        secondary_(std::move(o.secondary_)),
        secondary_by_schema_(std::move(o.secondary_by_schema_)),
        live_(o.live_) {
    o.Clear();
  }
  Relation& operator=(Relation&& o) noexcept {
    if (this == &o) return *this;
    schema_ = std::move(o.schema_);
    keys_ = std::move(o.keys_);
    payloads_ = std::move(o.payloads_);
    index_ = std::move(o.index_);
    secondary_ = std::move(o.secondary_);
    secondary_by_schema_ = std::move(o.secondary_by_schema_);
    live_ = o.live_;
    o.Clear();
    return *this;
  }

  const Schema& schema() const { return schema_; }

  /// Number of keys with non-zero payload.
  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Number of distinct keys in the entry pool, including keys whose
  /// payloads cancelled to zero (size() excludes those). KeyPoolSize() -
  /// size() is the cancellation count of an accumulator relation — what
  /// the DeltaBatcher reports as coalesced-away keys.
  size_t KeyPoolSize() const { return keys_.size(); }

  /// Pre-sizes the entry pool and the primary index for `n` keys, so a
  /// bulk of Add() calls proceeds without rehashing or reallocating.
  void Reserve(size_t n) {
    keys_.reserve(n);
    payloads_.reserve(n);
    index_.Reserve(n);
  }

  /// The primary-index capacity this relation would occupy after
  /// Reserve(n): with it, util::GroupHomeIndex gives the home group the
  /// index will assign each key — the sort key of home-cell-clustered bulk
  /// absorbs (relation_ops.h).
  size_t IndexCapacityAfterReserve(size_t n) const {
    return index_.CapacityAfterReserve(n);
  }

  /// Presizes for absorbing up to `added` more keys: the index grows to its
  /// final capacity up front (so a bulk absorb never rehashes mid-stream,
  /// which would also re-home a clustered absorb's sort order), while the
  /// pool arrays grow geometrically — an exact reserve per absorb would
  /// defeat the doubling guarantee and turn repeated absorbs quadratic.
  void ReserveForAbsorb(size_t added) {
    size_t needed = keys_.size() + added;
    if (needed > keys_.capacity()) {
      size_t target = std::max(needed, keys_.capacity() * 2);
      keys_.reserve(target);
      payloads_.reserve(target);
    }
    index_.Reserve(keys_.size() + added);
  }

  /// Primary key index: the shared SwissTable core (util::GroupTable) over
  /// 8-byte {slot, low hash bits} cells. Keys live only in the key pool;
  /// the index stores no key copy and only the low 32 bits of the cached
  /// key hash — which contain the 7-bit H2 tag (bits 0-6) and 25 bits of
  /// H1 (bits 7-31), enough to re-derive a cell's home group and tag at any
  /// capacity this engine reaches (up to 2^25 groups = half a billion
  /// slots), so rehashes stay a sequential cell-array pass that never
  /// touches entries. A probe scans one 16-byte control group for the H2
  /// tag, confirms tag matches against the cell's 32 hash bits, and loads
  /// the pool key only when those agree (a true hit — Tuple::operator==
  /// then re-checks the full cached hash first — or a ~2^-32 coincidence);
  /// a miss usually never leaves the control array, and with the split pool
  /// a probe never touches payload storage at all. At 9 bytes per slot the
  /// index is ~1.9× denser than the {64-bit hash, slot} cells it replaces,
  /// which keeps both index lines cache-resident against multi-megabyte
  /// stores. There is no deletion: zero-payload entries are tombstoned in
  /// place and dropped at compaction, which rebuilds the index from
  /// scratch.
  class SlotIndex {
   public:
    static constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

    /// Moves leave the source a valid *empty* index (GroupTable's move
    /// resets the source's bookkeeping with the transferred arrays —
    /// scratch-slot reuse Reset()s and refills moved-from relations).
    SlotIndex() = default;
    SlotIndex(const SlotIndex&) = default;
    SlotIndex& operator=(const SlotIndex&) = default;
    SlotIndex(SlotIndex&&) noexcept = default;
    SlotIndex& operator=(SlotIndex&&) noexcept = default;

    void clear() { table_.Clear(); }

    /// Cells retained across Reset: above this, the table is dropped
    /// instead of re-emptied — a slot that once served a huge batch must
    /// not pin megabytes of scratch for the owner's lifetime.
    static constexpr size_t kResetKeepCells = size_t{1} << 14;

    /// Empties the index, keeping the allocated arrays when moderately
    /// sized, so a reused scratch relation refills without reallocating or
    /// growth-rehashing. Re-emptying costs one control-byte memset (1
    /// byte/slot); cells need no clearing — a slot is live only when its
    /// control byte says so.
    void Reset() {
      size_t capacity = table_.capacity();
      if (capacity == 0) return;
      // Drop the table instead when it is oversized for the owner's
      // lifetime, or grossly oversized for the *last* fill (<1/8
      // occupancy): after one batch spike, at most one reset pays the
      // full-capacity refill before the table resizes back down.
      if (capacity > kResetKeepCells ||
          (capacity > 1024 && table_.size() * 8 < capacity)) {
        table_.Clear();
        return;
      }
      table_.ResetKeepCapacity();
    }

    /// Largest supported capacity: past 2^29 slots (2^25 groups) the 25 H1
    /// bits stored in hash_lo could no longer reproduce a cell's home
    /// group at rehash time, silently unfinding keys. Asserted after every
    /// growth-capable operation so the documented limit fails loudly.
    static constexpr size_t kMaxCells = size_t{1} << 29;

    void Reserve(size_t n) {
      table_.Reserve(n, CellHash);
      assert(table_.capacity() <= kMaxCells);
    }

    /// The capacity the index would occupy after Reserve(n) — the mask the
    /// home-cell-clustered absorb path (relation_ops.h) sorts against.
    size_t CapacityAfterReserve(size_t n) const {
      return table_.CapacityAfterReserve(n);
    }

    /// Slot of the entry whose key equals `key`, or kNoSlot. `key` may be a
    /// Tuple or a TupleView; either way its hash is already cached, and the
    /// stored side's hash lives in the pool key (compared first by
    /// Tuple::operator==).
    template <typename K>
    uint32_t Lookup(const K& key, const std::vector<Tuple>& keys) const {
      uint64_t h = key.Hash();
      const uint32_t h_lo = static_cast<uint32_t>(h);
      const Cell* c = table_.Find(h, [&](const Cell& cell) {
        return cell.hash_lo == h_lo && keys[cell.slot] == key;
      });
      return c == nullptr ? kNoSlot : c->slot;
    }

    /// One-pass find-or-insert: returns the slot already indexed under
    /// `key`, or records `new_slot` for it and returns kNoSlot (the caller
    /// then appends the entry at `new_slot`). Probes once where the old
    /// Lookup-then-Insert pair probed twice.
    template <typename K>
    uint32_t LookupOrInsert(const K& key, const std::vector<Tuple>& keys,
                            uint32_t new_slot) {
      uint64_t h = key.Hash();
      const uint32_t h_lo = static_cast<uint32_t>(h);
      auto [cell, inserted] = table_.FindOrInsert(
          h,
          [&](const Cell& c) {
            return c.hash_lo == h_lo && keys[c.slot] == key;
          },
          CellHash);
      assert(table_.capacity() <= kMaxCells);
      if (!inserted) return cell->slot;
      *cell = Cell{new_slot, h_lo};
      return kNoSlot;
    }

    /// Starts the line fetches a Lookup of `hash` would wait on.
    void PrefetchProbe(uint64_t hash) const { table_.PrefetchProbe(hash); }

    size_t ApproxBytes() const { return table_.ApproxBytes(); }

   private:
    struct Cell {
      uint32_t slot;
      uint32_t hash_lo;  // low 32 bits of the key hash: H2 + 25 H1 bits
    };

    // Rehash placement needs only the home group and tag, both contained
    // in the stored low hash bits (valid while capacity ≤ 2^29 slots);
    // entries are never touched.
    static uint64_t CellHash(const Cell& c) {
      return static_cast<uint64_t>(c.hash_lo);
    }

    util::GroupTable<Cell> table_;
  };

  /// Adds `delta` to the payload of `key` (⊎ of a singleton). Creates the
  /// entry if absent; tombstones it if the payload becomes zero. Key and
  /// payload are both perfect-forwarded: rvalues move into the pool, and a
  /// payload passed by const reference is only *read* on the hit path
  /// (Ring::AddInPlace) — the propagation term loops pass a reused scratch
  /// element and pay no copy unless the key is new. `delta` must not alias
  /// a payload stored in this relation.
  template <typename E = Element>
  void Add(const Tuple& key, E&& delta) {
    AddImpl(key, std::forward<E>(delta));
  }
  template <typename E = Element>
  void Add(Tuple&& key, E&& delta) {
    AddImpl(std::move(key), std::forward<E>(delta));
  }

  /// Returns the payload of `key`, or nullptr if absent/zero. Also accepts
  /// a TupleView (allocation-free heterogeneous probe).
  template <typename K>
  const Element* Find(const K& key) const {
    uint32_t slot = index_.Lookup(key, keys_);
    if (slot == SlotIndex::kNoSlot) return nullptr;
    const Element& p = payloads_[slot];
    return Ring::IsZero(p) ? nullptr : &p;
  }

  template <typename K>
  bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Starts the primary-index line fetches a Find of a key hashing to
  /// `hash` would wait on. Join loops prefetch a few probes ahead so
  /// independent probes' memory latency overlaps (software pipelining);
  /// see the full-key paths in relation_ops.h.
  void PrefetchFind(uint64_t hash) const { index_.PrefetchProbe(hash); }

  /// Iterates over live entries: `fn(const Tuple&, const Element&)`. The
  /// zero test streams the payload pool; keys are touched only for live
  /// slots.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = keys_.size();
    for (size_t i = 0; i < n; ++i) {
      if (!Ring::IsZero(payloads_[i])) fn(keys_[i], payloads_[i]);
    }
  }

  /// ⊎: adds every entry of `other` into this relation.
  void UnionWith(const Relation& other) {
    other.ForEach([&](const Tuple& k, const Element& p) { Add(k, p); });
  }

  /// The destructively extracted entry pool of a relation: parallel
  /// key/payload arrays (live entries and tombstones alike; consumers must
  /// skip zero payloads).
  struct Pool {
    std::vector<Tuple> keys;
    std::vector<Element> payloads;
  };

  /// Destructively extracts the entry pool and clears the relation. The
  /// move-aware absorb/reorder paths use this to re-home keys and payloads
  /// without copying them; payload-only passes over the extracted pool
  /// stream just the payload array.
  Pool TakePool() {
    Pool out{std::move(keys_), std::move(payloads_)};
    Clear();
    return out;
  }

  void Clear() {
    keys_.clear();
    payloads_.clear();
    index_.clear();
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = 0;
  }

  /// Pool storage retained across Reset, as a byte budget (payloads are
  /// ring-dependent and keys ~80 bytes, so the bound is on bytes, not
  /// counts).
  static constexpr size_t kResetKeepEntryBytes = size_t{1} << 18;  // 256 KB

  /// Empties the relation and retargets it to `schema`, keeping the pool
  /// arrays' and the primary index's allocated capacity (up to the
  /// SlotIndex::kResetKeepCells shrink guard — one outsized batch must not
  /// pin max-sized scratch forever). This is what makes a plan scratch slot
  /// reusable across propagation steps and batches: the next fill proceeds
  /// without reallocating or growth-rehashing. Secondary indexes are
  /// dropped (scratch relations are probe sources, not targets).
  void Reset(const Schema& schema) {
    schema_ = schema;
    if (keys_.capacity() * sizeof(Tuple) +
            payloads_.capacity() * sizeof(Element) >
        kResetKeepEntryBytes) {
      keys_ = std::vector<Tuple>();
      payloads_ = std::vector<Element>();
    } else {
      keys_.clear();
      payloads_.clear();
    }
    index_.Reset();
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = 0;
  }

  /// A secondary hash index over a projection of the key. Probing yields the
  /// slots of all (live and dead) entries whose projection matches; callers
  /// must skip zero payloads.
  class SecondaryIndex {
   public:
    SecondaryIndex(const Schema& full, const Schema& sub)
        : sub_schema_(sub), positions_(full.PositionsOf(sub)) {}

    const Schema& sub_schema() const { return sub_schema_; }

    void Append(const Tuple& full_key, uint32_t slot) {
      buckets_[full_key.Project(positions_)].push_back(slot);
    }

    /// Slots of entries matching the projected key, or nullptr. Accepts an
    /// owning Tuple or a borrowed TupleView; the view probe performs no
    /// heap allocation.
    template <typename K>
    const util::SmallVector<uint32_t, 2>* Probe(const K& sub_key) const {
      return buckets_.Find(sub_key);
    }

    size_t ApproxBytes() const { return buckets_.ApproxBytes(); }

   private:
    friend class Relation;
    Schema sub_schema_;
    util::SmallVector<uint32_t, 6> positions_;
    util::FlatHashMap<Tuple, util::SmallVector<uint32_t, 2>, TupleHash>
        buckets_;
  };

  /// Returns (building on first use) the secondary index on `sub` ⊆ schema.
  /// The index is maintained by subsequent Add() calls and located in O(1)
  /// through a schema-keyed cache. Logically const: index construction does
  /// not change relation contents.
  const SecondaryIndex& IndexOn(const Schema& sub) const {
    if (const uint32_t* pos = secondary_by_schema_.Find(sub)) {
      return *secondary_[*pos];
    }
    auto sec = std::make_unique<SecondaryIndex>(schema_, sub);
    for (uint32_t slot = 0; slot < keys_.size(); ++slot) {
      sec->Append(keys_[slot], slot);
    }
    secondary_by_schema_.Insert(sub,
                                static_cast<uint32_t>(secondary_.size()));
    secondary_.push_back(std::move(sec));
    return *secondary_.back();
  }

  /// Number of secondary indexes currently built (lazily via IndexOn or
  /// eagerly via plan-derived prewarming). Lets tests assert that a compiled
  /// plan prewarmed exactly the indexes propagation probes — no lazy build
  /// happens on the (concurrent) propagation path.
  size_t SecondaryIndexCount() const { return secondary_.size(); }

  /// True when a secondary index on `sub` has already been built. Unlike
  /// IndexOn, never builds.
  bool HasIndexOn(const Schema& sub) const {
    return secondary_by_schema_.Find(sub) != nullptr;
  }

  /// Key / payload of entry slot `slot` (live or tombstoned — callers on
  /// probe paths test Ring::IsZero on the payload first, which touches only
  /// the payload pool).
  const Tuple& KeyAt(uint32_t slot) const { return keys_[slot]; }
  const Element& PayloadAt(uint32_t slot) const { return payloads_[slot]; }

  /// Number of entry slots including tombstones (for index probing).
  size_t SlotCount() const { return keys_.size(); }

  /// Approximate heap footprint of the entry pool plus all indexes.
  size_t ApproxBytes() const {
    size_t bytes = index_.ApproxBytes();
    for (const auto& sec : secondary_) bytes += sec->ApproxBytes();
    bytes += keys_.capacity() * sizeof(Tuple);
    bytes += payloads_.capacity() * sizeof(Element);
    for (const Element& p : payloads_) bytes += Ring::ApproxBytes(p);
    for (const Tuple& k : keys_) {
      if (k.size() > 4) bytes += k.size() * sizeof(Value);
    }
    return bytes;
  }

 private:
  template <typename K, typename E>
  void AddImpl(K&& key, E&& delta) {
    if (Ring::IsZero(delta)) return;
    uint32_t new_slot = static_cast<uint32_t>(keys_.size());
    uint32_t slot = index_.LookupOrInsert(key, keys_, new_slot);
    if (slot != SlotIndex::kNoSlot) {
      Element& p = payloads_[slot];
      bool was_zero = Ring::IsZero(p);
      Ring::AddInPlace(p, delta);
      bool is_zero = Ring::IsZero(p);
      if (was_zero && !is_zero) ++live_;
      if (!was_zero && is_zero) {
        --live_;
        MaybeCompact();
      }
      return;
    }
    // The index already records new_slot (one probe for lookup + insert);
    // fill the pool slot it points at.
    keys_.push_back(std::forward<K>(key));
    payloads_.push_back(std::forward<E>(delta));
    for (auto& sec : secondary_) {
      sec->Append(keys_[new_slot], new_slot);
    }
    ++live_;
  }

  void MaybeCompact() {
    size_t dead = keys_.size() - live_;
    if (keys_.size() < 64 || dead * 2 < keys_.size()) return;
    std::vector<Tuple> old_keys = std::move(keys_);
    std::vector<Element> old_payloads = std::move(payloads_);
    keys_.clear();
    payloads_.clear();
    index_.clear();
    std::vector<std::unique_ptr<SecondaryIndex>> old_secondary =
        std::move(secondary_);
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = 0;
    Reserve(old_keys.size() - dead);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (!Ring::IsZero(old_payloads[i])) {
        Add(std::move(old_keys[i]), std::move(old_payloads[i]));
      }
    }
    // Rebuild the same secondary indexes so cached references stay valid
    // across compaction is NOT guaranteed; engine code re-fetches via
    // IndexOn() per operation.
    for (auto& sec : old_secondary) {
      IndexOn(sec->sub_schema());
    }
  }

  Schema schema_;
  // The SoA entry pool: parallel key/payload arrays, 1:1 by slot.
  std::vector<Tuple> keys_;
  std::vector<Element> payloads_;
  SlotIndex index_;
  mutable std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  // O(1) locator: schema -> position in secondary_.
  mutable util::FlatHashMap<Schema, uint32_t, SchemaHash> secondary_by_schema_;
  size_t live_ = 0;
};

}  // namespace fivm

#endif  // FIVM_DATA_RELATION_H_
