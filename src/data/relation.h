#ifndef FIVM_DATA_RELATION_H_
#define FIVM_DATA_RELATION_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/rings/ring.h"
#include "src/util/flat_hash_map.h"
#include "src/util/small_vector.h"

namespace fivm {

/// A relation over a ring: a finite map from tuples (keys) over `schema` to
/// non-zero ring payloads (Section 2 of the paper). This is the storage unit
/// of base relations, views, and deltas.
///
/// Storage model: slot-stable entry vector + primary hash index + lazily
/// built secondary indexes over key prefixes (DBToaster-style multi-indexed
/// map). The allocation-free probe path (TupleView + heterogeneous lookup)
/// relies on the following invariants:
///
///  - *Slot stability*: an entry's slot (its position in the entry vector)
///    never changes while the relation is alive, except across compaction,
///    which renumbers slots and rebuilds every index. Probe results
///    (slot lists) are therefore valid only until the next Add().
///  - *Tombstone skipping*: entries whose payload becomes zero are
///    tombstoned lazily — they stay in the entry vector and in all indexes;
///    iteration and `Find` skip them, and secondary-index probe results may
///    include them, so probe loops must test `Ring::IsZero` per slot.
///  - *Hash caching*: every stored key carries its 64-bit hash (computed
///    once at construction, see Tuple); index probes, inserts, rehashes and
///    compaction reuse it and never re-scan key values. A TupleView probe
///    key computes its hash once at view construction and must fold the
///    same value hashes in the same order as the owning Tuple would.
///
/// `CompactionThreshold` triggers a rebuild when dead entries dominate.
template <typename Ring>
  requires RingPolicy<Ring>
class Relation {
 public:
  using Element = typename Ring::Element;

  struct Entry {
    Tuple key;
    Element payload;
  };

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Copies contents but not secondary indexes (they rebuild lazily).
  Relation(const Relation& other)
      : schema_(other.schema_),
        entries_(other.entries_),
        index_(other.index_),
        live_(other.live_) {}

  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    entries_ = other.entries_;
    index_ = other.index_;
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = other.live_;
    return *this;
  }

  Relation(Relation&&) noexcept = default;
  Relation& operator=(Relation&&) noexcept = default;

  const Schema& schema() const { return schema_; }

  /// Number of keys with non-zero payload.
  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Pre-sizes the entry vector and the primary index for `n` keys, so a
  /// bulk of Add() calls proceeds without rehashing or reallocating.
  void Reserve(size_t n) {
    entries_.reserve(n);
    index_.Reserve(n);
  }

  /// Primary key index: open addressing over {cached hash, slot} cells.
  /// Keys live only in the entry vector (memory-pooled records); the index
  /// never stores a second copy. Probes compare the cached 64-bit hashes
  /// first and touch an entry key only on a hash match, so a miss never
  /// leaves the 16-byte cell array. There is no deletion: zero-payload
  /// entries are tombstoned in place and dropped at compaction, which
  /// rebuilds the index from scratch.
  class SlotIndex {
   public:
    static constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

    void clear() {
      cells_.clear();
      size_ = 0;
      capacity_ = 0;
      mask_ = 0;
    }

    void Reserve(size_t n) {
      size_t needed = util::HashReserveCapacity(n);
      if (needed > capacity_) Rehash(util::HashCapacityPow2(needed));
    }

    /// Slot of the entry whose key equals `key`, or kNoSlot. `key` may be a
    /// Tuple or a TupleView; either way its hash is already cached.
    template <typename K>
    uint32_t Lookup(const K& key, const std::vector<Entry>& entries) const {
      if (size_ == 0) return kNoSlot;
      uint64_t h = key.Hash();
      size_t idx = h & mask_;
      while (cells_[idx].slot != kNoSlot) {
        if (cells_[idx].hash == h && entries[cells_[idx].slot].key == key) {
          return cells_[idx].slot;
        }
        idx = (idx + 1) & mask_;
      }
      return kNoSlot;
    }

    /// Records `slot` under `hash`. The caller guarantees the key is not
    /// present.
    void Insert(uint64_t hash, uint32_t slot) {
      if (util::HashNeedsGrowth(size_, capacity_)) {
        Rehash(capacity_ == 0 ? 8 : capacity_ * 2);
      }
      Place(hash, slot);
      ++size_;
    }

    size_t ApproxBytes() const { return capacity_ * sizeof(Cell); }

   private:
    struct Cell {
      uint64_t hash;
      uint32_t slot;
    };

    void Place(uint64_t hash, uint32_t slot) {
      size_t idx = hash & mask_;
      while (cells_[idx].slot != kNoSlot) idx = (idx + 1) & mask_;
      cells_[idx] = Cell{hash, slot};
    }

    // Redistributes {hash, slot} cells; never touches keys.
    void Rehash(size_t new_capacity) {
      std::vector<Cell> old = std::move(cells_);
      capacity_ = new_capacity;
      mask_ = capacity_ - 1;
      cells_.assign(capacity_, Cell{0, kNoSlot});
      for (const Cell& c : old) {
        if (c.slot != kNoSlot) Place(c.hash, c.slot);
      }
    }

    std::vector<Cell> cells_;
    size_t size_ = 0;
    size_t capacity_ = 0;
    size_t mask_ = 0;
  };

  /// Adds `delta` to the payload of `key` (⊎ of a singleton). Creates the
  /// entry if absent; tombstones it if the payload becomes zero. The rvalue
  /// overload moves the key into the new entry instead of copying it.
  void Add(const Tuple& key, Element delta) {
    AddImpl(key, std::move(delta));
  }
  void Add(Tuple&& key, Element delta) {
    AddImpl(std::move(key), std::move(delta));
  }

  /// Returns the payload of `key`, or nullptr if absent/zero. Also accepts
  /// a TupleView (allocation-free heterogeneous probe).
  template <typename K>
  const Element* Find(const K& key) const {
    uint32_t slot = index_.Lookup(key, entries_);
    if (slot == SlotIndex::kNoSlot) return nullptr;
    const Entry& e = entries_[slot];
    return Ring::IsZero(e.payload) ? nullptr : &e.payload;
  }

  template <typename K>
  bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  /// Iterates over live entries: `fn(const Tuple&, const Element&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (!Ring::IsZero(e.payload)) fn(e.key, e.payload);
    }
  }

  /// ⊎: adds every entry of `other` into this relation.
  void UnionWith(const Relation& other) {
    other.ForEach([&](const Tuple& k, const Element& p) { Add(k, p); });
  }

  /// Destructively extracts the entry vector (live entries and tombstones
  /// alike; callers must skip zero payloads) and clears the relation. The
  /// move-aware absorb/reorder paths use this to re-home keys and payloads
  /// without copying them.
  std::vector<Entry> TakeEntries() {
    std::vector<Entry> out = std::move(entries_);
    Clear();
    return out;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = 0;
  }

  /// A secondary hash index over a projection of the key. Probing yields the
  /// slots of all (live and dead) entries whose projection matches; callers
  /// must skip zero payloads.
  class SecondaryIndex {
   public:
    SecondaryIndex(const Schema& full, const Schema& sub)
        : sub_schema_(sub), positions_(full.PositionsOf(sub)) {}

    const Schema& sub_schema() const { return sub_schema_; }

    void Append(const Tuple& full_key, uint32_t slot) {
      buckets_[full_key.Project(positions_)].push_back(slot);
    }

    /// Slots of entries matching the projected key, or nullptr. Accepts an
    /// owning Tuple or a borrowed TupleView; the view probe performs no
    /// heap allocation.
    template <typename K>
    const util::SmallVector<uint32_t, 2>* Probe(const K& sub_key) const {
      return buckets_.Find(sub_key);
    }

    size_t ApproxBytes() const { return buckets_.ApproxBytes(); }

   private:
    friend class Relation;
    Schema sub_schema_;
    util::SmallVector<uint32_t, 6> positions_;
    util::FlatHashMap<Tuple, util::SmallVector<uint32_t, 2>, TupleHash>
        buckets_;
  };

  /// Returns (building on first use) the secondary index on `sub` ⊆ schema.
  /// The index is maintained by subsequent Add() calls and located in O(1)
  /// through a schema-keyed cache. Logically const: index construction does
  /// not change relation contents.
  const SecondaryIndex& IndexOn(const Schema& sub) const {
    if (const uint32_t* pos = secondary_by_schema_.Find(sub)) {
      return *secondary_[*pos];
    }
    auto sec = std::make_unique<SecondaryIndex>(schema_, sub);
    for (uint32_t slot = 0; slot < entries_.size(); ++slot) {
      sec->Append(entries_[slot].key, slot);
    }
    secondary_by_schema_.Insert(sub,
                                static_cast<uint32_t>(secondary_.size()));
    secondary_.push_back(std::move(sec));
    return *secondary_.back();
  }

  const Entry& EntryAt(uint32_t slot) const { return entries_[slot]; }

  /// Number of entry slots including tombstones (for index probing).
  size_t SlotCount() const { return entries_.size(); }

  /// Approximate heap footprint of entries plus all indexes.
  size_t ApproxBytes() const {
    size_t bytes = index_.ApproxBytes();
    for (const auto& sec : secondary_) bytes += sec->ApproxBytes();
    bytes += entries_.capacity() * sizeof(Entry);
    for (const Entry& e : entries_) {
      bytes += Ring::ApproxBytes(e.payload);
      if (e.key.size() > 4) bytes += e.key.size() * sizeof(Value);
    }
    return bytes;
  }

 private:
  template <typename K>
  void AddImpl(K&& key, Element delta) {
    if (Ring::IsZero(delta)) return;
    uint32_t slot = index_.Lookup(key, entries_);
    if (slot != SlotIndex::kNoSlot) {
      Entry& e = entries_[slot];
      bool was_zero = Ring::IsZero(e.payload);
      Ring::AddInPlace(e.payload, delta);
      bool is_zero = Ring::IsZero(e.payload);
      if (was_zero && !is_zero) ++live_;
      if (!was_zero && is_zero) {
        --live_;
        MaybeCompact();
      }
      return;
    }
    slot = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{std::forward<K>(key), std::move(delta)});
    index_.Insert(entries_[slot].key.Hash(), slot);
    for (auto& sec : secondary_) {
      sec->Append(entries_[slot].key, slot);
    }
    ++live_;
  }

  void MaybeCompact() {
    size_t dead = entries_.size() - live_;
    if (entries_.size() < 64 || dead * 2 < entries_.size()) return;
    std::vector<Entry> old = std::move(entries_);
    entries_.clear();
    index_.clear();
    std::vector<std::unique_ptr<SecondaryIndex>> old_secondary =
        std::move(secondary_);
    secondary_.clear();
    secondary_by_schema_.clear();
    live_ = 0;
    Reserve(old.size() - dead);
    for (Entry& e : old) {
      if (!Ring::IsZero(e.payload)) Add(std::move(e.key), std::move(e.payload));
    }
    // Rebuild the same secondary indexes so cached references stay valid
    // across compaction is NOT guaranteed; engine code re-fetches via
    // IndexOn() per operation.
    for (auto& sec : old_secondary) {
      IndexOn(sec->sub_schema());
    }
  }

  Schema schema_;
  std::vector<Entry> entries_;
  SlotIndex index_;
  mutable std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  // O(1) locator: schema -> position in secondary_.
  mutable util::FlatHashMap<Schema, uint32_t, SchemaHash> secondary_by_schema_;
  size_t live_ = 0;
};

}  // namespace fivm

#endif  // FIVM_DATA_RELATION_H_
