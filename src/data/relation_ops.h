#ifndef FIVM_DATA_RELATION_OPS_H_
#define FIVM_DATA_RELATION_OPS_H_

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/data/relation.h"
#include "src/data/schema.h"
#include "src/data/tuple.h"
#include "src/rings/lifting.h"
#include "src/rings/ring.h"
#include "src/util/small_vector.h"

namespace fivm {

/// The three operators of the query language (Section 2): union ⊎, natural
/// join ⊗, and aggregation-by-marginalization ⊕_X with lifting functions.
/// Join and marginalization are also provided fused, which is what view-tree
/// evaluation and delta propagation use to avoid materializing intermediate
/// join results.
///
/// Hot-path discipline: probe keys are TupleViews (no allocation per left
/// entry), output keys are built in a reused scratch tuple (no allocation
/// per match; Relation::Add copies the key only when it creates a new
/// entry), and expiring inputs are consumed by move.

/// ⊎: returns left ⊎ right (schemas must match as sets; output uses left's
/// order).
template <typename Ring>
Relation<Ring> Union(const Relation<Ring>& left, const Relation<Ring>& right) {
  assert(left.schema().SameSet(right.schema()));
  Relation<Ring> out(left.schema());
  out.Reserve(left.size() + right.size());
  left.ForEach([&](const Tuple& k, const typename Ring::Element& p) {
    out.Add(k, p);
  });
  auto positions = right.schema().PositionsOf(left.schema());
  right.ForEach([&](const Tuple& k, const typename Ring::Element& p) {
    out.Add(k.Project(positions), p);
  });
  return out;
}

/// ⊕: marginalizes the variables `marg` out of `rel`, lifting each
/// marginalized value via `lifts` and multiplying it into the payload.
/// Output schema is rel.schema \ marg.
template <typename Ring>
Relation<Ring> Marginalize(const Relation<Ring>& rel, const Schema& marg,
                           const LiftingMap<Ring>& lifts) {
  using Element = typename Ring::Element;
  Schema out_schema = rel.schema().Minus(marg);
  Relation<Ring> out(out_schema);
  // At most one output key per input key; presizing spares batched deltas
  // the doubling-growth entry copies and index rehashes.
  out.Reserve(rel.size());
  auto out_positions = rel.schema().PositionsOf(out_schema);

  // Positions of marginalized vars that carry non-trivial liftings.
  util::SmallVector<std::pair<uint32_t, VarId>, 6> lifted;
  for (VarId v : marg) {
    int pos = rel.schema().PositionOf(v);
    assert(pos >= 0);
    if (!lifts.IsTrivial(v)) {
      lifted.emplace_back(static_cast<uint32_t>(pos), v);
    }
  }

  rel.ForEach([&](const Tuple& k, const Element& p) {
    Element acc = p;
    for (const auto& [pos, var] : lifted) {
      acc = Ring::Mul(acc, lifts.Lift(var, k[pos]));
    }
    out.Add(k.Project(out_positions), std::move(acc));
  });
  return out;
}

/// ⊗: natural join of `left` and `right` on their common variables. Output
/// schema is left.schema followed by right's private variables. Payload of a
/// match is Mul(left payload, right payload) — note the order, which matters
/// for non-commutative rings (e.g. the relational data ring concatenates
/// payload schemas left-to-right).
template <typename Ring>
Relation<Ring> Join(const Relation<Ring>& left, const Relation<Ring>& right) {
  using Element = typename Ring::Element;
  Schema common = left.schema().Intersect(right.schema());
  Schema right_private = right.schema().Minus(common);
  Schema out_schema = left.schema().Union(right_private);
  Relation<Ring> out(out_schema);

  auto left_common = left.schema().PositionsOf(common);
  auto right_private_pos = right.schema().PositionsOf(right_private);

  Tuple scratch;
  auto emit = [&](const Tuple& lk, const Element& lp, const Tuple& rk,
                  const Element& rp) {
    scratch = lk;  // memcpy of values + cached hash; no re-fold of the prefix
    for (auto p : right_private_pos) scratch.Append(rk[p]);
    out.Add(scratch, Ring::Mul(lp, rp));
  };

  if (common.empty()) {
    // Cartesian product.
    left.ForEach([&](const Tuple& lk, const Element& lp) {
      right.ForEach(
          [&](const Tuple& rk, const Element& rp) { emit(lk, lp, rk, rp); });
    });
    return out;
  }

  if (common.size() == right.schema().size()) {
    // The join key covers the whole right schema: at most one match per
    // left entry, found through right's primary index. No secondary index
    // is built (or maintained by later absorbs into `right`), and the
    // output schema equals left's, so keys pass through unchanged.
    auto right_key_pos = left.schema().PositionsOf(right.schema());
    out.Reserve(left.size());
    left.ForEach([&](const Tuple& lk, const Element& lp) {
      const Element* rp = right.Find(TupleView(lk, right_key_pos));
      if (rp != nullptr) out.Add(lk, Ring::Mul(lp, *rp));
    });
    return out;
  }

  const auto& right_index = right.IndexOn(common);
  left.ForEach([&](const Tuple& lk, const Element& lp) {
    const auto* slots = right_index.Probe(TupleView(lk, left_common));
    if (slots == nullptr) return;
    for (uint32_t slot : *slots) {
      const auto& e = right.EntryAt(slot);
      if (Ring::IsZero(e.payload)) continue;
      emit(lk, lp, e.key, e.payload);
    }
  });
  return out;
}

/// Fused ⊕_{marg}(left ⊗ right): joins and immediately marginalizes, never
/// materializing the join result. `marg` may mention variables from either
/// side. This is the inner loop of view evaluation and delta propagation.
template <typename Ring>
Relation<Ring> JoinAndMarginalize(const Relation<Ring>& left,
                                  const Relation<Ring>& right,
                                  const Schema& marg,
                                  const LiftingMap<Ring>& lifts) {
  using Element = typename Ring::Element;
  Schema common = left.schema().Intersect(right.schema());
  Schema right_private = right.schema().Minus(common);
  Schema joined = left.schema().Union(right_private);
  Schema out_schema = joined.Minus(marg);
  Relation<Ring> out(out_schema);

  auto left_common = left.schema().PositionsOf(common);

  // For each output variable, record (from_left, position).
  util::SmallVector<std::pair<bool, uint32_t>, 6> out_src;
  for (VarId v : out_schema) {
    int lp = left.schema().PositionOf(v);
    if (lp >= 0) {
      out_src.emplace_back(true, static_cast<uint32_t>(lp));
    } else {
      int rp = right.schema().PositionOf(v);
      assert(rp >= 0);
      out_src.emplace_back(false, static_cast<uint32_t>(rp));
    }
  }
  // Non-trivially lifted marginalized variables, with source side/position.
  util::SmallVector<std::pair<VarId, std::pair<bool, uint32_t>>, 6> lifted;
  for (VarId v : marg) {
    if (!joined.Contains(v) || lifts.IsTrivial(v)) continue;
    int lp = left.schema().PositionOf(v);
    if (lp >= 0) {
      lifted.emplace_back(v, std::make_pair(true, static_cast<uint32_t>(lp)));
    } else {
      int rp = right.schema().PositionOf(v);
      assert(rp >= 0);
      lifted.emplace_back(v, std::make_pair(false, static_cast<uint32_t>(rp)));
    }
  }

  // One match's ring term: Mul(left, right) times the lifted marginalized
  // values.
  auto term = [&](const Tuple& lk, const Element& lp, const Tuple& rk,
                  const Element& rp) {
    Element acc = Ring::Mul(lp, rp);
    for (const auto& [var, src] : lifted) {
      const Value& x = src.first ? lk[src.second] : rk[src.second];
      acc = Ring::Mul(acc, lifts.Lift(var, x));
    }
    return acc;
  };

  // The scratch key is reused across all emits; Relation::Add copies it
  // only when the key is new to the output.
  Tuple scratch;
  auto emit = [&](const Tuple& lk, const Element& lp, const Tuple& rk,
                  const Element& rp) {
    scratch.Clear();
    for (const auto& [from_left, pos] : out_src) {
      scratch.Append(from_left ? lk[pos] : rk[pos]);
    }
    out.Add(scratch, term(lk, lp, rk, rp));
  };

  // When every output variable comes from the left side (all of the right
  // side is joined away), the output key is fixed per left entry, so the
  // whole match set folds in the ring (distributivity) and costs a single
  // hash-map update instead of one per match.
  bool left_only_key = true;
  for (const auto& [from_left, pos] : out_src) {
    left_only_key = left_only_key && from_left;
  }

  if (common.empty()) {
    left.ForEach([&](const Tuple& lk, const Element& lp) {
      right.ForEach(
          [&](const Tuple& rk, const Element& rp) { emit(lk, lp, rk, rp); });
    });
    return out;
  }

  if (common.size() == right.schema().size()) {
    // Full-key probe: the join key covers the whole right schema, so each
    // left entry has at most one partner, located through right's primary
    // index — no secondary index to build here or to maintain on every
    // later absorb into `right`. Every output and lifted variable then
    // lives on the left (out_src/lifted prefer the left position), so the
    // right key is never dereferenced and `lk` stands in for it.
    auto right_key_pos = left.schema().PositionsOf(right.schema());
    out.Reserve(left.size());
    left.ForEach([&](const Tuple& lk, const Element& lp) {
      const Element* rp = right.Find(TupleView(lk, right_key_pos));
      if (rp == nullptr) return;
      scratch.Clear();
      for (const auto& [from_left, pos] : out_src) scratch.Append(lk[pos]);
      out.Add(scratch, term(lk, lp, lk, *rp));
    });
    return out;
  }

  const auto& right_index = right.IndexOn(common);
  if (left_only_key) {
    // One output key per left entry at most.
    out.Reserve(left.size());
    left.ForEach([&](const Tuple& lk, const Element& lp) {
      const auto* slots = right_index.Probe(TupleView(lk, left_common));
      if (slots == nullptr) return;
      Element acc = Ring::Zero();
      bool have = false;
      for (uint32_t slot : *slots) {
        const auto& e = right.EntryAt(slot);
        if (Ring::IsZero(e.payload)) continue;
        if (!have) {
          acc = term(lk, lp, e.key, e.payload);
          have = true;
        } else {
          Ring::AddInPlace(acc, term(lk, lp, e.key, e.payload));
        }
      }
      if (!have) return;
      scratch.Clear();
      for (const auto& [from_left, pos] : out_src) scratch.Append(lk[pos]);
      out.Add(scratch, std::move(acc));
    });
    return out;
  }

  out.Reserve(left.size());  // floor; match fan-out grows beyond it
  left.ForEach([&](const Tuple& lk, const Element& lp) {
    const auto* slots = right_index.Probe(TupleView(lk, left_common));
    if (slots == nullptr) return;
    for (uint32_t slot : *slots) {
      const auto& e = right.EntryAt(slot);
      if (Ring::IsZero(e.payload)) continue;
      emit(lk, lp, e.key, e.payload);
    }
  });
  return out;
}

/// Returns `rel` with keys re-projected to `target`'s column layout
/// (schemas must be equal as sets), consuming the input: when the layout
/// already matches, the relation moves straight through; otherwise keys
/// are projected and payloads moved, with zero-payload tombstones dropped.
/// Shared by the engine's delta intake, DeltaBatcher::Flush, and the
/// parallel executor.
template <typename Ring>
Relation<Ring> Reordered(Relation<Ring>&& rel, const Schema& target) {
  assert(rel.schema().SameSet(target));
  if (rel.schema() == target) return std::move(rel);
  Relation<Ring> out(target);
  out.Reserve(rel.size());
  auto pos = rel.schema().PositionsOf(target);
  for (auto& e : rel.TakeEntries()) {
    if (Ring::IsZero(e.payload)) continue;
    out.Add(e.key.Project(pos), std::move(e.payload));
  }
  return out;
}

/// Adds `delta` into `store`, re-ordering key columns if the two schemas use
/// a different positional layout. The schemas must be equal as sets.
template <typename Ring>
void AbsorbInto(Relation<Ring>& store, const Relation<Ring>& delta) {
  assert(store.schema().SameSet(delta.schema()));
  if (store.schema() == delta.schema()) {
    store.UnionWith(delta);
    return;
  }
  auto pos = delta.schema().PositionsOf(store.schema());
  delta.ForEach([&](const Tuple& k, const typename Ring::Element& p) {
    store.Add(k.Project(pos), p);
  });
}

/// Move-aware absorb: consumes `delta`, re-homing keys and payloads instead
/// of copying them. When the store is empty and the layouts match, this is
/// a single relation move (the common "fill a fresh store" case).
template <typename Ring>
void AbsorbInto(Relation<Ring>& store, Relation<Ring>&& delta) {
  assert(store.schema().SameSet(delta.schema()));
  if (store.schema() == delta.schema()) {
    if (store.empty()) {
      store = std::move(delta);
      return;
    }
    for (auto& e : delta.TakeEntries()) {
      if (Ring::IsZero(e.payload)) continue;
      store.Add(std::move(e.key), std::move(e.payload));
    }
    return;
  }
  auto pos = delta.schema().PositionsOf(store.schema());
  for (auto& e : delta.TakeEntries()) {
    if (Ring::IsZero(e.payload)) continue;
    store.Add(e.key.Project(pos), std::move(e.payload));
  }
}

/// True when `a` and `b` hold the same key → payload mapping: schemas equal
/// as sets, same live-key count, and per key the payloads agree as ring
/// values (a − b is the additive identity, which also tolerates
/// representation differences such as zero-padded aggregate ranges).
template <typename Ring>
bool ContentEquals(const Relation<Ring>& a, const Relation<Ring>& b) {
  if (!a.schema().SameSet(b.schema())) return false;
  if (a.size() != b.size()) return false;
  auto pos = a.schema().PositionsOf(b.schema());
  bool equal = true;
  a.ForEach([&](const Tuple& k, const typename Ring::Element& p) {
    if (!equal) return;
    const typename Ring::Element* q = b.Find(TupleView(k, pos));
    if (q == nullptr || !Ring::IsZero(Ring::Add(p, Ring::Neg(*q)))) {
      equal = false;
    }
  });
  return equal;
}

// Measured dead end, kept as a warning: absorbing a large delta in
// ascending key-hash order ("sweep the index instead of random-probing
// it") roughly DOUBLED absorb cost on the fig13 stores. Linear probing
// degenerates under sorted bulk inserts — consecutive inserts land on
// adjacent home cells and build long collision runs (primary clustering).
// Absorbs must stay in arrival order unless the index moves to a
// clustering-resistant scheme (robin hood / quadratic).

/// Converts a relation between rings by mapping payloads through `fn`.
template <typename ToRing, typename FromRing, typename Fn>
Relation<ToRing> MapPayloads(const Relation<FromRing>& rel, Fn&& fn) {
  Relation<ToRing> out(rel.schema());
  rel.ForEach([&](const Tuple& k, const typename FromRing::Element& p) {
    out.Add(k, fn(p));
  });
  return out;
}

}  // namespace fivm

#endif  // FIVM_DATA_RELATION_OPS_H_
